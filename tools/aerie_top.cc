// aerie_top: live cross-process telemetry viewer.
//
// Discovers the per-process shared-memory telemetry segments
// (`aerie.obs.<pid>`, see src/obs/telemetry.h) under /dev/shm (or
// --dir/$AERIE_OBS_SHM_DIR), merges same-named metrics across processes,
// and renders a refreshing table: per-layer rolling-window tail latencies
// (p50/p95/p99 over roughly the last AERIE_OBS_WINDOW_SECS seconds),
// per-RPC-method interval rates, and the per-layer SCM write-amplification
// breakdown. `--json` takes two samples and emits one machine-readable
// document instead (validated by tools/validate_telemetry.py in CI).
//
// Interval rates are counter deltas between consecutive samples divided by
// the wall-clock elapsed; a registry reset mid-run (bench epochs call
// obs::ResetAll) makes a delta negative, which is clamped to zero rather
// than rendered as a huge unsigned rate.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/histogram.h"
#include "src/obs/obs.h"
#include "src/obs/telemetry.h"

namespace aerie {
namespace {

using obs::TelemetryMetric;
using obs::TelemetrySnapshot;

struct Options {
  std::string dir = obs::TelemetryDir();
  uint64_t interval_ms = 1000;
  uint64_t iterations = 0;  // 0: run until killed
  bool json = false;
  bool gc = true;
  bool clear = true;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--dir D] [--interval MS] [--iterations N] [--json]\n"
      "          [--no-gc] [--no-clear]\n"
      "  --dir D         segment directory (default $AERIE_OBS_SHM_DIR or "
      "/dev/shm)\n"
      "  --interval MS   refresh / sampling interval (default 1000)\n"
      "  --iterations N  refresh N times then exit (default: forever)\n"
      "  --json          one-shot: two samples, one JSON document on stdout\n"
      "  --no-gc         do not unlink segments of dead processes\n"
      "  --no-clear      do not clear the screen between refreshes\n",
      argv0);
}

std::string PrettyCount(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

std::string PrettyNanos(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "ns", ns);
  }
  return buf;
}

std::string PrettyBytes(uint64_t b) {
  char buf[32];
  const double v = static_cast<double>(b);
  if (b >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGiB", v / (1ull << 30));
  } else if (b >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMiB", v / (1ull << 20));
  } else if (b >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB", v / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "B", b);
  }
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string_view LayerOf(std::string_view name) {
  const size_t dot = name.find('.');
  return dot == std::string_view::npos ? name : name.substr(0, dot);
}

// One sample: the merged cross-process view plus what it was computed from.
struct Sample {
  uint64_t mono_ns = 0;
  std::vector<TelemetrySnapshot> processes;
  std::vector<TelemetryMetric> merged;
  std::map<std::string, uint64_t> counters;  // every counter, by name
};

Sample TakeSample(const Options& opt) {
  Sample s;
  s.mono_ns = NowNanos();
  s.processes = obs::ReadTelemetryDir(opt.dir, opt.gc);
  s.merged = obs::MergeTelemetry(s.processes);
  for (const TelemetryMetric& m : s.merged) {
    if (m.kind == obs::Metric::Kind::kCounter) {
      s.counters[m.name] = m.counter;
    }
  }
  return s;
}

// Counter delta per second between two samples, clamped at zero (registry
// resets move counters backwards).
double RatePerSec(const Sample& prev, const Sample& cur,
                  const std::string& name) {
  const double secs =
      static_cast<double>(cur.mono_ns - prev.mono_ns) / 1e9;
  if (secs <= 0) {
    return 0;
  }
  const auto pit = prev.counters.find(name);
  const auto cit = cur.counters.find(name);
  const uint64_t p = pit != prev.counters.end() ? pit->second : 0;
  const uint64_t c = cit != cur.counters.end() ? cit->second : 0;
  return c >= p ? static_cast<double>(c - p) / secs : 0.0;
}

// Per-layer aggregation of span metrics: exact self/total sums plus the
// merged rolling-window self-time histogram and the profiler plane's
// sampled-CPU / attributed-wait sums (format v2 span entries).
struct LayerRow {
  uint64_t spans = 0;
  uint64_t self_ns = 0;
  uint64_t total_ns = 0;
  uint64_t cpu_ns = 0;
  uint64_t lock_wait_ns = 0;
  uint64_t rpc_wait_ns = 0;
  uint64_t other_wait_ns = 0;
  Histogram window;
};

std::map<std::string, LayerRow> LayerRows(const Sample& s) {
  std::map<std::string, LayerRow> rows;
  for (const TelemetryMetric& m : s.merged) {
    if (m.kind != obs::Metric::Kind::kSpan) {
      continue;
    }
    LayerRow& row = rows[std::string(LayerOf(m.name))];
    row.spans += m.cumulative.count();
    row.self_ns += m.span_self_ns;
    row.total_ns += m.span_total_ns;
    row.cpu_ns += m.span_cpu_ns;
    row.lock_wait_ns += m.span_lock_wait_ns;
    row.rpc_wait_ns += m.span_rpc_wait_ns;
    row.other_wait_ns += m.span_other_wait_ns;
    row.window.Merge(m.window);
  }
  return rows;
}

// Share of a layer's wall-clock self time spent blocked (lock + rpc + other
// wait). Waits can exceed self time when a wait spans child-span exits, so
// clamp at 100 rather than confuse the reader.
double WaitPct(const LayerRow& row) {
  const uint64_t wait =
      row.lock_wait_ns + row.rpc_wait_ns + row.other_wait_ns;
  if (row.self_ns == 0) {
    return wait != 0 ? 100.0 : 0.0;
  }
  return std::min(100.0, 100.0 * static_cast<double>(wait) /
                             static_cast<double>(row.self_ns));
}

// Lock-plane view: the live waiter gauge plus the contention latency
// histograms the lock layer publishes (values are recorded in
// MICROSECONDS; multiply by 1e3 before feeding the ns pretty-printer).
struct LockView {
  int64_t waiters = 0;
  bool any = false;
  Histogram wait_latency;    // lock.wait.latency_us (cumulative)
  Histogram revoke_latency;  // lock.revoke.latency_us (cumulative)
  Histogram revoke_queue;    // clerk.revoke.queue_us (cumulative)
};

LockView LockRows(const Sample& s) {
  LockView view;
  for (const TelemetryMetric& m : s.merged) {
    if (m.kind == obs::Metric::Kind::kGauge && m.name == "lock.waiters") {
      view.waiters = m.gauge;
      view.any = true;
    } else if (m.name == "lock.wait.latency_us") {
      view.wait_latency.Merge(m.cumulative);
      view.any = true;
    } else if (m.name == "lock.revoke.latency_us") {
      view.revoke_latency.Merge(m.cumulative);
      view.any = true;
    } else if (m.name == "clerk.revoke.queue_us") {
      view.revoke_queue.Merge(m.cumulative);
      view.any = true;
    }
  }
  return view;
}

// Total shm-export drops across live segments. Nonzero means the telemetry
// in view is INCOMPLETE (entry or bucket capacity exhausted) and capacities
// in src/obs/telemetry.h need raising — surfaced as a warning header and a
// machine-readable JSON field so dashboards can alarm on it.
struct DroppedTotals {
  uint64_t entries = 0;
  uint64_t hists = 0;
  bool warning() const { return entries != 0 || hists != 0; }
};

DroppedTotals SumDropped(const Sample& s) {
  DroppedTotals t;
  for (const TelemetrySnapshot& p : s.processes) {
    t.entries += p.dropped_entries;
    t.hists += p.dropped_hists;
  }
  return t;
}

// Per-RPC-method rows keyed by method name ("tfs.apply_batch"): the
// rpc.<method>.calls/bytes counters plus the rpc.<method> span window.
struct RpcRow {
  uint64_t calls = 0;
  uint64_t bytes_out = 0;
  uint64_t bytes_in = 0;
  Histogram window;
};

std::map<std::string, RpcRow> RpcRows(const Sample& s) {
  std::map<std::string, RpcRow> rows;
  for (const TelemetryMetric& m : s.merged) {
    if (m.name.rfind("rpc.", 0) != 0) {
      continue;
    }
    const std::string rest = m.name.substr(4);
    if (m.kind == obs::Metric::Kind::kSpan) {
      rows[rest].window.Merge(m.window);
      continue;
    }
    const size_t dot = rest.rfind('.');
    if (dot == std::string::npos) {
      continue;
    }
    const std::string method = rest.substr(0, dot);
    const std::string field = rest.substr(dot + 1);
    if (field == "calls") {
      rows[method].calls = m.counter;
    } else if (field == "bytes_out") {
      rows[method].bytes_out = m.counter;
    } else if (field == "bytes_in") {
      rows[method].bytes_in = m.counter;
    }
  }
  return rows;
}

std::vector<std::pair<std::string, uint64_t>> CounterPairs(const Sample& s) {
  return {s.counters.begin(), s.counters.end()};
}

void RenderText(const Options& opt, const Sample& prev, const Sample& cur) {
  if (opt.clear && ::isatty(STDOUT_FILENO)) {
    std::fputs("\x1b[H\x1b[2J", stdout);
  }
  const double interval_s =
      static_cast<double>(cur.mono_ns - prev.mono_ns) / 1e9;
  std::printf("aerie_top — %zu process(es) in %s, interval %.1fs\n",
              cur.processes.size(), opt.dir.c_str(), interval_s);
  const DroppedTotals dropped = SumDropped(cur);
  if (dropped.warning()) {
    std::printf("WARNING: telemetry INCOMPLETE — %" PRIu64
                " dropped entr%s, %" PRIu64
                " dropped histogram%s (segment capacity exhausted; raise "
                "kTelemetryEntryCapacity/kTelemetryHistCapacity)\n",
                dropped.entries, dropped.entries == 1 ? "y" : "ies",
                dropped.hists, dropped.hists == 1 ? "" : "s");
  }
  std::printf("\n");

  std::printf("%7s  %-16s  %-8s  %9s  %8s  %7s  %7s\n", "PID", "PROCESS",
              "MODE", "PUBLISHES", "METRICS", "DROPPED", "DROPH");
  for (const TelemetrySnapshot& p : cur.processes) {
    const char* mode = p.mode == obs::Mode::kOff
                           ? "off"
                           : (p.mode == obs::Mode::kCounters ? "counters"
                                                             : "spans");
    std::printf("%7" PRIu64 "  %-16.16s  %-8s  %9" PRIu64 "  %8zu  %7" PRIu64
                "  %7" PRIu64 "\n",
                p.pid, p.process_name.c_str(), mode, p.publish_count,
                p.metrics.size(), p.dropped_entries, p.dropped_hists);
  }

  const auto layers = LayerRows(cur);
  if (!layers.empty()) {
    std::printf("\n%-12s  %10s  %10s  %10s  %8s  %6s  %8s  %8s  %8s\n",
                "LAYER", "SPANS", "SPANS/S", "SELF", "CPU", "WAIT%",
                "win p50", "win p95", "win p99");
    const auto prev_layers = LayerRows(prev);
    const double secs = interval_s > 0 ? interval_s : 1;
    for (const auto& [name, row] : layers) {
      double rate = 0;
      const auto pit = prev_layers.find(name);
      if (pit != prev_layers.end() && row.spans >= pit->second.spans) {
        rate = static_cast<double>(row.spans - pit->second.spans) / secs;
      }
      std::printf("%-12.12s  %10s  %10s  %10s  %8s  %5.1f%%  %8s  %8s  %8s\n",
                  name.c_str(),
                  PrettyCount(static_cast<double>(row.spans)).c_str(),
                  PrettyCount(rate).c_str(), PrettyNanos(row.self_ns).c_str(),
                  PrettyNanos(row.cpu_ns).c_str(), WaitPct(row),
                  PrettyNanos(row.window.Percentile(50)).c_str(),
                  PrettyNanos(row.window.Percentile(95)).c_str(),
                  PrettyNanos(row.window.Percentile(99)).c_str());
    }
  }

  const LockView locks = LockRows(cur);
  if (locks.any) {
    std::printf("\nlocks: %" PRId64 " waiter(s) now\n", locks.waiters);
    std::printf("%-24s  %10s  %8s  %8s  %8s\n", "LOCK HISTOGRAM", "COUNT",
                "p50", "p95", "p99");
    const struct {
      const char* name;
      const Histogram* hist;
    } lock_hists[] = {
        {"lock.wait.latency_us", &locks.wait_latency},
        {"lock.revoke.latency_us", &locks.revoke_latency},
        {"clerk.revoke.queue_us", &locks.revoke_queue},
    };
    for (const auto& h : lock_hists) {
      // Recorded values are microseconds; scale to ns for the pretty units.
      std::printf("%-24s  %10s  %8s  %8s  %8s\n", h.name,
                  PrettyCount(static_cast<double>(h.hist->count())).c_str(),
                  PrettyNanos(h.hist->Percentile(50) * 1000).c_str(),
                  PrettyNanos(h.hist->Percentile(95) * 1000).c_str(),
                  PrettyNanos(h.hist->Percentile(99) * 1000).c_str());
    }
  }

  const auto rpcs = RpcRows(cur);
  if (!rpcs.empty()) {
    std::printf("\n%-24s  %10s  %10s  %10s  %8s  %8s  %8s\n", "RPC METHOD",
                "CALLS", "CALLS/S", "OUT", "win p50", "win p95", "win p99");
    for (const auto& [method, row] : rpcs) {
      const double rate = RatePerSec(prev, cur, "rpc." + method + ".calls");
      std::printf("%-24.24s  %10s  %10s  %10s  %8s  %8s  %8s\n",
                  method.c_str(),
                  PrettyCount(static_cast<double>(row.calls)).c_str(),
                  PrettyCount(rate).c_str(),
                  PrettyBytes(row.bytes_out).c_str(),
                  PrettyNanos(row.window.Percentile(50)).c_str(),
                  PrettyNanos(row.window.Percentile(95)).c_str(),
                  PrettyNanos(row.window.Percentile(99)).c_str());
    }
  }

  // Zero-RPC direct data path (DESIGN.md §10): bytes served straight from
  // mapped SCM under the clerk's direct-access epoch, plus how often a
  // stale epoch or in-flight revoke pushed an op back onto the locked path.
  {
    auto counter = [&cur](const char* name) -> uint64_t {
      auto it = cur.counters.find(name);
      return it == cur.counters.end() ? 0 : it->second;
    };
    const uint64_t read_bytes = counter("libfs.direct.read_bytes");
    const uint64_t write_bytes = counter("libfs.direct.write_bytes");
    const uint64_t grants = counter("clerk.direct.grant");
    if (read_bytes != 0 || write_bytes != 0 || grants != 0) {
      std::printf(
          "\ndirect path: read %s (%s/s), write %s (%s/s), grants %s, "
          "fallbacks %s (clerk %s)\n",
          PrettyBytes(read_bytes).c_str(),
          PrettyBytes(static_cast<uint64_t>(
                          RatePerSec(prev, cur, "libfs.direct.read_bytes")))
              .c_str(),
          PrettyBytes(write_bytes).c_str(),
          PrettyBytes(static_cast<uint64_t>(
                          RatePerSec(prev, cur, "libfs.direct.write_bytes")))
              .c_str(),
          PrettyCount(static_cast<double>(grants)).c_str(),
          PrettyCount(static_cast<double>(counter("libfs.direct.fallback")))
              .c_str(),
          PrettyCount(static_cast<double>(counter("clerk.direct.fallback")))
              .c_str());
    }
  }

  const obs::WriteAmpReport amp = obs::ComputeWriteAmp(CounterPairs(cur));
  if (amp.physical_bytes != 0 || amp.logical_bytes != 0) {
    std::printf("\nwrite amplification: logical %s, physical %s",
                PrettyBytes(amp.logical_bytes).c_str(),
                PrettyBytes(amp.physical_bytes).c_str());
    if (amp.logical_bytes != 0) {
      std::printf(", amp %.2fx", amp.amplification);
    }
    std::printf("\n%-14s  %12s  %12s  %10s  %8s\n", "SCM LAYER", "PHYSICAL",
                "STREAMED", "FENCES", "AMP");
    for (const obs::WriteAmpRow& row : amp.layers) {
      std::printf("%-14.14s  %12s  %12s  %10s  ", row.layer.c_str(),
                  PrettyBytes(row.physical_bytes).c_str(),
                  PrettyBytes(row.streamed_bytes).c_str(),
                  PrettyCount(static_cast<double>(row.fences)).c_str());
      if (amp.logical_bytes != 0) {
        std::printf("%7.2fx\n", row.amplification);
      } else {
        std::printf("%8s\n", "-");
      }
    }
  }
  std::fflush(stdout);
}

void AppendHistJson(std::string* out, const Histogram& h) {
  *out += h.ToJson();
}

std::string RenderJson(const Options& opt, const Sample& prev,
                       const Sample& cur) {
  char buf[320];
  // schema_version 2: adds per-process dropped_hists, the top-level
  // dropped/locks objects, and per-layer cpu/wait attribution (all
  // REQUIRED in tools/telemetry_schema.json, hence the version bump).
  std::string out = "{\n  \"schema_version\": 2,\n";
  std::snprintf(buf, sizeof(buf), "  \"interval_ms\": %" PRIu64 ",\n",
                static_cast<uint64_t>(cur.mono_ns - prev.mono_ns) /
                    uint64_t{1000000});
  out += buf;
  out += "  \"dir\": \"" + JsonEscape(opt.dir) + "\",\n";
  const DroppedTotals dropped = SumDropped(cur);
  std::snprintf(buf, sizeof(buf),
                "  \"dropped\": {\"entries\": %" PRIu64 ", \"hists\": %" PRIu64
                ", \"warning\": %s},\n",
                dropped.entries, dropped.hists,
                dropped.warning() ? "true" : "false");
  out += buf;

  out += "  \"processes\": [";
  bool first = true;
  for (const TelemetrySnapshot& p : cur.processes) {
    out += first ? "\n" : ",\n";
    first = false;
    const char* mode = p.mode == obs::Mode::kOff
                           ? "off"
                           : (p.mode == obs::Mode::kCounters ? "counters"
                                                             : "spans");
    std::snprintf(buf, sizeof(buf),
                  "    {\"pid\": %" PRIu64 ", \"name\": \"%s\", \"mode\": "
                  "\"%s\", \"publish_count\": %" PRIu64
                  ", \"metrics\": %zu, \"dropped_entries\": %" PRIu64
                  ", \"dropped_hists\": %" PRIu64 "}",
                  p.pid, JsonEscape(p.process_name).c_str(), mode,
                  p.publish_count, p.metrics.size(), p.dropped_entries,
                  p.dropped_hists);
    out += buf;
  }
  out += "\n  ],\n";

  out += "  \"layers\": {";
  first = true;
  const auto prev_layers = LayerRows(prev);
  const double secs =
      std::max(1e-9, static_cast<double>(cur.mono_ns - prev.mono_ns) / 1e9);
  for (const auto& [name, row] : LayerRows(cur)) {
    out += first ? "\n" : ",\n";
    first = false;
    double rate = 0;
    const auto pit = prev_layers.find(name);
    if (pit != prev_layers.end() && row.spans >= pit->second.spans) {
      rate = static_cast<double>(row.spans - pit->second.spans) / secs;
    }
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": {\"spans\": %" PRIu64 ", \"spans_per_sec\": "
                  "%.1f, \"self_ns\": %" PRIu64 ", \"total_ns\": %" PRIu64
                  ", \"cpu_ns\": %" PRIu64 ", \"lock_wait_ns\": %" PRIu64
                  ", \"rpc_wait_ns\": %" PRIu64 ", \"other_wait_ns\": %" PRIu64
                  ", \"wait_pct\": %.1f, \"window\": ",
                  JsonEscape(name).c_str(), row.spans, rate, row.self_ns,
                  row.total_ns, row.cpu_ns, row.lock_wait_ns, row.rpc_wait_ns,
                  row.other_wait_ns, WaitPct(row));
    out += buf;
    AppendHistJson(&out, row.window);
    out += "}";
  }
  out += "\n  },\n";

  out += "  \"rpc\": {";
  first = true;
  for (const auto& [method, row] : RpcRows(cur)) {
    out += first ? "\n" : ",\n";
    first = false;
    const double rate = RatePerSec(prev, cur, "rpc." + method + ".calls");
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": {\"calls\": %" PRIu64 ", \"calls_per_sec\": "
                  "%.1f, \"bytes_out\": %" PRIu64 ", \"bytes_in\": %" PRIu64
                  ", \"window\": ",
                  JsonEscape(method).c_str(), row.calls, rate, row.bytes_out,
                  row.bytes_in);
    out += buf;
    AppendHistJson(&out, row.window);
    out += "}";
  }
  out += "\n  },\n";

  const LockView locks = LockRows(cur);
  std::snprintf(buf, sizeof(buf),
                "  \"locks\": {\"waiters\": %" PRId64
                ", \"wait_latency_us\": ",
                locks.waiters);
  out += buf;
  AppendHistJson(&out, locks.wait_latency);
  out += ", \"revoke_latency_us\": ";
  AppendHistJson(&out, locks.revoke_latency);
  out += ", \"revoke_queue_us\": ";
  AppendHistJson(&out, locks.revoke_queue);
  out += "},\n";

  const obs::WriteAmpReport amp = obs::ComputeWriteAmp(CounterPairs(cur));
  std::snprintf(buf, sizeof(buf),
                "  \"write_amp\": {\"logical_bytes\": %" PRIu64
                ", \"physical_bytes\": %" PRIu64
                ", \"amplification\": %.3f, \"layers\": {",
                amp.logical_bytes, amp.physical_bytes, amp.amplification);
  out += buf;
  first = true;
  for (const obs::WriteAmpRow& row : amp.layers) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": {\"physical_bytes\": %" PRIu64
                  ", \"streamed_bytes\": %" PRIu64 ", \"fences\": %" PRIu64
                  ", \"amplification\": %.3f}",
                  JsonEscape(row.layer).c_str(), row.physical_bytes,
                  row.streamed_bytes, row.fences, row.amplification);
    out += buf;
  }
  out += first ? "}}\n" : "\n  }}\n";
  out += "}\n";
  return out;
}

int Run(const Options& opt) {
  Sample prev = TakeSample(opt);
  if (opt.json) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
    const Sample cur = TakeSample(opt);
    std::fputs(RenderJson(opt, prev, cur).c_str(), stdout);
    return 0;
  }
  uint64_t done = 0;
  while (opt.iterations == 0 || done < opt.iterations) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
    const Sample cur = TakeSample(opt);
    RenderText(opt, prev, cur);
    prev = cur;
    ++done;
  }
  return 0;
}

}  // namespace
}  // namespace aerie

int main(int argc, char** argv) {
  aerie::Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        aerie::Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dir") {
      opt.dir = next();
    } else if (arg == "--interval") {
      opt.interval_ms = std::strtoull(next(), nullptr, 10);
      opt.interval_ms = std::max<uint64_t>(opt.interval_ms, 10);
    } else if (arg == "--iterations") {
      opt.iterations = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--json") {
      opt.json = true;
      if (opt.interval_ms == 1000) {
        opt.interval_ms = 500;  // one-shot default: quicker rate sample
      }
    } else if (arg == "--no-gc") {
      opt.gc = false;
    } else if (arg == "--no-clear") {
      opt.clear = false;
    } else if (arg == "--help" || arg == "-h") {
      aerie::Usage(argv[0]);
      return 0;
    } else {
      aerie::Usage(argv[0]);
      return 2;
    }
  }
  return aerie::Run(opt);
}
