#!/usr/bin/env python3
"""Compare two BENCH_*.json aggregates; exit non-zero on regressions.

A metric regresses when it moves against its nature by more than the noise
band:
  - throughput (ops_per_sec):   new < old * (1 - tput_band)
  - latency (latency_ns p50):   new > old * (1 + lat_band)
  - time-like values (ns/op, us, ns, ms): new > old * (1 + lat_band)
Other unit values (percent, counts) are reported informationally only —
they describe workload shape, not speed.

Latency gates on the *median*: tail percentiles (p95/p99) of a single short
run swing multiples under scheduler noise, so they stay in the record for
trend plotting but only surface here as info lines. Bands default to
0.15/0.35 for full-scale sweeps on a quiet machine; when either file is a
--quick sweep the defaults widen to 0.60/1.0 automatically (quick mode is a
smoke test for order-of-magnitude cliffs — see DESIGN.md §9.2). Explicit
--tput-band/--lat-band always win. Metrics present in only one file are
listed but never gate — benches come and go across PRs.

Stdlib only. Usage:
  tools/bench_diff.py OLD.json NEW.json [--tput-band 0.15] [--lat-band 0.35]
                                        [--metrics REGEX]

--metrics restricts the comparison to "bench/metric" keys matching REGEX
(re.search). Use it when OLD and NEW differ by a knob that only touches a
subset of the metrics — e.g. the CI direct-path A/B lane gates only the
Aerie-side rows, because the kernelsim baselines in the same records can't
be affected by AERIE_DIRECT and would only contribute flake surface.
"""

import argparse
import json
import re
import sys

# Values below these floors are pure noise at any band (empty quick-mode
# histograms, sub-microsecond timers): never gate on them.
MIN_GATED_OPS = 1.0
MIN_GATED_NS = 100.0

TIME_UNITS = {"ns/op", "ns", "us", "ms"}


def load(path):
    with open(path) as f:
        return json.load(f)


def metric_map(aggregate):
    """Flatten to {"bench/metric": row}."""
    out = {}
    for bench, record in aggregate.get("benches", {}).items():
        for row in record.get("metrics", []):
            out["%s/%s" % (bench, row["name"])] = row
    return out


def pct(old, new):
    if old == 0:
        return 0.0
    return 100.0 * (new - old) / old


def compare(old_map, new_map, tput_band, lat_band):
    """Returns (regressions, improvements, infos) as printable strings."""
    regressions, improvements, infos = [], [], []
    for key in sorted(set(old_map) & set(new_map)):
        old_row, new_row = old_map[key], new_map[key]

        if "ops_per_sec" in old_row and "ops_per_sec" in new_row:
            old_v, new_v = old_row["ops_per_sec"], new_row["ops_per_sec"]
            if old_v >= MIN_GATED_OPS:
                line = "%s ops/s: %.1f -> %.1f (%+.1f%%)" % (
                    key, old_v, new_v, pct(old_v, new_v))
                if new_v < old_v * (1.0 - tput_band):
                    regressions.append(line + " [band %.0f%%]" %
                                       (100 * tput_band))
                elif new_v > old_v * (1.0 + tput_band):
                    improvements.append(line)

        old_h = old_row.get("latency_ns")
        new_h = new_row.get("latency_ns")
        if old_h and new_h and old_h.get("count", 0) > 0 \
                and new_h.get("count", 0) > 0:
            old_v, new_v = old_h["p50"], new_h["p50"]
            if old_v >= MIN_GATED_NS:
                line = "%s p50: %.0fns -> %.0fns (%+.1f%%)" % (
                    key, old_v, new_v, pct(old_v, new_v))
                if new_v > old_v * (1.0 + lat_band):
                    regressions.append(line + " [band %.0f%%]" %
                                       (100 * lat_band))
                elif new_v < old_v * (1.0 - lat_band):
                    improvements.append(line)
            # Tails are too noisy to gate a single run, but a big p99 move
            # is worth a glance.
            old_t, new_t = old_h["p99"], new_h["p99"]
            if old_t >= MIN_GATED_NS and abs(pct(old_t, new_t)) > 100.0:
                infos.append("%s p99: %.0fns -> %.0fns (%+.1f%%, not gated)"
                             % (key, old_t, new_t, pct(old_t, new_t)))

        if "value" in old_row and "value" in new_row \
                and old_row.get("unit") == new_row.get("unit"):
            old_v, new_v = old_row["value"], new_row["value"]
            unit = old_row.get("unit", "")
            line = "%s: %.3f -> %.3f %s (%+.1f%%)" % (
                key, old_v, new_v, unit, pct(old_v, new_v))
            if unit in TIME_UNITS:
                floor = 1.0 if unit in ("ns", "ns/op") else 0.1
                if old_v >= floor:
                    if new_v > old_v * (1.0 + lat_band):
                        regressions.append(line + " [band %.0f%%]" %
                                           (100 * lat_band))
                    elif new_v < old_v * (1.0 - lat_band):
                        improvements.append(line)
            elif abs(pct(old_v, new_v)) > 10.0:
                infos.append(line)

    for key in sorted(set(old_map) - set(new_map)):
        infos.append("%s: removed" % key)
    for key in sorted(set(new_map) - set(old_map)):
        infos.append("%s: added" % key)
    return regressions, improvements, infos


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files with noise bands")
    parser.add_argument("old", help="baseline aggregate")
    parser.add_argument("new", help="candidate aggregate")
    parser.add_argument("--tput-band", type=float, default=None,
                        help="allowed fractional throughput drop "
                             "(default 0.15; 0.60 when either file is a "
                             "--quick sweep)")
    parser.add_argument("--lat-band", type=float, default=None,
                        help="allowed fractional p50/time increase "
                             "(default 0.35; 1.0 when either file is a "
                             "--quick sweep)")
    parser.add_argument("--metrics", default=None, metavar="REGEX",
                        help="compare only bench/metric keys matching "
                             "REGEX (default: all)")
    args = parser.parse_args(argv)

    try:
        old_agg, new_agg = load(args.old), load(args.new)
    except (OSError, ValueError) as e:
        print("bench_diff: %s" % e, file=sys.stderr)
        return 2

    quick = bool(old_agg.get("quick") or new_agg.get("quick"))
    tput_band = args.tput_band if args.tput_band is not None \
        else (0.60 if quick else 0.15)
    lat_band = args.lat_band if args.lat_band is not None \
        else (1.0 if quick else 0.35)

    old_map, new_map = metric_map(old_agg), metric_map(new_agg)
    if args.metrics:
        try:
            pattern = re.compile(args.metrics)
        except re.error as e:
            print("bench_diff: bad --metrics regex: %s" % e, file=sys.stderr)
            return 2
        old_map = {k: v for k, v in old_map.items() if pattern.search(k)}
        new_map = {k: v for k, v in new_map.items() if pattern.search(k)}
    regressions, improvements, infos = compare(
        old_map, new_map, tput_band, lat_band)

    print("bench_diff: %s (%s) vs %s (%s), %d shared metrics, "
          "bands tput=%.0f%% lat=%.0f%%%s" %
          (args.old, old_agg.get("git_sha", "?"),
           args.new, new_agg.get("git_sha", "?"),
           len(set(old_map) & set(new_map)),
           100 * tput_band, 100 * lat_band,
           " (quick)" if quick else ""))
    for title, lines in (("REGRESSIONS", regressions),
                         ("improvements", improvements),
                         ("info", infos)):
        if lines:
            print("\n%s (%d):" % (title, len(lines)))
            for line in lines:
                print("  " + line)

    if regressions:
        print("\nbench_diff: FAIL — %d metric%s regressed beyond the noise "
              "band" % (len(regressions),
                        "" if len(regressions) == 1 else "s"),
              file=sys.stderr)
        return 1
    print("\nbench_diff: OK — no regressions beyond the noise band")
    return 0


if __name__ == "__main__":
    sys.exit(main())
