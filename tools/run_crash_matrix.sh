#!/bin/sh
# Nightly crash-matrix driver (.github/workflows/crash-matrix.yml).
#
#   tools/run_crash_matrix.sh [build-dir]
#
# Runs the crash-state enumeration suites with an extended image budget and
# the fuzzers with a multiplied round budget. Environment knobs:
#
#   AERIE_CRASH_SAMPLES  crash-image budget for the clean sweep (default 5000)
#   AERIE_CRASH_SEED     sweep seed (default: today's date, so each night
#                        explores a different corner; printed for replay)
#   AERIE_FUZZ_SCALE     multiplier on fuzz_test round counts (default 10)
#   ARTIFACT_DIR         where logs land (default crash-matrix-artifacts/)
#
# Every suite's log is kept in ARTIFACT_DIR; on failure the log names the
# (seed, point, draw) triple — see README "Replaying a crash-matrix failure".
set -u

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
artifacts=${ARTIFACT_DIR:-"$repo/crash-matrix-artifacts"}

AERIE_CRASH_SAMPLES=${AERIE_CRASH_SAMPLES:-5000}
AERIE_CRASH_SEED=${AERIE_CRASH_SEED:-$(date +%Y%m%d)}
AERIE_FUZZ_SCALE=${AERIE_FUZZ_SCALE:-10}
export AERIE_CRASH_SAMPLES AERIE_CRASH_SEED AERIE_FUZZ_SCALE

echo "crash matrix: samples=$AERIE_CRASH_SAMPLES seed=$AERIE_CRASH_SEED" \
     "fuzz_scale=$AERIE_FUZZ_SCALE"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=RelWithDebInfo || exit 1
cmake --build "$build" -j "$(nproc)" \
      --target crash_sim_test crash_random_test fuzz_test \
               direct_path_test || exit 1

mkdir -p "$artifacts"
status=0

run() {
  name=$1
  shift
  echo "== $name =="
  if "$@" >"$artifacts/$name.log" 2>&1; then
    tail -2 "$artifacts/$name.log"
  else
    status=1
    echo "FAILED: $name (log: $artifacts/$name.log)" >&2
    tail -40 "$artifacts/$name.log" >&2
  fi
}

run crash_sim_sweep \
    "$build/tests/crash_sim_test" --gtest_filter='CrashSimTest.*'
run crash_sim_mutation \
    "$build/tests/crash_sim_test" --gtest_filter='CrashMutationTest.*'
run direct_path_crash \
    "$build/tests/direct_path_test" --gtest_filter='DirectPathCrashTest.*'
run crash_random "$build/tests/crash_random_test"
run fuzz "$build/tests/fuzz_test"

{
  echo "samples=$AERIE_CRASH_SAMPLES"
  echo "seed=$AERIE_CRASH_SEED"
  echo "fuzz_scale=$AERIE_FUZZ_SCALE"
  echo "status=$status"
} >"$artifacts/matrix-params.txt"

if [ "$status" -ne 0 ]; then
  echo "crash matrix FAILED; replay with AERIE_CRASH_SEED=$AERIE_CRASH_SEED" \
       "and the (point, draw) printed in the failing log" >&2
fi
exit $status
