#!/usr/bin/env python3
"""Validate an aerie_top --json document against tools/telemetry_schema.json.

Reuses the dependency-free JSON Schema subset validator from
tools/validate_bench.py (stdlib only — CI and ctest run this without any
installed packages).

Beyond schema conformance, optional semantic gates for the CI smoke test:

  --min-processes N   require at least N live processes in the sample
  --min-layers N      require at least N per-layer span rows
  --require-logical-writes
                      require write_amp.logical_bytes > 0 (proves the
                      API-boundary logical byte counters and the per-layer
                      SCM accounting were both live)
  --require-lock-wait require nonzero lock-wait attribution: some layer's
                      lock_wait_ns > 0 or locks.wait_latency_us.count > 0
                      (proves the off-CPU wait plane end to end on a
                      contended multi-client run)
  --forbid-drops      fail when dropped.warning is true (segment capacity
                      was exhausted, so the sample is incomplete)

Exit code 0 when the document conforms, 1 with per-path errors otherwise.

Usage:
  tools/validate_telemetry.py top.json
  tools/validate_telemetry.py --min-processes 1 --min-layers 1 \
      --require-logical-writes top.json
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from validate_bench import Validator  # noqa: E402


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("document", help="aerie_top --json output file")
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "telemetry_schema.json"),
        help="schema file (default: tools/telemetry_schema.json)")
    parser.add_argument("--min-processes", type=int, default=0)
    parser.add_argument("--min-layers", type=int, default=0)
    parser.add_argument("--require-logical-writes", action="store_true")
    parser.add_argument("--require-lock-wait", action="store_true")
    parser.add_argument("--forbid-drops", action="store_true")
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)
    try:
        with open(args.document) as f:
            doc = json.load(f)
    except json.JSONDecodeError as e:
        print("FAIL: %s is not valid JSON: %s" % (args.document, e))
        return 1

    validator = Validator(schema)
    validator.check(doc, schema, "")
    errors = list(validator.errors)

    if len(doc.get("processes", [])) < args.min_processes:
        errors.append("$.processes: expected at least %d live process(es), "
                      "got %d" % (args.min_processes,
                                  len(doc.get("processes", []))))
    if len(doc.get("layers", {})) < args.min_layers:
        errors.append("$.layers: expected at least %d layer row(s), got %d"
                      % (args.min_layers, len(doc.get("layers", {}))))
    if args.require_logical_writes:
        logical = doc.get("write_amp", {}).get("logical_bytes", 0)
        if logical <= 0:
            errors.append("$.write_amp.logical_bytes: expected > 0, got %r"
                          % logical)
    if args.require_lock_wait:
        layer_wait = sum(row.get("lock_wait_ns", 0)
                         for row in doc.get("layers", {}).values())
        hist_count = (doc.get("locks", {})
                      .get("wait_latency_us", {}).get("count", 0))
        if layer_wait <= 0 and hist_count <= 0:
            errors.append(
                "$.layers[*].lock_wait_ns / $.locks.wait_latency_us.count: "
                "expected nonzero lock-wait attribution, got 0 / 0")
    if args.forbid_drops:
        if doc.get("dropped", {}).get("warning", False):
            errors.append("$.dropped: warning is true (%r entries, %r hists "
                          "dropped — telemetry incomplete)"
                          % (doc.get("dropped", {}).get("entries"),
                             doc.get("dropped", {}).get("hists")))

    if errors:
        print("FAIL: %s" % args.document)
        for err in errors:
            print("  " + err)
        return 1

    print("OK: %s (%d process(es), %d layer(s), %d rpc method(s), "
          "write amp %.2fx)" % (
              args.document, len(doc.get("processes", [])),
              len(doc.get("layers", {})), len(doc.get("rpc", {})),
              doc.get("write_amp", {}).get("amplification", 0.0)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
