#!/usr/bin/env python3
"""Unit tests for tools/bench_diff.py (and the schema validator's core).

Builds synthetic aggregates, perturbs them, and asserts the gate fires on a
real regression (20% throughput drop, 2x p99) but not on within-noise
wobble (2%). Run directly or via ctest (bench_diff_test).
"""

import copy
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_diff
import validate_bench


def make_aggregate():
    hist = {"count": 1000, "min": 800, "mean": 1500.0, "p50": 1400,
            "p95": 2600, "p99": 4000, "max": 9000}
    return {
        "schema_version": 1,
        "generated_utc": "2026-08-08T00:00:00Z",
        "git_sha": "abc123",
        "quick": False,
        "seed": 42,
        "host": {"os": "Linux", "machine": "x86_64", "cpus": 4},
        "benches": {
            "table2_filebench": {
                "schema_version": 1,
                "bench": "table2_filebench",
                "git_sha": "abc123",
                "config": {"scale": 0.05, "seconds": 0.5},
                "metrics": [
                    {"name": "fileserver.pxfs", "ops_per_sec": 50000.0,
                     "latency_ns": copy.deepcopy(hist)},
                    {"name": "webproxy.pxfs", "ops_per_sec": 80000.0,
                     "latency_ns": copy.deepcopy(hist)},
                    {"name": "vfs.share", "value": 40.0, "unit": "percent"},
                    {"name": "BM_PersistU64", "value": 55.0, "unit": "ns/op"},
                ],
                "layers": [{"layer": "tfs", "spans": 100,
                            "self_ns": 5000000, "total_ns": 9000000}],
                "hot_spans": [{"name": "tfs.write", "count": 100,
                               "self_ns": 5000000, "mean_self_us": 50.0}],
            }
        },
    }


def write_tmp(data, directory):
    fd, path = tempfile.mkstemp(suffix=".json", dir=directory)
    with os.fdopen(fd, "w") as f:
        json.dump(data, f)
    return path


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.base = make_aggregate()
        self.base_path = write_tmp(self.base, self.tmp.name)

    def tearDown(self):
        self.tmp.cleanup()

    def run_diff(self, new_aggregate, extra_args=()):
        new_path = write_tmp(new_aggregate, self.tmp.name)
        return bench_diff.main([self.base_path, new_path] + list(extra_args))

    def metrics(self, aggregate):
        return aggregate["benches"]["table2_filebench"]["metrics"]

    def test_unchanged_rerun_passes(self):
        self.assertEqual(self.run_diff(copy.deepcopy(self.base)), 0)

    def test_20pct_throughput_regression_fires(self):
        new = copy.deepcopy(self.base)
        self.metrics(new)[0]["ops_per_sec"] *= 0.80
        self.assertEqual(self.run_diff(new), 1)

    def test_2pct_wobble_passes(self):
        new = copy.deepcopy(self.base)
        for row in self.metrics(new):
            if "ops_per_sec" in row:
                row["ops_per_sec"] *= 0.98
            if "latency_ns" in row:
                row["latency_ns"]["p50"] *= 1.02
        self.assertEqual(self.run_diff(new), 0)

    def test_p50_doubling_fires(self):
        new = copy.deepcopy(self.base)
        self.metrics(new)[1]["latency_ns"]["p50"] *= 2.0
        self.assertEqual(self.run_diff(new), 1)

    def test_p99_tail_never_gates(self):
        # Tails of a single run are scheduler noise; they inform, not gate.
        new = copy.deepcopy(self.base)
        self.metrics(new)[1]["latency_ns"]["p99"] *= 8.0
        self.assertEqual(self.run_diff(new), 0)

    def test_quick_sweeps_widen_bands(self):
        # A 20% drop is within quick-mode noise; a 70% drop is a cliff.
        for factor, expected in ((0.80, 0), (0.30, 1)):
            new = copy.deepcopy(self.base)
            new["quick"] = True
            self.metrics(new)[0]["ops_per_sec"] *= factor
            self.assertEqual(self.run_diff(new), expected,
                             "factor %.2f" % factor)

    def test_ns_per_op_regression_fires(self):
        new = copy.deepcopy(self.base)
        self.metrics(new)[3]["value"] = 110.0  # 2x a 55ns/op primitive
        self.assertEqual(self.run_diff(new), 1)

    def test_percent_unit_never_gates(self):
        new = copy.deepcopy(self.base)
        self.metrics(new)[2]["value"] = 95.0  # workload shape, not speed
        self.assertEqual(self.run_diff(new), 0)

    def test_band_is_tunable(self):
        new = copy.deepcopy(self.base)
        self.metrics(new)[0]["ops_per_sec"] *= 0.80
        self.assertEqual(self.run_diff(new, ["--tput-band", "0.30"]), 0)

    def test_added_and_removed_metrics_do_not_gate(self):
        new = copy.deepcopy(self.base)
        self.metrics(new)[0]["name"] = "fileserver.renamed"
        self.assertEqual(self.run_diff(new), 0)

    def test_improvement_passes(self):
        new = copy.deepcopy(self.base)
        self.metrics(new)[0]["ops_per_sec"] *= 1.5
        self.metrics(new)[1]["latency_ns"]["p99"] *= 0.5
        self.assertEqual(self.run_diff(new), 0)


class ValidateBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.tmp.cleanup()

    def test_synthetic_aggregate_conforms(self):
        path = write_tmp(make_aggregate(), self.tmp.name)
        self.assertEqual(validate_bench.main([path]), 0)

    def test_missing_layers_rejected(self):
        bad = make_aggregate()
        bad["benches"]["table2_filebench"]["layers"] = []
        path = write_tmp(bad, self.tmp.name)
        self.assertEqual(validate_bench.main([path]), 1)

    def test_unknown_key_rejected(self):
        bad = make_aggregate()
        bad["benches"]["table2_filebench"]["metrics"][0]["bogus"] = 1
        path = write_tmp(bad, self.tmp.name)
        self.assertEqual(validate_bench.main([path]), 1)

    def test_record_mode(self):
        record = make_aggregate()["benches"]["table2_filebench"]
        path = write_tmp(record, self.tmp.name)
        self.assertEqual(validate_bench.main(["--record", path]), 0)
        self.assertEqual(validate_bench.main([path]), 1)  # not an aggregate


if __name__ == "__main__":
    unittest.main()
