#!/bin/sh
# Builds the concurrency-sensitive tests under ThreadSanitizer and runs them.
#
#   tools/check_tsan.sh [build-dir]
#
# Uses a separate build tree (default build-tsan/) so the regular build is
# untouched. Exits non-zero if any test races or fails.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-tsan"}
tests="obs_test telemetry_test trace_test rpc_test clerk_test lock_stress_test profiler_test"

cmake -B "$build" -S "$repo" -DAERIE_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
# shellcheck disable=SC2086
cmake --build "$build" -j "$(nproc)" --target $tests

status=0
for t in $tests; do
  echo "== TSan: $t =="
  if ! TSAN_OPTIONS="halt_on_error=1" "$build/tests/$t"; then
    echo "FAILED under TSan: $t" >&2
    status=1
  fi
done
exit $status
