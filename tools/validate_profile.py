#!/usr/bin/env python3
"""Validate sampling-profiler artifacts (src/obs/profiler.{h,cc}).

Two artifact kinds, either or both:

  --folded F   collapsed-stack file (AERIE_PROF_FOLDED): every line must be
               `layer;span[;frame...] <count>` — the flamegraph.pl /
               speedscope collapsed format — with a positive integer count,
               no empty stack components, and lines in sorted order (the
               exporter sorts for determinism, so out-of-order lines mean a
               writer bug or artifact corruption).
  --json J     profile JSON (AERIE_PROF_JSON), checked against
               tools/profile_schema.json with the dependency-free Validator
               from tools/validate_bench.py (stdlib only, like the other
               CI validators).

Semantic gates:

  --min-samples N   require at least N recorded samples: folded counts must
                    sum to >= N and/or json "samples" >= N. Use in CI to
                    prove a profiled bench actually sampled (a silent
                    always-empty profile would otherwise pass).

Exit code 0 when every named artifact conforms, 1 with per-path errors.

Usage:
  tools/validate_profile.py --folded prof.folded --min-samples 1
  tools/validate_profile.py --folded prof.folded --json prof.json
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from validate_bench import Validator  # noqa: E402

# layer;span[;frame...] <count> — components may not be empty; the exporter
# rewrites ';' and ' ' inside symbols, so the split is unambiguous.
FOLDED_LINE = re.compile(r"^([^ ;]+(?:;[^ ;]+)+) (\d+)$")


def check_folded(path, errors):
    """Returns the total sample count across all folded lines."""
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        errors.append("%s: cannot read: %s" % (path, e))
        return 0
    total = 0
    stacks = []
    for i, line in enumerate(lines, 1):
        m = FOLDED_LINE.match(line)
        if not m:
            errors.append("%s:%d: not `layer;span[;frame...] <count>`: %r"
                          % (path, i, line[:120]))
            continue
        count = int(m.group(2))
        if count < 1:
            errors.append("%s:%d: count must be >= 1" % (path, i))
        total += count
        stacks.append(m.group(1))
    # The exporter sorts element-wise by (layer, span, frames...), which is
    # not the same as sorting the joined line (';' is not the lowest byte),
    # so compare split components.
    if stacks != sorted(stacks, key=lambda s: s.split(";")):
        errors.append("%s: stacks are not sorted (exporter sorts for "
                      "determinism; unsorted output means corruption)"
                      % path)
    if len(stacks) != len(set(stacks)):
        errors.append("%s: duplicate folded stacks (aggregation failed to "
                      "merge identical keys)" % path)
    return total


def check_json(path, schema_path, errors):
    """Returns the json document's sample count."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        errors.append("%s: cannot read: %s" % (path, e))
        return 0
    except json.JSONDecodeError as e:
        errors.append("%s: invalid JSON: %s" % (path, e))
        return 0
    with open(schema_path) as f:
        schema = json.load(f)
    validator = Validator(schema)
    validator.check(doc, schema, "")
    errors.extend("%s: %s" % (path, e) for e in validator.errors)
    # Cross-field sanity the schema subset cannot express: stack counts
    # cannot exceed total samples (stacks only cover spanned samples).
    stack_total = sum(s.get("count", 0) for s in doc.get("stacks", []))
    if stack_total > doc.get("samples", 0):
        errors.append("%s: stack counts sum to %d > samples %d"
                      % (path, stack_total, doc.get("samples", 0)))
    return doc.get("samples", 0)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--folded", help="collapsed-stack artifact")
    parser.add_argument("--json", dest="json_path",
                        help="profile JSON artifact")
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "profile_schema.json"),
        help="schema file (default: tools/profile_schema.json)")
    parser.add_argument("--min-samples", type=int, default=0)
    args = parser.parse_args()
    if not args.folded and not args.json_path:
        parser.error("nothing to validate: pass --folded and/or --json")

    errors = []
    folded_total = json_total = 0
    if args.folded:
        folded_total = check_folded(args.folded, errors)
    if args.json_path:
        json_total = check_json(args.json_path, args.schema, errors)

    if args.min_samples > 0:
        if args.folded and folded_total < args.min_samples:
            errors.append("%s: folded counts sum to %d, expected >= %d"
                          % (args.folded, folded_total, args.min_samples))
        if args.json_path and json_total < args.min_samples:
            errors.append("%s: samples %d, expected >= %d"
                          % (args.json_path, json_total, args.min_samples))

    if errors:
        print("FAIL:")
        for err in errors:
            print("  " + err)
        return 1
    parts = []
    if args.folded:
        parts.append("%s (%d folded samples)" % (args.folded, folded_total))
    if args.json_path:
        parts.append("%s (%d samples)" % (args.json_path, json_total))
    print("OK: " + ", ".join(parts))
    return 0


if __name__ == "__main__":
    sys.exit(main())
