#!/usr/bin/env python3
"""Aggregate per-binary bench records into one BENCH_<date>.json.

tools/run_benches.sh points each bench binary at its own record file via
AERIE_BENCH_JSON, then calls this to merge them into the trajectory file
that gets checked in per PR and diffed by tools/bench_diff.py.

Also prints the ranked hot-path table: span self-time merged across every
bench's attribution pass, so one glance shows where the implementation
spends its time (paper Fig 1 flavor, but continuously tracked).

Stdlib only — CI runs this with no installed packages.

Usage:
  tools/aggregate_bench.py --out BENCH_20260808.json \
      [--git-sha SHA] [--quick] [--seed N] build/bench_reports/*.json
"""

import argparse
import datetime
import json
import os
import platform
import sys


def load_records(paths):
    records = {}
    for path in paths:
        with open(path) as f:
            record = json.load(f)
        name = record.get("bench")
        if not name:
            raise ValueError("%s: record has no 'bench' field" % path)
        if name in records:
            raise ValueError("duplicate bench record %r (from %s)" %
                             (name, path))
        records[name] = record
    return records


def hot_path_table(records, top=15):
    """Merge hot_spans across records; rank by total self-time."""
    merged = {}  # span name -> [self_ns, count, set(benches)]
    for bench, record in records.items():
        for span in record.get("hot_spans", []):
            entry = merged.setdefault(span["name"], [0, 0, set()])
            entry[0] += span["self_ns"]
            entry[1] += span["count"]
            entry[2].add(bench)
    rows = sorted(merged.items(), key=lambda kv: kv[1][0], reverse=True)
    total_self = sum(e[0] for e in merged.values()) or 1
    lines = ["%-28s %10s %12s %8s  %s" %
             ("span", "self(ms)", "count", "share", "benches")]
    for name, (self_ns, count, benches) in rows[:top]:
        lines.append("%-28s %10.2f %12d %7.1f%%  %s" %
                     (name, self_ns / 1e6, count,
                      100.0 * self_ns / total_self,
                      ",".join(sorted(benches)[:3]) +
                      ("..." if len(benches) > 3 else "")))
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Merge bench records into a BENCH_<date>.json aggregate")
    parser.add_argument("records", nargs="+",
                        help="per-binary record files (AERIE_BENCH_JSON)")
    parser.add_argument("--out", required=True, help="aggregate output path")
    parser.add_argument("--git-sha", default=os.environ.get(
        "AERIE_GIT_SHA", "unknown"))
    parser.add_argument("--quick", action="store_true",
                        help="mark this as a reduced-scale (CI) sweep")
    parser.add_argument("--seed", type=int,
                        default=int(os.environ.get("AERIE_BENCH_SEED", "42")))
    args = parser.parse_args(argv)

    try:
        records = load_records(args.records)
    except (OSError, ValueError) as e:
        print("aggregate_bench: %s" % e, file=sys.stderr)
        return 1

    aggregate = {
        "schema_version": 1,
        "generated_utc": datetime.datetime.now(datetime.timezone.utc)
                         .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_sha": args.git_sha,
        "quick": args.quick,
        "seed": args.seed,
        "host": {
            "os": "%s %s" % (platform.system(), platform.release()),
            "machine": platform.machine(),
            "cpus": os.cpu_count() or 0,
        },
        "benches": records,
    }
    with open(args.out, "w") as f:
        json.dump(aggregate, f, indent=1, sort_keys=True)
        f.write("\n")

    metric_count = sum(len(r.get("metrics", [])) for r in records.values())
    print("aggregate_bench: wrote %s (%d benches, %d metrics, git=%s%s)" %
          (args.out, len(records), metric_count, args.git_sha,
           ", quick" if args.quick else ""))
    print("\n# Hot paths (span self-time across all attribution passes)")
    print(hot_path_table(records))
    return 0


if __name__ == "__main__":
    sys.exit(main())
