#!/usr/bin/env python3
"""Validates a trace file emitted by obs::DumpTraceJson.

Checks that the file is well-formed Chrome trace-event / Perfetto JSON:
a top-level object with a "traceEvents" list whose entries carry the
fields their phase requires ("X" needs ts+dur, "B"/"i" need ts, "M" is
metadata). With --require-cross-layer it additionally asserts the
acceptance property of the tracing subsystem: at least one trace_id is
shared between a client-layer span (pxfs.*/flatfs.*) and a trusted-side
span (tfs.*/lockservice.*), i.e. the context really crossed the RPC
boundary.

Usage: validate_trace.py [--require-cross-layer] trace.json
Exits 0 on success, 1 with a diagnostic on failure.
"""

import argparse
import json
import sys

CLIENT_LAYERS = {"pxfs", "flatfs"}
TRUSTED_LAYERS = {"tfs", "lockservice"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def layer_of(name):
    return name.split(".", 1)[0]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--require-cross-layer", action="store_true")
    parser.add_argument("trace_file")
    args = parser.parse_args()

    try:
        with open(args.trace_file, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {args.trace_file}: {e}")
    except json.JSONDecodeError as e:
        fail(f"not valid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not a list")

    spans = 0
    # trace_id -> set of layers that recorded a span in that trace
    trace_layers = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "M"):
            fail(f"event {i} has unknown phase {ph!r}")
        if "name" not in ev or "pid" not in ev:
            fail(f"event {i} missing name/pid")
        if ph == "M":
            continue
        if "ts" not in ev or "tid" not in ev:
            fail(f"event {i} ({ev.get('name')}) missing ts/tid")
        if ph == "X":
            if "dur" not in ev:
                fail(f"event {i} ({ev.get('name')}) is X without dur")
            spans += 1
        trace_id = ev.get("args", {}).get("trace_id", "0")
        if ph in ("X", "B") and trace_id != "0":
            trace_layers.setdefault(trace_id, set()).add(
                layer_of(ev["name"]))

    if args.require_cross_layer:
        if spans == 0:
            fail("no completed spans in trace")
        stitched = [
            t for t, layers in trace_layers.items()
            if layers & CLIENT_LAYERS and layers & TRUSTED_LAYERS
        ]
        if not stitched:
            fail(
                "no trace_id is shared between a client span "
                f"({sorted(CLIENT_LAYERS)}) and a trusted-side span "
                f"({sorted(TRUSTED_LAYERS)}); traces seen: "
                f"{len(trace_layers)}")
        print(f"validate_trace: {len(stitched)} cross-layer traces "
              f"(example trace_id={stitched[0]})")

    print(f"validate_trace: OK: {len(events)} events, {spans} spans, "
          f"{len(trace_layers)} traces")


if __name__ == "__main__":
    main()
