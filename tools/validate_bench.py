#!/usr/bin/env python3
"""Validate a bench JSON file against tools/bench_schema.json.

Validates either an aggregate BENCH_<date>.json (default) or a single
per-binary record emitted via AERIE_BENCH_JSON (--record).

The validator is a small, dependency-free subset of JSON Schema — just what
bench_schema.json uses: type (string or list), required, properties,
additionalProperties (bool or schema), items, minItems, minProperties,
minimum, enum, and $ref into #/$defs. The stdlib-only constraint is
deliberate: CI and ctest run this without any installed packages.

Exit code 0 when the file conforms, 1 with per-path errors otherwise.

Usage:
  tools/validate_bench.py BENCH_20260808.json
  tools/validate_bench.py --record build/bench_reports/table1_microbench.json
"""

import argparse
import json
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


class Validator:
    def __init__(self, root_schema):
        self.root = root_schema
        self.errors = []

    def fail(self, path, message):
        self.errors.append("%s: %s" % (path or "$", message))

    def resolve(self, schema):
        while isinstance(schema, dict) and "$ref" in schema:
            ref = schema["$ref"]
            if not ref.startswith("#/"):
                raise ValueError("unsupported $ref: %s" % ref)
            node = self.root
            for part in ref[2:].split("/"):
                node = node[part]
            schema = node
        return schema

    def check(self, value, schema, path):
        schema = self.resolve(schema)
        if schema is True:
            return
        if schema is False:
            self.fail(path, "no value allowed here")
            return

        if "enum" in schema:
            if value not in schema["enum"]:
                self.fail(path, "value %r not in enum %r" %
                          (value, schema["enum"]))
                return

        if "type" in schema:
            types = schema["type"]
            if isinstance(types, str):
                types = [types]
            if not any(TYPE_CHECKS[t](value) for t in types):
                self.fail(path, "expected type %s, got %s" %
                          ("/".join(types), type(value).__name__))
                return

        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if "minimum" in schema and value < schema["minimum"]:
                self.fail(path, "value %r below minimum %r" %
                          (value, schema["minimum"]))

        if isinstance(value, dict):
            self.check_object(value, schema, path)
        elif isinstance(value, list):
            self.check_array(value, schema, path)

    def check_object(self, value, schema, path):
        for key in schema.get("required", []):
            if key not in value:
                self.fail(path, "missing required key %r" % key)
        if "minProperties" in schema and len(value) < schema["minProperties"]:
            self.fail(path, "expected at least %d properties, got %d" %
                      (schema["minProperties"], len(value)))
        props = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, item in value.items():
            child = "%s.%s" % (path, key) if path else key
            if key in props:
                self.check(item, props[key], child)
            elif additional is False:
                self.fail(path, "unexpected key %r" % key)
            elif additional is not True:
                self.check(item, additional, child)

    def check_array(self, value, schema, path):
        if "minItems" in schema and len(value) < schema["minItems"]:
            self.fail(path, "expected at least %d items, got %d" %
                      (schema["minItems"], len(value)))
        if "items" in schema:
            for i, item in enumerate(value):
                self.check(item, schema["items"], "%s[%d]" % (path, i))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Validate BENCH_*.json / bench records against the "
                    "checked-in schema")
    parser.add_argument("file", help="JSON file to validate")
    parser.add_argument("--schema", default=None,
                        help="schema path (default: bench_schema.json next "
                             "to this script)")
    parser.add_argument("--record", action="store_true",
                        help="validate a single per-binary record "
                             "(#/$defs/record) instead of an aggregate")
    args = parser.parse_args(argv)

    schema_path = args.schema
    if schema_path is None:
        import os
        schema_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                   "bench_schema.json")
    try:
        with open(schema_path) as f:
            schema = json.load(f)
    except (OSError, ValueError) as e:
        print("validate_bench: cannot load schema %s: %s" % (schema_path, e),
              file=sys.stderr)
        return 1
    try:
        with open(args.file) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print("validate_bench: cannot load %s: %s" % (args.file, e),
              file=sys.stderr)
        return 1

    validator = Validator(schema)
    target = schema["$defs"]["record"] if args.record else schema
    validator.check(data, target, "")
    if validator.errors:
        print("validate_bench: %s FAILED (%d error%s)" %
              (args.file, len(validator.errors),
               "" if len(validator.errors) == 1 else "s"), file=sys.stderr)
        for err in validator.errors:
            print("  " + err, file=sys.stderr)
        return 1

    if args.record:
        print("validate_bench: OK %s (bench=%s, %d metrics, %d layers)" %
              (args.file, data.get("bench"), len(data.get("metrics", [])),
               len(data.get("layers", []))))
    else:
        print("validate_bench: OK %s (%d benches, git=%s)" %
              (args.file, len(data.get("benches", {})), data.get("git_sha")))
    return 0


if __name__ == "__main__":
    sys.exit(main())
