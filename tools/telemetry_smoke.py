#!/usr/bin/env python3
"""CI smoke test for the live telemetry plane.

Launches a real multi-client bench (table3_multiclient) with the
shared-memory publisher enabled in a private segment directory, attaches
aerie_top --json MID-RUN (while the bench is still working), and validates
the document against tools/telemetry_schema.json — requiring at least one
live process, at least one per-layer span row, a nonzero logical write
byte count so the write-amplification pipeline is proven end to end, and
nonzero lock-wait attribution so the off-CPU wait plane is proven on a
genuinely contended multi-client run. The sampling profiler is enabled
(AERIE_PROF=1) so SIGPROF coexisting with the shm publisher is exercised
here too.

Stdlib only; wired as the `telemetry_smoke` ctest target.

Usage:
  tools/telemetry_smoke.py --bench build/bench/table3_multiclient \
      --aerie-top build/tools/aerie_top
"""

import argparse
import glob
import json
import os
import subprocess
import sys
import tempfile
import time


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="path to the table3_multiclient binary")
    parser.add_argument("--aerie-top", required=True,
                        help="path to the aerie_top binary")
    parser.add_argument("--seconds", type=float, default=3.0,
                        help="bench seconds per data point (default 3)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="overall deadline in seconds (default 120)")
    args = parser.parse_args()

    tools_dir = os.path.dirname(os.path.abspath(__file__))
    deadline = time.monotonic() + args.timeout

    with tempfile.TemporaryDirectory(prefix="aerie_telemetry_smoke_") as shm:
        env = dict(os.environ)
        env.update({
            "AERIE_OBS": "spans",
            "AERIE_OBS_SHM_DIR": shm,
            "AERIE_OBS_SHM_INTERVAL_MS": "50",
            "AERIE_PROF": "1",
            # Scale 0.05 (not 0.02): the lock-wait gate below needs enough
            # clients per directory tree that acquires actually contend.
            "AERIE_BENCH_SCALE": "0.05",
            "AERIE_BENCH_SECONDS": "%g" % args.seconds,
        })
        bench = subprocess.Popen(
            [args.bench], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            # Wait for the bench's segment to appear and accumulate a little
            # work, then sample while it is still running.
            pattern = os.path.join(shm, "aerie.obs.*")
            while not glob.glob(pattern):
                if bench.poll() is not None:
                    print("FAIL: bench exited (rc=%s) before publishing a "
                          "telemetry segment" % bench.returncode)
                    return 1
                if time.monotonic() > deadline:
                    print("FAIL: no telemetry segment within the deadline")
                    return 1
                time.sleep(0.05)
            time.sleep(1.0)

            if bench.poll() is not None:
                print("FAIL: bench exited before aerie_top could attach")
                return 1
            top = subprocess.run(
                [args.aerie_top, "--json", "--dir", shm, "--interval",
                 "500"],
                capture_output=True, text=True,
                timeout=max(5.0, deadline - time.monotonic()))
            if top.returncode != 0:
                print("FAIL: aerie_top exited %d\n%s" %
                      (top.returncode, top.stderr))
                return 1
            attached_live = bench.poll() is None
        finally:
            bench.terminate()
            try:
                bench.wait(timeout=30)
            except subprocess.TimeoutExpired:
                bench.kill()
                bench.wait()

        doc_path = os.path.join(shm, "top.json")
        with open(doc_path, "w") as f:
            f.write(top.stdout)

        # Sanity-parse before handing to the validator for nicer errors.
        try:
            doc = json.loads(top.stdout)
        except json.JSONDecodeError as e:
            print("FAIL: aerie_top --json emitted invalid JSON: %s\n%s"
                  % (e, top.stdout[:2000]))
            return 1

        rc = subprocess.call([
            sys.executable, os.path.join(tools_dir, "validate_telemetry.py"),
            "--min-processes", "1", "--min-layers", "1",
            "--require-logical-writes", "--require-lock-wait", doc_path])
        if rc != 0:
            return rc

        if not attached_live:
            print("FAIL: bench finished before the sample was taken — "
                  "increase --seconds so aerie_top attaches mid-run")
            return 1

        print("OK: attached mid-run; %d process(es), %d layer row(s), "
              "write amp %.2fx over %d logical bytes" % (
                  len(doc["processes"]), len(doc["layers"]),
                  doc["write_amp"]["amplification"],
                  doc["write_amp"]["logical_bytes"]))
        return 0


if __name__ == "__main__":
    sys.exit(main())
