#!/usr/bin/env bash
# Benchmark sweep driver: runs every bench binary, collects the per-binary
# JSON records (AERIE_BENCH_JSON), and aggregates them into BENCH_<date>.json
# at the repo root — the trajectory file that bench_diff.py gates on.
#
#   tools/run_benches.sh            full sweep (~minutes; nightly CI)
#   tools/run_benches.sh --quick    reduced scales (~1 min; per-PR CI)
#
# Options:
#   --quick        reduced scales/windows for CI and smoke runs
#   --only REGEX   run only benches whose name matches REGEX (the aggregate
#                  then contains just those records; used by the CI
#                  direct-path A/B lane to sweep fig1/table1 twice)
#   --out FILE     aggregate output path (default BENCH_<YYYYMMDD>.json)
#   --build-dir D  build tree containing bench/ (default <repo>/build)
#   --skip-traces  skip the Perfetto trace passes (full mode only)
#
# Reproducibility: AERIE_BENCH_SEED (default 42) seeds every workload RNG;
# AERIE_GIT_SHA is stamped into every record. Scales are sized for a
# single-core host; AERIE_BENCH_SCALE=1.0 with longer windows reproduces the
# paper's configurations on bigger machines.
#
# Profiling: the SIGPROF sampler (src/obs/profiler.cc) is on by default so
# every record carries per-layer cpu_us / lock_wait_us / rpc_wait_us and each
# bench leaves <name>.folded + <name>.prof.json next to its record (feed the
# .folded file to flamegraph.pl or speedscope). AERIE_PROF=0 disables it.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="$ROOT/build"
QUICK=0
SKIP_TRACES=0
OUT=""
ONLY=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1; shift ;;
    --only) ONLY="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    --build-dir) BUILD="$2"; shift 2 ;;
    --skip-traces) SKIP_TRACES=1; shift ;;
    -h|--help) sed -n '2,17p' "${BASH_SOURCE[0]}"; exit 0 ;;
    *) echo "run_benches: unknown option '$1' (try --help)" >&2; exit 2 ;;
  esac
done

if [[ ! -x "$BUILD/bench/table1_microbench" ]]; then
  echo "run_benches: bench binaries missing; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

export AERIE_BENCH_SEED="${AERIE_BENCH_SEED:-42}"
export AERIE_PROF="${AERIE_PROF:-1}"
export AERIE_GIT_SHA="${AERIE_GIT_SHA:-$(git -C "$ROOT" rev-parse --short=12 HEAD 2>/dev/null || echo unknown)}"
if [[ -z "$OUT" ]]; then
  OUT="$ROOT/BENCH_$(date -u +%Y%m%d).json"
fi

REPORTS="$BUILD/bench_reports"
# Profile artifacts live in a subdirectory so the aggregate step's
# $REPORTS/*.json glob only ever sees bench records.
PROFILES="$REPORTS/profiles"
rm -rf "$REPORTS"
mkdir -p "$REPORTS" "$PROFILES"

# run_bench <binary> <scale> <seconds> [threads] [extra args...]
# Measurement runs in counters mode; each binary flips to span mode itself
# for its short attribution pass, so spans never perturb the numbers. When
# AERIE_PROF=1 the sampler runs for the whole process and the folded-stack /
# profile-JSON artifacts land next to the record; each pair is validated
# right after the run so a silently-empty profile fails the sweep.
run_bench() {
  local name="$1" scale="$2" seconds="$3" threads="${4:-1}"
  shift 4 || shift $#
  if [[ -n "$ONLY" && ! "$name" =~ $ONLY ]]; then
    return 0
  fi
  echo
  echo "=== $name (scale=$scale seconds=$seconds threads=$threads) ==="
  local prof_env=()
  if [[ "$AERIE_PROF" == 1 ]]; then
    prof_env=(AERIE_PROF_FOLDED="$PROFILES/$name.folded"
              AERIE_PROF_JSON="$PROFILES/$name.prof.json")
  fi
  env AERIE_OBS=counters \
      AERIE_BENCH_SCALE="$scale" \
      AERIE_BENCH_SECONDS="$seconds" \
      AERIE_BENCH_THREADS="$threads" \
      AERIE_BENCH_JSON="$REPORTS/$name.json" \
      "${prof_env[@]}" \
    "$BUILD/bench/$name" "$@"
  if [[ "$AERIE_PROF" == 1 ]]; then
    python3 "$ROOT/tools/validate_profile.py" \
      --folded "$PROFILES/$name.folded" --json "$PROFILES/$name.prof.json" \
      --min-samples 1
  fi
}

if [[ "$QUICK" == 1 ]]; then
  echo "# quick sweep (reduced scales) seed=$AERIE_BENCH_SEED git=$AERIE_GIT_SHA"
  run_bench fig1_vfs_breakdown     0.02 0.4
  run_bench table1_microbench      0.05 0.4
  run_bench table2_filebench       0.05 0.5
  run_bench fig5_thread_scaling    0.02 0.4 2
  run_bench table3_multiclient     0.05 0.4
  run_bench fig6_write_latency     0.02 0.4
  run_bench micro_permission_change 0.05 0.4
  run_bench ablation_batching      0.05 0.5
  run_bench ablation_name_cache    0.05 0.5
  run_bench ablation_lock_modes    0.05 0.5
  run_bench ablation_rpc_cost      0.02 0.4
  run_bench ablation_direct_path   0.05 0.4
  run_bench gbench_primitives      0.05 0.4 1 --benchmark_min_time=0.05
else
  echo "# full sweep seed=$AERIE_BENCH_SEED git=$AERIE_GIT_SHA"
  run_bench fig1_vfs_breakdown     0.1  1
  run_bench table1_microbench      0.25 1
  run_bench table2_filebench       0.2  3
  run_bench fig5_thread_scaling    0.05 1.5 4
  run_bench table3_multiclient     0.15 2
  run_bench fig6_write_latency     0.05 2
  run_bench micro_permission_change 0.25 1
  run_bench ablation_batching      0.1  2
  run_bench ablation_name_cache    0.2  2
  run_bench ablation_lock_modes    0.1  2
  run_bench ablation_rpc_cost      0.05 1
  run_bench ablation_direct_path   0.1  1
  run_bench gbench_primitives      0.1  1 1 --benchmark_min_time=0.2
fi

echo
echo "=== aggregate ==="
QUICK_FLAG=()
if [[ "$QUICK" == 1 ]]; then
  QUICK_FLAG=(--quick)
fi
python3 "$ROOT/tools/aggregate_bench.py" \
  --out "$OUT" --git-sha "$AERIE_GIT_SHA" --seed "$AERIE_BENCH_SEED" \
  "${QUICK_FLAG[@]}" "$REPORTS"/*.json
python3 "$ROOT/tools/validate_bench.py" "$OUT"

if [[ "$QUICK" == 0 && "$SKIP_TRACES" == 0 ]]; then
  # Per-operation trace pass (separate short runs: span mode perturbs the
  # throughput numbers above). Open the JSON in ui.perfetto.dev.
  echo
  echo "=== perfetto traces ==="
  AERIE_OBS=spans AERIE_TRACE_FILE="$BUILD/trace_fig1.json" \
    AERIE_BENCH_SCALE=0.02 "$BUILD/bench/fig1_vfs_breakdown" > /dev/null
  AERIE_OBS=spans AERIE_TRACE_FILE="$BUILD/trace_table3.json" \
    AERIE_BENCH_SCALE=0.05 AERIE_BENCH_SECONDS=0.5 \
    "$BUILD/bench/table3_multiclient" > /dev/null
  ls -l "$BUILD/trace_fig1.json" "$BUILD/trace_table3.json"
fi

echo
echo "run_benches: done -> $OUT"
