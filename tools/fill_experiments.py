#!/usr/bin/env python3
"""Folds bench_output.txt sections into EXPERIMENTS.md's MEASURED_* slots.

Usage: tools/fill_experiments.py [bench_output.txt] [EXPERIMENTS.md]
Idempotent only on a fresh EXPERIMENTS.md containing the placeholders.
"""
import re
import sys


def section(text, start_marker, end_marker=None):
    """Lines from the line containing start_marker up to (not incl.) the
    line containing end_marker (or the next '+ ' command echo)."""
    lines = text.splitlines()
    out = []
    capturing = False
    for line in lines:
        if not capturing and start_marker in line:
            capturing = True
        if capturing:
            if end_marker and end_marker in line and out:
                break
            if line.startswith("+ ") and out:
                break
            out.append(line)
    return "\n".join(out).strip()


def code_block(body):
    return "```\n" + body + "\n```"


def main():
    bench_path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    md_path = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
    bench = open(bench_path).read()
    # Strip the set -x command echoes' noise prefixes for readability.
    bench = "\n".join(
        line for line in bench.splitlines() if not line.startswith("WARNING"))

    slots = {
        "MEASURED_FIG1": section(bench, "# Figure 1"),
        "MEASURED_TABLE1": section(bench, "# Table 1"),
        "MEASURED_TABLE2": section(bench, "# Table 2"),
        "MEASURED_FIG5": section(bench, "# Figure 5"),
        "MEASURED_TABLE3": section(bench, "# Table 3"),
        "MEASURED_FIG6": section(bench, "# Figure 6"),
        "MEASURED_PERM": section(bench, "# Permission change"),
        "MEASURED_BATCHING": section(bench, "# Ablation: batch size"),
        "MEASURED_NAMECACHE": section(bench, "# Ablation: path-name cache"),
        "MEASURED_LOCKMODES": section(bench,
                                      "# Ablation: hierarchical vs explicit"),
        "MEASURED_RPC": section(bench, "# Ablation: RPC round-trip"),
        "MEASURED_GBENCH": section(bench, "BM_PersistU64",
                                   "BENCH EXIT"),
    }

    md = open(md_path).read()
    for slot, body in slots.items():
        if not body:
            body = "(section missing from bench_output.txt)"
        md = md.replace(slot, code_block(body))
    open(md_path, "w").write(md)
    print("filled", sum(1 for b in slots.values() if b), "sections")


if __name__ == "__main__":
    main()
