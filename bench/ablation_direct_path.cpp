// Ablation: zero-RPC direct data path (DESIGN.md §10).
//
// A/B of the SplitFS-style lease-guarded fast path: warmed sequential 4KB
// reads, aligned in-place 4KB overwrites (PXFS), and cached-value gets
// (FlatFS), each with the direct path enabled and disabled via the interface
// options (the AERIE_DIRECT environment variable gates the same code in
// stock binaries — the CI A/B lane uses it on fig1/table1).
//
// With the path on, warmed reads and overwrites are a userspace memcpy
// guarded by the clerk's direct-access epoch: no lock RPC, no clerk mutex,
// no service involvement — so the span attribution pass should show the
// rpc layer's self-time collapse to noise.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/flatfs/flatfs.h"
#include "src/pxfs/pxfs.h"

namespace {

using namespace aerie;
using namespace aerie::bench;

constexpr uint64_t kPage = 4096;

struct PxfsRates {
  double read_ops = 0;
  double write_ops = 0;
  uint64_t direct_read_bytes = 0;
  uint64_t direct_write_bytes = 0;
};

PxfsRates MeasurePxfs(bool direct, int pages, double seconds) {
  auto sut = SystemUnderTest::Create(SutKind::kPxfs, DefaultSutOptions());
  BENCH_CHECK_OK(sut);
  auto client = (*sut)->aerie()->NewClient(LibFs::Options{});
  BENCH_CHECK_OK(client);
  Pxfs::Options options;
  options.direct_data = direct;
  Pxfs fs((*client)->fs(), options);

  BENCH_CHECK_STATUS(fs.Mkdir("/direct"));
  auto fd = fs.Open("/direct/data", kOpenCreate | kOpenRead | kOpenWrite);
  BENCH_CHECK_OK(fd);
  const std::string page(kPage, 'x');
  for (int p = 0; p < pages; ++p) {
    BENCH_CHECK_OK(
        fs.Pwrite(*fd, p * kPage, {page.data(), page.size()}));
  }
  BENCH_CHECK_STATUS(fs.SyncAll());

  PxfsRates rates;
  std::string buf(kPage, '\0');
  // Warm-up pass populates the extent-map cache (first read runs locked).
  for (int p = 0; p < pages; ++p) {
    BENCH_CHECK_OK(fs.Pread(*fd, p * kPage, {buf.data(), buf.size()}));
  }
  {
    Stopwatch sw;
    uint64_t ops = 0;
    while (sw.ElapsedSeconds() < seconds) {
      const uint64_t off = (ops % pages) * kPage;
      BENCH_CHECK_OK(fs.Pread(*fd, off, {buf.data(), buf.size()}));
      ops++;
    }
    rates.read_ops = static_cast<double>(ops) / sw.ElapsedSeconds();
  }
  {
    Stopwatch sw;
    uint64_t ops = 0;
    while (sw.ElapsedSeconds() < seconds) {
      // Stride the pages so consecutive overwrites don't share lines.
      const uint64_t off = ((ops * 7) % pages) * kPage;
      BENCH_CHECK_OK(fs.Pwrite(*fd, off, {page.data(), page.size()}));
      ops++;
    }
    rates.write_ops = static_cast<double>(ops) / sw.ElapsedSeconds();
  }
  rates.direct_read_bytes = (*client)->fs()->direct_read_bytes();
  rates.direct_write_bytes = (*client)->fs()->direct_write_bytes();
  BENCH_CHECK_STATUS(fs.Close(*fd));
  return rates;
}

double MeasureFlatGet(bool direct, int values, double seconds) {
  auto sut = SystemUnderTest::Create(SutKind::kFlatFs, DefaultSutOptions());
  BENCH_CHECK_OK(sut);
  auto client = (*sut)->aerie()->NewClient(LibFs::Options{});
  BENCH_CHECK_OK(client);
  FlatFs::Options options;
  options.direct_data = direct;
  FlatFs flat((*client)->fs(), options);

  const std::string value(kPage, 'v');
  for (int i = 0; i < values; ++i) {
    BENCH_CHECK_STATUS(
        flat.Put("obj" + std::to_string(i), {value.data(), value.size()}));
  }
  std::string buf(kPage, '\0');
  // Warm the value-location cache.
  for (int i = 0; i < values; ++i) {
    BENCH_CHECK_OK(
        flat.Get("obj" + std::to_string(i), {buf.data(), buf.size()}));
  }
  Stopwatch sw;
  uint64_t ops = 0;
  while (sw.ElapsedSeconds() < seconds) {
    BENCH_CHECK_OK(flat.Get("obj" + std::to_string(ops % values),
                            {buf.data(), buf.size()}));
    ops++;
  }
  return static_cast<double>(ops) / sw.ElapsedSeconds();
}

}  // namespace

int main() {
  const double scale = Scale();
  const double seconds = Seconds();
  const int pages = std::max(8, static_cast<int>(256 * scale));
  const int values = std::max(16, static_cast<int>(1024 * scale));

  std::printf("# Ablation: zero-RPC direct data path (4KB ops)\n");
  std::printf("# scale=%.3f, %gs per point, file=%d pages, %d flat values\n\n",
              scale, seconds, pages, values);
  std::printf("%-22s %14s %14s\n", "op", "direct off", "direct on");

  obs::BenchReport report = MakeReport("ablation_direct_path");
  report.SetConfig("pages", static_cast<double>(pages));
  report.SetConfig("values", static_cast<double>(values));

  PxfsRates off = MeasurePxfs(false, pages, seconds);
  PxfsRates on = MeasurePxfs(true, pages, seconds);
  std::printf("%-22s %14.1f %14.1f\n", "seq_read ops/s", off.read_ops,
              on.read_ops);
  std::printf("%-22s %14.1f %14.1f\n", "aligned_overwrite ops/s",
              off.write_ops, on.write_ops);
  report.AddThroughput("seq_read.direct_off", off.read_ops);
  report.AddThroughput("seq_read.direct_on", on.read_ops);
  report.AddThroughput("overwrite.direct_off", off.write_ops);
  report.AddThroughput("overwrite.direct_on", on.write_ops);
  report.AddValue("direct_on.read_bytes",
                  static_cast<double>(on.direct_read_bytes), "bytes");
  report.AddValue("direct_on.write_bytes",
                  static_cast<double>(on.direct_write_bytes), "bytes");
  report.AddValue("direct_off.read_bytes",
                  static_cast<double>(off.direct_read_bytes), "bytes");

  const double flat_off = MeasureFlatGet(false, values, seconds);
  const double flat_on = MeasureFlatGet(true, values, seconds);
  std::printf("%-22s %14.1f %14.1f\n", "flat_get ops/s", flat_off, flat_on);
  report.AddThroughput("flat_get.direct_off", flat_off);
  report.AddThroughput("flat_get.direct_on", flat_on);

  // Attribution pass: short span-mode rerun with the direct path ON. The
  // point of the PR: rpc/lock layers should carry ~no self-time on the
  // warmed read/overwrite loop.
  SpanAttributionPass([&] {
    MeasurePxfs(true, pages, std::min(seconds, 0.5));
  });
  report.CaptureAttribution();
  FinishReport(report);
  return 0;
}
