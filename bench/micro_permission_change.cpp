// Permission-change microbenchmark (paper §7.2.1, text):
//
//   "Changing protection takes 3.3us per page that has been referenced,
//    most of which is TLB shootdown time."
//
// Measures scm_mprotect_extent for extents of growing size, with all pages
// referenced (soft-faulted into a process context), both with the soft page
// table alone and with real mprotect() doing genuine page-table + TLB work.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/scm/manager.h"

int main() {
  using namespace aerie;
  using namespace aerie::bench;

  std::printf("# Permission change cost per referenced page\n");
  std::printf("# paper: 3.3us/page (TLB shootdown dominated)\n\n");

  obs::BenchReport report = MakeReport("micro_permission_change");

  for (const bool hard : {false, true}) {
    auto region = ScmRegion::CreateAnonymous(256ull << 20);
    BENCH_CHECK_OK(region);
    ScmManager::Options options;
    options.max_extents = 1 << 14;
    options.hard_protect = hard;
    auto mgr = ScmManager::Format(region->get(), options);
    BENCH_CHECK_OK(mgr);

    ProcessContext ctx({0});
    (*mgr)->RegisterContext(&ctx);

    std::printf("## %s\n", hard ? "hard (real mprotect per page)"
                                : "soft (page-table emulation only)");
    std::printf("%10s %14s %16s\n", "pages", "total(us)", "per-page(us)");
    for (uint64_t pages : {1ull, 16ull, 256ull, 4096ull}) {
      const uint64_t start = (*mgr)->data_start();
      const uint64_t len = pages * kScmPageSize;
      BENCH_CHECK_STATUS((*mgr)->CreateExtent(start, len, MakeAcl(0, 3)));
      // Reference every page so each has a (soft) PTE to shoot down.
      BENCH_CHECK_STATUS((*mgr)->TouchRange(&ctx, start, len, 1));

      Stopwatch sw;
      BENCH_CHECK_STATUS(
          (*mgr)->MprotectExtent(start, MakeAcl(0, kAclRightRead)));
      const double total_us = sw.ElapsedMicros();
      std::printf("%10llu %14.2f %16.3f\n",
                  static_cast<unsigned long long>(pages), total_us,
                  total_us / static_cast<double>(pages));
      report.AddValue(std::string("mprotect.") + (hard ? "hard" : "soft") +
                          ".pages" + std::to_string(pages) + ".per_page_us",
                      total_us / static_cast<double>(pages), "us");
      // Restore and destroy for the next size.
      BENCH_CHECK_STATUS((*mgr)->MprotectExtent(start, MakeAcl(0, 3)));
      if (hard) {
        BENCH_CHECK_STATUS(region->get()->HardProtect(start, len, 3));
      }
      BENCH_CHECK_STATUS((*mgr)->DestroyExtent(start));
    }
    (*mgr)->UnregisterContext(&ctx);
    std::printf("\n");
  }

  // Attribution pass: extent create/destroy persists through the SCM
  // primitives, so the record carries scm-layer flush self-time.
  SpanAttributionPass([&] {
    auto region = ScmRegion::CreateAnonymous(64ull << 20);
    BENCH_CHECK_OK(region);
    ScmManager::Options options;
    options.max_extents = 1 << 10;
    auto mgr = ScmManager::Format(region->get(), options);
    BENCH_CHECK_OK(mgr);
    ProcessContext ctx({0});
    (*mgr)->RegisterContext(&ctx);
    for (int i = 0; i < 200; ++i) {
      const uint64_t start = (*mgr)->data_start();
      BENCH_CHECK_STATUS(
          (*mgr)->CreateExtent(start, 4 * kScmPageSize, MakeAcl(0, 3)));
      BENCH_CHECK_STATUS(
          (*mgr)->TouchRange(&ctx, start, 4 * kScmPageSize, 1));
      BENCH_CHECK_STATUS(
          (*mgr)->MprotectExtent(start, MakeAcl(0, kAclRightRead)));
      BENCH_CHECK_STATUS((*mgr)->MprotectExtent(start, MakeAcl(0, 3)));
      BENCH_CHECK_STATUS((*mgr)->DestroyExtent(start));
    }
    (*mgr)->UnregisterContext(&ctx);
  });
  report.CaptureAttribution();
  FinishReport(report);
  return 0;
}
