// Ablation: the PXFS path-name cache (paper §7.3.1: name caching improved
// performance by up to 44% for Fileserver, 121% for Webserver, 190% for
// Webproxy).
//
// Runs each workload on PXFS with the cache enabled and disabled (PXFS-NNC)
// and reports throughput, speedup, and cache hit rates.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

int main() {
  using namespace aerie;
  using namespace aerie::bench;

  const double scale = Scale();
  const double seconds = Seconds();
  std::printf("# Ablation: path-name cache (PXFS vs PXFS-NNC)\n");
  std::printf("# scale=%.3f, %gs per point; paper speedups: FS +44%%, "
              "WS +121%%, WP +190%%\n\n",
              scale, seconds);
  std::printf("%-11s %12s %12s %9s %10s\n", "workload", "PXFS it/s",
              "NNC it/s", "speedup", "hit-rate");

  obs::BenchReport report = MakeReport("ablation_name_cache");

  const FilebenchKind profiles[] = {FilebenchKind::kFileserver,
                                    FilebenchKind::kWebserver,
                                    FilebenchKind::kWebproxy};
  for (FilebenchKind kind : profiles) {
    const std::string workload(FilebenchKindName(kind));
    double tput[2] = {0, 0};
    double hit_rate = 0;
    for (int cached = 1; cached >= 0; --cached) {
      auto sut = SystemUnderTest::Create(
          cached ? SutKind::kPxfs : SutKind::kPxfsNnc, DefaultSutOptions());
      BENCH_CHECK_OK(sut);
      FilebenchRunner runner((*sut)->fs(),
                             FilebenchProfile::Paper(kind, scale), "/bench",
                             Seed() + 33);
      BENCH_CHECK_STATUS(runner.Prepare());
      Histogram ops;
      auto result = runner.RunForSeconds(seconds, &ops);
      BENCH_CHECK_OK(result);
      tput[cached] = *result;
      report.AddMetric(workload + (cached ? ".pxfs" : ".pxfs_nnc"), *result,
                       ops);
      if (cached) {
        const uint64_t hits = (*sut)->pxfs()->name_cache_hits();
        const uint64_t misses = (*sut)->pxfs()->name_cache_misses();
        hit_rate = hits + misses > 0
                       ? 100.0 * static_cast<double>(hits) /
                             static_cast<double>(hits + misses)
                       : 0;
      }
    }
    std::printf("%-11s %12.1f %12.1f %8.1f%% %9.1f%%\n", workload.c_str(),
                tput[1], tput[0], 100.0 * (tput[1] / tput[0] - 1.0),
                hit_rate);
    report.AddValue(workload + ".hit_rate", hit_rate, "percent");
  }

  // Attribution pass: short span-mode Webproxy run (the workload with the
  // largest name-cache speedup) on cached PXFS.
  SpanAttributionPass([&] {
    auto sut = SystemUnderTest::Create(SutKind::kPxfs, DefaultSutOptions());
    BENCH_CHECK_OK(sut);
    FilebenchRunner runner(
        (*sut)->fs(),
        FilebenchProfile::Paper(FilebenchKind::kWebproxy, scale), "/bench",
        Seed() + 33);
    BENCH_CHECK_STATUS(runner.Prepare());
    Histogram ops;
    BENCH_CHECK_OK(runner.RunForSeconds(std::min(seconds, 0.5), &ops));
  });
  report.CaptureAttribution();
  FinishReport(report);
  return 0;
}
