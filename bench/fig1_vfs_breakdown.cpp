// Figure 1: breakdown of time spent in the (simulated) Linux VFS layer.
//
// Paper methodology (§3): 1 million files in a 3-level hierarchy on ext4
// over a RAM disk; cold inode and dentry caches; perf breakdown of stat,
// open(+close), create(+close), rename and unlink into five categories:
// entry function, file descriptors, synchronization, memory objects, naming.
//
// Here the instrumented VFS attributes wall time to the same categories
// directly. AERIE_BENCH_SCALE scales the 1M-file population.
#include <algorithm>
#include <cinttypes>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/kernelsim/extsim.h"
#include "src/kernelsim/vfs.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace aerie {
namespace {

struct OpRow {
  std::string name;
  double avg_us;
  double pct[5];  // entry, fds, sync, memobj, naming
};

constexpr const char* kCatNames[5] = {"entry", "fds", "sync", "memobj",
                                      "naming"};

// Builds the 3-level hierarchy: width^3 >= nfiles, files at the leaves.
std::vector<std::string> BuildTree(KernelVfs* vfs, uint64_t nfiles) {
  uint64_t width = 1;
  while (width * width * width < nfiles) {
    width++;
  }
  std::vector<std::string> files;
  files.reserve(nfiles);
  uint64_t made = 0;
  for (uint64_t a = 0; a < width && made < nfiles; ++a) {
    const std::string da = "/a" + std::to_string(a);
    BENCH_CHECK_STATUS(vfs->Mkdir(da));
    for (uint64_t b = 0; b < width && made < nfiles; ++b) {
      const std::string db = da + "/b" + std::to_string(b);
      BENCH_CHECK_STATUS(vfs->Mkdir(db));
      for (uint64_t c = 0; c < width && made < nfiles; ++c) {
        const std::string path = db + "/f" + std::to_string(c);
        BENCH_CHECK_STATUS(vfs->Create(path));
        files.push_back(path);
        made++;
      }
    }
  }
  return files;
}

// Per-category snapshot of the registry-backed VfsStats; Measure works on
// before/after deltas so the registry keeps whole-run totals for the final
// obs::DumpText/DumpJson export.
struct VfsSnap {
  uint64_t ns[static_cast<int>(VfsCat::kCount)];

  static VfsSnap Take(const VfsStats& stats) {
    VfsSnap snap;
    for (int c = 0; c < static_cast<int>(VfsCat::kCount); ++c) {
      snap.ns[c] = stats.Get(static_cast<VfsCat>(c));
    }
    return snap;
  }
};

OpRow Measure(KernelVfs* vfs, const std::string& name,
              const std::function<void(const std::string&)>& op,
              const std::vector<std::string>& paths) {
  vfs->DropCaches();  // paper: cold inode and dentry caches
  const VfsSnap before = VfsSnap::Take(vfs->stats());
  const uint64_t start = NowNanos();
  for (const auto& path : paths) {
    op(path);
  }
  const double total_us =
      static_cast<double>(NowNanos() - start) / 1e3;
  OpRow row;
  row.name = name;
  row.avg_us = total_us / static_cast<double>(paths.size());
  const VfsSnap after = VfsSnap::Take(vfs->stats());
  const VfsCat cats[5] = {VfsCat::kEntry, VfsCat::kFds, VfsCat::kSync,
                          VfsCat::kMemObjects, VfsCat::kNaming};
  double vfs_total = 0;
  for (int c = 0; c < static_cast<int>(VfsCat::kBackend); ++c) {
    vfs_total += static_cast<double>(after.ns[c] - before.ns[c]);
  }
  for (int c = 0; c < 5; ++c) {
    const uint64_t delta = after.ns[static_cast<int>(cats[c])] -
                           before.ns[static_cast<int>(cats[c])];
    row.pct[c] =
        vfs_total > 0 ? 100.0 * static_cast<double>(delta) / vfs_total : 0;
  }
  return row;
}

}  // namespace
}  // namespace aerie

int main() {
  using namespace aerie;
  using namespace aerie::bench;

  const double scale = Scale();
  const uint64_t nfiles =
      std::max<uint64_t>(static_cast<uint64_t>(1'000'000 * scale), 1000);
  std::printf("# Figure 1: VFS time breakdown (ext4-sim on RAM disk)\n");
  std::printf("# files=%" PRIu64 " (paper: 1M), 3-level hierarchy, cold "
              "caches per op\n\n",
              nfiles);

  auto disk = RamDisk::Create(1ull << 19);  // 2GB
  BENCH_CHECK_OK(disk);
  ExtSimFs::Options ext_options;
  ext_options.use_extents = true;
  auto backend = ExtSimFs::Format(disk->get(), ext_options);
  BENCH_CHECK_OK(backend);
  KernelVfs vfs(backend->get(), KernelVfs::Options{});

  auto files = BuildTree(&vfs, nfiles);
  // Attribute only the measured ops to the registry (not tree setup).
  obs::ResetAll();

  std::vector<OpRow> rows;
  // stat
  rows.push_back(Measure(
      &vfs, "stat", [&](const std::string& p) { (void)vfs.Stat(p); },
      files));
  // open (includes close, per the paper)
  rows.push_back(Measure(
      &vfs, "open",
      [&](const std::string& p) {
        auto fd = vfs.Open(p, kOpenRead);
        if (fd.ok()) {
          (void)vfs.Close(*fd);
        }
      },
      files));
  // create (fresh names; includes close)
  {
    std::vector<std::string> fresh;
    fresh.reserve(files.size());
    for (size_t i = 0; i < files.size(); ++i) {
      fresh.push_back(files[i] + "_new");
    }
    rows.push_back(Measure(
        &vfs, "create",
        [&](const std::string& p) {
          auto fd = vfs.Open(p, kOpenCreate | kOpenWrite);
          if (fd.ok()) {
            (void)vfs.Close(*fd);
          }
        },
        fresh));
    // rename those fresh files
    rows.push_back(Measure(
        &vfs, "rename",
        [&](const std::string& p) { (void)vfs.Rename(p, p + "_r"); },
        fresh));
    // unlink them
    std::vector<std::string> renamed;
    renamed.reserve(fresh.size());
    for (const auto& p : fresh) {
      renamed.push_back(p + "_r");
    }
    rows.push_back(Measure(
        &vfs, "unlink",
        [&](const std::string& p) { (void)vfs.Unlink(p); }, renamed));
  }

  obs::BenchReport report = MakeReport("fig1_vfs_breakdown");
  report.SetConfig("nfiles", static_cast<double>(nfiles));

  std::printf("%-8s %9s |", "op", "avg(us)");
  for (const char* cat : kCatNames) {
    std::printf(" %7s", cat);
  }
  std::printf("   (%% of VFS time)\n");
  double generic_sum = 0;
  for (const auto& row : rows) {
    std::printf("%-8s %9.2f |", row.name.c_str(), row.avg_us);
    for (double pct : row.pct) {
      std::printf(" %6.1f%%", pct);
    }
    std::printf("\n");
    report.AddValue("vfs." + row.name + ".avg_us", row.avg_us, "us");
    // "generic semantics" = sync + memobj + naming (paper: 87% average).
    generic_sum += row.pct[2] + row.pct[3] + row.pct[4];
  }
  report.AddValue("vfs.generic_semantics_share",
                  generic_sum / static_cast<double>(rows.size()), "percent");
  std::printf("\ngeneric-semantics share (sync+memobj+naming), avg across "
              "ops: %.1f%%  (paper: ~87%%)\n",
              generic_sum / static_cast<double>(rows.size()));
  std::printf("paper avg latencies: stat 1.8us, open 2.4us, create 4.1us, "
              "rename 5.8us, unlink 5.1us\n");

  // Whole-run per-layer view straight from the obs registry (text + JSON).
  std::printf("\n== obs registry (all measured ops) ==\n%s\n",
              obs::DumpText().c_str());
  std::printf("OBS_JSON %s\n", obs::DumpJson().c_str());

  // Attribution pass: rerun stat/open over a slice of the tree with spans
  // on, so the record carries vfs-layer self-time like every other bench.
  bench::SpanAttributionPass([&] {
    const size_t slice = std::min<size_t>(files.size(), 2000);
    vfs.DropCaches();
    for (size_t i = 0; i < slice; ++i) {
      (void)vfs.Stat(files[i]);
      auto fd = vfs.Open(files[i], kOpenRead);
      if (fd.ok()) {
        (void)vfs.Close(*fd);
      }
    }
  });
  report.CaptureAttribution();
  bench::FinishReport(report);
  const std::string trace_path = obs::WriteTraceFileIfConfigured();
  if (!trace_path.empty()) {
    std::printf("TRACE_FILE %s\n", trace_path.c_str());
  }
  return 0;
}
