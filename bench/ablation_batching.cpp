// Ablation: metadata-update batch size (paper §7.2.2: "We found the average
// optimum batch size for our workloads to be 8MB of metadata"; batching is
// "a large benefit for PXFS ... not possible in ext3/ext4").
//
// Sweeps the libFS batch threshold from per-op shipping (no batching) to
// effectively unbounded, running Fileserver on PXFS.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace aerie;
  using namespace aerie::bench;

  const double scale = Scale();
  const double seconds = Seconds();
  std::printf("# Ablation: batch size vs Fileserver performance (PXFS)\n");
  std::printf("# scale=%.3f, %gs per point; paper optimum ~8MB\n\n", scale,
              seconds);
  std::printf("%12s %14s %14s %14s\n", "batch", "iter/s", "mean-op(us)",
              "rpc-batches");

  obs::BenchReport report = MakeReport("ablation_batching");

  struct Point {
    const char* label;
    uint64_t bytes;
    bool eager;
  };
  const Point points[] = {
      {"per-op", 0, true},          {"64KB", 64 << 10, false},
      {"1MB", 1 << 20, false},      {"8MB", 8 << 20, false},
      {"64MB", 64ull << 20, false},
  };

  for (const Point& point : points) {
    SystemUnderTest::Options sut_options = DefaultSutOptions();
    auto sut = SystemUnderTest::Create(SutKind::kPxfs, sut_options);
    BENCH_CHECK_OK(sut);
    // Build a dedicated client with the batch threshold under test.
    LibFs::Options libfs_options;
    libfs_options.eager_ship = point.eager;
    if (!point.eager) {
      libfs_options.batch_max_bytes = point.bytes;
    }
    auto client = (*sut)->aerie()->NewClient(libfs_options);
    BENCH_CHECK_OK(client);
    Pxfs pxfs((*client)->fs());
    PxfsAdapter adapter(&pxfs);

    FilebenchRunner runner(
        &adapter,
        FilebenchProfile::Paper(FilebenchKind::kFileserver, scale),
        "/bench", Seed() + 21);
    BENCH_CHECK_STATUS(runner.Prepare());
    const uint64_t batches_before = (*client)->fs()->batches_shipped();
    Histogram ops;
    auto tput = runner.RunForSeconds(seconds, &ops);
    BENCH_CHECK_OK(tput);
    std::printf("%12s %14.1f %14.2f %14llu\n", point.label, *tput,
                MeanUs(ops),
                static_cast<unsigned long long>(
                    (*client)->fs()->batches_shipped() - batches_before));
    report.AddMetric(std::string("fileserver.batch_") + point.label, *tput,
                     ops);
  }

  // Attribution pass: short span-mode run at the paper-optimal 8MB batch.
  SpanAttributionPass([&] {
    auto sut = SystemUnderTest::Create(SutKind::kPxfs, DefaultSutOptions());
    BENCH_CHECK_OK(sut);
    FilebenchRunner runner(
        (*sut)->fs(),
        FilebenchProfile::Paper(FilebenchKind::kFileserver, scale), "/bench",
        Seed() + 21);
    BENCH_CHECK_STATUS(runner.Prepare());
    Histogram ops;
    BENCH_CHECK_OK(runner.RunForSeconds(std::min(seconds, 0.5), &ops));
  });
  report.CaptureAttribution();
  FinishReport(report);
  return 0;
}
