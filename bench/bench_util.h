// Shared plumbing for the per-table/per-figure benchmark binaries.
//
// Environment knobs (all optional):
//   AERIE_BENCH_SCALE    — fileset scale relative to the paper's (default
//                          0.05; 1.0 reproduces the paper's sizes)
//   AERIE_BENCH_SECONDS  — measurement window per data point (default 2)
//   AERIE_BENCH_THREADS  — max threads for scaling sweeps (default 4)
//   AERIE_BENCH_SEED     — base RNG seed; every runner derives its seed
//                          from this so a sweep is reproducible (default 42)
//   AERIE_BENCH_JSON     — when set, the binary writes its BenchReport
//                          record (schema-versioned JSON) to this path
//   AERIE_GIT_SHA        — stamped into the record by the driver
//
// Every binary prints a Markdown-ish table mirroring the paper's artifact,
// plus the paper's numbers alongside where useful (EXPERIMENTS.md records
// both), and emits one obs::BenchReport record for the trajectory harness
// (tools/run_benches.sh aggregates them into BENCH_<date>.json).
#ifndef AERIE_BENCH_BENCH_UTIL_H_
#define AERIE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/histogram.h"
#include "src/obs/bench_report.h"
#include "src/obs/obs.h"
#include "src/obs/profiler.h"
#include "src/workload/filebench.h"
#include "src/workload/sut.h"

namespace aerie {
namespace bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

inline double Scale() { return EnvDouble("AERIE_BENCH_SCALE", 0.05); }
inline double Seconds() { return EnvDouble("AERIE_BENCH_SECONDS", 2.0); }
inline int MaxThreads() {
  return static_cast<int>(EnvDouble("AERIE_BENCH_THREADS", 4));
}
// Base seed every bench derives its per-runner seeds from (seed + fixed
// offset), so one AERIE_BENCH_SEED value pins the whole sweep.
inline uint64_t Seed() {
  return static_cast<uint64_t>(EnvDouble("AERIE_BENCH_SEED", 42));
}

inline SystemUnderTest::Options DefaultSutOptions() {
  SystemUnderTest::Options options;
  options.region_bytes = 2ull << 30;
  options.disk_blocks = 512ull << 10;
  return options;
}

// Fails fast with a readable message: a benchmark that cannot set up its
// system has nothing meaningful to print.
#define BENCH_CHECK_OK(expr)                                          \
  do {                                                                \
    const auto& _st = (expr);                                         \
    if (!_st.ok()) {                                                  \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,   \
                   _st.status().ToString().c_str());                  \
      std::exit(1);                                                   \
    }                                                                 \
  } while (0)

#define BENCH_CHECK_STATUS(expr)                                      \
  do {                                                                \
    ::aerie::Status _st = (expr);                                     \
    if (!_st.ok()) {                                                  \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,   \
                   _st.ToString().c_str());                           \
      std::exit(1);                                                   \
    }                                                                 \
  } while (0)

inline double MeanUs(const Histogram& hist) { return hist.Mean() / 1e3; }
inline double P95Us(const Histogram& hist) {
  return static_cast<double>(hist.Percentile(95)) / 1e3;
}

// One BenchReport pre-stamped with the shared environment knobs; benches
// add their own config keys and metric rows on top.
inline obs::BenchReport MakeReport(const char* bench) {
  obs::BenchReport report(bench);
  report.SetConfig("scale", Scale());
  report.SetConfig("seconds", Seconds());
  report.SetConfig("threads", static_cast<double>(MaxThreads()));
  report.SetConfig("seed", static_cast<double>(Seed()));
  return report;
}

// Runs `fn` with trace spans forced on against a zeroed registry, then
// restores the previous mode. Span recording perturbs throughput, so every
// bench measures first and attributes afterwards on a short rerun; call
// report.CaptureAttribution() right after this returns.
template <typename Fn>
inline void SpanAttributionPass(Fn&& fn) {
  obs::ResetAll();
  const obs::Mode saved = obs::CurrentMode();
  obs::SetMode(obs::Mode::kSpans);
  fn();
  obs::SetMode(saved);
}

// Finishes a record: write to $AERIE_BENCH_JSON (if set) and surface the
// path on stdout so driver logs show where each record landed. When the
// sampling profiler is live (AERIE_PROF), also flush its folded-stack /
// profile-JSON artifacts ($AERIE_PROF_FOLDED / $AERIE_PROF_JSON) and print
// the top self-CPU frames so a bench run doubles as a profile run.
inline void FinishReport(const obs::BenchReport& report) {
  const std::string path = report.WriteIfConfigured();
  if (!path.empty()) {
    std::printf("BENCH_JSON_FILE %s\n", path.c_str());
  }
  if (obs::prof::IsRunning()) {
    obs::prof::WriteProfileFilesIfConfigured();
    const std::string top = obs::prof::TopText(10);
    if (!top.empty()) {
      std::fputs(top.c_str(), stdout);
    }
  }
}

}  // namespace bench
}  // namespace aerie

#endif  // AERIE_BENCH_BENCH_UTIL_H_
