// Shared plumbing for the per-table/per-figure benchmark binaries.
//
// Environment knobs (all optional):
//   AERIE_BENCH_SCALE    — fileset scale relative to the paper's (default
//                          0.05; 1.0 reproduces the paper's sizes)
//   AERIE_BENCH_SECONDS  — measurement window per data point (default 2)
//   AERIE_BENCH_THREADS  — max threads for scaling sweeps (default 4)
//
// Every binary prints a Markdown-ish table mirroring the paper's artifact,
// plus the paper's numbers alongside where useful (EXPERIMENTS.md records
// both).
#ifndef AERIE_BENCH_BENCH_UTIL_H_
#define AERIE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/histogram.h"
#include "src/workload/filebench.h"
#include "src/workload/sut.h"

namespace aerie {
namespace bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

inline double Scale() { return EnvDouble("AERIE_BENCH_SCALE", 0.05); }
inline double Seconds() { return EnvDouble("AERIE_BENCH_SECONDS", 2.0); }
inline int MaxThreads() {
  return static_cast<int>(EnvDouble("AERIE_BENCH_THREADS", 4));
}

inline SystemUnderTest::Options DefaultSutOptions() {
  SystemUnderTest::Options options;
  options.region_bytes = 2ull << 30;
  options.disk_blocks = 512ull << 10;
  return options;
}

// Fails fast with a readable message: a benchmark that cannot set up its
// system has nothing meaningful to print.
#define BENCH_CHECK_OK(expr)                                          \
  do {                                                                \
    const auto& _st = (expr);                                         \
    if (!_st.ok()) {                                                  \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,   \
                   _st.status().ToString().c_str());                  \
      std::exit(1);                                                   \
    }                                                                 \
  } while (0)

#define BENCH_CHECK_STATUS(expr)                                      \
  do {                                                                \
    ::aerie::Status _st = (expr);                                     \
    if (!_st.ok()) {                                                  \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,   \
                   _st.ToString().c_str());                           \
      std::exit(1);                                                   \
    }                                                                 \
  } while (0)

inline double MeanUs(const Histogram& hist) { return hist.Mean() / 1e3; }
inline double P95Us(const Histogram& hist) {
  return static_cast<double>(hist.Percentile(95)) / 1e3;
}

}  // namespace bench
}  // namespace aerie

#endif  // AERIE_BENCH_BENCH_UTIL_H_
