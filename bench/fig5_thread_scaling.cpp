// Figure 5: throughput (workload operations per second) as client threads
// increase, for Fileserver / Webserver / Webproxy on PXFS, PXFS-NNC, RamFS,
// ext3, ext4 — plus FlatFS on Webproxy (paper §7.2.3, §7.3.2).
//
// Threads live in one client process (one libFS instance); each thread runs
// its own workload instance over the *shared* directory tree, so Webproxy's
// single-directory lock contention shows up exactly as in the paper.
//
// NOTE: this host has a single CPU core, so absolute scaling flattens; the
// *relative* per-system ordering and the FlatFS-vs-PXFS contention gap are
// the reproducible shapes (EXPERIMENTS.md discusses this).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace aerie;
using namespace aerie::bench;

// Runs `threads` workload instances concurrently; returns total iterations/s.
double RunThreads(SystemUnderTest* sut, FilebenchKind kind, double scale,
                  double seconds, int threads, bool flat) {
  std::vector<std::unique_ptr<FilebenchRunner>> runners;
  std::vector<std::unique_ptr<FlatWebproxyRunner>> flat_runners;
  FilebenchProfile profile = FilebenchProfile::Paper(kind, scale);
  const uint64_t seed = Seed() + 100;

  for (int t = 0; t < threads; ++t) {
    if (flat) {
      auto runner = std::make_unique<FlatWebproxyRunner>(
          sut->flat(), profile, "wp" + std::to_string(t) + "_",
          seed + static_cast<uint64_t>(t));
      BENCH_CHECK_STATUS(runner->Prepare());
      flat_runners.push_back(std::move(runner));
    } else {
      auto runner = std::make_unique<FilebenchRunner>(
          sut->fs(), profile, "/bench", seed + static_cast<uint64_t>(t),
          static_cast<uint64_t>(t));
      BENCH_CHECK_STATUS(runner->Prepare());
      runners.push_back(std::move(runner));
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> iterations{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Histogram ops;
      while (!stop.load(std::memory_order_relaxed)) {
        Status st = flat ? flat_runners[static_cast<size_t>(t)]
                               ->RunIteration(&ops)
                         : runners[static_cast<size_t>(t)]
                               ->RunIteration(&ops);
        if (st.ok()) {
          iterations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  Stopwatch sw;
  while (sw.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  return static_cast<double>(iterations.load()) / sw.ElapsedSeconds();
}

}  // namespace

int main() {
  const double scale = Scale();
  const double seconds = Seconds();
  const int max_threads = MaxThreads();

  std::printf("# Figure 5: throughput (workload iterations/s) vs threads\n");
  std::printf("# scale=%.3f, %gs per point, single-core host (see "
              "EXPERIMENTS.md)\n\n",
              scale, seconds);

  obs::BenchReport report = MakeReport("fig5_thread_scaling");

  const FilebenchKind profiles[] = {FilebenchKind::kFileserver,
                                    FilebenchKind::kWebserver,
                                    FilebenchKind::kWebproxy};
  const SutKind kinds[] = {SutKind::kPxfs, SutKind::kPxfsNnc,
                           SutKind::kRamFs, SutKind::kExt3, SutKind::kExt4};

  for (FilebenchKind profile : profiles) {
    std::printf("## %s\n", std::string(FilebenchKindName(profile)).c_str());
    std::printf("%-9s |", "system");
    for (int t = 1; t <= max_threads; ++t) {
      std::printf(" %9dT", t);
    }
    std::printf("\n");
    for (SutKind kind : kinds) {
      std::printf("%-9s |", std::string(SutKindName(kind)).c_str());
      std::fflush(stdout);
      for (int t = 1; t <= max_threads; ++t) {
        auto sut = SystemUnderTest::Create(kind, DefaultSutOptions());
        BENCH_CHECK_OK(sut);
        const double tput =
            RunThreads(sut->get(), profile, scale, seconds, t, false);
        std::printf(" %10.0f", tput);
        std::fflush(stdout);
        report.AddThroughput(std::string(FilebenchKindName(profile)) + "." +
                                 std::string(SutKindName(kind)) + ".t" +
                                 std::to_string(t),
                             tput);
      }
      std::printf("\n");
    }
    if (profile == FilebenchKind::kWebproxy) {
      std::printf("%-9s |", "FlatFS");
      std::fflush(stdout);
      for (int t = 1; t <= max_threads; ++t) {
        auto sut =
            SystemUnderTest::Create(SutKind::kFlatFs, DefaultSutOptions());
        BENCH_CHECK_OK(sut);
        const double tput =
            RunThreads(sut->get(), profile, scale, seconds, t, true);
        std::printf(" %10.0f", tput);
        std::fflush(stdout);
        report.AddThroughput(std::string(FilebenchKindName(profile)) +
                                 ".flatfs.t" + std::to_string(t),
                             tput);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Attribution pass: a short span-mode two-thread Webproxy run on PXFS
  // (the contended configuration the figure is about).
  SpanAttributionPass([&] {
    auto sut = SystemUnderTest::Create(SutKind::kPxfs, DefaultSutOptions());
    BENCH_CHECK_OK(sut);
    RunThreads(sut->get(), FilebenchKind::kWebproxy, scale,
               std::min(seconds, 0.5), 2, false);
  });
  report.CaptureAttribution();
  FinishReport(report);
  return 0;
}
