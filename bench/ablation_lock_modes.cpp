// Ablation: hierarchical vs explicit directory locks (paper §5.3.4).
//
// With hierarchical (XH) directory locks the clerk grants descendant file
// locks locally, so metadata-heavy single-client workloads avoid per-file
// lock RPCs entirely. With explicit (X) locks every file lock is a service
// acquisition. Reports throughput and the clerk's global-acquire counts.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace aerie;
  using namespace aerie::bench;

  const double scale = Scale();
  const double seconds = Seconds();
  std::printf("# Ablation: hierarchical vs explicit directory locks "
              "(Fileserver on PXFS)\n");
  std::printf("# scale=%.3f, %gs per point\n\n", scale, seconds);
  std::printf("%-14s %12s %16s %16s\n", "dir locks", "iter/s",
              "global-acquires", "local-grants");

  obs::BenchReport report = MakeReport("ablation_lock_modes");

  for (const bool hierarchical : {true, false}) {
    auto sut = SystemUnderTest::Create(SutKind::kPxfs, DefaultSutOptions());
    BENCH_CHECK_OK(sut);
    auto client = (*sut)->aerie()->NewClient(LibFs::Options{});
    BENCH_CHECK_OK(client);
    Pxfs::Options pxfs_options;
    pxfs_options.hierarchical_dir_locks = hierarchical;
    Pxfs pxfs((*client)->fs(), pxfs_options);
    PxfsAdapter adapter(&pxfs);

    FilebenchRunner runner(
        &adapter,
        FilebenchProfile::Paper(FilebenchKind::kFileserver, scale),
        "/bench", Seed() + 77);
    BENCH_CHECK_STATUS(runner.Prepare());
    LockClerk* clerk = (*client)->fs()->clerk();
    const uint64_t acquires_before = clerk->global_acquires();
    const uint64_t locals_before = clerk->local_grants();
    Histogram ops;
    auto tput = runner.RunForSeconds(seconds, &ops);
    BENCH_CHECK_OK(tput);
    std::printf("%-14s %12.1f %16llu %16llu\n",
                hierarchical ? "hierarchical" : "explicit", *tput,
                static_cast<unsigned long long>(clerk->global_acquires() -
                                                acquires_before),
                static_cast<unsigned long long>(clerk->local_grants() -
                                                locals_before));
    report.AddMetric(std::string("fileserver.") +
                         (hierarchical ? "hierarchical" : "explicit"),
                     *tput, ops);
  }

  // Attribution pass: short span-mode hierarchical-lock run (the default
  // configuration), so clerk/lock self-time lands in the record.
  SpanAttributionPass([&] {
    auto sut = SystemUnderTest::Create(SutKind::kPxfs, DefaultSutOptions());
    BENCH_CHECK_OK(sut);
    FilebenchRunner runner(
        (*sut)->fs(),
        FilebenchProfile::Paper(FilebenchKind::kFileserver, scale), "/bench",
        Seed() + 77);
    BENCH_CHECK_STATUS(runner.Prepare());
    Histogram ops;
    BENCH_CHECK_OK(runner.RunForSeconds(std::min(seconds, 0.5), &ops));
  });
  report.CaptureAttribution();
  FinishReport(report);
  return 0;
}
