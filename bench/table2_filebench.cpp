// Table 2: average (and 95th-percentile) latency per workload operation for
// the FileBench profiles on PXFS, PXFS-NNC, RamFS, ext3, ext4 (paper
// §7.2.2).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

struct PaperRow {
  const char* workload;
  double pxfs, pxfs_nnc, ramfs, ext3, ext4;
};
constexpr PaperRow kPaper[] = {
    {"Fileserver", 16.8, 24.3, 13.1, 30.3, 18.7},
    {"Webserver", 3.0, 5.5, 3.2, 3.3, 3.3},
    {"Webproxy", 3.5, 4.0, 3.1, 4.9, 4.5},
};

}  // namespace

int main() {
  using namespace aerie;
  using namespace aerie::bench;

  const double scale = Scale();
  const double seconds = Seconds();
  std::printf("# Table 2: average latency per workload operation (us)\n");
  std::printf("# scale=%.3f of paper filesets, %gs per cell; (p95) in "
              "parens\n\n",
              scale, seconds);

  obs::BenchReport report = MakeReport("table2_filebench");
  const uint64_t seed = Seed();

  const SutKind kinds[] = {SutKind::kPxfs, SutKind::kPxfsNnc,
                           SutKind::kRamFs, SutKind::kExt3, SutKind::kExt4};
  const FilebenchKind profiles[] = {FilebenchKind::kFileserver,
                                    FilebenchKind::kWebserver,
                                    FilebenchKind::kWebproxy};

  std::printf("%-11s |", "Workload");
  for (SutKind kind : kinds) {
    std::printf(" %16s", std::string(SutKindName(kind)).c_str());
  }
  std::printf(" | paper PXFS/NNC/RamFS/ext3/ext4\n");

  for (int p = 0; p < 3; ++p) {
    std::printf("%-11s |", std::string(FilebenchKindName(profiles[p])).c_str());
    std::fflush(stdout);
    for (SutKind kind : kinds) {
      auto sut = SystemUnderTest::Create(kind, DefaultSutOptions());
      BENCH_CHECK_OK(sut);
      FilebenchProfile profile = FilebenchProfile::Paper(profiles[p], scale);
      FilebenchRunner runner((*sut)->fs(), profile, "/bench", seed);
      BENCH_CHECK_STATUS(runner.Prepare());
      Histogram warmup;
      for (int i = 0; i < 5; ++i) {
        BENCH_CHECK_STATUS(runner.RunIteration(&warmup));
      }
      Histogram ops;
      BENCH_CHECK_OK(runner.RunForSeconds(seconds, &ops));
      std::printf(" %7.2f (%6.2f)", MeanUs(ops), P95Us(ops));
      std::fflush(stdout);
      report.AddLatency(std::string(FilebenchKindName(profiles[p])) + "." +
                            std::string(SutKindName(kind)),
                        ops);
    }
    std::printf(" | %.1f / %.1f / %.1f / %.1f / %.1f\n", kPaper[p].pxfs,
                kPaper[p].pxfs_nnc, kPaper[p].ramfs, kPaper[p].ext3,
                kPaper[p].ext4);
  }

  // Attribution pass: a short span-mode Fileserver run on PXFS.
  SpanAttributionPass([&] {
    auto sut = SystemUnderTest::Create(SutKind::kPxfs, DefaultSutOptions());
    BENCH_CHECK_OK(sut);
    FilebenchRunner runner(
        (*sut)->fs(),
        FilebenchProfile::Paper(FilebenchKind::kFileserver, scale), "/bench",
        seed);
    BENCH_CHECK_STATUS(runner.Prepare());
    Histogram ops;
    BENCH_CHECK_OK(runner.RunForSeconds(std::min(seconds, 0.5), &ops));
  });
  report.CaptureAttribution();
  FinishReport(report);
  return 0;
}
