// google-benchmark microbenchmarks for Aerie's substrate primitives:
// collection insert/lookup, mFile read/write paths, lock clerk fast paths,
// persistence primitives, OID encoding. These calibrate the building blocks
// the table/figure harnesses compose.
//
// A custom reporter captures every run's ns/op into the shared BenchReport
// record (AERIE_BENCH_JSON), alongside an scm+clerk span attribution pass.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/hash.h"
#include "src/lock/clerk.h"
#include "src/osd/collection.h"
#include "src/osd/mfile.h"
#include "src/osd/volume.h"

namespace aerie {
namespace {

struct VolumeFixture {
  VolumeFixture() {
    auto r = ScmRegion::CreateAnonymous(512ull << 20);
    region = std::move(*r);
    auto v = Volume::Format(region.get(), 0, region->size());
    volume = std::move(*v);
  }
  std::unique_ptr<ScmRegion> region;
  std::unique_ptr<Volume> volume;
};

VolumeFixture* Fixture() {
  static VolumeFixture* fixture = new VolumeFixture();
  return fixture;
}

void BM_PersistU64(benchmark::State& state) {
  auto* fx = Fixture();
  auto* slot = reinterpret_cast<uint64_t*>(
      fx->region->PtrAt(fx->region->size() - kScmPageSize));
  uint64_t v = 0;
  for (auto _ : state) {
    fx->region->PersistU64(slot, ++v);
  }
}
BENCHMARK(BM_PersistU64);

void BM_StreamWriteBFlush4K(benchmark::State& state) {
  auto* fx = Fixture();
  char* dst = fx->region->PtrAt(fx->region->size() - 2 * kScmPageSize);
  std::string src(4096, 'x');
  for (auto _ : state) {
    fx->region->StreamWrite(dst, src.data(), src.size());
    fx->region->BFlush();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_StreamWriteBFlush4K);

void BM_CollectionInsert(benchmark::State& state) {
  auto* fx = Fixture();
  auto coll = Collection::Create(fx->volume->context(), 0);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coll->Insert("key" + std::to_string(i++), i).ok());
  }
}
BENCHMARK(BM_CollectionInsert);

void BM_CollectionLookup(benchmark::State& state) {
  auto* fx = Fixture();
  auto coll = Collection::Create(fx->volume->context(), 0);
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    (void)coll->Insert("key" + std::to_string(i), static_cast<uint64_t>(i));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coll->Lookup("key" + std::to_string(i++ % static_cast<uint64_t>(n))));
  }
}
BENCHMARK(BM_CollectionLookup)->Arg(100)->Arg(10000);

void BM_MFileRead4K(benchmark::State& state) {
  auto* fx = Fixture();
  OsdContext ctx = fx->volume->context();
  auto file = MFile::Create(ctx, 0);
  for (uint64_t p = 0; p < 64; ++p) {
    auto extent = ctx.alloc->Alloc(0);
    (void)file->AttachExtent(p, *extent);
  }
  (void)file->SetSize(64 * kScmPageSize);
  std::string buf(4096, '\0');
  uint64_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        file->Read((p++ % 64) * kScmPageSize,
                   std::span<char>(buf.data(), buf.size())));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_MFileRead4K);

void BM_OidEncodeDecode(benchmark::State& state) {
  uint64_t offset = 64;
  for (auto _ : state) {
    const Oid oid = Oid::Make(ObjType::kMFile, offset);
    benchmark::DoNotOptimize(oid.offset() + static_cast<uint64_t>(oid.type()));
    offset += 64;
  }
}
BENCHMARK(BM_OidEncodeDecode);

void BM_HashPathComponent(benchmark::State& state) {
  std::string name = "some_file_name_component.txt";
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashString(name));
  }
}
BENCHMARK(BM_HashPathComponent);

// Lock clerk: cached reacquisition (the PXFS hot path after warm-up).
class DirectLockClient : public LockServiceClient {
 public:
  DirectLockClient(LockService* service, uint64_t id)
      : service_(service), id_(id) {}
  Status Acquire(LockId id, LockMode mode, bool wait) override {
    return service_->Acquire(id_, id, mode, wait);
  }
  Status Release(LockId id) override { return service_->Release(id_, id); }
  Status Downgrade(LockId id, LockMode to) override {
    return service_->Downgrade(id_, id, to);
  }
  Status Renew() override { return service_->Renew(id_); }

 private:
  LockService* service_;
  uint64_t id_;
};

void BM_ClerkCachedAcquireRelease(benchmark::State& state) {
  LockService service;
  DirectLockClient stub(&service, 1);
  LockClerk clerk(&stub);
  service.RegisterClient(1, &clerk);
  (void)clerk.Acquire(42, LockMode::kShared);
  clerk.Release(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clerk.Acquire(42, LockMode::kShared).ok());
    clerk.Release(42);
  }
}
BENCHMARK(BM_ClerkCachedAcquireRelease);

void BM_ClerkHierarchicalLocalGrant(benchmark::State& state) {
  LockService service;
  DirectLockClient stub(&service, 1);
  LockClerk clerk(&stub);
  service.RegisterClient(1, &clerk);
  (void)clerk.Acquire(10, LockMode::kExclusiveHier);
  clerk.Release(10);
  const LockId ancestors[] = {10};
  uint64_t child = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        clerk.Acquire(child, LockMode::kExclusive, ancestors).ok());
    clerk.Release(child);
    child = 1000 + (child - 999) % 64;
  }
}
BENCHMARK(BM_ClerkHierarchicalLocalGrant);

// Console output stays intact; per-iteration runs (not aggregates) are also
// recorded as ns/op values in the machine-readable bench record.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(obs::BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type == Run::RT_Iteration && run.iterations > 0) {
        const double per_iter_ns = run.real_accumulated_time * 1e9 /
                                   static_cast<double>(run.iterations);
        report_->AddValue(run.benchmark_name(), per_iter_ns, "ns/op");
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  obs::BenchReport* report_;
};

// Exercises the span-instrumented scm flush path and the clerk fast paths so
// the record's layer table covers the substrate this binary calibrates.
void RunAttributionWorkload() {
  auto* fx = Fixture();
  auto* slot = reinterpret_cast<uint64_t*>(
      fx->region->PtrAt(fx->region->size() - kScmPageSize));
  char* dst = fx->region->PtrAt(fx->region->size() - 2 * kScmPageSize);
  std::string src(4096, 'x');
  for (uint64_t i = 0; i < 20000; ++i) {
    fx->region->PersistU64(slot, i);
  }
  for (int i = 0; i < 2000; ++i) {
    fx->region->StreamWrite(dst, src.data(), src.size());
    fx->region->BFlush();
  }
  LockService service;
  DirectLockClient stub(&service, 1);
  LockClerk clerk(&stub);
  service.RegisterClient(1, &clerk);
  for (int i = 0; i < 20000; ++i) {
    (void)clerk.Acquire(42, LockMode::kShared);
    clerk.Release(42);
  }
}

}  // namespace
}  // namespace aerie

int main(int argc, char** argv) {
  using namespace aerie::bench;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  aerie::obs::BenchReport report = MakeReport("gbench_primitives");
  aerie::CaptureReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  SpanAttributionPass([] { aerie::RunAttributionWorkload(); });
  report.CaptureAttribution();
  FinishReport(report);
  return 0;
}
