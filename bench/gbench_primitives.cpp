// google-benchmark microbenchmarks for Aerie's substrate primitives:
// collection insert/lookup, mFile read/write paths, lock clerk fast paths,
// persistence primitives, OID encoding. These calibrate the building blocks
// the table/figure harnesses compose.
#include <benchmark/benchmark.h>

#include "src/common/hash.h"
#include "src/lock/clerk.h"
#include "src/osd/collection.h"
#include "src/osd/mfile.h"
#include "src/osd/volume.h"

namespace aerie {
namespace {

struct VolumeFixture {
  VolumeFixture() {
    auto r = ScmRegion::CreateAnonymous(512ull << 20);
    region = std::move(*r);
    auto v = Volume::Format(region.get(), 0, region->size());
    volume = std::move(*v);
  }
  std::unique_ptr<ScmRegion> region;
  std::unique_ptr<Volume> volume;
};

VolumeFixture* Fixture() {
  static VolumeFixture* fixture = new VolumeFixture();
  return fixture;
}

void BM_PersistU64(benchmark::State& state) {
  auto* fx = Fixture();
  auto* slot = reinterpret_cast<uint64_t*>(
      fx->region->PtrAt(fx->region->size() - kScmPageSize));
  uint64_t v = 0;
  for (auto _ : state) {
    fx->region->PersistU64(slot, ++v);
  }
}
BENCHMARK(BM_PersistU64);

void BM_StreamWriteBFlush4K(benchmark::State& state) {
  auto* fx = Fixture();
  char* dst = fx->region->PtrAt(fx->region->size() - 2 * kScmPageSize);
  std::string src(4096, 'x');
  for (auto _ : state) {
    fx->region->StreamWrite(dst, src.data(), src.size());
    fx->region->BFlush();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_StreamWriteBFlush4K);

void BM_CollectionInsert(benchmark::State& state) {
  auto* fx = Fixture();
  auto coll = Collection::Create(fx->volume->context(), 0);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coll->Insert("key" + std::to_string(i++), i).ok());
  }
}
BENCHMARK(BM_CollectionInsert);

void BM_CollectionLookup(benchmark::State& state) {
  auto* fx = Fixture();
  auto coll = Collection::Create(fx->volume->context(), 0);
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    (void)coll->Insert("key" + std::to_string(i), static_cast<uint64_t>(i));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        coll->Lookup("key" + std::to_string(i++ % static_cast<uint64_t>(n))));
  }
}
BENCHMARK(BM_CollectionLookup)->Arg(100)->Arg(10000);

void BM_MFileRead4K(benchmark::State& state) {
  auto* fx = Fixture();
  OsdContext ctx = fx->volume->context();
  auto file = MFile::Create(ctx, 0);
  for (uint64_t p = 0; p < 64; ++p) {
    auto extent = ctx.alloc->Alloc(0);
    (void)file->AttachExtent(p, *extent);
  }
  (void)file->SetSize(64 * kScmPageSize);
  std::string buf(4096, '\0');
  uint64_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        file->Read((p++ % 64) * kScmPageSize,
                   std::span<char>(buf.data(), buf.size())));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_MFileRead4K);

void BM_OidEncodeDecode(benchmark::State& state) {
  uint64_t offset = 64;
  for (auto _ : state) {
    const Oid oid = Oid::Make(ObjType::kMFile, offset);
    benchmark::DoNotOptimize(oid.offset() + static_cast<uint64_t>(oid.type()));
    offset += 64;
  }
}
BENCHMARK(BM_OidEncodeDecode);

void BM_HashPathComponent(benchmark::State& state) {
  std::string name = "some_file_name_component.txt";
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashString(name));
  }
}
BENCHMARK(BM_HashPathComponent);

// Lock clerk: cached reacquisition (the PXFS hot path after warm-up).
class DirectLockClient : public LockServiceClient {
 public:
  DirectLockClient(LockService* service, uint64_t id)
      : service_(service), id_(id) {}
  Status Acquire(LockId id, LockMode mode, bool wait) override {
    return service_->Acquire(id_, id, mode, wait);
  }
  Status Release(LockId id) override { return service_->Release(id_, id); }
  Status Downgrade(LockId id, LockMode to) override {
    return service_->Downgrade(id_, id, to);
  }
  Status Renew() override { return service_->Renew(id_); }

 private:
  LockService* service_;
  uint64_t id_;
};

void BM_ClerkCachedAcquireRelease(benchmark::State& state) {
  LockService service;
  DirectLockClient stub(&service, 1);
  LockClerk clerk(&stub);
  service.RegisterClient(1, &clerk);
  (void)clerk.Acquire(42, LockMode::kShared);
  clerk.Release(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clerk.Acquire(42, LockMode::kShared).ok());
    clerk.Release(42);
  }
}
BENCHMARK(BM_ClerkCachedAcquireRelease);

void BM_ClerkHierarchicalLocalGrant(benchmark::State& state) {
  LockService service;
  DirectLockClient stub(&service, 1);
  LockClerk clerk(&stub);
  service.RegisterClient(1, &clerk);
  (void)clerk.Acquire(10, LockMode::kExclusiveHier);
  clerk.Release(10);
  const LockId ancestors[] = {10};
  uint64_t child = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        clerk.Acquire(child, LockMode::kExclusive, ancestors).ok());
    clerk.Release(child);
    child = 1000 + (child - 999) % 64;
  }
}
BENCHMARK(BM_ClerkHierarchicalLocalGrant);

}  // namespace
}  // namespace aerie

BENCHMARK_MAIN();
