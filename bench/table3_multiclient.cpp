// Table 3: throughput of a multiprogrammed workload with increasing client
// processes (paper §7.2.3).
//
//   (1) N single-threaded Fileserver instances (PXFS)
//   (2) Fileserver + Webproxy mix, all on PXFS
//   (3) Fileserver (PXFS) + Webproxy (FlatFS)
//
// Each "client" is an independent libFS instance (own clerk, cache, batch,
// session) driven by its own thread, operating in its own directory to
// avoid lock contention between clients — exactly the paper's setup modulo
// the process/thread substitution (DESIGN.md §4).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/trace.h"

namespace {

using namespace aerie;
using namespace aerie::bench;

struct ClientTask {
  std::unique_ptr<FilebenchRunner> runner;
  std::unique_ptr<FlatWebproxyRunner> flat_runner;
};

double RunClients(SystemUnderTest* sut, int nclients, bool mix_webproxy,
                  bool webproxy_on_flatfs, double scale, double seconds) {
  std::vector<ClientTask> tasks;
  const uint64_t seed = Seed() + 50;
  for (int c = 0; c < nclients; ++c) {
    ClientTask task;
    const bool is_webproxy = mix_webproxy && (c % 2 == 1);
    if (is_webproxy && webproxy_on_flatfs) {
      auto flat = sut->NewClientFlat();
      BENCH_CHECK_OK(flat);
      task.flat_runner = std::make_unique<FlatWebproxyRunner>(
          *flat,
          FilebenchProfile::Paper(FilebenchKind::kWebproxy, scale),
          "c" + std::to_string(c) + "_", seed + static_cast<uint64_t>(c));
      BENCH_CHECK_STATUS(task.flat_runner->Prepare());
    } else {
      auto fs = sut->NewClientFs();
      BENCH_CHECK_OK(fs);
      const FilebenchKind kind = is_webproxy ? FilebenchKind::kWebproxy
                                             : FilebenchKind::kFileserver;
      task.runner = std::make_unique<FilebenchRunner>(
          *fs, FilebenchProfile::Paper(kind, scale),
          "/client" + std::to_string(c), seed + static_cast<uint64_t>(c));
      BENCH_CHECK_STATUS(task.runner->Prepare());
    }
    tasks.push_back(std::move(task));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> iterations{0};
  std::vector<std::thread> workers;
  int worker_index = 0;
  for (auto& task : tasks) {
    workers.emplace_back([&stop, &iterations, &task,
                          idx = worker_index++] {
      if (obs::SpansOn()) {
        obs::SetThreadTraceName("client" + std::to_string(idx));
      }
      Histogram ops;
      while (!stop.load(std::memory_order_relaxed)) {
        Status st = task.runner ? task.runner->RunIteration(&ops)
                                : task.flat_runner->RunIteration(&ops);
        if (st.ok()) {
          iterations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  Stopwatch sw;
  while (sw.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  return static_cast<double>(iterations.load()) / sw.ElapsedSeconds();
}

}  // namespace

int main() {
  const double scale = Scale();
  const double seconds = Seconds();
  std::printf("# Table 3: multiprogrammed throughput (iterations/s) vs "
              "clients\n");
  std::printf("# scale=%.3f, %gs per point, single-core host\n\n", scale,
              seconds);
  std::printf("# paper (ops/s): FS alone 59k@1 -> 214k@6; FS+WP 273k@2 -> "
              "599k@6; FS+WP(FlatFS) 349k@2 -> 922k@6\n\n");

  obs::BenchReport report = MakeReport("table3_multiclient");

  const int client_counts[] = {1, 2, 4, 6};
  std::printf("%-22s |", "Benchmark");
  for (int n : client_counts) {
    std::printf(" %8dC", n);
  }
  std::printf("\n");

  // Row 1: Fileserver x N.
  std::printf("%-22s |", "Fileserver (FS)");
  std::fflush(stdout);
  for (int n : client_counts) {
    auto sut = SystemUnderTest::Create(SutKind::kPxfs, DefaultSutOptions());
    BENCH_CHECK_OK(sut);
    const double tput =
        RunClients(sut->get(), n, false, false, scale, seconds);
    std::printf(" %9.0f", tput);
    std::fflush(stdout);
    report.AddThroughput("fileserver.c" + std::to_string(n), tput);
  }
  std::printf("\n");

  // Row 2: FS + Webproxy, both PXFS (paper starts at 2 clients).
  std::printf("%-22s |", "FS+Webproxy (WP)");
  std::fflush(stdout);
  for (int n : client_counts) {
    if (n < 2) {
      std::printf(" %9s", "N/A");
      continue;
    }
    auto sut = SystemUnderTest::Create(SutKind::kPxfs, DefaultSutOptions());
    BENCH_CHECK_OK(sut);
    const double tput =
        RunClients(sut->get(), n, true, false, scale, seconds);
    std::printf(" %9.0f", tput);
    std::fflush(stdout);
    report.AddThroughput("fs_webproxy.c" + std::to_string(n), tput);
  }
  std::printf("\n");

  // Row 3: FS (PXFS) + WP (FlatFS).
  std::printf("%-22s |", "FS+WP (FlatFS)");
  std::fflush(stdout);
  for (int n : client_counts) {
    if (n < 2) {
      std::printf(" %9s", "N/A");
      continue;
    }
    auto sut =
        SystemUnderTest::Create(SutKind::kFlatFs, DefaultSutOptions());
    BENCH_CHECK_OK(sut);
    const double tput =
        RunClients(sut->get(), n, true, true, scale, seconds);
    std::printf(" %9.0f", tput);
    std::fflush(stdout);
    report.AddThroughput("fs_webproxy_flatfs.c" + std::to_string(n), tput);
  }
  std::printf("\n");
  // AERIE_OBS=spans AERIE_TRACE_FILE=trace.json turns the last configuration
  // into a loadable Perfetto timeline (client tracks + clerk/TFS activity).
  // Written before the attribution pass below, which resets the recorder.
  const std::string trace_path = obs::WriteTraceFileIfConfigured();
  if (!trace_path.empty()) {
    std::printf("TRACE_FILE %s\n", trace_path.c_str());
  }

  // Attribution pass: a short span-mode two-client Fileserver run.
  SpanAttributionPass([&] {
    auto sut = SystemUnderTest::Create(SutKind::kPxfs, DefaultSutOptions());
    BENCH_CHECK_OK(sut);
    RunClients(sut->get(), 2, false, false, scale, std::min(seconds, 0.5));
  });
  report.CaptureAttribution();
  FinishReport(report);
  return 0;
}
