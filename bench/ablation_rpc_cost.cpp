// Ablation: sensitivity to RPC round-trip cost (paper §5.1: "Batching of
// metadata operations at a client helps take RPC off the critical path for
// most operations").
//
// Sweeps the modeled loopback round trip from free to 50us, with batching
// on (8MB) and off (per-op shipping). With batching, throughput should be
// almost flat — the design goal; without it, RPC cost dominates.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

int main() {
  using namespace aerie;
  using namespace aerie::bench;

  const double scale = Scale();
  const double seconds = Seconds();
  std::printf("# Ablation: RPC round-trip cost vs Fileserver throughput "
              "(PXFS)\n");
  std::printf("# scale=%.3f, %gs per point\n\n", scale, seconds);
  std::printf("%12s %16s %16s\n", "rpc-delay", "batched it/s",
              "per-op it/s");

  obs::BenchReport report = MakeReport("ablation_rpc_cost");

  for (uint64_t delay_ns : {0ull, 5000ull, 10000ull, 20000ull, 50000ull}) {
    double tput[2] = {0, 0};
    for (int batched = 1; batched >= 0; --batched) {
      SystemUnderTest::Options options = DefaultSutOptions();
      options.rpc_delay_ns = delay_ns;
      auto sut = SystemUnderTest::Create(SutKind::kPxfs, options);
      BENCH_CHECK_OK(sut);
      LibFs::Options libfs_options;
      libfs_options.eager_ship = batched == 0;
      auto client = (*sut)->aerie()->NewClient(libfs_options);
      BENCH_CHECK_OK(client);
      Pxfs pxfs((*client)->fs());
      PxfsAdapter adapter(&pxfs);
      FilebenchRunner runner(
          &adapter,
          FilebenchProfile::Paper(FilebenchKind::kFileserver, scale),
          "/bench", Seed() + 13);
      BENCH_CHECK_STATUS(runner.Prepare());
      Histogram ops;
      auto result = runner.RunForSeconds(seconds, &ops);
      BENCH_CHECK_OK(result);
      tput[batched] = *result;
      report.AddThroughput(std::string("fileserver.") +
                               (batched ? "batched" : "per_op") + ".d" +
                               std::to_string(delay_ns),
                           *result);
    }
    std::printf("%10lluus %16.1f %16.1f\n",
                static_cast<unsigned long long>(delay_ns / 1000), tput[1],
                tput[0]);
  }

  // Attribution pass: short span-mode per-op run at a 10us round trip, where
  // rpc self-time dominates and shows up clearly in the layer table.
  SpanAttributionPass([&] {
    SystemUnderTest::Options options = DefaultSutOptions();
    options.rpc_delay_ns = 10000;
    auto sut = SystemUnderTest::Create(SutKind::kPxfs, options);
    BENCH_CHECK_OK(sut);
    LibFs::Options libfs_options;
    libfs_options.eager_ship = true;
    auto client = (*sut)->aerie()->NewClient(libfs_options);
    BENCH_CHECK_OK(client);
    Pxfs pxfs((*client)->fs());
    PxfsAdapter adapter(&pxfs);
    FilebenchRunner runner(
        &adapter, FilebenchProfile::Paper(FilebenchKind::kFileserver, scale),
        "/bench", Seed() + 13);
    BENCH_CHECK_STATUS(runner.Prepare());
    Histogram ops;
    BENCH_CHECK_OK(runner.RunForSeconds(std::min(seconds, 0.5), &ops));
  });
  report.CaptureAttribution();
  FinishReport(report);
  return 0;
}
