// Table 1: latency of common file-system operations (paper §7.2.1).
//
//   Sequential/random read/write with 4KB buffers, open, create, delete,
//   append — on PXFS, RamFS, ext3, ext4.
//
// AERIE_BENCH_SCALE scales the 1GB file / 1024-file populations.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/obs.h"
#include "src/workload/microbench.h"

namespace {

struct PaperRow {
  const char* name;
  double pxfs, ramfs, ext3, ext4;
};

// Paper Table 1 (microseconds), for side-by-side comparison.
constexpr PaperRow kPaper[] = {
    {"Sequential read", 0.65, 0.58, 0.65, 0.57},
    {"Sequential write", 1.2, 1.2, 1.5, 1.2},
    {"Random read", 1.2, 1.1, 4.2, 4.2},
    {"Random write", 1.1, 1.4, 3.1, 2.5},
    {"Open", 1.2, 1.3, 1.6, 1.6},
    {"Create", 5.5, 3.0, 65.6, 81.2},
    {"Delete", 3.6, 2.3, 10.5, 17.4},
    {"Append", 3.4, 1.1, 5.6, 3.5},
};

}  // namespace

int main() {
  using namespace aerie;
  using namespace aerie::bench;

  const double scale = Scale();
  MicrobenchConfig config = MicrobenchConfig::Scaled(scale);
  std::printf("# Table 1: latency of common file system operations (us)\n");
  std::printf("# file=%.0fMB random=%.0fMB nfiles=%llu (paper: 1GB/100MB/"
              "1024)\n\n",
              static_cast<double>(config.file_bytes) / (1 << 20),
              static_cast<double>(config.random_bytes) / (1 << 20),
              static_cast<unsigned long long>(config.nfiles));

  obs::BenchReport report = MakeReport("table1_microbench");
  report.SetConfig("file_mb",
                   static_cast<double>(config.file_bytes) / (1 << 20));
  report.SetConfig("nfiles", static_cast<double>(config.nfiles));
  const uint64_t seed = Seed();

  const SutKind kinds[] = {SutKind::kPxfs, SutKind::kRamFs, SutKind::kExt3,
                           SutKind::kExt4};
  constexpr const char* kOpSlugs[8] = {"seq_read", "seq_write", "rand_read",
                                       "rand_write", "open", "create",
                                       "delete", "append"};
  // results[op][system] = mean us
  std::vector<std::vector<double>> results(8,
                                           std::vector<double>(4, 0.0));

  for (int s = 0; s < 4; ++s) {
    auto sut = SystemUnderTest::Create(kinds[s], DefaultSutOptions());
    BENCH_CHECK_OK(sut);
    FsInterface* fs = (*sut)->fs();
    BENCH_CHECK_STATUS(fs->Mkdir("/micro"));

    auto record = [&](int row, Result<Histogram> hist) {
      BENCH_CHECK_OK(hist);
      results[static_cast<size_t>(row)][static_cast<size_t>(s)] =
          MeanUs(*hist);
      report.AddLatency(std::string((*sut)->name()) + "." +
                            kOpSlugs[static_cast<size_t>(row)],
                        *hist);
    };
    record(0, BenchSeqRead(fs, "/micro", config));
    record(1, BenchSeqWrite(fs, "/micro", config));
    record(2, BenchRandRead(fs, "/micro", config, seed + 17));
    record(3, BenchRandWrite(fs, "/micro", config, seed + 18));
    record(4, BenchOpen(fs, "/micro", config));
    record(5, BenchCreate(fs, "/micro", config));
    record(6, BenchDelete(fs, "/micro", config));
    record(7, BenchAppend(fs, "/micro", config));
    std::fprintf(stderr, "measured %s\n",
                 std::string((*sut)->name()).c_str());
  }

  std::printf("%-18s | %8s %8s %8s %8s | paper: PXFS RamFS ext3 ext4\n",
              "Benchmark", "PXFS", "RamFS", "ext3", "ext4");
  for (int row = 0; row < 8; ++row) {
    std::printf("%-18s |", kPaper[row].name);
    for (int s = 0; s < 4; ++s) {
      std::printf(" %8.2f",
                  results[static_cast<size_t>(row)][static_cast<size_t>(s)]);
    }
    std::printf(" | %6.2f %6.2f %6.2f %6.2f\n", kPaper[row].pxfs,
                kPaper[row].ramfs, kPaper[row].ext3, kPaper[row].ext4);
  }

  // Per-layer attribution pass: rerun the PXFS microbenches with trace
  // spans enabled on a fresh SUT. Spans perturb measured latencies, so this
  // runs after (and separately from) the main table's measurements; its
  // breakdown comes solely from the obs registry.
  SpanAttributionPass([&] {
    auto sut = SystemUnderTest::Create(SutKind::kPxfs, DefaultSutOptions());
    BENCH_CHECK_OK(sut);
    FsInterface* fs = (*sut)->fs();
    BENCH_CHECK_STATUS(fs->Mkdir("/micro"));
    BENCH_CHECK_OK(BenchSeqRead(fs, "/micro", config));
    BENCH_CHECK_OK(BenchSeqWrite(fs, "/micro", config));
    BENCH_CHECK_OK(BenchRandRead(fs, "/micro", config, seed + 17));
    BENCH_CHECK_OK(BenchRandWrite(fs, "/micro", config, seed + 18));
    BENCH_CHECK_OK(BenchOpen(fs, "/micro", config));
    BENCH_CHECK_OK(BenchCreate(fs, "/micro", config));
    BENCH_CHECK_OK(BenchDelete(fs, "/micro", config));
    BENCH_CHECK_OK(BenchAppend(fs, "/micro", config));
  });
  report.CaptureAttribution();

  std::printf("\n== PXFS per-layer breakdown (instrumented pass) ==\n%s",
              obs::LayerBreakdownText().c_str());
  std::printf("\nOBS_JSON %s\n", obs::DumpJson().c_str());
  FinishReport(report);
  return 0;
}
