// Figure 6: throughput as SCM write latency grows (paper §7.4).
//
// Extra delay (0 / 100 / 1000 / 10000 ns beyond DRAM) is injected at every
// persistence point: per flushed cache line for the Aerie file systems, per
// written block line for the kernel file systems' RAM disk — the paper's
// exact mechanism (software spin delays at write points).
//
// Series: Fileserver and Webproxy on PXFS and ext4, Webproxy on FlatFS.
// Expected shapes: the PXFS/ext4 gap narrows as write latency grows (block
// access amortizes better), and FlatFS's specialization benefit shrinks as
// storage cost dominates software cost.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace aerie;
using namespace aerie::bench;

double MeasureOne(SutKind kind, FilebenchKind profile_kind, uint64_t delay_ns,
                  double scale, double seconds) {
  // Prepare the fileset at DRAM speed, then inject the latency for the
  // measured phase only (pre-populating gigabytes at 10us/line would take
  // hours and measures nothing).
  auto sut = SystemUnderTest::Create(kind, DefaultSutOptions());
  BENCH_CHECK_OK(sut);
  FilebenchProfile profile = FilebenchProfile::Paper(profile_kind, scale);
  const uint64_t seed = Seed() + 9;
  Histogram ops;
  uint64_t iterations = 0;
  double elapsed = 0;
  if (kind == SutKind::kFlatFs) {
    FlatWebproxyRunner runner((*sut)->flat(), profile, "wp", seed);
    BENCH_CHECK_STATUS(runner.Prepare());
    (*sut)->SetWriteLatency(delay_ns);
    Stopwatch sw;
    while (sw.ElapsedSeconds() < seconds) {
      BENCH_CHECK_STATUS(runner.RunIteration(&ops));
      iterations++;
    }
    elapsed = sw.ElapsedSeconds();
  } else {
    FilebenchRunner runner((*sut)->fs(), profile, "/bench", seed);
    BENCH_CHECK_STATUS(runner.Prepare());
    (*sut)->SetWriteLatency(delay_ns);
    Stopwatch sw;
    while (sw.ElapsedSeconds() < seconds) {
      BENCH_CHECK_STATUS(runner.RunIteration(&ops));
      iterations++;
    }
    elapsed = sw.ElapsedSeconds();
  }
  return static_cast<double>(iterations) / elapsed;
}

}  // namespace

int main() {
  const double scale = Scale();
  const double seconds = Seconds();
  std::printf("# Figure 6: throughput (iterations/s) vs extra SCM write "
              "latency\n");
  std::printf("# scale=%.3f, %gs per point; delays injected per persisted "
              "cache line\n\n",
              scale, seconds);

  struct Series {
    const char* name;
    SutKind kind;
    FilebenchKind profile;
  };
  const Series series[] = {
      {"Fileserver-PXFS", SutKind::kPxfs, FilebenchKind::kFileserver},
      {"Fileserver-ext4", SutKind::kExt4, FilebenchKind::kFileserver},
      {"Webproxy-PXFS", SutKind::kPxfs, FilebenchKind::kWebproxy},
      {"Webproxy-ext4", SutKind::kExt4, FilebenchKind::kWebproxy},
      {"Webproxy-FlatFS", SutKind::kFlatFs, FilebenchKind::kWebproxy},
  };
  const uint64_t delays[] = {0, 100, 1000, 10000};

  obs::BenchReport report = MakeReport("fig6_write_latency");

  std::printf("%-17s |", "series");
  for (uint64_t d : delays) {
    std::printf(" %8lluns", static_cast<unsigned long long>(d));
  }
  std::printf("\n");
  for (const Series& s : series) {
    std::printf("%-17s |", s.name);
    std::fflush(stdout);
    for (uint64_t d : delays) {
      const double tput = MeasureOne(s.kind, s.profile, d, scale, seconds);
      std::printf(" %10.1f", tput);
      std::fflush(stdout);
      report.AddThroughput(std::string(s.name) + ".d" + std::to_string(d),
                           tput);
    }
    std::printf("\n");
  }

  // Attribution pass: short span-mode Fileserver run on PXFS at the 1000ns
  // point, where flush self-time starts to matter.
  SpanAttributionPass([&] {
    auto sut = SystemUnderTest::Create(SutKind::kPxfs, DefaultSutOptions());
    BENCH_CHECK_OK(sut);
    FilebenchRunner runner(
        (*sut)->fs(),
        FilebenchProfile::Paper(FilebenchKind::kFileserver, scale), "/bench",
        Seed() + 9);
    BENCH_CHECK_STATUS(runner.Prepare());
    (*sut)->SetWriteLatency(1000);
    Histogram ops;
    BENCH_CHECK_OK(runner.RunForSeconds(std::min(seconds, 0.5), &ops));
  });
  report.CaptureAttribution();
  FinishReport(report);
  return 0;
}
