#include "src/tfs/fsck.h"

#include <cstdio>
#include <map>
#include <set>

#include "src/osd/collection.h"
#include "src/osd/mfile.h"

namespace aerie {

namespace {

constexpr size_t kMaxMessages = 64;

class Checker {
 public:
  explicit Checker(Volume* volume)
      : volume_(volume), ctx_(volume->context()) {}

  FsckReport Run() {
    auto sys = Collection::Open(ctx_, volume_->root_oid());
    if (!sys.ok()) {
      Problem("system collection unreadable: " + sys.status().ToString());
      return report_;
    }
    const Oid pxfs_root = LookupOid(*sys, "root");
    const Oid flat_root = LookupOid(*sys, "flat");
    const Oid orphans = LookupOid(*sys, "orphans");
    const Oid pools = LookupOid(*sys, "pools");

    if (!pxfs_root.IsNull()) {
      WalkDirectory(pxfs_root, "/", 0);
      CheckLinkCounts();
    }
    if (!flat_root.IsNull()) {
      CheckFlatNamespace(flat_root);
    }
    if (!orphans.IsNull()) {
      CheckOrphans(orphans);
    }
    if (!pools.IsNull()) {
      CheckPools(pools);
    }
    return report_;
  }

 private:
  void Problem(const std::string& message) {
    report_.errors++;
    if (report_.messages.size() < kMaxMessages) {
      report_.messages.push_back(message);
    }
  }

  Oid LookupOid(const Collection& coll, const char* key) {
    auto value = coll.Lookup(key);
    if (!value.ok()) {
      Problem(std::string("system entry missing: ") + key);
      return Oid();
    }
    return Oid(*value);
  }

  // True when the object's head page is marked allocated (only checkable on
  // writable volumes, where the allocator is mounted).
  void CheckAllocated(Oid oid, const std::string& where) {
    if (ctx_.alloc != nullptr && !ctx_.alloc->IsAllocated(oid.offset())) {
      Problem(where + ": object storage not marked allocated");
    }
  }

  void WalkDirectory(Oid dir_oid, const std::string& path, int depth) {
    if (depth > 256) {
      Problem(path + ": directory nesting exceeds 256 (cycle?)");
      return;
    }
    if (!visited_dirs_.insert(dir_oid.raw()).second) {
      Problem(path + ": directory reachable twice (cycle or double link)");
      return;
    }
    auto dir = Collection::Open(ctx_, dir_oid);
    if (!dir.ok()) {
      Problem(path + ": unreadable directory: " + dir.status().ToString());
      return;
    }
    if (Status st = dir->Validate(); !st.ok()) {
      Problem(path + ": collection invalid: " + st.ToString());
      return;
    }
    CheckAllocated(dir_oid, path);
    report_.directories++;

    std::vector<std::pair<std::string, Oid>> entries;
    (void)dir->Scan([&](std::string_view name, uint64_t value) {
      entries.emplace_back(std::string(name), Oid(value));
      return true;
    });
    for (const auto& [name, oid] : entries) {
      const std::string child_path =
          path == "/" ? "/" + name : path + "/" + name;
      switch (oid.type()) {
        case ObjType::kCollection: {
          auto child = Collection::Open(ctx_, oid);
          if (child.ok() && !(child->parent_oid() == dir_oid)) {
            Problem(child_path + ": parent pointer does not match location");
          }
          WalkDirectory(oid, child_path, depth + 1);
          break;
        }
        case ObjType::kMFile: {
          auto file = MFile::Open(ctx_, oid);
          if (!file.ok()) {
            Problem(child_path + ": unreadable file: " +
                    file.status().ToString());
            break;
          }
          if (Status st = file->Validate(); !st.ok()) {
            Problem(child_path + ": mFile invalid: " + st.ToString());
            break;
          }
          CheckAllocated(oid, child_path);
          file_refs_[oid.raw()]++;
          break;
        }
        default:
          Problem(child_path + ": unexpected object type in directory");
      }
    }
  }

  void CheckLinkCounts() {
    for (const auto& [raw, refs] : file_refs_) {
      report_.files++;
      auto file = MFile::Open(ctx_, Oid(raw));
      if (file.ok() && file->link_count() != refs) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "oid %llx: link_count %llu != %llu references",
                      static_cast<unsigned long long>(raw),
                      static_cast<unsigned long long>(file->link_count()),
                      static_cast<unsigned long long>(refs));
        Problem(buf);
      }
    }
  }

  void CheckFlatNamespace(Oid flat_oid) {
    auto flat = Collection::Open(ctx_, flat_oid);
    if (!flat.ok()) {
      Problem("flat namespace unreadable: " + flat.status().ToString());
      return;
    }
    if (Status st = flat->Validate(); !st.ok()) {
      Problem("flat namespace invalid: " + st.ToString());
      return;
    }
    (void)flat->Scan([&](std::string_view key, uint64_t value) {
      const Oid oid(value);
      auto file = MFile::Open(ctx_, oid);
      if (!file.ok()) {
        Problem("flat key '" + std::string(key) + "': unreadable mFile");
      } else {
        if (Status st = file->Validate(); !st.ok()) {
          Problem("flat key '" + std::string(key) +
                  "': invalid: " + st.ToString());
        }
        if (file->size() > file->capacity() && file->single_extent()) {
          Problem("flat key '" + std::string(key) + "': size > capacity");
        }
        report_.flat_files++;
      }
      return true;
    });
  }

  void CheckOrphans(Oid orphans_oid) {
    auto orphans = Collection::Open(ctx_, orphans_oid);
    if (!orphans.ok()) {
      Problem("orphan table unreadable: " + orphans.status().ToString());
      return;
    }
    (void)orphans->Scan([&](std::string_view, uint64_t value) {
      auto file = MFile::Open(ctx_, Oid(value));
      if (!file.ok()) {
        Problem("orphan entry points at unreadable mFile");
      } else if (file->link_count() != 0) {
        Problem("orphan entry has nonzero link count");
      } else {
        report_.orphans++;
      }
      return true;
    });
  }

  void CheckPools(Oid pools_oid) {
    auto pools = Collection::Open(ctx_, pools_oid);
    if (!pools.ok()) {
      Problem("pool master unreadable: " + pools.status().ToString());
      return;
    }
    (void)pools->Scan([&](std::string_view, uint64_t table_raw) {
      auto table = Collection::Open(ctx_, Oid(table_raw));
      if (!table.ok()) {
        Problem("pool table unreadable");
        return true;
      }
      (void)table->Scan([&](std::string_view, uint64_t value) {
        const Oid oid(value);
        switch (oid.type()) {
          case ObjType::kMFile:
            if (!MFile::Open(ctx_, oid).ok()) {
              Problem("pooled mFile unreadable");
            } else {
              report_.pool_objects++;
            }
            break;
          case ObjType::kCollection:
            if (!Collection::Open(ctx_, oid).ok()) {
              Problem("pooled collection unreadable");
            } else {
              report_.pool_objects++;
            }
            break;
          case ObjType::kExtent:
            if (ctx_.alloc != nullptr &&
                !ctx_.alloc->IsAllocated(oid.offset())) {
              Problem("pooled extent not allocated");
            } else {
              report_.pool_objects++;
            }
            break;
          default:
            Problem("pool entry with unexpected type");
        }
        return true;
      });
      return true;
    });
  }

  Volume* volume_;
  OsdContext ctx_;
  FsckReport report_;
  std::set<uint64_t> visited_dirs_;
  std::map<uint64_t, uint64_t> file_refs_;
};

}  // namespace

std::string FsckReport::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s: %llu dirs, %llu files, %llu flat, %llu orphans, "
                "%llu pooled, %llu errors",
                ok() ? "clean" : "ERRORS",
                static_cast<unsigned long long>(directories),
                static_cast<unsigned long long>(files),
                static_cast<unsigned long long>(flat_files),
                static_cast<unsigned long long>(orphans),
                static_cast<unsigned long long>(pool_objects),
                static_cast<unsigned long long>(errors));
  return buf;
}

Result<FsckReport> RunFsck(Volume* volume) {
  if (volume->root_oid().IsNull()) {
    return Status(ErrorCode::kInvalidArgument, "volume has no root");
  }
  Checker checker(volume);
  return checker.Run();
}

}  // namespace aerie
