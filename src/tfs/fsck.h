// File-system integrity checker ("fsck" for an Aerie volume).
//
// Walks every namespace reachable from the volume's system collection — the
// PXFS tree, the FlatFS namespace, the orphan table, the pool tables — and
// validates structure the way the TFS's validator reasons about invariants
// (paper §5.3.5): object types match their use, on-SCM structures pass
// their own validation, directory trees are acyclic, mFile link counts
// equal the number of namespace references, and every reachable object
// occupies storage the allocator actually considers allocated.
//
// Crash tests run it after recovery; the `aerie_fsck` usage in tests is the
// executable spec for "metadata integrity".
#ifndef AERIE_SRC_TFS_FSCK_H_
#define AERIE_SRC_TFS_FSCK_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/osd/volume.h"

namespace aerie {

struct FsckReport {
  uint64_t directories = 0;
  uint64_t files = 0;        // PXFS mFiles (once per object, not per link)
  uint64_t flat_files = 0;   // FlatFS single-extent mFiles
  uint64_t orphans = 0;      // unlinked-but-open files awaiting reclaim
  uint64_t pool_objects = 0; // pre-allocated, not yet linked
  uint64_t errors = 0;
  std::vector<std::string> messages;  // first N problems, human-readable

  bool ok() const { return errors == 0; }
  std::string Summary() const;
};

// Read-only check over an opened volume (writable or read-only view).
Result<FsckReport> RunFsck(Volume* volume);

}  // namespace aerie

#endif  // AERIE_SRC_TFS_FSCK_H_
