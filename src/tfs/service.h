// Trusted File System service (paper §4.2, §5.3.5–§5.3.7, §6).
//
// The TFS is the trusted user-mode process that mutually-distrustful clients
// cooperate through. It owns every metadata *mutation*:
//
//   validate  — each batched op is checked structurally (untrusted bytes),
//               against the lock service (the client must hold the claimed
//               authority lock in a write mode with a live lease), and
//               against file-system invariants (unique names, empty-dir
//               removal, no rename cycles, extents really allocated and
//               owned by the client's pre-allocation pool);
//   log       — the validated, server-enriched ops are written to the
//               volume's redo log and committed (WAL, §5.3.6);
//   apply     — ops mutate collections/mFiles in place with flushes; replay
//               after a crash re-applies committed ops idempotently;
//   reclaim   — client failure discards unshipped batches implicitly (lock
//               leases), frees unused pre-allocated pool objects (WAFL-style
//               pool tracking files, §5.3.7), and collects unlinked-but-open
//               files once the last opener goes away (§6.1's open-file
//               table).
//
// One TFS serves both PXFS and FlatFS over the same volume layout (§6).
#ifndef AERIE_SRC_TFS_SERVICE_H_
#define AERIE_SRC_TFS_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/lock/lock_service.h"
#include "src/obs/obs.h"
#include "src/osd/collection.h"
#include "src/osd/mfile.h"
#include "src/osd/volume.h"
#include "src/rpc/transport.h"
#include "src/scm/manager.h"
#include "src/tfs/ops.h"

namespace aerie {

class TrustedFsService {
 public:
  struct Options {
    // Verify lock ownership and leases on every op (disable only for
    // ablation benchmarks measuring validation cost).
    bool strict_lock_checks = true;
  };

  // `scm` may be null (no hardware-protection propagation).
  TrustedFsService(Volume* volume, LockService* locks, ScmManager* scm,
                   Options options);
  TrustedFsService(Volume* volume, LockService* locks)
      : TrustedFsService(volume, locks, nullptr, Options{}) {}

  // Creates the system collections (PXFS root, FlatFS namespace, orphan
  // table, pool master) on a freshly formatted volume. Idempotent.
  Status Bootstrap();

  // Crash recovery: replays the redo log, then reclaims orphans and stale
  // client pools.
  Status Recover();

  // --- Client-facing operations (also wired into RPC) ---

  // Validates, WAL-logs and applies a batch of metadata ops.
  Status ApplyBatch(uint64_t client_id, std::string_view batch_blob);

  // Pre-allocates `count` objects for the client (paper §5.3.7).
  // For kMFile with capacity != 0, single-extent mFiles are produced.
  Result<std::vector<Oid>> PoolFill(uint64_t client_id, ObjType type,
                                    uint32_t count, uint64_t capacity);

  // Open-file tracking for unlink-while-open (paper §6.1).
  Status NotifyOpen(uint64_t client_id, Oid file);
  Status NotifyClosed(uint64_t client_id, Oid file);

  struct Roots {
    Oid pxfs_root;
    Oid flat_root;
  };
  Roots GetRoots() const { return roots_; }

  // Fallback data path for files memory protection cannot express
  // (write-only files, §5.3.3): full read/write through the service.
  Result<uint64_t> ServiceRead(uint64_t client_id, Oid file, uint64_t offset,
                               std::span<char> out);
  Status ServiceWrite(uint64_t client_id, Oid file, uint64_t offset,
                      std::span<const char> data);

  // Client session teardown: drops open-file refs, reclaims its pool.
  Status ClientDisconnected(uint64_t client_id);

  void RegisterRpc(RpcDispatcher* dispatcher);

  // --- Introspection ---
  uint64_t batches_applied() const { return batches_applied_.value(); }
  uint64_t ops_applied() const { return ops_applied_.value(); }
  uint64_t ops_rejected() const { return ops_rejected_.value(); }
  Volume* volume() { return volume_; }
  LockService* locks() { return locks_; }

  // Test hook: when true, ApplyBatch "crashes" after the WAL commit and
  // before applying (the recovery path must finish the job).
  void set_crash_after_log_commit(bool v) { crash_after_log_commit_ = v; }

 private:
  struct ClientState {
    // Volatile mirror of the client's persistent pool table.
    std::set<uint64_t> pool;        // raw OIDs (incl. extents)
    std::set<uint64_t> open_files;  // files this client holds open
    Oid pool_table;                 // persistent tracking collection
  };

  // Validates `op` against locks, pools and invariants; fills the
  // server-enriched fields. mutating_ ops only.
  Status Validate(uint64_t client_id, MetaOp* op);
  // Applies an op to SCM structures. `replay` tolerates already-applied
  // effects (idempotent redo).
  Status Apply(uint64_t client_id, const MetaOp& op, bool replay);

  Status HoldsWriteLock(uint64_t client_id, LockId object_lock,
                        uint64_t authority) const;

  // Pool helpers. Persistent + volatile bookkeeping.
  Result<Oid> EnsurePoolTable(uint64_t client_id);
  bool PoolContains(uint64_t client_id, Oid oid);
  Status PoolRemove(uint64_t client_id, Oid oid);

  // Orphan (unlinked-but-open) bookkeeping.
  Status OrphanAdd(Oid file);
  Status OrphanRemoveAndFree(Oid file);
  uint64_t OpenCount(Oid file) const;

  Result<Collection> OpenSystem(const char* key) const;

  Volume* volume_;
  LockService* locks_;
  ScmManager* scm_;
  Options options_;
  OsdContext ctx_;

  Roots roots_;
  Oid orphans_oid_;
  Oid pools_oid_;

  mutable std::mutex clients_mu_;
  std::map<uint64_t, ClientState> clients_;
  std::map<uint64_t, uint64_t> open_counts_;  // file oid -> openers

  std::mutex log_mu_;
  uint64_t applies_in_flight_ = 0;

  std::mutex alloc_mu_;  // serializes pool/orphan collection mutation

  // Service statistics live in the obs registry for the service's lifetime.
  obs::Counter batches_applied_{"tfs.batch.applied"};
  obs::Counter ops_applied_{"tfs.ops.applied"};
  obs::Counter ops_rejected_{"tfs.ops.rejected"};
  obs::ScopedRegistration obs_registration_;
  bool crash_after_log_commit_ = false;
};

}  // namespace aerie

#endif  // AERIE_SRC_TFS_SERVICE_H_
