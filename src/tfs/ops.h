// Metadata operations (paper §5.3.5).
//
// Clients do not mutate metadata directly: they log operations like these
// into a local batch (libFS) and ship the batch to the TFS, which validates
// and applies them. Each op names the *authority lock* the client claims
// covers the op; the TFS verifies the client actually holds that lock in a
// write mode before applying.
//
// The same encoding is reused for the TFS's write-ahead log, enriched with
// server-computed absolute values (victim OIDs, new link counts) so that
// replay after a crash is idempotent.
#ifndef AERIE_SRC_TFS_OPS_H_
#define AERIE_SRC_TFS_OPS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/osd/oid.h"
#include "src/rpc/wire.h"

namespace aerie {

enum class MetaOpType : uint32_t {
  kNone = 0,
  kCreateFile,    // dir, name, obj = new mFile (from client pool)
  kCreateDir,     // dir, name, obj = new collection (from client pool)
  kLink,          // dir, name, obj = existing object (hard link)
  kUnlink,        // dir, name             (file or empty directory)
  kRename,        // dir, name -> dir2, name2 (overwrites dst if present)
  kAttachExtent,  // obj = file, a = page index, b = extent offset (pool)
  kSetSize,       // obj = file, a = size
  kTruncate,      // obj = file, a = size
  kSetAcl,        // obj, a = acl
  kFlatPut,       // dir = collection, name = key, obj = mFile, a = size
  kFlatErase,     // dir = collection, name = key
};

struct MetaOp {
  MetaOpType type = MetaOpType::kNone;
  uint64_t authority = 0;  // lock id claimed to cover this op

  Oid dir;            // primary directory / collection
  Oid dir2;           // rename destination directory
  std::string name;   // primary name / key
  std::string name2;  // rename destination name
  Oid obj;            // object being created / linked / modified
  uint64_t a = 0;     // op-specific scalar (page index, size, acl)
  uint64_t b = 0;     // op-specific scalar (extent offset)

  // --- Server-enriched fields (absolute values for idempotent replay) ---
  Oid victim;                // object displaced by unlink/rename/put
  uint64_t victim_links = 0;  // victim's link count after the op
  uint8_t victim_free = 0;    // 1: victim storage is freed by this op
  uint8_t victim_is_dir = 0;  // victim object type hint
  uint64_t obj_links = 0;     // obj's link count after the op

  void Encode(WireBuffer* out) const;
  static Result<MetaOp> Decode(WireReader* in);
};

// Encodes a sequence of ops into one batch blob.
std::string EncodeBatch(const std::vector<MetaOp>& ops);
// Decodes a batch blob (validates structure; untrusted input).
Result<std::vector<MetaOp>> DecodeBatch(std::string_view blob);

// RPC method ids served by the TFS.
enum TfsRpcMethod : uint32_t {
  kTfsRpcApplyBatch = 0x5400,
  kTfsRpcPoolFill = 0x5401,
  kTfsRpcNotifyOpen = 0x5402,
  kTfsRpcNotifyClosed = 0x5403,
  kTfsRpcGetRoots = 0x5404,
  kTfsRpcServiceRead = 0x5405,
  kTfsRpcServiceWrite = 0x5406,
};

}  // namespace aerie

#endif  // AERIE_SRC_TFS_OPS_H_
