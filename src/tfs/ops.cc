#include "src/tfs/ops.h"

namespace aerie {

void MetaOp::Encode(WireBuffer* out) const {
  out->AppendU32(static_cast<uint32_t>(type));
  out->AppendU64(authority);
  out->AppendU64(dir.raw());
  out->AppendU64(dir2.raw());
  out->AppendString(name);
  out->AppendString(name2);
  out->AppendU64(obj.raw());
  out->AppendU64(a);
  out->AppendU64(b);
  out->AppendU64(victim.raw());
  out->AppendU64(victim_links);
  out->AppendU8(victim_free);
  out->AppendU8(victim_is_dir);
  out->AppendU64(obj_links);
}

Result<MetaOp> MetaOp::Decode(WireReader* in) {
  MetaOp op;
  auto type = in->ReadU32();
  auto authority = in->ReadU64();
  auto dir = in->ReadU64();
  auto dir2 = in->ReadU64();
  auto name = in->ReadString();
  auto name2 = in->ReadString();
  auto obj = in->ReadU64();
  auto a = in->ReadU64();
  auto b = in->ReadU64();
  auto victim = in->ReadU64();
  auto victim_links = in->ReadU64();
  auto victim_free = in->ReadU8();
  auto victim_is_dir = in->ReadU8();
  auto obj_links = in->ReadU64();
  if (!type.ok() || !authority.ok() || !dir.ok() || !dir2.ok() ||
      !name.ok() || !name2.ok() || !obj.ok() || !a.ok() || !b.ok() ||
      !victim.ok() || !victim_links.ok() || !victim_free.ok() ||
      !victim_is_dir.ok() || !obj_links.ok()) {
    return Status(ErrorCode::kInvalidArgument, "truncated metadata op");
  }
  op.type = static_cast<MetaOpType>(*type);
  op.authority = *authority;
  op.dir = Oid(*dir);
  op.dir2 = Oid(*dir2);
  op.name = std::string(*name);
  op.name2 = std::string(*name2);
  op.obj = Oid(*obj);
  op.a = *a;
  op.b = *b;
  op.victim = Oid(*victim);
  op.victim_links = *victim_links;
  op.victim_free = *victim_free;
  op.victim_is_dir = *victim_is_dir;
  op.obj_links = *obj_links;
  return op;
}

std::string EncodeBatch(const std::vector<MetaOp>& ops) {
  WireBuffer buf;
  buf.AppendU32(static_cast<uint32_t>(ops.size()));
  for (const MetaOp& op : ops) {
    op.Encode(&buf);
  }
  return buf.Release();
}

Result<std::vector<MetaOp>> DecodeBatch(std::string_view blob) {
  WireReader reader(blob);
  auto count = reader.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  // Minimum encoded op size bounds the count a well-formed blob can carry
  // (untrusted input: never reserve based on a claimed count alone).
  constexpr uint32_t kMinOpBytes = 60;
  if (*count > blob.size() / kMinOpBytes + 1) {
    return Status(ErrorCode::kInvalidArgument, "op count exceeds batch size");
  }
  std::vector<MetaOp> ops;
  ops.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto op = MetaOp::Decode(&reader);
    if (!op.ok()) {
      return op.status();
    }
    ops.push_back(std::move(*op));
  }
  if (!reader.AtEnd()) {
    return Status(ErrorCode::kInvalidArgument, "trailing bytes in batch");
  }
  return ops;
}

}  // namespace aerie
