#include "src/tfs/service.h"

#include <cstring>

#include "src/common/check.h"
#include "src/obs/trace.h"

namespace aerie {

namespace {

// 8-byte binary key for oid-keyed system collections (pools, orphans).
std::string OidKey(Oid oid) {
  const uint64_t raw = oid.raw();
  return std::string(reinterpret_cast<const char*>(&raw), sizeof(raw));
}

std::string ClientKey(uint64_t client_id) {
  return std::string(reinterpret_cast<const char*>(&client_id),
                     sizeof(client_id));
}

constexpr uint64_t kMaxFileBytes = 1ull << 46;

}  // namespace

TrustedFsService::TrustedFsService(Volume* volume, LockService* locks,
                                   ScmManager* scm, Options options)
    : volume_(volume),
      locks_(locks),
      scm_(scm),
      options_(options),
      ctx_(volume->context()) {
  obs_registration_.AddAll(batches_applied_, ops_applied_, ops_rejected_);
  AERIE_CHECK(ctx_.can_allocate());
  if (!volume_->root_oid().IsNull()) {
    // Existing volume: load system collection.
    auto sys = Collection::Open(ctx_, volume_->root_oid());
    if (sys.ok()) {
      auto get = [&](const char* key) {
        auto v = sys->Lookup(key);
        return v.ok() ? Oid(*v) : Oid();
      };
      roots_.pxfs_root = get("root");
      roots_.flat_root = get("flat");
      orphans_oid_ = get("orphans");
      pools_oid_ = get("pools");
    }
  }
}

Status TrustedFsService::Bootstrap() {
  AERIE_SCM_LAYER("tfs");
  if (!volume_->root_oid().IsNull()) {
    return OkStatus();
  }
  AERIE_ASSIGN_OR_RETURN(Collection sys, Collection::Create(ctx_, 0));
  AERIE_ASSIGN_OR_RETURN(Collection root, Collection::Create(ctx_, 0));
  AERIE_ASSIGN_OR_RETURN(Collection flat, Collection::Create(ctx_, 0));
  AERIE_ASSIGN_OR_RETURN(Collection orphans, Collection::Create(ctx_, 0));
  AERIE_ASSIGN_OR_RETURN(Collection pools, Collection::Create(ctx_, 0));
  root.SetParentOid(root.oid());  // "/.." == "/"
  root.SetLinkCount(1);
  flat.SetLinkCount(1);
  AERIE_RETURN_IF_ERROR(sys.Insert("root", root.oid().raw()));
  AERIE_RETURN_IF_ERROR(sys.Insert("flat", flat.oid().raw()));
  AERIE_RETURN_IF_ERROR(sys.Insert("orphans", orphans.oid().raw()));
  AERIE_RETURN_IF_ERROR(sys.Insert("pools", pools.oid().raw()));
  volume_->SetRootOid(sys.oid());
  roots_.pxfs_root = root.oid();
  roots_.flat_root = flat.oid();
  orphans_oid_ = orphans.oid();
  pools_oid_ = pools.oid();
  return OkStatus();
}

Result<Collection> TrustedFsService::OpenSystem(const char* key) const {
  auto sys = Collection::Open(ctx_, volume_->root_oid());
  if (!sys.ok()) {
    return sys.status();
  }
  auto oid = sys->Lookup(key);
  if (!oid.ok()) {
    return oid.status();
  }
  return Collection::Open(ctx_, Oid(*oid));
}

// --- Lock / lease checks -----------------------------------------------

Status TrustedFsService::HoldsWriteLock(uint64_t client_id,
                                        LockId object_lock,
                                        uint64_t authority) const {
  if (!options_.strict_lock_checks) {
    return OkStatus();
  }
  if (!locks_->LeaseValid(client_id)) {
    return Status(ErrorCode::kLockRevoked, "client lease expired");
  }
  const LockMode held = locks_->HeldMode(client_id, authority);
  if (held == LockMode::kExclusiveHier) {
    return OkStatus();  // hierarchical write authority claimed over object
  }
  if (held == LockMode::kExclusive && authority == object_lock) {
    return OkStatus();
  }
  // The object's own lock in a write mode is always sufficient authority.
  // This also absorbs a benign race with de-escalation: an op may cite a
  // hierarchical ancestor that was downgraded after logging, but the clerk
  // escalates in-use descendants to explicit locks first, so by ship time
  // the client holds the object's own exclusive lock.
  const LockMode held_obj = locks_->HeldMode(client_id, object_lock);
  if (held_obj == LockMode::kExclusive ||
      held_obj == LockMode::kExclusiveHier) {
    return OkStatus();
  }
  return Status(ErrorCode::kPermissionDenied,
                "client does not hold a covering write lock");
}

// --- Validation ---------------------------------------------------------

Status TrustedFsService::Validate(uint64_t client_id, MetaOp* op) {
  auto bad = [](const char* msg) {
    return Status(ErrorCode::kInvalidArgument, msg);
  };
  auto open_dir = [&](Oid oid) { return Collection::Open(ctx_, oid); };
  auto open_file = [&](Oid oid) { return MFile::Open(ctx_, oid); };

  switch (op->type) {
    case MetaOpType::kCreateFile:
    case MetaOpType::kCreateDir: {
      if (op->name.empty() || op->name.size() > Collection::kMaxKeyLen) {
        return bad("bad name");
      }
      AERIE_RETURN_IF_ERROR(
          HoldsWriteLock(client_id, op->dir.lock_id(), op->authority));
      AERIE_ASSIGN_OR_RETURN(Collection dir, open_dir(op->dir));
      if (dir.Lookup(op->name).ok()) {
        return Status(ErrorCode::kAlreadyExists, "name exists");
      }
      const ObjType want = op->type == MetaOpType::kCreateFile
                               ? ObjType::kMFile
                               : ObjType::kCollection;
      if (op->obj.type() != want || !PoolContains(client_id, op->obj)) {
        return Status(ErrorCode::kPermissionDenied,
                      "object not in client pool");
      }
      op->obj_links = 1;
      return OkStatus();
    }

    case MetaOpType::kLink: {
      if (op->name.empty() || op->name.size() > Collection::kMaxKeyLen) {
        return bad("bad name");
      }
      AERIE_RETURN_IF_ERROR(
          HoldsWriteLock(client_id, op->dir.lock_id(), op->authority));
      AERIE_ASSIGN_OR_RETURN(Collection dir, open_dir(op->dir));
      if (dir.Lookup(op->name).ok()) {
        return Status(ErrorCode::kAlreadyExists, "name exists");
      }
      if (op->obj.type() != ObjType::kMFile) {
        return bad("hard links to directories are not allowed");
      }
      AERIE_ASSIGN_OR_RETURN(MFile file, open_file(op->obj));
      op->obj_links = file.link_count() + 1;
      return OkStatus();
    }

    case MetaOpType::kUnlink: {
      AERIE_RETURN_IF_ERROR(
          HoldsWriteLock(client_id, op->dir.lock_id(), op->authority));
      AERIE_ASSIGN_OR_RETURN(Collection dir, open_dir(op->dir));
      auto found = dir.Lookup(op->name);
      if (!found.ok()) {
        return found.status();
      }
      op->victim = Oid(*found);
      if (op->victim.type() == ObjType::kCollection) {
        AERIE_ASSIGN_OR_RETURN(Collection victim, open_dir(op->victim));
        if (victim.size() != 0) {
          return Status(ErrorCode::kNotEmpty, "directory not empty");
        }
        op->victim_is_dir = 1;
        op->victim_links = 0;
        op->victim_free = 1;
      } else {
        AERIE_ASSIGN_OR_RETURN(MFile victim, open_file(op->victim));
        const uint64_t links = victim.link_count();
        op->victim_links = links > 0 ? links - 1 : 0;
        op->victim_free =
            (op->victim_links == 0 && OpenCount(op->victim) == 0) ? 1 : 0;
      }
      return OkStatus();
    }

    case MetaOpType::kRename: {
      if (op->name2.empty() || op->name2.size() > Collection::kMaxKeyLen) {
        return bad("bad destination name");
      }
      AERIE_RETURN_IF_ERROR(
          HoldsWriteLock(client_id, op->dir.lock_id(), op->authority));
      AERIE_RETURN_IF_ERROR(
          HoldsWriteLock(client_id, op->dir2.lock_id(), op->authority));
      AERIE_ASSIGN_OR_RETURN(Collection src, open_dir(op->dir));
      AERIE_ASSIGN_OR_RETURN(Collection dst, open_dir(op->dir2));
      auto found = src.Lookup(op->name);
      if (!found.ok()) {
        return found.status();
      }
      op->obj = Oid(*found);

      if (op->obj.type() == ObjType::kCollection) {
        // No cycles: the destination must not be inside the moved subtree
        // (paper §5.3.5's canonical invariant example).
        Oid walk = op->dir2;
        for (int depth = 0; depth < 4096; ++depth) {
          if (walk == op->obj) {
            return bad("rename would create a namespace cycle");
          }
          AERIE_ASSIGN_OR_RETURN(Collection c, open_dir(walk));
          const Oid parent = c.parent_oid();
          if (parent == walk || parent.IsNull()) {
            break;
          }
          walk = parent;
        }
      }

      auto existing = dst.Lookup(op->name2);
      if (existing.ok()) {
        op->victim = Oid(*existing);
        if (op->victim == op->obj) {
          return bad("rename onto itself");
        }
        if (op->victim.type() == ObjType::kCollection) {
          AERIE_ASSIGN_OR_RETURN(Collection victim, open_dir(op->victim));
          if (victim.size() != 0) {
            return Status(ErrorCode::kNotEmpty, "destination not empty");
          }
          op->victim_is_dir = 1;
          op->victim_free = 1;
        } else {
          AERIE_ASSIGN_OR_RETURN(MFile victim, open_file(op->victim));
          const uint64_t links = victim.link_count();
          op->victim_links = links > 0 ? links - 1 : 0;
          op->victim_free =
              (op->victim_links == 0 && OpenCount(op->victim) == 0) ? 1 : 0;
        }
      }
      return OkStatus();
    }

    case MetaOpType::kAttachExtent: {
      AERIE_RETURN_IF_ERROR(
          HoldsWriteLock(client_id, op->obj.lock_id(), op->authority));
      AERIE_ASSIGN_OR_RETURN(MFile file, open_file(op->obj));
      if (file.single_extent()) {
        return bad("cannot attach to single-extent file");
      }
      if (op->a * kScmPageSize >= kMaxFileBytes) {
        return bad("page index out of range");
      }
      const Oid extent = Oid::Make(ObjType::kExtent, op->b);
      if (!PoolContains(client_id, extent)) {
        return Status(ErrorCode::kPermissionDenied,
                      "extent not in client pool");
      }
      if (!ctx_.alloc->IsAllocated(op->b)) {
        return Status(ErrorCode::kCorrupted, "extent not allocated");
      }
      return OkStatus();
    }

    case MetaOpType::kSetSize:
    case MetaOpType::kTruncate: {
      AERIE_RETURN_IF_ERROR(
          HoldsWriteLock(client_id, op->obj.lock_id(), op->authority));
      AERIE_ASSIGN_OR_RETURN(MFile file, open_file(op->obj));
      if (op->a > kMaxFileBytes) {
        return bad("size out of range");
      }
      if (file.single_extent() && op->a > file.capacity()) {
        return Status(ErrorCode::kOutOfSpace, "beyond fixed capacity");
      }
      return OkStatus();
    }

    case MetaOpType::kSetAcl: {
      AERIE_RETURN_IF_ERROR(
          HoldsWriteLock(client_id, op->obj.lock_id(), op->authority));
      if (op->obj.type() == ObjType::kMFile) {
        return open_file(op->obj).status();
      }
      return open_dir(op->obj).status();
    }

    case MetaOpType::kFlatPut: {
      if (op->name.empty() || op->name.size() > Collection::kMaxKeyLen) {
        return bad("bad key");
      }
      AERIE_RETURN_IF_ERROR(
          HoldsWriteLock(client_id, op->authority, op->authority));
      AERIE_ASSIGN_OR_RETURN(Collection coll, open_dir(op->dir));
      if (op->obj.type() != ObjType::kMFile ||
          !PoolContains(client_id, op->obj)) {
        return Status(ErrorCode::kPermissionDenied,
                      "object not in client pool");
      }
      AERIE_ASSIGN_OR_RETURN(MFile file, open_file(op->obj));
      if (!file.single_extent() || op->a > file.capacity()) {
        return bad("bad flat file");
      }
      auto existing = coll.Lookup(op->name);
      if (existing.ok()) {
        op->victim = Oid(*existing);
        op->victim_free = OpenCount(op->victim) == 0 ? 1 : 0;
      }
      op->obj_links = 1;
      return OkStatus();
    }

    case MetaOpType::kFlatErase: {
      AERIE_RETURN_IF_ERROR(
          HoldsWriteLock(client_id, op->authority, op->authority));
      AERIE_ASSIGN_OR_RETURN(Collection coll, open_dir(op->dir));
      auto existing = coll.Lookup(op->name);
      if (!existing.ok()) {
        return existing.status();
      }
      op->victim = Oid(*existing);
      op->victim_free = OpenCount(op->victim) == 0 ? 1 : 0;
      return OkStatus();
    }

    case MetaOpType::kNone:
      break;
  }
  return bad("unknown op type");
}

// --- Apply ---------------------------------------------------------------

Status TrustedFsService::Apply(uint64_t client_id, const MetaOp& op,
                               bool replay) {
  AERIE_SCM_LAYER("tfs");
  // Already-applied effects surface as kAlreadyExists / kNotFound during
  // replay; those are successes for an idempotent redo log.
  auto tolerate = [&](Status st, ErrorCode benign) {
    if (replay && st.code() == benign) {
      return OkStatus();
    }
    return st;
  };

  switch (op.type) {
    case MetaOpType::kCreateFile: {
      AERIE_ASSIGN_OR_RETURN(Collection dir, Collection::Open(ctx_, op.dir));
      AERIE_RETURN_IF_ERROR(tolerate(dir.Insert(op.name, op.obj.raw()),
                                     ErrorCode::kAlreadyExists));
      AERIE_ASSIGN_OR_RETURN(MFile file, MFile::Open(ctx_, op.obj));
      file.SetLinkCount(op.obj_links);
      return PoolRemove(client_id, op.obj);
    }

    case MetaOpType::kCreateDir: {
      AERIE_ASSIGN_OR_RETURN(Collection dir, Collection::Open(ctx_, op.dir));
      AERIE_RETURN_IF_ERROR(tolerate(dir.Insert(op.name, op.obj.raw()),
                                     ErrorCode::kAlreadyExists));
      AERIE_ASSIGN_OR_RETURN(Collection child,
                             Collection::Open(ctx_, op.obj));
      child.SetParentOid(op.dir);
      child.SetLinkCount(op.obj_links);
      return PoolRemove(client_id, op.obj);
    }

    case MetaOpType::kLink: {
      AERIE_ASSIGN_OR_RETURN(Collection dir, Collection::Open(ctx_, op.dir));
      AERIE_RETURN_IF_ERROR(tolerate(dir.Insert(op.name, op.obj.raw()),
                                     ErrorCode::kAlreadyExists));
      AERIE_ASSIGN_OR_RETURN(MFile file, MFile::Open(ctx_, op.obj));
      file.SetLinkCount(op.obj_links);
      return OkStatus();
    }

    case MetaOpType::kUnlink: {
      AERIE_ASSIGN_OR_RETURN(Collection dir, Collection::Open(ctx_, op.dir));
      AERIE_RETURN_IF_ERROR(
          tolerate(dir.Erase(op.name), ErrorCode::kNotFound));
      if (op.victim_is_dir) {
        auto victim = Collection::Open(ctx_, op.victim);
        if (victim.ok()) {
          AERIE_RETURN_IF_ERROR(victim->Destroy());
        }
        return OkStatus();
      }
      auto victim = MFile::Open(ctx_, op.victim);
      if (!victim.ok()) {
        return replay ? OkStatus() : victim.status();
      }
      victim->SetLinkCount(op.victim_links);
      if (op.victim_free) {
        return victim->Destroy();
      }
      if (op.victim_links == 0) {
        return OrphanAdd(op.victim);  // unlinked while open (§6.1)
      }
      return OkStatus();
    }

    case MetaOpType::kRename: {
      AERIE_ASSIGN_OR_RETURN(Collection src, Collection::Open(ctx_, op.dir));
      AERIE_ASSIGN_OR_RETURN(Collection dst,
                             Collection::Open(ctx_, op.dir2));
      AERIE_RETURN_IF_ERROR(
          tolerate(src.Erase(op.name), ErrorCode::kNotFound));
      if (!op.victim.IsNull()) {
        AERIE_RETURN_IF_ERROR(
            tolerate(dst.Erase(op.name2), ErrorCode::kNotFound));
        if (op.victim_is_dir) {
          auto victim = Collection::Open(ctx_, op.victim);
          if (victim.ok()) {
            AERIE_RETURN_IF_ERROR(victim->Destroy());
          }
        } else {
          auto victim = MFile::Open(ctx_, op.victim);
          if (victim.ok()) {
            victim->SetLinkCount(op.victim_links);
            if (op.victim_free) {
              AERIE_RETURN_IF_ERROR(victim->Destroy());
            } else if (op.victim_links == 0) {
              AERIE_RETURN_IF_ERROR(OrphanAdd(op.victim));
            }
          }
        }
      }
      AERIE_RETURN_IF_ERROR(tolerate(dst.Insert(op.name2, op.obj.raw()),
                                     ErrorCode::kAlreadyExists));
      if (op.obj.type() == ObjType::kCollection) {
        AERIE_ASSIGN_OR_RETURN(Collection moved,
                               Collection::Open(ctx_, op.obj));
        moved.SetParentOid(op.dir2);
      }
      return OkStatus();
    }

    case MetaOpType::kAttachExtent: {
      AERIE_ASSIGN_OR_RETURN(MFile file, MFile::Open(ctx_, op.obj));
      AERIE_RETURN_IF_ERROR(tolerate(file.AttachExtent(op.a, op.b),
                                     ErrorCode::kAlreadyExists));
      return PoolRemove(client_id, Oid::Make(ObjType::kExtent, op.b));
    }

    case MetaOpType::kSetSize: {
      AERIE_ASSIGN_OR_RETURN(MFile file, MFile::Open(ctx_, op.obj));
      return file.SetSize(op.a);
    }

    case MetaOpType::kTruncate: {
      AERIE_ASSIGN_OR_RETURN(MFile file, MFile::Open(ctx_, op.obj));
      return file.Truncate(op.a);
    }

    case MetaOpType::kSetAcl: {
      const uint32_t acl = static_cast<uint32_t>(op.a);
      if (op.obj.type() == ObjType::kMFile) {
        AERIE_ASSIGN_OR_RETURN(MFile file, MFile::Open(ctx_, op.obj));
        file.SetAcl(acl);
        if (scm_ != nullptr) {
          // Propagate protection to every extent of the object (paper
          // §5.3.3): hardware (soft page table) rights must match.
          (void)file.ForEachExtent([&](uint64_t, uint64_t extent) {
            if (!scm_->MprotectExtent(extent, acl).ok()) {
              (void)scm_->CreateExtent(extent, kScmPageSize, acl);
            }
            return true;
          });
        }
      } else {
        AERIE_ASSIGN_OR_RETURN(Collection dir,
                               Collection::Open(ctx_, op.obj));
        dir.SetAcl(acl);
      }
      return OkStatus();
    }

    case MetaOpType::kFlatPut: {
      AERIE_ASSIGN_OR_RETURN(Collection coll, Collection::Open(ctx_, op.dir));
      if (!op.victim.IsNull() && op.victim != op.obj) {
        AERIE_RETURN_IF_ERROR(
            tolerate(coll.Erase(op.name), ErrorCode::kNotFound));
        auto victim = MFile::Open(ctx_, op.victim);
        if (victim.ok() && op.victim_free) {
          AERIE_RETURN_IF_ERROR(victim->Destroy());
        } else if (victim.ok()) {
          victim->SetLinkCount(0);
          AERIE_RETURN_IF_ERROR(OrphanAdd(op.victim));
        }
      }
      AERIE_RETURN_IF_ERROR(tolerate(coll.Insert(op.name, op.obj.raw()),
                                     ErrorCode::kAlreadyExists));
      AERIE_ASSIGN_OR_RETURN(MFile file, MFile::Open(ctx_, op.obj));
      AERIE_RETURN_IF_ERROR(file.SetSize(op.a));
      file.SetLinkCount(op.obj_links);
      return PoolRemove(client_id, op.obj);
    }

    case MetaOpType::kFlatErase: {
      AERIE_ASSIGN_OR_RETURN(Collection coll, Collection::Open(ctx_, op.dir));
      AERIE_RETURN_IF_ERROR(
          tolerate(coll.Erase(op.name), ErrorCode::kNotFound));
      auto victim = MFile::Open(ctx_, op.victim);
      if (victim.ok()) {
        victim->SetLinkCount(0);
        if (op.victim_free) {
          return victim->Destroy();
        }
        return OrphanAdd(op.victim);
      }
      return OkStatus();
    }

    case MetaOpType::kNone:
      break;
  }
  return Status(ErrorCode::kInvalidArgument, "unknown op type");
}

// --- Batch pipeline ------------------------------------------------------

Status TrustedFsService::ApplyBatch(uint64_t client_id,
                                    std::string_view batch_blob) {
  AERIE_SCM_LAYER("tfs");
  AERIE_SPAN("tfs", "apply_batch");
  // Any RPC from a live client proves it hasn't failed, so renew its lease —
  // exactly as Acquire/Release do. Without this, a client working entirely
  // out of its lock cache (no lock RPCs, hence no implicit renewals) could
  // ship a batch moments after a renewal stall lapsed the lease and have
  // every op rejected by HoldsWriteLock's LeaseValid check even though the
  // locks were never granted elsewhere. A client whose locks genuinely moved
  // on still fails the per-op HeldMode checks below.
  (void)locks_->Renew(client_id);
  auto ops = DecodeBatch(batch_blob);
  if (!ops.ok()) {
    ops_rejected_.Add(1);
    return ops.status();
  }
  obs::TraceInstant("tfs.apply_batch.ops", ops->size());

  // Each op is validated against the *current* state (so later ops in a
  // batch see the effects of earlier ones), WAL-logged, committed, then
  // applied in place (paper §5.3.6: log, flush, fence, then mutate). A
  // validation failure rejects the remainder of the batch; prior ops stand,
  // matching the paper's "individual metadata updates" semantics.
  RedoLog* log = volume_->log();
  {
    std::lock_guard lock(log_mu_);
    applies_in_flight_++;
  }
  Status result = OkStatus();
  for (MetaOp& op : *ops) {
    Status st = Validate(client_id, &op);
    if (!st.ok()) {
      ops_rejected_.Add(1);
      result = st;
      break;
    }
    {
      std::lock_guard lock(log_mu_);
      WireBuffer rec;
      rec.AppendU64(client_id);
      op.Encode(&rec);
      st = log->Append(static_cast<uint32_t>(op.type), rec.data());
      if (st.code() == ErrorCode::kOutOfSpace && applies_in_flight_ == 1) {
        // We are the only batch mid-apply: safe to checkpoint and retry.
        log->Rollback();
        log->Truncate();
        st = log->Append(static_cast<uint32_t>(op.type), rec.data());
      }
      if (st.ok()) {
        st = log->Commit();
      }
      if (!st.ok()) {
        log->Rollback();
        result = st;
      }
    }
    if (!result.ok()) {
      break;
    }
    if (crash_after_log_commit_) {
      // Simulated crash: the commit is durable, the apply never happens.
      std::lock_guard lock(log_mu_);
      applies_in_flight_--;
      return Status(ErrorCode::kUnavailable,
                    "injected crash after WAL commit");
    }
    st = Apply(client_id, op, /*replay=*/false);
    if (!st.ok()) {
      result = st;  // validated ops should not fail; surface and continue
    }
    ops_applied_.Add(1);
    // Crash-sim interest point: the op is applied in place but the log
    // still holds its committed record (replay must be idempotent here).
    ctx_.region->CrashPoint("tfs.apply");
  }

  // Checkpoint: drop the log once no batch is mid-apply.
  {
    std::lock_guard lock(log_mu_);
    applies_in_flight_--;
    if (applies_in_flight_ == 0) {
      log->Truncate();
      ctx_.region->CrashPoint("tfs.checkpoint");
    }
  }
  batches_applied_.Add(1);
  return result;
}

Status TrustedFsService::Recover() {
  AERIE_SCM_LAYER("tfs");
  AERIE_SPAN("tfs", "recover");
  RedoLog* log = volume_->log();
  AERIE_RETURN_IF_ERROR(log->Replay(
      [this](uint32_t type, std::span<const char> payload) -> Status {
        WireReader reader(std::string_view(payload.data(), payload.size()));
        auto client = reader.ReadU64();
        if (!client.ok()) {
          return client.status();
        }
        auto op = MetaOp::Decode(&reader);
        if (!op.ok()) {
          return op.status();
        }
        if (static_cast<uint32_t>(op->type) != type) {
          return Status(ErrorCode::kCorrupted, "op type mismatch in log");
        }
        return Apply(*client, *op, /*replay=*/true);
      }));
  log->Truncate();

  // Reclaim unlinked files with no remaining opener (all openers died with
  // the crash).
  auto orphans = Collection::Open(ctx_, orphans_oid_);
  if (orphans.ok()) {
    std::vector<Oid> dead;
    (void)orphans->Scan([&](std::string_view, uint64_t value) {
      dead.push_back(Oid(value));
      return true;
    });
    for (Oid oid : dead) {
      auto file = MFile::Open(ctx_, oid);
      if (file.ok()) {
        (void)file->Destroy();
      }
      (void)orphans->Erase(OidKey(oid));
    }
  }

  // Reclaim stale client pools: free still-pooled (never linked) objects.
  auto pools = Collection::Open(ctx_, pools_oid_);
  if (pools.ok()) {
    std::vector<std::pair<std::string, Oid>> tables;
    (void)pools->Scan([&](std::string_view key, uint64_t value) {
      tables.emplace_back(std::string(key), Oid(value));
      return true;
    });
    for (const auto& [key, table_oid] : tables) {
      auto table = Collection::Open(ctx_, table_oid);
      if (table.ok()) {
        std::vector<Oid> pooled;
        (void)table->Scan([&](std::string_view, uint64_t value) {
          pooled.push_back(Oid(value));
          return true;
        });
        for (Oid oid : pooled) {
          switch (oid.type()) {
            case ObjType::kMFile: {
              auto f = MFile::Open(ctx_, oid);
              if (f.ok() && f->link_count() == 0) {
                (void)f->Destroy();
              }
              break;
            }
            case ObjType::kCollection: {
              auto c = Collection::Open(ctx_, oid);
              if (c.ok() && c->link_count() == 0) {
                (void)c->Destroy();
              }
              break;
            }
            case ObjType::kExtent:
              (void)ctx_.alloc->Free(oid.offset(), 0);
              break;
            default:
              break;
          }
        }
        (void)table->Destroy();
      }
      (void)pools->Erase(key);
    }
  }
  return OkStatus();
}

// --- Pools ---------------------------------------------------------------

Result<Oid> TrustedFsService::EnsurePoolTable(uint64_t client_id) {
  std::lock_guard lock(alloc_mu_);
  {
    std::lock_guard clock(clients_mu_);
    auto it = clients_.find(client_id);
    if (it != clients_.end() && !it->second.pool_table.IsNull()) {
      return it->second.pool_table;
    }
  }
  AERIE_ASSIGN_OR_RETURN(Collection pools,
                         Collection::Open(ctx_, pools_oid_));
  Oid table_oid;
  auto existing = pools.Lookup(ClientKey(client_id));
  if (existing.ok()) {
    table_oid = Oid(*existing);
  } else {
    AERIE_ASSIGN_OR_RETURN(Collection table, Collection::Create(ctx_, 0));
    AERIE_RETURN_IF_ERROR(
        pools.Insert(ClientKey(client_id), table.oid().raw()));
    table_oid = table.oid();
  }
  std::lock_guard clock(clients_mu_);
  clients_[client_id].pool_table = table_oid;
  return table_oid;
}

Result<std::vector<Oid>> TrustedFsService::PoolFill(uint64_t client_id,
                                                    ObjType type,
                                                    uint32_t count,
                                                    uint64_t capacity) {
  AERIE_SCM_LAYER("tfs");
  AERIE_SPAN("tfs", "pool_fill");
  if (count == 0 || count > 65536) {
    return Status(ErrorCode::kInvalidArgument, "bad pool fill count");
  }
  AERIE_ASSIGN_OR_RETURN(Oid table_oid, EnsurePoolTable(client_id));
  AERIE_ASSIGN_OR_RETURN(Collection table,
                         Collection::Open(ctx_, table_oid));
  std::vector<Oid> out;
  out.reserve(count);
  switch (type) {
    case ObjType::kMFile:
      for (uint32_t i = 0; i < count; ++i) {
        auto f = capacity == 0 ? MFile::Create(ctx_, 0)
                               : MFile::CreateSingleExtent(ctx_, 0, capacity);
        if (!f.ok()) {
          return f.status();
        }
        out.push_back(f->oid());
      }
      break;
    case ObjType::kCollection:
      for (uint32_t i = 0; i < count; ++i) {
        auto c = Collection::Create(ctx_, 0);
        if (!c.ok()) {
          return c.status();
        }
        out.push_back(c->oid());
      }
      break;
    case ObjType::kExtent: {
      // Batched page allocation: one bitmap flush for the whole fill.
      std::vector<uint64_t> offsets;
      AERIE_RETURN_IF_ERROR(ctx_.alloc->AllocMany(0, count, &offsets));
      for (uint64_t offset : offsets) {
        out.push_back(Oid::Make(ObjType::kExtent, offset));
      }
      break;
    }
    default:
      return Status(ErrorCode::kInvalidArgument, "bad pool object type");
  }

  // Bulk-record the fill in the persistent pool table (WAFL-style tracking
  // file) and the volatile mirror.
  std::vector<std::pair<std::string, uint64_t>> entries;
  entries.reserve(out.size());
  for (Oid oid : out) {
    entries.emplace_back(OidKey(oid), oid.raw());
  }
  {
    std::lock_guard lock(alloc_mu_);
    AERIE_RETURN_IF_ERROR(table.InsertManyUnchecked(entries));
  }
  std::lock_guard lock(clients_mu_);
  for (Oid oid : out) {
    clients_[client_id].pool.insert(oid.raw());
  }
  return out;
}

bool TrustedFsService::PoolContains(uint64_t client_id, Oid oid) {
  std::lock_guard lock(clients_mu_);
  auto it = clients_.find(client_id);
  return it != clients_.end() && it->second.pool.count(oid.raw()) != 0;
}

Status TrustedFsService::PoolRemove(uint64_t client_id, Oid oid) {
  Oid table_oid;
  {
    std::lock_guard lock(clients_mu_);
    auto it = clients_.find(client_id);
    if (it != clients_.end()) {
      it->second.pool.erase(oid.raw());
      table_oid = it->second.pool_table;
    }
  }
  if (table_oid.IsNull()) {
    // Replay path: resolve the client's pool table from the persistent
    // master (the in-memory session died with the crash).
    auto pools = Collection::Open(ctx_, pools_oid_);
    if (!pools.ok()) {
      return OkStatus();
    }
    auto existing = pools->Lookup(ClientKey(client_id));
    if (!existing.ok()) {
      return OkStatus();  // pool already reclaimed
    }
    table_oid = Oid(*existing);
  }
  auto table = Collection::Open(ctx_, table_oid);
  if (!table.ok()) {
    return OkStatus();
  }
  std::lock_guard lock(alloc_mu_);
  Status st = table->Erase(OidKey(oid));
  if (st.code() == ErrorCode::kNotFound) {
    return OkStatus();  // already consumed (replayed op)
  }
  return st;
}

// --- Open-file table (§6.1) ---------------------------------------------

uint64_t TrustedFsService::OpenCount(Oid file) const {
  std::lock_guard lock(clients_mu_);
  auto it = open_counts_.find(file.raw());
  return it == open_counts_.end() ? 0 : it->second;
}

Status TrustedFsService::NotifyOpen(uint64_t client_id, Oid file) {
  std::lock_guard lock(clients_mu_);
  clients_[client_id].open_files.insert(file.raw());
  open_counts_[file.raw()]++;
  return OkStatus();
}

Status TrustedFsService::OrphanAdd(Oid file) {
  std::lock_guard lock(alloc_mu_);
  AERIE_ASSIGN_OR_RETURN(Collection orphans,
                         Collection::Open(ctx_, orphans_oid_));
  Status st = orphans.Insert(OidKey(file), file.raw());
  if (st.code() == ErrorCode::kAlreadyExists) {
    return OkStatus();
  }
  return st;
}

Status TrustedFsService::OrphanRemoveAndFree(Oid file) {
  {
    std::lock_guard lock(alloc_mu_);
    AERIE_ASSIGN_OR_RETURN(Collection orphans,
                           Collection::Open(ctx_, orphans_oid_));
    Status st = orphans.Erase(OidKey(file));
    if (st.code() == ErrorCode::kNotFound) {
      return OkStatus();  // was never orphaned
    }
    AERIE_RETURN_IF_ERROR(st);
  }
  auto f = MFile::Open(ctx_, file);
  if (f.ok()) {
    return f->Destroy();
  }
  return OkStatus();
}

Status TrustedFsService::NotifyClosed(uint64_t client_id, Oid file) {
  bool last = false;
  {
    std::lock_guard lock(clients_mu_);
    clients_[client_id].open_files.erase(file.raw());
    auto it = open_counts_.find(file.raw());
    if (it != open_counts_.end() && --it->second == 0) {
      open_counts_.erase(it);
      last = true;
    }
  }
  if (last) {
    auto f = MFile::Open(ctx_, file);
    if (f.ok() && f->link_count() == 0) {
      return OrphanRemoveAndFree(file);
    }
  }
  return OkStatus();
}

Status TrustedFsService::ClientDisconnected(uint64_t client_id) {
  std::vector<uint64_t> open;
  Oid table_oid;
  {
    std::lock_guard lock(clients_mu_);
    auto it = clients_.find(client_id);
    if (it == clients_.end()) {
      return OkStatus();
    }
    open.assign(it->second.open_files.begin(), it->second.open_files.end());
    table_oid = it->second.pool_table;
    clients_.erase(it);
  }
  for (uint64_t raw : open) {
    (void)NotifyClosed(client_id, Oid(raw));
  }
  // Free still-pooled objects and drop the pool table (paper: special files
  // tracking pre-allocated objects prevent leaks).
  if (!table_oid.IsNull()) {
    auto table = Collection::Open(ctx_, table_oid);
    if (table.ok()) {
      std::vector<Oid> pooled;
      (void)table->Scan([&](std::string_view, uint64_t value) {
        pooled.push_back(Oid(value));
        return true;
      });
      for (Oid oid : pooled) {
        switch (oid.type()) {
          case ObjType::kMFile: {
            auto f = MFile::Open(ctx_, oid);
            if (f.ok()) {
              (void)f->Destroy();
            }
            break;
          }
          case ObjType::kCollection: {
            auto c = Collection::Open(ctx_, oid);
            if (c.ok()) {
              (void)c->Destroy();
            }
            break;
          }
          case ObjType::kExtent:
            (void)ctx_.alloc->Free(oid.offset(), 0);
            break;
          default:
            break;
        }
      }
      (void)table->Destroy();
    }
    std::lock_guard lock(alloc_mu_);
    auto pools = Collection::Open(ctx_, pools_oid_);
    if (pools.ok()) {
      (void)pools->Erase(ClientKey(client_id));
    }
  }
  return OkStatus();
}

// --- Service-mediated data path (§5.3.3) ----------------------------------

Result<uint64_t> TrustedFsService::ServiceRead(uint64_t client_id, Oid file,
                                               uint64_t offset,
                                               std::span<char> out) {
  AERIE_SPAN("tfs", "service_read");
  (void)client_id;  // permission checks live at the interface layer
  AERIE_ASSIGN_OR_RETURN(MFile f, MFile::Open(ctx_, file));
  return f.Read(offset, out);
}

Status TrustedFsService::ServiceWrite(uint64_t client_id, Oid file,
                                      uint64_t offset,
                                      std::span<const char> data) {
  AERIE_SCM_LAYER("tfs");
  AERIE_SPAN("tfs", "service_write");
  (void)client_id;
  AERIE_ASSIGN_OR_RETURN(MFile f, MFile::Open(ctx_, file));
  if (!f.single_extent()) {
    // Allocate backing extents for any holes the write touches.
    const uint64_t first_page = offset / kScmPageSize;
    const uint64_t last_page = (offset + data.size() - 1) / kScmPageSize;
    for (uint64_t p = first_page; p <= last_page; ++p) {
      if (!f.ExtentForPage(p).ok()) {
        AERIE_ASSIGN_OR_RETURN(uint64_t extent, ctx_.alloc->Alloc(0));
        std::memset(ctx_.region->PtrAt(extent), 0, kScmPageSize);
        AERIE_RETURN_IF_ERROR(f.AttachExtent(p, extent));
      }
    }
  }
  AERIE_RETURN_IF_ERROR(f.WriteInPlace(offset, data));
  ctx_.region->BFlush();
  if (offset + data.size() > f.size()) {
    AERIE_RETURN_IF_ERROR(f.SetSize(offset + data.size()));
  }
  return OkStatus();
}

// --- RPC wiring ------------------------------------------------------------

void TrustedFsService::RegisterRpc(RpcDispatcher* dispatcher) {
  obs::SetRpcMethodName(kTfsRpcApplyBatch, "tfs.apply_batch");
  obs::SetRpcMethodName(kTfsRpcPoolFill, "tfs.pool_fill");
  obs::SetRpcMethodName(kTfsRpcNotifyOpen, "tfs.notify_open");
  obs::SetRpcMethodName(kTfsRpcNotifyClosed, "tfs.notify_closed");
  obs::SetRpcMethodName(kTfsRpcGetRoots, "tfs.get_roots");
  obs::SetRpcMethodName(kTfsRpcServiceRead, "tfs.service_read");
  obs::SetRpcMethodName(kTfsRpcServiceWrite, "tfs.service_write");
  dispatcher->Register(
      kTfsRpcApplyBatch,
      [this](uint64_t client, std::string_view req) -> Result<std::string> {
        AERIE_RETURN_IF_ERROR(ApplyBatch(client, req));
        return std::string();
      });
  dispatcher->Register(
      kTfsRpcPoolFill,
      [this](uint64_t client, std::string_view req) -> Result<std::string> {
        WireReader r(req);
        auto type = r.ReadU8();
        auto count = r.ReadU32();
        auto capacity = r.ReadU64();
        if (!type.ok() || !count.ok() || !capacity.ok()) {
          return Status(ErrorCode::kInvalidArgument, "bad pool-fill request");
        }
        auto oids = PoolFill(client, static_cast<ObjType>(*type), *count,
                             *capacity);
        if (!oids.ok()) {
          return oids.status();
        }
        WireBuffer out;
        out.AppendU32(static_cast<uint32_t>(oids->size()));
        for (Oid oid : *oids) {
          out.AppendU64(oid.raw());
        }
        return out.Release();
      });
  dispatcher->Register(
      kTfsRpcNotifyOpen,
      [this](uint64_t client, std::string_view req) -> Result<std::string> {
        WireReader r(req);
        auto oid = r.ReadU64();
        if (!oid.ok()) {
          return Status(ErrorCode::kInvalidArgument, "bad notify request");
        }
        AERIE_RETURN_IF_ERROR(NotifyOpen(client, Oid(*oid)));
        return std::string();
      });
  dispatcher->Register(
      kTfsRpcNotifyClosed,
      [this](uint64_t client, std::string_view req) -> Result<std::string> {
        WireReader r(req);
        auto oid = r.ReadU64();
        if (!oid.ok()) {
          return Status(ErrorCode::kInvalidArgument, "bad notify request");
        }
        AERIE_RETURN_IF_ERROR(NotifyClosed(client, Oid(*oid)));
        return std::string();
      });
  dispatcher->Register(
      kTfsRpcGetRoots,
      [this](uint64_t, std::string_view) -> Result<std::string> {
        WireBuffer out;
        out.AppendU64(roots_.pxfs_root.raw());
        out.AppendU64(roots_.flat_root.raw());
        return out.Release();
      });
  dispatcher->Register(
      kTfsRpcServiceRead,
      [this](uint64_t client, std::string_view req) -> Result<std::string> {
        WireReader r(req);
        auto oid = r.ReadU64();
        auto offset = r.ReadU64();
        auto len = r.ReadU32();
        if (!oid.ok() || !offset.ok() || !len.ok() || *len > (16u << 20)) {
          return Status(ErrorCode::kInvalidArgument, "bad read request");
        }
        std::string buf(*len, '\0');
        auto n = ServiceRead(client, Oid(*oid), *offset,
                             std::span<char>(buf.data(), buf.size()));
        if (!n.ok()) {
          return n.status();
        }
        buf.resize(*n);
        return buf;
      });
  dispatcher->Register(
      kTfsRpcServiceWrite,
      [this](uint64_t client, std::string_view req) -> Result<std::string> {
        WireReader r(req);
        auto oid = r.ReadU64();
        auto offset = r.ReadU64();
        auto data = r.ReadString();
        if (!oid.ok() || !offset.ok() || !data.ok()) {
          return Status(ErrorCode::kInvalidArgument, "bad write request");
        }
        AERIE_RETURN_IF_ERROR(ServiceWrite(
            client, Oid(*oid), *offset,
            std::span<const char>(data->data(), data->size())));
        return std::string();
      });
}

}  // namespace aerie
