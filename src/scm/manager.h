// The SCM manager (paper §5.2): the kernel's only role in Aerie.
//
// Responsibilities, mirrored here in user space:
//   * Allocation  — first-fit allocation of large static partitions, with a
//     persistent partition table stored in SCM.
//   * Mapping     — a linear mapping of the whole region at one base address;
//     "mounting" a partition is O(1) and page tables are faulted lazily. We
//     emulate the per-process page table as a soft structure so protection
//     changes can invalidate mappings and we can count faults.
//   * Protection  — extents (page-aligned ranges) carry a 32-bit ACL: a
//     30-bit group id in the high bits and 2 rights bits (read=1, write=2).
//     A process context holds the user's group memberships; on a soft fault
//     the manager checks the extent's GID against that set, exactly like the
//     paper's hash-table lookup on a hardware fault.
//
// Extent records are persistent (stored in a table in SCM with 64-bit-atomic
// commit words); the lookup index is volatile and rebuilt on mount.
#ifndef AERIE_SRC_SCM_MANAGER_H_
#define AERIE_SRC_SCM_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/scm/pmem.h"

namespace aerie {

// ACL encoding (paper §5.2): 30-bit group id + 2 rights bits.
inline constexpr uint32_t kAclRightRead = 0x1;
inline constexpr uint32_t kAclRightWrite = 0x2;

constexpr uint32_t MakeAcl(uint32_t gid, uint32_t rights) {
  return (gid << 2) | (rights & 0x3);
}
constexpr uint32_t AclGid(uint32_t acl) { return acl >> 2; }
constexpr uint32_t AclRights(uint32_t acl) { return acl & 0x3; }

// A user's credentials as seen by the SCM manager: the set of group ids the
// process belongs to (paper: "each process inherits and maintains the user's
// group memberships in a hash table").
class ProcessContext {
 public:
  explicit ProcessContext(std::vector<uint32_t> gids = {0});

  bool HasGid(uint32_t gid) const { return gids_.count(gid) != 0; }

  uint64_t soft_faults() const { return soft_faults_; }

  // Test/bench hook: pages currently mapped into this context's soft page
  // table (populated by ScmManager::TouchRange).
  bool IsMapped(uint64_t page) const { return mapped_pages_.count(page) != 0; }

 private:
  friend class ScmManager;
  std::unordered_set<uint32_t> gids_;
  std::unordered_set<uint64_t> mapped_pages_;
  uint64_t soft_faults_ = 0;
  mutable std::mutex mu_;
};

struct PartitionInfo {
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t acl = 0;
};

struct ExtentInfo {
  uint64_t start = 0;   // byte offset in region, page aligned
  uint64_t length = 0;  // bytes, page multiple
  uint32_t acl = 0;
};

class ScmManager {
 public:
  struct Options {
    uint32_t max_partitions = 16;
    uint32_t max_extents = 1 << 16;
    // When true, protection changes also issue a real mprotect() so the
    // permission-change microbenchmark measures genuine page-table cost.
    bool hard_protect = false;
  };

  // Initializes a fresh region (destroys existing contents).
  static Result<std::unique_ptr<ScmManager>> Format(ScmRegion* region,
                                                    const Options& options);
  // Mounts a previously formatted region, rebuilding volatile indexes.
  static Result<std::unique_ptr<ScmManager>> Mount(ScmRegion* region);

  ScmRegion* region() const { return region_; }

  // First byte usable by partitions (after the manager's own tables).
  uint64_t data_start() const { return data_start_; }

  // --- Allocation (scm_create_partition) ---
  Result<PartitionInfo> AllocatePartition(uint64_t size, uint32_t acl);
  std::vector<PartitionInfo> ListPartitions() const;

  // --- Mapping (scm_mount_partition) ---
  // Linear mapping: returns the base pointer for the partition. Page tables
  // are populated lazily via TouchRange.
  Result<char*> MountPartition(ProcessContext* ctx, uint64_t partition_offset);

  // Simulates the page faults incurred by touching [offset, offset+len):
  // each unmapped page triggers an access check against the covering extent.
  Status TouchRange(ProcessContext* ctx, uint64_t offset, uint64_t len,
                    uint32_t rights);

  // --- Protection ---
  // scm_create_extent: registers a protection extent. Fails if it overlaps
  // an existing extent.
  Status CreateExtent(uint64_t start, uint64_t length, uint32_t acl);
  // scm_mprotect_extent: changes the ACL and invalidates affected soft
  // page-table entries in every registered context (lazy refault).
  Status MprotectExtent(uint64_t start, uint32_t new_acl);
  // Removes an extent record (storage freed by the TFS allocator).
  Status DestroyExtent(uint64_t start);

  // Pure software access check against the extent table (no fault recorded).
  Status CheckAccess(const ProcessContext& ctx, uint64_t offset, uint64_t len,
                     uint32_t rights) const;

  Result<ExtentInfo> FindExtent(uint64_t offset) const;
  size_t extent_count() const;

  // Contexts register so protection changes can shoot down their mappings
  // (the analogue of a TLB shootdown + page-table invalidation).
  void RegisterContext(ProcessContext* ctx);
  void UnregisterContext(ProcessContext* ctx);

  uint64_t pages_invalidated() const { return pages_invalidated_; }

 private:
  ScmManager(ScmRegion* region, const Options& options)
      : region_(region), options_(options) {}

  Status LoadFromRegion();
  void PersistPartitionEntry(uint32_t index);

  struct ExtentSlotRef {
    uint32_t slot;
    ExtentInfo info;
  };

  ScmRegion* region_;
  Options options_;
  uint64_t data_start_ = 0;

  mutable std::shared_mutex mu_;
  std::vector<PartitionInfo> partitions_;
  // start offset -> (slot in persistent table, info)
  std::map<uint64_t, ExtentSlotRef> extents_;
  std::vector<uint32_t> free_slots_;
  std::vector<ProcessContext*> contexts_;
  uint64_t pages_invalidated_ = 0;
};

}  // namespace aerie

#endif  // AERIE_SRC_SCM_MANAGER_H_
