#include "src/scm/manager.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"

namespace aerie {

namespace {

constexpr uint64_t kScmMagic = 0x4145524945534d31ULL;  // "AERIESM1"
constexpr uint64_t kVersion = 1;

// On-SCM layout: superblock, partition table, extent table, then data.
struct SuperblockRep {
  uint64_t magic;
  uint64_t version;
  uint64_t region_size;
  uint64_t max_partitions;
  uint64_t max_extents;
  uint64_t data_start;
};

struct PartitionRep {
  uint64_t offset;
  uint64_t size;
  // Low 32 bits: ACL. Bit 63: valid. Committed with a single atomic store.
  uint64_t acl_state;
};

struct ExtentRep {
  uint64_t start;
  uint64_t length;
  // Low 32 bits: ACL. Bit 63: valid. Committed with a single atomic store.
  uint64_t acl_state;
};

constexpr uint64_t kValidBit = 1ULL << 63;

uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) & ~(a - 1); }

SuperblockRep* Super(ScmRegion* region) {
  return reinterpret_cast<SuperblockRep*>(region->base());
}

PartitionRep* PartitionTable(ScmRegion* region) {
  return reinterpret_cast<PartitionRep*>(region->base() +
                                         sizeof(SuperblockRep));
}

ExtentRep* ExtentTable(ScmRegion* region, uint64_t max_partitions) {
  return reinterpret_cast<ExtentRep*>(
      region->base() + sizeof(SuperblockRep) +
      max_partitions * sizeof(PartitionRep));
}

}  // namespace

ProcessContext::ProcessContext(std::vector<uint32_t> gids) {
  for (uint32_t g : gids) {
    gids_.insert(g);
  }
}

Result<std::unique_ptr<ScmManager>> ScmManager::Format(
    ScmRegion* region, const Options& options) {
  AERIE_SCM_LAYER("scm_mgr");
  const uint64_t tables_end = sizeof(SuperblockRep) +
                              options.max_partitions * sizeof(PartitionRep) +
                              options.max_extents * sizeof(ExtentRep);
  const uint64_t data_start = AlignUp(tables_end, kScmPageSize);
  if (data_start >= region->size()) {
    return Status(ErrorCode::kOutOfSpace, "region too small for SCM tables");
  }

  // Zero the tables, then publish the superblock with a flushed magic.
  std::memset(region->base(), 0, data_start);
  region->WlFlush(region->base(), data_start);

  SuperblockRep* sb = Super(region);
  sb->version = kVersion;
  sb->region_size = region->size();
  sb->max_partitions = options.max_partitions;
  sb->max_extents = options.max_extents;
  sb->data_start = data_start;
  region->WlFlush(sb, sizeof(*sb));
  region->Fence();
  region->PersistU64(&sb->magic, kScmMagic);

  auto mgr = std::unique_ptr<ScmManager>(new ScmManager(region, options));
  AERIE_RETURN_IF_ERROR(mgr->LoadFromRegion());
  return mgr;
}

Result<std::unique_ptr<ScmManager>> ScmManager::Mount(ScmRegion* region) {
  SuperblockRep* sb = Super(region);
  if (sb->magic != kScmMagic || sb->version != kVersion) {
    return Status(ErrorCode::kCorrupted, "bad SCM superblock");
  }
  Options options;
  options.max_partitions = static_cast<uint32_t>(sb->max_partitions);
  options.max_extents = static_cast<uint32_t>(sb->max_extents);
  auto mgr = std::unique_ptr<ScmManager>(new ScmManager(region, options));
  AERIE_RETURN_IF_ERROR(mgr->LoadFromRegion());
  return mgr;
}

Status ScmManager::LoadFromRegion() {
  SuperblockRep* sb = Super(region_);
  data_start_ = sb->data_start;

  partitions_.clear();
  PartitionRep* ptab = PartitionTable(region_);
  for (uint32_t i = 0; i < options_.max_partitions; ++i) {
    if (ptab[i].acl_state & kValidBit) {
      partitions_.push_back(
          {ptab[i].offset, ptab[i].size,
           static_cast<uint32_t>(ptab[i].acl_state & 0xffffffffULL)});
    }
  }

  extents_.clear();
  free_slots_.clear();
  ExtentRep* etab = ExtentTable(region_, options_.max_partitions);
  for (uint32_t i = 0; i < options_.max_extents; ++i) {
    if (etab[i].acl_state & kValidBit) {
      ExtentInfo info{etab[i].start, etab[i].length,
                      static_cast<uint32_t>(etab[i].acl_state & 0xffffffffULL)};
      extents_[info.start] = ExtentSlotRef{i, info};
    } else {
      free_slots_.push_back(i);
    }
  }
  // Allocate low slots first for compact tables.
  std::reverse(free_slots_.begin(), free_slots_.end());
  return OkStatus();
}

Result<PartitionInfo> ScmManager::AllocatePartition(uint64_t size,
                                                    uint32_t acl) {
  AERIE_SCM_LAYER("scm_mgr");
  std::unique_lock lock(mu_);
  size = AlignUp(size, kScmPageSize);

  // First-fit over the gaps between existing partitions (paper §5.2).
  std::vector<PartitionInfo> sorted = partitions_;
  std::sort(sorted.begin(), sorted.end(),
            [](const PartitionInfo& a, const PartitionInfo& b) {
              return a.offset < b.offset;
            });
  uint64_t cursor = data_start_;
  uint64_t found = 0;
  bool ok = false;
  for (const PartitionInfo& p : sorted) {
    if (p.offset - cursor >= size) {
      found = cursor;
      ok = true;
      break;
    }
    cursor = p.offset + p.size;
  }
  if (!ok && region_->size() - cursor >= size) {
    found = cursor;
    ok = true;
  }
  if (!ok) {
    return Status(ErrorCode::kOutOfSpace, "no partition space");
  }
  if (partitions_.size() >= options_.max_partitions) {
    return Status(ErrorCode::kOutOfSpace, "partition table full");
  }

  // Find a free persistent slot (slot i is free iff not valid).
  PartitionRep* ptab = PartitionTable(region_);
  uint32_t slot = options_.max_partitions;
  for (uint32_t i = 0; i < options_.max_partitions; ++i) {
    if (!(ptab[i].acl_state & kValidBit)) {
      slot = i;
      break;
    }
  }
  AERIE_CHECK(slot < options_.max_partitions);

  ptab[slot].offset = found;
  ptab[slot].size = size;
  region_->WlFlush(&ptab[slot], sizeof(PartitionRep));
  region_->Fence();
  region_->PersistU64(&ptab[slot].acl_state, kValidBit | acl);

  PartitionInfo info{found, size, acl};
  partitions_.push_back(info);
  return info;
}

std::vector<PartitionInfo> ScmManager::ListPartitions() const {
  std::shared_lock lock(mu_);
  return partitions_;
}

Result<char*> ScmManager::MountPartition(ProcessContext* ctx,
                                         uint64_t partition_offset) {
  std::shared_lock lock(mu_);
  for (const PartitionInfo& p : partitions_) {
    if (p.offset == partition_offset) {
      // Linear mapping: no page-table population; faults come later.
      (void)ctx;
      return region_->base() + p.offset;
    }
  }
  return Status(ErrorCode::kNotFound, "no such partition");
}

Status ScmManager::CreateExtent(uint64_t start, uint64_t length,
                                uint32_t acl) {
  AERIE_SCM_LAYER("scm_mgr");
  if (start % kScmPageSize != 0 || length == 0 ||
      length % kScmPageSize != 0 || start + length > region_->size()) {
    return Status(ErrorCode::kInvalidArgument, "bad extent range");
  }
  std::unique_lock lock(mu_);
  // Overlap check against neighbours in the ordered map.
  auto next = extents_.lower_bound(start);
  if (next != extents_.end() && next->first < start + length) {
    return Status(ErrorCode::kAlreadyExists, "extent overlaps successor");
  }
  if (next != extents_.begin()) {
    auto prev = std::prev(next);
    if (prev->second.info.start + prev->second.info.length > start) {
      return Status(ErrorCode::kAlreadyExists, "extent overlaps predecessor");
    }
  }
  if (free_slots_.empty()) {
    return Status(ErrorCode::kOutOfSpace, "extent table full");
  }
  const uint32_t slot = free_slots_.back();
  free_slots_.pop_back();

  ExtentRep* etab = ExtentTable(region_, options_.max_partitions);
  etab[slot].start = start;
  etab[slot].length = length;
  region_->WlFlush(&etab[slot], sizeof(ExtentRep));
  region_->Fence();
  region_->PersistU64(&etab[slot].acl_state, kValidBit | acl);

  extents_[start] = ExtentSlotRef{slot, ExtentInfo{start, length, acl}};
  return OkStatus();
}

Status ScmManager::MprotectExtent(uint64_t start, uint32_t new_acl) {
  AERIE_SCM_LAYER("scm_mgr");
  std::unique_lock lock(mu_);
  auto it = extents_.find(start);
  if (it == extents_.end()) {
    return Status(ErrorCode::kNotFound, "no such extent");
  }
  ExtentRep* etab = ExtentTable(region_, options_.max_partitions);
  region_->PersistU64(&etab[it->second.slot].acl_state, kValidBit | new_acl);
  it->second.info.acl = new_acl;

  // Invalidate the affected pages in every context's soft page table; they
  // will be refaulted with the new rights (paper: page-table invalidation
  // instead of synchronous modification).
  const uint64_t first_page = start / kScmPageSize;
  const uint64_t page_count = it->second.info.length / kScmPageSize;
  for (ProcessContext* ctx : contexts_) {
    std::lock_guard ctx_lock(ctx->mu_);
    for (uint64_t p = first_page; p < first_page + page_count; ++p) {
      if (ctx->mapped_pages_.erase(p) != 0) {
        pages_invalidated_++;
        if (options_.hard_protect) {
          // Real page-table + TLB work, charged per referenced page.
          (void)region_->HardProtect(p * kScmPageSize, kScmPageSize,
                                     static_cast<int>(AclRights(new_acl)));
        }
      }
    }
  }
  return OkStatus();
}

Status ScmManager::DestroyExtent(uint64_t start) {
  AERIE_SCM_LAYER("scm_mgr");
  std::unique_lock lock(mu_);
  auto it = extents_.find(start);
  if (it == extents_.end()) {
    return Status(ErrorCode::kNotFound, "no such extent");
  }
  ExtentRep* etab = ExtentTable(region_, options_.max_partitions);
  region_->PersistU64(&etab[it->second.slot].acl_state, 0);
  free_slots_.push_back(it->second.slot);
  extents_.erase(it);
  return OkStatus();
}

Status ScmManager::CheckAccess(const ProcessContext& ctx, uint64_t offset,
                               uint64_t len, uint32_t rights) const {
  std::shared_lock lock(mu_);
  uint64_t pos = offset;
  const uint64_t end = offset + len;
  while (pos < end) {
    auto it = extents_.upper_bound(pos);
    if (it == extents_.begin()) {
      return Status(ErrorCode::kPermissionDenied, "no covering extent");
    }
    --it;
    const ExtentInfo& e = it->second.info;
    if (pos >= e.start + e.length) {
      return Status(ErrorCode::kPermissionDenied, "no covering extent");
    }
    if ((AclRights(e.acl) & rights) != rights) {
      return Status(ErrorCode::kPermissionDenied, "insufficient rights");
    }
    if (!ctx.HasGid(AclGid(e.acl))) {
      return Status(ErrorCode::kPermissionDenied, "gid not in context");
    }
    pos = e.start + e.length;
  }
  return OkStatus();
}

Status ScmManager::TouchRange(ProcessContext* ctx, uint64_t offset,
                              uint64_t len, uint32_t rights) {
  const uint64_t first_page = offset / kScmPageSize;
  const uint64_t last_page = (offset + len - 1) / kScmPageSize;
  std::lock_guard ctx_lock(ctx->mu_);
  for (uint64_t p = first_page; p <= last_page; ++p) {
    if (ctx->mapped_pages_.count(p) != 0) {
      continue;
    }
    // Soft fault: compute the PTE from the linear map + extent rights.
    ctx->soft_faults_++;
    AERIE_RETURN_IF_ERROR(
        CheckAccess(*ctx, p * kScmPageSize, kScmPageSize, rights));
    ctx->mapped_pages_.insert(p);
  }
  return OkStatus();
}

Result<ExtentInfo> ScmManager::FindExtent(uint64_t offset) const {
  std::shared_lock lock(mu_);
  auto it = extents_.upper_bound(offset);
  if (it == extents_.begin()) {
    return Status(ErrorCode::kNotFound, "no covering extent");
  }
  --it;
  const ExtentInfo& e = it->second.info;
  if (offset >= e.start + e.length) {
    return Status(ErrorCode::kNotFound, "no covering extent");
  }
  return e;
}

size_t ScmManager::extent_count() const {
  std::shared_lock lock(mu_);
  return extents_.size();
}

void ScmManager::RegisterContext(ProcessContext* ctx) {
  std::unique_lock lock(mu_);
  contexts_.push_back(ctx);
}

void ScmManager::UnregisterContext(ProcessContext* ctx) {
  std::unique_lock lock(mu_);
  std::erase(contexts_, ctx);
}

}  // namespace aerie
