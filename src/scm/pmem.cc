#include "src/scm/pmem.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>

#include "src/common/clock.h"
#include "src/obs/trace.h"
#include "src/scm/crash_sim.h"

namespace aerie {

namespace {

uint64_t LinesCovering(const void* addr, size_t len) {
  const auto start = reinterpret_cast<uintptr_t>(addr) & ~(kCacheLineSize - 1);
  const auto end = reinterpret_cast<uintptr_t>(addr) + len;
  return (end - start + kCacheLineSize - 1) / kCacheLineSize;
}

// Attribution target for primitives running outside any AERIE_SCM_LAYER
// scope (recovery paths, tests driving ScmRegion directly).
ScmLayerStats& UnattributedLayer() {
  static ScmLayerStats& stats = ScmLayerStats::For("unattributed");
  return stats;
}

ScmLayerStats& CurrentLayerStats() {
  ScmLayerStats* cur = TlsScmLayer();
  return cur != nullptr ? *cur : UnattributedLayer();
}

}  // namespace

ScmLayerStats& ScmLayerStats::For(std::string_view layer) {
  // Interned forever, like the registry counters they wrap; the map makes
  // For() idempotent so macro call sites in different TUs share one row.
  static std::mutex mu;
  static auto* layers = new std::map<std::string, ScmLayerStats*>();
  const std::string key(layer);
  std::lock_guard<std::mutex> lock(mu);
  auto it = layers->find(key);
  if (it == layers->end()) {
    auto& reg = obs::Registry::Instance();
    const std::string prefix = "scm.layer." + key + ".";
    auto* stats = new ScmLayerStats{
        reg.GetCounter(prefix + "lines_flushed"),
        reg.GetCounter(prefix + "bytes_streamed"),
        reg.GetCounter(prefix + "fences"),
    };
    it = layers->emplace(key, stats).first;
  }
  return *it->second;
}

ScmLayerStats*& TlsScmLayer() {
  thread_local ScmLayerStats* current = nullptr;
  return current;
}

Result<std::unique_ptr<ScmRegion>> ScmRegion::CreateAnonymous(size_t size) {
  void* mem = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    return Status(ErrorCode::kOutOfSpace,
                  std::string("mmap failed: ") + std::strerror(errno));
  }
  // Pre-fault the whole mapping: real SCM is present memory, so benchmarks
  // must not observe first-touch page-fault costs on the data path.
  std::memset(mem, 0, size);
  return std::unique_ptr<ScmRegion>(
      new ScmRegion(static_cast<char*>(mem), size, -1, ""));
}

Result<std::unique_ptr<ScmRegion>> ScmRegion::OpenFileBacked(
    const std::string& path, size_t size) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status(ErrorCode::kIoError,
                  std::string("open failed: ") + std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    ::close(fd);
    return Status(ErrorCode::kIoError,
                  std::string("ftruncate failed: ") + std::strerror(errno));
  }
  void* mem =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (mem == MAP_FAILED) {
    ::close(fd);
    return Status(ErrorCode::kOutOfSpace,
                  std::string("mmap failed: ") + std::strerror(errno));
  }
  return std::unique_ptr<ScmRegion>(
      new ScmRegion(static_cast<char*>(mem), size, fd, path));
}

ScmRegion::~ScmRegion() {
  if (crash_sim_ != nullptr) {
    crash_sim_->OnRegionDestroyed();
    crash_sim_ = nullptr;
  }
  ::munmap(base_, size_);
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void ScmRegion::ChargeLines(uint64_t lines) {
  stats_.lines_flushed.Add(lines);
  if (obs::CountersOn() && lines != 0) {
    CurrentLayerStats().lines_flushed.Add(lines);
  }
  const uint64_t ns = latency_.write_ns();
  if (ns != 0) {
    SpinDelayNanos(ns * lines);
  }
}

void ScmRegion::WlFlush(const void* addr, size_t len, int site) {
  AERIE_SPAN("scm", "wl_flush");
  const uint64_t lines = LinesCovering(addr, len);
#if defined(__x86_64__)
  auto p = reinterpret_cast<uintptr_t>(addr) & ~(kCacheLineSize - 1);
  const auto end = reinterpret_cast<uintptr_t>(addr) + len;
  for (; p < end; p += kCacheLineSize) {
    __builtin_ia32_clflush(reinterpret_cast<const void*>(p));
  }
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  ChargeLines(lines);
  if (crash_sim_ != nullptr) {
    crash_sim_->OnWlFlush(addr, len, site);
  }
}

void ScmRegion::Fence(int site) {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  stats_.fences.Add(1);
  if (obs::CountersOn()) {
    CurrentLayerStats().fences.Add(1);
  }
  if (crash_sim_ != nullptr) {
    crash_sim_->OnFence(site);
  }
}

void ScmRegion::StreamWrite(void* dst, const void* src, size_t len) {
  // A portable stand-in for MOVNT streaming stores: a plain copy, with the
  // persistence cost deferred to BFlush() exactly as WC buffering defers it.
  std::memcpy(dst, src, len);
  stats_.bytes_streamed.Add(len);
  if (obs::CountersOn() && len != 0) {
    CurrentLayerStats().bytes_streamed.Add(len);
  }
  pending_wc_lines_.fetch_add(LinesCovering(dst, len),
                              std::memory_order_relaxed);
  if (crash_sim_ != nullptr) {
    crash_sim_->OnStreamWrite(dst, len);
  }
}

void ScmRegion::BFlush(int site) {
  AERIE_SPAN("scm", "bflush");
  std::atomic_thread_fence(std::memory_order_seq_cst);
  stats_.wc_drains.Add(1);
  const uint64_t lines = pending_wc_lines_.exchange(0);
  obs::TraceInstant("scm.bflush.lines", lines);
  ChargeLines(lines);
  if (crash_sim_ != nullptr) {
    crash_sim_->OnBFlush(site);
  }
}

void ScmRegion::CrashPoint(const char* name) {
  if (crash_sim_ != nullptr) {
    crash_sim_->OnInterestPoint(name);
  }
}

Status ScmRegion::HardProtect(uint64_t offset, size_t len, int rights) {
  if (offset % kScmPageSize != 0 || len % kScmPageSize != 0 ||
      offset + len > size_) {
    return Status(ErrorCode::kInvalidArgument,
                  "HardProtect requires page-aligned range inside region");
  }
  int prot = PROT_NONE;
  if (rights & 1) {
    prot |= PROT_READ;
  }
  if (rights & 2) {
    prot |= PROT_READ | PROT_WRITE;
  }
  if (::mprotect(base_ + offset, len, prot) != 0) {
    return Status(ErrorCode::kIoError,
                  std::string("mprotect failed: ") + std::strerror(errno));
  }
  return OkStatus();
}

}  // namespace aerie
