#include "src/scm/crash_sim.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "src/common/rand.h"

namespace aerie {

// --- PersistSiteRegistry -------------------------------------------------

PersistSiteRegistry& PersistSiteRegistry::Instance() {
  static PersistSiteRegistry* registry = new PersistSiteRegistry();
  return *registry;
}

int PersistSiteRegistry::Register(const std::string& name) {
  std::lock_guard lock(mu_);
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<int>(i);
    }
  }
  names_.push_back(name);
  return static_cast<int>(names_.size() - 1);
}

int PersistSiteRegistry::Find(const std::string& name) const {
  std::lock_guard lock(mu_);
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string PersistSiteRegistry::Name(int site) const {
  std::lock_guard lock(mu_);
  if (site < 0 || static_cast<size_t>(site) >= names_.size()) {
    return "";
  }
  return names_[static_cast<size_t>(site)];
}

std::vector<std::string> PersistSiteRegistry::Names() const {
  std::lock_guard lock(mu_);
  return names_;
}

int RegisterPersistSite(const char* name) {
  return PersistSiteRegistry::Instance().Register(name);
}

// --- CrashSimOptions / CrashSimFailure -----------------------------------

CrashSimOptions CrashSimOptions::FromEnv(CrashSimOptions base) {
  if (const char* samples = std::getenv("AERIE_CRASH_SAMPLES")) {
    const long v = std::strtol(samples, nullptr, 10);
    if (v > 0) {
      base.max_images = static_cast<int>(v);
    }
  }
  if (const char* seed = std::getenv("AERIE_CRASH_SEED")) {
    const unsigned long long v = std::strtoull(seed, nullptr, 10);
    if (v != 0) {
      base.seed = v;
    }
  }
  return base;
}

std::string CrashSimFailure::ToString() const {
  return "point=" + std::to_string(point_index) + " (" + point_name +
         ") draw=" + std::to_string(draw) + " seed=" + std::to_string(seed) +
         ": " + status.ToString();
}

// --- CrashSimulator ------------------------------------------------------

CrashSimulator::CrashSimulator(ScmRegion* region, CrashSimOptions options,
                               Checker checker)
    : region_(region), options_(std::move(options)),
      checker_(std::move(checker)) {
  shadow_.assign(region_->base(), region_->base() + region_->size());
  region_->AttachCrashSim(this);
}

CrashSimulator::~CrashSimulator() {
  std::lock_guard lock(mu_);
  if (region_ != nullptr) {
    region_->DetachCrashSim();
    region_ = nullptr;
  }
}

void CrashSimulator::SuppressSite(int site) {
  std::lock_guard lock(mu_);
  suppressed_.insert(site);
}

void CrashSimulator::ClearSuppressedSites() {
  std::lock_guard lock(mu_);
  suppressed_.clear();
}

void CrashSimulator::SnapshotLines(const void* addr, size_t len,
                                   LineMap* into) {
  const char* base = region_->base();
  const uint64_t region_size = region_->size();
  uint64_t off = static_cast<uint64_t>(static_cast<const char*>(addr) - base);
  if (off >= region_size) {
    return;  // not a region address (e.g. a stack temporary); ignore
  }
  const uint64_t end = std::min<uint64_t>(off + len, region_size);
  uint64_t line = off / kCacheLineSize;
  const uint64_t last = (end - 1) / kCacheLineSize;
  for (; line <= last; ++line) {
    auto& snap = (*into)[line];
    std::memcpy(snap.data(), base + line * kCacheLineSize, kCacheLineSize);
  }
}

void CrashSimulator::SealLocked(LineMap* from) {
  for (const auto& [line, snap] : *from) {
    std::memcpy(shadow_.data() + line * kCacheLineSize, snap.data(),
                kCacheLineSize);
  }
  from->clear();
}

void CrashSimulator::OnWlFlush(const void* addr, size_t len, int site) {
  std::lock_guard lock(mu_);
  if (in_check_ || region_ == nullptr || suppressed_.count(site) != 0) {
    return;
  }
  SnapshotLines(addr, len, &pending_);
}

void CrashSimulator::OnStreamWrite(const void* dst, size_t len) {
  std::lock_guard lock(mu_);
  if (in_check_ || region_ == nullptr) {
    return;
  }
  SnapshotLines(dst, len, &wc_);
}

void CrashSimulator::OnBFlush(int site) {
  std::lock_guard lock(mu_);
  if (in_check_ || region_ == nullptr) {
    return;
  }
  if (suppressed_.count(site) != 0) {
    return;  // mutation: the WC drain never happened
  }
  SealLocked(&wc_);
}

void CrashSimulator::OnFence(int site) {
  std::lock_guard lock(mu_);
  if (in_check_ || region_ == nullptr) {
    return;
  }
  if (suppressed_.count(site) != 0) {
    return;  // mutation: no ordering point, no epoch seal
  }
  // Enumerate the *pre-seal* state: sealed prefix plus whatever subset of
  // the flushed-pending / WC / dirty lines the crash happens to persist.
  // This is the richest reachable state at an epoch boundary.
  EnumerateLocked("fence");
  SealLocked(&pending_);
}

void CrashSimulator::OnInterestPoint(const char* name) {
  std::lock_guard lock(mu_);
  if (in_check_ || region_ == nullptr) {
    return;
  }
  EnumerateLocked(name);
}

void CrashSimulator::EnumerateLocked(const char* name) {
  if (!checker_ || exhausted_) {
    return;
  }
  const int64_t point = points_seen_++;
  if (options_.point_stride > 1 && point % options_.point_stride != 0) {
    return;
  }
  if (options_.replay_point >= 0 && point != options_.replay_point) {
    return;
  }

  // Dirty lines: stored but never flushed. Found by diffing the live region
  // against the shadow; lines already tracked as pending/WC are excluded
  // (they are candidates via their snapshots).
  std::vector<uint64_t> dirty;
  const uint64_t lines = region_->size() / kCacheLineSize;
  const char* live = region_->base();
  for (uint64_t line = 0; line < lines; ++line) {
    if (std::memcmp(live + line * kCacheLineSize,
                    shadow_.data() + line * kCacheLineSize,
                    kCacheLineSize) != 0) {
      if (pending_.count(line) == 0 && wc_.count(line) == 0) {
        dirty.push_back(line);
      }
    }
  }

  const int total_draws = 2 + options_.random_draws_per_point;
  for (int draw = 0; draw < total_draws; ++draw) {
    if (options_.replay_draw >= 0 && draw != options_.replay_draw) {
      continue;
    }
    if (images_checked_ >= static_cast<uint64_t>(options_.max_images)) {
      exhausted_ = true;
      return;
    }
    images_checked_++;
    Status st = MaterializeAndCheckLocked(dirty, point, draw);
    if (!st.ok()) {
      CrashSimFailure failure;
      failure.point_index = point;
      failure.point_name = name;
      failure.draw = draw;
      failure.seed = options_.seed;
      failure.status = st;
      failures_.push_back(std::move(failure));
      if (options_.stop_on_failure) {
        exhausted_ = true;
        return;
      }
    }
  }
}

Status CrashSimulator::MaterializeAndCheckLocked(
    const std::vector<uint64_t>& dirty, int64_t point, int draw) {
  // Start from the guaranteed-persistent image and overlay the draw's
  // surviving subset of unsealed lines.
  std::vector<char> image = shadow_;
  const char* live = region_->base();
  auto overlay_snapshot = [&](uint64_t line,
                              const std::array<char, 64>& snap) {
    std::memcpy(image.data() + line * kCacheLineSize, snap.data(),
                kCacheLineSize);
  };
  auto overlay_current = [&](uint64_t line) {
    std::memcpy(image.data() + line * kCacheLineSize,
                live + line * kCacheLineSize, kCacheLineSize);
  };

  if (draw == 1) {
    // All retired flushes persist, nothing else: the state the protocol
    // must tolerate when a crash lands between a flush and its fence.
    for (const auto& [line, snap] : pending_) {
      overlay_snapshot(line, snap);
    }
  } else if (draw >= 2) {
    // Seeded random subset; (seed, point, draw) replays the exact image.
    Rng rng(options_.seed ^ Mix64(static_cast<uint64_t>(point) * 1000003ULL +
                                  static_cast<uint64_t>(draw)));
    for (const auto& [line, snap] : pending_) {
      switch (rng.Uniform(3)) {
        case 0: break;                          // dropped
        case 1: overlay_snapshot(line, snap); break;  // flushed value
        default: overlay_current(line); break;  // re-dirtied value evicted
      }
    }
    for (const auto& [line, snap] : wc_) {
      switch (rng.Uniform(3)) {
        case 0: break;
        case 1: overlay_snapshot(line, snap); break;
        default: overlay_current(line); break;
      }
    }
    for (uint64_t line : dirty) {
      if (rng.Chance(1, 2)) {
        overlay_current(line);  // spontaneous cache eviction
      }
    }
  }
  // draw == 0: pure shadow — nothing unsealed survived.

  const int fd = ::open(options_.image_path.c_str(),
                        O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status(ErrorCode::kIoError,
                  std::string("crash image open failed: ") +
                      std::strerror(errno));
  }
  size_t written = 0;
  while (written < image.size()) {
    const ssize_t n =
        ::write(fd, image.data() + written, image.size() - written);
    if (n <= 0) {
      ::close(fd);
      return Status(ErrorCode::kIoError, "crash image write failed");
    }
    written += static_cast<size_t>(n);
  }
  ::close(fd);

  // The checker must not touch the attached region (it would re-enter the
  // hooks on this thread); it boots an independent system on the image.
  in_check_ = true;
  Status st = checker_(options_.image_path);
  in_check_ = false;
  return st;
}

void CrashSimulator::OnRegionDestroyed() {
  std::lock_guard lock(mu_);
  region_ = nullptr;
}

bool CrashSimulator::ok() const {
  std::lock_guard lock(mu_);
  return failures_.empty();
}

std::string CrashSimulator::Report() const {
  std::lock_guard lock(mu_);
  std::string out = "crash-sim: " + std::to_string(images_checked_) +
                    " images over " + std::to_string(points_seen_) +
                    " interest points, seed " +
                    std::to_string(options_.seed) + ", " +
                    std::to_string(failures_.size()) + " failure(s)";
  for (const auto& f : failures_) {
    out += "\n  " + f.ToString();
  }
  return out;
}

}  // namespace aerie
