// Storage-class-memory emulation (paper §2, §5.1, §7.1, §7.4).
//
// The paper emulates SCM with DRAM and models slow SCM by injecting
// software-created delays at the points where software persists data (clflush
// / write-combining flush). ScmRegion reproduces that mechanism:
//
//  * the region is an mmap'ed range of DRAM (anonymous, or file-backed so a
//    "machine crash + reboot" can be simulated by reopening the file);
//  * persistence primitives mirror Mnemosyne's (paper §5.1):
//      - WlFlush  : write + flush a cache line     (x86 clflush)
//      - BFlush   : drain write-combining buffers   (x86 mfence after NT store)
//      - Fence    : order writes to SCM             (x86 mfence)
//      - StreamWrite : non-temporal streaming copy into the log
//  * a latency model charges a configurable delay per persisted cache line,
//    which is how Figure 6's sensitivity study is produced.
//
// The memory controller is assumed to make aligned 64-bit stores atomic
// (paper assumption, from BPFS), which the consistency protocols rely on.
#ifndef AERIE_SRC_SCM_PMEM_H_
#define AERIE_SRC_SCM_PMEM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/obs/obs.h"

namespace aerie {

class CrashSimulator;

inline constexpr size_t kCacheLineSize = 64;
inline constexpr size_t kScmPageSize = 4096;

// Sentinel for persistence calls that are not registered as suppressible
// sites in the crash-simulation mutation registry (src/scm/crash_sim.h).
inline constexpr int kNoPersistSite = -1;

// Latency injected at persistence points. All values in nanoseconds; a value
// of zero means "raw DRAM speed" (the paper's default configuration).
struct ScmLatencyModel {
  // Extra delay charged per cache line made persistent (clflush or WC drain).
  std::atomic<uint64_t> write_ns_per_line{0};

  void set_write_ns(uint64_t ns) {
    write_ns_per_line.store(ns, std::memory_order_relaxed);
  }
  uint64_t write_ns() const {
    return write_ns_per_line.load(std::memory_order_relaxed);
  }
};

// Counters for persistence traffic; useful in tests and for reasoning about
// benchmark results. Backed by the obs registry: each region registers its
// counters for its lifetime, and the exporter merges all live regions under
// the scm.* names, so benches see one reporting path.
struct ScmStats {
  obs::Counter lines_flushed{"scm.flush.lines"};
  obs::Counter fences{"scm.fence.count"};
  obs::Counter bytes_streamed{"scm.stream.bytes"};
  obs::Counter wc_drains{"scm.wc_drain.count"};
  obs::ScopedRegistration registration;

  ScmStats() {
    registration.AddAll(lines_flushed, fences, bytes_streamed, wc_drains);
  }
};

// --- Per-layer media accounting (write amplification) ----------------------
//
// A ScopedScmLayer names the layer on whose behalf subsequent persistence
// primitives on this thread run; the innermost scope wins, mirroring span
// self-time attribution. ChargeLines / StreamWrite / Fence add into the
// interned counters scm.layer.<layer>.{lines_flushed,bytes_streamed,fences};
// traffic outside any scope lands under scm.layer.unattributed.*. Paired
// with the logical byte counters at the PXFS/FlatFS API boundary
// (*.api.logical_write_bytes), obs::ComputeWriteAmp turns these into the
// per-layer write-amplification table (DESIGN.md §9.3).
struct ScmLayerStats {
  obs::Counter& lines_flushed;   // cache lines made persistent
  obs::Counter& bytes_streamed;  // bytes through StreamWrite
  obs::Counter& fences;          // Fence calls

  // Interned per layer name (registry-owned counters, process lifetime).
  static ScmLayerStats& For(std::string_view layer);
};

// This thread's innermost layer scope (null outside any scope).
ScmLayerStats*& TlsScmLayer();

class ScopedScmLayer {
 public:
  explicit ScopedScmLayer(ScmLayerStats* stats) {
    ScmLayerStats*& tls = TlsScmLayer();
    prev_ = tls;
    tls = stats;
  }
  ~ScopedScmLayer() { TlsScmLayer() = prev_; }

  ScopedScmLayer(const ScopedScmLayer&) = delete;
  ScopedScmLayer& operator=(const ScopedScmLayer&) = delete;

 private:
  ScmLayerStats* prev_ = nullptr;
};

// A contiguous range of emulated SCM mapped into the process.
//
// All persistent data structures store offsets (not raw pointers) so the
// region remains valid if the host maps it at a different virtual address
// after a simulated reboot.
class ScmRegion {
 public:
  // Creates an anonymous (non-reopenable) region of `size` bytes.
  static Result<std::unique_ptr<ScmRegion>> CreateAnonymous(size_t size);

  // Creates or opens a file-backed region; reopening the same path after a
  // simulated crash observes exactly the bytes that reached "SCM".
  static Result<std::unique_ptr<ScmRegion>> OpenFileBacked(
      const std::string& path, size_t size);

  ~ScmRegion();

  ScmRegion(const ScmRegion&) = delete;
  ScmRegion& operator=(const ScmRegion&) = delete;

  char* base() const { return base_; }
  size_t size() const { return size_; }

  // Offset <-> pointer translation. Offsets are the persistent addressing
  // form (the paper stores virtual addresses but maps SCM at the same address
  // everywhere; offsets are the relocation-safe equivalent).
  char* PtrAt(uint64_t offset) const { return base_ + offset; }
  uint64_t OffsetOf(const void* ptr) const {
    return static_cast<uint64_t>(static_cast<const char*>(ptr) - base_);
  }
  bool Contains(const void* ptr) const {
    return ptr >= base_ && ptr < base_ + size_;
  }

  // --- Persistence primitives (Mnemosyne-style, paper §5.1) ---
  //
  // The optional `site` argument names the call site in the crash-sim
  // mutation registry (RegisterPersistSite); in AERIE_CRASH_SIM mode the
  // simulator can suppress a registered site to prove the checker detects
  // the resulting ordering bug. Sites default to kNoPersistSite.

  // Flushes the cache lines covering [addr, addr+len) to SCM.
  void WlFlush(const void* addr, size_t len, int site = kNoPersistSite);

  // Orders subsequent SCM writes after preceding ones.
  void Fence(int site = kNoPersistSite);

  // Streams `len` bytes to dst via write-combining (non-temporal) stores.
  // Data is *not* persistent until BFlush().
  void StreamWrite(void* dst, const void* src, size_t len);

  // Drains write-combining buffers: everything streamed so far is persistent.
  void BFlush(int site = kNoPersistSite);

  // Convenience: store + WlFlush of a 64-bit value (the atomic-commit write
  // used by shadow updates).
  void PersistU64(uint64_t* dst, uint64_t value,
                  int flush_site = kNoPersistSite,
                  int fence_site = kNoPersistSite) {
    reinterpret_cast<std::atomic<uint64_t>*>(dst)->store(
        value, std::memory_order_release);
    WlFlush(dst, sizeof(uint64_t), flush_site);
    Fence(fence_site);
  }

  // Named interest point for the crash simulator (no-op otherwise): marks a
  // protocol step worth enumerating crash images at, beyond the implicit
  // point at every Fence.
  void CrashPoint(const char* name);

  // Attaches/detaches a crash simulator observing this region's persistence
  // traffic. The simulator must outlive the attachment (it detaches itself
  // in its destructor); not thread-safe versus concurrent primitive calls,
  // so attach before the workload starts.
  void AttachCrashSim(CrashSimulator* sim) { crash_sim_ = sim; }
  void DetachCrashSim() { crash_sim_ = nullptr; }
  CrashSimulator* crash_sim() const { return crash_sim_; }

  ScmLatencyModel& latency_model() { return latency_; }
  ScmStats& stats() { return stats_; }

  // Real mprotect() on a sub-range, for the permission-change benchmark.
  // Rights bitmask: 1 = read, 2 = write.
  Status HardProtect(uint64_t offset, size_t len, int rights);

 private:
  ScmRegion(char* base, size_t size, int fd, std::string path)
      : base_(base), size_(size), fd_(fd), path_(std::move(path)) {}

  void ChargeLines(uint64_t lines);

  char* base_;
  size_t size_;
  int fd_;  // -1 for anonymous regions
  std::string path_;
  ScmLatencyModel latency_;
  ScmStats stats_;
  // Cache lines streamed since the last BFlush (approximates WC occupancy).
  std::atomic<uint64_t> pending_wc_lines_{0};
  CrashSimulator* crash_sim_ = nullptr;
};

}  // namespace aerie

// Scoped SCM-layer attribution: AERIE_SCM_LAYER("txlog") charges every
// persistence primitive reached from the enclosing scope (on this thread)
// to scm.layer.txlog.*. `layer` must be a string literal; the stats are
// interned once per call site like AERIE_SPAN.
#define AERIE_SCM_LAYER(layer)                                               \
  static ::aerie::ScmLayerStats& AERIE_OBS_CONCAT(aerie_scm_layer_stats_,    \
                                                  __LINE__) =                \
      ::aerie::ScmLayerStats::For(layer);                                    \
  ::aerie::ScopedScmLayer AERIE_OBS_CONCAT(aerie_scm_layer_, __LINE__)(      \
      &AERIE_OBS_CONCAT(aerie_scm_layer_stats_, __LINE__))

#endif  // AERIE_SRC_SCM_PMEM_H_
