// Cache-line-granularity crash-state enumeration for the emulated SCM
// (Yat/PMTest-style persistence checking; see DESIGN.md "Crash simulation").
//
// The DRAM-backed ScmRegion persists every store whether or not it was
// flushed, so crash tests that merely reopen the backing file cannot see a
// missing WlFlush or a misordered Fence. CrashSimulator models what would
// actually have reached SCM on real hardware:
//
//   * a shadow copy of the region holds the *guaranteed-persistent* image —
//     everything sealed by a completed flush+fence (or stream+BFlush);
//   * WlFlush snapshots the covered lines into a flushed-pending set (the
//     flush has retired, persistence is guaranteed only at the next Fence);
//   * StreamWrite snapshots lines into a write-combining set; BFlush seals
//     the WC set into the shadow (paper §5.1: streaming stores + BFlush);
//   * Fence seals the flushed-pending set, closing the epoch;
//   * plain stores are *dirty* lines — found by diffing the live region
//     against the shadow — which a crash may or may not persist (cache
//     eviction is spontaneous on real hardware).
//
// At each interest point (every Fence, plus explicit ScmRegion::CrashPoint
// markers), the simulator enumerates crash images: the shadow plus a chosen
// subset of the unsealed (pending / WC / dirty) lines. Draw 0 is the pure
// shadow ("nothing unsealed made it"), draw 1 persists every flushed-pending
// line ("all retired flushes made it, nothing else"), and further draws take
// seeded random subsets, choosing per line between its dropped, snapshot,
// and current values. Each image is materialized to a file and handed to a
// caller-supplied checker (typically: reboot an AerieSystem on it, run
// recovery + fsck, assert prefix semantics). Failures record (seed, point,
// draw) so any image can be replayed exactly.
//
// Mutation mode: persistence call sites register string names in the
// PersistSiteRegistry; SuppressSite(id) makes the simulator ignore that
// site's flush/fence effects, emulating the protocol bug of omitting it.
// A correct checker must then report corruption — proving the tool has
// teeth (ISSUE: mutation testing of the checker itself).
#ifndef AERIE_SRC_SCM_CRASH_SIM_H_
#define AERIE_SRC_SCM_CRASH_SIM_H_

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/scm/pmem.h"

namespace aerie {

// Process-wide registry of suppressible persistence call sites. Sites are
// registered once (function-local static at the call site) and identified
// by a small integer id; names are stable, dot-separated paths such as
// "txlog.commit.bflush".
class PersistSiteRegistry {
 public:
  static PersistSiteRegistry& Instance();

  // Returns the id for `name`, registering it on first use.
  int Register(const std::string& name);
  // -1 when no site has that name.
  int Find(const std::string& name) const;
  std::string Name(int site) const;  // empty for unknown ids
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> names_;
};

// Call-site helper: `static const int site = RegisterPersistSite("...");`
int RegisterPersistSite(const char* name);

struct CrashSimOptions {
  uint64_t seed = 1;
  // Random-subset draws per interest point, in addition to the two
  // deterministic draws (pure shadow; shadow + all flushed-pending lines).
  int random_draws_per_point = 2;
  // Check every Nth interest point (1 = all).
  int point_stride = 1;
  // Total crash-image budget; enumeration stops charging once exhausted.
  int max_images = 500;
  // Stop enumerating after the first failing image (mutation tests).
  bool stop_on_failure = true;
  // File the crash images are materialized into (reused per draw).
  std::string image_path = "/tmp/aerie_crash_image.img";
  // Replay mode: when >= 0, only this (point, draw) pair is checked —
  // reproducing a failure from a recorded seed/point/draw triple.
  int64_t replay_point = -1;
  int replay_draw = -1;

  // Applies AERIE_CRASH_SAMPLES (image budget) and AERIE_CRASH_SEED
  // environment overrides, the CI knobs for nightly extended sweeps.
  static CrashSimOptions FromEnv(CrashSimOptions base);
};

struct CrashSimFailure {
  int64_t point_index = 0;
  std::string point_name;
  int draw = 0;
  uint64_t seed = 0;
  Status status;

  // "point=12 (txlog.commit) draw=3 seed=99: <status>" — enough to replay.
  std::string ToString() const;
};

class CrashSimulator {
 public:
  // Receives the path of a materialized crash image; returns OK when the
  // image recovers cleanly (reboot + recovery + fsck + oracle) and an error
  // describing the corruption otherwise.
  using Checker = std::function<Status(const std::string& image_path)>;

  // Attaches to `region` on construction and detaches on destruction.
  CrashSimulator(ScmRegion* region, CrashSimOptions options, Checker checker);
  ~CrashSimulator();

  CrashSimulator(const CrashSimulator&) = delete;
  CrashSimulator& operator=(const CrashSimulator&) = delete;

  // Mutation mode: the given registered site's flushes/fences are ignored.
  void SuppressSite(int site);
  void ClearSuppressedSites();

  // --- Hooks called by ScmRegion (do not call directly) ---
  void OnWlFlush(const void* addr, size_t len, int site);
  void OnStreamWrite(const void* dst, size_t len);
  void OnBFlush(int site);
  void OnFence(int site);
  void OnInterestPoint(const char* name);
  void OnRegionDestroyed();

  // --- Results ---
  bool ok() const;
  const std::vector<CrashSimFailure>& failures() const { return failures_; }
  uint64_t images_checked() const { return images_checked_; }
  int64_t points_seen() const { return points_seen_; }
  std::string Report() const;

 private:
  // 64-byte snapshot of one cache line, keyed by line index in the region.
  using LineMap = std::unordered_map<uint64_t, std::array<char, 64>>;

  void SnapshotLines(const void* addr, size_t len, LineMap* into);
  void SealLocked(LineMap* from);
  void EnumerateLocked(const char* name);
  Status MaterializeAndCheckLocked(const std::vector<uint64_t>& dirty,
                                   int64_t point, int draw);

  ScmRegion* region_;  // null after OnRegionDestroyed
  const CrashSimOptions options_;
  Checker checker_;

  mutable std::mutex mu_;
  std::vector<char> shadow_;   // guaranteed-persistent image
  LineMap pending_;            // WlFlushed, awaiting Fence
  LineMap wc_;                 // StreamWritten, awaiting BFlush
  std::unordered_set<int> suppressed_;
  bool in_check_ = false;      // re-entrancy guard during checker callbacks
  bool exhausted_ = false;

  int64_t points_seen_ = 0;
  uint64_t images_checked_ = 0;
  std::vector<CrashSimFailure> failures_;
};

}  // namespace aerie

#endif  // AERIE_SRC_SCM_CRASH_SIM_H_
