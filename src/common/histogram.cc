#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace aerie {

void Histogram::Clear() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

int Histogram::BucketFor(uint64_t value) {
  if (value < kMinor) {
    return static_cast<int>(value);
  }
  const int log = 63 - std::countl_zero(value);
  const int major = log - kMinorBits + 1;
  const int minor =
      static_cast<int>((value >> (log - kMinorBits)) & (kMinor - 1));
  // The top major bucket (log == 63) lands well inside the array, but clamp
  // anyway so a future re-parameterization of kMinorBits/kBuckets cannot
  // silently index out of bounds.
  return std::min(major * kMinor + minor, kBuckets - 1);
}

uint64_t Histogram::BucketMidpoint(int bucket) {
  const int major = bucket / kMinor;
  const int minor = bucket % kMinor;
  if (major == 0) {
    return static_cast<uint64_t>(minor);
  }
  const int log = major + kMinorBits - 1;
  const uint64_t base =
      (1ULL << log) + (static_cast<uint64_t>(minor) << (log - kMinorBits));
  const uint64_t width = 1ULL << (log - kMinorBits);
  return base + width / 2;
}

void Histogram::Record(uint64_t value) {
  buckets_[static_cast<size_t>(BucketFor(value))]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::MergeSerialized(const uint64_t* buckets, int n,
                                uint64_t count, uint64_t sum, uint64_t min,
                                uint64_t max) {
  if (count == 0) {
    return;
  }
  const int limit = std::min(n, kBuckets);
  for (int i = 0; i < limit; ++i) {
    buckets_[static_cast<size_t>(i)] += buckets[i];
  }
  count_ += count;
  sum_ += sum;
  min_ = std::min(min_, min);
  max_ = std::max(max_, max);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;  // empty histogram: every percentile is 0, like min()/max()
  }
  p = std::clamp(p, 0.0, 100.0);
  if (p == 0.0) {
    return min();
  }
  if (p == 100.0) {
    return max_;
  }
  const auto target = static_cast<uint64_t>(
      p / 100.0 * static_cast<double>(count_ - 1) + 0.5);
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen > target) {
      // Clamping to [min, max] makes the single-sample / single-bucket case
      // exact (the bucket midpoint can sit above the only recorded value)
      // and keeps the top bucket's wide midpoint from exceeding the true
      // maximum.
      return std::clamp(BucketMidpoint(i), min(), max());
    }
  }
  return max_;
}

std::string Histogram::SummaryString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mean=%.2fus p50=%.2fus p95=%.2fus p99=%.2fus max=%.2fus "
                "n=%llu",
                Mean() / 1e3, static_cast<double>(Percentile(50)) / 1e3,
                static_cast<double>(Percentile(95)) / 1e3,
                static_cast<double>(Percentile(99)) / 1e3,
                static_cast<double>(max()) / 1e3,
                static_cast<unsigned long long>(count_));
  return buf;
}

std::string Histogram::ToJson() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"min\":%llu,\"mean\":%.1f,\"p50\":%llu,"
                "\"p95\":%llu,\"p99\":%llu,\"max\":%llu}",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(min()), Mean(),
                static_cast<unsigned long long>(Percentile(50)),
                static_cast<unsigned long long>(Percentile(95)),
                static_cast<unsigned long long>(Percentile(99)),
                static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace aerie
