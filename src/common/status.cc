#include "src/common/status.h"

namespace aerie {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kNotFound:
      return "not-found";
    case ErrorCode::kAlreadyExists:
      return "already-exists";
    case ErrorCode::kPermissionDenied:
      return "permission-denied";
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kOutOfSpace:
      return "out-of-space";
    case ErrorCode::kLockRevoked:
      return "lock-revoked";
    case ErrorCode::kLockConflict:
      return "lock-conflict";
    case ErrorCode::kStale:
      return "stale";
    case ErrorCode::kCorrupted:
      return "corrupted";
    case ErrorCode::kBusy:
      return "busy";
    case ErrorCode::kNotSupported:
      return "not-supported";
    case ErrorCode::kIoError:
      return "io-error";
    case ErrorCode::kNotDirectory:
      return "not-directory";
    case ErrorCode::kIsDirectory:
      return "is-directory";
    case ErrorCode::kNotEmpty:
      return "not-empty";
    case ErrorCode::kBadHandle:
      return "bad-handle";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace aerie
