// Latency histogram with percentile queries.
//
// Log-bucketed (HdrHistogram-style) so recording is O(1) and allocation-free
// on the hot path; benchmarks record millions of per-op latencies.
#ifndef AERIE_SRC_COMMON_HISTOGRAM_H_
#define AERIE_SRC_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace aerie {

class Histogram {
 public:
  // 64 power-of-two major buckets x 16 linear minor buckets. Public because
  // the telemetry plane serializes raw bucket counts into shared memory and
  // re-merges them across processes (src/obs/telemetry.h).
  static constexpr int kMinorBits = 4;
  static constexpr int kMinor = 1 << kMinorBits;
  static constexpr int kBuckets = 64 * kMinor;

  Histogram() { Clear(); }

  void Clear();

  // Records one sample (any unit; benchmarks use nanoseconds).
  void Record(uint64_t value);

  // Merges another histogram into this one (for per-thread aggregation).
  void Merge(const Histogram& other);

  // Raw bucket count, i in [0, kBuckets). Pairs with MergeSerialized for
  // shared-memory round trips.
  uint64_t bucket_count(int i) const {
    return buckets_[static_cast<size_t>(i)];
  }

  // Merges a histogram that went through bucket-level serialization: `n`
  // raw bucket counts (buckets beyond n are treated as zero) plus the exact
  // scalar stats. A count of zero is a no-op, so an empty serialized
  // histogram cannot corrupt min().
  void MergeSerialized(const uint64_t* buckets, int n, uint64_t count,
                       uint64_t sum, uint64_t min, uint64_t max);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double Mean() const;

  // Value at percentile p in [0, 100]. Approximate to bucket resolution
  // (~1.6% relative error).
  uint64_t Percentile(double p) const;

  // "mean=12.3us p50=11us p95=20us p99=40us max=80us n=1000" with values
  // interpreted as nanoseconds.
  std::string SummaryString() const;

  // Bucket-free JSON summary:
  // {"count":N,"min":..,"mean":..,"p50":..,"p95":..,"p99":..,"max":..}
  // Values keep the recorded unit (benchmarks record nanoseconds).
  std::string ToJson() const;

 private:
  static int BucketFor(uint64_t value);
  static uint64_t BucketMidpoint(int bucket);

  std::array<uint64_t, kBuckets> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace aerie

#endif  // AERIE_SRC_COMMON_HISTOGRAM_H_
