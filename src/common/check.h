// Invariant-check macros.
//
// AERIE_CHECK aborts on violated internal invariants (never on user error —
// user-visible failures travel as Status). AERIE_DCHECK compiles out of
// release builds.
//
// A failed AERIE_CHECK runs the registered failure hook (at most once)
// before aborting; the observability layer installs a hook that dumps the
// tracing flight recorder so a crash leaves a post-mortem event trail.
#ifndef AERIE_SRC_COMMON_CHECK_H_
#define AERIE_SRC_COMMON_CHECK_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace aerie {
namespace detail {

// Header-only so common/ takes no link dependency on obs/.
inline std::atomic<void (*)()> g_check_failure_hook{nullptr};

// Consumes the hook (exchange with null): a hook that itself fails a CHECK
// cannot recurse, and concurrent failing threads dump once.
inline void RunCheckFailureHook() {
  void (*hook)() = g_check_failure_hook.exchange(nullptr);
  if (hook != nullptr) {
    hook();
  }
}

}  // namespace detail

inline void SetCheckFailureHook(void (*hook)()) {
  detail::g_check_failure_hook.store(hook);
}

}  // namespace aerie

#define AERIE_CHECK(cond)                                               \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "AERIE_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #cond);                          \
      ::aerie::detail::RunCheckFailureHook();                           \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#ifndef NDEBUG
#define AERIE_DCHECK(cond) AERIE_CHECK(cond)
#else
#define AERIE_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

#endif  // AERIE_SRC_COMMON_CHECK_H_
