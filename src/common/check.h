// Invariant-check macros.
//
// AERIE_CHECK aborts on violated internal invariants (never on user error —
// user-visible failures travel as Status). AERIE_DCHECK compiles out of
// release builds.
#ifndef AERIE_SRC_COMMON_CHECK_H_
#define AERIE_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define AERIE_CHECK(cond)                                               \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "AERIE_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #cond);                          \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#ifndef NDEBUG
#define AERIE_DCHECK(cond) AERIE_CHECK(cond)
#else
#define AERIE_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

#endif  // AERIE_SRC_COMMON_CHECK_H_
