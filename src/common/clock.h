// Nanosecond clocks, calibrated spin delays and stopwatches.
//
// The SCM latency model (paper §7.4) injects configurable write delays by
// spinning on the timestamp counter, exactly as the paper does with RDTSCP.
// We spin on a monotonic nanosecond clock so the delay is wall-clock accurate
// regardless of the host TSC configuration.
#ifndef AERIE_SRC_COMMON_CLOCK_H_
#define AERIE_SRC_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace aerie {

// Monotonic nanoseconds since an arbitrary epoch.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Busy-waits for `ns` nanoseconds. Used to emulate slow SCM writes; must not
// sleep, because real SCM stalls the CPU pipeline, not the scheduler.
inline void SpinDelayNanos(uint64_t ns) {
  if (ns == 0) {
    return;
  }
  const uint64_t deadline = NowNanos() + ns;
  while (NowNanos() < deadline) {
    // Relax the pipeline a little while spinning.
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
}

class Stopwatch {
 public:
  Stopwatch() : start_(NowNanos()) {}
  void Reset() { start_ = NowNanos(); }
  uint64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  uint64_t start_;
};

}  // namespace aerie

#endif  // AERIE_SRC_COMMON_CLOCK_H_
