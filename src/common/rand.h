// Deterministic, fast PRNG for workload generation and property tests.
//
// xoshiro256** — fast, high-quality, and reproducible across platforms, which
// matters because benchmark workloads must generate identical op streams for
// every file system under test.
#ifndef AERIE_SRC_COMMON_RAND_H_
#define AERIE_SRC_COMMON_RAND_H_

#include <cstdint>

#include "src/common/hash.h"

namespace aerie {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the full state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      s = Mix64(x);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t Uniform(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    // Lemire's multiply-shift rejection-free approximation is fine here; the
    // tiny modulo bias is irrelevant for workload generation.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Uniform(den) < num; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace aerie

#endif  // AERIE_SRC_COMMON_RAND_H_
