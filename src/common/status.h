// Status / Result types used throughout Aerie.
//
// Aerie modules do not throw exceptions on expected failure paths (file not
// found, lock revoked, ...). Instead they return a Status, or a Result<T>
// carrying either a value or a Status. This mirrors the error-code style used
// by OS-level storage stacks and keeps failure handling explicit.
#ifndef AERIE_SRC_COMMON_STATUS_H_
#define AERIE_SRC_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace aerie {

// Error categories. Kept deliberately close to the errno subsets a file
// system needs, plus Aerie-specific distributed conditions.
enum class ErrorCode : uint8_t {
  kOk = 0,
  kNotFound,           // name or object does not exist
  kAlreadyExists,      // name already bound
  kPermissionDenied,   // ACL or lock-ownership violation
  kInvalidArgument,    // malformed request
  kOutOfSpace,         // allocator exhausted
  kLockRevoked,        // lease expired or lock revoked mid-operation
  kLockConflict,       // lock unavailable (would block / deadlock avoidance)
  kStale,              // cached state invalidated; retry
  kCorrupted,          // on-SCM structure failed validation
  kBusy,               // resource in use (e.g. directory not empty)
  kNotSupported,       // operation not provided by this interface
  kIoError,            // simulated device error
  kNotDirectory,       // path component is not a directory
  kIsDirectory,        // directory where file expected
  kNotEmpty,           // directory not empty on remove
  kBadHandle,          // unknown file descriptor / handle
  kUnavailable,        // service unreachable / client failed
  kInternal,           // invariant violation inside Aerie itself
};

// Returns a stable human-readable name ("kNotFound" -> "not-found").
std::string_view ErrorCodeName(ErrorCode code);

// A cheap, value-semantic status. OK statuses carry no allocation.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "not-found: no such entry 'foo'"
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

// Result<T>: either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : rep_(std::move(status)) {}  // NOLINT
  Result(ErrorCode code) : rep_(Status(code)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(rep_);
  }

  ErrorCode code() const { return ok() ? ErrorCode::kOk : status().code(); }

  T& value() & { return std::get<T>(rep_); }
  const T& value() const& { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Returns the value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

// Propagate a non-OK Status from an expression.
#define AERIE_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::aerie::Status _st = (expr);              \
    if (!_st.ok()) {                           \
      return _st;                              \
    }                                          \
  } while (0)

// Assign the value of a Result expression or propagate its Status.
#define AERIE_ASSIGN_OR_RETURN(lhs, expr)      \
  AERIE_ASSIGN_OR_RETURN_IMPL_(                \
      AERIE_STATUS_CONCAT_(_res, __LINE__), lhs, expr)

#define AERIE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

#define AERIE_STATUS_CONCAT_INNER_(a, b) a##b
#define AERIE_STATUS_CONCAT_(a, b) AERIE_STATUS_CONCAT_INNER_(a, b)

}  // namespace aerie

#endif  // AERIE_SRC_COMMON_STATUS_H_
