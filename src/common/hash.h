// 64-bit hashing used by collections, name caches and the dentry cache.
//
// We use FNV-1a for byte strings (simple, dependency-free, adequate spread for
// hash tables whose growth policy rehashes) and a Stafford mix13 finalizer for
// integer keys such as lock ids and OIDs.
#ifndef AERIE_SRC_COMMON_HASH_H_
#define AERIE_SRC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace aerie {

// FNV-1a over an arbitrary byte string.
constexpr uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

// Stafford variant 13 of the murmur3 finalizer: a strong bijective mixer for
// 64-bit integer keys.
constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Combines two hashes (boost::hash_combine style, 64-bit constants).
constexpr uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace aerie

#endif  // AERIE_SRC_COMMON_HASH_H_
