// Open flags shared by every file-system interface in this repository
// (PXFS, the kernel-VFS baselines, and the workload adapters). Deliberately
// not errno/fcntl values; these are library APIs.
#ifndef AERIE_SRC_COMMON_OPEN_FLAGS_H_
#define AERIE_SRC_COMMON_OPEN_FLAGS_H_

namespace aerie {

inline constexpr int kOpenRead = 1 << 0;
inline constexpr int kOpenWrite = 1 << 1;
inline constexpr int kOpenCreate = 1 << 2;
inline constexpr int kOpenTrunc = 1 << 3;
inline constexpr int kOpenAppend = 1 << 4;

}  // namespace aerie

#endif  // AERIE_SRC_COMMON_OPEN_FLAGS_H_
