#include "src/txlog/redo_log.h"

#include <cstring>

#include "src/common/hash.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/scm/crash_sim.h"

namespace aerie {

namespace {

constexpr uint64_t kLogMagic = 0x41455249454c4f47ULL;  // "AERIELOG"

struct LogHeaderRep {
  uint64_t magic;
  uint64_t capacity;
  // Committed tail: bytes of valid records. Published atomically.
  uint64_t head;
};

struct RecordHeaderRep {
  uint32_t size;  // payload bytes
  uint32_t type;
  uint64_t checksum;  // over payload
};

uint64_t AlignUp8(uint64_t v) { return (v + 7) & ~7ULL; }

}  // namespace

char* RedoLog::RecordArea() const {
  return region_->PtrAt(offset_) + sizeof(LogHeaderRep);
}

Result<RedoLog> RedoLog::Format(ScmRegion* region, uint64_t offset,
                                uint64_t size) {
  if (size <= sizeof(LogHeaderRep)) {
    return Status(ErrorCode::kInvalidArgument, "log area too small");
  }
  AERIE_SCM_LAYER("txlog");
  auto* hdr = reinterpret_cast<LogHeaderRep*>(region->PtrAt(offset));
  hdr->capacity = size - sizeof(LogHeaderRep);
  hdr->head = 0;
  region->WlFlush(hdr, sizeof(*hdr));
  region->Fence();
  region->PersistU64(&hdr->magic, kLogMagic);
  return RedoLog(region, offset, hdr->capacity);
}

Result<RedoLog> RedoLog::Open(ScmRegion* region, uint64_t offset) {
  auto* hdr = reinterpret_cast<LogHeaderRep*>(region->PtrAt(offset));
  if (hdr->magic != kLogMagic) {
    return Status(ErrorCode::kCorrupted, "bad redo-log magic");
  }
  RedoLog log(region, offset, hdr->capacity);
  log.volatile_tail_ = hdr->head;
  return log;
}

uint64_t RedoLog::committed_bytes() const {
  const auto* hdr =
      reinterpret_cast<const LogHeaderRep*>(region_->PtrAt(offset_));
  return hdr->head;
}

Status RedoLog::Append(uint32_t type, std::span<const char> payload) {
  AERIE_SPAN("txlog", "append");
  AERIE_SCM_LAYER("txlog");
  const uint64_t need =
      AlignUp8(sizeof(RecordHeaderRep) + payload.size());
  if (volatile_tail_ + need > capacity_) {
    return Status(ErrorCode::kOutOfSpace, "redo log full");
  }
  RecordHeaderRep rec;
  rec.size = static_cast<uint32_t>(payload.size());
  rec.type = type;
  rec.checksum = HashBytes(payload.data(), payload.size());

  char* dst = RecordArea() + volatile_tail_;
  // Streaming writes into the log (paper: x86 streaming instructions buffer
  // in WC buffers; high bandwidth for the sequential log).
  region_->StreamWrite(dst, &rec, sizeof(rec));
  if (!payload.empty()) {
    region_->StreamWrite(dst + sizeof(rec), payload.data(), payload.size());
  }
  volatile_tail_ += need;
  AERIE_COUNT_N("txlog.append.bytes", need);
  // Mid-epoch interest point: record bytes sit in the WC buffers and any
  // subset of them may reach SCM; the commit pointer must shield replay.
  region_->CrashPoint("txlog.append");
  return OkStatus();
}

Status RedoLog::Commit() {
  AERIE_SPAN("txlog", "commit");
  AERIE_SCM_LAYER("txlog");
  AERIE_COUNT("txlog.commit.count");
  obs::TraceInstant("txlog.commit.bytes", volatile_tail_);
  // Registered persistence sites (crash-sim mutation targets). Suppressing
  // any of them is a detectable protocol bug: without the BFlush the commit
  // pointer can cover garbage record bytes; without the publish flush a
  // crash mid-apply has no committed record to replay. The fences here are
  // deliberately NOT registered — the apply path fences before anything
  // depends on them, so their suppression is masked by protocol redundancy
  // and a mutation test could never detect it (see DESIGN.md).
  static const int kCommitBFlushSite =
      RegisterPersistSite("txlog.commit.bflush");
  static const int kCommitPublishFlushSite =
      RegisterPersistSite("txlog.commit.publish.flush");
  // Drain the WC buffers so record bytes are persistent, order the commit
  // pointer after them, then publish with one atomic 64-bit store.
  region_->BFlush(kCommitBFlushSite);
  region_->Fence();
  auto* hdr = reinterpret_cast<LogHeaderRep*>(region_->PtrAt(offset_));
  region_->PersistU64(&hdr->head, volatile_tail_, kCommitPublishFlushSite);
  region_->CrashPoint("txlog.commit");
  return OkStatus();
}

Status RedoLog::Replay(const ReplayFn& fn) const {
  AERIE_SPAN("txlog", "replay");
  const uint64_t end = committed_bytes();
  const char* area = RecordArea();
  uint64_t pos = 0;
  while (pos < end) {
    if (pos + sizeof(RecordHeaderRep) > end) {
      return Status(ErrorCode::kCorrupted, "truncated record header");
    }
    RecordHeaderRep rec;
    std::memcpy(&rec, area + pos, sizeof(rec));
    const uint64_t payload_at = pos + sizeof(RecordHeaderRep);
    if (payload_at + rec.size > end) {
      return Status(ErrorCode::kCorrupted, "truncated record payload");
    }
    std::span<const char> payload(area + payload_at, rec.size);
    if (HashBytes(payload.data(), payload.size()) != rec.checksum) {
      return Status(ErrorCode::kCorrupted, "record checksum mismatch");
    }
    AERIE_RETURN_IF_ERROR(fn(rec.type, payload));
    pos = AlignUp8(payload_at + rec.size);
  }
  return OkStatus();
}

void RedoLog::Truncate() {
  AERIE_SCM_LAYER("txlog");
  // Suppressing this flush leaves the old (larger) head covering a mix of
  // freshly appended and stale record bytes — replay then walks across the
  // torn boundary and fails the checksum.
  static const int kTruncatePublishFlushSite =
      RegisterPersistSite("txlog.truncate.publish.flush");
  auto* hdr = reinterpret_cast<LogHeaderRep*>(region_->PtrAt(offset_));
  region_->PersistU64(&hdr->head, 0, kTruncatePublishFlushSite);
  volatile_tail_ = 0;
  region_->CrashPoint("txlog.truncate");
}

}  // namespace aerie
