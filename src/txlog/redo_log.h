// Persistent redo log (paper §5.1, §5.3.6).
//
// The TFS write-ahead-logs every batch of metadata updates before applying it
// in place: append records with streaming (write-combining) stores, make them
// persistent with a single BFlush + Fence, publish with one atomic 64-bit
// commit-pointer update, then apply the updates with WlFlush. After a crash,
// Replay() re-delivers every committed record; records must be idempotent
// (the TFS's logical ops are).
//
// The log is a linear buffer truncated after each checkpoint (the TFS applies
// and truncates batch-by-batch, so the log never needs to wrap).
#ifndef AERIE_SRC_TXLOG_REDO_LOG_H_
#define AERIE_SRC_TXLOG_REDO_LOG_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>

#include "src/common/status.h"
#include "src/scm/pmem.h"

namespace aerie {

class RedoLog {
 public:
  // Record delivered on replay: a type tag and its payload bytes.
  using ReplayFn =
      std::function<Status(uint32_t type, std::span<const char> payload)>;

  // Formats a fresh log over [offset, offset+size) of `region`.
  static Result<RedoLog> Format(ScmRegion* region, uint64_t offset,
                                uint64_t size);
  // Opens an existing log (after a crash or clean shutdown).
  static Result<RedoLog> Open(ScmRegion* region, uint64_t offset);

  // Appends a record; it is NOT persistent until Commit(). Returns
  // kOutOfSpace when the record area is full (caller should apply+truncate).
  Status Append(uint32_t type, std::span<const char> payload);

  // Makes all appended records persistent and visible to Replay.
  Status Commit();

  // Delivers every committed record in order.
  Status Replay(const ReplayFn& fn) const;

  // Discards all committed records (after their effects are flushed).
  void Truncate();

  // Discards records appended since the last Commit (failed batch append).
  void Rollback() { volatile_tail_ = committed_bytes(); }

  // Committed bytes currently in the log.
  uint64_t committed_bytes() const;
  // Bytes appended but not yet committed.
  uint64_t pending_bytes() const { return volatile_tail_ - committed_bytes(); }
  uint64_t capacity() const { return capacity_; }

 private:
  RedoLog(ScmRegion* region, uint64_t offset, uint64_t capacity)
      : region_(region), offset_(offset), capacity_(capacity) {}

  char* RecordArea() const;

  ScmRegion* region_;
  uint64_t offset_;    // region offset of the log header
  uint64_t capacity_;  // bytes in the record area
  uint64_t volatile_tail_ = 0;  // append cursor (committed + pending)
};

}  // namespace aerie

#endif  // AERIE_SRC_TXLOG_REDO_LOG_H_
