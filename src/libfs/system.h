// AerieSystem: single-process wiring of a complete Aerie deployment.
//
// Assembles the pieces exactly as Figure 2 arranges them: an emulated SCM
// region, the (kernel) SCM manager, one file-system volume, the trusted
// service (TFS + lock service) reachable over RPC, and a factory for
// untrusted clients (libFS instances). Clients may connect through the
// in-process transport (optionally charging a simulated RPC round-trip) or
// through real Unix-domain sockets, matching the paper's loopback RPC.
//
// The paper runs clients as separate processes; here each client is an
// independent LibFs instance (own clerk, cache, batch, session id) driven by
// its own thread — see DESIGN.md §4 for why this preserves the measured
// paths on the TFS side.
#ifndef AERIE_SRC_LIBFS_SYSTEM_H_
#define AERIE_SRC_LIBFS_SYSTEM_H_

#include <atomic>
#include <memory>
#include <string>

#include "src/libfs/client.h"
#include "src/lock/lock_service.h"
#include "src/rpc/inproc.h"
#include "src/rpc/socket.h"
#include "src/scm/manager.h"
#include "src/scm/pmem.h"
#include "src/tfs/service.h"

namespace aerie {

class AerieSystem {
 public:
  struct Options {
    uint64_t region_bytes = 256ull << 20;
    // Non-empty: file-backed region (survives Create/destroy cycles for
    // crash-recovery testing).
    std::string region_path;
    // false: mount an existing region (runs recovery) instead of formatting.
    bool fresh = true;
    // Simulated RPC round-trip for in-process transports (0 = free calls).
    uint64_t rpc_delay_ns = 0;
    // Non-empty: also serve RPC on this Unix socket path.
    std::string uds_path;
    // Extra write latency per persisted cache line (paper §7.4 knob).
    uint64_t scm_write_ns = 0;
    LockService::Options lock;
    TrustedFsService::Options tfs;
    ScmManager::Options scm;
    // Applied only when formatting (fresh == true). Crash-simulation tests
    // shrink the redo log so enumeration touches fewer lines per image.
    Volume::Options volume;
  };

  static Result<std::unique_ptr<AerieSystem>> Create(const Options& options);
  ~AerieSystem();

  // A connected untrusted client: transport + libFS + lock session.
  class Client {
   public:
    ~Client();
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    LibFs* fs() { return fs_.get(); }
    uint64_t id() const { return transport_->client_id(); }
    Transport* transport() { return transport_.get(); }

    // Crash-test hook: skip the clean teardown (sync, disconnect) so the
    // client "dies" with unshipped state, like a killed process.
    void AbandonForCrashTest() {
      system_ = nullptr;
      if (fs_) {
        fs_->AbandonForCrashTest();
      }
    }

   private:
    friend class AerieSystem;
    Client() = default;
    AerieSystem* system_ = nullptr;
    std::unique_ptr<Transport> transport_;
    std::unique_ptr<LibFs> fs_;
  };

  // Connects a new client over the in-process transport.
  Result<std::unique_ptr<Client>> NewClient() {
    return NewClient(LibFs::Options{});
  }
  Result<std::unique_ptr<Client>> NewClient(const LibFs::Options& options);
  // Connects over the Unix socket (requires Options::uds_path).
  Result<std::unique_ptr<Client>> NewUdsClient(const LibFs::Options& options);

  TrustedFsService* tfs() { return tfs_.get(); }
  LockService* lock_service() { return locks_.get(); }
  ScmRegion* scm_region() { return region_.get(); }
  ScmManager* scm_manager() { return manager_.get(); }
  Volume* volume() { return volume_.get(); }
  RpcDispatcher* dispatcher() { return &dispatcher_; }
  uint64_t partition_offset() const { return partition_offset_; }

 private:
  AerieSystem() = default;

  Result<std::unique_ptr<Client>> FinishClient(
      std::unique_ptr<Transport> transport, const LibFs::Options& options);

  Options options_;
  std::unique_ptr<ScmRegion> region_;
  std::unique_ptr<ScmManager> manager_;
  std::unique_ptr<Volume> volume_;
  std::unique_ptr<LockService> locks_;
  std::unique_ptr<TrustedFsService> tfs_;
  RpcDispatcher dispatcher_;
  std::unique_ptr<UdsServer> uds_server_;
  uint64_t partition_offset_ = 0;
  std::atomic<uint64_t> next_inproc_client_{1000};
};

}  // namespace aerie

#endif  // AERIE_SRC_LIBFS_SYSTEM_H_
