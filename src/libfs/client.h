// libFS client runtime (paper §4.2, §5.3.5, §5.3.7).
//
// Each application links a LibFs instance per mounted file system. It owns:
//   * a read-only view of the volume (direct SCM access for lookups/reads);
//   * the lock clerk (global lock caching, hierarchical grants);
//   * the metadata batch: clients buffer MetaOps locally and ship them to
//     the TFS when the batch exceeds the threshold, when the application
//     syncs, or — crucially — whenever the clerk must give up a global lock
//     (delayed writes, paper §5.3.5);
//   * object pools: pre-allocated collections, mFiles and extents so create
//     and append paths never RPC synchronously (paper §5.3.7: pools of 1000).
//
// Interface layers (PXFS, FlatFS) sit on top of this class.
#ifndef AERIE_SRC_LIBFS_CLIENT_H_
#define AERIE_SRC_LIBFS_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <thread>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/lock/clerk.h"
#include "src/osd/mfile.h"
#include "src/osd/oid.h"
#include "src/osd/osd_context.h"
#include "src/osd/volume.h"
#include "src/rpc/transport.h"
#include "src/tfs/ops.h"

namespace aerie {

class LibFs {
 public:
  struct Options {
    uint64_t batch_max_bytes = 8ull << 20;  // paper: optimum batch ~8MB
    uint32_t pool_low_water = 16;
    uint32_t pool_refill = 1000;  // paper: pools of 1000 objects
    bool eager_ship = false;      // ship every op immediately (ablation)
    // Background shipping period (paper §5.3.5: clients send their buffered
    // updates "periodically (similar to delayed writes)"); the flusher also
    // wakes when the batch crosses batch_max_bytes, so foreground ops never
    // absorb a multi-megabyte apply pause. 0 disables the flusher (ships
    // synchronously at the threshold instead).
    uint64_t flush_interval_ms = 50;
    // Backpressure: once this many ops are buffered, producers ship inline
    // instead of racing ahead of the service. Bounds the storage "float"
    // (pool objects held by unapplied ops) when the client outruns the TFS.
    uint64_t max_pending_ops = 4096;
    LockClerk::Options clerk;
  };

  // `transport` carries both lock-service and TFS methods; it must outlive
  // the LibFs. The caller registers the returned clerk as the client's
  // RevocationSink with the in-process LockService (see AerieSystem).
  static Result<std::unique_ptr<LibFs>> Mount(Transport* transport,
                                              ScmRegion* region,
                                              uint64_t partition_offset,
                                              const Options& options);

  ~LibFs();
  LibFs(const LibFs&) = delete;
  LibFs& operator=(const LibFs&) = delete;

  uint64_t client_id() const { return transport_->client_id(); }
  LockClerk* clerk() { return clerk_.get(); }
  OsdContext read_context() { return volume_->context(); }
  ScmRegion* region() { return region_; }

  Oid pxfs_root() const { return pxfs_root_; }
  Oid flat_root() const { return flat_root_; }

  // --- Metadata batching ---
  // Buffers `op`; ships the batch if it crossed the threshold.
  Status LogOp(MetaOp op);
  // Buffers several ops under one lock (multi-extent writes).
  Status LogOps(std::vector<MetaOp> ops);
  // Ships all buffered ops now (the library's fsync-equivalent,
  // libfs_sync in the paper).
  Status Sync();
  // Ships the batch and releases every cached global lock.
  Status SyncAndReleaseLocks();

  uint64_t batches_shipped() const { return batches_shipped_.value(); }
  uint64_t ops_logged() const { return ops_logged_.value(); }
  uint64_t pending_ops() const;

  // Interface layers add hooks run whenever a global lock is released or
  // downgraded, receiving the lock id (PXFS flushes its name cache and sends
  // open-file notifications here, paper §6.1). Returns a token for
  // RemoveReleaseHook; the layer MUST remove its hook before it is destroyed.
  uint64_t AddReleaseHook(std::function<void(LockId)> hook);
  void RemoveReleaseHook(uint64_t token);

  // Crash-test hook: all future ships become no-ops, so buffered metadata
  // dies with the client exactly like a killed process's would.
  void AbandonForCrashTest() { abandoned_ = true; }

  // --- Pools (paper §5.3.7) ---
  // Takes one pre-allocated object, refilling over RPC when low. capacity
  // selects single-extent mFiles (FlatFS).
  Result<Oid> TakePooled(ObjType type, uint64_t capacity = 0);

  // --- Open-file notifications (paper §6.1) ---
  Status NotifyOpen(Oid file);
  Status NotifyClosed(Oid file);

  // --- Service-mediated data path (paper §5.3.3) ---
  Result<uint64_t> ServiceRead(Oid file, uint64_t offset, std::span<char> out);
  Status ServiceWrite(Oid file, uint64_t offset, std::span<const char> data);

  // --- Direct data path (DESIGN.md §10) ---
  // Process-wide gate: true unless AERIE_DIRECT is "off"/"0" (read once).
  static bool DirectEnabled();

  // A cached extent-map snapshot plus the clerk direct-access epoch it was
  // validated under. Interface layers fill one on the locked path (lock
  // held, so the snapshot is coherent) and later reuse it lock-free: pin
  // the clerk epoch, memcpy, unpin. `writable` records whether the snapshot
  // was validated with exclusive authority (required for WriteDirect).
  struct DirectMap {
    MFile::DirectExtentMap map;
    uint64_t epoch = 0;
    bool writable = false;
  };

  // Shared-lock lookup returning the cached snapshot (no deep copy), or
  // nullptr. A hit is only *usable* after clerk()->TryEnterDirect(epoch).
  std::shared_ptr<const DirectMap> LookupDirect(Oid file);
  // Inserts/replaces the snapshot for `file`. The cache is size-capped:
  // at the cap it is cleared wholesale (rebuilt on demand) rather than
  // growing without bound.
  void StoreDirect(Oid file, DirectMap map);
  // Drops one file's snapshot (any local structural change: attach,
  // set-size, truncate) or all of them (lock release hooks).
  void InvalidateDirect(Oid file);
  void ClearDirectCache();

  void CountDirectRead(uint64_t bytes) { direct_read_bytes_.Add(bytes); }
  void CountDirectWrite(uint64_t bytes) { direct_write_bytes_.Add(bytes); }
  void CountDirectFallback() { direct_fallbacks_.Add(1); }
  uint64_t direct_read_bytes() const { return direct_read_bytes_.value(); }
  uint64_t direct_write_bytes() const { return direct_write_bytes_.value(); }
  uint64_t direct_fallbacks() const { return direct_fallbacks_.value(); }
  uint64_t batches_ship_failed() const { return batches_ship_failed_.value(); }

 private:
  LibFs(Transport* transport, ScmRegion* region, Options options)
      : transport_(transport), region_(region), options_(options) {
    obs_registration_.AddAll(batches_shipped_, batches_ship_failed_,
                             ops_logged_, pool_takes_, pool_refills_,
                             direct_read_bytes_, direct_write_bytes_,
                             direct_fallbacks_, pending_ops_gauge_);
  }

  Status ShipBatchLocked(std::unique_lock<std::mutex>* lock);

  Transport* transport_;
  ScmRegion* region_;
  Options options_;
  std::unique_ptr<Volume> volume_;
  std::unique_ptr<RemoteLockService> lock_stub_;
  std::unique_ptr<LockClerk> clerk_;
  Oid pxfs_root_;
  Oid flat_root_;

  void FlusherLoop();

  std::atomic<bool> abandoned_{false};
  std::mutex batch_mu_;
  std::condition_variable flush_cv_;
  bool flusher_stop_ = false;
  std::thread flusher_;
  // Serializes batch shipment so concurrently-triggered ships (flusher vs
  // Sync vs release hook) cannot reorder ops at the server.
  std::mutex ship_mu_;
  std::vector<MetaOp> batch_;
  uint64_t batch_bytes_ = 0;
  // Batch statistics live in the obs registry for this mount's lifetime.
  obs::Counter batches_shipped_{"libfs.batch.shipped"};
  // Batches the TFS rejected outright. Never silent: acknowledged ops died
  // with the rejection, so telemetry must show it even when the shipper
  // (flusher, release hook) has no caller to report to.
  obs::Counter batches_ship_failed_{"libfs.batch.ship_failed"};
  obs::Counter ops_logged_{"libfs.batch.ops"};
  obs::Counter pool_takes_{"libfs.pool.take"};
  obs::Counter pool_refills_{"libfs.pool.refill"};
  obs::Counter direct_read_bytes_{"libfs.direct.read_bytes"};
  obs::Counter direct_write_bytes_{"libfs.direct.write_bytes"};
  obs::Counter direct_fallbacks_{"libfs.direct.fallback"};
  obs::Gauge pending_ops_gauge_{"libfs.batch.pending"};
  obs::ScopedRegistration obs_registration_;

  std::mutex hooks_mu_;
  uint64_t next_hook_token_ = 1;
  std::map<uint64_t, std::function<void(LockId)>> release_hooks_;

  std::mutex pool_mu_;
  // (type, capacity) -> available oids
  std::map<std::pair<uint8_t, uint64_t>, std::vector<Oid>> pools_;

  // Direct-path extent-map cache (oid offset -> snapshot). Read-mostly:
  // lookups take the lock shared and copy only the shared_ptr.
  static constexpr size_t kDirectCacheMax = 4096;
  mutable std::shared_mutex direct_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const DirectMap>> direct_maps_;
};

}  // namespace aerie

#endif  // AERIE_SRC_LIBFS_CLIENT_H_
