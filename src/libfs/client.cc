#include "src/libfs/client.h"

#include <cstdlib>
#include <cstring>
#include <string_view>

#include "src/common/check.h"
#include "src/obs/trace.h"
#include "src/rpc/wire.h"

namespace aerie {

Result<std::unique_ptr<LibFs>> LibFs::Mount(Transport* transport,
                                            ScmRegion* region,
                                            uint64_t partition_offset,
                                            const Options& options) {
  auto fs = std::unique_ptr<LibFs>(new LibFs(transport, region, options));

  auto volume = Volume::Open(region, partition_offset, /*writable=*/false);
  if (!volume.ok()) {
    return volume.status();
  }
  fs->volume_ = std::move(*volume);

  auto roots = transport->Call(kTfsRpcGetRoots, {});
  if (!roots.ok()) {
    return roots.status();
  }
  WireReader r(*roots);
  auto pxfs_root = r.ReadU64();
  auto flat_root = r.ReadU64();
  if (!pxfs_root.ok() || !flat_root.ok()) {
    return Status(ErrorCode::kUnavailable, "bad roots response");
  }
  fs->pxfs_root_ = Oid(*pxfs_root);
  fs->flat_root_ = Oid(*flat_root);

  fs->lock_stub_ = std::make_unique<RemoteLockService>(transport);
  fs->clerk_ =
      std::make_unique<LockClerk>(fs->lock_stub_.get(), options.clerk);

  // Ship buffered metadata before any global lock leaves this client: the
  // next holder must observe our updates (paper §5.3.5).
  LibFs* raw = fs.get();
  fs->clerk_->set_release_hook([raw](LockId id, LockMode) {
    (void)raw->Sync();
    std::lock_guard lock(raw->hooks_mu_);
    for (const auto& [token, hook] : raw->release_hooks_) {
      hook(id);
    }
  });
  if (options.flush_interval_ms != 0 && !options.eager_ship) {
    fs->flusher_ = std::thread([raw] { raw->FlusherLoop(); });
  }
  return fs;
}

void LibFs::FlusherLoop() {
  if (obs::SpansOn()) {
    obs::SetThreadTraceName("libfs.flusher");
  }
  std::unique_lock lock(batch_mu_);
  while (!flusher_stop_) {
    flush_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.flush_interval_ms));
    if (flusher_stop_) {
      break;
    }
    if (!batch_.empty()) {
      (void)ShipBatchLocked(&lock);
    }
  }
}

LibFs::~LibFs() {
  {
    std::lock_guard lock(batch_mu_);
    flusher_stop_ = true;
  }
  flush_cv_.notify_all();
  if (flusher_.joinable()) {
    flusher_.join();
  }
  // Best-effort final ship; lock teardown happens via clerk destructor.
  (void)Sync();
}

uint64_t LibFs::AddReleaseHook(std::function<void(LockId)> hook) {
  std::lock_guard lock(hooks_mu_);
  const uint64_t token = next_hook_token_++;
  release_hooks_[token] = std::move(hook);
  return token;
}

void LibFs::RemoveReleaseHook(uint64_t token) {
  std::lock_guard lock(hooks_mu_);
  release_hooks_.erase(token);
}

uint64_t LibFs::pending_ops() const {
  std::lock_guard lock(const_cast<std::mutex&>(batch_mu_));
  return batch_.size();
}

Status LibFs::LogOps(std::vector<MetaOp> ops) {
  std::unique_lock lock(batch_mu_);
  for (MetaOp& op : ops) {
    batch_bytes_ += 96 + op.name.size() + op.name2.size();
    batch_.push_back(std::move(op));
  }
  ops_logged_.Add(ops.size());
  pending_ops_gauge_.Set(static_cast<int64_t>(batch_.size()));
  if (batch_.size() >= options_.max_pending_ops) {
    return ShipBatchLocked(&lock);  // backpressure: producer pays the ship
  }
  if (batch_bytes_ >= options_.batch_max_bytes) {
    if (flusher_.joinable()) {
      flush_cv_.notify_all();  // background ship; don't stall the caller
      return OkStatus();
    }
    return ShipBatchLocked(&lock);
  }
  if (options_.eager_ship) {
    return ShipBatchLocked(&lock);
  }
  return OkStatus();
}

Status LibFs::LogOp(MetaOp op) {
  std::unique_lock lock(batch_mu_);
  // Rough wire size: fixed fields + names.
  batch_bytes_ += 96 + op.name.size() + op.name2.size();
  batch_.push_back(std::move(op));
  ops_logged_.Add(1);
  pending_ops_gauge_.Set(static_cast<int64_t>(batch_.size()));
  if (batch_.size() >= options_.max_pending_ops) {
    return ShipBatchLocked(&lock);  // backpressure: producer pays the ship
  }
  if (batch_bytes_ >= options_.batch_max_bytes) {
    if (flusher_.joinable()) {
      flush_cv_.notify_all();  // background ship; don't stall the caller
      return OkStatus();
    }
    return ShipBatchLocked(&lock);
  }
  if (options_.eager_ship) {
    return ShipBatchLocked(&lock);
  }
  return OkStatus();
}

Status LibFs::ShipBatchLocked(std::unique_lock<std::mutex>* lock) {
  if (abandoned_.load()) {
    return OkStatus();
  }
  // Ship order must equal logging order. ship_mu_ is taken BEFORE the
  // batch is swapped out, so a concurrent shipper (flusher vs Sync vs
  // release hook) cannot overtake an in-flight earlier batch. Lock order is
  // always ship_mu_ -> batch_mu_ here; callers drop batch_mu_ first.
  //
  // An empty batch must NOT return before taking ship_mu_: the clerk's
  // release hook calls Sync() to guarantee every op logged under the lock
  // being released has reached the server, and a concurrent shipper may
  // have swapped the batch out while its ApplyBatch RPC is still in
  // flight. Returning early would let the clerk release the global lock
  // while that RPC races it to the server, where validation then fails
  // with kPermissionDenied and acknowledged ops are lost.
  lock->unlock();
  Status result = OkStatus();
  {
    AERIE_SPAN("libfs", "ship_batch");
    // Batch-ship stall: contended ship_mu_ means this shipper is blocked
    // behind another batch's in-flight ApplyBatch — off-CPU time the
    // profiler charges to libfs.ship_batch as lock wait. Uncontended
    // acquisition stays on the try_lock fast path and records nothing.
    std::unique_lock<std::mutex> ship(ship_mu_, std::try_to_lock);
    if (!ship.owns_lock()) {
      obs::ScopedWait stalled(obs::WaitKind::kLock);
      ship.lock();
    }
    std::vector<MetaOp> ops;
    {
      std::lock_guard relock(batch_mu_);
      ops.swap(batch_);
      batch_bytes_ = 0;
      pending_ops_gauge_.Set(0);
    }
    if (!ops.empty()) {
      obs::TraceInstant("libfs.ship_batch.ops", ops.size());
      if (clerk_->lease_lost() || abandoned_.load()) {
        // The service already discarded our authority; these updates are
        // gone (paper §4.3: failed clients' updates are discarded).
        result =
            Status(ErrorCode::kLockRevoked, "lease lost; batch discarded");
      } else {
        const std::string blob = EncodeBatch(ops);
        result = transport_->Call(kTfsRpcApplyBatch, blob).status();
        if (result.ok()) {
          batches_shipped_.Add(1);
        } else {
          // A rejected batch means acknowledged metadata updates are gone.
          // Background shippers (flusher, release hook) have nobody to hand
          // the status to, so the loss must at least be visible here.
          batches_ship_failed_.Add(1);
          obs::TraceInstant("libfs.ship_batch.failed", ops.size());
        }
      }
    }
  }
  lock->lock();
  return result;
}

Status LibFs::Sync() {
  std::unique_lock lock(batch_mu_);
  return ShipBatchLocked(&lock);
}

// --- Direct data path (DESIGN.md §10) ---

bool LibFs::DirectEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("AERIE_DIRECT");
    if (v == nullptr) {
      return true;
    }
    return !(std::string_view(v) == "off" || std::string_view(v) == "0" ||
             std::string_view(v) == "false");
  }();
  return enabled;
}

std::shared_ptr<const LibFs::DirectMap> LibFs::LookupDirect(Oid file) {
  std::shared_lock lock(direct_mu_);
  auto it = direct_maps_.find(file.offset());
  return it == direct_maps_.end() ? nullptr : it->second;
}

void LibFs::StoreDirect(Oid file, DirectMap map) {
  std::unique_lock lock(direct_mu_);
  if (direct_maps_.size() >= kDirectCacheMax) {
    direct_maps_.clear();  // coarse cap: rebuilt on demand via slow paths
  }
  direct_maps_[file.offset()] =
      std::make_shared<const DirectMap>(std::move(map));
}

void LibFs::InvalidateDirect(Oid file) {
  std::unique_lock lock(direct_mu_);
  direct_maps_.erase(file.offset());
}

void LibFs::ClearDirectCache() {
  std::unique_lock lock(direct_mu_);
  direct_maps_.clear();
}

Status LibFs::SyncAndReleaseLocks() {
  AERIE_RETURN_IF_ERROR(Sync());
  clerk_->ReleaseAllGlobals();
  return OkStatus();
}

Result<Oid> LibFs::TakePooled(ObjType type, uint64_t capacity) {
  pool_takes_.Add(1);
  const auto key = std::make_pair(static_cast<uint8_t>(type), capacity);
  {
    std::lock_guard lock(pool_mu_);
    auto& pool = pools_[key];
    if (!pool.empty()) {
      Oid oid = pool.back();
      pool.pop_back();
      return oid;
    }
  }
  // Refill over RPC (paper: 1000 objects per refill keeps this rare).
  AERIE_SPAN("libfs", "pool_refill");
  pool_refills_.Add(1);
  WireBuffer req;
  req.AppendU8(static_cast<uint8_t>(type));
  req.AppendU32(options_.pool_refill);
  req.AppendU64(capacity);
  auto resp = transport_->Call(kTfsRpcPoolFill, req.data());
  if (!resp.ok()) {
    return resp.status();
  }
  WireReader r(*resp);
  auto count = r.ReadU32();
  if (!count.ok() || *count == 0) {
    return Status(ErrorCode::kOutOfSpace, "pool refill returned nothing");
  }
  std::lock_guard lock(pool_mu_);
  auto& pool = pools_[key];
  for (uint32_t i = 0; i < *count; ++i) {
    auto oid = r.ReadU64();
    if (!oid.ok()) {
      return Status(ErrorCode::kUnavailable, "bad pool response");
    }
    pool.push_back(Oid(*oid));
  }
  Oid oid = pool.back();
  pool.pop_back();
  return oid;
}

Status LibFs::NotifyOpen(Oid file) {
  WireBuffer req;
  req.AppendU64(file.raw());
  return transport_->Call(kTfsRpcNotifyOpen, req.data()).status();
}

Status LibFs::NotifyClosed(Oid file) {
  WireBuffer req;
  req.AppendU64(file.raw());
  return transport_->Call(kTfsRpcNotifyClosed, req.data()).status();
}

Result<uint64_t> LibFs::ServiceRead(Oid file, uint64_t offset,
                                    std::span<char> out) {
  WireBuffer req;
  req.AppendU64(file.raw());
  req.AppendU64(offset);
  req.AppendU32(static_cast<uint32_t>(out.size()));
  auto resp = transport_->Call(kTfsRpcServiceRead, req.data());
  if (!resp.ok()) {
    return resp.status();
  }
  const uint64_t n = std::min(out.size(), resp->size());
  std::memcpy(out.data(), resp->data(), n);
  return n;
}

Status LibFs::ServiceWrite(Oid file, uint64_t offset,
                           std::span<const char> data) {
  WireBuffer req;
  req.AppendU64(file.raw());
  req.AppendU64(offset);
  req.AppendString(std::string_view(data.data(), data.size()));
  return transport_->Call(kTfsRpcServiceWrite, req.data()).status();
}

}  // namespace aerie
