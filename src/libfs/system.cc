#include "src/libfs/system.h"

namespace aerie {

Result<std::unique_ptr<AerieSystem>> AerieSystem::Create(
    const Options& options) {
  auto sys = std::unique_ptr<AerieSystem>(new AerieSystem());
  sys->options_ = options;
  sys->locks_ = std::make_unique<LockService>(options.lock);

  // SCM region (paper: DRAM-emulated SCM, §7.1).
  auto region =
      options.region_path.empty()
          ? ScmRegion::CreateAnonymous(options.region_bytes)
          : ScmRegion::OpenFileBacked(options.region_path,
                                      options.region_bytes);
  if (!region.ok()) {
    return region.status();
  }
  sys->region_ = std::move(*region);
  sys->region_->latency_model().set_write_ns(options.scm_write_ns);

  if (options.fresh) {
    auto manager = ScmManager::Format(sys->region_.get(), options.scm);
    if (!manager.ok()) {
      return manager.status();
    }
    sys->manager_ = std::move(*manager);
    // One partition holding the whole file system (paper: 24GB partition).
    const uint64_t usable =
        sys->region_->size() - sys->manager_->data_start();
    auto part = sys->manager_->AllocatePartition(usable - kScmPageSize,
                                                 MakeAcl(0, 3));
    if (!part.ok()) {
      return part.status();
    }
    sys->partition_offset_ = part->offset;
    auto volume = Volume::Format(sys->region_.get(), part->offset,
                                 part->size, options.volume);
    if (!volume.ok()) {
      return volume.status();
    }
    sys->volume_ = std::move(*volume);
  } else {
    auto manager = ScmManager::Mount(sys->region_.get());
    if (!manager.ok()) {
      return manager.status();
    }
    sys->manager_ = std::move(*manager);
    auto parts = sys->manager_->ListPartitions();
    if (parts.empty()) {
      return Status(ErrorCode::kCorrupted, "no partitions to mount");
    }
    sys->partition_offset_ = parts[0].offset;
    auto volume = Volume::Open(sys->region_.get(), parts[0].offset,
                               /*writable=*/true);
    if (!volume.ok()) {
      return volume.status();
    }
    sys->volume_ = std::move(*volume);
  }

  sys->tfs_ = std::make_unique<TrustedFsService>(
      sys->volume_.get(), sys->locks_.get(), sys->manager_.get(), options.tfs);
  if (options.fresh) {
    AERIE_RETURN_IF_ERROR(sys->tfs_->Bootstrap());
  } else {
    AERIE_RETURN_IF_ERROR(sys->tfs_->Recover());
  }

  sys->locks_->RegisterRpc(&sys->dispatcher_);
  sys->tfs_->RegisterRpc(&sys->dispatcher_);

  if (!options.uds_path.empty()) {
    auto server = UdsServer::Start(options.uds_path, &sys->dispatcher_);
    if (!server.ok()) {
      return server.status();
    }
    sys->uds_server_ = std::move(*server);
  }
  return sys;
}

AerieSystem::~AerieSystem() {
  if (uds_server_) {
    uds_server_->Shutdown();
  }
}

Result<std::unique_ptr<AerieSystem::Client>> AerieSystem::FinishClient(
    std::unique_ptr<Transport> transport, const LibFs::Options& options) {
  auto client = std::unique_ptr<Client>(new Client());
  client->system_ = this;
  client->transport_ = std::move(transport);
  auto fs = LibFs::Mount(client->transport_.get(), region_.get(),
                         partition_offset_, options);
  if (!fs.ok()) {
    return fs.status();
  }
  client->fs_ = std::move(*fs);
  // In-address-space sink registration (revocation upcalls, see DESIGN.md).
  locks_->RegisterClient(client->id(), client->fs_->clerk());
  return client;
}

Result<std::unique_ptr<AerieSystem::Client>> AerieSystem::NewClient(
    const LibFs::Options& options) {
  auto transport = std::make_unique<InprocTransport>(
      &dispatcher_, next_inproc_client_.fetch_add(1), options_.rpc_delay_ns);
  return FinishClient(std::move(transport), options);
}

Result<std::unique_ptr<AerieSystem::Client>> AerieSystem::NewUdsClient(
    const LibFs::Options& options) {
  if (!uds_server_) {
    return Status(ErrorCode::kUnavailable, "no UDS server configured");
  }
  auto transport = UdsTransport::Connect(uds_server_->path());
  if (!transport.ok()) {
    return transport.status();
  }
  return FinishClient(std::move(*transport), options);
}

AerieSystem::Client::~Client() {
  if (system_ == nullptr) {
    return;
  }
  // Ship any tail batch while the session is still valid, then tear down.
  if (fs_) {
    (void)fs_->SyncAndReleaseLocks();
  }
  (void)system_->tfs()->ClientDisconnected(id());
  system_->lock_service()->UnregisterClient(id());
  fs_.reset();  // clerk (sink) destroyed after unregistration
}

}  // namespace aerie
