#include "src/flatfs/flatfs.h"

#include <cstring>

#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace aerie {

FlatFs::FlatFs(LibFs* fs, const Options& options)
    : fs_(fs),
      options_(options),
      ctx_(fs->read_context()),
      root_(fs->flat_root()) {
  hook_token_ = fs_->AddReleaseHook([this](LockId) {
    {
      std::lock_guard lock(overlay_mu_);
      pending_.clear();
    }
    // Cached value locations were validated under authority that is leaving
    // us; drop them (the departing epoch would force fallback anyway, and a
    // replaced value's storage may be recycled once the batch applies).
    std::unique_lock dlock(direct_mu_);
    direct_values_.clear();
  });
}

FlatFs::~FlatFs() { fs_->RemoveReleaseHook(hook_token_); }

Result<LockId> FlatFs::LockBucket(std::string_view key, bool write) {
  LockClerk* clerk = fs_->clerk();
  const LockId root_lock = root_.lock_id();
  for (int attempt = 0; attempt < 8; ++attempt) {
    AERIE_ASSIGN_OR_RETURN(Collection coll, Collection::Open(ctx_, root_));
    if (write && coll.GrowthImminent()) {
      // Rehash coming: take the single lock covering the whole collection
      // in write mode (paper §6.2).
      AERIE_RETURN_IF_ERROR(
          clerk->Acquire(root_lock, LockMode::kExclusiveHier));
      return root_lock;
    }
    AERIE_ASSIGN_OR_RETURN(Oid bucket, coll.BucketExtentForKey(key));
    // Intent lock on the collection, then the bucket-extent lock; the clerk
    // takes the intent lock as the "ancestor" of the bucket lock.
    const LockId ancestors[] = {root_lock};
    AERIE_RETURN_IF_ERROR(clerk->Acquire(
        bucket.lock_id(),
        write ? LockMode::kExclusive : LockMode::kShared, ancestors));
    // A rehash may have moved the key between the hash computation and the
    // grant; re-check and retry.
    auto recheck = coll.BucketExtentForKey(key);
    if (recheck.ok() && *recheck == bucket) {
      return bucket.lock_id();
    }
    clerk->Release(bucket.lock_id());
  }
  return Status(ErrorCode::kLockConflict, "bucket kept moving under rehash");
}

Result<std::pair<Oid, uint64_t>> FlatFs::Find(const Collection& coll,
                                              std::string_view key) {
  {
    std::lock_guard lock(overlay_mu_);
    auto it = pending_.find(std::string(key));
    if (it != pending_.end()) {
      if (it->second.erased) {
        return Status(ErrorCode::kNotFound, "erased");
      }
      return std::make_pair(Oid(it->second.oid_raw), it->second.size);
    }
  }
  auto value = coll.Lookup(key);
  if (!value.ok()) {
    return value.status();
  }
  const Oid oid(*value);
  auto mfile = MFile::Open(ctx_, oid);
  if (!mfile.ok()) {
    return mfile.status();
  }
  return std::make_pair(oid, mfile->size());
}

// --- Direct data path (DESIGN.md §10) ---------------------------------------

bool FlatFs::TryDirectGet(std::string_view key, std::span<char> out,
                          uint64_t* n) {
  if (!DirectUsable()) {
    return false;
  }
  DirectValue v;
  {
    std::shared_lock lock(direct_mu_);
    auto it = direct_values_.find(std::string(key));
    if (it == direct_values_.end()) {
      return false;
    }
    v = it->second;
  }
  LockClerk* clerk = fs_->clerk();
  if (!clerk->TryEnterDirect(v.epoch)) {
    fs_->CountDirectFallback();
    return false;
  }
  const uint64_t copied = std::min<uint64_t>(out.size(), v.size);
  std::memcpy(out.data(), ctx_.region->PtrAt(v.extent), copied);
  clerk->ExitDirect();
  fs_->CountDirectRead(copied);
  *n = copied;
  return true;
}

void FlatFs::StoreDirectValue(std::string_view key, LockId lock, Oid file,
                              uint64_t size) {
  if (!DirectUsable()) {
    return;
  }
  auto epoch = fs_->clerk()->DirectGrant(lock, LockMode::kShared);
  if (!epoch.ok()) {
    return;
  }
  auto mfile = MFile::Open(ctx_, file);
  if (!mfile.ok()) {
    return;
  }
  auto extent = mfile->ExtentForPage(0);
  if (!extent.ok()) {
    return;
  }
  std::unique_lock dlock(direct_mu_);
  if (direct_values_.size() >= kDirectValuesMax) {
    direct_values_.clear();
  }
  direct_values_[std::string(key)] = DirectValue{*extent, size, *epoch};
}

void FlatFs::InvalidateDirectValue(std::string_view key) {
  std::unique_lock dlock(direct_mu_);
  direct_values_.erase(std::string(key));
}

Status FlatFs::Put(std::string_view key, std::span<const char> data) {
  AERIE_SPAN("flatfs", "put");
  AERIE_SCM_LAYER("flatfs");
  obs::TraceInstant("flatfs.put.bytes", data.size());
  if (key.empty() || key.size() > Collection::kMaxKeyLen) {
    return Status(ErrorCode::kInvalidArgument, "bad key");
  }
  if (data.size() > options_.file_capacity) {
    return Status(ErrorCode::kOutOfSpace, "value exceeds file capacity");
  }
  // Take a pre-allocated single-extent file and fill it directly: the whole
  // put is one memcpy plus one logged op (paper §7.3.2).
  AERIE_ASSIGN_OR_RETURN(
      Oid file, fs_->TakePooled(ObjType::kMFile, options_.file_capacity));
  AERIE_ASSIGN_OR_RETURN(MFile mfile, MFile::Open(ctx_, file));
  AERIE_RETURN_IF_ERROR(mfile.WriteInPlace(0, data));
  if (options_.flush_data_on_write) {
    ctx_.region->BFlush();
  }

  AERIE_ASSIGN_OR_RETURN(LockId lock, LockBucket(key, /*write=*/true));
  MetaOp op;
  op.type = MetaOpType::kFlatPut;
  op.authority = fs_->clerk()->GlobalAuthorityOf(lock);
  op.dir = root_;
  op.name = std::string(key);
  op.obj = file;
  op.a = data.size();
  Status st = fs_->LogOp(std::move(op));
  if (st.ok()) {
    AERIE_COUNT_N("flatfs.api.logical_write_bytes", data.size());
    {
      std::lock_guard guard(overlay_mu_);
      pending_[std::string(key)] =
          PendingEntry{file.raw(), data.size(), false};
    }
    // The key now points at a new file; re-cache eagerly while the bucket
    // lock is held so read-after-write stays on the direct path.
    InvalidateDirectValue(key);
    StoreDirectValue(key, lock, file, data.size());
  }
  fs_->clerk()->Release(lock);
  return st;
}

Result<uint64_t> FlatFs::Get(std::string_view key, std::span<char> out) {
  AERIE_SPAN("flatfs", "get");
  uint64_t direct_n = 0;
  if (TryDirectGet(key, out, &direct_n)) {
    return direct_n;
  }
  AERIE_ASSIGN_OR_RETURN(LockId lock, LockBucket(key, /*write=*/false));
  Status st = OkStatus();
  uint64_t copied = 0;
  {
    auto coll = Collection::Open(ctx_, root_);
    if (!coll.ok()) {
      st = coll.status();
    } else {
      auto found = Find(*coll, key);
      if (!found.ok()) {
        st = found.status();
      } else {
        // Locate the file in memory and copy it to the application buffer
        // in one step (paper §7.3.2).
        auto mfile = MFile::Open(ctx_, found->first);
        if (!mfile.ok()) {
          st = mfile.status();
        } else {
          const uint64_t want =
              std::min<uint64_t>(out.size(), found->second);
          auto n = mfile->Read(0, out.subspan(0, want));
          if (!n.ok()) {
            st = n.status();
          } else {
            copied = std::min<uint64_t>(want, found->second);
            if (*n < copied) {
              // Size is pending (batched SetSize): bytes live in the extent
              // already; copy directly.
              auto extent = mfile->ExtentForPage(0);
              if (extent.ok()) {
                std::memcpy(out.data(), ctx_.region->PtrAt(*extent), copied);
              } else {
                copied = *n;
              }
            }
            StoreDirectValue(key, lock, found->first, found->second);
          }
        }
      }
    }
  }
  fs_->clerk()->Release(lock);
  if (!st.ok()) {
    return st;
  }
  return copied;
}

Result<std::string> FlatFs::Get(std::string_view key) {
  std::string out(options_.file_capacity, '\0');
  auto n = Get(key, std::span<char>(out.data(), out.size()));
  if (!n.ok()) {
    return n.status();
  }
  out.resize(*n);
  return out;
}

Status FlatFs::Erase(std::string_view key) {
  AERIE_SPAN("flatfs", "erase");
  AERIE_ASSIGN_OR_RETURN(LockId lock, LockBucket(key, /*write=*/true));
  Status st = OkStatus();
  {
    auto coll = Collection::Open(ctx_, root_);
    if (!coll.ok()) {
      st = coll.status();
    } else {
      auto found = Find(*coll, key);
      if (!found.ok()) {
        st = found.status();
      } else {
        MetaOp op;
        op.type = MetaOpType::kFlatErase;
        op.authority = fs_->clerk()->GlobalAuthorityOf(lock);
        op.dir = root_;
        op.name = std::string(key);
        st = fs_->LogOp(std::move(op));
        if (st.ok()) {
          {
            std::lock_guard guard(overlay_mu_);
            pending_[std::string(key)] = PendingEntry{0, 0, true};
          }
          InvalidateDirectValue(key);
        }
      }
    }
  }
  fs_->clerk()->Release(lock);
  return st;
}

Result<bool> FlatFs::Exists(std::string_view key) {
  AERIE_SPAN("flatfs", "exists");
  AERIE_ASSIGN_OR_RETURN(LockId lock, LockBucket(key, /*write=*/false));
  bool exists = false;
  Status st = OkStatus();
  {
    auto coll = Collection::Open(ctx_, root_);
    if (!coll.ok()) {
      st = coll.status();
    } else {
      auto found = Find(*coll, key);
      if (found.ok()) {
        exists = true;
      } else if (found.status().code() != ErrorCode::kNotFound) {
        st = found.status();
      }
    }
  }
  fs_->clerk()->Release(lock);
  if (!st.ok()) {
    return st;
  }
  return exists;
}

Status FlatFs::Scan(const std::function<bool(std::string_view)>& visit) {
  AERIE_SPAN("flatfs", "scan");
  LockClerk* clerk = fs_->clerk();
  AERIE_RETURN_IF_ERROR(
      clerk->Acquire(root_.lock_id(), LockMode::kSharedHier));
  Status st = OkStatus();
  std::set<std::string> keys;
  {
    auto coll = Collection::Open(ctx_, root_);
    if (!coll.ok()) {
      st = coll.status();
    } else {
      st = coll->Scan([&](std::string_view key, uint64_t) {
        keys.insert(std::string(key));
        return true;
      });
    }
  }
  clerk->Release(root_.lock_id());
  AERIE_RETURN_IF_ERROR(st);
  {
    std::lock_guard lock(overlay_mu_);
    for (const auto& [key, entry] : pending_) {
      if (entry.erased) {
        keys.erase(key);
      } else {
        keys.insert(key);
      }
    }
  }
  for (const auto& key : keys) {
    if (!visit(key)) {
      break;
    }
  }
  return OkStatus();
}

Status FlatFs::Sync() { return fs_->Sync(); }

}  // namespace aerie
