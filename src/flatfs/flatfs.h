// FlatFS: key/value file interface over Aerie (paper §6.2).
//
// A specialized interface for applications that store many small files in a
// single directory (mail stores, wikis, proxy caches). Compared to PXFS:
//   * files are single-extent mFiles with a known maximum size, so a get or
//     put is one memcpy — no radix tree, no per-open state;
//   * the namespace is one flat collection keyed by arbitrary byte strings —
//     no hierarchical path resolution, no name cache needed;
//   * all files share the collection's permissions — no per-file metadata;
//   * scalable concurrency: operations take the collection lock in intent
//     mode and a fine-grained lock on the *bucket extent* the key hashes to;
//     only a table rehash takes the whole-collection write lock.
//
// FlatFS and PXFS share the same volume layout and the same TFS; an
// application can reach the same files through either interface.
#ifndef AERIE_SRC_FLATFS_FLATFS_H_
#define AERIE_SRC_FLATFS_FLATFS_H_

#include <functional>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/common/status.h"
#include "src/libfs/client.h"
#include "src/osd/collection.h"
#include "src/osd/mfile.h"

namespace aerie {

class FlatFs {
 public:
  struct Options {
    // Fixed capacity of every file (paper: "small files with a known
    // maximum size"). Puts larger than this fail kOutOfSpace.
    uint64_t file_capacity = 64 << 10;
    bool flush_data_on_write = true;
    // Direct data path (DESIGN.md §10): gets served from a cached value
    // location under the clerk's direct-access epoch, skipping the bucket
    // lock + collection lookup. Also gated by AERIE_DIRECT.
    bool direct_data = true;
  };

  FlatFs(LibFs* fs, const Options& options);
  explicit FlatFs(LibFs* fs) : FlatFs(fs, Options{}) {}
  ~FlatFs();

  FlatFs(const FlatFs&) = delete;
  FlatFs& operator=(const FlatFs&) = delete;

  // Stores `data` under `key` (creates or replaces). One operation: no
  // open/write/close sequence (paper §7.3.2).
  Status Put(std::string_view key, std::span<const char> data);

  // Reads the value into `out`; returns bytes copied. kNotFound if absent.
  Result<uint64_t> Get(std::string_view key, std::span<char> out);
  // Convenience allocation-returning form.
  Result<std::string> Get(std::string_view key);

  Status Erase(std::string_view key);
  Result<bool> Exists(std::string_view key);

  // Visits every key (no value copy). Takes the collection read lock.
  Status Scan(const std::function<bool(std::string_view)>& visit);

  // Ships batched metadata (put/erase become visible to other clients).
  Status Sync();

  uint64_t file_capacity() const { return options_.file_capacity; }

 private:
  struct PendingEntry {
    uint64_t oid_raw;
    uint64_t size;
    bool erased;
  };

  // Acquires the lock covering `key`'s bucket (plus the intent lock on the
  // collection); escalates to the whole-collection lock when a rehash is
  // imminent. Returns the lock id acquired.
  Result<LockId> LockBucket(std::string_view key, bool write);

  Result<std::pair<Oid, uint64_t>> Find(const Collection& coll,
                                        std::string_view key);

  // --- Direct data path (DESIGN.md §10) ---
  // Values are single extents, so a direct get is one epoch-pinned memcpy
  // from the cached extent base. Cached under the bucket lock; any revoke
  // anywhere bumps the epoch and forces the locked path.
  struct DirectValue {
    uint64_t extent = 0;  // region offset of the value bytes
    uint64_t size = 0;
    uint64_t epoch = 0;
  };
  static constexpr size_t kDirectValuesMax = 1 << 16;

  bool DirectUsable() const {
    return options_.direct_data && LibFs::DirectEnabled();
  }
  bool TryDirectGet(std::string_view key, std::span<char> out, uint64_t* n);
  // Caller holds `lock` (the bucket or collection lock covering `key`).
  void StoreDirectValue(std::string_view key, LockId lock, Oid file,
                        uint64_t size);
  void InvalidateDirectValue(std::string_view key);

  LibFs* fs_;
  Options options_;
  OsdContext ctx_;
  Oid root_;
  uint64_t hook_token_ = 0;

  std::mutex overlay_mu_;
  std::unordered_map<std::string, PendingEntry> pending_;

  std::shared_mutex direct_mu_;
  std::unordered_map<std::string, DirectValue> direct_values_;
};

}  // namespace aerie

#endif  // AERIE_SRC_FLATFS_FLATFS_H_
