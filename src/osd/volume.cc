#include "src/osd/volume.h"

#include <cstring>

namespace aerie {

namespace {

constexpr uint64_t kFsMagic = 0x4145524945465331ULL;  // "AERIEFS1"

struct FsSuperRep {
  uint64_t magic;
  uint64_t version;
  uint64_t root_oid;
  uint64_t log_offset;
  uint64_t log_bytes;
  uint64_t bitmap_offset;
  uint64_t data_start;
  uint64_t page_count;
};

uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) & ~(a - 1); }

FsSuperRep* SuperAt(ScmRegion* region, uint64_t partition_offset) {
  return reinterpret_cast<FsSuperRep*>(region->PtrAt(partition_offset));
}

}  // namespace

Result<std::unique_ptr<Volume>> Volume::Format(ScmRegion* region,
                                               uint64_t partition_offset,
                                               uint64_t partition_size,
                                               const Options& options) {
  AERIE_SCM_LAYER("osd");
  const uint64_t log_offset = AlignUp(
      partition_offset + sizeof(FsSuperRep), kScmPageSize);
  const uint64_t bitmap_offset =
      AlignUp(log_offset + options.log_bytes, kScmPageSize);

  if (bitmap_offset + kScmPageSize >= partition_offset + partition_size) {
    return Status(ErrorCode::kOutOfSpace, "partition too small for a volume");
  }
  // Solve for the data area: bitmap needs 1 bit per page.
  const uint64_t after_bitmap_budget =
      partition_offset + partition_size - bitmap_offset;
  // pages * 4096 + pages/8 <= budget  =>  pages <= budget / (4096 + 1/8)
  uint64_t page_count =
      (after_bitmap_budget * 8) / (8 * kScmPageSize + 1);
  if (page_count < 16) {
    return Status(ErrorCode::kOutOfSpace, "partition too small for a volume");
  }
  const uint64_t data_start = AlignUp(
      bitmap_offset + BuddyAllocator::BitmapBytes(page_count), kScmPageSize);
  // Alignment may have eaten into the last page.
  while (data_start + page_count * kScmPageSize >
         partition_offset + partition_size) {
    page_count--;
  }

  FsSuperRep* sb = SuperAt(region, partition_offset);
  std::memset(sb, 0, sizeof(*sb));
  sb->version = 1;
  sb->log_offset = log_offset;
  sb->log_bytes = options.log_bytes;
  sb->bitmap_offset = bitmap_offset;
  sb->data_start = data_start;
  sb->page_count = page_count;
  region->WlFlush(sb, sizeof(*sb));
  region->Fence();

  auto vol = std::unique_ptr<Volume>(new Volume(region, partition_offset));
  auto log = RedoLog::Format(region, log_offset, options.log_bytes);
  if (!log.ok()) {
    return log.status();
  }
  vol->log_.emplace(std::move(*log));
  auto alloc = BuddyAllocator::Create(region, bitmap_offset, data_start,
                                      page_count, /*fresh=*/true);
  if (!alloc.ok()) {
    return alloc.status();
  }
  vol->allocator_ = std::move(*alloc);

  region->PersistU64(&sb->magic, kFsMagic);
  return vol;
}

Result<std::unique_ptr<Volume>> Volume::Open(ScmRegion* region,
                                             uint64_t partition_offset,
                                             bool writable) {
  FsSuperRep* sb = SuperAt(region, partition_offset);
  if (sb->magic != kFsMagic || sb->version != 1) {
    return Status(ErrorCode::kCorrupted, "bad volume superblock");
  }
  auto vol = std::unique_ptr<Volume>(new Volume(region, partition_offset));
  if (writable) {
    auto log = RedoLog::Open(region, sb->log_offset);
    if (!log.ok()) {
      return log.status();
    }
    vol->log_.emplace(std::move(*log));
    auto alloc =
        BuddyAllocator::Create(region, sb->bitmap_offset, sb->data_start,
                               sb->page_count, /*fresh=*/false);
    if (!alloc.ok()) {
      return alloc.status();
    }
    vol->allocator_ = std::move(*alloc);
  }
  return vol;
}

Oid Volume::root_oid() const {
  return Oid(SuperAt(region_, partition_offset_)->root_oid);
}

void Volume::SetRootOid(Oid oid) {
  AERIE_SCM_LAYER("osd");
  region_->PersistU64(&SuperAt(region_, partition_offset_)->root_oid,
                      oid.raw());
}

}  // namespace aerie
