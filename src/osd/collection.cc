#include "src/osd/collection.h"

#include <cstring>
#include <set>

#include "src/common/check.h"
#include "src/common/hash.h"

namespace aerie {

namespace {

constexpr uint64_t kCollectionMagic = 0x41455249450c0001ULL;

// Head extent (one 4KB page).
struct HeaderRep {
  uint64_t magic;
  uint64_t table_ptr;   // region offset of TableRep; atomic swing point
  uint64_t acl;
  uint64_t live_count;  // persistent hints (heuristics only)
  uint64_t tomb_count;
  uint64_t parent_oid;  // containing directory (rename cycle validation)
  uint64_t link_count;  // collection-membership count (paper §5.3.4)
};

// Bucket table block: nbuckets + extent pointer array.
struct TableRep {
  uint64_t nbuckets;       // power of two
  uint64_t extent_count;   // bucket extents
  uint64_t extent_ptr[];   // extent_count entries
};

constexpr uint64_t kBucketSize = 512;
constexpr uint64_t kBucketsPerExtent = kScmPageSize / kBucketSize;  // 8
constexpr uint64_t kInitialBuckets = 8;
constexpr double kMaxLoad = 8.0;        // avg entries per bucket before grow
constexpr double kTombCompactRatio = 0.25;

// Bucket layout: one commit word, then packed entries.
struct BucketRep {
  uint64_t committed;  // bytes of published entries in data[]
  char data[kBucketSize - sizeof(uint64_t)];
};
constexpr uint64_t kBucketDataBytes = kBucketSize - sizeof(uint64_t);

// Entry layout (8-byte aligned):
//   word0: key_len (low 32) | flags (high 32); flag bit 0 = tombstone
//   word1: value
//   key bytes, padded to 8.
constexpr uint64_t kTombstoneFlag = 1ULL << 32;

uint64_t EntryBytes(size_t key_len) {
  return 16 + ((key_len + 7) & ~7ULL);
}

uint32_t EntryKeyLen(uint64_t word0) {
  return static_cast<uint32_t>(word0 & 0xffffffffULL);
}
bool EntryIsTombstone(uint64_t word0) {
  return (word0 & kTombstoneFlag) != 0;
}

}  // namespace

// --- helpers bound to an open collection ---

namespace {

HeaderRep* HeaderAt(const OsdContext& ctx, Oid oid) {
  return reinterpret_cast<HeaderRep*>(ctx.region->PtrAt(oid.offset()));
}

TableRep* TableAt(const OsdContext& ctx, const HeaderRep* hdr) {
  return reinterpret_cast<TableRep*>(ctx.region->PtrAt(hdr->table_ptr));
}

BucketRep* BucketAt(const OsdContext& ctx, const TableRep* table,
                    uint64_t bucket_index) {
  const uint64_t extent = bucket_index / kBucketsPerExtent;
  const uint64_t within = bucket_index % kBucketsPerExtent;
  return reinterpret_cast<BucketRep*>(
      ctx.region->PtrAt(table->extent_ptr[extent]) + within * kBucketSize);
}

uint64_t BucketIndexFor(const TableRep* table, std::string_view key) {
  return HashString(key) & (table->nbuckets - 1);
}

// Bytes needed for a TableRep with `nbuckets`.
uint64_t TableBytes(uint64_t nbuckets) {
  const uint64_t extents = nbuckets / kBucketsPerExtent;
  return sizeof(TableRep) + extents * sizeof(uint64_t);
}

// Allocates and zero-fills a table block plus its bucket extents. Returns
// the table's region offset. All writes flushed; not yet linked anywhere.
Result<uint64_t> BuildEmptyTable(const OsdContext& ctx, uint64_t nbuckets) {
  AERIE_CHECK(nbuckets % kBucketsPerExtent == 0);
  auto table_off = ctx.alloc->AllocBytes(TableBytes(nbuckets));
  if (!table_off.ok()) {
    return table_off.status();
  }
  auto* table = reinterpret_cast<TableRep*>(ctx.region->PtrAt(*table_off));
  table->nbuckets = nbuckets;
  table->extent_count = nbuckets / kBucketsPerExtent;
  for (uint64_t i = 0; i < table->extent_count; ++i) {
    auto ext = ctx.alloc->Alloc(0);  // one page
    if (!ext.ok()) {
      return ext.status();
    }
    std::memset(ctx.region->PtrAt(*ext), 0, kScmPageSize);
    ctx.region->WlFlush(ctx.region->PtrAt(*ext), kScmPageSize);
    table->extent_ptr[i] = *ext;
  }
  ctx.region->WlFlush(table, TableBytes(nbuckets));
  ctx.region->Fence();
  return *table_off;
}

void FreeTable(const OsdContext& ctx, uint64_t table_off) {
  auto* table = reinterpret_cast<TableRep*>(ctx.region->PtrAt(table_off));
  for (uint64_t i = 0; i < table->extent_count; ++i) {
    (void)ctx.alloc->Free(table->extent_ptr[i], 0);
  }
  (void)ctx.alloc->FreeBytes(table_off, TableBytes(table->nbuckets));
}

// Appends an entry to a bucket without the publish step; returns false if it
// does not fit. Used by rehash (bulk build) and by InsertIntoBucket.
bool AppendEntryRaw(const OsdContext& ctx, BucketRep* bucket,
                    std::string_view key, uint64_t value, bool publish) {
  const uint64_t need = EntryBytes(key.size());
  if (bucket->committed + need > kBucketDataBytes) {
    return false;
  }
  char* at = bucket->data + bucket->committed;
  const uint64_t word0 = key.size();
  std::memcpy(at, &word0, 8);
  std::memcpy(at + 8, &value, 8);
  std::memcpy(at + 16, key.data(), key.size());
  if (publish) {
    ctx.region->WlFlush(at, need);
    ctx.region->Fence();
    ctx.region->PersistU64(&bucket->committed, bucket->committed + need);
  } else {
    bucket->committed += need;
  }
  return true;
}

}  // namespace

Result<Collection> Collection::Create(const OsdContext& ctx, uint32_t acl) {
  AERIE_SCM_LAYER("osd");
  if (!ctx.can_allocate()) {
    return Status(ErrorCode::kPermissionDenied,
                  "collection creation requires the allocator");
  }
  auto head = ctx.alloc->Alloc(0);
  if (!head.ok()) {
    return head.status();
  }
  auto table = BuildEmptyTable(ctx, kInitialBuckets);
  if (!table.ok()) {
    return table.status();
  }
  auto* hdr = reinterpret_cast<HeaderRep*>(ctx.region->PtrAt(*head));
  std::memset(hdr, 0, sizeof(*hdr));
  hdr->table_ptr = *table;
  hdr->acl = acl;
  ctx.region->WlFlush(hdr, sizeof(*hdr));
  ctx.region->Fence();
  ctx.region->PersistU64(&hdr->magic, kCollectionMagic);
  return Collection(ctx, Oid::Make(ObjType::kCollection, *head));
}

Result<Collection> Collection::Open(const OsdContext& ctx, Oid oid) {
  if (oid.type() != ObjType::kCollection) {
    return Status(ErrorCode::kInvalidArgument, "oid is not a collection");
  }
  if (oid.offset() + sizeof(HeaderRep) > ctx.region->size()) {
    return Status(ErrorCode::kInvalidArgument, "oid out of range");
  }
  if (HeaderAt(ctx, oid)->magic != kCollectionMagic) {
    return Status(ErrorCode::kCorrupted, "bad collection magic");
  }
  return Collection(ctx, oid);
}

uint32_t Collection::acl() const {
  return static_cast<uint32_t>(HeaderAt(ctx_, oid_)->acl);
}

void Collection::SetAcl(uint32_t new_acl) {
  AERIE_SCM_LAYER("osd");
  ctx_.region->PersistU64(&HeaderAt(ctx_, oid_)->acl, new_acl);
}

Oid Collection::parent_oid() const {
  return Oid(HeaderAt(ctx_, oid_)->parent_oid);
}

void Collection::SetParentOid(Oid parent) {
  AERIE_SCM_LAYER("osd");
  ctx_.region->PersistU64(&HeaderAt(ctx_, oid_)->parent_oid, parent.raw());
}

uint64_t Collection::link_count() const {
  return HeaderAt(ctx_, oid_)->link_count;
}

void Collection::SetLinkCount(uint64_t n) {
  AERIE_SCM_LAYER("osd");
  ctx_.region->PersistU64(&HeaderAt(ctx_, oid_)->link_count, n);
}

uint64_t Collection::size() const { return HeaderAt(ctx_, oid_)->live_count; }
uint64_t Collection::tombstones() const {
  return HeaderAt(ctx_, oid_)->tomb_count;
}
uint64_t Collection::nbuckets() const {
  return TableAt(ctx_, HeaderAt(ctx_, oid_))->nbuckets;
}

void Collection::BumpCounts(int64_t live_delta, int64_t tomb_delta) {
  AERIE_SCM_LAYER("osd");
  HeaderRep* hdr = HeaderAt(ctx_, oid_);
  if (live_delta != 0) {
    ctx_.region->PersistU64(
        &hdr->live_count,
        hdr->live_count + static_cast<uint64_t>(live_delta));
  }
  if (tomb_delta != 0) {
    ctx_.region->PersistU64(
        &hdr->tomb_count,
        hdr->tomb_count + static_cast<uint64_t>(tomb_delta));
  }
}

Result<Collection::EntryRef> Collection::FindLive(std::string_view key) const {
  const HeaderRep* hdr = HeaderAt(ctx_, oid_);
  const TableRep* table = TableAt(ctx_, hdr);
  const uint64_t index = BucketIndexFor(table, key);
  const BucketRep* bucket = BucketAt(ctx_, table, index);

  uint64_t pos = 0;
  const uint64_t committed = bucket->committed;
  while (pos + 16 <= committed) {
    uint64_t word0;
    std::memcpy(&word0, bucket->data + pos, 8);
    const uint32_t key_len = EntryKeyLen(word0);
    const uint64_t entry_size = EntryBytes(key_len);
    if (pos + entry_size > committed) {
      return Status(ErrorCode::kCorrupted, "entry exceeds committed bytes");
    }
    if (!EntryIsTombstone(word0) && key_len == key.size() &&
        std::memcmp(bucket->data + pos + 16, key.data(), key_len) == 0) {
      EntryRef ref;
      ref.extent_offset = table->extent_ptr[index / kBucketsPerExtent];
      ref.bucket_in_extent = static_cast<uint32_t>(index % kBucketsPerExtent);
      ref.entry_offset = static_cast<uint32_t>(pos);
      return ref;
    }
    pos += entry_size;
  }
  return Status(ErrorCode::kNotFound, "key not found");
}

Result<uint64_t> Collection::Lookup(std::string_view key) const {
  auto ref = FindLive(key);
  if (!ref.ok()) {
    return ref.status();
  }
  const auto* bucket = reinterpret_cast<const BucketRep*>(
      ctx_.region->PtrAt(ref->extent_offset) +
      ref->bucket_in_extent * kBucketSize);
  uint64_t value;
  std::memcpy(&value, bucket->data + ref->entry_offset + 8, 8);
  return value;
}

Status Collection::InsertIntoBucket(std::string_view key, uint64_t value,
                                    bool* reused_tombstone) {
  AERIE_SCM_LAYER("osd");
  *reused_tombstone = false;
  HeaderRep* hdr = HeaderAt(ctx_, oid_);
  TableRep* table = TableAt(ctx_, hdr);
  BucketRep* bucket = BucketAt(ctx_, table, BucketIndexFor(table, key));

  // Recycle a tombstoned slot whose key length matches: the slot is dead to
  // readers until word0 is rewritten, so the value and key bytes can be
  // staged in place and published with one atomic store — the same commit
  // discipline as an append. This keeps erase+insert churn on a hot key
  // (e.g. a FlatFS log object rewritten per append) from ever filling the
  // bucket with tombstones.
  uint64_t pos = 0;
  const uint64_t committed = bucket->committed;
  while (pos + 16 <= committed) {
    uint64_t word0;
    std::memcpy(&word0, bucket->data + pos, 8);
    const uint32_t key_len = EntryKeyLen(word0);
    const uint64_t entry_size = EntryBytes(key_len);
    if (pos + entry_size > committed) {
      return Status(ErrorCode::kCorrupted, "entry exceeds committed bytes");
    }
    if (EntryIsTombstone(word0) && key_len == key.size()) {
      char* at = bucket->data + pos;
      std::memcpy(at + 8, &value, 8);
      std::memcpy(at + 16, key.data(), key.size());
      ctx_.region->WlFlush(at + 8, entry_size - 8);
      ctx_.region->Fence();
      const uint64_t live_word0 = key.size();  // clears the tombstone flag
      ctx_.region->PersistU64(reinterpret_cast<uint64_t*>(at), live_word0);
      *reused_tombstone = true;
      return OkStatus();
    }
    pos += entry_size;
  }

  if (!AppendEntryRaw(ctx_, bucket, key, value, /*publish=*/true)) {
    return Status(ErrorCode::kOutOfSpace, "bucket full");
  }
  return OkStatus();
}

Status Collection::Insert(std::string_view key, uint64_t value) {
  AERIE_SCM_LAYER("osd");
  if (key.empty() || key.size() > kMaxKeyLen) {
    return Status(ErrorCode::kInvalidArgument, "bad key length");
  }
  if (!ctx_.can_allocate()) {
    return Status(ErrorCode::kPermissionDenied,
                  "collection mutation requires the allocator");
  }
  if (FindLive(key).ok()) {
    return Status(ErrorCode::kAlreadyExists, "key exists");
  }

  HeaderRep* hdr = HeaderAt(ctx_, oid_);
  const TableRep* table = TableAt(ctx_, hdr);
  // Grow when average load is high.
  if (hdr->live_count + 1 >
      static_cast<uint64_t>(kMaxLoad * static_cast<double>(table->nbuckets))) {
    AERIE_RETURN_IF_ERROR(Rehash(table->nbuckets * 2));
  }

  bool reused = false;
  Status st = InsertIntoBucket(key, value, &reused);
  if (st.code() == ErrorCode::kOutOfSpace) {
    // Bucket overflow. Compact at the current size first — overflow is
    // usually tombstone buildup in one hot bucket, not table-wide load —
    // and only double when a compacted table still cannot take the entry.
    // (Rehash itself escalates the size if migration overflows.)
    for (int attempt = 0; attempt < 5 && st.code() == ErrorCode::kOutOfSpace;
         ++attempt) {
      const uint64_t nbuckets = TableAt(ctx_, HeaderAt(ctx_, oid_))->nbuckets;
      AERIE_RETURN_IF_ERROR(Rehash(attempt == 0 ? nbuckets : nbuckets * 2));
      st = InsertIntoBucket(key, value, &reused);
    }
  }
  AERIE_RETURN_IF_ERROR(st);
  BumpCounts(+1, reused ? -1 : 0);
  return OkStatus();
}

Status Collection::Erase(std::string_view key) {
  AERIE_SCM_LAYER("osd");
  if (!ctx_.can_allocate()) {
    return Status(ErrorCode::kPermissionDenied,
                  "collection mutation requires the allocator");
  }
  auto ref = FindLive(key);
  if (!ref.ok()) {
    return ref.status();
  }
  auto* bucket = reinterpret_cast<BucketRep*>(
      ctx_.region->PtrAt(ref->extent_offset) +
      ref->bucket_in_extent * kBucketSize);
  uint64_t word0;
  std::memcpy(&word0, bucket->data + ref->entry_offset, 8);
  // Tombstone with one atomic 64-bit store (paper: "delete items by marking
  // them using a tombstone key").
  ctx_.region->PersistU64(
      reinterpret_cast<uint64_t*>(bucket->data + ref->entry_offset),
      word0 | kTombstoneFlag);
  BumpCounts(-1, +1);

  HeaderRep* hdr = HeaderAt(ctx_, oid_);
  const TableRep* table = TableAt(ctx_, hdr);
  const uint64_t capacity = table->nbuckets * (kBucketDataBytes / 32);
  if (hdr->tomb_count >
      static_cast<uint64_t>(kTombCompactRatio *
                            static_cast<double>(capacity))) {
    // Compact: rehash live pairs into a fresh table of the same size.
    AERIE_RETURN_IF_ERROR(Rehash(table->nbuckets));
  }
  return OkStatus();
}

Status Collection::InsertManyUnchecked(
    const std::vector<std::pair<std::string, uint64_t>>& items) {
  AERIE_SCM_LAYER("osd");
  if (!ctx_.can_allocate()) {
    return Status(ErrorCode::kPermissionDenied,
                  "collection mutation requires the allocator");
  }
  HeaderRep* hdr = HeaderAt(ctx_, oid_);
  {
    // Grow once to fit the whole batch.
    const TableRep* table = TableAt(ctx_, hdr);
    uint64_t nbuckets = table->nbuckets;
    while (hdr->live_count + items.size() >
           static_cast<uint64_t>(kMaxLoad * static_cast<double>(nbuckets))) {
      nbuckets *= 2;
    }
    if (nbuckets != table->nbuckets) {
      AERIE_RETURN_IF_ERROR(Rehash(nbuckets));
      hdr = HeaderAt(ctx_, oid_);
    }
  }

  TableRep* table = TableAt(ctx_, hdr);
  std::set<uint64_t> touched;  // bucket indexes flushed once at the end
  uint64_t since_rehash = 0;   // entries not yet folded into live_count
  for (const auto& [key, value] : items) {
    if (key.empty() || key.size() > kMaxKeyLen) {
      return Status(ErrorCode::kInvalidArgument, "bad key length");
    }
    bool appended = false;
    for (int attempt = 0; attempt < 4 && !appended; ++attempt) {
      const uint64_t index = BucketIndexFor(table, key);
      BucketRep* bucket = BucketAt(ctx_, table, index);
      if (AppendEntryRaw(ctx_, bucket, key, value, /*publish=*/false)) {
        touched.insert(index);
        since_rehash++;
        appended = true;
        break;
      }
      // Bucket overflow: flush what we have, grow, retry. Rehash folds the
      // already-appended entries into live_count.
      for (uint64_t tidx : touched) {
        ctx_.region->WlFlush(BucketAt(ctx_, table, tidx), kBucketSize);
      }
      ctx_.region->Fence();
      touched.clear();
      since_rehash = 0;
      // Compact first; double only if a same-size rehash did not help.
      AERIE_RETURN_IF_ERROR(
          Rehash(attempt == 0 ? table->nbuckets : table->nbuckets * 2));
      hdr = HeaderAt(ctx_, oid_);
      table = TableAt(ctx_, hdr);
    }
    if (!appended) {
      return Status(ErrorCode::kOutOfSpace, "bucket overflow persists");
    }
  }
  // One flush per touched bucket, then a single count publish.
  for (uint64_t index : touched) {
    ctx_.region->WlFlush(BucketAt(ctx_, table, index), kBucketSize);
  }
  ctx_.region->Fence();
  ctx_.region->PersistU64(&hdr->live_count, hdr->live_count + since_rehash);
  return OkStatus();
}

Status Collection::Put(std::string_view key, uint64_t value) {
  Status st = Insert(key, value);
  if (st.code() == ErrorCode::kAlreadyExists) {
    AERIE_RETURN_IF_ERROR(Erase(key));
    return Insert(key, value);
  }
  return st;
}

Status Collection::Scan(
    const std::function<bool(std::string_view, uint64_t)>& visit) const {
  const HeaderRep* hdr = HeaderAt(ctx_, oid_);
  const TableRep* table = TableAt(ctx_, hdr);
  for (uint64_t b = 0; b < table->nbuckets; ++b) {
    const BucketRep* bucket = BucketAt(ctx_, table, b);
    uint64_t pos = 0;
    const uint64_t committed = bucket->committed;
    while (pos + 16 <= committed) {
      uint64_t word0;
      std::memcpy(&word0, bucket->data + pos, 8);
      const uint32_t key_len = EntryKeyLen(word0);
      const uint64_t entry_size = EntryBytes(key_len);
      if (pos + entry_size > committed) {
        return Status(ErrorCode::kCorrupted, "entry exceeds committed bytes");
      }
      if (!EntryIsTombstone(word0)) {
        uint64_t value;
        std::memcpy(&value, bucket->data + pos + 8, 8);
        if (!visit(std::string_view(bucket->data + pos + 16, key_len),
                   value)) {
          return OkStatus();
        }
      }
      pos += entry_size;
    }
  }
  return OkStatus();
}

Status Collection::Rehash(uint64_t new_nbuckets) {
  AERIE_SCM_LAYER("osd");
  if (!ctx_.can_allocate()) {
    return Status(ErrorCode::kPermissionDenied, "rehash requires allocator");
  }
  auto new_table_off = BuildEmptyTable(ctx_, new_nbuckets);
  if (!new_table_off.ok()) {
    return new_table_off.status();
  }
  auto* new_table =
      reinterpret_cast<TableRep*>(ctx_.region->PtrAt(*new_table_off));

  uint64_t live = 0;
  bool overflow = false;
  Status st = Scan([&](std::string_view key, uint64_t value) {
    BucketRep* bucket =
        BucketAt(ctx_, new_table, HashString(key) & (new_nbuckets - 1));
    if (!AppendEntryRaw(ctx_, bucket, key, value, /*publish=*/false)) {
      overflow = true;
      return false;
    }
    live++;
    return true;
  });
  AERIE_RETURN_IF_ERROR(st);
  if (overflow) {
    FreeTable(ctx_, *new_table_off);
    return Rehash(new_nbuckets * 2);
  }

  // Flush every new bucket extent, publish commit words, then swing the
  // header pointer with one atomic 64-bit store (shadow update).
  for (uint64_t i = 0; i < new_table->extent_count; ++i) {
    ctx_.region->WlFlush(ctx_.region->PtrAt(new_table->extent_ptr[i]),
                         kScmPageSize);
  }
  ctx_.region->Fence();

  HeaderRep* hdr = HeaderAt(ctx_, oid_);
  const uint64_t old_table_off = hdr->table_ptr;
  ctx_.region->PersistU64(&hdr->table_ptr, *new_table_off);
  ctx_.region->PersistU64(&hdr->live_count, live);
  ctx_.region->PersistU64(&hdr->tomb_count, 0);

  FreeTable(ctx_, old_table_off);
  return OkStatus();
}

bool Collection::GrowthImminent() const {
  const HeaderRep* hdr = HeaderAt(ctx_, oid_);
  const TableRep* table = TableAt(ctx_, hdr);
  // Mirror the thresholds Insert/Erase use, with a safety margin of one
  // bucket's worth of entries.
  const uint64_t grow_at = static_cast<uint64_t>(
      kMaxLoad * static_cast<double>(table->nbuckets));
  if (hdr->live_count + kBucketsPerExtent >= grow_at) {
    return true;
  }
  const uint64_t capacity = table->nbuckets * (kBucketDataBytes / 32);
  return hdr->tomb_count + kBucketsPerExtent >
         static_cast<uint64_t>(kTombCompactRatio *
                               static_cast<double>(capacity));
}

Result<Oid> Collection::BucketExtentForKey(std::string_view key) const {
  const HeaderRep* hdr = HeaderAt(ctx_, oid_);
  const TableRep* table = TableAt(ctx_, hdr);
  const uint64_t index = BucketIndexFor(table, key);
  return Oid::Make(ObjType::kExtent,
                   table->extent_ptr[index / kBucketsPerExtent]);
}

std::vector<Oid> Collection::BucketExtents() const {
  const HeaderRep* hdr = HeaderAt(ctx_, oid_);
  const TableRep* table = TableAt(ctx_, hdr);
  std::vector<Oid> out;
  out.reserve(table->extent_count);
  for (uint64_t i = 0; i < table->extent_count; ++i) {
    out.push_back(Oid::Make(ObjType::kExtent, table->extent_ptr[i]));
  }
  return out;
}

Status Collection::Destroy() {
  AERIE_SCM_LAYER("osd");
  if (!ctx_.can_allocate()) {
    return Status(ErrorCode::kPermissionDenied, "destroy requires allocator");
  }
  HeaderRep* hdr = HeaderAt(ctx_, oid_);
  FreeTable(ctx_, hdr->table_ptr);
  ctx_.region->PersistU64(&hdr->magic, 0);
  return ctx_.alloc->Free(oid_.offset(), 0);
}

Status Collection::Validate() const {
  const HeaderRep* hdr = HeaderAt(ctx_, oid_);
  if (hdr->magic != kCollectionMagic) {
    return Status(ErrorCode::kCorrupted, "bad magic");
  }
  const TableRep* table = TableAt(ctx_, hdr);
  if (table->nbuckets == 0 ||
      (table->nbuckets & (table->nbuckets - 1)) != 0 ||
      table->extent_count != table->nbuckets / kBucketsPerExtent) {
    return Status(ErrorCode::kCorrupted, "bad table geometry");
  }
  uint64_t live = 0;
  AERIE_RETURN_IF_ERROR(Scan([&](std::string_view, uint64_t) {
    live++;
    return true;
  }));
  return OkStatus();
}

}  // namespace aerie
