// Shared context handed to storage-object code (collections, mFiles).
//
// Clients get a read-mostly context (alloc == nullptr): they can read any
// object directly from SCM but cannot perform structural allocation. The TFS
// gets the full context. Object code checks `alloc` before any mutation that
// needs fresh storage, which keeps the client/server capability split honest
// at the type level.
#ifndef AERIE_SRC_OSD_OSD_CONTEXT_H_
#define AERIE_SRC_OSD_OSD_CONTEXT_H_

#include "src/osd/buddy.h"
#include "src/scm/pmem.h"

namespace aerie {

struct OsdContext {
  ScmRegion* region = nullptr;
  BuddyAllocator* alloc = nullptr;  // null in untrusted read-side clients

  bool can_allocate() const { return alloc != nullptr; }
};

}  // namespace aerie

#endif  // AERIE_SRC_OSD_OSD_CONTEXT_H_
