// Collection object: associative key -> OID store (paper §5.3.1, Figure 3).
//
// The building block for naming structures (PXFS directories, FlatFS's flat
// namespace). Implemented as a hash table packed into extents:
//
//   head extent              bucket table block          bucket extents (4KB)
//   +------------+   swing   +------------------+        +----------------+
//   | magic      |  ------>  | nbuckets         |  --->  | bucket0 (512B) |
//   | table_ptr ~~~~~~~~~~~> | extent_ptr[0..n] |  --->  | bucket1        |
//   | counts     |           +------------------+        |  ...           |
//   +------------+                                       +----------------+
//
// Crash consistency uses shadow updates throughout:
//   * insert: entry bytes are written past the bucket's committed watermark,
//     flushed, then published by one atomic 64-bit store of the watermark;
//   * erase: the entry's header word is rewritten with the tombstone flag set
//     (one atomic 64-bit store);
//   * grow/compact: a fully-populated new table (new extents) is linked in by
//     one atomic 64-bit store to table_ptr; old extents are freed after.
//
// When tombstones exceed a threshold, live pairs are rehashed into a new
// table (paper's compaction). The untrusted library reads collections
// directly without any service call; only the TFS mutates them.
#ifndef AERIE_SRC_OSD_COLLECTION_H_
#define AERIE_SRC_OSD_COLLECTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/osd/oid.h"
#include "src/osd/osd_context.h"

namespace aerie {

class Collection {
 public:
  static constexpr size_t kMaxKeyLen = 255;

  // Allocates and initializes a new collection (TFS side).
  static Result<Collection> Create(const OsdContext& ctx, uint32_t acl);
  // Opens an existing collection; validates type and magic.
  static Result<Collection> Open(const OsdContext& ctx, Oid oid);

  Oid oid() const { return oid_; }
  uint32_t acl() const;
  void SetAcl(uint32_t acl);

  // Containing directory, maintained by the TFS so rename validation can
  // detect namespace cycles (paper §5.3.5: "rename operations do not cause
  // cycles in the namespace").
  Oid parent_oid() const;
  void SetParentOid(Oid parent);

  // Collection-membership count (paper §5.3.4); maintained by the TFS.
  uint64_t link_count() const;
  void SetLinkCount(uint64_t n);

  // --- Mutations (TFS only; caller holds the collection's write lock) ---
  Status Insert(std::string_view key, uint64_t value);
  Status Erase(std::string_view key);
  // Insert-or-overwrite.
  Status Put(std::string_view key, uint64_t value);

  // Bulk insert of keys the caller guarantees are fresh (no duplicate
  // checks). Entries are appended per bucket and each touched bucket is
  // flushed/published once — the pool-fill fast path (paper §5.3.7). A
  // crash mid-bulk may leave a prefix visible; pool recovery tolerates it.
  Status InsertManyUnchecked(
      const std::vector<std::pair<std::string, uint64_t>>& items);

  // --- Reads (safe from untrusted clients holding a read lock) ---
  Result<uint64_t> Lookup(std::string_view key) const;
  // Visits every live pair. Return false from the visitor to stop early.
  Status Scan(
      const std::function<bool(std::string_view, uint64_t)>& visit) const;

  // Live entries / tombstones (persistent hints maintained by mutations).
  uint64_t size() const;
  uint64_t tombstones() const;
  uint64_t nbuckets() const;

  // True when the next insert/erase is likely to trigger a grow or
  // compaction rehash. FlatFS uses this to decide between a per-bucket lock
  // and the whole-collection write lock (paper §6.2: "the rehash operation
  // acquires the single lock covering the whole collection in write mode").
  bool GrowthImminent() const;

  // --- FlatFS fine-grained locking support (paper §6.2) ---
  // The bucket extent a key hashes into; its OID is the lock that covers all
  // pairs stored in that extent.
  Result<Oid> BucketExtentForKey(std::string_view key) const;
  std::vector<Oid> BucketExtents() const;

  // Frees the whole collection (table + bucket extents + head).
  Status Destroy();

  // Validation pass for recovery tests: walks all buckets checking bounds.
  Status Validate() const;

 private:
  Collection(const OsdContext& ctx, Oid oid) : ctx_(ctx), oid_(oid) {}

  struct EntryRef {
    uint64_t extent_offset;  // bucket extent
    uint32_t bucket_in_extent;
    uint32_t entry_offset;  // into bucket data
  };

  Result<EntryRef> FindLive(std::string_view key) const;
  // Inserts into the key's bucket, recycling a tombstoned slot of the same
  // key length when one exists (erase+insert churn on a hot key then stays
  // in place instead of growing the bucket). Sets *reused_tombstone.
  Status InsertIntoBucket(std::string_view key, uint64_t value,
                          bool* reused_tombstone);
  // Rehashes live pairs into a table of `new_nbuckets`, atomically swings.
  Status Rehash(uint64_t new_nbuckets);
  void BumpCounts(int64_t live_delta, int64_t tomb_delta);

  OsdContext ctx_;
  Oid oid_;
};

}  // namespace aerie

#endif  // AERIE_SRC_OSD_COLLECTION_H_
