// Buddy storage allocator (paper §5.3.7: "The TFS implements a buddy storage
// allocator to create extents out of a partition").
//
// Page-granular (4KB) with power-of-two block sizes up to kMaxOrder. The
// allocated/free state persists as a bitmap in SCM (one bit per page,
// flushed on every transition); the per-order free lists are volatile and
// rebuilt from the bitmap on mount by coalescing maximal aligned free runs.
// Bitmap updates are idempotent, so replaying a TFS redo log over an
// already-updated bitmap is harmless.
//
// Only the TFS allocates (clients draw from pre-allocated pools), so a single
// mutex suffices; the paper's observed contention on the storage allocator
// beyond 4 threads (§7.2.3) reproduces naturally from this design.
#ifndef AERIE_SRC_OSD_BUDDY_H_
#define AERIE_SRC_OSD_BUDDY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/scm/pmem.h"

namespace aerie {

class BuddyAllocator {
 public:
  static constexpr int kMaxOrder = 10;  // 4KB .. 4MB blocks

  // The allocator manages [data_start, data_start + page_count*4KB) using a
  // bitmap stored at [bitmap_offset, ...) (one bit per page; caller sizes it
  // with BitmapBytes). `fresh` zeroes the bitmap; otherwise free lists are
  // rebuilt from the existing bitmap.
  static Result<std::unique_ptr<BuddyAllocator>> Create(
      ScmRegion* region, uint64_t bitmap_offset, uint64_t data_start,
      uint64_t page_count, bool fresh);

  static constexpr uint64_t BitmapBytes(uint64_t page_count) {
    return (page_count + 7) / 8;
  }

  // Allocates a block of 2^order pages; returns its byte offset.
  Result<uint64_t> Alloc(int order);
  // Allocates `count` blocks of 2^order pages with a single bitmap flush
  // (the pre-allocation pool fill path, paper §5.3.7).
  Status AllocMany(int order, uint64_t count, std::vector<uint64_t>* out);
  // Allocates the smallest power-of-two block covering `bytes`.
  Result<uint64_t> AllocBytes(uint64_t bytes);
  // Frees a block previously allocated at `offset` with the same order.
  Status Free(uint64_t offset, int order);
  Status FreeBytes(uint64_t offset, uint64_t bytes);

  static int OrderForBytes(uint64_t bytes);

  // True if the page containing `offset` is allocated (validator use).
  bool IsAllocated(uint64_t offset) const;

  uint64_t pages_free() const;
  uint64_t pages_total() const { return page_count_; }

 private:
  BuddyAllocator(ScmRegion* region, uint64_t bitmap_offset,
                 uint64_t data_start, uint64_t page_count)
      : region_(region),
        bitmap_offset_(bitmap_offset),
        data_start_(data_start),
        page_count_(page_count) {}

  void RebuildFreeLists();
  // Marks pages [page, page+count) allocated/free in the persistent bitmap.
  void SetBitmap(uint64_t page, uint64_t count, bool allocated);
  bool BitmapBit(uint64_t page) const;

  ScmRegion* region_;
  uint64_t bitmap_offset_;
  uint64_t data_start_;
  uint64_t page_count_;

  mutable std::mutex mu_;
  // free_lists_[k] holds page indexes of free 2^k-page blocks.
  std::vector<uint64_t> free_lists_[kMaxOrder + 1];
};

}  // namespace aerie

#endif  // AERIE_SRC_OSD_BUDDY_H_
