// Volume: the on-SCM layout of one Aerie file-system partition.
//
//   +-------------+------------+---------------+----------------------+
//   | superblock  |  redo log  |  alloc bitmap |  data area (buddy)   |
//   +-------------+------------+---------------+----------------------+
//
// Both PXFS and FlatFS share one volume layout (paper §6: "each interface
// provides its own library but both interfaces share the same TFS" and the
// same memory layout). The TFS opens the volume writable (allocator + log);
// untrusted clients open it read-only and access objects directly.
#ifndef AERIE_SRC_OSD_VOLUME_H_
#define AERIE_SRC_OSD_VOLUME_H_

#include <memory>
#include <optional>

#include "src/common/status.h"
#include "src/osd/buddy.h"
#include "src/osd/oid.h"
#include "src/osd/osd_context.h"
#include "src/scm/pmem.h"
#include "src/txlog/redo_log.h"

namespace aerie {

class Volume {
 public:
  struct Options {
    uint64_t log_bytes = 16ull << 20;
  };

  // Lays out and initializes a fresh volume over
  // [partition_offset, partition_offset + partition_size).
  static Result<std::unique_ptr<Volume>> Format(ScmRegion* region,
                                                uint64_t partition_offset,
                                                uint64_t partition_size,
                                                const Options& options);
  static Result<std::unique_ptr<Volume>> Format(ScmRegion* region,
                                                uint64_t partition_offset,
                                                uint64_t partition_size) {
    return Format(region, partition_offset, partition_size, Options{});
  }

  // Opens an existing volume. `writable` mounts the allocator and redo log
  // (TFS); otherwise the volume is a read-only client view.
  static Result<std::unique_ptr<Volume>> Open(ScmRegion* region,
                                              uint64_t partition_offset,
                                              bool writable);

  ScmRegion* region() const { return region_; }
  uint64_t partition_offset() const { return partition_offset_; }

  // Context for storage-object code; alloc is null for read-only volumes.
  OsdContext context() {
    return OsdContext{region_, allocator_.get()};
  }

  BuddyAllocator* allocator() { return allocator_.get(); }
  RedoLog* log() { return log_ ? &*log_ : nullptr; }

  // Root object of the namespace (a collection). Zero until the TFS sets it.
  Oid root_oid() const;
  void SetRootOid(Oid oid);

 private:
  explicit Volume(ScmRegion* region, uint64_t partition_offset)
      : region_(region), partition_offset_(partition_offset) {}

  ScmRegion* region_;
  uint64_t partition_offset_;
  std::unique_ptr<BuddyAllocator> allocator_;
  std::optional<RedoLog> log_;
};

}  // namespace aerie

#endif  // AERIE_SRC_OSD_VOLUME_H_
