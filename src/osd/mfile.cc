#include "src/osd/mfile.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/scm/crash_sim.h"

namespace aerie {

namespace {

constexpr uint64_t kMFileMagic = 0x41455249450d0001ULL;
constexpr uint64_t kFlagSingleExtent = 1;

struct MHeaderRep {
  uint64_t magic;
  uint64_t size;
  // Packed root pointer: bits [12..63] block offset (4KB aligned), bits
  // [0..5] tree height. One atomic store changes both.
  uint64_t root;
  uint64_t flags;
  uint64_t capacity;  // single-extent mode: allocated bytes
  uint64_t link_count;
  uint64_t acl;
};

uint64_t PackRoot(uint64_t offset, uint32_t height) {
  return offset | height;
}
uint64_t RootOffset(uint64_t packed) { return packed & ~0xfffULL; }
uint32_t RootHeight(uint64_t packed) {
  return static_cast<uint32_t>(packed & 0x3f);
}

// Pages covered by a tree of `height` levels of indirect blocks.
uint64_t Coverage(uint32_t height) {
  uint64_t pages = 1;
  for (uint32_t i = 0; i < height; ++i) {
    pages *= MFile::kPointersPerBlock;
  }
  return pages;
}

MHeaderRep* HeaderAt(const OsdContext& ctx, Oid oid) {
  return reinterpret_cast<MHeaderRep*>(ctx.region->PtrAt(oid.offset()));
}

uint64_t* BlockAt(const OsdContext& ctx, uint64_t offset) {
  return reinterpret_cast<uint64_t*>(ctx.region->PtrAt(offset));
}

Result<uint64_t> AllocZeroedBlock(const OsdContext& ctx) {
  auto off = ctx.alloc->Alloc(0);
  if (!off.ok()) {
    return off.status();
  }
  std::memset(ctx.region->PtrAt(*off), 0, kScmPageSize);
  ctx.region->WlFlush(ctx.region->PtrAt(*off), kScmPageSize);
  ctx.region->Fence();
  return *off;
}

}  // namespace

Result<MFile> MFile::Create(const OsdContext& ctx, uint32_t acl) {
  AERIE_SCM_LAYER("osd");
  if (!ctx.can_allocate()) {
    return Status(ErrorCode::kPermissionDenied,
                  "mFile creation requires the allocator");
  }
  auto head = ctx.alloc->Alloc(0);
  if (!head.ok()) {
    return head.status();
  }
  auto* hdr = reinterpret_cast<MHeaderRep*>(ctx.region->PtrAt(*head));
  std::memset(hdr, 0, sizeof(*hdr));
  hdr->acl = acl;
  ctx.region->WlFlush(hdr, sizeof(*hdr));
  ctx.region->Fence();
  ctx.region->PersistU64(&hdr->magic, kMFileMagic);
  return MFile(ctx, Oid::Make(ObjType::kMFile, *head));
}

Result<MFile> MFile::CreateSingleExtent(const OsdContext& ctx, uint32_t acl,
                                        uint64_t capacity_bytes) {
  AERIE_SCM_LAYER("osd");
  if (!ctx.can_allocate()) {
    return Status(ErrorCode::kPermissionDenied,
                  "mFile creation requires the allocator");
  }
  auto head = ctx.alloc->Alloc(0);
  if (!head.ok()) {
    return head.status();
  }
  auto data = ctx.alloc->AllocBytes(capacity_bytes);
  if (!data.ok()) {
    return data.status();
  }
  const int order = BuddyAllocator::OrderForBytes(capacity_bytes);
  auto* hdr = reinterpret_cast<MHeaderRep*>(ctx.region->PtrAt(*head));
  std::memset(hdr, 0, sizeof(*hdr));
  hdr->acl = acl;
  hdr->flags = kFlagSingleExtent;
  hdr->capacity = (1ULL << order) * kScmPageSize;
  hdr->root = PackRoot(*data, 0);
  ctx.region->WlFlush(hdr, sizeof(*hdr));
  ctx.region->Fence();
  ctx.region->PersistU64(&hdr->magic, kMFileMagic);
  return MFile(ctx, Oid::Make(ObjType::kMFile, *head));
}

Result<MFile> MFile::Open(const OsdContext& ctx, Oid oid) {
  if (oid.type() != ObjType::kMFile) {
    return Status(ErrorCode::kInvalidArgument, "oid is not an mFile");
  }
  if (oid.offset() + sizeof(MHeaderRep) > ctx.region->size()) {
    return Status(ErrorCode::kInvalidArgument, "oid out of range");
  }
  if (HeaderAt(ctx, oid)->magic != kMFileMagic) {
    return Status(ErrorCode::kCorrupted, "bad mFile magic");
  }
  return MFile(ctx, oid);
}

uint64_t MFile::size() const { return HeaderAt(ctx_, oid_)->size; }
bool MFile::single_extent() const {
  return (HeaderAt(ctx_, oid_)->flags & kFlagSingleExtent) != 0;
}
uint64_t MFile::capacity() const { return HeaderAt(ctx_, oid_)->capacity; }
uint32_t MFile::acl() const {
  return static_cast<uint32_t>(HeaderAt(ctx_, oid_)->acl);
}
void MFile::SetAcl(uint32_t new_acl) {
  AERIE_SCM_LAYER("osd");
  ctx_.region->PersistU64(&HeaderAt(ctx_, oid_)->acl, new_acl);
}

uint64_t MFile::link_count() const {
  return HeaderAt(ctx_, oid_)->link_count;
}
void MFile::SetLinkCount(uint64_t n) {
  AERIE_SCM_LAYER("osd");
  ctx_.region->PersistU64(&HeaderAt(ctx_, oid_)->link_count, n);
}

Result<uint64_t> MFile::ExtentForPage(uint64_t page_index) const {
  const MHeaderRep* hdr = HeaderAt(ctx_, oid_);
  if (hdr->flags & kFlagSingleExtent) {
    if (page_index * kScmPageSize >= hdr->capacity) {
      return Status(ErrorCode::kNotFound, "beyond single extent");
    }
    return RootOffset(hdr->root) + page_index * kScmPageSize;
  }
  const uint64_t packed = hdr->root;
  if (RootOffset(packed) == 0) {
    return Status(ErrorCode::kNotFound, "empty file");
  }
  const uint32_t height = RootHeight(packed);
  if (page_index >= Coverage(height)) {
    return Status(ErrorCode::kNotFound, "page beyond tree coverage");
  }
  uint64_t block = RootOffset(packed);
  for (uint32_t level = height; level > 0; --level) {
    const uint64_t stride = Coverage(level - 1);
    const uint64_t slot = page_index / stride;
    page_index %= stride;
    const uint64_t next = BlockAt(ctx_, block)[slot];
    if (next == 0) {
      return Status(ErrorCode::kNotFound, "hole");
    }
    block = next;
  }
  return block;
}

Result<uint64_t> MFile::Read(uint64_t offset, std::span<char> out) const {
  const MHeaderRep* hdr = HeaderAt(ctx_, oid_);
  const uint64_t file_size = hdr->size;
  if (offset >= file_size) {
    return 0;
  }
  const uint64_t want = std::min<uint64_t>(out.size(), file_size - offset);
  if (hdr->flags & kFlagSingleExtent) {
    std::memcpy(out.data(), ctx_.region->PtrAt(RootOffset(hdr->root)) + offset,
                want);
    return want;
  }
  uint64_t done = 0;
  while (done < want) {
    const uint64_t pos = offset + done;
    const uint64_t page = pos / kScmPageSize;
    const uint64_t in_page = pos % kScmPageSize;
    const uint64_t chunk = std::min(want - done, kScmPageSize - in_page);
    auto extent = ExtentForPage(page);
    if (extent.ok()) {
      std::memcpy(out.data() + done, ctx_.region->PtrAt(*extent) + in_page,
                  chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);  // sparse hole reads zero
    }
    done += chunk;
  }
  return done;
}

Result<MFile::DirectExtentMap> MFile::SnapshotExtents(
    uint64_t max_pages) const {
  const MHeaderRep* hdr = HeaderAt(ctx_, oid_);
  DirectExtentMap map;
  map.size = hdr->size;
  const uint64_t pages = (map.size + kScmPageSize - 1) / kScmPageSize;
  if (pages > max_pages) {
    return Status(ErrorCode::kNotSupported, "file too large for direct map");
  }
  map.pages.resize(pages, 0);
  if (hdr->flags & kFlagSingleExtent) {
    const uint64_t base = RootOffset(hdr->root);
    for (uint64_t p = 0; p < pages; ++p) {
      map.pages[p] = base + p * kScmPageSize;
    }
    return map;
  }
  // One tree walk fills every mapped page <= the snapshot's own size; pages
  // beyond it stay holes (irrelevant: Read/WriteDirect are size-clamped).
  (void)ForEachExtent([&](uint64_t page, uint64_t extent) {
    if (page < pages) {
      map.pages[page] = extent;
    }
    return true;
  });
  return map;
}

uint64_t MFile::ReadDirect(ScmRegion* region, const DirectExtentMap& map,
                           uint64_t offset, std::span<char> out) {
  if (offset >= map.size) {
    return 0;
  }
  const uint64_t want = std::min<uint64_t>(out.size(), map.size - offset);
  uint64_t done = 0;
  while (done < want) {
    const uint64_t pos = offset + done;
    const uint64_t page = pos / kScmPageSize;
    const uint64_t in_page = pos % kScmPageSize;
    const uint64_t chunk = std::min(want - done, kScmPageSize - in_page);
    const uint64_t extent = map.pages[page];
    if (extent != 0) {
      std::memcpy(out.data() + done, region->PtrAt(extent) + in_page, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);  // sparse hole reads zero
    }
    done += chunk;
  }
  return done;
}

Status MFile::WriteDirect(ScmRegion* region, const DirectExtentMap& map,
                          uint64_t offset, std::span<const char> data,
                          bool flush) {
  AERIE_SCM_LAYER("osd");
  if (data.empty()) {
    return OkStatus();
  }
  if (offset + data.size() > map.size) {
    return Status(ErrorCode::kNotFound, "extends file: not an overwrite");
  }
  const uint64_t first_page = offset / kScmPageSize;
  const uint64_t last_page = (offset + data.size() - 1) / kScmPageSize;
  for (uint64_t p = first_page; p <= last_page; ++p) {
    if (map.pages[p] == 0) {
      return Status(ErrorCode::kNotFound, "hole");
    }
  }
  uint64_t done = 0;
  while (done < data.size()) {
    const uint64_t pos = offset + done;
    const uint64_t page = pos / kScmPageSize;
    const uint64_t in_page = pos % kScmPageSize;
    const uint64_t chunk =
        std::min<uint64_t>(data.size() - done, kScmPageSize - in_page);
    region->StreamWrite(region->PtrAt(map.pages[page]) + in_page,
                        data.data() + done, chunk);
    done += chunk;
  }
  if (flush) {
    // The direct path has no later locked-path BFlush to piggyback on: this
    // drain is the overwrite's entire durability story, so it is a
    // registered mutation target (suppressing it must fail crash_sim).
    static const int kSite = RegisterPersistSite("libfs.direct.write.bflush");
    region->BFlush(kSite);
    region->CrashPoint("libfs.direct.write");
  }
  return OkStatus();
}

Status MFile::WriteInPlace(uint64_t offset, std::span<const char> data) {
  AERIE_SCM_LAYER("osd");
  const MHeaderRep* hdr = HeaderAt(ctx_, oid_);
  if (hdr->flags & kFlagSingleExtent) {
    if (offset + data.size() > hdr->capacity) {
      return Status(ErrorCode::kOutOfSpace, "beyond single-extent capacity");
    }
    ctx_.region->StreamWrite(
        ctx_.region->PtrAt(RootOffset(hdr->root)) + offset, data.data(),
        data.size());
    return OkStatus();
  }
  // Verify all pages are mapped before the first byte is written.
  const uint64_t first_page = offset / kScmPageSize;
  const uint64_t last_page = (offset + data.size() - 1) / kScmPageSize;
  for (uint64_t p = first_page; p <= last_page; ++p) {
    AERIE_RETURN_IF_ERROR(ExtentForPage(p).status());
  }
  uint64_t done = 0;
  while (done < data.size()) {
    const uint64_t pos = offset + done;
    const uint64_t page = pos / kScmPageSize;
    const uint64_t in_page = pos % kScmPageSize;
    const uint64_t chunk =
        std::min<uint64_t>(data.size() - done, kScmPageSize - in_page);
    auto extent = ExtentForPage(page);
    AERIE_CHECK(extent.ok());
    ctx_.region->StreamWrite(ctx_.region->PtrAt(*extent) + in_page,
                             data.data() + done, chunk);
    done += chunk;
  }
  return OkStatus();
}

Status MFile::GrowHeightTo(uint32_t target) {
  AERIE_SCM_LAYER("osd");
  MHeaderRep* hdr = HeaderAt(ctx_, oid_);
  uint64_t packed = hdr->root;
  while (RootOffset(packed) != 0 && RootHeight(packed) < target) {
    auto block = AllocZeroedBlock(ctx_);
    if (!block.ok()) {
      return block.status();
    }
    uint64_t* slots = BlockAt(ctx_, *block);
    slots[0] = RootOffset(packed);
    ctx_.region->WlFlush(slots, sizeof(uint64_t));
    ctx_.region->Fence();
    // Root offset and height change together in one atomic store.
    packed = PackRoot(*block, RootHeight(packed) + 1);
    ctx_.region->PersistU64(&hdr->root, packed);
  }
  return OkStatus();
}

Status MFile::AttachExtent(uint64_t page_index, uint64_t extent_offset) {
  AERIE_SCM_LAYER("osd");
  if (!ctx_.can_allocate()) {
    return Status(ErrorCode::kPermissionDenied,
                  "structural mFile mutation requires the allocator");
  }
  MHeaderRep* hdr = HeaderAt(ctx_, oid_);
  if (hdr->flags & kFlagSingleExtent) {
    return Status(ErrorCode::kNotSupported,
                  "single-extent mFiles have fixed storage");
  }
  if (extent_offset == 0 || extent_offset % kScmPageSize != 0 ||
      extent_offset >= ctx_.region->size()) {
    return Status(ErrorCode::kInvalidArgument, "bad extent offset");
  }

  if (RootOffset(hdr->root) == 0) {
    auto block = AllocZeroedBlock(ctx_);
    if (!block.ok()) {
      return block.status();
    }
    ctx_.region->PersistU64(&hdr->root, PackRoot(*block, 1));
  }
  // Grow until the page is within coverage.
  uint32_t height = RootHeight(hdr->root);
  while (page_index >= Coverage(height)) {
    AERIE_RETURN_IF_ERROR(GrowHeightTo(height + 1));
    height = RootHeight(hdr->root);
  }

  uint64_t block = RootOffset(hdr->root);
  uint64_t remaining = page_index;
  for (uint32_t level = height; level > 1; --level) {
    const uint64_t stride = Coverage(level - 1);
    const uint64_t slot = remaining / stride;
    remaining %= stride;
    uint64_t* slots = BlockAt(ctx_, block);
    if (slots[slot] == 0) {
      auto child = AllocZeroedBlock(ctx_);
      if (!child.ok()) {
        return child.status();
      }
      ctx_.region->PersistU64(&slots[slot], *child);
    }
    block = slots[slot];
  }
  uint64_t* leaf = BlockAt(ctx_, block);
  if (leaf[remaining] != 0) {
    return Status(ErrorCode::kAlreadyExists, "page already mapped");
  }
  ctx_.region->PersistU64(&leaf[remaining], extent_offset);
  return OkStatus();
}

Status MFile::SetSize(uint64_t bytes) {
  AERIE_SCM_LAYER("osd");
  MHeaderRep* hdr = HeaderAt(ctx_, oid_);
  if ((hdr->flags & kFlagSingleExtent) && bytes > hdr->capacity) {
    return Status(ErrorCode::kOutOfSpace, "beyond single-extent capacity");
  }
  ctx_.region->PersistU64(&hdr->size, bytes);
  return OkStatus();
}

namespace {

// Frees the subtree rooted at `block` (level >= 1: indirect block; the walk
// frees data extents whose page index is >= keep_pages). Returns true if the
// block became empty and was freed.
bool FreeSubtree(const OsdContext& ctx, uint64_t block, uint32_t level,
                 uint64_t base_page, uint64_t keep_pages) {
  uint64_t* slots = BlockAt(ctx, block);
  bool any_kept = false;
  const uint64_t stride = Coverage(level - 1);
  for (uint64_t i = 0; i < MFile::kPointersPerBlock; ++i) {
    if (slots[i] == 0) {
      continue;
    }
    const uint64_t child_base = base_page + i * stride;
    if (child_base >= keep_pages) {
      if (level == 1) {
        (void)ctx.alloc->Free(slots[i], 0);
      } else {
        (void)FreeSubtree(ctx, slots[i], level - 1, child_base, 0);
      }
      ctx.region->PersistU64(&slots[i], 0);
    } else if (level > 1 && child_base + stride > keep_pages) {
      if (FreeSubtree(ctx, slots[i], level - 1, child_base, keep_pages)) {
        ctx.region->PersistU64(&slots[i], 0);
      } else {
        any_kept = true;
      }
    } else {
      any_kept = true;
    }
  }
  if (!any_kept) {
    (void)ctx.alloc->Free(block, 0);
    return true;
  }
  return false;
}

}  // namespace

Status MFile::Truncate(uint64_t bytes) {
  AERIE_SCM_LAYER("osd");
  if (!ctx_.can_allocate()) {
    return Status(ErrorCode::kPermissionDenied, "truncate requires allocator");
  }
  MHeaderRep* hdr = HeaderAt(ctx_, oid_);
  if (hdr->flags & kFlagSingleExtent) {
    return SetSize(std::min(bytes, hdr->capacity));
  }
  const uint64_t keep_pages = (bytes + kScmPageSize - 1) / kScmPageSize;
  if (RootOffset(hdr->root) != 0) {
    if (FreeSubtree(ctx_, RootOffset(hdr->root), RootHeight(hdr->root), 0,
                    keep_pages)) {
      ctx_.region->PersistU64(&hdr->root, 0);
    }
  }
  // NOTE: Truncate is metadata-only: it does NOT zero the boundary page's
  // tail. Zero-fill is a *data* effect, and data effects are the client's
  // (paper §4.2: clients write data directly; the service only changes
  // metadata). PXFS zeroes the tail at truncate time; doing it here would
  // replay after — and clobber — any in-place writes the client performed
  // between batching the truncate and shipping it.
  return SetSize(bytes);
}

Status MFile::Destroy() {
  AERIE_SCM_LAYER("osd");
  if (!ctx_.can_allocate()) {
    return Status(ErrorCode::kPermissionDenied, "destroy requires allocator");
  }
  MHeaderRep* hdr = HeaderAt(ctx_, oid_);
  if (hdr->flags & kFlagSingleExtent) {
    (void)ctx_.alloc->FreeBytes(RootOffset(hdr->root), hdr->capacity);
  } else if (RootOffset(hdr->root) != 0) {
    (void)FreeSubtree(ctx_, RootOffset(hdr->root), RootHeight(hdr->root), 0,
                      0);
  }
  ctx_.region->PersistU64(&hdr->magic, 0);
  return ctx_.alloc->Free(oid_.offset(), 0);
}

namespace {

bool WalkExtents(const OsdContext& ctx, uint64_t block, uint32_t level,
                 uint64_t base_page,
                 const std::function<bool(uint64_t, uint64_t)>& visit) {
  const uint64_t* slots = BlockAt(ctx, block);
  const uint64_t stride = Coverage(level - 1);
  for (uint64_t i = 0; i < MFile::kPointersPerBlock; ++i) {
    if (slots[i] == 0) {
      continue;
    }
    if (level == 1) {
      if (!visit(base_page + i, slots[i])) {
        return false;
      }
    } else {
      if (!WalkExtents(ctx, slots[i], level - 1, base_page + i * stride,
                       visit)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

Status MFile::ForEachExtent(
    const std::function<bool(uint64_t, uint64_t)>& visit) const {
  const MHeaderRep* hdr = HeaderAt(ctx_, oid_);
  if (hdr->flags & kFlagSingleExtent) {
    visit(0, RootOffset(hdr->root));
    return OkStatus();
  }
  if (RootOffset(hdr->root) == 0) {
    return OkStatus();
  }
  WalkExtents(ctx_, RootOffset(hdr->root), RootHeight(hdr->root), 0, visit);
  return OkStatus();
}

Status MFile::Validate() const {
  const MHeaderRep* hdr = HeaderAt(ctx_, oid_);
  if (hdr->magic != kMFileMagic) {
    return Status(ErrorCode::kCorrupted, "bad magic");
  }
  const uint64_t region_size = ctx_.region->size();
  if (hdr->flags & kFlagSingleExtent) {
    if (RootOffset(hdr->root) + hdr->capacity > region_size ||
        hdr->size > hdr->capacity) {
      return Status(ErrorCode::kCorrupted, "single extent out of range");
    }
    return OkStatus();
  }
  Status st = OkStatus();
  (void)ForEachExtent([&](uint64_t, uint64_t extent) {
    if (extent % kScmPageSize != 0 || extent + kScmPageSize > region_size) {
      st = Status(ErrorCode::kCorrupted, "extent pointer out of range");
      return false;
    }
    return true;
  });
  return st;
}

}  // namespace aerie
