// mFile object: offset -> data-extent map (paper §5.3.2, Figure 3).
//
// PXFS files are mFiles with page-sized (4KB) extents indexed by a radix
// tree of indirect blocks (512 pointers per 4KB block). FlatFS files are
// mFiles in *single-extent* mode: one extent holds the whole file, so a get
// or put is a single memcpy (paper §6.2).
//
// Responsibility split mirrors the paper:
//   * clients read file data directly (ExtentForPage + memcpy, no service);
//   * clients write data in place directly when the extent exists;
//   * structural changes (attaching extents a client pre-allocated, growing
//     the tree, truncation, setting the size) are metadata and are applied
//     by the TFS after validation.
//
// Crash consistency: indirect-block pointer stores and the size field are
// single atomic 64-bit persists; height changes pack the height into the low
// bits of the root pointer so root+height swing in one store.
#ifndef AERIE_SRC_OSD_MFILE_H_
#define AERIE_SRC_OSD_MFILE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/osd/oid.h"
#include "src/osd/osd_context.h"

namespace aerie {

class MFile {
 public:
  static constexpr uint64_t kPointersPerBlock = kScmPageSize / 8;  // 512

  // Creates a paged (radix-tree) mFile.
  static Result<MFile> Create(const OsdContext& ctx, uint32_t acl);
  // Creates a single-extent mFile with `capacity_bytes` of storage
  // (rounded up to a power-of-two page multiple). FlatFS mode.
  static Result<MFile> CreateSingleExtent(const OsdContext& ctx, uint32_t acl,
                                          uint64_t capacity_bytes);
  static Result<MFile> Open(const OsdContext& ctx, Oid oid);

  Oid oid() const { return oid_; }
  uint64_t size() const;
  bool single_extent() const;
  uint64_t capacity() const;  // single-extent mode: allocated bytes
  uint32_t acl() const;
  void SetAcl(uint32_t acl);

  // Collection-membership count (paper §5.3.4: transitions between
  // hierarchical and explicit locking). Maintained by the TFS.
  uint64_t link_count() const;
  void SetLinkCount(uint64_t n);

  // --- Reads (untrusted clients; direct memory access) ---
  // Region offset of the extent backing `page_index`, or kNotFound (hole).
  Result<uint64_t> ExtentForPage(uint64_t page_index) const;
  // Copies up to len bytes from `offset`; holes read as zeros. Returns bytes
  // read (clamped by size()).
  Result<uint64_t> Read(uint64_t offset, std::span<char> out) const;

  // --- Direct data path (DESIGN.md §10) ---
  // Immutable snapshot of the offset -> extent map, taken while the caller
  // holds lock authority on the file. Region offsets of 4KB pages; 0 = hole.
  // A snapshot stays safe to use after the lock is released *only* under a
  // valid direct-access epoch from the clerk (extents are never reclaimed
  // while any client could still hold authority over them).
  struct DirectExtentMap {
    uint64_t size = 0;            // file size when snapped
    std::vector<uint64_t> pages;  // pages[i] = region offset of page i
  };

  // Snapshots size + per-page extents. Fails kNotSupported when the file
  // spans more than `max_pages` pages, so callers cache a bounded map and
  // fall back to the locked path for huge files.
  Result<DirectExtentMap> SnapshotExtents(uint64_t max_pages) const;

  // Copies out of the snapped extents without touching the mFile header
  // (no Open, no size load — the snapshot is the truth the lease froze).
  // Holes read as zeros; returns bytes read, clamped to map.size.
  static uint64_t ReadDirect(ScmRegion* region, const DirectExtentMap& map,
                             uint64_t offset, std::span<char> out);

  // In-place overwrite strictly within [0, map.size) over mapped pages;
  // kNotFound if any touched page is a hole (caller falls back to the
  // locked path, which allocates + logs an attach). Streams the bytes and,
  // when `flush` is set, drains write-combining buffers at the registered
  // "libfs.direct.write.bflush" persist site so the overwrite is durable
  // before the caller acknowledges it.
  static Status WriteDirect(ScmRegion* region, const DirectExtentMap& map,
                            uint64_t offset, std::span<const char> data,
                            bool flush);

  // --- In-place data writes (clients, where extents already exist) ---
  // Writes only where extents are present; returns kNotFound if any touched
  // page lacks an extent (caller allocates + logs an attach op).
  Status WriteInPlace(uint64_t offset, std::span<const char> data);

  // --- Structural mutations (TFS after validation) ---
  // Attaches a data extent (4KB, pre-allocated) at page_index. Grows the
  // tree height as needed. Fails kAlreadyExists if the page is mapped.
  Status AttachExtent(uint64_t page_index, uint64_t extent_offset);
  // Publishes a new file size (atomic).
  Status SetSize(uint64_t bytes);
  // Frees extents wholly beyond `bytes` and publishes the new size.
  Status Truncate(uint64_t bytes);
  // Frees all storage including the header (unlink with no remaining links).
  Status Destroy();

  // Visits (page_index, extent_offset) for every mapped page.
  Status ForEachExtent(
      const std::function<bool(uint64_t, uint64_t)>& visit) const;

  // Structural validation (recovery tests): every pointer in range, no
  // cycles by construction (tree), height consistent.
  Status Validate() const;

 private:
  MFile(const OsdContext& ctx, Oid oid) : ctx_(ctx), oid_(oid) {}

  Status GrowHeightTo(uint32_t height);

  OsdContext ctx_;
  Oid oid_;
};

}  // namespace aerie

#endif  // AERIE_SRC_OSD_MFILE_H_
