#include "src/osd/buddy.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "src/common/check.h"

namespace aerie {

Result<std::unique_ptr<BuddyAllocator>> BuddyAllocator::Create(
    ScmRegion* region, uint64_t bitmap_offset, uint64_t data_start,
    uint64_t page_count, bool fresh) {
  AERIE_SCM_LAYER("osd");
  if (data_start % kScmPageSize != 0 || page_count == 0) {
    return Status(ErrorCode::kInvalidArgument, "bad allocator geometry");
  }
  auto alloc = std::unique_ptr<BuddyAllocator>(
      new BuddyAllocator(region, bitmap_offset, data_start, page_count));
  if (fresh) {
    char* bm = region->PtrAt(bitmap_offset);
    std::memset(bm, 0, BitmapBytes(page_count));
    region->WlFlush(bm, BitmapBytes(page_count));
    region->Fence();
  }
  alloc->RebuildFreeLists();
  return alloc;
}

int BuddyAllocator::OrderForBytes(uint64_t bytes) {
  const uint64_t pages =
      std::max<uint64_t>(1, (bytes + kScmPageSize - 1) / kScmPageSize);
  const int order = std::bit_width(pages) - (std::has_single_bit(pages) ? 1 : 0);
  return order;
}

bool BuddyAllocator::BitmapBit(uint64_t page) const {
  const char* bm = region_->PtrAt(bitmap_offset_);
  return (bm[page / 8] >> (page % 8)) & 1;
}

void BuddyAllocator::SetBitmap(uint64_t page, uint64_t count, bool allocated) {
  AERIE_SCM_LAYER("osd");
  char* bm = region_->PtrAt(bitmap_offset_);
  const uint64_t first_byte = page / 8;
  for (uint64_t p = page; p < page + count; ++p) {
    if (allocated) {
      bm[p / 8] = static_cast<char>(bm[p / 8] | (1 << (p % 8)));
    } else {
      bm[p / 8] = static_cast<char>(bm[p / 8] & ~(1 << (p % 8)));
    }
  }
  const uint64_t last_byte = (page + count - 1) / 8;
  region_->WlFlush(bm + first_byte, last_byte - first_byte + 1);
  region_->Fence();
}

void BuddyAllocator::RebuildFreeLists() {
  std::lock_guard lock(mu_);
  for (auto& fl : free_lists_) {
    fl.clear();
  }
  // Coalesce maximal aligned free runs into the largest possible blocks.
  uint64_t page = 0;
  while (page < page_count_) {
    if (BitmapBit(page)) {
      page++;
      continue;
    }
    // Length of this free run.
    uint64_t run_end = page;
    while (run_end < page_count_ && !BitmapBit(run_end)) {
      run_end++;
    }
    uint64_t p = page;
    while (p < run_end) {
      // Largest order block aligned at p that fits in the run.
      int order = kMaxOrder;
      while (order > 0 &&
             ((p & ((1ULL << order) - 1)) != 0 ||
              p + (1ULL << order) > run_end)) {
        order--;
      }
      free_lists_[order].push_back(p);
      p += 1ULL << order;
    }
    page = run_end;
  }
}

Result<uint64_t> BuddyAllocator::Alloc(int order) {
  if (order < 0 || order > kMaxOrder) {
    return Status(ErrorCode::kInvalidArgument, "bad order");
  }
  std::lock_guard lock(mu_);
  int have = order;
  while (have <= kMaxOrder && free_lists_[have].empty()) {
    have++;
  }
  if (have > kMaxOrder) {
    return Status(ErrorCode::kOutOfSpace, "buddy allocator exhausted");
  }
  uint64_t page = free_lists_[have].back();
  free_lists_[have].pop_back();
  // Split down to the requested order, returning buddies to the lists.
  while (have > order) {
    have--;
    free_lists_[have].push_back(page + (1ULL << have));
  }
  SetBitmap(page, 1ULL << order, /*allocated=*/true);
  return data_start_ + page * kScmPageSize;
}

Status BuddyAllocator::AllocMany(int order, uint64_t count,
                                 std::vector<uint64_t>* out) {
  AERIE_SCM_LAYER("osd");
  if (order < 0 || order > kMaxOrder) {
    return Status(ErrorCode::kInvalidArgument, "bad order");
  }
  std::lock_guard lock(mu_);
  out->reserve(out->size() + count);
  uint64_t min_page = ~0ull;
  uint64_t max_page = 0;
  for (uint64_t n = 0; n < count; ++n) {
    int have = order;
    while (have <= kMaxOrder && free_lists_[have].empty()) {
      have++;
    }
    if (have > kMaxOrder) {
      return Status(ErrorCode::kOutOfSpace, "buddy allocator exhausted");
    }
    uint64_t page = free_lists_[have].back();
    free_lists_[have].pop_back();
    while (have > order) {
      have--;
      free_lists_[have].push_back(page + (1ULL << have));
    }
    // Set bits without flushing; one flush covers the whole range below.
    char* bm = region_->PtrAt(bitmap_offset_);
    for (uint64_t p = page; p < page + (1ULL << order); ++p) {
      bm[p / 8] = static_cast<char>(bm[p / 8] | (1 << (p % 8)));
    }
    min_page = std::min(min_page, page);
    max_page = std::max<uint64_t>(max_page, page + (1ULL << order) - 1);
    out->push_back(data_start_ + page * kScmPageSize);
  }
  if (count > 0) {
    char* bm = region_->PtrAt(bitmap_offset_);
    region_->WlFlush(bm + min_page / 8, max_page / 8 - min_page / 8 + 1);
    region_->Fence();
  }
  return OkStatus();
}

Result<uint64_t> BuddyAllocator::AllocBytes(uint64_t bytes) {
  return Alloc(OrderForBytes(bytes));
}

Status BuddyAllocator::Free(uint64_t offset, int order) {
  if (order < 0 || order > kMaxOrder || offset < data_start_ ||
      (offset - data_start_) % kScmPageSize != 0) {
    return Status(ErrorCode::kInvalidArgument, "bad free");
  }
  uint64_t page = (offset - data_start_) / kScmPageSize;
  if (page + (1ULL << order) > page_count_) {
    return Status(ErrorCode::kInvalidArgument, "free beyond allocator range");
  }
  std::lock_guard lock(mu_);
  if (!BitmapBit(page)) {
    return Status(ErrorCode::kInvalidArgument, "double free");
  }
  SetBitmap(page, 1ULL << order, /*allocated=*/false);

  // Merge with free buddies.
  int ord = order;
  while (ord < kMaxOrder) {
    const uint64_t buddy = page ^ (1ULL << ord);
    auto& fl = free_lists_[ord];
    auto it = std::find(fl.begin(), fl.end(), buddy);
    if (it == fl.end()) {
      break;
    }
    fl.erase(it);
    page = std::min(page, buddy);
    ord++;
  }
  free_lists_[ord].push_back(page);
  return OkStatus();
}

Status BuddyAllocator::FreeBytes(uint64_t offset, uint64_t bytes) {
  return Free(offset, OrderForBytes(bytes));
}

bool BuddyAllocator::IsAllocated(uint64_t offset) const {
  if (offset < data_start_) {
    return false;
  }
  const uint64_t page = (offset - data_start_) / kScmPageSize;
  if (page >= page_count_) {
    return false;
  }
  std::lock_guard lock(mu_);
  return BitmapBit(page);
}

uint64_t BuddyAllocator::pages_free() const {
  std::lock_guard lock(mu_);
  uint64_t total = 0;
  for (int k = 0; k <= kMaxOrder; ++k) {
    total += free_lists_[k].size() << k;
  }
  return total;
}

}  // namespace aerie
