// Storage object IDs (paper §5.3.1).
//
// Every file-system storage object is named by a 64-bit OID: the six
// least-significant bits encode the object type (64 possible types) and the
// remaining 58 bits encode where the object lives. This forces a minimum
// object size of 64 bytes and means locating an object from its OID needs no
// lookup — at the cost of objects not being relocatable, which the paper
// found acceptable.
//
// Deviation (documented in DESIGN.md §4): the paper stores the object's
// virtual address; we store the byte offset from the region base divided by
// 64. Under the paper's same-address mapping these are isomorphic, and
// offsets stay valid if the host maps the region elsewhere after a reboot.
//
// The OID doubles as the object's global lock id (paper §5.3.4: "a unique
// global lock to every object").
#ifndef AERIE_SRC_OSD_OID_H_
#define AERIE_SRC_OSD_OID_H_

#include <cstdint>

#include "src/lock/lock_proto.h"

namespace aerie {

enum class ObjType : uint8_t {
  kNone = 0,
  kExtent = 1,      // raw storage extent
  kCollection = 2,  // associative key->OID table (directories, namespaces)
  kMFile = 3,       // offset->extent map (file data)
  kSuperblock = 4,
  kPoolTable = 5,   // per-client pre-allocation tracking (paper §5.3.7)
};

class Oid {
 public:
  constexpr Oid() : raw_(0) {}
  constexpr explicit Oid(uint64_t raw) : raw_(raw) {}

  // `offset` is the object's byte offset in the region; must be 64-byte
  // aligned (the minimum object size the encoding enforces).
  static constexpr Oid Make(ObjType type, uint64_t offset) {
    return Oid(((offset >> 6) << 6) | static_cast<uint64_t>(type));
  }

  constexpr bool IsNull() const { return raw_ == 0; }
  constexpr ObjType type() const {
    return static_cast<ObjType>(raw_ & 0x3f);
  }
  constexpr uint64_t offset() const { return (raw_ >> 6) << 6; }
  constexpr uint64_t raw() const { return raw_; }

  // The object's global lock id.
  constexpr LockId lock_id() const { return raw_; }

  friend constexpr bool operator==(Oid a, Oid b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(Oid a, Oid b) { return a.raw_ != b.raw_; }

 private:
  uint64_t raw_;
};

}  // namespace aerie

#endif  // AERIE_SRC_OSD_OID_H_
