// Microbenchmarks for Table 1 (paper §7.2.1): latency of common file-system
// operations.
//
//   Sequential read/write — 1GB file in 4KB blocks
//   Random read/write     — random 100MB out of a 1GB file in 4KB blocks
//   Open / Create / Delete — 1024 4KB files (open and create include close)
//   Append                — 4KB appends
//
// Sizes are parameterized so the same code runs paper-sized on big machines
// and scaled-down in CI.
#ifndef AERIE_SRC_WORKLOAD_MICROBENCH_H_
#define AERIE_SRC_WORKLOAD_MICROBENCH_H_

#include <string>

#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/workload/fs_adapter.h"

namespace aerie {

struct MicrobenchConfig {
  uint64_t file_bytes = 1ull << 30;       // "1GB file"
  uint64_t random_bytes = 100ull << 20;   // "randomly access 100MB"
  uint64_t io_size = 4096;
  uint64_t nfiles = 1024;                 // open/create/delete population
  uint64_t small_file_bytes = 4096;
  uint64_t append_count = 1024;

  static MicrobenchConfig Scaled(double scale);
};

// Each returns the op latency distribution in nanoseconds.
Result<Histogram> BenchSeqRead(FsInterface* fs, const std::string& dir,
                               const MicrobenchConfig& config);
Result<Histogram> BenchSeqWrite(FsInterface* fs, const std::string& dir,
                                const MicrobenchConfig& config);
Result<Histogram> BenchRandRead(FsInterface* fs, const std::string& dir,
                                const MicrobenchConfig& config,
                                uint64_t seed);
Result<Histogram> BenchRandWrite(FsInterface* fs, const std::string& dir,
                                 const MicrobenchConfig& config,
                                 uint64_t seed);
// Open (open+close of existing 4KB files).
Result<Histogram> BenchOpen(FsInterface* fs, const std::string& dir,
                            const MicrobenchConfig& config);
// Create (create+write 4KB+close of fresh files).
Result<Histogram> BenchCreate(FsInterface* fs, const std::string& dir,
                              const MicrobenchConfig& config);
// Delete of the files Create produced.
Result<Histogram> BenchDelete(FsInterface* fs, const std::string& dir,
                              const MicrobenchConfig& config);
// 4KB appends to one file.
Result<Histogram> BenchAppend(FsInterface* fs, const std::string& dir,
                              const MicrobenchConfig& config);

}  // namespace aerie

#endif  // AERIE_SRC_WORKLOAD_MICROBENCH_H_
