// Uniform file-system interface the workload generators drive, so every
// benchmark runs the identical op stream against PXFS and the kernel-FS
// baselines (paper §7.1: FileBench "calls through libFS rather than system
// calls" for Aerie, and through syscalls for the kernel file systems).
#ifndef AERIE_SRC_WORKLOAD_FS_ADAPTER_H_
#define AERIE_SRC_WORKLOAD_FS_ADAPTER_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "src/common/open_flags.h"
#include "src/common/status.h"
#include "src/kernelsim/vfs.h"
#include "src/pxfs/pxfs.h"

namespace aerie {

class FsInterface {
 public:
  virtual ~FsInterface() = default;

  virtual Result<int> Open(std::string_view path, int flags) = 0;
  virtual Status Close(int fd) = 0;
  virtual Result<uint64_t> Read(int fd, std::span<char> out) = 0;
  virtual Result<uint64_t> Write(int fd, std::span<const char> data) = 0;
  virtual Result<uint64_t> Pread(int fd, uint64_t offset,
                                 std::span<char> out) = 0;
  virtual Result<uint64_t> Pwrite(int fd, uint64_t offset,
                                  std::span<const char> data) = 0;
  virtual Status Create(std::string_view path) = 0;
  virtual Status Unlink(std::string_view path) = 0;
  virtual Status Mkdir(std::string_view path) = 0;
  virtual Status Rename(std::string_view from, std::string_view to) = 0;
  // Returns the file size (the stat used by workloads).
  virtual Result<uint64_t> StatSize(std::string_view path) = 0;
  // Durability / visibility point (ships Aerie batches; no-op for kernels
  // that commit synchronously).
  virtual Status Sync() = 0;
};

class PxfsAdapter final : public FsInterface {
 public:
  explicit PxfsAdapter(Pxfs* fs) : fs_(fs) {}

  Result<int> Open(std::string_view path, int flags) override {
    return fs_->Open(path, flags);
  }
  Status Close(int fd) override { return fs_->Close(fd); }
  Result<uint64_t> Read(int fd, std::span<char> out) override {
    return fs_->Read(fd, out);
  }
  Result<uint64_t> Write(int fd, std::span<const char> data) override {
    return fs_->Write(fd, data);
  }
  Result<uint64_t> Pread(int fd, uint64_t offset,
                         std::span<char> out) override {
    return fs_->Pread(fd, offset, out);
  }
  Result<uint64_t> Pwrite(int fd, uint64_t offset,
                          std::span<const char> data) override {
    return fs_->Pwrite(fd, offset, data);
  }
  Status Create(std::string_view path) override { return fs_->Create(path); }
  Status Unlink(std::string_view path) override { return fs_->Unlink(path); }
  Status Mkdir(std::string_view path) override { return fs_->Mkdir(path); }
  Status Rename(std::string_view from, std::string_view to) override {
    return fs_->Rename(from, to);
  }
  Result<uint64_t> StatSize(std::string_view path) override {
    auto st = fs_->Stat(path);
    if (!st.ok()) {
      return st.status();
    }
    return st->size;
  }
  Status Sync() override { return fs_->SyncAll(); }

 private:
  Pxfs* fs_;
};

class VfsAdapter final : public FsInterface {
 public:
  explicit VfsAdapter(KernelVfs* vfs) : vfs_(vfs) {}

  Result<int> Open(std::string_view path, int flags) override {
    return vfs_->Open(path, flags);
  }
  Status Close(int fd) override { return vfs_->Close(fd); }
  Result<uint64_t> Read(int fd, std::span<char> out) override {
    return vfs_->Read(fd, out);
  }
  Result<uint64_t> Write(int fd, std::span<const char> data) override {
    return vfs_->Write(fd, data);
  }
  Result<uint64_t> Pread(int fd, uint64_t offset,
                         std::span<char> out) override {
    return vfs_->Pread(fd, offset, out);
  }
  Result<uint64_t> Pwrite(int fd, uint64_t offset,
                          std::span<const char> data) override {
    return vfs_->Pwrite(fd, offset, data);
  }
  Status Create(std::string_view path) override { return vfs_->Create(path); }
  Status Unlink(std::string_view path) override {
    return vfs_->Unlink(path);
  }
  Status Mkdir(std::string_view path) override { return vfs_->Mkdir(path); }
  Status Rename(std::string_view from, std::string_view to) override {
    return vfs_->Rename(from, to);
  }
  Result<uint64_t> StatSize(std::string_view path) override {
    auto attr = vfs_->Stat(path);
    if (!attr.ok()) {
      return attr.status();
    }
    return attr->size;
  }
  Status Sync() override { return OkStatus(); }

 private:
  KernelVfs* vfs_;
};

}  // namespace aerie

#endif  // AERIE_SRC_WORKLOAD_FS_ADAPTER_H_
