// FileBench-style application workloads (paper §7.2.2).
//
// Implements the three profiles the paper evaluates, with its parameters:
//   Fileserver — sequences of creates, deletes, appends, whole-file reads
//                and writes. 10,000 files, mean dir width 20, mean file
//                size 128KB, 1MB I/O size.
//   Webserver  — open/read/close of ten files plus a log append (read-
//                mostly). 10,000 files, width 20, mean size 16KB.
//   Webproxy   — create/write/close, five open/read/close, delete, and a
//                log append, all in one flat directory. 1,000 files, width
//                1500, mean size 16KB.
//
// Every file-system call's latency is recorded (Table 2 reports the mean
// per-operation latency and the 95th percentile). A KV translation of
// Webproxy drives FlatFS (§7.3.2: create-write-close -> put, open-read-
// close -> get, delete -> erase, append -> get/modify/put).
#ifndef AERIE_SRC_WORKLOAD_FILEBENCH_H_
#define AERIE_SRC_WORKLOAD_FILEBENCH_H_

#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/flatfs/flatfs.h"
#include "src/workload/fs_adapter.h"

namespace aerie {

enum class FilebenchKind { kFileserver, kWebserver, kWebproxy };

std::string_view FilebenchKindName(FilebenchKind kind);

struct FilebenchProfile {
  FilebenchKind kind = FilebenchKind::kFileserver;
  uint64_t nfiles = 10000;
  uint64_t dir_width = 20;
  uint64_t mean_file_size = 128 << 10;
  uint64_t io_size = 1 << 20;
  uint64_t append_size = 16 << 10;

  // The paper's configurations, scaled by `scale` (1.0 = paper-sized).
  static FilebenchProfile Paper(FilebenchKind kind, double scale);
};

// Drives one profile against one FsInterface within `root_dir`.
class FilebenchRunner {
 public:
  // `instance` distinguishes concurrent runners sharing one directory tree
  // (threads in one process, paper §7.2.3): each instance owns its files
  // but all instances contend on the same directories.
  FilebenchRunner(FsInterface* fs, const FilebenchProfile& profile,
                  std::string root_dir, uint64_t seed, uint64_t instance = 0);

  // Builds the directory tree and pre-populates the fileset.
  Status Prepare();

  // Runs one workload iteration; each FS call's latency lands in `ops`.
  Status RunIteration(Histogram* ops);

  // Convenience: iterations until `seconds` elapse; returns ops/sec.
  Result<double> RunForSeconds(double seconds, Histogram* ops);

  uint64_t files_live() const { return live_files_.size(); }

 private:
  std::string PathOf(uint64_t file_id) const;
  std::string FreshPath();
  Result<std::string> PickLive();
  uint64_t SampleFileSize();

  Status OpFileserver(Histogram* ops);
  Status OpWebserver(Histogram* ops);
  Status OpWebproxy(Histogram* ops);

  // Timed wrappers.
  Status CreateWriteClose(const std::string& path, uint64_t bytes,
                          Histogram* ops);
  Status OpenReadClose(const std::string& path, Histogram* ops);
  Status AppendTo(const std::string& path, uint64_t bytes, Histogram* ops);

  FsInterface* fs_;
  FilebenchProfile profile_;
  std::string root_;
  uint64_t instance_;
  Rng rng_;
  std::vector<std::string> dirs_;
  std::vector<std::string> live_files_;
  std::string log_path_;
  std::string io_buffer_;
  std::string read_buffer_;
  uint64_t fresh_counter_ = 0;
};

// The Webproxy profile translated to FlatFS's put/get/erase (paper §7.3.2).
class FlatWebproxyRunner {
 public:
  FlatWebproxyRunner(FlatFs* flat, const FilebenchProfile& profile,
                     std::string key_prefix, uint64_t seed);

  Status Prepare();
  Status RunIteration(Histogram* ops);
  Result<double> RunForSeconds(double seconds, Histogram* ops);

 private:
  std::string KeyOf(uint64_t file_id) const;

  FlatFs* flat_;
  FilebenchProfile profile_;
  std::string prefix_;
  Rng rng_;
  std::vector<std::string> live_keys_;
  std::string value_buffer_;
  std::string read_buffer_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace aerie

#endif  // AERIE_SRC_WORKLOAD_FILEBENCH_H_
