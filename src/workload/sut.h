// System-under-test factory: builds each file-system configuration the
// paper evaluates (§7.1) behind a uniform handle the benchmarks drive.
//
//   kPxfs      — Aerie PXFS with the path-name cache
//   kPxfsNnc   — PXFS with no name caching (PXFS-NNC)
//   kRamFs     — kernel-VFS + RamFS backend (no crash consistency)
//   kExt3      — kernel-VFS + ExtSimFs (indirect blocks + journal)
//   kExt4      — kernel-VFS + ExtSimFs (extents + journal)
//   kFlatFs    — Aerie FlatFS (per-client FlatFs handles)
//
// Extra clients (Aerie kinds) model the paper's multiprogrammed processes:
// each gets its own libFS, clerk, caches and session (DESIGN.md §4).
#ifndef AERIE_SRC_WORKLOAD_SUT_H_
#define AERIE_SRC_WORKLOAD_SUT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/flatfs/flatfs.h"
#include "src/kernelsim/extsim.h"
#include "src/kernelsim/ramfs.h"
#include "src/libfs/system.h"
#include "src/workload/fs_adapter.h"

namespace aerie {

enum class SutKind {
  kPxfs,
  kPxfsNnc,
  kRamFs,
  kExt3,
  kExt4,
  kFlatFs,
};

std::string_view SutKindName(SutKind kind);

class SystemUnderTest {
 public:
  struct Options {
    uint64_t region_bytes = 2ull << 30;   // Aerie SCM region
    uint64_t disk_blocks = 512ull << 10;  // RAM disk (2GB at 4KB)
    uint64_t write_latency_ns = 0;        // Figure 6 knob (per cache line)
    uint64_t rpc_delay_ns = 10000;        // modeled loopback RPC round trip
    uint64_t syscall_entry_ns = 250;      // kernel baselines
    uint64_t flat_capacity = 64 << 10;
  };

  static Result<std::unique_ptr<SystemUnderTest>> Create(
      SutKind kind, const Options& options);

  ~SystemUnderTest();

  SutKind kind() const { return kind_; }
  std::string_view name() const { return SutKindName(kind_); }

  // The default client's FS handle (thread-safe; threads of one "process").
  FsInterface* fs() { return default_fs_.get(); }

  // A new independent client (own libFS/clerk/caches). Kernel kinds return
  // the shared VFS (processes share the kernel). Returned pointer is owned
  // by the SUT.
  Result<FsInterface*> NewClientFs();

  // FlatFS handles (kind kFlatFs only).
  FlatFs* flat() { return flat_.get(); }
  Result<FlatFs*> NewClientFlat();

  // Adjusts the persistence-latency knob everywhere (Figure 6).
  void SetWriteLatency(uint64_t ns);

  // Underlying pieces (ablation benches poke at these).
  AerieSystem* aerie() { return aerie_.get(); }
  Pxfs* pxfs() { return pxfs_.get(); }
  KernelVfs* vfs() { return vfs_.get(); }

 private:
  SystemUnderTest() = default;

  SutKind kind_ = SutKind::kPxfs;
  Options options_;

  // Aerie side.
  std::unique_ptr<AerieSystem> aerie_;
  std::unique_ptr<AerieSystem::Client> client_;
  std::unique_ptr<Pxfs> pxfs_;
  std::unique_ptr<FlatFs> flat_;
  struct ExtraClient {
    std::unique_ptr<AerieSystem::Client> client;
    std::unique_ptr<Pxfs> pxfs;
    std::unique_ptr<FlatFs> flat;
    std::unique_ptr<FsInterface> adapter;
  };
  std::vector<std::unique_ptr<ExtraClient>> extra_clients_;

  // Kernel side.
  std::unique_ptr<RamDisk> disk_;
  std::unique_ptr<KernelFsBackend> backend_;
  std::unique_ptr<KernelVfs> vfs_;

  std::unique_ptr<FsInterface> default_fs_;
};

}  // namespace aerie

#endif  // AERIE_SRC_WORKLOAD_SUT_H_
