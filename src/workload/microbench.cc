#include "src/workload/microbench.h"

#include <algorithm>

#include "src/common/clock.h"

namespace aerie {

namespace {

constexpr char kBigFile[] = "/bigfile";

// Builds (or reuses) the large file the read/write benchmarks target.
Status EnsureBigFile(FsInterface* fs, const std::string& dir,
                     uint64_t bytes, uint64_t io_size) {
  const std::string path = dir + kBigFile;
  auto size = fs->StatSize(path);
  if (size.ok() && *size >= bytes) {
    return OkStatus();
  }
  AERIE_ASSIGN_OR_RETURN(
      int fd, fs->Open(path, kOpenCreate | kOpenWrite | kOpenTrunc));
  std::string buf(io_size, 'b');
  for (uint64_t off = 0; off < bytes; off += io_size) {
    AERIE_RETURN_IF_ERROR(
        fs->Write(fd, std::span<const char>(buf.data(), buf.size()))
            .status());
  }
  AERIE_RETURN_IF_ERROR(fs->Close(fd));
  return fs->Sync();
}

template <typename Fn>
Status TimedInto(Histogram* hist, Fn&& fn) {
  const uint64_t start = NowNanos();
  Status st = fn();
  hist->Record(NowNanos() - start);
  return st;
}

}  // namespace

MicrobenchConfig MicrobenchConfig::Scaled(double scale) {
  MicrobenchConfig c;
  c.file_bytes = std::max<uint64_t>(
      static_cast<uint64_t>(static_cast<double>(c.file_bytes) * scale),
      4 << 20);
  c.random_bytes = std::min(
      c.file_bytes,
      std::max<uint64_t>(
          static_cast<uint64_t>(static_cast<double>(c.random_bytes) * scale),
          1 << 20));
  c.nfiles = std::max<uint64_t>(
      static_cast<uint64_t>(static_cast<double>(c.nfiles) * scale), 64);
  c.append_count = std::max<uint64_t>(
      static_cast<uint64_t>(static_cast<double>(c.append_count) * scale), 64);
  return c;
}

Result<Histogram> BenchSeqRead(FsInterface* fs, const std::string& dir,
                               const MicrobenchConfig& config) {
  AERIE_RETURN_IF_ERROR(
      EnsureBigFile(fs, dir, config.file_bytes, config.io_size));
  AERIE_ASSIGN_OR_RETURN(int fd, fs->Open(dir + kBigFile, kOpenRead));
  Histogram hist;
  std::string buf(config.io_size, '\0');
  for (uint64_t off = 0; off < config.file_bytes; off += config.io_size) {
    AERIE_RETURN_IF_ERROR(TimedInto(&hist, [&] {
      return fs->Read(fd, std::span<char>(buf.data(), buf.size())).status();
    }));
  }
  AERIE_RETURN_IF_ERROR(fs->Close(fd));
  return hist;
}

Result<Histogram> BenchSeqWrite(FsInterface* fs, const std::string& dir,
                                const MicrobenchConfig& config) {
  AERIE_RETURN_IF_ERROR(
      EnsureBigFile(fs, dir, config.file_bytes, config.io_size));
  AERIE_ASSIGN_OR_RETURN(int fd, fs->Open(dir + kBigFile, kOpenWrite));
  Histogram hist;
  std::string buf(config.io_size, 's');
  for (uint64_t off = 0; off < config.file_bytes; off += config.io_size) {
    AERIE_RETURN_IF_ERROR(TimedInto(&hist, [&] {
      return fs->Write(fd, std::span<const char>(buf.data(), buf.size()))
          .status();
    }));
  }
  AERIE_RETURN_IF_ERROR(fs->Close(fd));
  return hist;
}

Result<Histogram> BenchRandRead(FsInterface* fs, const std::string& dir,
                                const MicrobenchConfig& config,
                                uint64_t seed) {
  AERIE_RETURN_IF_ERROR(
      EnsureBigFile(fs, dir, config.file_bytes, config.io_size));
  AERIE_ASSIGN_OR_RETURN(int fd, fs->Open(dir + kBigFile, kOpenRead));
  Histogram hist;
  Rng rng(seed);
  std::string buf(config.io_size, '\0');
  const uint64_t blocks = config.file_bytes / config.io_size;
  const uint64_t accesses = config.random_bytes / config.io_size;
  for (uint64_t i = 0; i < accesses; ++i) {
    const uint64_t off = rng.Uniform(blocks) * config.io_size;
    AERIE_RETURN_IF_ERROR(TimedInto(&hist, [&] {
      return fs->Pread(fd, off, std::span<char>(buf.data(), buf.size()))
          .status();
    }));
  }
  AERIE_RETURN_IF_ERROR(fs->Close(fd));
  return hist;
}

Result<Histogram> BenchRandWrite(FsInterface* fs, const std::string& dir,
                                 const MicrobenchConfig& config,
                                 uint64_t seed) {
  AERIE_RETURN_IF_ERROR(
      EnsureBigFile(fs, dir, config.file_bytes, config.io_size));
  AERIE_ASSIGN_OR_RETURN(int fd, fs->Open(dir + kBigFile, kOpenWrite));
  Histogram hist;
  Rng rng(seed);
  std::string buf(config.io_size, 'r');
  const uint64_t blocks = config.file_bytes / config.io_size;
  const uint64_t accesses = config.random_bytes / config.io_size;
  for (uint64_t i = 0; i < accesses; ++i) {
    const uint64_t off = rng.Uniform(blocks) * config.io_size;
    AERIE_RETURN_IF_ERROR(TimedInto(&hist, [&] {
      return fs
          ->Pwrite(fd, off, std::span<const char>(buf.data(), buf.size()))
          .status();
    }));
  }
  AERIE_RETURN_IF_ERROR(fs->Close(fd));
  return hist;
}

Result<Histogram> BenchOpen(FsInterface* fs, const std::string& dir,
                            const MicrobenchConfig& config) {
  // Population of small files to open.
  std::string buf(config.small_file_bytes, 'o');
  for (uint64_t i = 0; i < config.nfiles; ++i) {
    const std::string path = dir + "/open" + std::to_string(i);
    if (!fs->StatSize(path).ok()) {
      AERIE_ASSIGN_OR_RETURN(int fd,
                             fs->Open(path, kOpenCreate | kOpenWrite));
      AERIE_RETURN_IF_ERROR(
          fs->Write(fd, std::span<const char>(buf.data(), buf.size()))
              .status());
      AERIE_RETURN_IF_ERROR(fs->Close(fd));
    }
  }
  AERIE_RETURN_IF_ERROR(fs->Sync());

  Histogram hist;
  for (uint64_t i = 0; i < config.nfiles; ++i) {
    const std::string path = dir + "/open" + std::to_string(i);
    AERIE_RETURN_IF_ERROR(TimedInto(&hist, [&] {
      auto fd = fs->Open(path, kOpenRead);
      if (!fd.ok()) {
        return fd.status();
      }
      return fs->Close(*fd);
    }));
  }
  return hist;
}

Result<Histogram> BenchCreate(FsInterface* fs, const std::string& dir,
                              const MicrobenchConfig& config) {
  Histogram hist;
  std::string buf(config.small_file_bytes, 'c');
  for (uint64_t i = 0; i < config.nfiles; ++i) {
    const std::string path = dir + "/create" + std::to_string(i);
    AERIE_RETURN_IF_ERROR(TimedInto(&hist, [&] {
      auto fd = fs->Open(path, kOpenCreate | kOpenWrite);
      if (!fd.ok()) {
        return fd.status();
      }
      Status st =
          fs->Write(*fd, std::span<const char>(buf.data(), buf.size()))
              .status();
      Status cst = fs->Close(*fd);
      return st.ok() ? cst : st;
    }));
  }
  return hist;
}

Result<Histogram> BenchDelete(FsInterface* fs, const std::string& dir,
                              const MicrobenchConfig& config) {
  Histogram hist;
  for (uint64_t i = 0; i < config.nfiles; ++i) {
    const std::string path = dir + "/create" + std::to_string(i);
    AERIE_RETURN_IF_ERROR(
        TimedInto(&hist, [&] { return fs->Unlink(path); }));
  }
  return hist;
}

Result<Histogram> BenchAppend(FsInterface* fs, const std::string& dir,
                              const MicrobenchConfig& config) {
  const std::string path = dir + "/appendfile";
  AERIE_RETURN_IF_ERROR(fs->Create(path));
  AERIE_ASSIGN_OR_RETURN(int fd, fs->Open(path, kOpenWrite | kOpenAppend));
  Histogram hist;
  std::string buf(config.io_size, 'a');
  for (uint64_t i = 0; i < config.append_count; ++i) {
    AERIE_RETURN_IF_ERROR(TimedInto(&hist, [&] {
      return fs->Write(fd, std::span<const char>(buf.data(), buf.size()))
          .status();
    }));
  }
  AERIE_RETURN_IF_ERROR(fs->Close(fd));
  return hist;
}

}  // namespace aerie
