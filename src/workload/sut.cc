#include "src/workload/sut.h"

namespace aerie {

std::string_view SutKindName(SutKind kind) {
  switch (kind) {
    case SutKind::kPxfs:
      return "PXFS";
    case SutKind::kPxfsNnc:
      return "PXFS-NNC";
    case SutKind::kRamFs:
      return "RamFS";
    case SutKind::kExt3:
      return "ext3";
    case SutKind::kExt4:
      return "ext4";
    case SutKind::kFlatFs:
      return "FlatFS";
  }
  return "?";
}

Result<std::unique_ptr<SystemUnderTest>> SystemUnderTest::Create(
    SutKind kind, const Options& options) {
  auto sut = std::unique_ptr<SystemUnderTest>(new SystemUnderTest());
  sut->kind_ = kind;
  sut->options_ = options;

  switch (kind) {
    case SutKind::kPxfs:
    case SutKind::kPxfsNnc:
    case SutKind::kFlatFs: {
      AerieSystem::Options aerie_options;
      aerie_options.region_bytes = options.region_bytes;
      aerie_options.rpc_delay_ns = options.rpc_delay_ns;
      aerie_options.scm_write_ns = options.write_latency_ns;
      auto aerie = AerieSystem::Create(aerie_options);
      if (!aerie.ok()) {
        return aerie.status();
      }
      sut->aerie_ = std::move(*aerie);
      auto client = sut->aerie_->NewClient();
      if (!client.ok()) {
        return client.status();
      }
      sut->client_ = std::move(*client);
      Pxfs::Options pxfs_options;
      pxfs_options.name_cache = kind != SutKind::kPxfsNnc;
      sut->pxfs_ = std::make_unique<Pxfs>(sut->client_->fs(), pxfs_options);
      sut->default_fs_ = std::make_unique<PxfsAdapter>(sut->pxfs_.get());
      if (kind == SutKind::kFlatFs) {
        FlatFs::Options flat_options;
        flat_options.file_capacity = options.flat_capacity;
        sut->flat_ =
            std::make_unique<FlatFs>(sut->client_->fs(), flat_options);
      }
      return sut;
    }

    case SutKind::kRamFs:
    case SutKind::kExt3:
    case SutKind::kExt4: {
      KernelVfs::Options vfs_options;
      vfs_options.syscall_entry_ns = options.syscall_entry_ns;
      if (kind == SutKind::kRamFs) {
        sut->backend_ = std::make_unique<RamFsBackend>();
      } else {
        auto disk = RamDisk::Create(options.disk_blocks);
        if (!disk.ok()) {
          return disk.status();
        }
        sut->disk_ = std::move(*disk);
        sut->disk_->set_write_ns(options.write_latency_ns);
        ExtSimFs::Options ext_options;
        ext_options.use_extents = kind == SutKind::kExt4;
        // JBD calibration: ext3/JBD1 commits are synchronous and costly;
        // ext4/JBD2 commits are cheaper (EXPERIMENTS.md).
        ext_options.journal_commit_overhead_ns =
            kind == SutKind::kExt4 ? 8000 : 15000;
        auto backend = ExtSimFs::Format(sut->disk_.get(), ext_options);
        if (!backend.ok()) {
          return backend.status();
        }
        sut->backend_ = std::move(*backend);
      }
      sut->vfs_ =
          std::make_unique<KernelVfs>(sut->backend_.get(), vfs_options);
      sut->default_fs_ = std::make_unique<VfsAdapter>(sut->vfs_.get());
      return sut;
    }
  }
  return Status(ErrorCode::kInvalidArgument, "unknown SUT kind");
}

SystemUnderTest::~SystemUnderTest() {
  // Teardown order: interface layers before their clients.
  for (auto& extra : extra_clients_) {
    extra->adapter.reset();
    extra->pxfs.reset();
    extra->flat.reset();
    extra->client.reset();
  }
  flat_.reset();
  default_fs_.reset();
  pxfs_.reset();
  client_.reset();
}

Result<FsInterface*> SystemUnderTest::NewClientFs() {
  if (aerie_ == nullptr) {
    return default_fs_.get();  // kernel: all processes share the VFS
  }
  auto client = aerie_->NewClient();
  if (!client.ok()) {
    return client.status();
  }
  auto extra = std::make_unique<ExtraClient>();
  extra->client = std::move(*client);
  Pxfs::Options pxfs_options;
  pxfs_options.name_cache = kind_ != SutKind::kPxfsNnc;
  extra->pxfs = std::make_unique<Pxfs>(extra->client->fs(), pxfs_options);
  extra->adapter = std::make_unique<PxfsAdapter>(extra->pxfs.get());
  FsInterface* out = extra->adapter.get();
  extra_clients_.push_back(std::move(extra));
  return out;
}

Result<FlatFs*> SystemUnderTest::NewClientFlat() {
  if (aerie_ == nullptr) {
    return Status(ErrorCode::kNotSupported, "FlatFS requires an Aerie SUT");
  }
  auto client = aerie_->NewClient();
  if (!client.ok()) {
    return client.status();
  }
  auto extra = std::make_unique<ExtraClient>();
  extra->client = std::move(*client);
  FlatFs::Options flat_options;
  flat_options.file_capacity = options_.flat_capacity;
  extra->flat =
      std::make_unique<FlatFs>(extra->client->fs(), flat_options);
  FlatFs* out = extra->flat.get();
  extra_clients_.push_back(std::move(extra));
  return out;
}

void SystemUnderTest::SetWriteLatency(uint64_t ns) {
  if (aerie_ != nullptr) {
    aerie_->scm_region()->latency_model().set_write_ns(ns);
  }
  if (disk_ != nullptr) {
    disk_->set_write_ns(ns);
  }
}

}  // namespace aerie
