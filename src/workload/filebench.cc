#include "src/workload/filebench.h"

#include <algorithm>
#include <cmath>

#include "src/common/clock.h"

namespace aerie {

namespace {

// Times one FS call and records its latency.
template <typename Fn>
Status Timed(Histogram* ops, Fn&& fn) {
  const uint64_t start = NowNanos();
  Status st = fn();
  ops->Record(NowNanos() - start);
  return st;
}

}  // namespace

std::string_view FilebenchKindName(FilebenchKind kind) {
  switch (kind) {
    case FilebenchKind::kFileserver:
      return "Fileserver";
    case FilebenchKind::kWebserver:
      return "Webserver";
    case FilebenchKind::kWebproxy:
      return "Webproxy";
  }
  return "?";
}

FilebenchProfile FilebenchProfile::Paper(FilebenchKind kind, double scale) {
  FilebenchProfile p;
  p.kind = kind;
  switch (kind) {
    case FilebenchKind::kFileserver:
      p.nfiles = static_cast<uint64_t>(10000 * scale);
      p.dir_width = 20;
      p.mean_file_size = 128 << 10;
      break;
    case FilebenchKind::kWebserver:
      p.nfiles = static_cast<uint64_t>(10000 * scale);
      p.dir_width = 20;
      p.mean_file_size = 16 << 10;
      break;
    case FilebenchKind::kWebproxy:
      p.nfiles = static_cast<uint64_t>(1000 * scale);
      p.dir_width = 1500;
      p.mean_file_size = 16 << 10;
      break;
  }
  p.nfiles = std::max<uint64_t>(p.nfiles, 64);
  p.io_size = 1 << 20;
  p.append_size = 16 << 10;
  return p;
}

FilebenchRunner::FilebenchRunner(FsInterface* fs,
                                 const FilebenchProfile& profile,
                                 std::string root_dir, uint64_t seed,
                                 uint64_t instance)
    : fs_(fs),
      profile_(profile),
      root_(std::move(root_dir)),
      instance_(instance),
      rng_(seed) {
  io_buffer_.assign(profile_.io_size, 'w');
  read_buffer_.assign(profile_.io_size, '\0');
}

uint64_t FilebenchRunner::SampleFileSize() {
  // FileBench sizes are gamma-distributed around the mean; an exponential
  // clamped to [1KB, 4*mean] keeps the same spirit deterministically.
  const double u = std::max(1e-9, rng_.NextDouble());
  const double sampled =
      -static_cast<double>(profile_.mean_file_size) * std::log(u);
  return std::clamp<uint64_t>(static_cast<uint64_t>(sampled), 1024,
                              4 * profile_.mean_file_size);
}

std::string FilebenchRunner::PathOf(uint64_t file_id) const {
  const uint64_t dir = file_id % dirs_.size();
  return dirs_[dir] + "/f" + std::to_string(instance_) + "_" +
         std::to_string(file_id);
}

std::string FilebenchRunner::FreshPath() {
  const uint64_t dir = fresh_counter_ % dirs_.size();
  return dirs_[dir] + "/n" + std::to_string(instance_) + "_" +
         std::to_string(fresh_counter_++);
}

Result<std::string> FilebenchRunner::PickLive() {
  if (live_files_.empty()) {
    return Status(ErrorCode::kNotFound, "fileset empty");
  }
  return live_files_[rng_.Uniform(live_files_.size())];
}

Status FilebenchRunner::Prepare() {
  Status st = fs_->Mkdir(root_);
  if (!st.ok() && st.code() != ErrorCode::kAlreadyExists) {
    return st;  // concurrent instances share the tree
  }
  // Build a directory *tree* with the profile's mean width (FileBench lays
  // filesets out hierarchically; path depth is what makes naming costs and
  // the name cache matter, paper §7.3.1).
  const uint64_t leaves =
      std::max<uint64_t>(1, profile_.nfiles / profile_.dir_width);
  std::vector<std::string> level = {root_};
  while (level.size() < leaves) {
    const uint64_t target =
        std::min<uint64_t>(level.size() * profile_.dir_width, leaves);
    std::vector<std::string> next;
    next.reserve(target);
    for (uint64_t i = 0; i < target; ++i) {
      const std::string child =
          level[i % level.size()] + "/d" + std::to_string(i);
      st = fs_->Mkdir(child);
      if (!st.ok() && st.code() != ErrorCode::kAlreadyExists) {
        return st;
      }
      next.push_back(child);
    }
    level = std::move(next);
  }
  dirs_ = std::move(level);
  live_files_.reserve(profile_.nfiles);
  for (uint64_t f = 0; f < profile_.nfiles; ++f) {
    const std::string path = PathOf(f);
    AERIE_ASSIGN_OR_RETURN(int fd,
                           fs_->Open(path, kOpenCreate | kOpenWrite));
    uint64_t remaining = SampleFileSize();
    while (remaining > 0) {
      const uint64_t chunk = std::min<uint64_t>(remaining, profile_.io_size);
      AERIE_RETURN_IF_ERROR(
          fs_->Write(fd, std::span<const char>(io_buffer_.data(), chunk))
              .status());
      remaining -= chunk;
    }
    AERIE_RETURN_IF_ERROR(fs_->Close(fd));
    live_files_.push_back(path);
  }
  log_path_ = root_ + "/logfile" + std::to_string(instance_);
  AERIE_RETURN_IF_ERROR(fs_->Create(log_path_));
  return fs_->Sync();
}

Status FilebenchRunner::CreateWriteClose(const std::string& path,
                                         uint64_t bytes, Histogram* ops) {
  int fd = -1;
  AERIE_RETURN_IF_ERROR(Timed(ops, [&] {
    auto opened = fs_->Open(path, kOpenCreate | kOpenWrite | kOpenTrunc);
    if (!opened.ok()) {
      return opened.status();
    }
    fd = *opened;
    return OkStatus();
  }));
  uint64_t remaining = bytes;
  while (remaining > 0) {
    const uint64_t chunk = std::min<uint64_t>(remaining, profile_.io_size);
    AERIE_RETURN_IF_ERROR(Timed(ops, [&] {
      return fs_->Write(fd, std::span<const char>(io_buffer_.data(), chunk))
          .status();
    }));
    remaining -= chunk;
  }
  return Timed(ops, [&] { return fs_->Close(fd); });
}

Status FilebenchRunner::OpenReadClose(const std::string& path,
                                      Histogram* ops) {
  int fd = -1;
  Status open_status = Timed(ops, [&] {
    auto opened = fs_->Open(path, kOpenRead);
    if (!opened.ok()) {
      return opened.status();
    }
    fd = *opened;
    return OkStatus();
  });
  if (!open_status.ok()) {
    return open_status;
  }
  for (;;) {
    uint64_t n = 0;
    AERIE_RETURN_IF_ERROR(Timed(ops, [&] {
      auto got = fs_->Read(
          fd, std::span<char>(read_buffer_.data(), profile_.io_size));
      if (!got.ok()) {
        return got.status();
      }
      n = *got;
      return OkStatus();
    }));
    if (n < profile_.io_size) {
      break;
    }
  }
  return Timed(ops, [&] { return fs_->Close(fd); });
}

Status FilebenchRunner::AppendTo(const std::string& path, uint64_t bytes,
                                 Histogram* ops) {
  int fd = -1;
  AERIE_RETURN_IF_ERROR(Timed(ops, [&] {
    auto opened = fs_->Open(path, kOpenWrite | kOpenAppend);
    if (!opened.ok()) {
      return opened.status();
    }
    fd = *opened;
    return OkStatus();
  }));
  AERIE_RETURN_IF_ERROR(Timed(ops, [&] {
    return fs_->Write(fd, std::span<const char>(io_buffer_.data(), bytes))
        .status();
  }));
  return Timed(ops, [&] { return fs_->Close(fd); });
}

Status FilebenchRunner::OpFileserver(Histogram* ops) {
  // createfile/writewholefile/close, open/appendrand/close,
  // open/readwholefile/close, deletefile, statfile.
  const std::string fresh = FreshPath();
  AERIE_RETURN_IF_ERROR(CreateWriteClose(fresh, SampleFileSize(), ops));
  live_files_.push_back(fresh);

  AERIE_ASSIGN_OR_RETURN(std::string append_victim, PickLive());
  AERIE_RETURN_IF_ERROR(AppendTo(append_victim, profile_.append_size, ops));

  AERIE_ASSIGN_OR_RETURN(std::string read_victim, PickLive());
  AERIE_RETURN_IF_ERROR(OpenReadClose(read_victim, ops));

  const uint64_t delete_index = rng_.Uniform(live_files_.size());
  const std::string delete_victim = live_files_[delete_index];
  live_files_[delete_index] = live_files_.back();
  live_files_.pop_back();
  AERIE_RETURN_IF_ERROR(
      Timed(ops, [&] { return fs_->Unlink(delete_victim); }));

  AERIE_ASSIGN_OR_RETURN(std::string stat_victim, PickLive());
  return Timed(ops,
               [&] { return fs_->StatSize(stat_victim).status(); });
}

Status FilebenchRunner::OpWebserver(Histogram* ops) {
  for (int i = 0; i < 10; ++i) {
    AERIE_ASSIGN_OR_RETURN(std::string victim, PickLive());
    AERIE_RETURN_IF_ERROR(OpenReadClose(victim, ops));
  }
  return AppendTo(log_path_, profile_.append_size, ops);
}

Status FilebenchRunner::OpWebproxy(Histogram* ops) {
  // delete + create-write-close + 5x open-read-close + log append.
  const uint64_t delete_index = rng_.Uniform(live_files_.size());
  const std::string delete_victim = live_files_[delete_index];
  AERIE_RETURN_IF_ERROR(
      Timed(ops, [&] { return fs_->Unlink(delete_victim); }));
  live_files_[delete_index] = live_files_.back();
  live_files_.pop_back();

  const std::string fresh = FreshPath();
  AERIE_RETURN_IF_ERROR(CreateWriteClose(fresh, SampleFileSize(), ops));
  live_files_.push_back(fresh);

  for (int i = 0; i < 5; ++i) {
    AERIE_ASSIGN_OR_RETURN(std::string victim, PickLive());
    AERIE_RETURN_IF_ERROR(OpenReadClose(victim, ops));
  }
  return AppendTo(log_path_, profile_.append_size, ops);
}

Status FilebenchRunner::RunIteration(Histogram* ops) {
  switch (profile_.kind) {
    case FilebenchKind::kFileserver:
      return OpFileserver(ops);
    case FilebenchKind::kWebserver:
      return OpWebserver(ops);
    case FilebenchKind::kWebproxy:
      return OpWebproxy(ops);
  }
  return Status(ErrorCode::kInvalidArgument, "unknown profile");
}

Result<double> FilebenchRunner::RunForSeconds(double seconds,
                                              Histogram* ops) {
  Stopwatch sw;
  const uint64_t before = ops->count();
  while (sw.ElapsedSeconds() < seconds) {
    AERIE_RETURN_IF_ERROR(RunIteration(ops));
  }
  const double elapsed = sw.ElapsedSeconds();
  return static_cast<double>(ops->count() - before) / elapsed;
}

// --- FlatFS Webproxy translation (paper §7.3.2) -----------------------------

FlatWebproxyRunner::FlatWebproxyRunner(FlatFs* flat,
                                       const FilebenchProfile& profile,
                                       std::string key_prefix, uint64_t seed)
    : flat_(flat),
      profile_(profile),
      prefix_(std::move(key_prefix)),
      rng_(seed) {
  value_buffer_.assign(
      std::min<uint64_t>(profile_.mean_file_size, flat->file_capacity()),
      'v');
  read_buffer_.assign(flat->file_capacity(), '\0');
}

std::string FlatWebproxyRunner::KeyOf(uint64_t file_id) const {
  return prefix_ + std::to_string(file_id);
}

Status FlatWebproxyRunner::Prepare() {
  live_keys_.reserve(profile_.nfiles);
  for (uint64_t f = 0; f < profile_.nfiles; ++f) {
    const std::string key = KeyOf(f);
    AERIE_RETURN_IF_ERROR(flat_->Put(
        key, std::span<const char>(value_buffer_.data(),
                                   value_buffer_.size())));
    live_keys_.push_back(key);
  }
  AERIE_RETURN_IF_ERROR(flat_->Put(prefix_ + "log",
                                   std::span<const char>("", 0)));
  return flat_->Sync();
}

Status FlatWebproxyRunner::RunIteration(Histogram* ops) {
  // erase + put + 5x get + log get/modify/put (paper's conversion).
  const uint64_t erase_index = rng_.Uniform(live_keys_.size());
  const std::string erase_victim = live_keys_[erase_index];
  AERIE_RETURN_IF_ERROR(
      Timed(ops, [&] { return flat_->Erase(erase_victim); }));
  live_keys_[erase_index] = live_keys_.back();
  live_keys_.pop_back();

  const std::string fresh = prefix_ + "n" + std::to_string(fresh_counter_++);
  AERIE_RETURN_IF_ERROR(Timed(ops, [&] {
    return flat_->Put(fresh,
                      std::span<const char>(value_buffer_.data(),
                                            value_buffer_.size()));
  }));
  live_keys_.push_back(fresh);

  for (int i = 0; i < 5; ++i) {
    const std::string& victim = live_keys_[rng_.Uniform(live_keys_.size())];
    AERIE_RETURN_IF_ERROR(Timed(ops, [&] {
      return flat_
          ->Get(victim,
                std::span<char>(read_buffer_.data(), read_buffer_.size()))
          .status();
    }));
  }

  // Append to the log as get/modify/put.
  const std::string log_key = prefix_ + "log";
  AERIE_RETURN_IF_ERROR(Timed(ops, [&] {
    auto n = flat_->Get(log_key, std::span<char>(read_buffer_.data(),
                                                 read_buffer_.size()));
    if (!n.ok()) {
      return n.status();
    }
    const uint64_t new_size =
        std::min<uint64_t>(*n + profile_.append_size, flat_->file_capacity());
    return flat_->Put(log_key, std::span<const char>(read_buffer_.data(),
                                                     new_size));
  }));
  return OkStatus();
}

Result<double> FlatWebproxyRunner::RunForSeconds(double seconds,
                                                 Histogram* ops) {
  Stopwatch sw;
  const uint64_t before = ops->count();
  while (sw.ElapsedSeconds() < seconds) {
    AERIE_RETURN_IF_ERROR(RunIteration(ops));
  }
  const double elapsed = sw.ElapsedSeconds();
  return static_cast<double>(ops->count() - before) / elapsed;
}

}  // namespace aerie
