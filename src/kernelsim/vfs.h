// Instrumented VFS layer (paper §3, Figure 1).
//
// Reproduces the cost *structure* of the Unix VFS the paper measured with
// perf on Linux 3.2: a mode-switch charge on syscall entry, reference-counted
// file descriptors, in-memory inode and dentry caches with their
// synchronization, and per-component hierarchical path resolution with
// permission checks. Each operation's time is attributed to the paper's five
// categories so bench/fig1_vfs_breakdown can print the same breakdown:
//
//   entry function | file descriptors | synchronization | memory objects |
//   naming
//
// The code in each category is genuinely executed (hash lookups, allocation,
// lock acquisitions); only the hardware mode-switch is a calibrated constant
// (Options::syscall_entry_ns), since a library cannot take a real trap.
#ifndef AERIE_SRC_KERNELSIM_VFS_H_
#define AERIE_SRC_KERNELSIM_VFS_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/open_flags.h"
#include "src/common/status.h"
#include "src/kernelsim/backend.h"
#include "src/obs/obs.h"

namespace aerie {

enum class VfsCat : int {
  kEntry = 0,       // syscall entry + main routine dispatch
  kFds,             // file-descriptor table management + refcounting
  kSync,            // lock acquisitions (icache, dcache, fd table)
  kMemObjects,      // in-memory inode/dentry allocation + init + teardown
  kNaming,          // path-component resolution + permission checks
  kBackend,         // time spent below the VFS (the concrete FS)
  kCount,
};

// Per-VFS cost attribution, stored directly in obs registry counters so
// fig1_vfs_breakdown reads the same reporting path as every other layer.
// Counters are registered for the lifetime of the owning KernelVfs.
struct VfsStats {
  obs::Counter entry_ns{"vfs.entry.ns"};
  obs::Counter fds_ns{"vfs.fds.ns"};
  obs::Counter sync_ns{"vfs.sync.ns"};
  obs::Counter memobj_ns{"vfs.memobj.ns"};
  obs::Counter naming_ns{"vfs.naming.ns"};
  obs::Counter backend_ns{"vfs.backend.ns"};
  obs::Counter ops{"vfs.ops.count"};
  obs::ScopedRegistration registration;

  VfsStats() {
    registration.AddAll(entry_ns, fds_ns, sync_ns, memobj_ns, naming_ns,
                        backend_ns, ops);
  }

  obs::Counter& Cat(VfsCat cat) {
    obs::Counter* const cats[static_cast<int>(VfsCat::kCount)] = {
        &entry_ns, &fds_ns, &sync_ns, &memobj_ns, &naming_ns, &backend_ns};
    return *cats[static_cast<int>(cat)];
  }
  const obs::Counter& Cat(VfsCat cat) const {
    return const_cast<VfsStats*>(this)->Cat(cat);
  }

  void Add(VfsCat cat, uint64_t nanos) { Cat(cat).Add(nanos); }
  uint64_t Get(VfsCat cat) const { return Cat(cat).value(); }
  // Total time attributed to VFS-proper categories (excludes backend).
  uint64_t VfsTotal() const {
    uint64_t total = 0;
    for (int c = 0; c < static_cast<int>(VfsCat::kBackend); ++c) {
      total += Get(static_cast<VfsCat>(c));
    }
    return total;
  }
  void Reset() {
    entry_ns.Reset();
    fds_ns.Reset();
    sync_ns.Reset();
    memobj_ns.Reset();
    naming_ns.Reset();
    backend_ns.Reset();
    ops.Reset();
  }
};

struct VfsDirent {
  std::string name;
  InodeNum ino;
  bool is_dir;
};

class KernelVfs {
 public:
  struct Options {
    // Mode switch + register save/restore + cache/TLB pollution amortized
    // (FlexSC-style measurements put this in the hundreds of ns).
    uint64_t syscall_entry_ns = 250;
    // Per-4KB-page cost of moving data through the page cache (page
    // allocation, radix-tree insert/lookup, page lock, dirty accounting) on
    // read/write paths. Calibration documented in EXPERIMENTS.md.
    uint64_t page_cost_ns = 600;
    size_t dcache_max = 1 << 20;
    size_t icache_max = 1 << 20;
  };

  KernelVfs(KernelFsBackend* backend, const Options& options)
      : backend_(backend), options_(options) {}
  explicit KernelVfs(KernelFsBackend* backend)
      : KernelVfs(backend, Options{}) {}

  // --- "System calls" ---
  Result<int> Open(std::string_view path, int flags);  // pxfs kOpen* flags
  Status Close(int fd);
  Result<uint64_t> Read(int fd, std::span<char> out);
  Result<uint64_t> Write(int fd, std::span<const char> data);
  Result<uint64_t> Pread(int fd, uint64_t offset, std::span<char> out);
  Result<uint64_t> Pwrite(int fd, uint64_t offset,
                          std::span<const char> data);
  Result<uint64_t> Seek(int fd, uint64_t offset);
  Status Create(std::string_view path);
  Status Mkdir(std::string_view path);
  Status Unlink(std::string_view path);
  Status Rmdir(std::string_view path) { return Unlink(path); }
  Status Rename(std::string_view from, std::string_view to);
  Result<KInodeAttr> Stat(std::string_view path);
  Result<std::vector<VfsDirent>> ReadDir(std::string_view path);
  Status Fsync(int fd);
  Status Truncate(std::string_view path, uint64_t size);

  // Cold caches (Figure 1 methodology: "experiments start with cold inode
  // and dentry caches").
  void DropCaches();

  VfsStats& stats() { return stats_; }
  size_t icache_size() const;
  size_t dcache_size() const;

 private:
  // In-memory inode object (the paper's "memory objects" category).
  struct VfsInode {
    InodeNum ino = 0;
    bool is_dir = false;
    uint32_t mode = 0644;
    std::atomic<uint32_t> refcount{1};
  };
  struct OpenFile {
    std::shared_ptr<VfsInode> inode;
    uint64_t offset = 0;
    int flags = 0;
  };

  class CatTimer {
   public:
    CatTimer(VfsStats* stats, VfsCat cat)
        : stats_(stats), cat_(cat), start_(NowNanos()) {}
    ~CatTimer() { stats_->Add(cat_, NowNanos() - start_); }

   private:
    VfsStats* stats_;
    VfsCat cat_;
    uint64_t start_;
  };

  // Charges syscall entry (mode switch) and counts the op.
  void EnterSyscall();
  // Charges the per-page page-cache cost for a data-path transfer.
  void ChargePages(uint64_t bytes);

  // Resolves a path to (parent inode, leaf name, leaf ino if it exists).
  struct WalkResult {
    std::shared_ptr<VfsInode> parent;
    std::string leaf;
    std::shared_ptr<VfsInode> target;  // null if absent
  };
  Result<WalkResult> Walk(std::string_view path);

  // icache lookup-or-create (memory-objects + sync costs).
  Result<std::shared_ptr<VfsInode>> GetInode(InodeNum ino);
  void ForgetInode(InodeNum ino);

  // dcache operations.
  static uint64_t DentryKey(InodeNum parent, std::string_view name);
  Result<InodeNum> DcacheLookup(InodeNum parent, std::string_view name);
  void DcacheInsert(InodeNum parent, std::string_view name, InodeNum ino);
  void DcacheErase(InodeNum parent, std::string_view name);

  Result<OpenFile*> FileFor(int fd);

  KernelFsBackend* backend_;
  Options options_;
  VfsStats stats_;

  mutable std::mutex icache_mu_;
  std::unordered_map<InodeNum, std::shared_ptr<VfsInode>> icache_;

  mutable std::mutex dcache_mu_;
  struct DentryVal {
    InodeNum parent;
    std::string name;
    InodeNum ino;
  };
  std::unordered_map<uint64_t, DentryVal> dcache_;

  mutable std::mutex fds_mu_;
  std::vector<std::unique_ptr<OpenFile>> fds_;
  std::vector<int> free_fds_;
};

}  // namespace aerie

#endif  // AERIE_SRC_KERNELSIM_VFS_H_
