#include "src/kernelsim/blockdev.h"

namespace aerie {

Result<std::unique_ptr<RamDisk>> RamDisk::Create(uint64_t block_count) {
  if (block_count == 0) {
    return Status(ErrorCode::kInvalidArgument, "empty disk");
  }
  auto data = std::make_unique<char[]>(block_count * kBlockSize);
  std::memset(data.get(), 0, block_count * kBlockSize);
  return std::unique_ptr<RamDisk>(
      new RamDisk(std::move(data), block_count));
}

Status RamDisk::Write(uint64_t block, uint64_t offset_in_block,
                      std::span<const char> data) {
  if (block >= block_count_ ||
      offset_in_block + data.size() > kBlockSize) {
    return Status(ErrorCode::kIoError, "write beyond device");
  }
  std::memcpy(BlockPtr(block) + offset_in_block, data.data(), data.size());
  blocks_written_.fetch_add(1, std::memory_order_relaxed);
  Charge((data.size() + 63) / 64);
  return OkStatus();
}

void RamDisk::FlushBlock(uint64_t block) {
  (void)block;
  Charge(kLinesPerBlock);
}

}  // namespace aerie
