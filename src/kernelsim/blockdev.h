// RAM-disk block device (paper §7.1).
//
// The paper mounts ext3/ext4 on Linux's brd RAM disk, modified to perform
// block writes with streaming stores and flush them with blflush — i.e. the
// same persistence cost model as SCM, at block granularity. This device does
// exactly that: writes are memcpy plus a per-cache-line latency charge, and
// the same write_ns knob the SCM region uses drives Figure 6's sensitivity
// sweep for the kernel file systems.
#ifndef AERIE_SRC_KERNELSIM_BLOCKDEV_H_
#define AERIE_SRC_KERNELSIM_BLOCKDEV_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

#include "src/common/clock.h"
#include "src/common/status.h"

namespace aerie {

inline constexpr uint64_t kBlockSize = 4096;
inline constexpr uint64_t kLinesPerBlock = kBlockSize / 64;

class RamDisk {
 public:
  static Result<std::unique_ptr<RamDisk>> Create(uint64_t block_count);

  uint64_t block_count() const { return block_count_; }

  // Direct pointer to a block's bytes (reads are plain memory loads, as on
  // a RAM disk whose pages live in the page cache).
  char* BlockPtr(uint64_t block) { return data_.get() + block * kBlockSize; }
  const char* BlockPtr(uint64_t block) const {
    return data_.get() + block * kBlockSize;
  }

  // Writes `data` (<= kBlockSize at `offset_in_block`) with streaming stores
  // and flushes it: charged write_ns per dirtied cache line.
  Status Write(uint64_t block, uint64_t offset_in_block,
               std::span<const char> data);
  // Flush-only (blflush of an already written block).
  void FlushBlock(uint64_t block);

  void set_write_ns(uint64_t ns) {
    write_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t write_ns() const {
    return write_ns_.load(std::memory_order_relaxed);
  }

  uint64_t blocks_written() const { return blocks_written_.load(); }
  uint64_t lines_flushed() const { return lines_flushed_.load(); }

 private:
  RamDisk(std::unique_ptr<char[]> data, uint64_t block_count)
      : data_(std::move(data)), block_count_(block_count) {}

  void Charge(uint64_t lines) {
    lines_flushed_.fetch_add(lines, std::memory_order_relaxed);
    const uint64_t ns = write_ns();
    if (ns != 0) {
      SpinDelayNanos(ns * lines);
    }
  }

  std::unique_ptr<char[]> data_;
  uint64_t block_count_;
  std::atomic<uint64_t> write_ns_{0};
  std::atomic<uint64_t> blocks_written_{0};
  std::atomic<uint64_t> lines_flushed_{0};
};

}  // namespace aerie

#endif  // AERIE_SRC_KERNELSIM_BLOCKDEV_H_
