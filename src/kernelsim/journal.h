// JBD-style block journal for the ExtSim file systems.
//
// Ordered-mode metadata journaling as ext3/ext4 do it on the paper's
// modified RAM disk: a transaction collects full images of dirtied metadata
// blocks; commit writes a descriptor block, the block images, and a commit
// record into the journal area (each charged by the block device's
// streaming-write cost model), then checkpoints the blocks in place.
// Data blocks are NOT journaled (ordered mode): callers write them to the
// device before committing the transaction that references them.
//
// Simulator note: Tx::Write applies the bytes to the device memory eagerly
// (an uncharged memcpy) so same-transaction reads observe them — the cost
// model is untouched because every journaled byte is still charged at
// commit (descriptor + images + commit record + in-place checkpoint).
// ExtSim crash states are not modeled; Aerie's own WAL (src/txlog) is the
// crash-consistent one and is tested as such.
#ifndef AERIE_SRC_KERNELSIM_JOURNAL_H_
#define AERIE_SRC_KERNELSIM_JOURNAL_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/kernelsim/blockdev.h"

namespace aerie {

class Journal {
 public:
  // `commit_overhead_ns` models the JBD machinery a real commit pays
  // beyond the block writes (thread handoff, barriers, completion waits);
  // calibration documented in EXPERIMENTS.md.
  Journal(RamDisk* disk, uint64_t start_block, uint64_t block_count,
          uint64_t commit_overhead_ns = 0)
      : disk_(disk),
        start_(start_block),
        blocks_(block_count),
        commit_overhead_ns_(commit_overhead_ns) {}

  class Tx {
   public:
    // Registers a metadata write of `data` at (block, offset): applied to
    // device memory immediately (uncharged), journaled + charged at Commit.
    void Write(uint64_t block, uint64_t offset, std::span<const char> data);

   private:
    friend class Journal;
    explicit Tx(RamDisk* disk) : disk_(disk) {}
    RamDisk* disk_;
    // block -> pending image pieces (offset -> bytes), for journal traffic.
    std::map<uint64_t, std::map<uint64_t, std::vector<char>>> writes_;
  };

  Tx Begin() { return Tx(disk_); }

  // Journals the transaction (descriptor + block images + commit record),
  // then applies the writes in place. Returns the number of journal blocks
  // consumed (tests assert on this).
  Result<uint64_t> Commit(Tx* tx);

  uint64_t commits() const { return commits_; }
  uint64_t journal_blocks_written() const { return journal_blocks_written_; }

 private:
  RamDisk* disk_;
  uint64_t start_;
  uint64_t blocks_;
  uint64_t commit_overhead_ns_;
  std::mutex mu_;
  uint64_t cursor_ = 0;  // next journal block (wraps)
  uint64_t commits_ = 0;
  uint64_t journal_blocks_written_ = 0;
};

}  // namespace aerie

#endif  // AERIE_SRC_KERNELSIM_JOURNAL_H_
