#include "src/kernelsim/ramfs.h"

#include <algorithm>
#include <cstring>

namespace aerie {

RamFsBackend::RamFsBackend() {
  auto root = std::make_unique<Node>();
  root->is_dir = true;
  root->nlink = 2;
  nodes_[1] = std::move(root);
}

Result<InodeNum> RamFsBackend::Lookup(InodeNum dir, std::string_view name) {
  std::lock_guard lock(mu_);
  Node* d = Find(dir);
  if (d == nullptr || !d->is_dir) {
    return Status(ErrorCode::kNotDirectory, "bad directory inode");
  }
  auto it = d->children.find(std::string(name));
  if (it == d->children.end()) {
    return Status(ErrorCode::kNotFound, std::string(name));
  }
  return it->second;
}

Result<InodeNum> RamFsBackend::Create(InodeNum dir, std::string_view name,
                                      bool is_dir) {
  std::lock_guard lock(mu_);
  Node* d = Find(dir);
  if (d == nullptr || !d->is_dir) {
    return Status(ErrorCode::kNotDirectory, "bad directory inode");
  }
  const std::string key(name);
  if (d->children.count(key) != 0) {
    return Status(ErrorCode::kAlreadyExists, key);
  }
  const InodeNum ino = next_ino_++;
  auto node = std::make_unique<Node>();
  node->is_dir = is_dir;
  node->nlink = is_dir ? 2 : 1;
  nodes_[ino] = std::move(node);
  d->children[key] = ino;
  return ino;
}

void RamFsBackend::UnrefLocked(InodeNum ino) {
  Node* n = Find(ino);
  if (n == nullptr) {
    return;
  }
  if (n->nlink > 0) {
    n->nlink--;
  }
  if (n->nlink == 0 || (n->is_dir && n->nlink <= 1)) {
    nodes_.erase(ino);
  }
}

Status RamFsBackend::Unlink(InodeNum dir, std::string_view name) {
  std::lock_guard lock(mu_);
  Node* d = Find(dir);
  if (d == nullptr || !d->is_dir) {
    return Status(ErrorCode::kNotDirectory, "bad directory inode");
  }
  auto it = d->children.find(std::string(name));
  if (it == d->children.end()) {
    return Status(ErrorCode::kNotFound, std::string(name));
  }
  Node* victim = Find(it->second);
  if (victim != nullptr && victim->is_dir && !victim->children.empty()) {
    return Status(ErrorCode::kNotEmpty, std::string(name));
  }
  UnrefLocked(it->second);
  d->children.erase(it);
  return OkStatus();
}

Status RamFsBackend::Rename(InodeNum src_dir, std::string_view src_name,
                            InodeNum dst_dir, std::string_view dst_name) {
  std::lock_guard lock(mu_);
  Node* sd = Find(src_dir);
  Node* dd = Find(dst_dir);
  if (sd == nullptr || dd == nullptr || !sd->is_dir || !dd->is_dir) {
    return Status(ErrorCode::kNotDirectory, "bad directory inode");
  }
  auto sit = sd->children.find(std::string(src_name));
  if (sit == sd->children.end()) {
    return Status(ErrorCode::kNotFound, std::string(src_name));
  }
  const InodeNum moved = sit->second;
  const std::string dst_key(dst_name);
  auto dit = dd->children.find(dst_key);
  if (dit != dd->children.end()) {
    Node* victim = Find(dit->second);
    if (victim != nullptr && victim->is_dir && !victim->children.empty()) {
      return Status(ErrorCode::kNotEmpty, dst_key);
    }
    UnrefLocked(dit->second);
    dd->children.erase(dit);
  }
  sd->children.erase(sit);
  dd->children[dst_key] = moved;
  return OkStatus();
}

Result<uint64_t> RamFsBackend::Read(InodeNum ino, uint64_t offset,
                                    std::span<char> out) {
  std::lock_guard lock(mu_);
  Node* n = Find(ino);
  if (n == nullptr || n->is_dir) {
    return Status(ErrorCode::kBadHandle, "bad file inode");
  }
  if (offset >= n->data.size()) {
    return 0;
  }
  const uint64_t want =
      std::min<uint64_t>(out.size(), n->data.size() - offset);
  std::memcpy(out.data(), n->data.data() + offset, want);
  return want;
}

Result<uint64_t> RamFsBackend::Write(InodeNum ino, uint64_t offset,
                                     std::span<const char> data) {
  std::lock_guard lock(mu_);
  Node* n = Find(ino);
  if (n == nullptr || n->is_dir) {
    return Status(ErrorCode::kBadHandle, "bad file inode");
  }
  if (offset + data.size() > n->data.size()) {
    n->data.resize(offset + data.size());
  }
  std::memcpy(n->data.data() + offset, data.data(), data.size());
  return data.size();
}

Result<KInodeAttr> RamFsBackend::GetAttr(InodeNum ino) {
  std::lock_guard lock(mu_);
  Node* n = Find(ino);
  if (n == nullptr) {
    return Status(ErrorCode::kNotFound, "no such inode");
  }
  KInodeAttr attr;
  attr.ino = ino;
  attr.is_dir = n->is_dir;
  attr.size = n->is_dir ? n->children.size() : n->data.size();
  attr.nlink = n->nlink;
  return attr;
}

Status RamFsBackend::Truncate(InodeNum ino, uint64_t size) {
  std::lock_guard lock(mu_);
  Node* n = Find(ino);
  if (n == nullptr || n->is_dir) {
    return Status(ErrorCode::kBadHandle, "bad file inode");
  }
  n->data.resize(size);
  return OkStatus();
}

Status RamFsBackend::ReadDirNames(
    InodeNum ino,
    const std::function<bool(std::string_view, InodeNum)>& visit) {
  std::lock_guard lock(mu_);
  Node* n = Find(ino);
  if (n == nullptr || !n->is_dir) {
    return Status(ErrorCode::kNotDirectory, "bad directory inode");
  }
  for (const auto& [name, child] : n->children) {
    if (!visit(name, child)) {
      break;
    }
  }
  return OkStatus();
}

}  // namespace aerie
