#include "src/kernelsim/vfs.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/obs/obs.h"

namespace aerie {

namespace {

// Splits an absolute path into components; rejects relative paths.
Result<std::vector<std::string_view>> SplitPathView(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return Status(ErrorCode::kInvalidArgument, "path must be absolute");
  }
  std::vector<std::string_view> parts;
  size_t pos = 0;
  while (pos < path.size()) {
    while (pos < path.size() && path[pos] == '/') {
      pos++;
    }
    size_t end = pos;
    while (end < path.size() && path[end] != '/') {
      end++;
    }
    if (end > pos) {
      parts.push_back(path.substr(pos, end - pos));
    }
    pos = end;
  }
  return parts;
}

}  // namespace

void KernelVfs::ChargePages(uint64_t bytes) {
  if (options_.page_cost_ns == 0 || bytes == 0) {
    return;
  }
  CatTimer timer(&stats_, VfsCat::kMemObjects);
  const uint64_t pages = (bytes + 4095) / 4096;
  SpinDelayNanos(pages * options_.page_cost_ns);
}

void KernelVfs::EnterSyscall() {
  stats_.ops.Add(1);
  CatTimer timer(&stats_, VfsCat::kEntry);
  // The mode switch: trap, register save/restore, and the cache/TLB
  // pollution a real syscall pays (paper §3: "cost of changing modes and
  // cache pollution from entering the kernel").
  SpinDelayNanos(options_.syscall_entry_ns);
}

uint64_t KernelVfs::DentryKey(InodeNum parent, std::string_view name) {
  return HashCombine(Mix64(parent), HashString(name));
}

Result<InodeNum> KernelVfs::DcacheLookup(InodeNum parent,
                                         std::string_view name) {
  const uint64_t key = DentryKey(parent, name);
  std::unique_lock lock(dcache_mu_, std::defer_lock);
  {
    CatTimer sync(&stats_, VfsCat::kSync);
    lock.lock();
  }
  CatTimer naming(&stats_, VfsCat::kNaming);
  auto it = dcache_.find(key);
  if (it == dcache_.end() || it->second.parent != parent ||
      it->second.name != name) {
    return Status(ErrorCode::kNotFound, "dcache miss");
  }
  return it->second.ino;
}

void KernelVfs::DcacheInsert(InodeNum parent, std::string_view name,
                             InodeNum ino) {
  std::unique_lock lock(dcache_mu_, std::defer_lock);
  {
    CatTimer sync(&stats_, VfsCat::kSync);
    lock.lock();
  }
  CatTimer mem(&stats_, VfsCat::kMemObjects);
  if (dcache_.size() >= options_.dcache_max) {
    dcache_.clear();  // wholesale shrink (the kernel prunes via LRU)
  }
  dcache_[DentryKey(parent, name)] =
      DentryVal{parent, std::string(name), ino};
}

void KernelVfs::DcacheErase(InodeNum parent, std::string_view name) {
  std::unique_lock lock(dcache_mu_, std::defer_lock);
  {
    CatTimer sync(&stats_, VfsCat::kSync);
    lock.lock();
  }
  CatTimer mem(&stats_, VfsCat::kMemObjects);
  dcache_.erase(DentryKey(parent, name));
}

Result<std::shared_ptr<KernelVfs::VfsInode>> KernelVfs::GetInode(
    InodeNum ino) {
  {
    std::unique_lock lock(icache_mu_, std::defer_lock);
    {
      CatTimer sync(&stats_, VfsCat::kSync);
      lock.lock();
    }
    CatTimer mem(&stats_, VfsCat::kMemObjects);
    auto it = icache_.find(ino);
    if (it != icache_.end()) {
      it->second->refcount.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Miss: pull attributes from the concrete FS and build the in-memory
  // inode (the allocation + init cost Figure 1 attributes to "memory
  // objects").
  KInodeAttr attr;
  {
    CatTimer backend(&stats_, VfsCat::kBackend);
    auto loaded = backend_->GetAttr(ino);
    if (!loaded.ok()) {
      return loaded.status();
    }
    attr = *loaded;
  }
  std::unique_lock lock(icache_mu_, std::defer_lock);
  {
    CatTimer sync(&stats_, VfsCat::kSync);
    lock.lock();
  }
  CatTimer mem(&stats_, VfsCat::kMemObjects);
  auto it = icache_.find(ino);
  if (it != icache_.end()) {
    it->second->refcount.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  if (icache_.size() >= options_.icache_max) {
    icache_.clear();
  }
  auto inode = std::make_shared<VfsInode>();
  inode->ino = ino;
  inode->is_dir = attr.is_dir;
  inode->mode = attr.mode;
  icache_[ino] = inode;
  return inode;
}

void KernelVfs::ForgetInode(InodeNum ino) {
  std::unique_lock lock(icache_mu_, std::defer_lock);
  {
    CatTimer sync(&stats_, VfsCat::kSync);
    lock.lock();
  }
  CatTimer mem(&stats_, VfsCat::kMemObjects);
  icache_.erase(ino);
}

Result<KernelVfs::WalkResult> KernelVfs::Walk(std::string_view path) {
  std::vector<std::string_view> parts;
  {
    CatTimer naming(&stats_, VfsCat::kNaming);
    auto split = SplitPathView(path);
    if (!split.ok()) {
      return split.status();
    }
    parts = std::move(*split);
  }

  AERIE_ASSIGN_OR_RETURN(std::shared_ptr<VfsInode> cur,
                         GetInode(backend_->root_ino()));
  WalkResult out;
  if (parts.empty()) {
    out.parent = cur;
    out.target = cur;
    return out;
  }

  for (size_t i = 0; i < parts.size(); ++i) {
    const bool last = i + 1 == parts.size();
    {
      // Per-component permission check (paper: "looking up and resolving
      // each path-name component, including access control").
      CatTimer naming(&stats_, VfsCat::kNaming);
      if (!cur->is_dir) {
        return Status(ErrorCode::kNotDirectory, std::string(parts[i]));
      }
      if ((cur->mode & 0444) == 0) {
        return Status(ErrorCode::kPermissionDenied, std::string(parts[i]));
      }
    }
    InodeNum child_ino = 0;
    auto cached = DcacheLookup(cur->ino, parts[i]);
    if (cached.ok()) {
      child_ino = *cached;
    } else {
      CatTimer backend(&stats_, VfsCat::kBackend);
      auto looked = backend_->Lookup(cur->ino, parts[i]);
      if (!looked.ok()) {
        if (last && looked.status().code() == ErrorCode::kNotFound) {
          out.parent = cur;
          out.leaf = std::string(parts[i]);
          return out;  // absent leaf: creation case
        }
        return looked.status();
      }
      child_ino = *looked;
      DcacheInsert(cur->ino, parts[i], child_ino);
    }
    AERIE_ASSIGN_OR_RETURN(std::shared_ptr<VfsInode> child,
                           GetInode(child_ino));
    if (last) {
      out.parent = cur;
      out.leaf = std::string(parts[i]);
      out.target = child;
      return out;
    }
    cur = child;
  }
  return Status(ErrorCode::kInternal, "unreachable walk exit");
}

Result<KernelVfs::OpenFile*> KernelVfs::FileFor(int fd) {
  CatTimer fds(&stats_, VfsCat::kFds);
  std::lock_guard lock(fds_mu_);
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() ||
      fds_[static_cast<size_t>(fd)] == nullptr) {
    return Status(ErrorCode::kBadHandle, "bad fd");
  }
  return fds_[static_cast<size_t>(fd)].get();
}

Result<int> KernelVfs::Open(std::string_view path, int flags) {
  AERIE_SPAN("vfs", "open");
  EnterSyscall();
  AERIE_ASSIGN_OR_RETURN(WalkResult walk, Walk(path));
  if (walk.target == nullptr) {
    if ((flags & kOpenCreate) == 0) {
      return Status(ErrorCode::kNotFound, std::string(path));
    }
    InodeNum ino;
    {
      CatTimer backend(&stats_, VfsCat::kBackend);
      auto created = backend_->Create(walk.parent->ino, walk.leaf, false);
      if (!created.ok()) {
        return created.status();
      }
      ino = *created;
    }
    DcacheInsert(walk.parent->ino, walk.leaf, ino);
    AERIE_ASSIGN_OR_RETURN(walk.target, GetInode(ino));
  }
  if (walk.target->is_dir) {
    return Status(ErrorCode::kIsDirectory, std::string(path));
  }
  if (flags & kOpenTrunc) {
    CatTimer backend(&stats_, VfsCat::kBackend);
    AERIE_RETURN_IF_ERROR(backend_->Truncate(walk.target->ino, 0));
  }

  CatTimer fds(&stats_, VfsCat::kFds);
  auto file = std::make_unique<OpenFile>();
  file->inode = walk.target;
  file->flags = flags;
  if (flags & kOpenAppend) {
    auto attr = backend_->GetAttr(walk.target->ino);
    file->offset = attr.ok() ? attr->size : 0;
  }
  std::lock_guard lock(fds_mu_);
  int fd;
  if (!free_fds_.empty()) {
    fd = free_fds_.back();
    free_fds_.pop_back();
    fds_[static_cast<size_t>(fd)] = std::move(file);
  } else {
    fd = static_cast<int>(fds_.size());
    fds_.push_back(std::move(file));
  }
  return fd;
}

Status KernelVfs::Close(int fd) {
  AERIE_SPAN("vfs", "close");
  EnterSyscall();
  CatTimer fds(&stats_, VfsCat::kFds);
  std::lock_guard lock(fds_mu_);
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() ||
      fds_[static_cast<size_t>(fd)] == nullptr) {
    return Status(ErrorCode::kBadHandle, "bad fd");
  }
  fds_[static_cast<size_t>(fd)]->inode->refcount.fetch_sub(
      1, std::memory_order_relaxed);
  fds_[static_cast<size_t>(fd)].reset();
  free_fds_.push_back(fd);
  return OkStatus();
}

Result<uint64_t> KernelVfs::Read(int fd, std::span<char> out) {
  AERIE_SPAN("vfs", "read");
  EnterSyscall();
  AERIE_ASSIGN_OR_RETURN(OpenFile * file, FileFor(fd));
  Result<uint64_t> n = 0ull;
  {
    CatTimer backend(&stats_, VfsCat::kBackend);
    n = backend_->Read(file->inode->ino, file->offset, out);
  }
  if (n.ok()) {
    ChargePages(*n);  // pages actually moved through the page cache
  }
  if (n.ok()) {
    CatTimer fds(&stats_, VfsCat::kFds);
    file->offset += *n;
  }
  return n;
}

Result<uint64_t> KernelVfs::Write(int fd, std::span<const char> data) {
  AERIE_SPAN("vfs", "write");
  EnterSyscall();
  AERIE_ASSIGN_OR_RETURN(OpenFile * file, FileFor(fd));
  if ((file->flags & kOpenWrite) == 0) {
    return Status(ErrorCode::kPermissionDenied, "fd not open for write");
  }
  ChargePages(data.size());
  Result<uint64_t> n = 0ull;
  {
    CatTimer backend(&stats_, VfsCat::kBackend);
    n = backend_->Write(file->inode->ino, file->offset, data);
  }
  if (n.ok()) {
    CatTimer fds(&stats_, VfsCat::kFds);
    file->offset += *n;
  }
  return n;
}

Result<uint64_t> KernelVfs::Pread(int fd, uint64_t offset,
                                  std::span<char> out) {
  EnterSyscall();
  AERIE_ASSIGN_OR_RETURN(OpenFile * file, FileFor(fd));
  Result<uint64_t> n = 0ull;
  {
    CatTimer backend(&stats_, VfsCat::kBackend);
    n = backend_->Read(file->inode->ino, offset, out);
  }
  if (n.ok()) {
    ChargePages(*n);
  }
  return n;
}

Result<uint64_t> KernelVfs::Pwrite(int fd, uint64_t offset,
                                   std::span<const char> data) {
  EnterSyscall();
  AERIE_ASSIGN_OR_RETURN(OpenFile * file, FileFor(fd));
  if ((file->flags & kOpenWrite) == 0) {
    return Status(ErrorCode::kPermissionDenied, "fd not open for write");
  }
  ChargePages(data.size());
  CatTimer backend(&stats_, VfsCat::kBackend);
  return backend_->Write(file->inode->ino, offset, data);
}

Result<uint64_t> KernelVfs::Seek(int fd, uint64_t offset) {
  EnterSyscall();
  AERIE_ASSIGN_OR_RETURN(OpenFile * file, FileFor(fd));
  CatTimer fds(&stats_, VfsCat::kFds);
  file->offset = offset;
  return offset;
}

Status KernelVfs::Create(std::string_view path) {
  AERIE_ASSIGN_OR_RETURN(int fd, Open(path, kOpenCreate | kOpenWrite));
  return Close(fd);
}

Status KernelVfs::Mkdir(std::string_view path) {
  AERIE_SPAN("vfs", "mkdir");
  EnterSyscall();
  AERIE_ASSIGN_OR_RETURN(WalkResult walk, Walk(path));
  if (walk.target != nullptr) {
    return Status(ErrorCode::kAlreadyExists, std::string(path));
  }
  InodeNum ino;
  {
    CatTimer backend(&stats_, VfsCat::kBackend);
    auto created = backend_->Create(walk.parent->ino, walk.leaf, true);
    if (!created.ok()) {
      return created.status();
    }
    ino = *created;
  }
  DcacheInsert(walk.parent->ino, walk.leaf, ino);
  return OkStatus();
}

Status KernelVfs::Unlink(std::string_view path) {
  AERIE_SPAN("vfs", "unlink");
  EnterSyscall();
  AERIE_ASSIGN_OR_RETURN(WalkResult walk, Walk(path));
  if (walk.target == nullptr) {
    return Status(ErrorCode::kNotFound, std::string(path));
  }
  {
    CatTimer backend(&stats_, VfsCat::kBackend);
    AERIE_RETURN_IF_ERROR(backend_->Unlink(walk.parent->ino, walk.leaf));
  }
  DcacheErase(walk.parent->ino, walk.leaf);
  ForgetInode(walk.target->ino);
  return OkStatus();
}

Status KernelVfs::Rename(std::string_view from, std::string_view to) {
  AERIE_SPAN("vfs", "rename");
  EnterSyscall();
  AERIE_ASSIGN_OR_RETURN(WalkResult src, Walk(from));
  if (src.target == nullptr) {
    return Status(ErrorCode::kNotFound, std::string(from));
  }
  AERIE_ASSIGN_OR_RETURN(WalkResult dst, Walk(to));
  {
    CatTimer backend(&stats_, VfsCat::kBackend);
    AERIE_RETURN_IF_ERROR(backend_->Rename(src.parent->ino, src.leaf,
                                           dst.parent->ino, dst.leaf));
  }
  DcacheErase(src.parent->ino, src.leaf);
  DcacheErase(dst.parent->ino, dst.leaf);
  DcacheInsert(dst.parent->ino, dst.leaf, src.target->ino);
  return OkStatus();
}

Result<KInodeAttr> KernelVfs::Stat(std::string_view path) {
  AERIE_SPAN("vfs", "stat");
  EnterSyscall();
  AERIE_ASSIGN_OR_RETURN(WalkResult walk, Walk(path));
  if (walk.target == nullptr) {
    return Status(ErrorCode::kNotFound, std::string(path));
  }
  CatTimer backend(&stats_, VfsCat::kBackend);
  return backend_->GetAttr(walk.target->ino);
}

Result<std::vector<VfsDirent>> KernelVfs::ReadDir(std::string_view path) {
  AERIE_SPAN("vfs", "readdir");
  EnterSyscall();
  AERIE_ASSIGN_OR_RETURN(WalkResult walk, Walk(path));
  if (walk.target == nullptr) {
    return Status(ErrorCode::kNotFound, std::string(path));
  }
  if (!walk.target->is_dir) {
    return Status(ErrorCode::kNotDirectory, std::string(path));
  }
  std::vector<VfsDirent> out;
  CatTimer backend(&stats_, VfsCat::kBackend);
  AERIE_RETURN_IF_ERROR(backend_->ReadDirNames(
      walk.target->ino, [&](std::string_view name, InodeNum ino) {
        out.push_back(VfsDirent{std::string(name), ino, false});
        return true;
      }));
  return out;
}

Status KernelVfs::Fsync(int fd) {
  EnterSyscall();
  AERIE_ASSIGN_OR_RETURN(OpenFile * file, FileFor(fd));
  CatTimer backend(&stats_, VfsCat::kBackend);
  return backend_->Fsync(file->inode->ino);
}

Status KernelVfs::Truncate(std::string_view path, uint64_t size) {
  EnterSyscall();
  AERIE_ASSIGN_OR_RETURN(WalkResult walk, Walk(path));
  if (walk.target == nullptr) {
    return Status(ErrorCode::kNotFound, std::string(path));
  }
  CatTimer backend(&stats_, VfsCat::kBackend);
  return backend_->Truncate(walk.target->ino, size);
}

void KernelVfs::DropCaches() {
  std::lock_guard ilock(icache_mu_);
  std::lock_guard dlock(dcache_mu_);
  icache_.clear();
  dcache_.clear();
}

size_t KernelVfs::icache_size() const {
  std::lock_guard lock(icache_mu_);
  return icache_.size();
}

size_t KernelVfs::dcache_size() const {
  std::lock_guard lock(dcache_mu_);
  return dcache_.size();
}

}  // namespace aerie
