// ExtSimFs: a block-based journaling file system in the ext3/ext4 mould,
// used as the paper's kernel-FS comparison points (§7.1).
//
// One implementation, two personalities:
//   * ext3-like — indirect block mapping (12 direct pointers, an indirect
//     block, a double-indirect block) + ordered-mode metadata journaling;
//   * ext4-like — extent mapping (runs of contiguous blocks held in the
//     inode, spilling to an extent block) + the same journal.
//
// All metadata mutations (inode table blocks, allocation bitmaps, directory
// data blocks) go through the JBD-style journal; file data is written to the
// device first (ordered mode). Every device write is charged by the RAM
// disk's streaming-write model, so Figure 6's latency sweep affects these
// baselines at block granularity exactly as the paper's modified brd did.
#ifndef AERIE_SRC_KERNELSIM_EXTSIM_H_
#define AERIE_SRC_KERNELSIM_EXTSIM_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "src/kernelsim/backend.h"
#include "src/kernelsim/blockdev.h"
#include "src/kernelsim/journal.h"

namespace aerie {

class ExtSimFs final : public KernelFsBackend {
 public:
  struct Options {
    bool use_extents = false;      // false: ext3-like, true: ext4-like
    uint64_t journal_blocks = 2048;
    // JBD software overhead per commit (see Journal); ext3's JBD1 commits
    // are costlier than ext4's JBD2.
    uint64_t journal_commit_overhead_ns = 0;
  };

  // Formats a fresh file system over the whole disk.
  static Result<std::unique_ptr<ExtSimFs>> Format(RamDisk* disk,
                                                  const Options& options);

  InodeNum root_ino() const override { return 1; }

  Result<InodeNum> Lookup(InodeNum dir, std::string_view name) override;
  Result<InodeNum> Create(InodeNum dir, std::string_view name,
                          bool is_dir) override;
  Status Unlink(InodeNum dir, std::string_view name) override;
  Status Rename(InodeNum src_dir, std::string_view src_name,
                InodeNum dst_dir, std::string_view dst_name) override;
  Result<uint64_t> Read(InodeNum ino, uint64_t offset,
                        std::span<char> out) override;
  Result<uint64_t> Write(InodeNum ino, uint64_t offset,
                         std::span<const char> data) override;
  Result<KInodeAttr> GetAttr(InodeNum ino) override;
  Status Truncate(InodeNum ino, uint64_t size) override;
  Status ReadDirNames(
      InodeNum ino,
      const std::function<bool(std::string_view, InodeNum)>& visit) override;
  Status Fsync(InodeNum ino) override;

  Journal* journal() { return journal_.get(); }
  uint64_t blocks_free() const;

 private:
  // On-disk inode (256 bytes; 16 per block).
  struct DiskInode {
    uint32_t mode;  // 0 = free, 1 = file, 2 = directory
    uint32_t nlink;
    uint64_t size;
    uint64_t direct[12];
    uint64_t indirect;
    uint64_t dindirect;
    struct Extent {
      uint64_t start;
      uint64_t len;
    } extents[6];
    uint64_t extent_spill;  // block holding up to 256 more extents
    uint32_t extent_count;
    uint32_t pad;
  };
  static_assert(sizeof(DiskInode) <= 256, "inode must fit its slot");
  static constexpr uint64_t kInodeSlot = 256;
  static constexpr uint64_t kInodesPerBlock = kBlockSize / kInodeSlot;
  static constexpr uint64_t kPtrsPerBlock = kBlockSize / 8;
  // 255 extents per spill block; the last 8 bytes chain to the next block.
  static constexpr uint64_t kMaxSpillExtents = (kBlockSize - 8) / 16;

  ExtSimFs(RamDisk* disk, const Options& options)
      : disk_(disk), options_(options) {}

  // --- inode table access ---
  uint64_t InodeBlock(InodeNum ino) const {
    return inode_table_start_ + (ino - 1) / kInodesPerBlock;
  }
  uint64_t InodeOffset(InodeNum ino) const {
    return ((ino - 1) % kInodesPerBlock) * kInodeSlot;
  }
  DiskInode LoadInode(InodeNum ino) const;
  void StoreInode(Journal::Tx* tx, InodeNum ino, const DiskInode& inode);

  // --- allocation (volatile free lists + journaled bitmaps) ---
  Result<uint64_t> AllocBlock(Journal::Tx* tx);
  Result<uint64_t> AllocContiguous(Journal::Tx* tx, uint64_t want,
                                   uint64_t* got);
  void FreeBlock(Journal::Tx* tx, uint64_t block);
  Result<InodeNum> AllocInode(Journal::Tx* tx);
  void FreeInode(Journal::Tx* tx, InodeNum ino);
  void MarkBitmap(Journal::Tx* tx, uint64_t bitmap_start, uint64_t index,
                  bool set);

  // --- block mapping ---
  Result<uint64_t> MapBlock(const DiskInode& inode, uint64_t index) const;
  // Committed logical-block count of an extent-mapped file.
  uint64_t TailBlocks(const DiskInode& inode) const;
  // Next spill block in the chain (0 = end).
  uint64_t SpillNext(uint64_t spill_block) const;
  // Appends an extent run (merging with the last inline extent if
  // contiguous); spill entries are written through `tx`.
  Status AppendExtentRun(Journal::Tx* tx, DiskInode* inode, uint64_t start,
                         uint64_t len);
  // Grows the extent mapping to cover logical blocks up to `last_index`,
  // recording the new logical->device pairs in `fresh` (they are invisible
  // to MapBlock until the transaction commits).
  Status ExtendExtents(Journal::Tx* tx, DiskInode* inode,
                       uint64_t last_index,
                       std::map<uint64_t, uint64_t>* fresh);
  // Ensures block `index` is mapped; allocates through `tx` as needed.
  Result<uint64_t> EnsureBlock(Journal::Tx* tx, DiskInode* inode,
                               uint64_t index);
  void FreeAllBlocks(Journal::Tx* tx, DiskInode* inode);

  // --- directory entries ---
  struct DirentRef {
    uint64_t block;   // device block holding the entry
    uint64_t offset;  // offset within the block
    InodeNum ino;
  };
  Result<DirentRef> FindDirent(const DiskInode& dir, std::string_view name);
  Status AppendDirent(Journal::Tx* tx, InodeNum dir_ino, DiskInode* dir,
                      std::string_view name, InodeNum ino);
  // Decrements nlink; frees inode + blocks at zero.
  void DropInodeRef(Journal::Tx* tx, InodeNum ino);
  // ReadDirNames body without taking mu_ (callers hold it).
  Status ReadDirNamesLockedHelper(
      const DiskInode& dir,
      const std::function<bool(std::string_view, InodeNum)>& visit);

  RamDisk* disk_;
  Options options_;
  std::unique_ptr<Journal> journal_;

  uint64_t inode_bitmap_start_ = 0;
  uint64_t block_bitmap_start_ = 0;
  uint64_t inode_table_start_ = 0;
  uint64_t data_start_ = 0;
  uint64_t inode_count_ = 0;

  mutable std::mutex mu_;
  std::set<uint64_t> free_blocks_;
  std::vector<InodeNum> free_inodes_;
};

}  // namespace aerie

#endif  // AERIE_SRC_KERNELSIM_EXTSIM_H_
