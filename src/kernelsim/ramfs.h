// RamFS backend: the VFS page cache *is* the file system (paper §7.1:
// "RamFS uses the VFS page cache and dentry cache as an in-memory file
// system... no consistency guarantees against crashes; it serves as the
// best-performing kernel-mode file system").
#ifndef AERIE_SRC_KERNELSIM_RAMFS_H_
#define AERIE_SRC_KERNELSIM_RAMFS_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/kernelsim/backend.h"

namespace aerie {

class RamFsBackend final : public KernelFsBackend {
 public:
  RamFsBackend();

  InodeNum root_ino() const override { return 1; }

  Result<InodeNum> Lookup(InodeNum dir, std::string_view name) override;
  Result<InodeNum> Create(InodeNum dir, std::string_view name,
                          bool is_dir) override;
  Status Unlink(InodeNum dir, std::string_view name) override;
  Status Rename(InodeNum src_dir, std::string_view src_name,
                InodeNum dst_dir, std::string_view dst_name) override;
  Result<uint64_t> Read(InodeNum ino, uint64_t offset,
                        std::span<char> out) override;
  Result<uint64_t> Write(InodeNum ino, uint64_t offset,
                         std::span<const char> data) override;
  Result<KInodeAttr> GetAttr(InodeNum ino) override;
  Status Truncate(InodeNum ino, uint64_t size) override;
  Status ReadDirNames(
      InodeNum ino,
      const std::function<bool(std::string_view, InodeNum)>& visit) override;
  Status Fsync(InodeNum ino) override { (void)ino; return OkStatus(); }

 private:
  struct Node {
    bool is_dir = false;
    uint32_t nlink = 1;
    std::string data;                       // file contents
    std::map<std::string, InodeNum> children;  // directory entries
  };

  Node* Find(InodeNum ino) {
    auto it = nodes_.find(ino);
    return it == nodes_.end() ? nullptr : it->second.get();
  }
  void UnrefLocked(InodeNum ino);

  std::mutex mu_;
  std::unordered_map<InodeNum, std::unique_ptr<Node>> nodes_;
  InodeNum next_ino_ = 2;
};

}  // namespace aerie

#endif  // AERIE_SRC_KERNELSIM_RAMFS_H_
