// Backend interface the instrumented VFS layer drives.
//
// Mirrors the inode-operations split in a Unix kernel: the VFS owns fds,
// the dentry cache, the inode cache and path walking; the backend owns
// on-"disk" structure (RamFS keeps everything in VFS-side memory, ExtSimFs
// keeps block-based metadata behind a journal).
#ifndef AERIE_SRC_KERNELSIM_BACKEND_H_
#define AERIE_SRC_KERNELSIM_BACKEND_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>

#include "src/common/status.h"

namespace aerie {

using InodeNum = uint64_t;

struct KInodeAttr {
  InodeNum ino = 0;
  bool is_dir = false;
  uint64_t size = 0;
  uint32_t nlink = 0;
  uint32_t mode = 0644;
};

class KernelFsBackend {
 public:
  virtual ~KernelFsBackend() = default;

  virtual InodeNum root_ino() const = 0;

  virtual Result<InodeNum> Lookup(InodeNum dir, std::string_view name) = 0;
  virtual Result<InodeNum> Create(InodeNum dir, std::string_view name,
                                  bool is_dir) = 0;
  virtual Status Unlink(InodeNum dir, std::string_view name) = 0;
  virtual Status Rename(InodeNum src_dir, std::string_view src_name,
                        InodeNum dst_dir, std::string_view dst_name) = 0;
  virtual Result<uint64_t> Read(InodeNum ino, uint64_t offset,
                                std::span<char> out) = 0;
  virtual Result<uint64_t> Write(InodeNum ino, uint64_t offset,
                                 std::span<const char> data) = 0;
  virtual Result<KInodeAttr> GetAttr(InodeNum ino) = 0;
  virtual Status Truncate(InodeNum ino, uint64_t size) = 0;
  virtual Status ReadDirNames(
      InodeNum ino,
      const std::function<bool(std::string_view, InodeNum)>& visit) = 0;
  // Durability point: for journaling backends, force the journal.
  virtual Status Fsync(InodeNum ino) = 0;
};

}  // namespace aerie

#endif  // AERIE_SRC_KERNELSIM_BACKEND_H_
