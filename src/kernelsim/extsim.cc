#include "src/kernelsim/extsim.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"

namespace aerie {

namespace {

// Directory entry record inside a directory's data blocks:
//   u64 ino (0 = deleted) | u16 name_len | name bytes, padded to 8.
constexpr uint64_t kDirentHeader = 10;

uint64_t DirentBytes(size_t name_len) {
  return (kDirentHeader + name_len + 7) & ~7ull;
}

}  // namespace

Result<std::unique_ptr<ExtSimFs>> ExtSimFs::Format(RamDisk* disk,
                                                   const Options& options) {
  auto fs = std::unique_ptr<ExtSimFs>(new ExtSimFs(disk, options));
  const uint64_t total = disk->block_count();

  // Geometry: 1 super, inode bitmap, block bitmap, inode table (1 inode per
  // 64 data blocks, min 1024), journal, data.
  fs->inode_count_ = std::max<uint64_t>(4096, total / 4);  // ~1 per 16KB, like ext defaults
  const uint64_t inode_bitmap_blocks =
      (fs->inode_count_ / 8 + kBlockSize - 1) / kBlockSize;
  const uint64_t block_bitmap_blocks =
      (total / 8 + kBlockSize - 1) / kBlockSize;
  const uint64_t inode_table_blocks =
      (fs->inode_count_ + kInodesPerBlock - 1) / kInodesPerBlock;

  fs->inode_bitmap_start_ = 1;
  fs->block_bitmap_start_ = fs->inode_bitmap_start_ + inode_bitmap_blocks;
  fs->inode_table_start_ = fs->block_bitmap_start_ + block_bitmap_blocks;
  const uint64_t journal_start = fs->inode_table_start_ + inode_table_blocks;
  fs->data_start_ = journal_start + options.journal_blocks;
  if (fs->data_start_ + 16 >= total) {
    return Status(ErrorCode::kOutOfSpace, "disk too small");
  }
  fs->journal_ = std::make_unique<Journal>(
      disk, journal_start, options.journal_blocks,
      options.journal_commit_overhead_ns);

  for (uint64_t b = fs->data_start_; b < total; ++b) {
    fs->free_blocks_.insert(b);
  }
  for (InodeNum ino = fs->inode_count_; ino >= 2; --ino) {
    fs->free_inodes_.push_back(ino);
  }

  // Root inode (ino 1): an empty directory.
  Journal::Tx tx = fs->journal_->Begin();
  DiskInode root{};
  root.mode = 2;
  root.nlink = 2;
  fs->StoreInode(&tx, 1, root);
  fs->MarkBitmap(&tx, fs->inode_bitmap_start_, 0, true);
  auto committed = fs->journal_->Commit(&tx);
  if (!committed.ok()) {
    return committed.status();
  }
  return fs;
}

ExtSimFs::DiskInode ExtSimFs::LoadInode(InodeNum ino) const {
  DiskInode inode;
  std::memcpy(&inode, disk_->BlockPtr(InodeBlock(ino)) + InodeOffset(ino),
              sizeof(inode));
  return inode;
}

void ExtSimFs::StoreInode(Journal::Tx* tx, InodeNum ino,
                          const DiskInode& inode) {
  tx->Write(InodeBlock(ino), InodeOffset(ino),
            std::span<const char>(reinterpret_cast<const char*>(&inode),
                                  sizeof(inode)));
}

void ExtSimFs::MarkBitmap(Journal::Tx* tx, uint64_t bitmap_start,
                          uint64_t index, bool set) {
  const uint64_t block = bitmap_start + index / (kBlockSize * 8);
  const uint64_t byte = (index / 8) % kBlockSize;
  char value = disk_->BlockPtr(block)[byte];
  // Fold in pending tx updates is unnecessary: one bit per object and each
  // object transitions once per transaction.
  if (set) {
    value = static_cast<char>(value | (1 << (index % 8)));
  } else {
    value = static_cast<char>(value & ~(1 << (index % 8)));
  }
  tx->Write(block, byte, std::span<const char>(&value, 1));
}

Result<uint64_t> ExtSimFs::AllocBlock(Journal::Tx* tx) {
  if (free_blocks_.empty()) {
    return Status(ErrorCode::kOutOfSpace, "no free blocks");
  }
  const uint64_t block = *free_blocks_.begin();
  free_blocks_.erase(free_blocks_.begin());
  MarkBitmap(tx, block_bitmap_start_, block, true);
  return block;
}

Result<uint64_t> ExtSimFs::AllocContiguous(Journal::Tx* tx, uint64_t want,
                                           uint64_t* got) {
  if (free_blocks_.empty()) {
    return Status(ErrorCode::kOutOfSpace, "no free blocks");
  }
  // Greedy: take the run starting at the first free block.
  const uint64_t first = *free_blocks_.begin();
  uint64_t run = 1;
  while (run < want && free_blocks_.count(first + run) != 0) {
    run++;
  }
  for (uint64_t i = 0; i < run; ++i) {
    free_blocks_.erase(first + i);
    MarkBitmap(tx, block_bitmap_start_, first + i, true);
  }
  *got = run;
  return first;
}

void ExtSimFs::FreeBlock(Journal::Tx* tx, uint64_t block) {
  free_blocks_.insert(block);
  MarkBitmap(tx, block_bitmap_start_, block, false);
}

Result<InodeNum> ExtSimFs::AllocInode(Journal::Tx* tx) {
  if (free_inodes_.empty()) {
    return Status(ErrorCode::kOutOfSpace, "no free inodes");
  }
  const InodeNum ino = free_inodes_.back();
  free_inodes_.pop_back();
  MarkBitmap(tx, inode_bitmap_start_, ino - 1, true);
  return ino;
}

void ExtSimFs::FreeInode(Journal::Tx* tx, InodeNum ino) {
  free_inodes_.push_back(ino);
  MarkBitmap(tx, inode_bitmap_start_, ino - 1, false);
}

// --- block mapping -----------------------------------------------------------

Result<uint64_t> ExtSimFs::MapBlock(const DiskInode& inode,
                                    uint64_t index) const {
  if (options_.use_extents) {
    // Extent search: inline extents, then the chained spill blocks.
    uint64_t logical = 0;
    for (uint32_t i = 0; i < inode.extent_count && i < 6; ++i) {
      if (index < logical + inode.extents[i].len) {
        return inode.extents[i].start + (index - logical);
      }
      logical += inode.extents[i].len;
    }
    uint64_t spill = inode.extent_spill;
    uint32_t i = 6;
    while (i < inode.extent_count && spill != 0) {
      const auto* entries = reinterpret_cast<const DiskInode::Extent*>(
          disk_->BlockPtr(spill));
      const uint32_t in_block =
          std::min<uint32_t>(inode.extent_count - i,
                             static_cast<uint32_t>(kMaxSpillExtents));
      for (uint32_t j = 0; j < in_block; ++j, ++i) {
        if (index < logical + entries[j].len) {
          return entries[j].start + (index - logical);
        }
        logical += entries[j].len;
      }
      spill = SpillNext(spill);
    }
    return Status(ErrorCode::kNotFound, "block not mapped");
  }

  // Indirect mapping (ext3-like).
  if (index < 12) {
    if (inode.direct[index] == 0) {
      return Status(ErrorCode::kNotFound, "block not mapped");
    }
    return inode.direct[index];
  }
  index -= 12;
  if (index < kPtrsPerBlock) {
    if (inode.indirect == 0) {
      return Status(ErrorCode::kNotFound, "block not mapped");
    }
    const auto* ptrs =
        reinterpret_cast<const uint64_t*>(disk_->BlockPtr(inode.indirect));
    if (ptrs[index] == 0) {
      return Status(ErrorCode::kNotFound, "block not mapped");
    }
    return ptrs[index];
  }
  index -= kPtrsPerBlock;
  if (inode.dindirect == 0 || index >= kPtrsPerBlock * kPtrsPerBlock) {
    return Status(ErrorCode::kNotFound, "block not mapped");
  }
  const auto* level1 =
      reinterpret_cast<const uint64_t*>(disk_->BlockPtr(inode.dindirect));
  const uint64_t l1 = index / kPtrsPerBlock;
  if (level1[l1] == 0) {
    return Status(ErrorCode::kNotFound, "block not mapped");
  }
  const auto* level2 =
      reinterpret_cast<const uint64_t*>(disk_->BlockPtr(level1[l1]));
  if (level2[index % kPtrsPerBlock] == 0) {
    return Status(ErrorCode::kNotFound, "block not mapped");
  }
  return level2[index % kPtrsPerBlock];
}

uint64_t ExtSimFs::SpillNext(uint64_t spill_block) const {
  uint64_t next;
  std::memcpy(&next, disk_->BlockPtr(spill_block) + kBlockSize - 8, 8);
  return next;
}

uint64_t ExtSimFs::TailBlocks(const DiskInode& inode) const {
  uint64_t tail = 0;
  for (uint32_t i = 0; i < inode.extent_count && i < 6; ++i) {
    tail += inode.extents[i].len;
  }
  uint64_t spill = inode.extent_spill;
  uint32_t i = 6;
  while (i < inode.extent_count && spill != 0) {
    const auto* entries =
        reinterpret_cast<const DiskInode::Extent*>(disk_->BlockPtr(spill));
    const uint32_t in_block = std::min<uint32_t>(
        inode.extent_count - i, static_cast<uint32_t>(kMaxSpillExtents));
    for (uint32_t j = 0; j < in_block; ++j, ++i) {
      tail += entries[j].len;
    }
    spill = SpillNext(spill);
  }
  return tail;
}

Status ExtSimFs::AppendExtentRun(Journal::Tx* tx, DiskInode* inode,
                                 uint64_t start, uint64_t len) {
  // Merge into the last inline extent when contiguous.
  if (inode->extent_count > 0 && inode->extent_count <= 6) {
    DiskInode::Extent& last = inode->extents[inode->extent_count - 1];
    if (last.start + last.len == start) {
      last.len += len;
      return OkStatus();
    }
  }
  if (inode->extent_count < 6) {
    inode->extents[inode->extent_count] = {start, len};
    inode->extent_count++;
    return OkStatus();
  }
  // Spill chain: walk to the block holding this slot, extending the chain
  // as needed (255 extents per spill block + a next pointer).
  uint64_t slot = inode->extent_count - 6;
  if (inode->extent_spill == 0) {
    AERIE_ASSIGN_OR_RETURN(inode->extent_spill, AllocBlock(tx));
    std::vector<char> zero(kBlockSize, 0);
    tx->Write(inode->extent_spill, 0,
              std::span<const char>(zero.data(), zero.size()));
  }
  uint64_t spill = inode->extent_spill;
  while (slot >= kMaxSpillExtents) {
    uint64_t next = SpillNext(spill);
    if (next == 0) {
      AERIE_ASSIGN_OR_RETURN(next, AllocBlock(tx));
      std::vector<char> zero(kBlockSize, 0);
      tx->Write(next, 0, std::span<const char>(zero.data(), zero.size()));
      tx->Write(spill, kBlockSize - 8,
                std::span<const char>(reinterpret_cast<const char*>(&next),
                                      8));
    }
    spill = next;
    slot -= kMaxSpillExtents;
  }
  const DiskInode::Extent e{start, len};
  tx->Write(spill, slot * sizeof(e),
            std::span<const char>(reinterpret_cast<const char*>(&e),
                                  sizeof(e)));
  inode->extent_count++;
  return OkStatus();
}

Status ExtSimFs::ExtendExtents(Journal::Tx* tx, DiskInode* inode,
                               uint64_t last_index,
                               std::map<uint64_t, uint64_t>* fresh) {
  uint64_t tail = TailBlocks(*inode);
  while (tail <= last_index) {
    uint64_t got = 0;
    AERIE_ASSIGN_OR_RETURN(uint64_t start,
                           AllocContiguous(tx, last_index - tail + 1, &got));
    AERIE_RETURN_IF_ERROR(AppendExtentRun(tx, inode, start, got));
    for (uint64_t i = 0; i < got; ++i) {
      (*fresh)[tail + i] = start + i;
    }
    tail += got;
  }
  return OkStatus();
}

Result<uint64_t> ExtSimFs::EnsureBlock(Journal::Tx* tx, DiskInode* inode,
                                       uint64_t index) {
  auto mapped = MapBlock(*inode, index);
  if (mapped.ok()) {
    return mapped;
  }

  if (options_.use_extents) {
    // Append-only extent growth (files written sequentially coalesce into
    // few extents — ext4's core advantage). Multi-block appends should go
    // through ExtendExtents, which returns the fresh mapping directly; this
    // single-block path serves directory growth.
    const uint64_t tail = TailBlocks(*inode);
    if (index != tail) {
      return Status(ErrorCode::kNotSupported,
                    "extent files grow append-only");
    }
    AERIE_ASSIGN_OR_RETURN(uint64_t block, AllocBlock(tx));
    AERIE_RETURN_IF_ERROR(AppendExtentRun(tx, inode, block, 1));
    return block;
  }

  // Indirect mapping.
  AERIE_ASSIGN_OR_RETURN(uint64_t block, AllocBlock(tx));
  if (index < 12) {
    inode->direct[index] = block;
    return block;
  }
  uint64_t rel = index - 12;
  if (rel < kPtrsPerBlock) {
    if (inode->indirect == 0) {
      AERIE_ASSIGN_OR_RETURN(inode->indirect, AllocBlock(tx));
      std::vector<char> zero(kBlockSize, 0);
      tx->Write(inode->indirect, 0,
                std::span<const char>(zero.data(), zero.size()));
    }
    tx->Write(inode->indirect, rel * 8,
              std::span<const char>(reinterpret_cast<const char*>(&block),
                                    8));
    return block;
  }
  rel -= kPtrsPerBlock;
  if (inode->dindirect == 0) {
    AERIE_ASSIGN_OR_RETURN(inode->dindirect, AllocBlock(tx));
    std::vector<char> zero(kBlockSize, 0);
    tx->Write(inode->dindirect, 0,
              std::span<const char>(zero.data(), zero.size()));
  }
  const uint64_t l1 = rel / kPtrsPerBlock;
  auto* level1 =
      reinterpret_cast<const uint64_t*>(disk_->BlockPtr(inode->dindirect));
  uint64_t l1_block = level1[l1];
  if (l1_block == 0) {
    AERIE_ASSIGN_OR_RETURN(l1_block, AllocBlock(tx));
    std::vector<char> zero(kBlockSize, 0);
    tx->Write(l1_block, 0, std::span<const char>(zero.data(), zero.size()));
    tx->Write(inode->dindirect, l1 * 8,
              std::span<const char>(
                  reinterpret_cast<const char*>(&l1_block), 8));
  }
  tx->Write(l1_block, (rel % kPtrsPerBlock) * 8,
            std::span<const char>(reinterpret_cast<const char*>(&block), 8));
  return block;
}

void ExtSimFs::FreeAllBlocks(Journal::Tx* tx, DiskInode* inode) {
  if (options_.use_extents) {
    for (uint32_t i = 0; i < inode->extent_count && i < 6; ++i) {
      for (uint64_t b = 0; b < inode->extents[i].len; ++b) {
        FreeBlock(tx, inode->extents[i].start + b);
      }
    }
    uint64_t spill = inode->extent_spill;
    uint32_t i = 6;
    while (spill != 0) {
      const auto* entries =
          reinterpret_cast<const DiskInode::Extent*>(disk_->BlockPtr(spill));
      const uint32_t in_block =
          i < inode->extent_count
              ? std::min<uint32_t>(inode->extent_count - i,
                                   static_cast<uint32_t>(kMaxSpillExtents))
              : 0;
      for (uint32_t j = 0; j < in_block; ++j, ++i) {
        for (uint64_t b = 0; b < entries[j].len; ++b) {
          FreeBlock(tx, entries[j].start + b);
        }
      }
      const uint64_t next = SpillNext(spill);
      FreeBlock(tx, spill);
      spill = next;
    }
    inode->extent_count = 0;
    inode->extent_spill = 0;
  } else {
    for (auto& d : inode->direct) {
      if (d != 0) {
        FreeBlock(tx, d);
        d = 0;
      }
    }
    if (inode->indirect != 0) {
      const auto* ptrs =
          reinterpret_cast<const uint64_t*>(disk_->BlockPtr(inode->indirect));
      for (uint64_t i = 0; i < kPtrsPerBlock; ++i) {
        if (ptrs[i] != 0) {
          FreeBlock(tx, ptrs[i]);
        }
      }
      FreeBlock(tx, inode->indirect);
      inode->indirect = 0;
    }
    if (inode->dindirect != 0) {
      const auto* level1 = reinterpret_cast<const uint64_t*>(
          disk_->BlockPtr(inode->dindirect));
      for (uint64_t i = 0; i < kPtrsPerBlock; ++i) {
        if (level1[i] == 0) {
          continue;
        }
        const auto* level2 =
            reinterpret_cast<const uint64_t*>(disk_->BlockPtr(level1[i]));
        for (uint64_t j = 0; j < kPtrsPerBlock; ++j) {
          if (level2[j] != 0) {
            FreeBlock(tx, level2[j]);
          }
        }
        FreeBlock(tx, level1[i]);
      }
      FreeBlock(tx, inode->dindirect);
      inode->dindirect = 0;
    }
  }
  inode->size = 0;
}

// --- directory entries --------------------------------------------------------

Result<ExtSimFs::DirentRef> ExtSimFs::FindDirent(const DiskInode& dir,
                                                 std::string_view name) {
  const uint64_t blocks = (dir.size + kBlockSize - 1) / kBlockSize;
  for (uint64_t b = 0; b < blocks; ++b) {
    auto device_block = MapBlock(dir, b);
    if (!device_block.ok()) {
      continue;
    }
    const char* data = disk_->BlockPtr(*device_block);
    const uint64_t limit =
        std::min<uint64_t>(kBlockSize, dir.size - b * kBlockSize);
    uint64_t pos = 0;
    while (pos + kDirentHeader <= limit) {
      uint64_t ino;
      uint16_t name_len;
      std::memcpy(&ino, data + pos, 8);
      std::memcpy(&name_len, data + pos + 8, 2);
      if (name_len == 0) {
        break;  // end of entries in this block
      }
      if (ino != 0 && name_len == name.size() &&
          std::memcmp(data + pos + kDirentHeader, name.data(), name_len) ==
              0) {
        return DirentRef{*device_block, pos, ino};
      }
      pos += DirentBytes(name_len);
    }
  }
  return Status(ErrorCode::kNotFound, std::string(name));
}

Status ExtSimFs::AppendDirent(Journal::Tx* tx, InodeNum dir_ino,
                              DiskInode* dir, std::string_view name,
                              InodeNum ino) {
  const uint64_t need = DirentBytes(name.size());
  // Find space at the tail of the last block, or start a fresh block.
  uint64_t in_block = dir->size % kBlockSize;
  uint64_t block_index = dir->size / kBlockSize;
  if (in_block + need > kBlockSize) {
    // Pad to the next block boundary.
    dir->size = (block_index + 1) * kBlockSize;
    block_index++;
    in_block = 0;
  }
  AERIE_ASSIGN_OR_RETURN(uint64_t device_block,
                         EnsureBlock(tx, dir, block_index));
  std::vector<char> entry(need, 0);
  const uint64_t ino64 = ino;
  const uint16_t name_len = static_cast<uint16_t>(name.size());
  std::memcpy(entry.data(), &ino64, 8);
  std::memcpy(entry.data() + 8, &name_len, 2);
  std::memcpy(entry.data() + kDirentHeader, name.data(), name.size());
  tx->Write(device_block, in_block,
            std::span<const char>(entry.data(), entry.size()));
  dir->size += need;
  StoreInode(tx, dir_ino, *dir);
  return OkStatus();
}

void ExtSimFs::DropInodeRef(Journal::Tx* tx, InodeNum ino) {
  DiskInode inode = LoadInode(ino);
  if (inode.nlink > 0) {
    inode.nlink--;
  }
  if (inode.nlink == 0 || (inode.mode == 2 && inode.nlink <= 1)) {
    FreeAllBlocks(tx, &inode);
    inode.mode = 0;
    StoreInode(tx, ino, inode);
    FreeInode(tx, ino);
  } else {
    StoreInode(tx, ino, inode);
  }
}

// --- backend interface ---------------------------------------------------------

Result<InodeNum> ExtSimFs::Lookup(InodeNum dir, std::string_view name) {
  std::lock_guard lock(mu_);
  DiskInode d = LoadInode(dir);
  if (d.mode != 2) {
    return Status(ErrorCode::kNotDirectory, "bad directory inode");
  }
  auto ref = FindDirent(d, name);
  if (!ref.ok()) {
    return ref.status();
  }
  return ref->ino;
}

Result<InodeNum> ExtSimFs::Create(InodeNum dir, std::string_view name,
                                  bool is_dir) {
  std::lock_guard lock(mu_);
  DiskInode d = LoadInode(dir);
  if (d.mode != 2) {
    return Status(ErrorCode::kNotDirectory, "bad directory inode");
  }
  if (FindDirent(d, name).ok()) {
    return Status(ErrorCode::kAlreadyExists, std::string(name));
  }
  Journal::Tx tx = journal_->Begin();
  AERIE_ASSIGN_OR_RETURN(InodeNum ino, AllocInode(&tx));
  DiskInode node{};
  node.mode = is_dir ? 2 : 1;
  node.nlink = is_dir ? 2 : 1;
  StoreInode(&tx, ino, node);
  AERIE_RETURN_IF_ERROR(AppendDirent(&tx, dir, &d, name, ino));
  AERIE_RETURN_IF_ERROR(journal_->Commit(&tx).status());
  return ino;
}

Status ExtSimFs::Unlink(InodeNum dir, std::string_view name) {
  std::lock_guard lock(mu_);
  DiskInode d = LoadInode(dir);
  if (d.mode != 2) {
    return Status(ErrorCode::kNotDirectory, "bad directory inode");
  }
  auto ref = FindDirent(d, name);
  if (!ref.ok()) {
    return ref.status();
  }
  DiskInode victim = LoadInode(ref->ino);
  if (victim.mode == 2) {
    // Empty check: any live dirent?
    bool empty = true;
    (void)ReadDirNamesLockedHelper(victim, [&](std::string_view, InodeNum) {
      empty = false;
      return false;
    });
    if (!empty) {
      return Status(ErrorCode::kNotEmpty, std::string(name));
    }
  }
  Journal::Tx tx = journal_->Begin();
  const uint64_t zero = 0;
  tx.Write(ref->block, ref->offset,
           std::span<const char>(reinterpret_cast<const char*>(&zero), 8));
  DropInodeRef(&tx, ref->ino);
  return journal_->Commit(&tx).status();
}

Status ExtSimFs::Rename(InodeNum src_dir, std::string_view src_name,
                        InodeNum dst_dir, std::string_view dst_name) {
  std::lock_guard lock(mu_);
  DiskInode sd = LoadInode(src_dir);
  DiskInode dd = LoadInode(dst_dir);
  if (sd.mode != 2 || dd.mode != 2) {
    return Status(ErrorCode::kNotDirectory, "bad directory inode");
  }
  auto src = FindDirent(sd, src_name);
  if (!src.ok()) {
    return src.status();
  }
  Journal::Tx tx = journal_->Begin();
  auto dst = FindDirent(dd, dst_name);
  if (dst.ok()) {
    const uint64_t zero = 0;
    tx.Write(dst->block, dst->offset,
             std::span<const char>(reinterpret_cast<const char*>(&zero), 8));
    DropInodeRef(&tx, dst->ino);
  }
  const uint64_t zero = 0;
  tx.Write(src->block, src->offset,
           std::span<const char>(reinterpret_cast<const char*>(&zero), 8));
  // Reload dd in case src removal touched shared state (same dir).
  if (src_dir == dst_dir) {
    dd = sd;
  }
  AERIE_RETURN_IF_ERROR(AppendDirent(&tx, dst_dir, &dd, dst_name, src->ino));
  return journal_->Commit(&tx).status();
}

Result<uint64_t> ExtSimFs::Read(InodeNum ino, uint64_t offset,
                                std::span<char> out) {
  std::lock_guard lock(mu_);
  DiskInode inode = LoadInode(ino);
  if (inode.mode != 1) {
    return Status(ErrorCode::kBadHandle, "bad file inode");
  }
  if (offset >= inode.size) {
    return 0;
  }
  const uint64_t want = std::min<uint64_t>(out.size(), inode.size - offset);
  uint64_t done = 0;
  while (done < want) {
    const uint64_t pos = offset + done;
    const uint64_t index = pos / kBlockSize;
    const uint64_t in_block = pos % kBlockSize;
    const uint64_t chunk = std::min(want - done, kBlockSize - in_block);
    auto block = MapBlock(inode, index);
    if (block.ok()) {
      std::memcpy(out.data() + done, disk_->BlockPtr(*block) + in_block,
                  chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
  }
  return done;
}

Result<uint64_t> ExtSimFs::Write(InodeNum ino, uint64_t offset,
                                 std::span<const char> data) {
  std::lock_guard lock(mu_);
  DiskInode inode = LoadInode(ino);
  if (inode.mode != 1) {
    return Status(ErrorCode::kBadHandle, "bad file inode");
  }
  Journal::Tx tx = journal_->Begin();
  bool metadata_dirty = false;

  // Extent mapping grows in whole runs up front: spill entries live in the
  // transaction buffer, so MapBlock cannot see them until commit. `fresh`
  // carries this op's new logical->device mappings.
  std::map<uint64_t, uint64_t> fresh;
  if (options_.use_extents && !data.empty()) {
    const uint64_t last_index = (offset + data.size() - 1) / kBlockSize;
    if (last_index >= TailBlocks(inode)) {
      AERIE_RETURN_IF_ERROR(ExtendExtents(&tx, &inode, last_index, &fresh));
      metadata_dirty = true;
    }
  }

  uint64_t done = 0;
  while (done < data.size()) {
    const uint64_t pos = offset + done;
    const uint64_t index = pos / kBlockSize;
    const uint64_t in_block = pos % kBlockSize;
    const uint64_t chunk =
        std::min<uint64_t>(data.size() - done, kBlockSize - in_block);
    uint64_t device_block;
    auto fresh_it = fresh.find(index);
    if (fresh_it != fresh.end()) {
      device_block = fresh_it->second;
    } else {
      auto block = MapBlock(inode, index);
      if (block.ok()) {
        device_block = *block;
      } else {
        AERIE_ASSIGN_OR_RETURN(device_block,
                               EnsureBlock(&tx, &inode, index));
        metadata_dirty = true;
      }
    }
    // Ordered mode: data reaches the device before the metadata commit.
    AERIE_RETURN_IF_ERROR(disk_->Write(
        device_block, in_block,
        std::span<const char>(data.data() + done, chunk)));
    done += chunk;
  }
  if (offset + data.size() > inode.size) {
    inode.size = offset + data.size();
    metadata_dirty = true;
  }
  if (metadata_dirty) {
    StoreInode(&tx, ino, inode);
    AERIE_RETURN_IF_ERROR(journal_->Commit(&tx).status());
  }
  return data.size();
}

Result<KInodeAttr> ExtSimFs::GetAttr(InodeNum ino) {
  std::lock_guard lock(mu_);
  DiskInode inode = LoadInode(ino);
  if (inode.mode == 0) {
    return Status(ErrorCode::kNotFound, "no such inode");
  }
  KInodeAttr attr;
  attr.ino = ino;
  attr.is_dir = inode.mode == 2;
  attr.size = inode.size;
  attr.nlink = inode.nlink;
  return attr;
}

Status ExtSimFs::Truncate(InodeNum ino, uint64_t size) {
  std::lock_guard lock(mu_);
  DiskInode inode = LoadInode(ino);
  if (inode.mode != 1) {
    return Status(ErrorCode::kBadHandle, "bad file inode");
  }
  Journal::Tx tx = journal_->Begin();
  if (size == 0) {
    FreeAllBlocks(&tx, &inode);
  }
  // Partial truncation keeps blocks (lazy, like ext's orphan processing);
  // size is authoritative for reads.
  inode.size = size;
  StoreInode(&tx, ino, inode);
  return journal_->Commit(&tx).status();
}

Status ExtSimFs::ReadDirNamesLockedHelper(
    const DiskInode& dir,
    const std::function<bool(std::string_view, InodeNum)>& visit) {
  const uint64_t blocks = (dir.size + kBlockSize - 1) / kBlockSize;
  for (uint64_t b = 0; b < blocks; ++b) {
    auto device_block = MapBlock(dir, b);
    if (!device_block.ok()) {
      continue;
    }
    const char* data = disk_->BlockPtr(*device_block);
    const uint64_t limit =
        std::min<uint64_t>(kBlockSize, dir.size - b * kBlockSize);
    uint64_t pos = 0;
    while (pos + kDirentHeader <= limit) {
      uint64_t ino;
      uint16_t name_len;
      std::memcpy(&ino, data + pos, 8);
      std::memcpy(&name_len, data + pos + 8, 2);
      if (name_len == 0) {
        break;
      }
      if (ino != 0) {
        if (!visit(std::string_view(data + pos + kDirentHeader, name_len),
                   ino)) {
          return OkStatus();
        }
      }
      pos += DirentBytes(name_len);
    }
  }
  return OkStatus();
}

Status ExtSimFs::ReadDirNames(
    InodeNum ino,
    const std::function<bool(std::string_view, InodeNum)>& visit) {
  std::lock_guard lock(mu_);
  DiskInode dir = LoadInode(ino);
  if (dir.mode != 2) {
    return Status(ErrorCode::kNotDirectory, "bad directory inode");
  }
  return ReadDirNamesLockedHelper(dir, visit);
}

Status ExtSimFs::Fsync(InodeNum ino) {
  (void)ino;  // every transaction commits synchronously
  return OkStatus();
}

uint64_t ExtSimFs::blocks_free() const {
  std::lock_guard lock(mu_);
  return free_blocks_.size();
}

}  // namespace aerie
