#include "src/kernelsim/journal.h"

#include <cstring>

#include "src/common/clock.h"

namespace aerie {

void Journal::Tx::Write(uint64_t block, uint64_t offset,
                        std::span<const char> data) {
  // Eager application (uncharged): same-transaction reads must see the
  // bytes; the full cost lands at Commit.
  std::memcpy(disk_->BlockPtr(block) + offset, data.data(), data.size());
  auto& pieces = writes_[block];
  pieces[offset].assign(data.begin(), data.end());
}

Result<uint64_t> Journal::Commit(Tx* tx) {
  if (tx->writes_.empty()) {
    return 0;
  }
  std::lock_guard lock(mu_);
  if (commit_overhead_ns_ != 0) {
    SpinDelayNanos(commit_overhead_ns_);
  }

  // One descriptor block + one journal block per dirtied metadata block +
  // one commit record. (JBD writes full block images.)
  const uint64_t need = 2 + tx->writes_.size();
  if (need > blocks_) {
    return Status(ErrorCode::kOutOfSpace, "transaction larger than journal");
  }
  if (cursor_ + need > blocks_) {
    cursor_ = 0;  // wrap; the previous checkpoint made old records dead
  }

  // Descriptor block: the list of target block numbers.
  std::vector<char> descriptor(kBlockSize, 0);
  uint64_t pos = 0;
  for (const auto& [block, pieces] : tx->writes_) {
    std::memcpy(descriptor.data() + pos, &block, sizeof(block));
    pos += sizeof(block);
    if (pos + sizeof(block) > kBlockSize) {
      break;
    }
  }
  AERIE_RETURN_IF_ERROR(disk_->Write(
      start_ + cursor_, 0,
      std::span<const char>(descriptor.data(), descriptor.size())));
  cursor_++;

  // Full images of each dirtied block (current content + pending pieces).
  std::vector<char> image(kBlockSize);
  for (const auto& [block, pieces] : tx->writes_) {
    std::memcpy(image.data(), disk_->BlockPtr(block), kBlockSize);
    for (const auto& [offset, bytes] : pieces) {
      std::memcpy(image.data() + offset, bytes.data(), bytes.size());
    }
    AERIE_RETURN_IF_ERROR(disk_->Write(
        start_ + cursor_, 0,
        std::span<const char>(image.data(), image.size())));
    cursor_++;
  }

  // Commit record (small, flushed).
  const uint64_t magic = 0x4a424443u;  // "JBDC"
  AERIE_RETURN_IF_ERROR(disk_->Write(
      start_ + cursor_, 0,
      std::span<const char>(reinterpret_cast<const char*>(&magic),
                            sizeof(magic))));
  cursor_++;

  // Checkpoint: apply the writes in place.
  for (const auto& [block, pieces] : tx->writes_) {
    for (const auto& [offset, bytes] : pieces) {
      AERIE_RETURN_IF_ERROR(disk_->Write(
          block, offset, std::span<const char>(bytes.data(), bytes.size())));
    }
  }

  commits_++;
  journal_blocks_written_ += need;
  tx->writes_.clear();
  return need;
}

}  // namespace aerie
