// In-process transport: direct dispatch plus a configurable simulated
// round-trip latency (spin, not sleep, to model a loopback RPC's CPU cost).
#ifndef AERIE_SRC_RPC_INPROC_H_
#define AERIE_SRC_RPC_INPROC_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/clock.h"
#include "src/obs/trace.h"
#include "src/rpc/transport.h"

namespace aerie {

class InprocTransport final : public Transport {
 public:
  InprocTransport(const RpcDispatcher* dispatcher, uint64_t client_id,
                  uint64_t round_trip_ns = 0)
      : dispatcher_(dispatcher),
        client_id_(client_id),
        round_trip_ns_(round_trip_ns) {}

  Result<std::string> Call(uint32_t method, std::string_view request) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    obs::RpcMethodStats* stats = nullptr;
    if (obs::CountersOn()) {
      stats = &obs::RpcMethodStatsFor(method);
      stats->calls.Add(1);
      stats->bytes_out.Add(request.size());
    }
    obs::ScopedSpan span(stats != nullptr && obs::SpansOn() ? &stats->span
                                                            : nullptr);
    // Only the simulated wire halves count as RPC wait for this transport:
    // dispatch runs the handler on the caller thread, which is real local
    // CPU the profiler attributes to the handler's own spans.
    if (round_trip_ns_ != 0) {
      obs::ScopedWait wire(obs::WaitKind::kRpc);
      SpinDelayNanos(round_trip_ns_ / 2);
    }
    Result<std::string> result = [&] {
      // Dispatch runs on the caller thread, so the trace context would flow
      // implicitly — but install a scoped copy anyway, mirroring the socket
      // transport: handler-side context changes must not leak back into the
      // client, and both transports exercise the same propagation contract.
      obs::ScopedTraceContext trace_scope(obs::CurrentTraceContext());
      return dispatcher_->Dispatch(client_id_, method, request);
    }();
    if (round_trip_ns_ != 0) {
      obs::ScopedWait wire(obs::WaitKind::kRpc);
      SpinDelayNanos(round_trip_ns_ / 2);
    }
    if (stats != nullptr && result.ok()) {
      stats->bytes_in.Add(result.value().size());
    }
    return result;
  }

  uint64_t client_id() const override { return client_id_; }
  uint64_t calls_made() const override {
    return calls_.load(std::memory_order_relaxed);
  }

  void set_round_trip_ns(uint64_t ns) { round_trip_ns_ = ns; }

 private:
  const RpcDispatcher* dispatcher_;
  uint64_t client_id_;
  uint64_t round_trip_ns_;
  std::atomic<uint64_t> calls_{0};
};

}  // namespace aerie

#endif  // AERIE_SRC_RPC_INPROC_H_
