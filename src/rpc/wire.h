// Wire-format serialization for RPC messages and metadata-op logs.
//
// Little-endian, length-prefixed, bounds-checked. Both the RPC layer and the
// libFS batching log (whose entries the TFS must treat as untrusted input)
// use these helpers, so every Read* validates against the buffer bounds.
//
// Scalars are serialized byte-wise (value >> 8*i for byte i) rather than via
// memcpy so the encoding is little-endian regardless of host byte order.
#ifndef AERIE_SRC_RPC_WIRE_H_
#define AERIE_SRC_RPC_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace aerie {

// Append-only message builder.
class WireBuffer {
 public:
  void AppendU8(uint8_t v) { data_.push_back(static_cast<char>(v)); }
  void AppendU16(uint16_t v) { AppendLe(v, 2); }
  void AppendU32(uint32_t v) { AppendLe(v, 4); }
  void AppendU64(uint64_t v) { AppendLe(v, 8); }
  void AppendI64(int64_t v) { AppendU64(static_cast<uint64_t>(v)); }

  // Length-prefixed byte string (u32 length).
  void AppendString(std::string_view s) {
    AppendU32(static_cast<uint32_t>(s.size()));
    data_.append(s.data(), s.size());
  }
  void AppendBytes(std::span<const char> b) {
    AppendString(std::string_view(b.data(), b.size()));
  }

  // Unprefixed bytes. Framing-layer use only (payloads that already carry an
  // outer length, e.g. the socket transport's frame body).
  void AppendRaw(std::string_view s) { data_.append(s.data(), s.size()); }

  const std::string& data() const { return data_; }
  std::string Release() { return std::move(data_); }
  size_t size() const { return data_.size(); }
  void Clear() { data_.clear(); }

 private:
  void AppendLe(uint64_t v, size_t n) {
    char b[8];
    for (size_t i = 0; i < n; ++i) {
      b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    data_.append(b, n);
  }
  std::string data_;
};

// Bounds-checked reader over a received message.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8() { return ReadScalar<uint8_t>(); }
  Result<uint16_t> ReadU16() { return ReadScalar<uint16_t>(); }
  Result<uint32_t> ReadU32() { return ReadScalar<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadScalar<uint64_t>(); }
  Result<int64_t> ReadI64() {
    auto v = ReadU64();
    if (!v.ok()) {
      return v.status();
    }
    return static_cast<int64_t>(*v);
  }

  Result<std::string_view> ReadString() {
    auto len = ReadU32();
    if (!len.ok()) {
      return len.status();
    }
    if (pos_ + *len > data_.size()) {
      return Status(ErrorCode::kInvalidArgument, "string exceeds buffer");
    }
    std::string_view out = data_.substr(pos_, *len);
    pos_ += *len;
    return out;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  // Everything not yet consumed, without consuming it. Framing-layer use
  // (the socket server hands the rest of a frame to the dispatcher).
  std::string_view Remaining() const { return data_.substr(pos_); }

 private:
  template <typename T>
  Result<T> ReadScalar() {
    if (pos_ + sizeof(T) > data_.size()) {
      return Status(ErrorCode::kInvalidArgument, "message too short");
    }
    uint64_t v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return static_cast<T>(v);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// Optional trace-context field carried inside RPC frame headers so server
// spans become children of the originating client operation.
//
// Layout: u8 flags (bit 0 = context present) | [u64 trace_id | u64 span_id].
// A zero trace_id means "no active trace" and encodes as flags = 0, so the
// common AERIE_OBS=off path costs exactly one byte on the wire.
struct WireTraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool present() const { return trace_id != 0; }
};

inline void AppendTraceContext(WireBuffer& buf, const WireTraceContext& ctx) {
  if (!ctx.present()) {
    buf.AppendU8(0);
    return;
  }
  buf.AppendU8(1);
  buf.AppendU64(ctx.trace_id);
  buf.AppendU64(ctx.span_id);
}

inline Result<WireTraceContext> ReadTraceContext(WireReader& reader) {
  auto flags = reader.ReadU8();
  if (!flags.ok()) {
    return flags.status();
  }
  WireTraceContext ctx;
  if ((*flags & 1) != 0) {
    auto trace_id = reader.ReadU64();
    auto span_id = reader.ReadU64();
    if (!trace_id.ok() || !span_id.ok()) {
      return Status(ErrorCode::kInvalidArgument, "truncated trace context");
    }
    ctx.trace_id = *trace_id;
    ctx.span_id = *span_id;
  }
  return ctx;
}

}  // namespace aerie

#endif  // AERIE_SRC_RPC_WIRE_H_
