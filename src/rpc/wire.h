// Wire-format serialization for RPC messages and metadata-op logs.
//
// Little-endian, length-prefixed, bounds-checked. Both the RPC layer and the
// libFS batching log (whose entries the TFS must treat as untrusted input)
// use these helpers, so every Read* validates against the buffer bounds.
#ifndef AERIE_SRC_RPC_WIRE_H_
#define AERIE_SRC_RPC_WIRE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace aerie {

// Append-only message builder.
class WireBuffer {
 public:
  void AppendU8(uint8_t v) { AppendRaw(&v, 1); }
  void AppendU16(uint16_t v) { AppendRaw(&v, 2); }
  void AppendU32(uint32_t v) { AppendRaw(&v, 4); }
  void AppendU64(uint64_t v) { AppendRaw(&v, 8); }
  void AppendI64(int64_t v) { AppendU64(static_cast<uint64_t>(v)); }

  // Length-prefixed byte string (u32 length).
  void AppendString(std::string_view s) {
    AppendU32(static_cast<uint32_t>(s.size()));
    AppendRaw(s.data(), s.size());
  }
  void AppendBytes(std::span<const char> b) {
    AppendString(std::string_view(b.data(), b.size()));
  }

  const std::string& data() const { return data_; }
  std::string Release() { return std::move(data_); }
  size_t size() const { return data_.size(); }
  void Clear() { data_.clear(); }

 private:
  void AppendRaw(const void* p, size_t n) {
    data_.append(static_cast<const char*>(p), n);
  }
  std::string data_;
};

// Bounds-checked reader over a received message.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8() { return ReadScalar<uint8_t>(); }
  Result<uint16_t> ReadU16() { return ReadScalar<uint16_t>(); }
  Result<uint32_t> ReadU32() { return ReadScalar<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadScalar<uint64_t>(); }
  Result<int64_t> ReadI64() {
    auto v = ReadU64();
    if (!v.ok()) {
      return v.status();
    }
    return static_cast<int64_t>(*v);
  }

  Result<std::string_view> ReadString() {
    auto len = ReadU32();
    if (!len.ok()) {
      return len.status();
    }
    if (pos_ + *len > data_.size()) {
      return Status(ErrorCode::kInvalidArgument, "string exceeds buffer");
    }
    std::string_view out = data_.substr(pos_, *len);
    pos_ += *len;
    return out;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  Result<T> ReadScalar() {
    if (pos_ + sizeof(T) > data_.size()) {
      return Status(ErrorCode::kInvalidArgument, "message too short");
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace aerie

#endif  // AERIE_SRC_RPC_WIRE_H_
