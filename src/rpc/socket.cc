#include "src/rpc/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/obs/trace.h"
#include "src/rpc/wire.h"

namespace aerie {

namespace {

Status WriteAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status(ErrorCode::kUnavailable,
                    std::string("write: ") + std::strerror(errno));
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return OkStatus();
}

Status ReadAll(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status(ErrorCode::kUnavailable,
                    std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status(ErrorCode::kUnavailable, "peer closed connection");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return OkStatus();
}

constexpr uint32_t kMaxFrame = 64u << 20;  // 64MB: bounds a malicious frame

// Smallest valid request frame body: u32 method + u8 trace_flags.
constexpr uint32_t kMinRequestFrame = 5;

// Length prefixes cross the socket as explicit little-endian too.
Result<uint32_t> ReadU32Le(int fd) {
  char buf[4];
  AERIE_RETURN_IF_ERROR(ReadAll(fd, buf, sizeof(buf)));
  WireReader reader(std::string_view(buf, sizeof(buf)));
  return reader.ReadU32();
}

}  // namespace

Result<std::unique_ptr<UdsServer>> UdsServer::Start(
    const std::string& path, const RpcDispatcher* dispatcher) {
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(ErrorCode::kUnavailable,
                  std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status(ErrorCode::kInvalidArgument, "socket path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status(ErrorCode::kUnavailable,
                  std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status(ErrorCode::kUnavailable,
                  std::string("listen: ") + std::strerror(errno));
  }
  auto server =
      std::unique_ptr<UdsServer>(new UdsServer(path, fd, dispatcher));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

UdsServer::~UdsServer() { Shutdown(); }

void UdsServer::Shutdown() {
  if (stopping_.exchange(true)) {
    return;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(mu_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) {
      t.join();
    }
  }
  ::unlink(path_.c_str());
}

void UdsServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listen socket closed
    }
    const uint64_t client_id = next_client_id_.fetch_add(1);
    // Handshake: send the session id the server will know this client by.
    WireBuffer handshake;
    handshake.AppendU64(client_id);
    if (!WriteAll(conn, handshake.data().data(), handshake.size()).ok()) {
      ::close(conn);
      continue;
    }
    std::lock_guard lock(mu_);
    conn_threads_.emplace_back(
        [this, conn, client_id] { ServeConnection(conn, client_id); });
  }
}

void UdsServer::ServeConnection(int fd, uint64_t client_id) {
  if (obs::SpansOn()) {
    char name[32];
    std::snprintf(name, sizeof(name), "tfs.conn%llu",
                  static_cast<unsigned long long>(client_id));
    obs::SetThreadTraceName(name);
  }
  std::string buf;
  while (!stopping_.load()) {
    auto frame_len = ReadU32Le(fd);
    if (!frame_len.ok() || *frame_len < kMinRequestFrame ||
        *frame_len > kMaxFrame) {
      break;
    }
    buf.resize(*frame_len);
    if (!ReadAll(fd, buf.data(), *frame_len).ok()) {
      break;
    }
    WireReader header(std::string_view(buf.data(), *frame_len));
    auto method = header.ReadU32();
    auto trace = ReadTraceContext(header);
    if (!method.ok() || !trace.ok()) {
      break;
    }
    std::string_view payload = header.Remaining();

    // Adopt the caller's trace context for the handler: spans opened while
    // dispatching become children of the remote client operation. An empty
    // context still gets installed so no state leaks between requests.
    obs::TraceContext ctx;
    ctx.trace_id = trace->trace_id;
    ctx.span_id = trace->span_id;
    obs::ScopedTraceContext trace_scope(ctx);

    auto result = dispatcher_->Dispatch(client_id, *method, payload);
    const uint8_t ok = result.ok() ? 1 : 0;
    const std::string& body =
        result.ok() ? result.value() : result.status().ToString();
    // Error responses also carry the ErrorCode so the client can rebuild the
    // exact Status.
    WireBuffer frame;
    const uint32_t resp_len = static_cast<uint32_t>(
        sizeof(uint8_t) + (result.ok() ? 0 : 1) + body.size());
    frame.AppendU32(resp_len);
    frame.AppendU8(ok);
    if (!result.ok()) {
      frame.AppendU8(static_cast<uint8_t>(result.status().code()));
    }
    frame.AppendRaw(body);
    if (!WriteAll(fd, frame.data().data(), frame.size()).ok()) {
      break;
    }
  }
  ::close(fd);
}

Result<std::unique_ptr<UdsTransport>> UdsTransport::Connect(
    const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(ErrorCode::kUnavailable,
                  std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status(ErrorCode::kInvalidArgument, "socket path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status(ErrorCode::kUnavailable,
                  std::string("connect: ") + std::strerror(errno));
  }
  char handshake[8];
  AERIE_RETURN_IF_ERROR(ReadAll(fd, handshake, sizeof(handshake)));
  WireReader reader(std::string_view(handshake, sizeof(handshake)));
  auto client_id = reader.ReadU64();
  AERIE_RETURN_IF_ERROR(client_id.status());
  return std::unique_ptr<UdsTransport>(new UdsTransport(fd, *client_id));
}

UdsTransport::~UdsTransport() { ::close(fd_); }

Result<std::string> UdsTransport::Call(uint32_t method,
                                       std::string_view request) {
  std::lock_guard lock(mu_);
  calls_.fetch_add(1, std::memory_order_relaxed);
  obs::RpcMethodStats* stats = nullptr;
  if (obs::CountersOn()) {
    stats = &obs::RpcMethodStatsFor(method);
    stats->calls.Add(1);
    stats->bytes_out.Add(request.size());
  }
  obs::ScopedSpan span(stats != nullptr && obs::SpansOn() ? &stats->span
                                                          : nullptr);

  // Snapshot the trace context after the rpc.<method> span above opened, so
  // server-side spans hang off the RPC span of this specific call.
  WireTraceContext trace_ctx;
  if (obs::SpansOn()) {
    const obs::TraceContext cur = obs::CurrentTraceContext();
    trace_ctx.trace_id = cur.trace_id;
    trace_ctx.span_id = cur.span_id;
  }
  WireBuffer header;
  header.AppendU32(method);
  AppendTraceContext(header, trace_ctx);

  WireBuffer frame;
  frame.AppendU32(static_cast<uint32_t>(header.size() + request.size()));
  frame.AppendRaw(header.data());
  frame.AppendRaw(request);
  // The round trip — request write through response read — is genuine
  // off-CPU time blocked on the server; charge it to the rpc.<method> span
  // (the RAII scope ends at function exit, after the ns-scale parse below).
  obs::ScopedWait round_trip(obs::WaitKind::kRpc);
  AERIE_RETURN_IF_ERROR(WriteAll(fd_, frame.data().data(), frame.size()));

  auto resp_len_r = ReadU32Le(fd_);
  AERIE_RETURN_IF_ERROR(resp_len_r.status());
  const uint32_t resp_len = *resp_len_r;
  if (resp_len < 1 || resp_len > kMaxFrame) {
    return Status(ErrorCode::kUnavailable, "bad response frame");
  }
  std::string body(resp_len, '\0');
  AERIE_RETURN_IF_ERROR(ReadAll(fd_, body.data(), resp_len));
  if (stats != nullptr) {
    stats->bytes_in.Add(resp_len);
  }
  const uint8_t ok = static_cast<uint8_t>(body[0]);
  if (ok) {
    return body.substr(1);
  }
  if (resp_len < 2) {
    return Status(ErrorCode::kUnavailable, "malformed error response");
  }
  return Status(static_cast<ErrorCode>(body[1]), body.substr(2));
}

}  // namespace aerie
