// RPC transport abstraction (paper §5.1: RPC over loopback sockets).
//
// Clients reach the trusted service through a Transport. Two implementations:
//   * InprocTransport — direct dispatch with a configurable simulated
//     round-trip delay; deterministic, used by unit tests and (with a
//     calibrated delay) by benchmarks.
//   * UdsTransport/UdsServer — real Unix-domain stream sockets with a
//     multithreaded server, the analogue of the paper's loopback TCP.
//
// Server→client revocation callbacks are delivered as direct in-address-space
// upcalls (see lock/clerk.h); in the paper they are RPCs on a second channel,
// but they are off every common path, so only the client→server direction is
// cost-modeled.
#ifndef AERIE_SRC_RPC_TRANSPORT_H_
#define AERIE_SRC_RPC_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/obs/obs.h"

namespace aerie {

// Server-side method registry. client_id identifies the calling client
// session (assigned at connect time; clients cannot forge each other's ids
// because the id is bound to the connection, not the message).
//
// Registration is rare and dispatch is hot, so the handler table is a
// copy-on-write snapshot: Register() rebuilds the map under the lock, while
// Dispatch() grabs a shared_ptr to the current immutable map and invokes the
// handler in place — no std::function copy per call.
class RpcDispatcher {
 public:
  using Handler = std::function<Result<std::string>(uint64_t client_id,
                                                    std::string_view request)>;

  void Register(uint32_t method, Handler handler) {
    std::lock_guard lock(mu_);
    auto current = handlers_.load(std::memory_order_relaxed);
    auto next = current ? std::make_shared<HandlerMap>(*current)
                        : std::make_shared<HandlerMap>();
    (*next)[method] = std::move(handler);
    handlers_.store(std::move(next), std::memory_order_release);
  }

  Result<std::string> Dispatch(uint64_t client_id, uint32_t method,
                               std::string_view request) const {
    const auto snapshot = handlers_.load(std::memory_order_acquire);
    if (snapshot) {
      auto it = snapshot->find(method);
      if (it != snapshot->end()) {
        return it->second(client_id, request);
      }
    }
    AERIE_COUNT("rpc.dispatch.unknown");
    return Status(ErrorCode::kNotSupported, "unknown RPC method");
  }

 private:
  using HandlerMap = std::map<uint32_t, Handler>;

  mutable std::mutex mu_;  // serializes Register()
  std::atomic<std::shared_ptr<const HandlerMap>> handlers_;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Sends `request` for `method`; blocks until the response arrives.
  virtual Result<std::string> Call(uint32_t method,
                                   std::string_view request) = 0;

  // The session id the server knows this client by.
  virtual uint64_t client_id() const = 0;

  // Round trips completed (for tests asserting batching keeps RPC rare).
  virtual uint64_t calls_made() const = 0;
};

}  // namespace aerie

#endif  // AERIE_SRC_RPC_TRANSPORT_H_
