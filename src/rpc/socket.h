// Unix-domain-socket RPC: the analogue of the paper's loopback-socket RPC.
//
// Frame format (all little-endian, serialized via wire.h):
//   request:  u32 frame_len | u32 method | u8 trace_flags |
//             [u64 trace_id | u64 span_id] | payload
//   response: u32 frame_len | u8 ok | [u8 error_code] | payload-or-message
//
// The trace field (WireTraceContext in wire.h) carries the caller's trace
// context so server-side spans are recorded as children of the client
// operation; trace_flags is 0 — one byte — when tracing is off.
//
// The server runs one accept thread plus one thread per connection (the
// paper's TFS "is multithreaded and can handle multiple RPC requests
// concurrently"). Each connection is a client session with a server-assigned
// id, so handlers can trust client identity.
#ifndef AERIE_SRC_RPC_SOCKET_H_
#define AERIE_SRC_RPC_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/rpc/transport.h"

namespace aerie {

class UdsServer {
 public:
  // Binds and starts serving `dispatcher` on `path` (unlinked first).
  static Result<std::unique_ptr<UdsServer>> Start(
      const std::string& path, const RpcDispatcher* dispatcher);

  ~UdsServer();
  UdsServer(const UdsServer&) = delete;
  UdsServer& operator=(const UdsServer&) = delete;

  const std::string& path() const { return path_; }
  uint64_t connections_accepted() const { return next_client_id_ - 1; }

  void Shutdown();

 private:
  UdsServer(std::string path, int listen_fd, const RpcDispatcher* dispatcher)
      : path_(std::move(path)), listen_fd_(listen_fd), dispatcher_(dispatcher) {}

  void AcceptLoop();
  void ServeConnection(int fd, uint64_t client_id);

  std::string path_;
  int listen_fd_;
  const RpcDispatcher* dispatcher_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_client_id_{1};
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> conn_threads_;
};

class UdsTransport final : public Transport {
 public:
  // Connects to a UdsServer. The server assigns the session id, which is
  // returned to the client in the connection handshake.
  static Result<std::unique_ptr<UdsTransport>> Connect(
      const std::string& path);

  ~UdsTransport() override;

  Result<std::string> Call(uint32_t method, std::string_view request) override;
  uint64_t client_id() const override { return client_id_; }
  uint64_t calls_made() const override {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  UdsTransport(int fd, uint64_t client_id) : fd_(fd), client_id_(client_id) {}

  int fd_;
  uint64_t client_id_;
  std::mutex mu_;  // one outstanding call at a time per transport
  std::atomic<uint64_t> calls_{0};
};

}  // namespace aerie

#endif  // AERIE_SRC_RPC_SOCKET_H_
