#include "src/pxfs/pxfs.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/scm/manager.h"

namespace aerie {

namespace {

// Splits a path into components ("/a//b/" -> ["a", "b"]).
Result<std::vector<std::string>> SplitPath(std::string_view path) {
  if (path.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty path");
  }
  std::vector<std::string> parts;
  size_t pos = 0;
  while (pos < path.size()) {
    while (pos < path.size() && path[pos] == '/') {
      pos++;
    }
    size_t end = pos;
    while (end < path.size() && path[end] != '/') {
      end++;
    }
    if (end > pos) {
      std::string_view comp = path.substr(pos, end - pos);
      if (comp == "." ) {
        // skip
      } else if (comp == "..") {
        return Status(ErrorCode::kInvalidArgument,
                      "'..' is not supported in PXFS paths");
      } else {
        parts.emplace_back(comp);
      }
    }
    pos = end;
  }
  return parts;
}

std::string CanonicalPath(const std::vector<std::string>& parts) {
  std::string out = "/";
  for (size_t i = 0; i < parts.size(); ++i) {
    out += parts[i];
    if (i + 1 < parts.size()) {
      out += "/";
    }
  }
  return out;
}

}  // namespace

Pxfs::Pxfs(LibFs* fs, const Options& options)
    : fs_(fs), options_(options), ctx_(fs->read_context()) {
  obs_registration_.AddAll(cache_hits_, cache_misses_);
  // Whenever a global lock leaves this client (paper §6.1):
  //   * if it covered a file this client holds open, tell the TFS the file
  //     is open so unlink-reclaim is deferred ("clients with the file open
  //     notify the service ... when releasing the lock");
  //   * flush everything derived from cached authority (name cache, overlay,
  //     shadows).
  hook_token_ = fs_->AddReleaseHook([this](LockId) {
    // A released lock may have covered any open file (directly, or through
    // a hierarchical ancestor the clerk had cached), so every locally-open,
    // not-yet-notified file is reported before the lock leaves us.
    std::vector<uint64_t> notify;
    {
      std::lock_guard lock(fds_mu_);
      for (const auto& [raw, count] : open_counts_) {
        if (count > 0 && notified_open_.insert(raw).second) {
          notify.push_back(raw);
        }
      }
    }
    for (uint64_t raw : notify) {
      (void)fs_->NotifyOpen(Oid(raw));
    }
    ClearVolatileState();
  });
}

Pxfs::~Pxfs() { fs_->RemoveReleaseHook(hook_token_); }

void Pxfs::ClearVolatileState() {
  {
    std::lock_guard lock(overlay_mu_);
    overlay_.clear();
    shadows_.clear();
  }
  // Cached direct maps fold the shadow state just dropped, and the epoch
  // they were validated under is moving anyway (we are inside a release).
  fs_->ClearDirectCache();
  FlushNameCache();
}

void Pxfs::FlushNameCache() {
  AERIE_SPAN("namecache", "flush");
  std::lock_guard lock(cache_mu_);
  obs::TraceInstant("namecache.flush.entries", name_cache_.size());
  name_cache_.clear();
}

Result<Oid> Pxfs::DirLookup(Oid dir, const std::string& name) {
  {
    std::lock_guard lock(overlay_mu_);
    auto it = overlay_.find(dir.raw());
    if (it != overlay_.end()) {
      auto added = it->second.added.find(name);
      if (added != it->second.added.end()) {
        return Oid(added->second);
      }
      if (it->second.removed.count(name) != 0) {
        return Status(ErrorCode::kNotFound, "name removed");
      }
    }
  }
  AERIE_ASSIGN_OR_RETURN(Collection coll, Collection::Open(ctx_, dir));
  auto value = coll.Lookup(name);
  if (!value.ok()) {
    return value.status();
  }
  return Oid(*value);
}

void Pxfs::OverlayAdd(Oid dir, const std::string& name, Oid oid) {
  std::lock_guard lock(overlay_mu_);
  DirOverlay& ov = overlay_[dir.raw()];
  ov.added[name] = oid.raw();
  ov.removed.erase(name);
}

void Pxfs::OverlayRemove(Oid dir, const std::string& name) {
  std::lock_guard lock(overlay_mu_);
  DirOverlay& ov = overlay_[dir.raw()];
  ov.added.erase(name);
  ov.removed.insert(name);
}

std::shared_ptr<Pxfs::FileShadow> Pxfs::ShadowFor(Oid file, bool create) {
  std::lock_guard lock(overlay_mu_);
  auto it = shadows_.find(file.raw());
  if (it != shadows_.end()) {
    return it->second;
  }
  if (!create) {
    return nullptr;
  }
  auto shadow = std::make_shared<FileShadow>();
  shadows_[file.raw()] = shadow;
  return shadow;
}

Result<Pxfs::Resolved> Pxfs::Resolve(std::string_view path, bool fill_cache) {
  AERIE_SPAN("pxfs", "resolve");
  // Relative paths resolve from the working directory and skip the name
  // cache entirely (paper §6.1).
  const bool relative = !path.empty() && path[0] != '/';
  Oid start = fs_->pxfs_root();
  std::vector<LockId> start_ancestors;
  if (relative) {
    std::lock_guard lock(cwd_mu_);
    if (!cwd_oid_.IsNull()) {
      start = cwd_oid_;
      start_ancestors = cwd_ancestors_;
    }
  }
  AERIE_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  Resolved out;
  if (parts.empty()) {
    out.parent = start;
    out.target = start;
    out.leaf = "";
    out.ancestors = start_ancestors;
    return out;
  }
  const std::string canonical = CanonicalPath(parts);

  if (options_.name_cache && !relative) {
    AERIE_SPAN("namecache", "lookup");
    std::lock_guard lock(cache_mu_);
    auto it = name_cache_.find(canonical);
    if (it != name_cache_.end()) {
      cache_hits_.Add(1);
      out.parent = Oid(it->second.parent_raw);
      out.target = Oid(it->second.target_raw);
      out.leaf = parts.back();
      out.ancestors = it->second.ancestors;
      return out;
    }
    cache_misses_.Add(1);
  }

  // Walk from the start directory, taking a read lock on each directory
  // while its collection is consulted (paper §6.1 "Naming").
  Oid cur = start;
  std::vector<LockId> ancestors = start_ancestors;
  std::string prefix = "";
  LockClerk* clerk = fs_->clerk();
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    AERIE_RETURN_IF_ERROR(
        clerk->Acquire(cur.lock_id(), LockMode::kShared, ancestors));
    auto child = DirLookup(cur, parts[i]);
    clerk->Release(cur.lock_id());
    if (!child.ok()) {
      return child.status();
    }
    if (child->type() != ObjType::kCollection) {
      return Status(ErrorCode::kNotDirectory, parts[i]);
    }
    ancestors.push_back(cur.lock_id());
    prefix += "/" + parts[i];
    if (options_.name_cache && fill_cache && !relative) {
      AERIE_SPAN("namecache", "insert");
      std::lock_guard lock(cache_mu_);
      // Entry for each resolved prefix (created on demand, §6.1).
      name_cache_[prefix] =
          CacheEntry{child->raw(), cur.raw(),
                     std::vector<LockId>(ancestors.begin(),
                                         ancestors.end() - 1)};
    }
    cur = *child;
  }

  out.parent = cur;
  out.leaf = parts.back();
  out.ancestors = ancestors;
  AERIE_RETURN_IF_ERROR(
      clerk->Acquire(cur.lock_id(), LockMode::kShared, ancestors));
  auto target = DirLookup(cur, out.leaf);
  clerk->Release(cur.lock_id());
  if (target.ok()) {
    out.target = *target;
    if (options_.name_cache && fill_cache && !relative) {
      AERIE_SPAN("namecache", "insert");
      std::lock_guard lock(cache_mu_);
      if (name_cache_.size() >= options_.name_cache_max) {
        name_cache_.clear();  // cheap wholesale eviction
      }
      name_cache_[canonical] =
          CacheEntry{out.target.raw(), out.parent.raw(), out.ancestors};
    }
  }
  return out;
}

uint64_t Pxfs::FileSizeNoShadow(Oid file) {
  auto mfile = MFile::Open(ctx_, file);
  return mfile.ok() ? mfile->size() : 0;
}

uint64_t Pxfs::FileSize(Oid file) {
  auto shadow = ShadowFor(file, /*create=*/false);
  if (shadow != nullptr && shadow->has_size) {
    return shadow->size;
  }
  auto mfile = MFile::Open(ctx_, file);
  return mfile.ok() ? mfile->size() : 0;
}

// --- Open / Close ----------------------------------------------------------

Result<int> Pxfs::Open(std::string_view path, int flags) {
  AERIE_SPAN("pxfs", "open");
  if ((flags & (kOpenRead | kOpenWrite)) == 0) {
    return Status(ErrorCode::kInvalidArgument, "open needs read or write");
  }
  AERIE_ASSIGN_OR_RETURN(Resolved r, Resolve(path, /*fill_cache=*/true));
  LockClerk* clerk = fs_->clerk();

  if (r.target.IsNull()) {
    if ((flags & kOpenCreate) == 0) {
      return Status(ErrorCode::kNotFound, std::string(path));
    }
    // Create: write-lock the directory, re-check, take a pooled mFile, and
    // log the create (paper §4.3's "life of a file").
    AERIE_RETURN_IF_ERROR(
        clerk->Acquire(r.parent.lock_id(), DirWriteMode(), r.ancestors));
    auto recheck = DirLookup(r.parent, r.leaf);
    if (recheck.ok()) {
      r.target = *recheck;
    } else {
      auto pooled = fs_->TakePooled(ObjType::kMFile);
      if (!pooled.ok()) {
        clerk->Release(r.parent.lock_id());
        return pooled.status();
      }
      MetaOp op;
      op.type = MetaOpType::kCreateFile;
      op.authority = clerk->GlobalAuthorityOf(r.parent.lock_id());
      op.dir = r.parent;
      op.name = r.leaf;
      op.obj = *pooled;
      Status st = fs_->LogOp(std::move(op));
      if (!st.ok()) {
        clerk->Release(r.parent.lock_id());
        return st;
      }
      OverlayAdd(r.parent, r.leaf, *pooled);
      // Pool objects can carry offsets of previously destroyed files; make
      // sure no stale direct map aliases the newborn.
      fs_->InvalidateDirect(*pooled);
      r.target = *pooled;
    }
    clerk->Release(r.parent.lock_id());
  }
  if (r.target.type() != ObjType::kMFile) {
    return Status(ErrorCode::kIsDirectory, std::string(path));
  }

  // Acquire the file's lock (paper §6.1 "File sharing"). The *client* holds
  // it — cached at the clerk — until revoked; data-path operations re-take
  // the local grant per call, so multiple fds and threads coexist.
  std::vector<LockId> chain = r.ancestors;
  chain.push_back(r.parent.lock_id());
  const LockMode mode =
      (flags & kOpenWrite) ? LockMode::kExclusive : LockMode::kShared;
  AERIE_RETURN_IF_ERROR(clerk->Acquire(r.target.lock_id(), mode, chain));
  clerk->Release(r.target.lock_id());

  if (flags & kOpenTrunc) {
    MetaOp op;
    op.type = MetaOpType::kTruncate;
    op.authority = clerk->GlobalAuthorityOf(r.target.lock_id());
    op.obj = r.target;
    op.a = 0;
    AERIE_RETURN_IF_ERROR(fs_->LogOp(std::move(op)));
    auto shadow = ShadowFor(r.target, /*create=*/true);
    {
      std::lock_guard lock(overlay_mu_);
      shadow->extents.clear();
      shadow->size = 0;
      shadow->has_size = true;
      shadow->mfile_floor = 0;  // the pending truncate frees every extent
    }
    fs_->InvalidateDirect(r.target);
  }

  std::lock_guard lock(fds_mu_);
  auto entry = std::make_unique<FdEntry>();
  entry->oid = r.target;
  entry->dir = r.parent;
  entry->flags = flags;
  entry->ancestors = std::move(chain);
  entry->offset = (flags & kOpenAppend) ? FileSize(r.target) : 0;
  open_counts_[r.target.raw()]++;

  int fd;
  if (!free_fds_.empty()) {
    fd = free_fds_.back();
    free_fds_.pop_back();
    fds_[static_cast<size_t>(fd)] = std::move(entry);
  } else {
    fd = static_cast<int>(fds_.size());
    fds_.push_back(std::move(entry));
  }
  return fd;
}

Status Pxfs::Close(int fd) {
  AERIE_SPAN("pxfs", "close");
  std::unique_ptr<FdEntry> entry;
  bool notify_closed = false;
  {
    std::lock_guard lock(fds_mu_);
    if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() ||
        fds_[static_cast<size_t>(fd)] == nullptr) {
      return Status(ErrorCode::kBadHandle, "bad fd");
    }
    entry = std::move(fds_[static_cast<size_t>(fd)]);
    free_fds_.push_back(fd);
    auto it = open_counts_.find(entry->oid.raw());
    if (it != open_counts_.end() && --it->second == 0) {
      open_counts_.erase(it);
      notify_closed = notified_open_.erase(entry->oid.raw()) != 0;
    }
  }
  if (notify_closed) {
    // Server may now reclaim the file if it was unlinked (paper §6.1).
    return fs_->NotifyClosed(entry->oid);
  }
  return OkStatus();
}

// --- Direct data path (DESIGN.md §10) ---------------------------------------

bool Pxfs::TryDirectRead(const FdEntry& entry, uint64_t offset,
                         std::span<char> out, uint64_t* n) {
  if (!DirectUsable()) {
    return false;
  }
  auto map = fs_->LookupDirect(entry.oid);
  if (map == nullptr) {
    return false;
  }
  LockClerk* clerk = fs_->clerk();
  if (!clerk->TryEnterDirect(map->epoch)) {
    fs_->CountDirectFallback();
    return false;
  }
  *n = MFile::ReadDirect(ctx_.region, map->map, offset, out);
  clerk->ExitDirect();
  fs_->CountDirectRead(*n);
  return true;
}

bool Pxfs::TryDirectWrite(const FdEntry& entry, uint64_t offset,
                          std::span<const char> data, uint64_t* n) {
  if (!DirectUsable() || data.empty()) {
    return false;
  }
  if ((entry.flags & kOpenWrite) == 0) {
    return false;  // locked path owns the error
  }
  auto map = fs_->LookupDirect(entry.oid);
  if (map == nullptr || !map->writable) {
    return false;
  }
  // Cheap pre-checks outside the pin: an extending write or a hole is an
  // allocation — metadata — and belongs to the locked path.
  if (offset + data.size() > map->map.size) {
    return false;
  }
  LockClerk* clerk = fs_->clerk();
  if (!clerk->TryEnterDirect(map->epoch)) {
    fs_->CountDirectFallback();
    return false;
  }
  Status st = MFile::WriteDirect(ctx_.region, map->map, offset, data,
                                 options_.flush_data_on_write);
  clerk->ExitDirect();
  if (!st.ok()) {
    fs_->CountDirectFallback();
    return false;  // hole: locked path allocates + logs the attach
  }
  fs_->CountDirectWrite(data.size());
  AERIE_COUNT_N("pxfs.api.logical_write_bytes", data.size());
  *n = data.size();
  return true;
}

void Pxfs::RefreshDirectMap(Oid file, LockMode mode) {
  if (!DirectUsable()) {
    return;
  }
  LockClerk* clerk = fs_->clerk();
  // Validated under the clerk mutex while we still hold the local grant; a
  // failure (drain in flight, authority gone) just means no cache entry.
  auto epoch = clerk->DirectGrant(file.lock_id(), mode);
  if (!epoch.ok()) {
    return;
  }
  auto mfile = MFile::Open(ctx_, file);
  if (!mfile.ok()) {
    return;
  }
  LibFs::DirectMap dm;
  dm.epoch = *epoch;
  dm.writable = mode == LockMode::kExclusive;

  // Fold this client's unshipped shadow state into the snapshot, exactly as
  // ReadAt would resolve it: shadow extents override the persistent mapping,
  // pages at/above a pending-truncate floor are holes, the shadow size wins.
  uint64_t size = mfile->size();
  uint64_t floor = ~0ull;
  std::map<uint64_t, uint64_t> shadow_extents;
  auto shadow = ShadowFor(file, /*create=*/false);
  if (shadow != nullptr) {
    std::lock_guard lock(overlay_mu_);
    if (shadow->has_size) {
      size = shadow->size;
    }
    floor = shadow->mfile_floor;
    shadow_extents = shadow->extents;
  }
  const uint64_t pages = (size + kScmPageSize - 1) / kScmPageSize;
  if (pages > kDirectMaxPages) {
    return;  // unbounded map: such files stay on the locked path
  }
  dm.map.size = size;
  dm.map.pages.assign(pages, 0);
  (void)mfile->ForEachExtent([&](uint64_t page, uint64_t extent) {
    if (page < pages && page < floor) {
      dm.map.pages[page] = extent;
    }
    return true;
  });
  for (const auto& [page, extent] : shadow_extents) {
    if (page < pages) {
      dm.map.pages[page] = extent;
    }
  }
  fs_->StoreDirect(file, std::move(dm));
}

void Pxfs::MaybeRefreshDirect(Oid file, bool writable) {
  if (!DirectUsable()) {
    return;
  }
  auto cur = fs_->LookupDirect(file);
  if (cur != nullptr && cur->epoch == fs_->clerk()->direct_epoch() &&
      (cur->writable || !writable)) {
    return;  // still usable as-is
  }
  RefreshDirectMap(file,
                   writable ? LockMode::kExclusive : LockMode::kShared);
}

// --- Data path ---------------------------------------------------------------

Result<uint64_t> Pxfs::ReadAt(const FdEntry& entry, uint64_t offset,
                              std::span<char> out) {
  if (options_.enforce_memory_protection) {
    auto mfile = MFile::Open(ctx_, entry.oid);
    if (mfile.ok()) {
      const uint32_t rights = AclRights(mfile->acl());
      if (rights != 0 && (rights & kAclRightRead) == 0) {
        // Write-only file: memory protection cannot express it, so the
        // hardware maps it no-access and reads are denied at the FS level
        // (paper §5.3.3).
        return Status(ErrorCode::kPermissionDenied,
                      "file is write-only");
      }
    }
  }
  const uint64_t file_size = FileSize(entry.oid);
  if (offset >= file_size) {
    return 0;
  }
  const uint64_t want = std::min<uint64_t>(out.size(), file_size - offset);
  AERIE_ASSIGN_OR_RETURN(MFile mfile, MFile::Open(ctx_, entry.oid));
  auto shadow = ShadowFor(entry.oid, /*create=*/false);

  uint64_t done = 0;
  while (done < want) {
    const uint64_t pos = offset + done;
    const uint64_t page = pos / kScmPageSize;
    const uint64_t in_page = pos % kScmPageSize;
    const uint64_t chunk = std::min(want - done, kScmPageSize - in_page);
    uint64_t extent = 0;
    uint64_t floor = ~0ull;
    if (shadow != nullptr) {
      std::lock_guard lock(overlay_mu_);
      floor = shadow->mfile_floor;
      auto it = shadow->extents.find(page);
      if (it != shadow->extents.end()) {
        extent = it->second;
      }
    }
    // Pages past a pending truncate read as holes: their SCM mapping is
    // scheduled to be freed when the batch applies.
    if (extent == 0 && page < floor) {
      auto found = mfile.ExtentForPage(page);
      if (found.ok()) {
        extent = *found;
      }
    }
    if (extent != 0) {
      std::memcpy(out.data() + done, ctx_.region->PtrAt(extent) + in_page,
                  chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
  }
  return done;
}

Result<uint64_t> Pxfs::WriteAt(FdEntry* entry, uint64_t offset,
                               std::span<const char> data, bool* structural) {
  AERIE_SCM_LAYER("pxfs");
  if (structural != nullptr) {
    *structural = false;
  }
  if ((entry->flags & kOpenWrite) == 0) {
    return Status(ErrorCode::kPermissionDenied, "fd not open for write");
  }
  if (data.empty()) {
    return 0;
  }
  if (options_.enforce_memory_protection) {
    auto mfile = MFile::Open(ctx_, entry->oid);
    if (mfile.ok()) {
      const uint32_t rights = AclRights(mfile->acl());
      if (rights != 0 && (rights & kAclRightRead) == 0) {
        // Write-only: FS-level permissions allow the write, but memory
        // protection maps the extents no-access — route the data through
        // the trusted service (paper §5.3.3: "the library calls into the
        // TFS for any operations allowed by file system level permissions
        // but prevented by memory protection").
        AERIE_RETURN_IF_ERROR(fs_->ServiceWrite(entry->oid, offset, data));
        auto shadow = ShadowFor(entry->oid, /*create=*/true);
        std::lock_guard lock(overlay_mu_);
        if (!shadow->has_size || offset + data.size() > shadow->size) {
          shadow->size = offset + data.size();
          shadow->has_size = true;
        }
        AERIE_COUNT_N("pxfs.api.logical_write_bytes", data.size());
        return data.size();
      }
      if (rights != 0 && (rights & kAclRightWrite) == 0) {
        return Status(ErrorCode::kPermissionDenied, "file is read-only");
      }
    }
  }
  AERIE_ASSIGN_OR_RETURN(MFile mfile, MFile::Open(ctx_, entry->oid));
  LockClerk* clerk = fs_->clerk();
  auto shadow = ShadowFor(entry->oid, /*create=*/true);

  // One overlay critical section for the whole call; attach ops are logged
  // in bulk afterwards (a 128KB write is 32 pages — per-page locking and
  // logging would dominate).
  const uint64_t authority =
      clerk->GlobalAuthorityOf(entry->oid.lock_id());
  std::vector<MetaOp> attach_ops;
  {
    std::lock_guard lock(overlay_mu_);
    const uint64_t floor = shadow->mfile_floor;
    uint64_t done = 0;
    while (done < data.size()) {
      const uint64_t pos = offset + done;
      const uint64_t page = pos / kScmPageSize;
      const uint64_t in_page = pos % kScmPageSize;
      const uint64_t chunk =
          std::min<uint64_t>(data.size() - done, kScmPageSize - in_page);

      uint64_t extent = 0;
      auto it = shadow->extents.find(page);
      if (it != shadow->extents.end()) {
        extent = it->second;
      }
      if (extent == 0 && page < floor) {
        // The persistent mapping is only trustworthy below any pending
        // truncate point (the truncate will free those extents at apply).
        auto found = mfile.ExtentForPage(page);
        if (found.ok()) {
          extent = *found;
        }
      }
      if (extent != 0) {
        // Data writes go straight to SCM; no service involvement (§4.2).
        ctx_.region->StreamWrite(ctx_.region->PtrAt(extent) + in_page,
                                 data.data() + done, chunk);
      } else {
        // Hole: take a pre-allocated extent, fill it, and log the attach
        // (paper §5.3.5: the server only verifies and attaches).
        auto pooled = fs_->TakePooled(ObjType::kExtent);
        if (!pooled.ok()) {
          return pooled.status();
        }
        extent = pooled->offset();
        char* dst = ctx_.region->PtrAt(extent);
        if (chunk != kScmPageSize) {
          std::memset(dst, 0, kScmPageSize);
        }
        // Streaming stores, drained by the BFlush below (same charged path
        // as overwrites).
        ctx_.region->StreamWrite(dst + in_page, data.data() + done, chunk);

        MetaOp op;
        op.type = MetaOpType::kAttachExtent;
        op.authority = authority;
        op.obj = entry->oid;
        op.a = page;
        op.b = extent;
        attach_ops.push_back(std::move(op));
        shadow->extents[page] = extent;
      }
      done += chunk;
    }
    const uint64_t new_end = offset + data.size();
    const uint64_t old_size =
        shadow->has_size ? shadow->size : mfile.size();
    if (new_end > old_size) {
      MetaOp op;
      op.type = MetaOpType::kSetSize;
      op.authority = authority;
      op.obj = entry->oid;
      op.a = new_end;
      attach_ops.push_back(std::move(op));
      shadow->size = new_end;
      shadow->has_size = true;
    }
  }
  if (options_.flush_data_on_write) {
    ctx_.region->BFlush();
  }
  if (!attach_ops.empty()) {
    // Structural change: any cached extent map for this file is now stale
    // (new pages attached and/or a new size).
    if (structural != nullptr) {
      *structural = true;
    }
    fs_->InvalidateDirect(entry->oid);
    AERIE_RETURN_IF_ERROR(fs_->LogOps(std::move(attach_ops)));
  }
  AERIE_COUNT_N("pxfs.api.logical_write_bytes", data.size());
  return data.size();
}

Result<uint64_t> Pxfs::Read(int fd, std::span<char> out) {
  AERIE_SPAN("pxfs", "read");
  FdEntry* entry;
  uint64_t offset;
  {
    std::lock_guard lock(fds_mu_);
    if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() ||
        fds_[static_cast<size_t>(fd)] == nullptr) {
      return Status(ErrorCode::kBadHandle, "bad fd");
    }
    entry = fds_[static_cast<size_t>(fd)].get();
    offset = entry->offset;
  }
  uint64_t direct_n = 0;
  if (TryDirectRead(*entry, offset, out, &direct_n)) {
    std::lock_guard lock(fds_mu_);
    entry->offset = offset + direct_n;
    return direct_n;
  }
  LockClerk* clerk = fs_->clerk();
  AERIE_RETURN_IF_ERROR(
      clerk->Acquire(entry->oid.lock_id(), LockMode::kShared,
                     entry->ancestors));
  auto n = ReadAt(*entry, offset, out);
  if (n.ok()) {
    MaybeRefreshDirect(entry->oid, /*writable=*/false);
  }
  clerk->Release(entry->oid.lock_id());
  if (n.ok()) {
    std::lock_guard lock(fds_mu_);
    entry->offset = offset + *n;
  }
  return n;
}

Result<uint64_t> Pxfs::Write(int fd, std::span<const char> data) {
  AERIE_SPAN("pxfs", "write");
  FdEntry* entry;
  uint64_t offset;
  {
    std::lock_guard lock(fds_mu_);
    if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() ||
        fds_[static_cast<size_t>(fd)] == nullptr) {
      return Status(ErrorCode::kBadHandle, "bad fd");
    }
    entry = fds_[static_cast<size_t>(fd)].get();
    offset = (entry->flags & kOpenAppend) ? FileSize(entry->oid)
                                          : entry->offset;
  }
  uint64_t direct_n = 0;
  if ((entry->flags & kOpenAppend) == 0 &&
      TryDirectWrite(*entry, offset, data, &direct_n)) {
    std::lock_guard lock(fds_mu_);
    entry->offset = offset + direct_n;
    return direct_n;
  }
  LockClerk* clerk = fs_->clerk();
  AERIE_RETURN_IF_ERROR(
      clerk->Acquire(entry->oid.lock_id(), LockMode::kExclusive,
                     entry->ancestors));
  bool structural = false;
  auto n = WriteAt(entry, offset, data, &structural);
  // Appends mutate the map every call; caching after one would thrash. A
  // non-structural (overwrite) slow path is the signal the file's map is
  // worth caching for the direct path.
  if (n.ok() && !structural) {
    MaybeRefreshDirect(entry->oid, /*writable=*/true);
  }
  clerk->Release(entry->oid.lock_id());
  if (n.ok()) {
    std::lock_guard lock(fds_mu_);
    entry->offset = offset + *n;
  }
  return n;
}

Result<uint64_t> Pxfs::Pread(int fd, uint64_t offset, std::span<char> out) {
  AERIE_SPAN("pxfs", "pread");
  std::unique_lock lock(fds_mu_);
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() ||
      fds_[static_cast<size_t>(fd)] == nullptr) {
    return Status(ErrorCode::kBadHandle, "bad fd");
  }
  FdEntry* entry = fds_[static_cast<size_t>(fd)].get();
  lock.unlock();
  uint64_t direct_n = 0;
  if (TryDirectRead(*entry, offset, out, &direct_n)) {
    return direct_n;
  }
  LockClerk* clerk = fs_->clerk();
  AERIE_RETURN_IF_ERROR(
      clerk->Acquire(entry->oid.lock_id(), LockMode::kShared,
                     entry->ancestors));
  auto n = ReadAt(*entry, offset, out);
  if (n.ok()) {
    MaybeRefreshDirect(entry->oid, /*writable=*/false);
  }
  clerk->Release(entry->oid.lock_id());
  return n;
}

Result<uint64_t> Pxfs::Pwrite(int fd, uint64_t offset,
                              std::span<const char> data) {
  AERIE_SPAN("pxfs", "pwrite");
  std::unique_lock lock(fds_mu_);
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() ||
      fds_[static_cast<size_t>(fd)] == nullptr) {
    return Status(ErrorCode::kBadHandle, "bad fd");
  }
  FdEntry* entry = fds_[static_cast<size_t>(fd)].get();
  lock.unlock();
  uint64_t direct_n = 0;
  if (TryDirectWrite(*entry, offset, data, &direct_n)) {
    return direct_n;
  }
  LockClerk* clerk = fs_->clerk();
  AERIE_RETURN_IF_ERROR(
      clerk->Acquire(entry->oid.lock_id(), LockMode::kExclusive,
                     entry->ancestors));
  bool structural = false;
  auto n = WriteAt(entry, offset, data, &structural);
  if (n.ok() && !structural) {
    MaybeRefreshDirect(entry->oid, /*writable=*/true);
  }
  clerk->Release(entry->oid.lock_id());
  return n;
}

Result<uint64_t> Pxfs::Seek(int fd, uint64_t offset) {
  AERIE_SPAN("pxfs", "seek");
  std::lock_guard lock(fds_mu_);
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() ||
      fds_[static_cast<size_t>(fd)] == nullptr) {
    return Status(ErrorCode::kBadHandle, "bad fd");
  }
  fds_[static_cast<size_t>(fd)]->offset = offset;
  return offset;
}

Status Pxfs::Ftruncate(int fd, uint64_t size) {
  AERIE_SPAN("pxfs", "ftruncate");
  AERIE_SCM_LAYER("pxfs");
  Oid oid;
  {
    std::lock_guard lock(fds_mu_);
    if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() ||
        fds_[static_cast<size_t>(fd)] == nullptr) {
      return Status(ErrorCode::kBadHandle, "bad fd");
    }
    if ((fds_[static_cast<size_t>(fd)]->flags & kOpenWrite) == 0) {
      return Status(ErrorCode::kPermissionDenied, "fd not open for write");
    }
    oid = fds_[static_cast<size_t>(fd)]->oid;
  }
  LockClerk* clerk = fs_->clerk();
  std::vector<LockId> chain;
  {
    std::lock_guard lock(fds_mu_);
    chain = fds_[static_cast<size_t>(fd)]->ancestors;
  }
  AERIE_RETURN_IF_ERROR(
      clerk->Acquire(oid.lock_id(), LockMode::kExclusive, chain));
  MetaOp op;
  op.type = MetaOpType::kTruncate;
  op.authority = clerk->GlobalAuthorityOf(oid.lock_id());
  op.obj = oid;
  op.a = size;
  Status st = fs_->LogOp(std::move(op));
  if (st.ok()) {
    auto shadow = ShadowFor(oid, /*create=*/true);
    std::lock_guard lock(overlay_mu_);
    const uint64_t old_size = shadow->has_size
                                  ? shadow->size
                                  : FileSizeNoShadow(oid);
    shadow->size = size;
    shadow->has_size = true;
    const uint64_t keep = (size + kScmPageSize - 1) / kScmPageSize;
    shadow->mfile_floor = std::min(shadow->mfile_floor, keep);
    for (auto it = shadow->extents.lower_bound(keep);
         it != shadow->extents.end();) {
      it = shadow->extents.erase(it);
    }
    // POSIX zero-fill: the boundary page's tail must not resurface if the
    // file is extended later. The server's apply does the same for the
    // persistent mapping; this covers the client's pending-extent view.
    if (size < old_size && size % kScmPageSize != 0) {
      const uint64_t page = size / kScmPageSize;
      uint64_t extent = 0;
      auto sit = shadow->extents.find(page);
      if (sit != shadow->extents.end()) {
        extent = sit->second;
      } else {
        auto mfile = MFile::Open(ctx_, oid);
        if (mfile.ok()) {
          auto found = mfile->ExtentForPage(page);
          if (found.ok()) {
            extent = *found;
          }
        }
      }
      if (extent != 0) {
        char* data = ctx_.region->PtrAt(extent);
        const uint64_t in_page = size % kScmPageSize;
        std::memset(data + in_page, 0, kScmPageSize - in_page);
        ctx_.region->WlFlush(data + in_page, kScmPageSize - in_page);
      }
    }
  }
  if (st.ok()) {
    fs_->InvalidateDirect(oid);
  }
  clerk->Release(oid.lock_id());
  return st;
}

Status Pxfs::Fsync(int fd) {
  AERIE_SPAN("pxfs", "fsync");
  AERIE_SCM_LAYER("pxfs");
  {
    std::lock_guard lock(fds_mu_);
    if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() ||
        fds_[static_cast<size_t>(fd)] == nullptr) {
      return Status(ErrorCode::kBadHandle, "bad fd");
    }
  }
  ctx_.region->BFlush();
  return fs_->Sync();
}

Result<PxfsStat> Pxfs::Fstat(int fd) {
  AERIE_SPAN("pxfs", "fstat");
  Oid oid;
  {
    std::lock_guard lock(fds_mu_);
    if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() ||
        fds_[static_cast<size_t>(fd)] == nullptr) {
      return Status(ErrorCode::kBadHandle, "bad fd");
    }
    oid = fds_[static_cast<size_t>(fd)]->oid;
  }
  AERIE_ASSIGN_OR_RETURN(MFile mfile, MFile::Open(ctx_, oid));
  PxfsStat st;
  st.oid = oid;
  st.is_dir = false;
  st.size = FileSize(oid);
  st.link_count = mfile.link_count();
  st.acl = mfile.acl();
  return st;
}

// --- Namespace operations ----------------------------------------------------

Status Pxfs::Create(std::string_view path) {
  AERIE_SPAN("pxfs", "create");
  AERIE_ASSIGN_OR_RETURN(int fd, Open(path, kOpenCreate | kOpenWrite));
  return Close(fd);
}

Status Pxfs::Mkdir(std::string_view path) {
  AERIE_SPAN("pxfs", "mkdir");
  AERIE_ASSIGN_OR_RETURN(Resolved r, Resolve(path, /*fill_cache=*/false));
  if (!r.target.IsNull()) {
    return Status(ErrorCode::kAlreadyExists, std::string(path));
  }
  LockClerk* clerk = fs_->clerk();
  AERIE_RETURN_IF_ERROR(
      clerk->Acquire(r.parent.lock_id(), DirWriteMode(), r.ancestors));
  Status st = OkStatus();
  if (DirLookup(r.parent, r.leaf).ok()) {
    st = Status(ErrorCode::kAlreadyExists, std::string(path));
  } else {
    auto pooled = fs_->TakePooled(ObjType::kCollection);
    if (!pooled.ok()) {
      st = pooled.status();
    } else {
      MetaOp op;
      op.type = MetaOpType::kCreateDir;
      op.authority = clerk->GlobalAuthorityOf(r.parent.lock_id());
      op.dir = r.parent;
      op.name = r.leaf;
      op.obj = *pooled;
      st = fs_->LogOp(std::move(op));
      if (st.ok()) {
        OverlayAdd(r.parent, r.leaf, *pooled);
      }
    }
  }
  clerk->Release(r.parent.lock_id());
  return st;
}

Status Pxfs::UnlinkLocked(const Resolved& r) {
  LockClerk* clerk = fs_->clerk();
  if (r.target.type() == ObjType::kMFile) {
    // Request the victim's file lock: any other client holding it with the
    // file open will notify the TFS while releasing, so reclamation is
    // deferred (paper §6.1 "File sharing").
    std::vector<LockId> chain = r.ancestors;
    chain.push_back(r.parent.lock_id());
    AERIE_RETURN_IF_ERROR(
        clerk->Acquire(r.target.lock_id(), LockMode::kExclusive, chain));
    clerk->Release(r.target.lock_id());

    // If this client has it open itself, notify directly.
    bool open_here = false;
    {
      std::lock_guard lock(fds_mu_);
      open_here = open_counts_.count(r.target.raw()) != 0 &&
                  notified_open_.count(r.target.raw()) == 0;
      if (open_here) {
        notified_open_.insert(r.target.raw());
      }
    }
    if (open_here) {
      AERIE_RETURN_IF_ERROR(fs_->NotifyOpen(r.target));
    }
  }
  MetaOp op;
  op.type = MetaOpType::kUnlink;
  op.authority = clerk->GlobalAuthorityOf(r.parent.lock_id());
  op.dir = r.parent;
  op.name = r.leaf;
  AERIE_RETURN_IF_ERROR(fs_->LogOp(std::move(op)));
  OverlayRemove(r.parent, r.leaf);
  // The object may be reclaimed at apply and its offset recycled into a
  // fresh pool object; a lingering map keyed by that offset must not alias
  // the new file.
  fs_->InvalidateDirect(r.target);
  return OkStatus();
}

Status Pxfs::Unlink(std::string_view path) {
  AERIE_SPAN("pxfs", "unlink");
  AERIE_ASSIGN_OR_RETURN(Resolved r, Resolve(path, /*fill_cache=*/false));
  if (r.target.IsNull()) {
    return Status(ErrorCode::kNotFound, std::string(path));
  }
  if (r.target.type() != ObjType::kMFile) {
    return Status(ErrorCode::kIsDirectory, std::string(path));
  }
  LockClerk* clerk = fs_->clerk();
  AERIE_RETURN_IF_ERROR(
      clerk->Acquire(r.parent.lock_id(), DirWriteMode(), r.ancestors));
  Status st = UnlinkLocked(r);
  clerk->Release(r.parent.lock_id());
  if (st.ok()) {
    std::lock_guard lock(cache_mu_);
    name_cache_.erase(std::string(path));
  }
  return st;
}

Status Pxfs::Rmdir(std::string_view path) {
  AERIE_SPAN("pxfs", "rmdir");
  AERIE_ASSIGN_OR_RETURN(Resolved r, Resolve(path, /*fill_cache=*/false));
  if (r.target.IsNull()) {
    return Status(ErrorCode::kNotFound, std::string(path));
  }
  if (r.target.type() != ObjType::kCollection) {
    return Status(ErrorCode::kNotDirectory, std::string(path));
  }
  LockClerk* clerk = fs_->clerk();
  AERIE_RETURN_IF_ERROR(
      clerk->Acquire(r.parent.lock_id(), DirWriteMode(), r.ancestors));
  Status st = OkStatus();
  // Client-side emptiness check against SCM plus this client's pending
  // overlay (the server re-validates against applied state at ship time).
  bool empty = true;
  {
    std::vector<std::string> applied;
    auto coll = Collection::Open(ctx_, r.target);
    if (coll.ok()) {
      (void)coll->Scan([&](std::string_view name, uint64_t) {
        applied.emplace_back(name);
        return true;
      });
    }
    std::lock_guard lock(overlay_mu_);
    auto it = overlay_.find(r.target.raw());
    if (it != overlay_.end() && !it->second.added.empty()) {
      empty = false;
    }
    for (const std::string& name : applied) {
      if (it == overlay_.end() || it->second.removed.count(name) == 0) {
        empty = false;
        break;
      }
    }
  }
  if (!empty) {
    st = Status(ErrorCode::kNotEmpty, std::string(path));
  } else {
    st = UnlinkLocked(r);
  }
  clerk->Release(r.parent.lock_id());
  if (st.ok()) {
    FlushNameCache();  // descendant paths are gone
  }
  return st;
}

Status Pxfs::Rename(std::string_view from, std::string_view to) {
  AERIE_SPAN("pxfs", "rename");
  AERIE_ASSIGN_OR_RETURN(Resolved src, Resolve(from, /*fill_cache=*/false));
  AERIE_ASSIGN_OR_RETURN(Resolved dst, Resolve(to, /*fill_cache=*/false));
  if (src.target.IsNull()) {
    return Status(ErrorCode::kNotFound, std::string(from));
  }
  if (src.target == dst.target && src.parent == dst.parent &&
      src.leaf == dst.leaf) {
    return OkStatus();  // POSIX: renaming a file onto itself does nothing
  }
  LockClerk* clerk = fs_->clerk();

  // Lock both directories in lock-id order (paper §6.1: both locks taken
  // before the operation; ordering prevents deadlock).
  const LockId a = std::min(src.parent.lock_id(), dst.parent.lock_id());
  const LockId b = std::max(src.parent.lock_id(), dst.parent.lock_id());
  const std::vector<LockId>& a_anc =
      a == src.parent.lock_id() ? src.ancestors : dst.ancestors;
  const std::vector<LockId>& b_anc =
      b == src.parent.lock_id() ? src.ancestors : dst.ancestors;
  AERIE_RETURN_IF_ERROR(clerk->Acquire(a, DirWriteMode(), a_anc));
  if (b != a) {
    Status st = clerk->Acquire(b, DirWriteMode(), b_anc);
    if (!st.ok()) {
      clerk->Release(a);
      return st;
    }
  }

  if (!dst.target.IsNull() && dst.target.type() == ObjType::kMFile) {
    std::vector<LockId> chain = dst.ancestors;
    chain.push_back(dst.parent.lock_id());
    Status vst =
        clerk->Acquire(dst.target.lock_id(), LockMode::kExclusive, chain);
    if (vst.ok()) {
      clerk->Release(dst.target.lock_id());
    }
  }

  MetaOp op;
  op.type = MetaOpType::kRename;
  op.authority = clerk->GlobalAuthorityOf(src.parent.lock_id());
  op.dir = src.parent;
  op.name = src.leaf;
  op.dir2 = dst.parent;
  op.name2 = dst.leaf;
  Status st = fs_->LogOp(std::move(op));
  if (st.ok()) {
    OverlayRemove(src.parent, src.leaf);
    OverlayAdd(dst.parent, dst.leaf, src.target);
    if (!dst.target.IsNull() && dst.target.type() == ObjType::kMFile) {
      // The replaced destination may be destroyed at apply; its offset must
      // not alias a future pool object through a stale direct map.
      fs_->InvalidateDirect(dst.target);
    }
  }
  if (b != a) {
    clerk->Release(b);
  }
  clerk->Release(a);

  if (st.ok()) {
    if (src.target.type() == ObjType::kCollection) {
      FlushNameCache();  // all descendant paths moved
    } else {
      std::lock_guard lock(cache_mu_);
      name_cache_.erase(std::string(from));
      name_cache_.erase(std::string(to));
    }
  }
  return st;
}

Status Pxfs::Link(std::string_view from, std::string_view to) {
  AERIE_SPAN("pxfs", "link");
  AERIE_ASSIGN_OR_RETURN(Resolved src, Resolve(from, /*fill_cache=*/false));
  AERIE_ASSIGN_OR_RETURN(Resolved dst, Resolve(to, /*fill_cache=*/false));
  if (src.target.IsNull()) {
    return Status(ErrorCode::kNotFound, std::string(from));
  }
  if (src.target.type() != ObjType::kMFile) {
    return Status(ErrorCode::kIsDirectory, "cannot hard-link a directory");
  }
  if (!dst.target.IsNull()) {
    return Status(ErrorCode::kAlreadyExists, std::string(to));
  }
  LockClerk* clerk = fs_->clerk();
  AERIE_RETURN_IF_ERROR(
      clerk->Acquire(dst.parent.lock_id(), DirWriteMode(), dst.ancestors));
  MetaOp op;
  op.type = MetaOpType::kLink;
  op.authority = clerk->GlobalAuthorityOf(dst.parent.lock_id());
  op.dir = dst.parent;
  op.name = dst.leaf;
  op.obj = src.target;
  Status st = fs_->LogOp(std::move(op));
  if (st.ok()) {
    OverlayAdd(dst.parent, dst.leaf, src.target);
  }
  clerk->Release(dst.parent.lock_id());
  return st;
}

Result<PxfsStat> Pxfs::Stat(std::string_view path) {
  AERIE_SPAN("pxfs", "stat");
  AERIE_ASSIGN_OR_RETURN(Resolved r, Resolve(path, /*fill_cache=*/true));
  if (r.target.IsNull()) {
    return Status(ErrorCode::kNotFound, std::string(path));
  }
  LockClerk* clerk = fs_->clerk();
  std::vector<LockId> chain = r.ancestors;
  if (!(r.target == fs_->pxfs_root())) {
    chain.push_back(r.parent.lock_id());
  }
  AERIE_RETURN_IF_ERROR(
      clerk->Acquire(r.target.lock_id(), LockMode::kShared, chain));
  PxfsStat st;
  st.oid = r.target;
  Status result = OkStatus();
  if (r.target.type() == ObjType::kCollection) {
    auto coll = Collection::Open(ctx_, r.target);
    if (coll.ok()) {
      st.is_dir = true;
      st.size = coll->size();
      st.link_count = coll->link_count();
      st.acl = coll->acl();
    } else {
      result = coll.status();
    }
  } else {
    auto mfile = MFile::Open(ctx_, r.target);
    if (mfile.ok()) {
      st.is_dir = false;
      st.size = FileSize(r.target);
      st.link_count = mfile->link_count();
      st.acl = mfile->acl();
      if (st.link_count == 0) {
        // Batched create not yet applied: the overlay binding counts as the
        // first link.
        std::lock_guard lock(overlay_mu_);
        auto it = overlay_.find(r.parent.raw());
        if (it != overlay_.end()) {
          auto added = it->second.added.find(r.leaf);
          if (added != it->second.added.end() &&
              added->second == r.target.raw()) {
            st.link_count = 1;
          }
        }
      }
    } else {
      result = mfile.status();
    }
  }
  clerk->Release(r.target.lock_id());
  if (!result.ok()) {
    return result;
  }
  return st;
}

Result<std::vector<PxfsDirent>> Pxfs::ReadDir(std::string_view path) {
  AERIE_SPAN("pxfs", "readdir");
  AERIE_ASSIGN_OR_RETURN(Resolved r, Resolve(path, /*fill_cache=*/true));
  if (r.target.IsNull()) {
    return Status(ErrorCode::kNotFound, std::string(path));
  }
  if (r.target.type() != ObjType::kCollection) {
    return Status(ErrorCode::kNotDirectory, std::string(path));
  }
  LockClerk* clerk = fs_->clerk();
  std::vector<LockId> chain = r.ancestors;
  if (!(r.target == fs_->pxfs_root())) {
    chain.push_back(r.parent.lock_id());
  }
  AERIE_RETURN_IF_ERROR(
      clerk->Acquire(r.target.lock_id(), LockMode::kShared, chain));

  std::map<std::string, uint64_t> names;
  Status scan_status = OkStatus();
  {
    auto coll = Collection::Open(ctx_, r.target);
    if (coll.ok()) {
      scan_status = coll->Scan([&](std::string_view name, uint64_t value) {
        names[std::string(name)] = value;
        return true;
      });
    } else {
      scan_status = coll.status();
    }
  }
  clerk->Release(r.target.lock_id());
  AERIE_RETURN_IF_ERROR(scan_status);

  {
    std::lock_guard lock(overlay_mu_);
    auto it = overlay_.find(r.target.raw());
    if (it != overlay_.end()) {
      for (const auto& [name, oid] : it->second.added) {
        names[name] = oid;
      }
      for (const auto& name : it->second.removed) {
        names.erase(name);
      }
    }
  }

  std::vector<PxfsDirent> out;
  out.reserve(names.size());
  for (const auto& [name, raw] : names) {
    Oid oid(raw);
    out.push_back({name, oid, oid.type() == ObjType::kCollection});
  }
  return out;
}

Status Pxfs::Chmod(std::string_view path, uint32_t acl) {
  AERIE_SPAN("pxfs", "chmod");
  AERIE_ASSIGN_OR_RETURN(Resolved r, Resolve(path, /*fill_cache=*/false));
  if (r.target.IsNull()) {
    return Status(ErrorCode::kNotFound, std::string(path));
  }
  LockClerk* clerk = fs_->clerk();
  std::vector<LockId> chain = r.ancestors;
  chain.push_back(r.parent.lock_id());
  AERIE_RETURN_IF_ERROR(
      clerk->Acquire(r.target.lock_id(), LockMode::kExclusive, chain));
  MetaOp op;
  op.type = MetaOpType::kSetAcl;
  op.authority = clerk->GlobalAuthorityOf(r.target.lock_id());
  op.obj = r.target;
  op.a = acl;
  Status st = fs_->LogOp(std::move(op));
  if (st.ok()) {
    // Permission changes apply synchronously (paper §6.1): the memory
    // protection update must not linger in the batch.
    st = fs_->Sync();
  }
  clerk->Release(r.target.lock_id());
  return st;
}

Status Pxfs::Truncate(std::string_view path, uint64_t size) {
  AERIE_SPAN("pxfs", "truncate");
  AERIE_ASSIGN_OR_RETURN(int fd, Open(path, kOpenWrite));
  Status st = Ftruncate(fd, size);
  Status close_st = Close(fd);
  return st.ok() ? close_st : st;
}

Status Pxfs::SetCwd(std::string_view path) {
  AERIE_ASSIGN_OR_RETURN(Resolved r, Resolve(path, /*fill_cache=*/false));
  if (r.target.IsNull()) {
    return Status(ErrorCode::kNotFound, std::string(path));
  }
  if (r.target.type() != ObjType::kCollection) {
    return Status(ErrorCode::kNotDirectory, std::string(path));
  }
  std::lock_guard lock(cwd_mu_);
  cwd_oid_ = r.target;
  cwd_ancestors_ = r.ancestors;
  if (!(r.target == r.parent)) {
    cwd_ancestors_.push_back(r.parent.lock_id());
  }
  cwd_path_ = std::string(path);
  return OkStatus();
}

std::string Pxfs::cwd() const {
  std::lock_guard lock(cwd_mu_);
  return cwd_path_;
}

Status Pxfs::SyncAll() {
  AERIE_SPAN("pxfs", "sync_all");
  AERIE_SCM_LAYER("pxfs");
  ctx_.region->BFlush();
  return fs_->Sync();
}

}  // namespace aerie
