// PXFS: POSIX-style file-system interface over Aerie (paper §6.1).
//
// Provides hierarchical names, open/read/write/close with file descriptors,
// create/unlink/mkdir/rmdir/rename/stat/readdir/chmod/truncate/fsync, with
// most POSIX semantics: files movable across directories, access retained to
// open files after unlink or permission change, hard links.
//
// How the paper's mechanisms surface here:
//   * path resolution reads directory collections straight from SCM under
//     clerk-granted read locks; an optional per-client absolute-path name
//     cache short-circuits the walk (§6.1 "Caching"; the PXFS-NNC
//     configuration disables it);
//   * creates/writes take objects and extents from libFS pools, write data
//     directly, and log metadata ops into the batch;
//   * a volatile *shadow* layer (per-directory name overlay + per-file
//     pending-extent/size shadows) makes this client's batched-but-unshipped
//     updates visible to its own operations (§6.1 "Storage Objects");
//   * directory write locks are hierarchical (XH) by default, so file locks
//     under a directory are granted locally by the clerk;
//   * unlink-while-open: the client notifies the TFS a file is open before
//     logging an unlink of it, or when releasing a revoked lock on it, so
//     the server defers storage reclaim (§6.1 "File sharing").
//
// Thread safety: all operations may be called concurrently; shared state is
// guarded by short critical sections, and cross-client coherence comes from
// the lock protocol.
#ifndef AERIE_SRC_PXFS_PXFS_H_
#define AERIE_SRC_PXFS_PXFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/open_flags.h"
#include "src/common/status.h"
#include "src/libfs/client.h"
#include "src/obs/obs.h"
#include "src/osd/collection.h"
#include "src/osd/mfile.h"

namespace aerie {

struct PxfsStat {
  Oid oid;
  bool is_dir = false;
  uint64_t size = 0;
  uint64_t link_count = 0;
  uint32_t acl = 0;
};

struct PxfsDirent {
  std::string name;
  Oid oid;
  bool is_dir;
};

class Pxfs {
 public:
  struct Options {
    // Per-client absolute-path name cache (PXFS vs PXFS-NNC, §7.3.1).
    bool name_cache = true;
    size_t name_cache_max = 1 << 16;
    // Persist data at every write (vs only at fsync).
    bool flush_data_on_write = true;
    // Take directory write locks hierarchically (XH) so descendant file
    // locks are clerk-local. Explicit (X) is the ablation configuration.
    bool hierarchical_dir_locks = true;
    // Enforce memory-protection semantics on the data path (paper §5.3.3):
    // when a file's ACL cannot be expressed by read/write memory protection
    // (e.g. write-only files), data access goes through the trusted service
    // instead of direct loads/stores.
    bool enforce_memory_protection = false;
    // Direct data path (DESIGN.md §10): reads and aligned in-place
    // overwrites bypass the clerk's locked path via cached extent maps
    // validated against the clerk's direct-access epoch. Also gated by the
    // AERIE_DIRECT environment variable.
    bool direct_data = true;
  };

  Pxfs(LibFs* fs, const Options& options);
  explicit Pxfs(LibFs* fs) : Pxfs(fs, Options{}) {}
  ~Pxfs();

  Pxfs(const Pxfs&) = delete;
  Pxfs& operator=(const Pxfs&) = delete;

  // --- File descriptor API ---
  Result<int> Open(std::string_view path, int flags);
  Status Close(int fd);
  Result<uint64_t> Read(int fd, std::span<char> out);
  Result<uint64_t> Write(int fd, std::span<const char> data);
  Result<uint64_t> Pread(int fd, uint64_t offset, std::span<char> out);
  Result<uint64_t> Pwrite(int fd, uint64_t offset,
                          std::span<const char> data);
  Result<uint64_t> Seek(int fd, uint64_t offset);
  Status Ftruncate(int fd, uint64_t size);
  Status Fsync(int fd);
  Result<PxfsStat> Fstat(int fd);

  // --- Namespace API ---
  Status Create(std::string_view path);  // create + close
  Status Unlink(std::string_view path);
  Status Mkdir(std::string_view path);
  Status Rmdir(std::string_view path);
  Status Rename(std::string_view from, std::string_view to);
  // Hard link: `to` becomes another name for the file at `from` (directories
  // cannot be hard-linked). Raises the file's membership count (§5.3.4).
  Status Link(std::string_view from, std::string_view to);
  Result<PxfsStat> Stat(std::string_view path);
  Result<std::vector<PxfsDirent>> ReadDir(std::string_view path);
  Status Chmod(std::string_view path, uint32_t acl);
  Status Truncate(std::string_view path, uint64_t size);

  // Working directory for relative paths. Relative resolution starts here
  // and — per the paper (§6.1) — never consults the name cache, since
  // relative paths "tend to be shorter".
  Status SetCwd(std::string_view path);
  std::string cwd() const;

  // Ships batched metadata and persists data (libfs_sync).
  Status SyncAll();

  LibFs* libfs() { return fs_; }

  // --- Introspection (tests / benches) ---
  uint64_t name_cache_hits() const { return cache_hits_.value(); }
  uint64_t name_cache_misses() const { return cache_misses_.value(); }
  void FlushNameCache();

 private:
  struct FileShadow {
    std::map<uint64_t, uint64_t> extents;  // page index -> extent offset
    uint64_t size = 0;
    bool has_size = false;
    // Pages at or above this index have a pending truncate queued: their
    // SCM mapping will be freed when the batch applies, so reads/writes must
    // not trust it (only shadow extents are valid there).
    uint64_t mfile_floor = ~0ull;
  };
  struct DirOverlay {
    std::unordered_map<std::string, uint64_t> added;  // name -> oid raw
    std::set<std::string> removed;
  };
  struct FdEntry {
    Oid oid;
    Oid dir;  // containing directory at open time
    uint64_t offset = 0;
    int flags = 0;
    std::vector<LockId> ancestors;  // lock chain root..parent (incl parent)
  };
  struct Resolved {
    Oid parent;               // directory containing the leaf
    Oid target;               // null if the leaf does not exist
    std::string leaf;         // final path component ("" for root)
    std::vector<LockId> ancestors;  // locks root..parent (excludes target)
  };
  struct CacheEntry {
    uint64_t target_raw;
    uint64_t parent_raw;
    std::vector<LockId> ancestors;
  };

  // Resolves `path` (absolute, or relative to the cwd). Takes S locks on
  // each directory walked (released before returning; the clerk keeps the
  // globals cached).
  Result<Resolved> Resolve(std::string_view path, bool fill_cache);

  // Directory lookup through the overlay, then SCM.
  Result<Oid> DirLookup(Oid dir, const std::string& name);

  // Overlay bookkeeping (call *after* LogOp; see implementation note).
  void OverlayAdd(Oid dir, const std::string& name, Oid oid);
  void OverlayRemove(Oid dir, const std::string& name);
  void ClearVolatileState();  // overlay + shadows + name cache

  std::shared_ptr<FileShadow> ShadowFor(Oid file, bool create);

  LockMode DirWriteMode() const {
    return options_.hierarchical_dir_locks ? LockMode::kExclusiveHier
                                           : LockMode::kExclusive;
  }

  Result<uint64_t> ReadAt(const FdEntry& entry, uint64_t offset,
                          std::span<char> out);
  // `structural` (optional) reports whether the write attached extents or
  // changed the size — i.e. whether cached extent maps went stale.
  Result<uint64_t> WriteAt(FdEntry* entry, uint64_t offset,
                           std::span<const char> data,
                           bool* structural = nullptr);

  // --- Direct data path (DESIGN.md §10) ---
  // Upper bound on cacheable file size: one map entry per 4KB page.
  static constexpr uint64_t kDirectMaxPages = 1 << 16;  // 256MB

  bool DirectUsable() const {
    return options_.direct_data && !options_.enforce_memory_protection &&
           LibFs::DirectEnabled();
  }
  // Lock-free fast paths: true (with *n set) when the op completed against
  // a cached extent map under a pinned direct epoch; false means the caller
  // must run the locked path (which refreshes the cache).
  bool TryDirectRead(const FdEntry& entry, uint64_t offset,
                     std::span<char> out, uint64_t* n);
  bool TryDirectWrite(const FdEntry& entry, uint64_t offset,
                      std::span<const char> data, uint64_t* n);
  // Caller holds the file lock in at least `mode`. Snapshots the extent map
  // (persistent mapping + this client's shadow state) and caches it under
  // the current direct epoch.
  void RefreshDirectMap(Oid file, LockMode mode);
  // RefreshDirectMap only when the cached entry is missing, stale, or not
  // writable when a writable one is needed.
  void MaybeRefreshDirect(Oid file, bool writable);
  uint64_t FileSize(Oid file);
  uint64_t FileSizeNoShadow(Oid file);  // callable under overlay_mu_

  Status UnlinkLocked(const Resolved& r);

  LibFs* fs_;
  Options options_;
  OsdContext ctx_;
  uint64_t hook_token_ = 0;

  std::mutex fds_mu_;
  std::vector<std::unique_ptr<FdEntry>> fds_;
  std::vector<int> free_fds_;
  std::unordered_map<uint64_t, uint32_t> open_counts_;  // oid -> local opens
  // Files the TFS has been told are open here (paper §6.1 open-file table).
  std::set<uint64_t> notified_open_;

  std::mutex overlay_mu_;
  std::unordered_map<uint64_t, DirOverlay> overlay_;
  std::unordered_map<uint64_t, std::shared_ptr<FileShadow>> shadows_;

  mutable std::mutex cwd_mu_;
  Oid cwd_oid_;                       // null: cwd is the root
  std::vector<LockId> cwd_ancestors_; // lock chain root..cwd's parent
  std::string cwd_path_ = "/";

  std::mutex cache_mu_;
  std::unordered_map<std::string, CacheEntry> name_cache_;
  // Name-cache statistics live in the obs registry for this Pxfs's lifetime.
  obs::Counter cache_hits_{"pxfs.name_cache.hit"};
  obs::Counter cache_misses_{"pxfs.name_cache.miss"};
  obs::ScopedRegistration obs_registration_;
};

}  // namespace aerie

#endif  // AERIE_SRC_PXFS_PXFS_H_
