#include "src/obs/bench_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/obs/obs.h"
#include "src/obs/profiler.h"

namespace aerie {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

// %g loses precision and %f grows tails; emit the shortest round-trippable
// form and keep JSON strictly numeric (no inf/nan).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

BenchReport::BenchReport(std::string bench) : bench_(std::move(bench)) {
  const char* sha = std::getenv("AERIE_GIT_SHA");
  git_sha_ = (sha != nullptr && sha[0] != '\0') ? sha : "unknown";
}

void BenchReport::SetConfig(const std::string& key, double value) {
  ConfigEntry entry;
  entry.key = key;
  entry.is_number = true;
  entry.number = value;
  config_.push_back(std::move(entry));
}

void BenchReport::SetConfig(const std::string& key, const std::string& value) {
  ConfigEntry entry;
  entry.key = key;
  entry.is_number = false;
  entry.text = value;
  config_.push_back(std::move(entry));
}

void BenchReport::AddThroughput(const std::string& name, double ops_per_sec) {
  MetricRow row;
  row.name = name;
  row.has_rate = true;
  row.ops_per_sec = ops_per_sec;
  metrics_.push_back(std::move(row));
}

void BenchReport::AddLatency(const std::string& name, const Histogram& hist) {
  MetricRow row;
  row.name = name;
  row.has_hist = true;
  row.hist = hist;
  if (hist.count() > 0 && hist.Mean() > 0) {
    row.has_rate = true;
    row.ops_per_sec = 1e9 / hist.Mean();
  }
  metrics_.push_back(std::move(row));
}

void BenchReport::AddMetric(const std::string& name, double ops_per_sec,
                            const Histogram& hist) {
  MetricRow row;
  row.name = name;
  row.has_rate = true;
  row.ops_per_sec = ops_per_sec;
  row.has_hist = true;
  row.hist = hist;
  metrics_.push_back(std::move(row));
}

void BenchReport::AddValue(const std::string& name, double value,
                           const std::string& unit) {
  MetricRow row;
  row.name = name;
  row.has_value = true;
  row.value = value;
  row.unit = unit;
  metrics_.push_back(std::move(row));
}

void BenchReport::CaptureAttribution(size_t top_spans) {
  layers_.clear();
  hot_spans_.clear();
  // Flush profiler rings first so span cpu_ns includes samples from the
  // final partial collector interval of the attribution pass.
  if (prof::IsRunning()) {
    prof::DrainNow();
  }
  const auto snaps = Registry::Instance().Collect();
  std::vector<LayerRow> layers;
  std::vector<SpanRow> spans;
  for (const MetricSnapshot& snap : snaps) {
    if (snap.kind != Metric::Kind::kSpan || snap.hist.count() == 0) {
      continue;
    }
    const size_t dot = snap.name.find('.');
    const std::string layer =
        dot == std::string::npos ? snap.name : snap.name.substr(0, dot);
    auto it = std::find_if(layers.begin(), layers.end(),
                           [&](const LayerRow& r) { return r.layer == layer; });
    if (it == layers.end()) {
      layers.push_back(LayerRow{});
      it = layers.end() - 1;
      it->layer = layer;
    }
    it->spans += snap.hist.count();
    it->self_ns += snap.span_self_ns;
    it->total_ns += snap.span_total_ns;
    it->cpu_ns += snap.span_cpu_ns;
    it->lock_wait_ns += snap.span_lock_wait_ns;
    it->rpc_wait_ns += snap.span_rpc_wait_ns;
    it->other_wait_ns += snap.span_other_wait_ns;
    spans.push_back(SpanRow{snap.name, snap.hist.count(), snap.span_self_ns});
  }
  std::sort(layers.begin(), layers.end(),
            [](const LayerRow& a, const LayerRow& b) {
              return a.self_ns > b.self_ns;
            });
  std::sort(spans.begin(), spans.end(),
            [](const SpanRow& a, const SpanRow& b) {
              return a.self_ns > b.self_ns;
            });
  if (spans.size() > top_spans) {
    spans.resize(top_spans);
  }
  layers_ = std::move(layers);
  hot_spans_ = std::move(spans);
}

std::string BenchReport::ToJson() const {
  std::string out = "{";
  char buf[512];
  std::snprintf(buf, sizeof(buf), "\"schema_version\":%d,",
                kBenchReportSchemaVersion);
  out += buf;
  out += "\"bench\":\"" + JsonEscape(bench_) + "\",";
  out += "\"git_sha\":\"" + JsonEscape(git_sha_) + "\",";

  out += "\"config\":{";
  for (size_t i = 0; i < config_.size(); ++i) {
    const ConfigEntry& entry = config_[i];
    if (i != 0) {
      out += ",";
    }
    out += "\"" + JsonEscape(entry.key) + "\":";
    if (entry.is_number) {
      out += JsonNumber(entry.number);
    } else {
      out += "\"" + JsonEscape(entry.text) + "\"";
    }
  }
  out += "},";

  out += "\"metrics\":[";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    const MetricRow& row = metrics_[i];
    if (i != 0) {
      out += ",";
    }
    out += "{\"name\":\"" + JsonEscape(row.name) + "\"";
    if (row.has_rate) {
      out += ",\"ops_per_sec\":" + JsonNumber(row.ops_per_sec);
    }
    if (row.has_hist) {
      out += ",\"latency_ns\":" + row.hist.ToJson();
    }
    if (row.has_value) {
      out += ",\"value\":" + JsonNumber(row.value);
      out += ",\"unit\":\"" + JsonEscape(row.unit) + "\"";
    }
    out += "}";
  }
  out += "],";

  out += "\"layers\":[";
  for (size_t i = 0; i < layers_.size(); ++i) {
    const LayerRow& row = layers_[i];
    if (i != 0) {
      out += ",";
    }
    // cpu/wait come from the profiling plane: cpu_us is sampled on-CPU time
    // (zero when AERIE_PROF is off), *_wait_us is instrumented off-CPU time.
    std::snprintf(buf, sizeof(buf),
                  "{\"layer\":\"%s\",\"spans\":%llu,\"self_ns\":%llu,"
                  "\"total_ns\":%llu,\"cpu_us\":%s,\"lock_wait_us\":%s,"
                  "\"rpc_wait_us\":%s,\"other_wait_us\":%s}",
                  JsonEscape(row.layer).c_str(),
                  static_cast<unsigned long long>(row.spans),
                  static_cast<unsigned long long>(row.self_ns),
                  static_cast<unsigned long long>(row.total_ns),
                  JsonNumber(static_cast<double>(row.cpu_ns) / 1e3).c_str(),
                  JsonNumber(static_cast<double>(row.lock_wait_ns) / 1e3)
                      .c_str(),
                  JsonNumber(static_cast<double>(row.rpc_wait_ns) / 1e3)
                      .c_str(),
                  JsonNumber(static_cast<double>(row.other_wait_ns) / 1e3)
                      .c_str());
    out += buf;
  }
  out += "],";

  out += "\"hot_spans\":[";
  for (size_t i = 0; i < hot_spans_.size(); ++i) {
    const SpanRow& row = hot_spans_[i];
    if (i != 0) {
      out += ",";
    }
    const double mean_self_us =
        row.count > 0
            ? static_cast<double>(row.self_ns) / 1e3 /
                  static_cast<double>(row.count)
            : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"count\":%llu,\"self_ns\":%llu,"
                  "\"mean_self_us\":%s}",
                  JsonEscape(row.name).c_str(),
                  static_cast<unsigned long long>(row.count),
                  static_cast<unsigned long long>(row.self_ns),
                  JsonNumber(mean_self_us).c_str());
    out += buf;
  }
  out += "]}";
  return out;
}

std::string BenchReport::WriteIfConfigured() const {
  const char* path = std::getenv("AERIE_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') {
    return std::string();
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path);
    return std::string();
  }
  const std::string json = ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return path;
}

}  // namespace obs
}  // namespace aerie
