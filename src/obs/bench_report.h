// Machine-readable benchmark records: the per-binary half of the benchmark
// trajectory harness (the other half is tools/run_benches.sh +
// tools/aggregate_bench.py, which merge one record per bench binary into the
// repo-root BENCH_<date>.json that is checked in per PR and diffed in CI).
//
// Every binary in bench/ builds one BenchReport and fills it with
//   * config   — scale/seconds/threads/seed plus bench-specific knobs,
//   * metrics  — named rows carrying ops/s and/or a latency distribution
//     (p50/p95/p99 straight from aerie::Histogram) or a plain scalar,
//   * attribution — per-layer exclusive self-time and the top span sites by
//     self time, captured from the obs registry after a short span-mode
//     pass (see bench::SpanAttributionPass), so every run doubles as a
//     hot-path attribution report.
//
// The record is written to $AERIE_BENCH_JSON when that variable is set (the
// driver points each binary at build/bench_reports/<name>.json); the
// schema is pinned by kBenchReportSchemaVersion and checked by
// tools/validate_bench.py against tools/bench_schema.json.
#ifndef AERIE_SRC_OBS_BENCH_REPORT_H_
#define AERIE_SRC_OBS_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/histogram.h"

namespace aerie {
namespace obs {

// Bump when the JSON layout changes shape (adding optional fields is not a
// bump; renaming/removing/retyping is). tools/bench_schema.json and
// tools/bench_diff.py track this constant.
inline constexpr int kBenchReportSchemaVersion = 1;

class BenchReport {
 public:
  explicit BenchReport(std::string bench);

  // Config key/values (numbers keep full precision; strings are escaped).
  void SetConfig(const std::string& key, double value);
  void SetConfig(const std::string& key, const std::string& value);

  // A throughput-only metric (iterations/s, ops/s).
  void AddThroughput(const std::string& name, double ops_per_sec);

  // A latency metric. ops_per_sec is derived from the histogram mean
  // (1e9 / mean_ns) so every latency metric also gates as a throughput;
  // pass ops_per_sec explicitly via AddMetric when the bench measured it.
  void AddLatency(const std::string& name, const Histogram& hist);

  // A metric with both an externally measured rate and a distribution.
  void AddMetric(const std::string& name, double ops_per_sec,
                 const Histogram& hist);

  // A plain scalar in an explicit unit (e.g. "us", "ns/op", "percent").
  void AddValue(const std::string& name, double value,
                const std::string& unit);

  // Snapshots per-layer exclusive self-time and the `top_spans` hottest
  // span sites from the obs registry. Call after the bench's span-mode
  // attribution pass; the snapshot replaces any previous capture.
  void CaptureAttribution(size_t top_spans = 12);

  // Serializes the whole record as one JSON object.
  std::string ToJson() const;

  // Writes ToJson() to $AERIE_BENCH_JSON if set; returns the path written,
  // or the empty string when the variable is unset or the write failed.
  std::string WriteIfConfigured() const;

 private:
  struct ConfigEntry {
    std::string key;
    bool is_number = true;
    double number = 0;
    std::string text;
  };
  struct MetricRow {
    std::string name;
    bool has_rate = false;
    double ops_per_sec = 0;
    bool has_hist = false;
    Histogram hist;
    bool has_value = false;
    double value = 0;
    std::string unit;
  };
  struct LayerRow {
    std::string layer;
    uint64_t spans = 0;
    uint64_t self_ns = 0;
    uint64_t total_ns = 0;
    // Profiler plane: sampled CPU and attributed off-CPU wait (emitted as
    // cpu_us/lock_wait_us/rpc_wait_us/other_wait_us — optional fields in
    // the schema, so no version bump).
    uint64_t cpu_ns = 0;
    uint64_t lock_wait_ns = 0;
    uint64_t rpc_wait_ns = 0;
    uint64_t other_wait_ns = 0;
  };
  struct SpanRow {
    std::string name;
    uint64_t count = 0;
    uint64_t self_ns = 0;
  };

  std::string bench_;
  std::string git_sha_;  // from $AERIE_GIT_SHA (driver-set), else "unknown"
  std::vector<ConfigEntry> config_;
  std::vector<MetricRow> metrics_;
  std::vector<LayerRow> layers_;
  std::vector<SpanRow> hot_spans_;
};

}  // namespace obs
}  // namespace aerie

#endif  // AERIE_SRC_OBS_BENCH_REPORT_H_
