// Continuous sampling profiler: span-attributed CPU samples + folded-stack
// export (DESIGN.md §9.4).
//
// A process-wide ITIMER_PROF timer delivers SIGPROF at `hz` to whichever
// thread is currently burning CPU. The handler — restricted to operations
// that are async-signal-safe in practice (relaxed atomic stores plus
// glibc's backtrace(), pre-warmed at Start() so its lazy libgcc dlopen
// happens outside signal context) — captures the call stack and the
// thread's innermost live obs span (obs::detail::g_tls_prof_span, the
// signal-safe mirror of the ScopedSpan TLS chain) into a per-thread
// single-producer/single-consumer ring of atomics. A collector thread
// drains the rings every ~100 ms into folded-stack aggregates keyed by
// (span, frames) and credits each sample's period to the span's cpu_ns, so
// the span tables (DumpJson / LayerBreakdownText / telemetry / BenchReport)
// decompose every layer into cpu vs. lock/rpc/other wait (the wait side is
// obs::ScopedWait at the instrumented blocking sites).
//
// Gating: AERIE_PROF=0|off disables, =1|on samples at the default rate, a
// number is taken as hz. AERIE_PROF_HZ and AERIE_PROF_RING override the
// rate and per-thread ring capacity. AERIE_PROF_FOLDED=<file> /
// AERIE_PROF_JSON=<file> write the collapsed-stack (flamegraph.pl /
// speedscope compatible) and JSON profile artifacts at process exit or
// explicitly via WriteProfileFilesIfConfigured(). MaybeStartFromEnv() is
// invoked from the process-telemetry attach, so any Aerie process profiles
// itself when AERIE_PROF is set — no per-binary wiring.
//
// Threads are registered lazily from non-signal contexts (span begin via
// the flight recorder, Start(), RegisterCurrentThread()); a sample landing
// on an unregistered thread is counted in ProfileStats::no_ring and
// dropped, never buffered unsafely.
#ifndef AERIE_SRC_OBS_PROFILER_H_
#define AERIE_SRC_OBS_PROFILER_H_

#include <cstdint>
#include <string>

#include "src/obs/obs.h"

namespace aerie {
namespace obs {
namespace prof {

// Deepest stack recorded per sample (frames beyond this are truncated at
// the root end — the leaf side is what ranks the self-CPU table).
inline constexpr int kMaxFrames = 24;

struct Options {
  uint64_t hz = 997;          // sampling rate; prime to dodge lockstep loops
  uint64_t ring_slots = 1024; // per-thread ring capacity (power of two)
  // Manual mode: no ITIMER_PROF timer and no collector thread — samples
  // arrive only via InjectSampleForTesting and move on DrainNow(). Makes
  // ring-overflow and folded-determinism tests exact.
  bool manual = false;
};

// Installs the SIGPROF handler, registers the calling thread, starts the
// collector and the timer (unless manual). Idempotent while running;
// returns false if a timer/handler could not be installed.
bool Start(const Options& options = Options{});
// Stops the timer and collector and performs a final drain. The SIGPROF
// handler stays installed (late signals hit a running=false fast path).
void Stop();
bool IsRunning();

// Reads AERIE_PROF / AERIE_PROF_HZ / AERIE_PROF_RING and starts when
// enabled; registers an atexit hook that stops and writes any configured
// artifacts. Called from the process-telemetry attach. Safe to call often.
void MaybeStartFromEnv();

// Gives the calling thread a sample ring (idempotent, cheap after the
// first call). Span-begin does this automatically; explicit registration
// is for threads that burn CPU without ever opening a span.
void RegisterCurrentThread();

// Synchronously drains all thread rings into the aggregates (also credits
// span cpu_ns). BenchReport calls this before collecting so the CPU column
// includes the final partial collector interval.
void DrainNow();

struct ProfileStats {
  uint64_t samples = 0;      // drained into aggregates
  uint64_t dropped = 0;      // ring full (overflow accounting)
  uint64_t no_ring = 0;      // sample hit an unregistered thread
  uint64_t hz = 0;
  uint64_t period_ns = 0;
};
ProfileStats GetStats();

// Collapsed stacks, one per line: `layer;span;root;..;leaf count\n`, sorted
// lexically (deterministic for a fixed aggregate). Frames are symbolized
// via dladdr with `0x...` fallback; samples outside any span fold under
// `(none);(no_span)`.
std::string FoldedStacks();
// JSON profile: {"schema_version":1,"hz":...,"period_ns":...,"samples":...,
// "dropped":...,"no_ring":...,"stacks":[{layer,span,count,frames[]}...],
// "top":[{frame,self_samples,self_cpu_us}...]} — stacks sorted like
// FoldedStacks, top ranked by leaf self samples.
std::string ProfileJson();
// Top-N self-CPU table (rank, samples, cpu ms, %, frame), the profiler's
// analogue of the bench harness's hot-span table.
std::string TopText(size_t top_n = 20);

// Writes AERIE_PROF_FOLDED / AERIE_PROF_JSON artifacts if those variables
// name files; drains first. Returns true if anything was written.
bool WriteProfileFilesIfConfigured();

// Test hooks. InjectSampleForTesting appends one synthetic sample to the
// calling thread's ring exactly as the signal handler would (registering
// the thread if needed); returns false on ring overflow, which it counts.
bool InjectSampleForTesting(SpanStat* span, const uintptr_t* frames,
                            int num_frames);
void ResetForTesting();

}  // namespace prof
}  // namespace obs
}  // namespace aerie

#endif  // AERIE_SRC_OBS_PROFILER_H_
