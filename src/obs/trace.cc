#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <utility>

#include "src/common/check.h"
#include "src/common/clock.h"
#include "src/obs/profiler.h"

namespace aerie {
namespace obs {

namespace {

constexpr uint64_t kDefaultRingEvents = 4096;
constexpr uint64_t kMinRingEvents = 64;
constexpr uint64_t kMaxRingEvents = 1 << 20;

uint64_t RoundUpPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

// Per-thread ring capacity, AERIE_TRACE_RING events (rounded up to a power
// of two). Read once; all rings share the capacity.
uint64_t RingCapacity() {
  static const uint64_t cap = [] {
    const char* env = std::getenv("AERIE_TRACE_RING");
    uint64_t v = env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
    if (v == 0) {
      v = kDefaultRingEvents;
    }
    return std::clamp(RoundUpPow2(v), kMinRingEvents, kMaxRingEvents);
  }();
  return cap;
}

// One recorder slot. Every field is an atomic so a concurrent dump is
// race-free; the per-slot seqlock (seq == position+1 when the slot holds
// event #position) lets the reader detect slots overwritten mid-read.
struct Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> ts_ns{0};
  std::atomic<uint64_t> dur_ns{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> span_id{0};
  std::atomic<uint64_t> parent_id{0};
  std::atomic<uint64_t> arg{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<uint32_t> kind{0};
};

// Single-writer ring: only the owning thread records; any thread may
// collect. The registry holds a shared_ptr so events of exited threads
// survive until the next reset.
class Ring {
 public:
  explicit Ring(uint32_t tid)
      : tid_(tid), cap_(RingCapacity()), slots_(new Slot[cap_]) {}

  void Record(TraceEventKind kind, const char* name, uint64_t trace_id,
              uint64_t span_id, uint64_t parent_id, uint64_t ts_ns,
              uint64_t dur_ns, uint64_t arg) {
    const uint64_t pos = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[pos & (cap_ - 1)];
    // Invalidate, fill, publish. A collector that observes seq == pos+1
    // both before and after reading the fields accepts the slot; tears are
    // possible only if a full ring lap happens mid-read, and then the slot
    // is rejected by the second check (best-effort on non-TSO hardware).
    s.seq.store(0, std::memory_order_relaxed);
    s.ts_ns.store(ts_ns, std::memory_order_relaxed);
    s.dur_ns.store(dur_ns, std::memory_order_relaxed);
    s.trace_id.store(trace_id, std::memory_order_relaxed);
    s.span_id.store(span_id, std::memory_order_relaxed);
    s.parent_id.store(parent_id, std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    s.name.store(name, std::memory_order_relaxed);
    s.kind.store(static_cast<uint32_t>(kind), std::memory_order_relaxed);
    s.seq.store(pos + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_release);
  }

  void Collect(std::vector<TraceEventView>* out) const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t floor = floor_.load(std::memory_order_acquire);
    uint64_t begin = head > cap_ ? head - cap_ : 0;
    begin = std::max(begin, floor);
    for (uint64_t pos = begin; pos < head; ++pos) {
      const Slot& s = slots_[pos & (cap_ - 1)];
      if (s.seq.load(std::memory_order_acquire) != pos + 1) {
        continue;
      }
      TraceEventView v;
      v.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      v.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
      v.trace_id = s.trace_id.load(std::memory_order_relaxed);
      v.span_id = s.span_id.load(std::memory_order_relaxed);
      v.parent_id = s.parent_id.load(std::memory_order_relaxed);
      v.arg = s.arg.load(std::memory_order_relaxed);
      v.name = s.name.load(std::memory_order_relaxed);
      v.kind = static_cast<TraceEventKind>(
          s.kind.load(std::memory_order_relaxed));
      v.tid = tid_;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != pos + 1 ||
          v.name == nullptr) {
        continue;  // overwritten while we read it
      }
      out->push_back(v);
    }
  }

  // Logical clear: events below the floor are dead. The writer never moves
  // backwards, so this needs no coordination with it.
  void Reset() {
    floor_.store(head_.load(std::memory_order_acquire),
                 std::memory_order_release);
  }

  uint32_t tid() const { return tid_; }

  // Guarded by TraceState::mu (set rarely, read only by exporters).
  std::string display_name;

 private:
  const uint32_t tid_;
  const uint64_t cap_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> floor_{0};
};

void CheckFailureDump();  // forward; installed into check.h's hook

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;  // guarded by mu
  std::atomic<uint64_t> next_id{1};
  std::atomic<uint32_t> next_tid{1};

  TraceState() { SetCheckFailureHook(&CheckFailureDump); }
};

TraceState& State() {
  static TraceState* state = new TraceState();  // leaked: usable at exit
  return *state;
}

Ring& CurrentRing() {
  thread_local std::shared_ptr<Ring> ring = [] {
    TraceState& st = State();
    auto r = std::make_shared<Ring>(
        st.next_tid.fetch_add(1, std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(st.mu);
    st.rings.push_back(r);
    return r;
  }();
  return *ring;
}

TraceContext& TlsContextRef() {
  thread_local TraceContext ctx;
  return ctx;
}

// Rings plus their display names, snapshotted under the lock so collection
// itself runs unlocked (writers never take the lock at all).
void SnapshotRings(std::vector<std::shared_ptr<Ring>>* rings,
                   std::vector<std::pair<uint32_t, std::string>>* names) {
  TraceState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  *rings = st.rings;
  if (names != nullptr) {
    for (const auto& r : st.rings) {
      names->emplace_back(r->tid(), r->display_name);
    }
  }
}

constexpr uint64_t kSlowUnset = ~uint64_t{0};
std::atomic<uint64_t> g_slow_us{kSlowUnset};

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void MaybeDumpSlowTrace(const char* name, uint64_t trace_id,
                        uint64_t dur_ns) {
  const uint64_t threshold_us = SlowTraceThresholdUs();
  if (threshold_us == 0 || dur_ns < threshold_us * 1000) {
    return;
  }
  AERIE_COUNT("obs.trace.slow_dump");
  const std::string trail = FlightRecorderText(trace_id);
  std::fprintf(stderr,
               "== aerie slow op: %s %.1fus exceeds AERIE_TRACE_SLOW_US=%llu "
               "(trace %llu) ==\n%s",
               name, dur_ns / 1e3,
               static_cast<unsigned long long>(threshold_us),
               static_cast<unsigned long long>(trace_id), trail.c_str());
}

// Post-mortem on AERIE_CHECK failure. Runs at most once (check.h consumes
// the hook), right before abort. The SIGUSR1 sigdump (telemetry.cc) shares
// the same DumpPostMortem body, minus the abort.
void CheckFailureDump() { DumpPostMortem(); }

}  // namespace

void DumpPostMortem() {
  const std::string trail = FlightRecorderText(/*trace_id=*/0, /*limit=*/64);
  std::fputs("== aerie flight recorder (most recent events) ==\n", stderr);
  std::fputs(trail.empty() ? "(no events recorded)\n" : trail.c_str(),
             stderr);
  const std::string path = WriteTraceFileIfConfigured();
  if (!path.empty()) {
    std::fprintf(stderr, "full trace written to %s\n", path.c_str());
  }
}

namespace detail {

void TraceSpanBegin(const char* name, TraceLink* link) {
  // Span-begin doubles as the profiler's thread-attach point: any thread
  // that does span-attributable work gets a sample ring before its first
  // SIGPROF can land (no-op after the first call / when not profiling).
  prof::RegisterCurrentThread();
  TraceContext& cur = TlsContextRef();
  link->prev_trace_id = cur.trace_id;
  link->prev_span_id = cur.span_id;
  link->prev_parent_id = cur.parent_id;
  link->trace_id = cur.trace_id != 0 ? cur.trace_id : NewTraceId();
  link->parent_id = cur.span_id;
  link->span_id = NewSpanId();
  cur.trace_id = link->trace_id;
  cur.span_id = link->span_id;
  cur.parent_id = link->parent_id;
  CurrentRing().Record(TraceEventKind::kSpanBegin, name, link->trace_id,
                       link->span_id, link->parent_id, NowNanos(), 0, 0);
}

void TraceSpanEnd(const char* name, const TraceLink& link, uint64_t start_ns,
                  uint64_t end_ns) {
  TraceContext& cur = TlsContextRef();
  cur.trace_id = link.prev_trace_id;
  cur.span_id = link.prev_span_id;
  cur.parent_id = link.prev_parent_id;
  const uint64_t dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  CurrentRing().Record(TraceEventKind::kSpanEnd, name, link.trace_id,
                       link.span_id, link.parent_id, start_ns, dur_ns, 0);
  if (link.prev_trace_id == 0) {
    MaybeDumpSlowTrace(name, link.trace_id, dur_ns);
  }
}

}  // namespace detail

TraceContext CurrentTraceContext() { return TlsContextRef(); }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) {
  TraceContext& cur = TlsContextRef();
  prev_ = cur;
  cur = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { TlsContextRef() = prev_; }

uint64_t NewTraceId() {
  return State().next_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t NewSpanId() {
  return State().next_id.fetch_add(1, std::memory_order_relaxed);
}

void TraceInstant(const char* name, uint64_t arg) {
  if (!SpansOn()) {
    return;
  }
  const TraceContext& cur = TlsContextRef();
  CurrentRing().Record(TraceEventKind::kInstant, name, cur.trace_id,
                       cur.span_id, cur.parent_id, NowNanos(), 0, arg);
}

void SetThreadTraceName(std::string_view name) {
  Ring& ring = CurrentRing();
  std::lock_guard<std::mutex> lock(State().mu);
  ring.display_name.assign(name);
}

std::vector<TraceEventView> CollectTraceEvents() {
  std::vector<std::shared_ptr<Ring>> rings;
  SnapshotRings(&rings, nullptr);
  std::vector<TraceEventView> out;
  for (const auto& ring : rings) {
    ring->Collect(&out);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEventView& a, const TraceEventView& b) {
              if (a.ts_ns != b.ts_ns) {
                return a.ts_ns < b.ts_ns;
              }
              return a.tid < b.tid;
            });
  return out;
}

std::string DumpTraceJson() {
  std::vector<std::shared_ptr<Ring>> rings;
  std::vector<std::pair<uint32_t, std::string>> names;
  SnapshotRings(&rings, &names);
  std::vector<TraceEventView> events;
  for (const auto& ring : rings) {
    ring->Collect(&events);
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEventView& a, const TraceEventView& b) {
              return a.ts_ns < b.ts_ns;
            });

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  char buf[256];
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += line;
  };

  emit("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
       "\"args\":{\"name\":\"aerie\"}}");
  for (const auto& [tid, name] : names) {
    std::string line;
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                  tid);
    line += buf;
    if (name.empty()) {
      std::snprintf(buf, sizeof(buf), "thread%u", tid);
      line += buf;
    } else {
      AppendJsonEscaped(&line, name);
    }
    line += "\"}}";
    emit(line);
  }

  auto args_json = [&](const TraceEventView& e, bool with_arg) {
    std::string a;
    std::snprintf(buf, sizeof(buf),
                  "{\"trace_id\":\"%llu\",\"span_id\":\"%llu\","
                  "\"parent_id\":\"%llu\"",
                  static_cast<unsigned long long>(e.trace_id),
                  static_cast<unsigned long long>(e.span_id),
                  static_cast<unsigned long long>(e.parent_id));
    a += buf;
    if (with_arg) {
      std::snprintf(buf, sizeof(buf), ",\"arg\":%llu",
                    static_cast<unsigned long long>(e.arg));
      a += buf;
    }
    a += "}";
    return a;
  };

  for (const TraceEventView& e : events) {
    std::string line = "{\"pid\":1,";
    std::snprintf(buf, sizeof(buf), "\"tid\":%u,\"ts\":%.3f,\"name\":\"",
                  e.tid, e.ts_ns / 1e3);
    line += buf;
    AppendJsonEscaped(&line, e.name);
    line += "\",";
    switch (e.kind) {
      case TraceEventKind::kSpanEnd:
        std::snprintf(buf, sizeof(buf), "\"ph\":\"X\",\"dur\":%.3f,",
                      e.dur_ns / 1e3);
        line += buf;
        line += "\"args\":" + args_json(e, false) + "}";
        break;
      case TraceEventKind::kSpanBegin:
        line += "\"ph\":\"B\",\"args\":" + args_json(e, false) + "}";
        break;
      case TraceEventKind::kInstant:
        line += "\"ph\":\"i\",\"s\":\"t\",\"args\":" + args_json(e, true) +
                "}";
        break;
    }
    emit(line);
  }
  out += "\n]}\n";
  return out;
}

bool WriteTraceJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = DumpTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && written != json.size()) {
    std::fclose(f);
  }
  return ok;
}

std::string WriteTraceFileIfConfigured() {
  const char* path = std::getenv("AERIE_TRACE_FILE");
  if (path == nullptr || path[0] == '\0') {
    return std::string();
  }
  return WriteTraceJsonFile(path) ? std::string(path) : std::string();
}

std::string FlightRecorderText(uint64_t trace_id, size_t limit) {
  std::vector<TraceEventView> events = CollectTraceEvents();
  if (trace_id != 0) {
    events.erase(std::remove_if(events.begin(), events.end(),
                                [trace_id](const TraceEventView& e) {
                                  return e.trace_id != trace_id;
                                }),
                 events.end());
  }
  if (events.size() > limit) {
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(limit));
  }
  std::string out;
  char buf[256];
  for (const TraceEventView& e : events) {
    const char* kind = e.kind == TraceEventKind::kSpanEnd    ? "span"
                       : e.kind == TraceEventKind::kSpanBegin ? "open"
                                                              : "inst";
    std::snprintf(buf, sizeof(buf),
                  "[tid %2u] %14.3fus %s %-28s trace=%llu span=%llu "
                  "parent=%llu",
                  e.tid, e.ts_ns / 1e3, kind, e.name,
                  static_cast<unsigned long long>(e.trace_id),
                  static_cast<unsigned long long>(e.span_id),
                  static_cast<unsigned long long>(e.parent_id));
    out += buf;
    if (e.kind == TraceEventKind::kSpanEnd) {
      std::snprintf(buf, sizeof(buf), " dur=%.3fus", e.dur_ns / 1e3);
      out += buf;
    } else if (e.kind == TraceEventKind::kInstant) {
      std::snprintf(buf, sizeof(buf), " arg=%llu",
                    static_cast<unsigned long long>(e.arg));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

void ResetFlightRecorder() {
  std::vector<std::shared_ptr<Ring>> rings;
  SnapshotRings(&rings, nullptr);
  for (const auto& ring : rings) {
    ring->Reset();
  }
}

uint64_t SlowTraceThresholdUs() {
  uint64_t v = g_slow_us.load(std::memory_order_relaxed);
  if (v != kSlowUnset) [[likely]] {
    return v;
  }
  const char* env = std::getenv("AERIE_TRACE_SLOW_US");
  v = env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
  g_slow_us.store(v, std::memory_order_relaxed);
  return v;
}

void SetSlowTraceThresholdUs(uint64_t us) {
  g_slow_us.store(us, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace aerie
