#include "src/obs/obs.h"

#include <algorithm>

#include "src/obs/trace.h"
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace aerie {
namespace obs {

namespace detail {

int InitModeFromEnv() {
  // Racing first readers both parse the same environment; the exchange is
  // idempotent.
  const char* env = std::getenv("AERIE_OBS");
  const int mode = static_cast<int>(
      env != nullptr ? ParseMode(env) : Mode::kCounters);
  g_mode.store(mode, std::memory_order_relaxed);
  // First obs touch doubles as process attach: the telemetry plane (shm
  // publisher, SIGUSR1 sigdump, AERIE_OBS_DUMP_FILE) starts here so every
  // Aerie process exports without bench-specific wiring (telemetry.cc).
  StartProcessTelemetryOnce();
  return mode;
}

namespace {
// 0 = "not yet initialized from AERIE_OBS_WINDOW_SECS".
std::atomic<uint64_t> g_window_epoch_ns{0};
}  // namespace

uint64_t WindowEpochNanos() {
  uint64_t v = g_window_epoch_ns.load(std::memory_order_relaxed);
  if (v != 0) [[likely]] {
    return v;
  }
  const char* env = std::getenv("AERIE_OBS_WINDOW_SECS");
  double secs = env != nullptr ? std::atof(env) : 0.0;
  if (secs <= 0.0) {
    secs = 10.0;
  }
  v = static_cast<uint64_t>(secs * 1e9) / kWindowEpochs;
  if (v == 0) {
    v = 1;
  }
  g_window_epoch_ns.store(v, std::memory_order_relaxed);
  return v;
}

}  // namespace detail

void SetWindowEpochNanosForTesting(uint64_t ns) {
  detail::g_window_epoch_ns.store(ns, std::memory_order_relaxed);
}

Mode ParseMode(std::string_view text) {
  if (text == "off" || text == "0" || text == "none") {
    return Mode::kOff;
  }
  if (text == "spans" || text == "2" || text == "all") {
    return Mode::kSpans;
  }
  return Mode::kCounters;
}

void SetMode(Mode mode) {
  detail::g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

ScopedSpan*& TlsCurrentSpan() {
  static thread_local ScopedSpan* current = nullptr;
  return current;
}

namespace detail {
// Signal-handler-visible mirror of TlsCurrentSpan()->stat_ (see obs.h).
thread_local constinit std::atomic<SpanStat*> g_tls_prof_span{nullptr};
}  // namespace detail

void AddWaitNsToCurrentSpan(WaitKind kind, uint64_t ns) {
  if (!SpansOn()) {
    return;
  }
  SpanStat* stat = detail::g_tls_prof_span.load(std::memory_order_relaxed);
  if (stat != nullptr) {
    stat->AddWaitNs(kind, ns);
  }
}

ScopedWait::ScopedWait(WaitKind kind, uint64_t* total_ns) {
  const bool span_live =
      SpansOn() &&
      detail::g_tls_prof_span.load(std::memory_order_relaxed) != nullptr;
  const bool want_total = total_ns != nullptr && CountersOn();
  if (!span_live && !want_total) {
    return;
  }
  kind_ = kind;
  total_ns_ = want_total ? total_ns : nullptr;
  start_ns_ = NowNanos();
}

ScopedWait::~ScopedWait() {
  if (start_ns_ == 0) {
    return;
  }
  const uint64_t waited = NowNanos() - start_ns_;
  if (total_ns_ != nullptr) {
    *total_ns_ += waited;
  }
  // The innermost span is re-read here, not captured at construction: by
  // destruction time any child spans opened inside the waited region have
  // closed again, so the wait lands on the span that actually blocked.
  AddWaitNsToCurrentSpan(kind_, waited);
}

Histogram LatencyHistogram::Snapshot() const {
  Histogram out;
  for (const Shard& shard : shards_) {
    shard.lock.lock();
    out.Merge(shard.hist);
    shard.lock.unlock();
  }
  return out;
}

Histogram LatencyHistogram::WindowSnapshotAt(uint64_t now_ns) const {
  Histogram out;
  const uint64_t cur = now_ns / detail::WindowEpochNanos();
  const uint64_t min_id = cur >= static_cast<uint64_t>(kWindowEpochs) - 1
                              ? cur - (kWindowEpochs - 1)
                              : 0;
  for (const Shard& shard : shards_) {
    shard.lock.lock();
    if (shard.window != nullptr) {
      for (int i = 0; i < kWindowEpochs; ++i) {
        const WindowEpoch& epoch = shard.window[i];
        // epoch_id > cur guards against samples stamped by a test clock
        // that then moved backwards; they are simply not in this window.
        if (epoch.epoch_id != kNoEpoch && epoch.epoch_id >= min_id &&
            epoch.epoch_id <= cur) {
          out.Merge(epoch.hist);
        }
      }
    }
    shard.lock.unlock();
  }
  return out;
}

void LatencyHistogram::Reset() {
  for (Shard& shard : shards_) {
    shard.lock.lock();
    shard.hist.Clear();
    if (shard.window != nullptr) {
      for (int i = 0; i < kWindowEpochs; ++i) {
        shard.window[i].hist.Clear();
        shard.window[i].epoch_id = kNoEpoch;
      }
    }
    shard.lock.unlock();
  }
}

// ---------------------------------------------------------------------------
// Registry

namespace {

struct RegistryState {
  mutable std::mutex mu;
  // Interned metrics, owned. Key is the metric name.
  std::map<std::string, std::unique_ptr<Metric>, std::less<>> interned;
  // Caller-owned instance metrics (may repeat names across instances).
  std::vector<Metric*> instances;

  // RPC method bookkeeping.
  std::unordered_map<uint32_t, std::string> rpc_names;
  std::unordered_map<uint32_t, std::unique_ptr<RpcMethodStats>> rpc_stats;
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();  // leaked: outlives users
  return *state;
}

template <typename MetricT>
MetricT& InternAs(std::string_view name, Metric::Kind kind) {
  RegistryState& state = State();
  std::lock_guard lock(state.mu);
  auto it = state.interned.find(name);
  if (it == state.interned.end()) {
    auto metric = std::make_unique<MetricT>(std::string(name));
    MetricT& ref = *metric;
    state.interned.emplace(std::string(name), std::move(metric));
    return ref;
  }
  // Kinds share one namespace; interning the same name as a different kind
  // is a naming bug. Return a fresh unregistered metric so the caller's
  // static reference is still usable.
  if (it->second->kind() != kind) {
    static MetricT* fallback = new MetricT("obs.name_kind_clash");
    return *fallback;
  }
  return static_cast<MetricT&>(*it->second);
}

}  // namespace

Registry& Registry::Instance() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  return InternAs<Counter>(name, Metric::Kind::kCounter);
}
Gauge& Registry::GetGauge(std::string_view name) {
  return InternAs<Gauge>(name, Metric::Kind::kGauge);
}
LatencyHistogram& Registry::GetHistogram(std::string_view name) {
  return InternAs<LatencyHistogram>(name, Metric::Kind::kHistogram);
}
SpanStat& Registry::GetSpan(std::string_view name) {
  return InternAs<SpanStat>(name, Metric::Kind::kSpan);
}

void Registry::Register(Metric* metric) {
  RegistryState& state = State();
  std::lock_guard lock(state.mu);
  state.instances.push_back(metric);
}

void Registry::Unregister(Metric* metric) {
  RegistryState& state = State();
  std::lock_guard lock(state.mu);
  auto it = std::find(state.instances.begin(), state.instances.end(), metric);
  if (it != state.instances.end()) {
    state.instances.erase(it);
  }
}

size_t Registry::MetricCountForTesting() const {
  RegistryState& state = State();
  std::lock_guard lock(state.mu);
  return state.interned.size() + state.instances.size();
}

namespace {

void MergeInto(std::map<std::string, MetricSnapshot>& out,
               const Metric& metric) {
  auto [it, inserted] = out.try_emplace(metric.name());
  MetricSnapshot& snap = it->second;
  if (inserted) {
    snap.name = metric.name();
    snap.kind = metric.kind();
  } else if (snap.kind != metric.kind()) {
    return;  // same name, different kind: keep the first
  }
  switch (metric.kind()) {
    case Metric::Kind::kCounter:
      snap.counter += static_cast<const Counter&>(metric).value();
      break;
    case Metric::Kind::kGauge:
      snap.gauge += static_cast<const Gauge&>(metric).value();
      break;
    case Metric::Kind::kHistogram: {
      const auto& hist = static_cast<const LatencyHistogram&>(metric);
      snap.hist.Merge(hist.Snapshot());
      snap.window.Merge(hist.WindowSnapshot());
      break;
    }
    case Metric::Kind::kSpan: {
      const auto& span = static_cast<const SpanStat&>(metric);
      snap.hist.Merge(span.SelfSnapshot());
      snap.window.Merge(span.SelfWindowSnapshot());
      snap.span_total_ns += span.total_ns();
      snap.span_self_ns += span.self_ns();
      snap.span_cpu_ns += span.cpu_ns();
      snap.span_lock_wait_ns += span.lock_wait_ns();
      snap.span_rpc_wait_ns += span.rpc_wait_ns();
      snap.span_other_wait_ns += span.other_wait_ns();
      break;
    }
  }
}

}  // namespace

std::vector<MetricSnapshot> Registry::Collect() const {
  RegistryState& state = State();
  std::map<std::string, MetricSnapshot> merged;
  {
    std::lock_guard lock(state.mu);
    for (const auto& [name, metric] : state.interned) {
      MergeInto(merged, *metric);
    }
    for (const Metric* metric : state.instances) {
      MergeInto(merged, *metric);
    }
  }
  std::vector<MetricSnapshot> out;
  out.reserve(merged.size());
  for (auto& [name, snap] : merged) {
    out.push_back(std::move(snap));
  }
  return out;
}

void Registry::ResetAll() {
  RegistryState& state = State();
  std::lock_guard lock(state.mu);
  for (const auto& [name, metric] : state.interned) {
    metric->Reset();
  }
  for (Metric* metric : state.instances) {
    metric->Reset();
  }
}

void ResetAll() {
  Registry::Instance().ResetAll();
  ResetFlightRecorder();
}

// ---------------------------------------------------------------------------
// RPC method stats

void SetRpcMethodName(uint32_t method, std::string_view name) {
  RegistryState& state = State();
  std::lock_guard lock(state.mu);
  state.rpc_names[method] = std::string(name);
}

RpcMethodStats& RpcMethodStatsFor(uint32_t method) {
  Registry& registry = Registry::Instance();
  RegistryState& state = State();
  std::string base;
  {
    std::lock_guard lock(state.mu);
    auto it = state.rpc_stats.find(method);
    if (it != state.rpc_stats.end()) {
      return *it->second;
    }
    auto nit = state.rpc_names.find(method);
    if (nit != state.rpc_names.end()) {
      base = "rpc." + nit->second;
    } else {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "rpc.m%04x", method);
      base = buf;
    }
  }
  // Intern outside the registry lock (GetCounter takes it again), then
  // publish; a racing creator wins or loses idempotently.
  auto stats = std::make_unique<RpcMethodStats>(RpcMethodStats{
      registry.GetCounter(base + ".calls"),
      registry.GetCounter(base + ".bytes_out"),
      registry.GetCounter(base + ".bytes_in"),
      registry.GetSpan(base),
  });
  std::lock_guard lock(state.mu);
  auto [it, inserted] = state.rpc_stats.emplace(method, std::move(stats));
  return *it->second;
}

// ---------------------------------------------------------------------------
// Write-amplification accounting

namespace {

constexpr std::string_view kScmLayerPrefix = "scm.layer.";
constexpr std::string_view kLogicalSuffix = ".api.logical_write_bytes";

bool SplitScmLayerCounter(std::string_view name, std::string_view* layer,
                          std::string_view* field) {
  if (name.substr(0, kScmLayerPrefix.size()) != kScmLayerPrefix) {
    return false;
  }
  const std::string_view rest = name.substr(kScmLayerPrefix.size());
  const size_t dot = rest.rfind('.');
  if (dot == std::string_view::npos || dot == 0) {
    return false;
  }
  *layer = rest.substr(0, dot);
  *field = rest.substr(dot + 1);
  return true;
}

}  // namespace

WriteAmpReport ComputeWriteAmp(
    const std::vector<std::pair<std::string, uint64_t>>& counters) {
  WriteAmpReport report;
  std::map<std::string, WriteAmpRow, std::less<>> layers;
  for (const auto& [name, value] : counters) {
    std::string_view layer;
    std::string_view field;
    if (SplitScmLayerCounter(name, &layer, &field)) {
      auto it = layers.find(layer);
      if (it == layers.end()) {
        it = layers.emplace(std::string(layer), WriteAmpRow{}).first;
        it->second.layer = std::string(layer);
      }
      WriteAmpRow& row = it->second;
      if (field == "lines_flushed") {
        row.physical_bytes += value * kWriteAmpLineBytes;
      } else if (field == "bytes_streamed") {
        row.streamed_bytes += value;
      } else if (field == "fences") {
        row.fences += value;
      }
    } else if (name.size() > kLogicalSuffix.size() &&
               std::string_view(name).substr(name.size() -
                                             kLogicalSuffix.size()) ==
                   kLogicalSuffix) {
      report.logical_bytes += value;
    }
  }
  for (auto& [name, row] : layers) {
    report.physical_bytes += row.physical_bytes;
    if (report.logical_bytes != 0) {
      row.amplification = static_cast<double>(row.physical_bytes) /
                          static_cast<double>(report.logical_bytes);
    }
    report.layers.push_back(std::move(row));
  }
  if (report.logical_bytes != 0) {
    report.amplification = static_cast<double>(report.physical_bytes) /
                           static_cast<double>(report.logical_bytes);
  }
  return report;
}

WriteAmpReport LocalWriteAmp() {
  std::vector<std::pair<std::string, uint64_t>> counters;
  for (const MetricSnapshot& snap : Registry::Instance().Collect()) {
    if (snap.kind == Metric::Kind::kCounter) {
      counters.emplace_back(snap.name, snap.counter);
    }
  }
  return ComputeWriteAmp(counters);
}

// ---------------------------------------------------------------------------
// Exporters

namespace {

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kCounters:
      return "counters";
    case Mode::kSpans:
      return "spans";
  }
  return "?";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

struct LayerRow {
  std::string layer;
  uint64_t spans = 0;
  uint64_t self_ns = 0;
  uint64_t total_ns = 0;
  uint64_t cpu_ns = 0;
  uint64_t lock_wait_ns = 0;
  uint64_t rpc_wait_ns = 0;
  uint64_t other_wait_ns = 0;
};

std::vector<LayerRow> LayerRows(const std::vector<MetricSnapshot>& snaps) {
  std::map<std::string, LayerRow> layers;
  for (const MetricSnapshot& snap : snaps) {
    if (snap.kind != Metric::Kind::kSpan || snap.hist.count() == 0) {
      continue;
    }
    const size_t dot = snap.name.find('.');
    const std::string layer =
        dot == std::string::npos ? snap.name : snap.name.substr(0, dot);
    LayerRow& row = layers[layer];
    row.layer = layer;
    row.spans += snap.hist.count();
    row.self_ns += snap.span_self_ns;
    row.total_ns += snap.span_total_ns;
    row.cpu_ns += snap.span_cpu_ns;
    row.lock_wait_ns += snap.span_lock_wait_ns;
    row.rpc_wait_ns += snap.span_rpc_wait_ns;
    row.other_wait_ns += snap.span_other_wait_ns;
  }
  std::vector<LayerRow> out;
  out.reserve(layers.size());
  for (auto& [name, row] : layers) {
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace

std::string DumpText() {
  const auto snaps = Registry::Instance().Collect();
  std::string out = "== aerie obs (mode=";
  out += ModeName(CurrentMode());
  out += ") ==\n";
  char buf[256];
  for (const MetricSnapshot& snap : snaps) {
    switch (snap.kind) {
      case Metric::Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "counter %-40s %llu\n",
                      snap.name.c_str(),
                      static_cast<unsigned long long>(snap.counter));
        break;
      case Metric::Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "gauge   %-40s %lld\n",
                      snap.name.c_str(), static_cast<long long>(snap.gauge));
        break;
      case Metric::Kind::kHistogram:
        std::snprintf(buf, sizeof(buf), "hist    %-40s %s\n",
                      snap.name.c_str(), snap.hist.SummaryString().c_str());
        break;
      case Metric::Kind::kSpan:
        std::snprintf(
            buf, sizeof(buf),
            "span    %-40s self{%s} total=%.2fms\n", snap.name.c_str(),
            snap.hist.SummaryString().c_str(),
            static_cast<double>(snap.span_total_ns) / 1e6);
        break;
    }
    out += buf;
  }
  return out;
}

std::string DumpJson() {
  const auto snaps = Registry::Instance().Collect();
  // schema_version pins the dump layout for downstream parsers (the bench
  // harness and EXPERIMENTS tooling); bump it when sections change shape.
  std::string out = "{\"schema_version\":1,\"mode\":\"";
  out += ModeName(CurrentMode());
  out += "\"";
  char buf[384];

  const Metric::Kind kinds[] = {Metric::Kind::kCounter, Metric::Kind::kGauge,
                                Metric::Kind::kHistogram,
                                Metric::Kind::kSpan};
  const char* sections[] = {"counters", "gauges", "histograms", "spans"};
  for (int k = 0; k < 4; ++k) {
    out += ",\"";
    out += sections[k];
    out += "\":{";
    bool first = true;
    for (const MetricSnapshot& snap : snaps) {
      if (snap.kind != kinds[k]) {
        continue;
      }
      if (!first) {
        out += ",";
      }
      first = false;
      out += "\"" + JsonEscape(snap.name) + "\":";
      switch (snap.kind) {
        case Metric::Kind::kCounter:
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(snap.counter));
          out += buf;
          break;
        case Metric::Kind::kGauge:
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(snap.gauge));
          out += buf;
          break;
        case Metric::Kind::kHistogram:
          out += snap.hist.ToJson();
          break;
        case Metric::Kind::kSpan:
          std::snprintf(
              buf, sizeof(buf),
              "{\"total_ns\":%llu,\"self_ns\":%llu,\"cpu_ns\":%llu,"
              "\"lock_wait_ns\":%llu,\"rpc_wait_ns\":%llu,"
              "\"other_wait_ns\":%llu,\"self\":",
              static_cast<unsigned long long>(snap.span_total_ns),
              static_cast<unsigned long long>(snap.span_self_ns),
              static_cast<unsigned long long>(snap.span_cpu_ns),
              static_cast<unsigned long long>(snap.span_lock_wait_ns),
              static_cast<unsigned long long>(snap.span_rpc_wait_ns),
              static_cast<unsigned long long>(snap.span_other_wait_ns));
          out += buf;
          out += snap.hist.ToJson();
          out += "}";
          break;
      }
    }
    out += "}";
  }

  out += ",\"layers\":{";
  bool first = true;
  for (const LayerRow& row : LayerRows(snaps)) {
    if (!first) {
      out += ",";
    }
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"spans\":%llu,\"self_ns\":%llu,"
                  "\"total_ns\":%llu,\"cpu_ns\":%llu,"
                  "\"lock_wait_ns\":%llu,\"rpc_wait_ns\":%llu,"
                  "\"other_wait_ns\":%llu}",
                  JsonEscape(row.layer).c_str(),
                  static_cast<unsigned long long>(row.spans),
                  static_cast<unsigned long long>(row.self_ns),
                  static_cast<unsigned long long>(row.total_ns),
                  static_cast<unsigned long long>(row.cpu_ns),
                  static_cast<unsigned long long>(row.lock_wait_ns),
                  static_cast<unsigned long long>(row.rpc_wait_ns),
                  static_cast<unsigned long long>(row.other_wait_ns));
    out += buf;
  }
  out += "}";

  // Rolling-window tails for every histogram/span that saw samples inside
  // the window (additive section; absent rows simply aged out).
  out += ",\"windows\":{";
  first = true;
  for (const MetricSnapshot& snap : snaps) {
    if ((snap.kind != Metric::Kind::kHistogram &&
         snap.kind != Metric::Kind::kSpan) ||
        snap.window.count() == 0) {
      continue;
    }
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + JsonEscape(snap.name) + "\":";
    out += snap.window.ToJson();
  }
  out += "}";

  // Per-layer SCM media traffic vs logical API bytes (DESIGN.md §9.3).
  const WriteAmpReport amp = LocalWriteAmp();
  std::snprintf(buf, sizeof(buf),
                ",\"write_amp\":{\"logical_bytes\":%llu,"
                "\"physical_bytes\":%llu,\"amplification\":%.3f,"
                "\"layers\":{",
                static_cast<unsigned long long>(amp.logical_bytes),
                static_cast<unsigned long long>(amp.physical_bytes),
                amp.amplification);
  out += buf;
  first = true;
  for (const WriteAmpRow& row : amp.layers) {
    if (!first) {
      out += ",";
    }
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"physical_bytes\":%llu,\"streamed_bytes\":%llu,"
                  "\"fences\":%llu,\"amplification\":%.3f}",
                  JsonEscape(row.layer).c_str(),
                  static_cast<unsigned long long>(row.physical_bytes),
                  static_cast<unsigned long long>(row.streamed_bytes),
                  static_cast<unsigned long long>(row.fences),
                  row.amplification);
    out += buf;
  }
  out += "}}}";
  return out;
}

std::string LayerBreakdownText() {
  const auto snaps = Registry::Instance().Collect();
  const auto rows = LayerRows(snaps);
  std::string out;
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "%-12s %12s %14s %14s %10s %10s %10s %10s %6s\n", "layer",
                "spans", "self(ms)", "incl(ms)", "self/span(us)", "cpu(ms)",
                "lockw(ms)", "rpcw(ms)", "wait%");
  out += buf;
  uint64_t total_self = 0;
  for (const LayerRow& row : rows) {
    total_self += row.self_ns;
  }
  for (const LayerRow& row : rows) {
    const uint64_t wait_ns =
        row.lock_wait_ns + row.rpc_wait_ns + row.other_wait_ns;
    // Wait is charged against the span that blocked (its *self* region), so
    // wait/self is the fraction of this layer's own time spent off-CPU;
    // clamp for cross-thread rounding.
    const double wait_pct =
        row.self_ns > 0
            ? std::min(100.0, 100.0 * static_cast<double>(wait_ns) /
                                  static_cast<double>(row.self_ns))
            : 0.0;
    std::snprintf(
        buf, sizeof(buf),
        "%-12s %12llu %14.2f %14.2f %10.2f %10.2f %10.2f %10.2f %5.1f%%\n",
        row.layer.c_str(), static_cast<unsigned long long>(row.spans),
        static_cast<double>(row.self_ns) / 1e6,
        static_cast<double>(row.total_ns) / 1e6,
        row.spans > 0
            ? static_cast<double>(row.self_ns) / 1e3 /
                  static_cast<double>(row.spans)
            : 0.0,
        static_cast<double>(row.cpu_ns) / 1e6,
        static_cast<double>(row.lock_wait_ns) / 1e6,
        static_cast<double>(row.rpc_wait_ns) / 1e6, wait_pct);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%-12s %12s %14.2f\n", "(sum)", "",
                static_cast<double>(total_self) / 1e6);
  out += buf;

  // Revocation traffic: service-side issue count and issue-to-grant latency
  // paired with the client-side handled count, so lock churn shows up next
  // to the layer times it explains.
  uint64_t issued = 0;
  uint64_t handled = 0;
  const Histogram* latency = nullptr;
  for (const MetricSnapshot& snap : snaps) {
    if (snap.name == "lock.revoke.issued") {
      issued = snap.counter;
    } else if (snap.name == "clerk.revoke.handled") {
      handled = snap.counter;
    } else if (snap.name == "lock.revoke.latency_us" &&
               snap.kind == Metric::Kind::kHistogram) {
      latency = &snap.hist;
    }
  }
  if (issued != 0 || handled != 0) {
    std::snprintf(buf, sizeof(buf), "revocations  issued=%llu handled=%llu",
                  static_cast<unsigned long long>(issued),
                  static_cast<unsigned long long>(handled));
    out += buf;
    if (latency != nullptr && latency->count() > 0) {
      std::snprintf(buf, sizeof(buf),
                    " wait_us{p50=%llu p95=%llu max=%llu}",
                    static_cast<unsigned long long>(latency->Percentile(50)),
                    static_cast<unsigned long long>(latency->Percentile(95)),
                    static_cast<unsigned long long>(latency->max()));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace obs
}  // namespace aerie
