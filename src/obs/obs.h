// Unified observability layer: process-wide metrics registry + trace spans.
//
// The paper's headline argument (Fig. 1, Table 1, §7) attributes latency to
// layers — VFS entry vs. naming vs. locking vs. RPC vs. SCM flushes. This
// module is the measurement substrate for the same breakdown on the Aerie
// side: every runtime layer (pxfs/flatfs API, name cache, clerk, RPC
// transport, TFS, txlog, SCM primitives) reports into one registry, and the
// benches print one per-layer table from it.
//
// Primitives:
//   * Counter   — monotonically increasing u64 (relaxed atomic).
//   * Gauge     — signed instantaneous value (relaxed atomic).
//   * LatencyHistogram — aerie::Histogram sharded across threads; recording
//     takes a per-shard spinlock that is effectively uncontended (shards are
//     selected by a per-thread id), so the hot path stays allocation-free.
//   * SpanStat / ScopedSpan / AERIE_SPAN(layer, op) — scoped wall-time spans.
//     Spans nest through a thread-local chain: a child's wall time is
//     subtracted from its parent, so each layer's *self* time is exclusive
//     and per-layer self times sum to end-to-end wall time.
//
// Metrics are either *interned* (Registry::GetCounter("layer.op.metric");
// live forever; the AERIE_SPAN macro interns once per call site via a
// function-local static) or *instance* metrics (owned by an object such as
// ScmStats, registered for the object's lifetime; the exporter aggregates
// same-named instances).
//
// Gating: the AERIE_OBS environment variable (off | counters | spans;
// default counters) selects the recording level. Every record path is
// guarded by a single relaxed load + branch, so `off` costs one predictable
// branch per call site. obs::SetMode() overrides the environment at runtime
// (benches enable span mode only for their breakdown pass).
//
// Naming convention: `layer.op.metric`, e.g. `scm.flush.lines`,
// `clerk.acquire.global`, `rpc.tfs.apply_batch.bytes_out`. Span names are
// `layer.op`; the exporter derives the layer table from the prefix before
// the first '.'.
#ifndef AERIE_SRC_OBS_OBS_H_
#define AERIE_SRC_OBS_OBS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"

namespace aerie {
namespace obs {

enum class Mode : int {
  kOff = 0,       // record nothing
  kCounters = 1,  // counters, gauges, histograms
  kSpans = 2,     // everything, including trace spans
};

namespace detail {
// -1 = "not yet initialized from AERIE_OBS"; constant-initialized so there
// is no static-init-order hazard. First reader parses the environment.
inline std::atomic<int> g_mode{-1};
int InitModeFromEnv();  // parses AERIE_OBS, stores and returns the mode
// Idempotent process-telemetry attach (shm publisher / sigdump / dump-file;
// defined in telemetry.cc, invoked from InitModeFromEnv).
void StartProcessTelemetryOnce();
}  // namespace detail

inline int ModeRaw() {
  const int m = detail::g_mode.load(std::memory_order_relaxed);
  if (m >= 0) [[likely]] {
    return m;
  }
  return detail::InitModeFromEnv();
}

inline Mode CurrentMode() { return static_cast<Mode>(ModeRaw()); }
void SetMode(Mode mode);
// Parses "off"/"counters"/"spans" (anything else -> kCounters).
Mode ParseMode(std::string_view text);

// The single-branch gates every hot path uses.
inline bool CountersOn() {
  return ModeRaw() >= static_cast<int>(Mode::kCounters);
}
inline bool SpansOn() { return ModeRaw() >= static_cast<int>(Mode::kSpans); }

class Registry;

// Base for everything the registry can enumerate.
class Metric {
 public:
  enum class Kind { kCounter, kGauge, kHistogram, kSpan };

  virtual ~Metric() = default;
  Metric(const Metric&) = delete;
  Metric& operator=(const Metric&) = delete;

  const std::string& name() const { return name_; }
  Kind kind() const { return kind_; }
  virtual void Reset() = 0;

 protected:
  Metric(std::string name, Kind kind) : name_(std::move(name)), kind_(kind) {}

 private:
  std::string name_;
  Kind kind_;
};

class Counter final : public Metric {
 public:
  explicit Counter(std::string name)
      : Metric(std::move(name), Kind::kCounter) {}

  void Add(uint64_t n = 1) {
    if (CountersOn()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  // std::atomic-compatible spelling; keeps migrated call sites (ScmStats,
  // VfsStats) reading the way they always did.
  uint64_t load() const { return value(); }
  void Reset() override { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge final : public Metric {
 public:
  explicit Gauge(std::string name) : Metric(std::move(name), Kind::kGauge) {}

  void Set(int64_t v) {
    if (CountersOn()) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  void Add(int64_t n) {
    if (CountersOn()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  void Sub(int64_t n) { Add(-n); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() override { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

namespace detail {

class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

// Small dense per-thread id used to pick a histogram shard.
inline uint32_t ThreadShardId() {
  static std::atomic<uint32_t> next{0};
  static thread_local uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Length of one rolling-window sub-epoch in nanoseconds: the window spans
// kWindowEpochs of these (~AERIE_OBS_WINDOW_SECS seconds total, default 10).
// Cached after the first read; SetWindowEpochNanosForTesting overrides.
uint64_t WindowEpochNanos();

}  // namespace detail

// Number of sub-epochs in a rolling histogram window. A WindowSnapshot
// merges the most recent kWindowEpochs epochs (including the in-progress
// one), so tails reflect roughly the last AERIE_OBS_WINDOW_SECS seconds
// rather than the process lifetime.
inline constexpr int kWindowEpochs = 8;

// Overrides the sub-epoch length (0 restores the environment default on the
// next read). Tests drive rotation with a synthetic clock through this plus
// RecordAtForTesting/WindowSnapshotAt.
void SetWindowEpochNanosForTesting(uint64_t ns);

// aerie::Histogram sharded across threads. Recording locks one shard
// spinlock; threads map to shards by a dense thread id, so the lock is
// uncontended unless thread count far exceeds kShards.
//
// Each shard additionally keeps a rotating window of kWindowEpochs
// sub-epoch histograms (allocated lazily on the shard's first record, so
// idle histograms cost nothing): a record lands in the epoch slot derived
// from its timestamp, reusing — and first clearing — slots whose epoch has
// expired. WindowSnapshot merges the epochs that are still inside the
// window, which is what makes "p99 over the last ~10 s" cheap to answer.
class LatencyHistogram final : public Metric {
 public:
  explicit LatencyHistogram(std::string name)
      : Metric(std::move(name), Kind::kHistogram) {}

  void Record(uint64_t value) {
    if (CountersOn()) {
      RecordAlways(value, NowNanos());
    }
  }

  // Merged lifetime view across shards.
  Histogram Snapshot() const;
  // Merged view of the rolling window: samples from the most recent
  // kWindowEpochs sub-epochs (including the in-progress one).
  Histogram WindowSnapshot() const { return WindowSnapshotAt(NowNanos()); }
  Histogram WindowSnapshotAt(uint64_t now_ns) const;
  void Reset() override;

  // Test hook: record with an explicit timestamp (drives window rotation
  // deterministically together with SetWindowEpochNanosForTesting).
  void RecordAtForTesting(uint64_t value, uint64_t now_ns) {
    RecordAlways(value, now_ns);
  }

 private:
  friend class SpanStat;

  static constexpr uint64_t kNoEpoch = ~uint64_t{0};

  struct WindowEpoch {
    uint64_t epoch_id = kNoEpoch;
    Histogram hist;
  };

  void RecordAlways(uint64_t value, uint64_t now_ns) {
    Shard& shard = shards_[detail::ThreadShardId() % kShards];
    const uint64_t epoch_id = now_ns / detail::WindowEpochNanos();
    shard.lock.lock();
    shard.hist.Record(value);
    if (shard.window == nullptr) {
      shard.window = std::make_unique<WindowEpoch[]>(kWindowEpochs);
    }
    WindowEpoch& epoch =
        shard.window[epoch_id % static_cast<uint64_t>(kWindowEpochs)];
    if (epoch.epoch_id != epoch_id) {
      // Rotation: this slot last held an epoch that has left the window
      // (or was never used); retire its samples before reuse.
      epoch.hist.Clear();
      epoch.epoch_id = epoch_id;
    }
    epoch.hist.Record(value);
    shard.lock.unlock();
  }

  static constexpr uint32_t kShards = 8;
  struct alignas(64) Shard {
    mutable detail::SpinLock lock;
    Histogram hist;
    std::unique_ptr<WindowEpoch[]> window;  // lazy; kWindowEpochs entries
  };
  mutable std::array<Shard, kShards> shards_;
};

// Off-CPU wait categories for span attribution (profiler plane, DESIGN.md
// §9.4). Instrumented wait sites charge their blocked wall time to the
// calling thread's innermost live span under one of these; sampled CPU time
// (src/obs/profiler.h) is the fourth bucket, so every span decomposes into
// cpu / lock_wait / rpc_wait / other_wait.
enum class WaitKind : int {
  kLock = 0,   // lock-service waiter queues, clerk local-grant waits
  kRpc = 1,    // RPC round trips (transport Call blocked on the server)
  kOther = 2,  // everything else (drain stalls, batch-ship backpressure)
};
inline constexpr int kWaitKinds = 3;

// Aggregate for one span call-site family (one `layer.op`): a histogram of
// *self* time plus exact running sums for attribution arithmetic.
class SpanStat final : public Metric {
 public:
  explicit SpanStat(std::string name)
      : Metric(std::move(name), Kind::kSpan), self_hist_(std::string()) {}

  // end_ns stamps the sample into the rolling window (callers that already
  // read the clock — ScopedSpan — pass their end timestamp; 0 reads it).
  void Record(uint64_t total_ns, uint64_t self_ns, uint64_t end_ns = 0) {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(total_ns, std::memory_order_relaxed);
    self_ns_.fetch_add(self_ns, std::memory_order_relaxed);
    self_hist_.RecordAlways(self_ns, end_ns != 0 ? end_ns : NowNanos());
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  // Inclusive wall time (child spans included).
  uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  // Exclusive wall time (child spans subtracted).
  uint64_t self_ns() const { return self_ns_.load(std::memory_order_relaxed); }
  Histogram SelfSnapshot() const { return self_hist_.Snapshot(); }
  // Rolling-window view of self time (same window semantics as
  // LatencyHistogram::WindowSnapshot).
  Histogram SelfWindowSnapshot() const { return self_hist_.WindowSnapshot(); }

  // CPU time attributed by the sampling profiler (period_ns per SIGPROF
  // sample landing while this span was innermost on some thread) and
  // off-CPU wait charged by instrumented wait sites. All relaxed; the
  // profiler collector is the only AddCpuNs caller, wait sites call
  // AddWaitNs from their own thread.
  void AddCpuNs(uint64_t ns) {
    cpu_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void AddWaitNs(WaitKind kind, uint64_t ns) {
    wait_ns_[static_cast<int>(kind)].fetch_add(ns, std::memory_order_relaxed);
  }
  uint64_t cpu_ns() const { return cpu_ns_.load(std::memory_order_relaxed); }
  uint64_t wait_ns(WaitKind kind) const {
    return wait_ns_[static_cast<int>(kind)].load(std::memory_order_relaxed);
  }
  uint64_t lock_wait_ns() const { return wait_ns(WaitKind::kLock); }
  uint64_t rpc_wait_ns() const { return wait_ns(WaitKind::kRpc); }
  uint64_t other_wait_ns() const { return wait_ns(WaitKind::kOther); }

  void Reset() override {
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
    self_ns_.store(0, std::memory_order_relaxed);
    cpu_ns_.store(0, std::memory_order_relaxed);
    for (auto& w : wait_ns_) {
      w.store(0, std::memory_order_relaxed);
    }
    self_hist_.Reset();
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> self_ns_{0};
  std::atomic<uint64_t> cpu_ns_{0};
  std::array<std::atomic<uint64_t>, kWaitKinds> wait_ns_{};
  LatencyHistogram self_hist_;
};

// Accessor for the thread's innermost live span (defined in obs.cc).
class ScopedSpan;
ScopedSpan*& TlsCurrentSpan();

namespace detail {

// Async-signal-safe mirror of the innermost live span's stat. ScopedSpan
// keeps it in sync with TlsCurrentSpan(); the SIGPROF handler
// (src/obs/profiler.cc) reads only this atomic — never the stack-allocated
// ScopedSpan chain — because a sample can land between any two instructions
// of ctor/dtor. Values are interned SpanStat pointers, valid for the
// process lifetime, so a stale read is at worst misattributed, never a
// dangling dereference.
extern thread_local constinit std::atomic<SpanStat*> g_tls_prof_span;

}  // namespace detail

namespace detail {

// Trace-context bookkeeping for one live ScopedSpan, maintained by the
// flight recorder (obs/trace.cc — out of line so obs.h need not see the
// tracing internals). Begin mints/extends the thread's TraceContext and
// stamps a begin event; End restores the previous context and stamps the
// completed span. Only called on the spans-enabled path.
struct TraceLink {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  // Thread context to restore when the span ends.
  uint64_t prev_trace_id = 0;
  uint64_t prev_span_id = 0;
  uint64_t prev_parent_id = 0;
};
// `name` must outlive the process (interned SpanStat names qualify).
void TraceSpanBegin(const char* name, TraceLink* link);
void TraceSpanEnd(const char* name, const TraceLink& link, uint64_t start_ns,
                  uint64_t end_ns);

}  // namespace detail

// RAII span. Inert (one branch) unless mode is `spans`. Safe to construct
// with a null stat (records nothing).
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanStat* stat) {
    if (stat == nullptr || !SpansOn()) {
      return;
    }
    stat_ = stat;
    ScopedSpan*& tls = TlsCurrentSpan();
    parent_ = tls;
    tls = this;
    detail::g_tls_prof_span.store(stat, std::memory_order_relaxed);
    detail::TraceSpanBegin(stat->name().c_str(), &trace_);
    start_ns_ = NowNanos();
  }

  ~ScopedSpan() {
    if (stat_ == nullptr) {
      return;
    }
    const uint64_t end_ns = NowNanos();
    const uint64_t total = end_ns - start_ns_;
    TlsCurrentSpan() = parent_;
    detail::g_tls_prof_span.store(
        parent_ != nullptr ? parent_->stat_ : nullptr,
        std::memory_order_relaxed);
    if (parent_ != nullptr) {
      parent_->child_ns_ += total;
    }
    stat_->Record(total, total >= child_ns_ ? total - child_ns_ : 0, end_ns);
    detail::TraceSpanEnd(stat_->name().c_str(), trace_, start_ns_, end_ns);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanStat* stat_ = nullptr;
  ScopedSpan* parent_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t child_ns_ = 0;  // wall time spent in nested spans
  detail::TraceLink trace_;
};

// Charges `ns` of off-CPU wait of `kind` to the calling thread's innermost
// live span. No-op when spans are off or no span is live.
void AddWaitNsToCurrentSpan(WaitKind kind, uint64_t ns);

// RAII off-CPU wait measurement for an instrumented blocking site: charges
// the wall time between construction and destruction as `kind` wait to the
// calling thread's innermost live span. When `total_ns` is non-null the
// measured time is also accumulated there whenever counters are on, even
// without a live span — the lock service feeds lock.wait.latency_us from
// it in plain counters mode. Inert (one clock-free branch) otherwise.
class ScopedWait {
 public:
  explicit ScopedWait(WaitKind kind, uint64_t* total_ns = nullptr);
  ~ScopedWait();
  ScopedWait(const ScopedWait&) = delete;
  ScopedWait& operator=(const ScopedWait&) = delete;

 private:
  uint64_t start_ns_ = 0;  // 0 = inert
  uint64_t* total_ns_ = nullptr;
  WaitKind kind_ = WaitKind::kOther;
};

// One row of an exporter snapshot; same-named instance metrics are merged.
struct MetricSnapshot {
  std::string name;
  Metric::Kind kind;
  uint64_t counter = 0;    // kCounter
  int64_t gauge = 0;       // kGauge
  Histogram hist;          // kHistogram (values), kSpan (self time)
  Histogram window;        // rolling-window view of `hist` (same kinds)
  uint64_t span_total_ns = 0;
  uint64_t span_self_ns = 0;
  // Profiler plane (DESIGN.md §9.4): sampled CPU + attributed off-CPU wait.
  uint64_t span_cpu_ns = 0;
  uint64_t span_lock_wait_ns = 0;
  uint64_t span_rpc_wait_ns = 0;
  uint64_t span_other_wait_ns = 0;
};

class Registry {
 public:
  static Registry& Instance();

  // Interned metrics: one per name, live for the process lifetime.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  LatencyHistogram& GetHistogram(std::string_view name);
  SpanStat& GetSpan(std::string_view name);

  // Instance metrics owned by some object (per-region ScmStats, per-VFS
  // VfsStats, per-clerk counters). The object must Unregister before dying.
  void Register(Metric* metric);
  void Unregister(Metric* metric);

  // Aggregated snapshot, sorted by name; same-named metrics are merged
  // (counters/gauges summed, histograms merged).
  std::vector<MetricSnapshot> Collect() const;

  // Zeroes every live metric (bench epochs).
  void ResetAll();

  size_t MetricCountForTesting() const;

 private:
  Registry() = default;
};

// Registers a set of instance metrics and unregisters them on destruction.
// Declare it AFTER the metrics it guards so unregistration runs first.
class ScopedRegistration {
 public:
  ScopedRegistration() = default;
  ~ScopedRegistration() {
    for (Metric* m : metrics_) {
      Registry::Instance().Unregister(m);
    }
  }
  ScopedRegistration(const ScopedRegistration&) = delete;
  ScopedRegistration& operator=(const ScopedRegistration&) = delete;

  void Add(Metric* metric) {
    Registry::Instance().Register(metric);
    metrics_.push_back(metric);
  }
  template <typename... Ms>
  void AddAll(Ms&... metrics) {
    (Add(&metrics), ...);
  }

 private:
  std::vector<Metric*> metrics_;
};

// --- Exporters (benches print these; EXPERIMENTS.md records the JSON) ---

// Human-readable dump of every metric, sorted by name.
std::string DumpText();
// One JSON object: {"schema_version":1, "mode":..., "counters":{...},
// "gauges":{...}, "histograms":{name: summary...}, "spans":{...},
// "layers":{...}} where "layers" aggregates span self-time by the `layer`
// name prefix. schema_version is bumped whenever a section changes shape.
std::string DumpJson();
// Per-layer table (layer, spans, self ms, mean self us) from span data.
std::string LayerBreakdownText();

// Zeroes all metrics (alias for Registry::Instance().ResetAll()).
void ResetAll();

// --- SCM write-amplification accounting -----------------------------------
// The SCM primitives attribute physical media traffic per layer
// (src/scm/pmem.h: AERIE_SCM_LAYER scopes feed scm.layer.<layer>.*
// counters) and the PXFS/FlatFS API boundary counts the logical bytes
// applications asked to write (*.api.logical_write_bytes). ComputeWriteAmp
// derives per-layer write amplification from any (name, counter value) set
// — the local registry, or a cross-process telemetry merge in aerie_top.
// Bytes per flushed cache line (mirrors aerie::kCacheLineSize without an
// obs -> scm dependency).
inline constexpr uint64_t kWriteAmpLineBytes = 64;

struct WriteAmpRow {
  std::string layer;
  uint64_t physical_bytes = 0;  // 64 * scm.layer.<layer>.lines_flushed
  uint64_t streamed_bytes = 0;  // scm.layer.<layer>.bytes_streamed
  uint64_t fences = 0;          // scm.layer.<layer>.fences
  double amplification = 0;     // physical_bytes / total logical bytes
};
struct WriteAmpReport {
  uint64_t logical_bytes = 0;   // sum of *.api.logical_write_bytes
  uint64_t physical_bytes = 0;  // sum of layer physical bytes
  double amplification = 0;     // physical / logical (0 when logical == 0)
  std::vector<WriteAmpRow> layers;  // sorted by layer name
};
WriteAmpReport ComputeWriteAmp(
    const std::vector<std::pair<std::string, uint64_t>>& counters);
// The same report computed from this process's registry.
WriteAmpReport LocalWriteAmp();

// --- RPC method instrumentation -------------------------------------------
// Transports record per-method call counts and bytes without knowing which
// subsystem owns a method id; subsystems register readable names when they
// wire their dispatcher (before the first call, or the id is rendered in
// hex). Counter names: rpc.<method>.calls / .bytes_out / .bytes_in, span
// name rpc.<method>.
struct RpcMethodStats {
  Counter& calls;
  Counter& bytes_out;
  Counter& bytes_in;
  SpanStat& span;
};
void SetRpcMethodName(uint32_t method, std::string_view name);
RpcMethodStats& RpcMethodStatsFor(uint32_t method);

}  // namespace obs
}  // namespace aerie

// Scoped trace span: AERIE_SPAN("pxfs", "open") attributes the enclosing
// scope's wall time to layer "pxfs", op "open". Both arguments must be
// string literals. Costs one branch when spans are disabled.
#define AERIE_OBS_CONCAT_(a, b) a##b
#define AERIE_OBS_CONCAT(a, b) AERIE_OBS_CONCAT_(a, b)
#define AERIE_SPAN(layer, op)                                               \
  static ::aerie::obs::SpanStat& AERIE_OBS_CONCAT(aerie_span_stat_,         \
                                                  __LINE__) =               \
      ::aerie::obs::Registry::Instance().GetSpan(layer "." op);             \
  ::aerie::obs::ScopedSpan AERIE_OBS_CONCAT(aerie_span_, __LINE__)(         \
      ::aerie::obs::SpansOn()                                               \
          ? &AERIE_OBS_CONCAT(aerie_span_stat_, __LINE__)                   \
          : nullptr)

// Interned-counter increment: AERIE_COUNT("pxfs.name_cache.hit") or
// AERIE_COUNT_N("txlog.append.bytes", n). Interns once per call site.
#define AERIE_COUNT_N(name, n)                                              \
  do {                                                                      \
    if (::aerie::obs::CountersOn()) {                                       \
      static ::aerie::obs::Counter& AERIE_OBS_CONCAT(aerie_counter_,        \
                                                     __LINE__) =            \
          ::aerie::obs::Registry::Instance().GetCounter(name);              \
      AERIE_OBS_CONCAT(aerie_counter_, __LINE__).Add(n);                    \
    }                                                                       \
  } while (0)
#define AERIE_COUNT(name) AERIE_COUNT_N(name, 1)

#endif  // AERIE_SRC_OBS_OBS_H_
