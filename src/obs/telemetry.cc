#include "src/obs/telemetry.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include "src/common/clock.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

#if defined(__GLIBC__)
#include <errno.h>  // program_invocation_short_name
#endif

namespace aerie {
namespace obs {

namespace {

static_assert(sizeof(std::atomic<uint64_t>) == sizeof(uint64_t) &&
                  std::atomic<uint64_t>::is_always_lock_free,
              "segment words must be plain lock-free 64-bit atomics");

constexpr const char* kSegmentPrefix = "aerie.obs.";

uint64_t UnixNanos() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

std::string DefaultProcessName() {
  const char* env = std::getenv("AERIE_OBS_PROCESS_NAME");
  if (env != nullptr && env[0] != '\0') {
    return env;
  }
#if defined(__GLIBC__)
  if (program_invocation_short_name != nullptr) {
    return program_invocation_short_name;
  }
#endif
  return "aerie";
}

void PackString(uint64_t* words, int byte_capacity, const std::string& s) {
  char* bytes = reinterpret_cast<char*>(words);
  std::memset(bytes, 0, static_cast<size_t>(byte_capacity));
  // Leave at least one NUL so readers always find a terminator.
  const size_t n = std::min(s.size(), static_cast<size_t>(byte_capacity - 1));
  std::memcpy(bytes, s.data(), n);
}

std::string UnpackString(const uint64_t* words, int byte_capacity) {
  const char* bytes = reinterpret_cast<const char*>(words);
  const size_t n = ::strnlen(bytes, static_cast<size_t>(byte_capacity));
  return std::string(bytes, n);
}

// Entry word indexes, relative to the entry start (after the name bytes).
constexpr int kEntNameWords = kTelemetryNameBytes / 8;
constexpr int kEntKind = kEntNameWords + 0;
constexpr int kEntValue = kEntNameWords + 1;
constexpr int kEntSpanTotal = kEntNameWords + 2;
constexpr int kEntSpanSelf = kEntNameWords + 3;
// Format v2: the profiler plane's per-span CPU/off-CPU decomposition.
constexpr int kEntSpanCpu = kEntNameWords + 4;
constexpr int kEntSpanLockWait = kEntNameWords + 5;
constexpr int kEntSpanRpcWait = kEntNameWords + 6;
constexpr int kEntSpanOtherWait = kEntNameWords + 7;
constexpr int kEntCumCount = kEntNameWords + 8;
constexpr int kEntCumSum = kEntNameWords + 9;
constexpr int kEntCumMin = kEntNameWords + 10;
constexpr int kEntCumMax = kEntNameWords + 11;
constexpr int kEntWinCount = kEntNameWords + 12;
constexpr int kEntWinSum = kEntNameWords + 13;
constexpr int kEntWinMin = kEntNameWords + 14;
constexpr int kEntWinMax = kEntNameWords + 15;
constexpr int kEntBucketSlot = kEntNameWords + 16;
static_assert(kEntBucketSlot + 1 == kTelemetryEntryWords,
              "entry layout must fill kTelemetryEntryWords exactly");

}  // namespace

std::string TelemetryDir() {
  const char* env = std::getenv("AERIE_OBS_SHM_DIR");
  if (env != nullptr && env[0] != '\0') {
    return env;
  }
  return "/dev/shm";
}

std::string TelemetrySegmentPath(const std::string& dir, uint64_t pid) {
  return dir + "/" + kSegmentPrefix + std::to_string(pid);
}

// ---------------------------------------------------------------------------
// Publisher

std::unique_ptr<TelemetryPublisher> TelemetryPublisher::Create(
    const Options& options) {
  auto pub = std::unique_ptr<TelemetryPublisher>(new TelemetryPublisher());
  pub->pid_ = options.pid != 0 ? options.pid
                               : static_cast<uint64_t>(::getpid());
  pub->process_name_ = options.process_name.empty() ? DefaultProcessName()
                                                    : options.process_name;
  pub->start_unix_ns_ = UnixNanos();
  const std::string dir = options.dir.empty() ? TelemetryDir() : options.dir;
  pub->path_ = TelemetrySegmentPath(dir, pub->pid_);

  const int fd =
      ::open(pub->path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return nullptr;
  }
  if (::ftruncate(fd, static_cast<off_t>(TelemetrySegmentBytes())) != 0) {
    ::close(fd);
    ::unlink(pub->path_.c_str());
    return nullptr;
  }
  void* mem = ::mmap(nullptr, TelemetrySegmentBytes(),
                     PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (mem == MAP_FAILED) {
    ::unlink(pub->path_.c_str());
    return nullptr;
  }
  pub->map_ = mem;
  pub->PublishNow();
  return pub;
}

TelemetryPublisher::~TelemetryPublisher() {
  if (map_ != nullptr) {
    ::munmap(map_, TelemetrySegmentBytes());
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
  }
}

void TelemetryPublisher::PublishNow() {
  const auto snaps = Registry::Instance().Collect();

  // Serialize into the staging buffer (plain memory): header, then one
  // fixed-size entry per metric, then bucket blobs for the histogram-kind
  // entries that got a slot.
  uint64_t entry_count = 0;
  uint64_t hist_count = 0;
  uint64_t dropped_entries = 0;
  uint64_t dropped_hists = 0;

  const uint64_t usable =
      std::min(static_cast<uint64_t>(snaps.size()), kTelemetryEntryCapacity);
  dropped_entries = snaps.size() - usable;
  const uint64_t bucket_base =
      kTelemetryHeaderWords + usable * kTelemetryEntryWords;

  staging_.assign(bucket_base + kTelemetryHistCapacity * kTelemetryBucketWords,
                  0);

  for (const MetricSnapshot& snap : snaps) {
    if (entry_count >= kTelemetryEntryCapacity) {
      break;
    }
    uint64_t* ent =
        staging_.data() + kTelemetryHeaderWords +
        entry_count * kTelemetryEntryWords;
    PackString(ent, kTelemetryNameBytes, snap.name);
    ent[kEntKind] = static_cast<uint64_t>(snap.kind);
    ent[kEntBucketSlot] = kTelemetryNoBucketSlot;
    switch (snap.kind) {
      case Metric::Kind::kCounter:
        ent[kEntValue] = snap.counter;
        break;
      case Metric::Kind::kGauge:
        std::memcpy(&ent[kEntValue], &snap.gauge, sizeof(uint64_t));
        break;
      case Metric::Kind::kHistogram:
      case Metric::Kind::kSpan: {
        ent[kEntSpanTotal] = snap.span_total_ns;
        ent[kEntSpanSelf] = snap.span_self_ns;
        ent[kEntSpanCpu] = snap.span_cpu_ns;
        ent[kEntSpanLockWait] = snap.span_lock_wait_ns;
        ent[kEntSpanRpcWait] = snap.span_rpc_wait_ns;
        ent[kEntSpanOtherWait] = snap.span_other_wait_ns;
        ent[kEntCumCount] = snap.hist.count();
        ent[kEntCumSum] = snap.hist.sum();
        ent[kEntCumMin] = snap.hist.min();
        ent[kEntCumMax] = snap.hist.max();
        ent[kEntWinCount] = snap.window.count();
        ent[kEntWinSum] = snap.window.sum();
        ent[kEntWinMin] = snap.window.min();
        ent[kEntWinMax] = snap.window.max();
        if (hist_count < kTelemetryHistCapacity) {
          ent[kEntBucketSlot] = hist_count;
          uint64_t* blob = staging_.data() + bucket_base +
                           hist_count * kTelemetryBucketWords;
          for (int i = 0; i < Histogram::kBuckets; ++i) {
            blob[i] = snap.hist.bucket_count(i);
            blob[Histogram::kBuckets + i] = snap.window.bucket_count(i);
          }
          ++hist_count;
        } else {
          ++dropped_hists;
        }
        break;
      }
    }
    ++entry_count;
  }

  const uint64_t used_words = bucket_base + hist_count * kTelemetryBucketWords;
  ++publish_count_;

  uint64_t* hdr = staging_.data();
  hdr[kHdrMagic] = kTelemetryMagic;
  hdr[kHdrFormatVersion] = kTelemetryFormatVersion;
  hdr[kHdrPid] = pid_;
  hdr[kHdrStartUnixNs] = start_unix_ns_;
  hdr[kHdrPublishUnixNs] = UnixNanos();
  hdr[kHdrPublishMonoNs] = NowNanos();
  hdr[kHdrEntryCount] = entry_count;
  hdr[kHdrEntryCapacity] = kTelemetryEntryCapacity;
  hdr[kHdrHistCapacity] = kTelemetryHistCapacity;
  hdr[kHdrWindowEpochNs] = detail::WindowEpochNanos();
  hdr[kHdrWindowEpochs] = static_cast<uint64_t>(kWindowEpochs);
  hdr[kHdrPublishCount] = publish_count_;
  hdr[kHdrDroppedEntries] = dropped_entries;
  hdr[kHdrDroppedHists] = dropped_hists;
  hdr[kHdrMode] = static_cast<uint64_t>(ModeRaw());
  PackString(&hdr[kHdrProcessName], kTelemetryProcessNameBytes,
             process_name_);
  hdr[kHdrBucketBase] = bucket_base;
  hdr[kHdrHistCount] = hist_count;

  // Seqlock write side: odd = in flight, even = stable. Payload words are
  // relaxed atomic stores between release fences, so a concurrent in-process
  // reader is race-free (TSan) and a cross-process reader on x86 sees the
  // usual seqlock ordering.
  auto* words = static_cast<std::atomic<uint64_t>*>(map_);
  const uint64_t seq = words[kHdrSeq].load(std::memory_order_relaxed);
  words[kHdrSeq].store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (uint64_t i = 0; i < used_words; ++i) {
    if (i == static_cast<uint64_t>(kHdrSeq)) {
      continue;
    }
    words[i].store(staging_[i], std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_release);
  words[kHdrSeq].store(seq + 2, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Reader

namespace {

bool ParseSnapshot(const std::vector<uint64_t>& w, TelemetrySnapshot* out) {
  out->pid = w[kHdrPid];
  out->start_unix_ns = w[kHdrStartUnixNs];
  out->publish_unix_ns = w[kHdrPublishUnixNs];
  out->publish_mono_ns = w[kHdrPublishMonoNs];
  out->publish_count = w[kHdrPublishCount];
  out->window_epoch_ns = w[kHdrWindowEpochNs];
  out->dropped_entries = w[kHdrDroppedEntries];
  out->dropped_hists = w[kHdrDroppedHists];
  out->mode = static_cast<Mode>(
      std::min<uint64_t>(w[kHdrMode], static_cast<uint64_t>(Mode::kSpans)));
  out->process_name =
      UnpackString(&w[kHdrProcessName], kTelemetryProcessNameBytes);

  const uint64_t entry_count = w[kHdrEntryCount];
  const uint64_t bucket_base = w[kHdrBucketBase];
  const uint64_t hist_count = w[kHdrHistCount];
  out->metrics.clear();
  out->metrics.reserve(entry_count);
  for (uint64_t e = 0; e < entry_count; ++e) {
    const uint64_t* ent =
        w.data() + kTelemetryHeaderWords + e * kTelemetryEntryWords;
    TelemetryMetric m;
    m.name = UnpackString(ent, kTelemetryNameBytes);
    if (m.name.empty() || ent[kEntKind] > 3) {
      return false;  // torn or corrupt entry that slipped past the seqlock
    }
    m.kind = static_cast<Metric::Kind>(ent[kEntKind]);
    switch (m.kind) {
      case Metric::Kind::kCounter:
        m.counter = ent[kEntValue];
        break;
      case Metric::Kind::kGauge:
        std::memcpy(&m.gauge, &ent[kEntValue], sizeof(int64_t));
        break;
      case Metric::Kind::kHistogram:
      case Metric::Kind::kSpan: {
        m.span_total_ns = ent[kEntSpanTotal];
        m.span_self_ns = ent[kEntSpanSelf];
        m.span_cpu_ns = ent[kEntSpanCpu];
        m.span_lock_wait_ns = ent[kEntSpanLockWait];
        m.span_rpc_wait_ns = ent[kEntSpanRpcWait];
        m.span_other_wait_ns = ent[kEntSpanOtherWait];
        const uint64_t slot = ent[kEntBucketSlot];
        const uint64_t* cum_buckets = nullptr;
        const uint64_t* win_buckets = nullptr;
        if (slot != kTelemetryNoBucketSlot) {
          if (slot >= hist_count) {
            return false;
          }
          const uint64_t* blob =
              w.data() + bucket_base + slot * kTelemetryBucketWords;
          cum_buckets = blob;
          win_buckets = blob + Histogram::kBuckets;
          m.has_hist = true;
        }
        m.cumulative.MergeSerialized(
            cum_buckets, cum_buckets != nullptr ? Histogram::kBuckets : 0,
            ent[kEntCumCount], ent[kEntCumSum], ent[kEntCumMin],
            ent[kEntCumMax]);
        m.window.MergeSerialized(
            win_buckets, win_buckets != nullptr ? Histogram::kBuckets : 0,
            ent[kEntWinCount], ent[kEntWinSum], ent[kEntWinMin],
            ent[kEntWinMax]);
        break;
      }
    }
    out->metrics.push_back(std::move(m));
  }
  return true;
}

}  // namespace

bool ReadTelemetrySegment(const std::string& path, TelemetrySnapshot* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return false;
  }
  struct stat sb{};
  if (::fstat(fd, &sb) != 0 ||
      static_cast<uint64_t>(sb.st_size) < TelemetrySegmentBytes()) {
    ::close(fd);
    return false;
  }
  void* mem =
      ::mmap(nullptr, TelemetrySegmentBytes(), PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (mem == MAP_FAILED) {
    return false;
  }
  const auto* words = static_cast<const std::atomic<uint64_t>*>(mem);
  const uint64_t total_words = TelemetrySegmentWords();

  bool ok = false;
  std::vector<uint64_t> local;
  for (int attempt = 0; attempt < 64 && !ok; ++attempt) {
    const uint64_t s1 = words[kHdrSeq].load(std::memory_order_acquire);
    if (s1 & 1) {
      continue;  // publish in flight
    }
    uint64_t hdr[kTelemetryHeaderWords];
    for (int i = 0; i < kTelemetryHeaderWords; ++i) {
      hdr[i] = words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (words[kHdrSeq].load(std::memory_order_relaxed) != s1) {
      continue;
    }
    if (hdr[kHdrMagic] != kTelemetryMagic ||
        hdr[kHdrFormatVersion] != kTelemetryFormatVersion) {
      break;  // never published, or a foreign format: not retryable
    }
    const uint64_t entry_count = hdr[kHdrEntryCount];
    const uint64_t bucket_base = hdr[kHdrBucketBase];
    const uint64_t hist_count = hdr[kHdrHistCount];
    if (entry_count > kTelemetryEntryCapacity ||
        hist_count > kTelemetryHistCapacity ||
        bucket_base !=
            kTelemetryHeaderWords + entry_count * kTelemetryEntryWords) {
      continue;  // torn header
    }
    const uint64_t used =
        bucket_base + hist_count * kTelemetryBucketWords;
    if (used > total_words) {
      continue;
    }
    local.assign(used, 0);
    for (uint64_t i = 0; i < used; ++i) {
      local[i] = words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (words[kHdrSeq].load(std::memory_order_relaxed) != s1) {
      continue;  // overwritten mid-copy; retry
    }
    local[kHdrSeq] = s1;
    ok = ParseSnapshot(local, out);
  }
  ::munmap(mem, TelemetrySegmentBytes());
  return ok;
}

std::vector<TelemetrySnapshot> ReadTelemetryDir(const std::string& dir,
                                                bool gc_dead, int* gc_count) {
  std::vector<TelemetrySnapshot> out;
  if (gc_count != nullptr) {
    *gc_count = 0;
  }
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return out;
  }
  const uint64_t self = static_cast<uint64_t>(::getpid());
  std::vector<std::pair<uint64_t, std::string>> segments;
  while (dirent* ent = ::readdir(d)) {
    const char* name = ent->d_name;
    if (std::strncmp(name, kSegmentPrefix, std::strlen(kSegmentPrefix)) !=
        0) {
      continue;
    }
    const char* digits = name + std::strlen(kSegmentPrefix);
    if (*digits == '\0') {
      continue;
    }
    char* end = nullptr;
    const uint64_t pid = std::strtoull(digits, &end, 10);
    if (end == nullptr || *end != '\0' || pid == 0) {
      continue;
    }
    segments.emplace_back(pid, dir + "/" + name);
  }
  ::closedir(d);
  std::sort(segments.begin(), segments.end());

  for (const auto& [pid, path] : segments) {
    if (gc_dead && pid != self &&
        ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH) {
      if (::unlink(path.c_str()) == 0 && gc_count != nullptr) {
        ++*gc_count;
      }
      continue;
    }
    TelemetrySnapshot snap;
    if (ReadTelemetrySegment(path, &snap)) {
      out.push_back(std::move(snap));
    }
  }
  return out;
}

std::vector<TelemetryMetric> MergeTelemetry(
    const std::vector<TelemetrySnapshot>& snapshots) {
  std::map<std::string, TelemetryMetric> merged;
  for (const TelemetrySnapshot& snap : snapshots) {
    for (const TelemetryMetric& m : snap.metrics) {
      auto [it, inserted] = merged.try_emplace(m.name);
      TelemetryMetric& dst = it->second;
      if (inserted) {
        dst.name = m.name;
        dst.kind = m.kind;
      } else if (dst.kind != m.kind) {
        continue;  // same name, different kind across processes: keep first
      }
      dst.counter += m.counter;
      dst.gauge += m.gauge;
      dst.span_total_ns += m.span_total_ns;
      dst.span_self_ns += m.span_self_ns;
      dst.span_cpu_ns += m.span_cpu_ns;
      dst.span_lock_wait_ns += m.span_lock_wait_ns;
      dst.span_rpc_wait_ns += m.span_rpc_wait_ns;
      dst.span_other_wait_ns += m.span_other_wait_ns;
      dst.has_hist = dst.has_hist || m.has_hist;
      dst.cumulative.Merge(m.cumulative);
      dst.window.Merge(m.window);
    }
  }
  std::vector<TelemetryMetric> out;
  out.reserve(merged.size());
  for (auto& [name, m] : merged) {
    out.push_back(std::move(m));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Process lifecycle: ticker thread, SIGUSR1 sigdump, atexit dump file

namespace {

struct ProcessTelemetry {
  std::unique_ptr<TelemetryPublisher> publisher;
  std::thread ticker;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  uint64_t interval_ms = 250;
  std::string dump_file;  // raw AERIE_OBS_DUMP_FILE value (%p = pid)
  uint64_t pid = 0;
};

// Leaked so the atexit hook and late metric dumps stay safe.
ProcessTelemetry* g_process = nullptr;
std::atomic<int> g_sigdump_pending{0};

void SigusrHandler(int) {
  // Async-signal-safe: just flag; the ticker thread does the dumping.
  g_sigdump_pending.store(1, std::memory_order_relaxed);
}

std::string ExpandDumpPath(const std::string& raw, uint64_t pid) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '%' && i + 1 < raw.size() && raw[i + 1] == 'p') {
      out += std::to_string(pid);
      ++i;
    } else {
      out += raw[i];
    }
  }
  return out;
}

bool WriteStringFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = written == body.size() && std::fclose(f) == 0;
  if (!ok && written != body.size()) {
    std::fclose(f);
  }
  return ok;
}

void WriteDumpFileIfConfigured() {
  if (g_process == nullptr || g_process->dump_file.empty()) {
    return;
  }
  WriteStringFile(ExpandDumpPath(g_process->dump_file, g_process->pid),
                  DumpJson() + "\n");
}

// The on-demand dump: registry to stderr (and to the dump file when
// configured) plus the flight-recorder post-mortem trail — the same path a
// failed AERIE_CHECK takes (trace.cc).
void DoSigdump() {
  std::fprintf(stderr, "== aerie SIGUSR1 dump (pid %llu) ==\n",
               static_cast<unsigned long long>(
                   g_process != nullptr ? g_process->pid : 0));
  const std::string text = DumpText();
  std::fwrite(text.data(), 1, text.size(), stderr);
  DumpPostMortem();
  WriteDumpFileIfConfigured();
}

void ProcessTelemetryTick() {
  if (g_process != nullptr && g_process->publisher != nullptr) {
    g_process->publisher->PublishNow();
  }
  if (g_sigdump_pending.exchange(0, std::memory_order_relaxed) != 0) {
    DoSigdump();
  }
}

void TickerMain() {
  ProcessTelemetry& pt = *g_process;
  std::unique_lock<std::mutex> lock(pt.mu);
  while (!pt.stop) {
    pt.cv.wait_for(lock, std::chrono::milliseconds(pt.interval_ms));
    if (pt.stop) {
      break;
    }
    lock.unlock();
    ProcessTelemetryTick();
    lock.lock();
  }
}

void ShutdownProcessTelemetry() {
  ProcessTelemetry* pt = g_process;
  if (pt == nullptr) {
    return;
  }
  if (pt->ticker.joinable()) {
    {
      std::lock_guard<std::mutex> lock(pt->mu);
      pt->stop = true;
    }
    pt->cv.notify_all();
    pt->ticker.join();
  }
  // A forked child inherits the atexit registration but must not unlink the
  // parent's segment (the path embeds the creator's pid).
  if (pt->publisher != nullptr &&
      static_cast<uint64_t>(::getpid()) == pt->pid) {
    pt->publisher.reset();
  }
}

uint64_t EnvU64(const char* name, uint64_t fallback, uint64_t lo,
                uint64_t hi) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') {
    return fallback;
  }
  const uint64_t v = std::strtoull(env, nullptr, 10);
  return std::clamp(v, lo, hi);
}

bool EnvDisabled(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && (std::strcmp(env, "0") == 0 ||
                            std::strcmp(env, "off") == 0);
}

}  // namespace

namespace detail {

void StartProcessTelemetryOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto* pt = new ProcessTelemetry();  // leaked: outlives atexit hooks
    pt->pid = static_cast<uint64_t>(::getpid());
    pt->interval_ms =
        EnvU64("AERIE_OBS_SHM_INTERVAL_MS", 250, 10, 60000);
    const char* dump = std::getenv("AERIE_OBS_DUMP_FILE");
    if (dump != nullptr && dump[0] != '\0') {
      pt->dump_file = dump;
    }
    g_process = pt;

    const bool obs_on = CurrentMode() != Mode::kOff;
    const bool shm_on = obs_on && !EnvDisabled("AERIE_OBS_SHM");
    const char* sigdump_env = std::getenv("AERIE_OBS_SIGDUMP");
    const bool sigdump_on =
        sigdump_env != nullptr && std::strcmp(sigdump_env, "1") == 0;

    if (!pt->dump_file.empty()) {
      // Clean-shutdown registry dump for every process, not just benches;
      // multi-process runs disambiguate with %p in the path.
      std::atexit(&WriteDumpFileIfConfigured);
    }
    if (sigdump_on) {
      struct sigaction sa{};
      sa.sa_handler = &SigusrHandler;
      ::sigemptyset(&sa.sa_mask);
      sa.sa_flags = SA_RESTART;
      ::sigaction(SIGUSR1, &sa, nullptr);
    }
    if (shm_on) {
      // Reclaim segments from dead processes before adding our own.
      int gc = 0;
      ReadTelemetryDir(TelemetryDir(), /*gc_dead=*/true, &gc);
      (void)gc;
      pt->publisher = TelemetryPublisher::Create(TelemetryPublisher::Options{});
    }
    if (pt->publisher != nullptr || sigdump_on) {
      std::atexit(&ShutdownProcessTelemetry);
      pt->ticker = std::thread(&TickerMain);
    }
    // The sampling profiler rides the same attach point: any process with
    // AERIE_PROF set starts sampling here and writes its folded/JSON
    // artifacts from its own atexit hook (src/obs/profiler.cc).
    prof::MaybeStartFromEnv();
  });
}

}  // namespace detail

TelemetryPublisher* ProcessTelemetryPublisher() {
  return g_process != nullptr ? g_process->publisher.get() : nullptr;
}

void ProcessTelemetryTickForTesting() { ProcessTelemetryTick(); }

}  // namespace obs
}  // namespace aerie
