// Live telemetry plane: shared-memory metrics export + cross-process reader.
//
// Every Aerie process (TFS, lock service, clients, benches) publishes its
// obs registry — counters, gauges, histogram buckets, span self-times, and
// their rolling-window views — into one per-process shared-memory segment
// (`<dir>/aerie.obs.<pid>`, dir defaults to /dev/shm). Readers (aerie_top,
// the CI smoke test) discover segments by prefix scan, merge same-named
// metrics across processes, and compute interval rates and window tails
// while the system runs. DESIGN.md §9.3 documents the layout and protocol.
//
// Concurrency: the segment is seqlock-versioned. The publisher bumps the
// sequence word to odd, rewrites the payload, and bumps it to even; it
// never blocks and never sees readers. A reader copies the payload out and
// retries until it observes the same even sequence on both sides of the
// copy. All shared words are accessed through std::atomic<uint64_t> with
// relaxed ordering inside release/acquire fences, so concurrent
// publish/snapshot is also TSan-clean in-process (tests/telemetry_test.cc).
//
// Lifecycle: obs::detail::StartProcessTelemetryOnce() (called from the
// first obs-mode read, i.e. effectively process start) creates the
// process-wide publisher unless AERIE_OBS=off or AERIE_OBS_SHM=0, plus the
// opt-in SIGUSR1 sigdump (AERIE_OBS_SIGDUMP=1) and the clean-shutdown
// registry dump (AERIE_OBS_DUMP_FILE). Segments of processes that died
// without cleanup are garbage-collected by any later publisher or reader.
#ifndef AERIE_SRC_OBS_TELEMETRY_H_
#define AERIE_SRC_OBS_TELEMETRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/obs/obs.h"

namespace aerie {
namespace obs {

// --- Segment format (format_version 2) -------------------------------------
// The segment is an array of 64-bit words. Word 0..31 are the header,
// followed by `entry_capacity` fixed-size entries and `hist_capacity`
// bucket blobs (one blob = cumulative + window raw bucket arrays). Strings
// (metric names, process name) are NUL-padded byte ranges inside words.
// v2 widens span entries with the profiler plane's cpu/lock-wait/rpc-wait/
// other-wait sums (readers reject mismatched versions, so mixed-version
// processes simply don't merge).

inline constexpr uint64_t kTelemetryMagic = 0x53424f4549524541ull;  // AERIEOBS
inline constexpr uint64_t kTelemetryFormatVersion = 2;
inline constexpr int kTelemetryHeaderWords = 32;
inline constexpr int kTelemetryNameBytes = 96;
// name + kind + value + span_total + span_self + span cpu/lock/rpc/other +
// 2x(count,sum,min,max) + bucket_slot.
inline constexpr int kTelemetryEntryWords =
    kTelemetryNameBytes / 8 + 4 + 4 + 8 + 1;
inline constexpr int kTelemetryBucketWords = 2 * Histogram::kBuckets;
inline constexpr uint64_t kTelemetryEntryCapacity = 768;
inline constexpr uint64_t kTelemetryHistCapacity = 160;
inline constexpr uint64_t kTelemetryNoBucketSlot = ~uint64_t{0};

// Header word indexes.
enum TelemetryHeaderWord : int {
  kHdrMagic = 0,
  kHdrFormatVersion = 1,
  kHdrSeq = 2,  // seqlock; odd while a publish is in flight
  kHdrPid = 3,
  kHdrStartUnixNs = 4,
  kHdrPublishUnixNs = 5,
  kHdrPublishMonoNs = 6,
  kHdrEntryCount = 7,
  kHdrEntryCapacity = 8,
  kHdrHistCapacity = 9,
  kHdrWindowEpochNs = 10,
  kHdrWindowEpochs = 11,
  kHdrPublishCount = 12,
  kHdrDroppedEntries = 13,
  kHdrDroppedHists = 14,
  kHdrMode = 15,
  kHdrProcessName = 16,  // 64 bytes: words 16..23
  // The bucket-blob region starts right after the published entries (the
  // layout is rebuilt every publish, so only a used prefix of the segment
  // is ever written or read).
  kHdrBucketBase = 24,  // word index of bucket blob 0
  kHdrHistCount = 25,   // bucket blobs in use
};
inline constexpr int kTelemetryProcessNameBytes = 64;

inline constexpr uint64_t TelemetrySegmentWords() {
  return kTelemetryHeaderWords +
         kTelemetryEntryCapacity * kTelemetryEntryWords +
         kTelemetryHistCapacity * kTelemetryBucketWords;
}
inline constexpr uint64_t TelemetrySegmentBytes() {
  return TelemetrySegmentWords() * 8;
}

// Segment directory: $AERIE_OBS_SHM_DIR, else /dev/shm.
std::string TelemetryDir();
// "<dir>/aerie.obs.<pid>".
std::string TelemetrySegmentPath(const std::string& dir, uint64_t pid);

// --- Publisher --------------------------------------------------------------

class TelemetryPublisher {
 public:
  struct Options {
    std::string dir;           // empty: TelemetryDir()
    std::string process_name;  // empty: program name
    uint64_t pid = 0;          // 0: getpid() (tests fake dead pids)
  };

  // Creates the segment file and publishes an initial snapshot. Returns
  // nullptr if the segment cannot be created (missing dir, no shm).
  static std::unique_ptr<TelemetryPublisher> Create(const Options& options);
  ~TelemetryPublisher();  // unlinks the segment

  TelemetryPublisher(const TelemetryPublisher&) = delete;
  TelemetryPublisher& operator=(const TelemetryPublisher&) = delete;

  // Serializes the current registry state into the segment (one seqlock
  // generation). Called by the process ticker thread; tests call it from
  // storm loops.
  void PublishNow();

  const std::string& path() const { return path_; }
  uint64_t publish_count() const { return publish_count_; }

 private:
  TelemetryPublisher() = default;

  std::string path_;
  uint64_t pid_ = 0;
  std::string process_name_;
  uint64_t start_unix_ns_ = 0;
  void* map_ = nullptr;
  std::vector<uint64_t> staging_;
  uint64_t publish_count_ = 0;
};

// --- Reader -----------------------------------------------------------------

struct TelemetryMetric {
  std::string name;
  Metric::Kind kind = Metric::Kind::kCounter;
  uint64_t counter = 0;
  int64_t gauge = 0;
  uint64_t span_total_ns = 0;
  uint64_t span_self_ns = 0;
  // Profiler plane (format v2): sampled CPU + attributed off-CPU waits.
  uint64_t span_cpu_ns = 0;
  uint64_t span_lock_wait_ns = 0;
  uint64_t span_rpc_wait_ns = 0;
  uint64_t span_other_wait_ns = 0;
  bool has_hist = false;  // bucket blob present (histogram/span kinds)
  Histogram cumulative;
  Histogram window;
};

struct TelemetrySnapshot {
  uint64_t pid = 0;
  std::string process_name;
  uint64_t start_unix_ns = 0;
  uint64_t publish_unix_ns = 0;
  uint64_t publish_mono_ns = 0;
  uint64_t publish_count = 0;
  uint64_t window_epoch_ns = 0;
  uint64_t dropped_entries = 0;
  uint64_t dropped_hists = 0;
  Mode mode = Mode::kOff;
  std::vector<TelemetryMetric> metrics;  // sorted by name within a process
};

// Seqlock-consistent snapshot of one segment. Returns false for segments
// that are missing, not yet published, from a different format version, or
// that could not be read consistently within the retry budget.
bool ReadTelemetrySegment(const std::string& path, TelemetrySnapshot* out);

// Discovers `aerie.obs.<pid>` segments under `dir` and snapshots the live
// ones. With gc_dead, segments whose pid no longer exists are unlinked
// (count reported via gc_count). Results are sorted by pid.
std::vector<TelemetrySnapshot> ReadTelemetryDir(const std::string& dir,
                                                bool gc_dead,
                                                int* gc_count = nullptr);

// Merges same-named metrics across process snapshots: counters/gauges/span
// sums add, histogram buckets (cumulative and window) merge. Sorted by name.
std::vector<TelemetryMetric> MergeTelemetry(
    const std::vector<TelemetrySnapshot>& snapshots);

// --- Process lifecycle ------------------------------------------------------

// The process-wide publisher instance, if StartProcessTelemetryOnce started
// one (null when disabled). Tests use it to force a publish tick.
TelemetryPublisher* ProcessTelemetryPublisher();

// Synchronously runs one process-telemetry tick (publish + pending sigdump)
// as the ticker thread would; exposed for tests and aerie_top --self.
void ProcessTelemetryTickForTesting();

}  // namespace obs
}  // namespace aerie

#endif  // AERIE_SRC_OBS_TELEMETRY_H_
