#include "src/obs/profiler.h"

#include <csignal>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#if defined(__GLIBC__)
#include <execinfo.h>
#endif
#if defined(__linux__) || defined(__APPLE__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <sys/time.h>
#endif

namespace aerie {
namespace obs {
namespace prof {

namespace {

// One captured sample. All fields are relaxed atomics so the collector can
// read a slot the owning thread's signal handler wrote without a data race
// (publication order is carried by the ring's head index, not the slot).
struct Slot {
  std::atomic<uint64_t> span{0};  // SpanStat* at capture time (may be 0)
  std::atomic<uint32_t> nframes{0};
  std::atomic<uintptr_t> frames[kMaxFrames];
};

// Single-producer (the owning thread, possibly inside a signal handler) /
// single-consumer (the collector) ring. The handler publishes a slot by a
// release store of head; the collector acquires head, reads, then releases
// tail; the handler acquires tail for its full check. No locks anywhere on
// the producer side.
struct Ring {
  explicit Ring(uint64_t slot_count)
      : size(slot_count), mask(slot_count - 1), slots(new Slot[slot_count]) {}
  const uint64_t size;
  const uint64_t mask;
  std::unique_ptr<Slot[]> slots;
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> tail{0};
  std::atomic<uint64_t> dropped{0};  // overflow: handler found the ring full
};

// Handler-visible state lives in plain file-scope atomics / initial-exec
// TLS: the handler must not touch mutexes, the heap, or guarded statics.
std::atomic<bool> g_running{false};
std::atomic<uint64_t> g_no_ring{0};
thread_local constinit std::atomic<Ring*> t_ring{nullptr};

struct AggKey {
  SpanStat* span;
  std::vector<uintptr_t> frames;  // leaf-first, as captured
  bool operator<(const AggKey& o) const {
    if (span != o.span) {
      return span < o.span;
    }
    return frames < o.frames;
  }
};

struct GlobalState {
  std::mutex mu;  // serializes Start/Stop
  std::mutex rings_mu;
  std::vector<std::shared_ptr<Ring>> rings;  // never shrunk; threads are
                                             // long-lived in this codebase
  std::atomic<uint64_t> hz{0};
  std::atomic<uint64_t> period_ns{0};
  std::atomic<uint64_t> ring_slots{1024};
  std::atomic<bool> handler_installed{false};
  bool manual = false;

  std::thread collector;
  std::atomic<bool> collector_stop{false};

  std::mutex drain_mu;  // serializes collector passes vs DrainNow
  std::mutex agg_mu;
  std::map<AggKey, uint64_t> agg;
  std::atomic<uint64_t> samples{0};
};

GlobalState& G() {
  static GlobalState* g = new GlobalState();  // leaked: outlives all threads
  return *g;
}

uint64_t RoundUpPow2(uint64_t v) {
  uint64_t p = 64;
  while (p < v && p < (uint64_t{1} << 20)) {
    p <<= 1;
  }
  return p;
}

// SIGPROF handler. Constraints (DESIGN.md §9.4): relaxed atomics, errno
// save/restore, and backtrace() only — whose one unsafe act (dlopening
// libgcc on first use) Start() triggers ahead of time from normal context.
void SampleHandler(int /*sig*/) {
  const int saved_errno = errno;
  if (g_running.load(std::memory_order_relaxed)) {
    Ring* ring = t_ring.load(std::memory_order_relaxed);
    if (ring == nullptr) {
      g_no_ring.fetch_add(1, std::memory_order_relaxed);
    } else {
      const uint64_t head = ring->head.load(std::memory_order_relaxed);
      const uint64_t tail = ring->tail.load(std::memory_order_acquire);
      if (head - tail >= ring->size) {
        ring->dropped.fetch_add(1, std::memory_order_relaxed);
      } else {
        void* raw[kMaxFrames + 2];
        int n = 0;
#if defined(__GLIBC__)
        n = backtrace(raw, kMaxFrames + 2);
#endif
        const int skip = n >= 3 ? 2 : 0;  // this handler + signal trampoline
        Slot& slot = ring->slots[head & ring->mask];
        slot.span.store(reinterpret_cast<uint64_t>(detail::g_tls_prof_span
                            .load(std::memory_order_relaxed)),
                        std::memory_order_relaxed);
        uint32_t out = 0;
        for (int i = skip; i < n && out < kMaxFrames; ++i, ++out) {
          slot.frames[out].store(reinterpret_cast<uintptr_t>(raw[i]),
                                 std::memory_order_relaxed);
        }
        slot.nframes.store(out, std::memory_order_relaxed);
        ring->head.store(head + 1, std::memory_order_release);
      }
    }
  }
  errno = saved_errno;
}

// Drains every ring into the aggregate map and credits each sample's period
// to its span's cpu_ns. Called from the collector and from DrainNow.
void DrainPass() {
  GlobalState& g = G();
  std::lock_guard drain(g.drain_mu);
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard lk(g.rings_mu);
    rings = g.rings;
  }
  const uint64_t period = g.period_ns.load(std::memory_order_relaxed);
  std::map<AggKey, uint64_t> local;
  uint64_t drained = 0;
  for (const auto& ring : rings) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t tail = ring->tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      const Slot& slot = ring->slots[tail & ring->mask];
      AggKey key;
      key.span = reinterpret_cast<SpanStat*>(
          slot.span.load(std::memory_order_relaxed));
      const uint32_t n =
          std::min<uint32_t>(slot.nframes.load(std::memory_order_relaxed),
                             kMaxFrames);
      key.frames.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        key.frames.push_back(slot.frames[i].load(std::memory_order_relaxed));
      }
      if (key.span != nullptr) {
        key.span->AddCpuNs(period);
      }
      ++local[std::move(key)];
      ++drained;
    }
    ring->tail.store(head, std::memory_order_release);
  }
  if (drained != 0) {
    std::lock_guard lk(g.agg_mu);
    for (auto& [key, count] : local) {
      g.agg[key] += count;
    }
    g.samples.fetch_add(drained, std::memory_order_relaxed);
  }
  // Live visibility: the sample/drop totals ride the telemetry plane as
  // gauges so aerie_top can show profiler health next to obs drops.
  static Gauge& g_samples = Registry::Instance().GetGauge("prof.samples");
  static Gauge& g_dropped =
      Registry::Instance().GetGauge("prof.samples.dropped");
  uint64_t dropped = 0;
  for (const auto& ring : rings) {
    dropped += ring->dropped.load(std::memory_order_relaxed);
  }
  g_samples.Set(static_cast<int64_t>(
      g.samples.load(std::memory_order_relaxed)));
  g_dropped.Set(static_cast<int64_t>(
      dropped + g_no_ring.load(std::memory_order_relaxed)));
}

void CollectorMain() {
#if defined(__linux__)
  pthread_setname_np(pthread_self(), "aerie-prof");
#endif
  // The collector never runs spans; keep SIGPROF away from it so samples
  // land on threads doing attributable work.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGPROF);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  GlobalState& g = G();
  while (!g.collector_stop.load(std::memory_order_acquire)) {
    DrainPass();
    for (int i = 0;
         i < 10 && !g.collector_stop.load(std::memory_order_acquire); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

std::string SymbolizeFrame(uintptr_t pc) {
#if defined(__linux__) || defined(__APPLE__)
  // pc is a return address; resolve the call site, not the next symbol.
  Dl_info info;
  if (pc != 0 &&
      dladdr(reinterpret_cast<void*>(pc - 1), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string out =
        (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    // Folded format reserves ';' (frame separator) and ' ' (count
    // separator); flamegraph.pl also trips on template commas less, but
    // keep them — only the reserved two are rewritten.
    for (char& c : out) {
      if (c == ';' || c == ' ') {
        c = '_';
      }
    }
    return out;
  }
#endif
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(pc));
  return buf;
}

std::string LayerOf(const std::string& span_name) {
  const size_t dot = span_name.find('.');
  return dot == std::string::npos ? span_name : span_name.substr(0, dot);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

struct FoldedEntry {
  std::string layer;
  std::string span;
  std::vector<std::string> frames;  // root-first, symbolized
  uint64_t count = 0;
};

// Snapshot of the aggregate map, symbolized, with one deterministic order:
// sort by (layer, span, frames). Symbol names cache per pc across entries.
std::vector<FoldedEntry> SnapshotFolded() {
  GlobalState& g = G();
  std::map<AggKey, uint64_t> agg;
  {
    std::lock_guard lk(g.agg_mu);
    agg = g.agg;
  }
  std::map<uintptr_t, std::string> symcache;
  std::vector<FoldedEntry> out;
  out.reserve(agg.size());
  for (const auto& [key, count] : agg) {
    FoldedEntry e;
    e.span = key.span != nullptr ? key.span->name() : "(no_span)";
    e.layer = key.span != nullptr ? LayerOf(e.span) : "(none)";
    e.count = count;
    e.frames.reserve(key.frames.size());
    // Captured leaf-first; folded stacks want root-first.
    for (auto it = key.frames.rbegin(); it != key.frames.rend(); ++it) {
      auto [cit, inserted] = symcache.try_emplace(*it);
      if (inserted) {
        cit->second = SymbolizeFrame(*it);
      }
      e.frames.push_back(cit->second);
    }
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const FoldedEntry& a, const FoldedEntry& b) {
              if (a.layer != b.layer) return a.layer < b.layer;
              if (a.span != b.span) return a.span < b.span;
              return a.frames < b.frames;
            });
  // Distinct PC stacks can symbolize to the same frame strings (different
  // return addresses inside one function); merge those now so the folded
  // export never repeats a stack line.
  std::vector<FoldedEntry> merged;
  merged.reserve(out.size());
  for (FoldedEntry& e : out) {
    if (!merged.empty() && merged.back().layer == e.layer &&
        merged.back().span == e.span && merged.back().frames == e.frames) {
      merged.back().count += e.count;
    } else {
      merged.push_back(std::move(e));
    }
  }
  return merged;
}

}  // namespace

bool Start(const Options& options) {
  GlobalState& g = G();
  std::lock_guard lk(g.mu);
  if (g_running.load(std::memory_order_relaxed)) {
    return true;
  }
  const uint64_t hz = options.hz == 0 ? 997 : options.hz;
  g.hz.store(hz, std::memory_order_relaxed);
  g.period_ns.store(1000000000ull / hz, std::memory_order_relaxed);
  g.ring_slots.store(RoundUpPow2(options.ring_slots),
                     std::memory_order_relaxed);
  g.manual = options.manual;
#if defined(__GLIBC__)
  {
    // First backtrace() dlopens libgcc (malloc + loader locks) — do it now,
    // from normal context, so the handler never does.
    void* warm[4];
    backtrace(warm, 4);
  }
#endif
  if (!g.handler_installed.load(std::memory_order_relaxed)) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &SampleHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    if (sigaction(SIGPROF, &sa, nullptr) != 0) {
      return false;
    }
    g.handler_installed.store(true, std::memory_order_relaxed);
  }
  g_running.store(true, std::memory_order_relaxed);
  RegisterCurrentThread();
  if (!g.manual) {
    g.collector_stop.store(false, std::memory_order_relaxed);
    g.collector = std::thread(CollectorMain);
    const uint64_t usec = std::max<uint64_t>(1, 1000000ull / hz);
    itimerval tv;
    std::memset(&tv, 0, sizeof(tv));
    tv.it_interval.tv_sec = static_cast<time_t>(usec / 1000000);
    tv.it_interval.tv_usec = static_cast<suseconds_t>(usec % 1000000);
    tv.it_value = tv.it_interval;
    if (setitimer(ITIMER_PROF, &tv, nullptr) != 0) {
      g_running.store(false, std::memory_order_relaxed);
      g.collector_stop.store(true, std::memory_order_release);
      g.collector.join();
      return false;
    }
  }
  return true;
}

void Stop() {
  GlobalState& g = G();
  std::unique_lock lk(g.mu);
  if (!g_running.load(std::memory_order_relaxed)) {
    return;
  }
  if (!g.manual) {
    itimerval zero;
    std::memset(&zero, 0, sizeof(zero));
    setitimer(ITIMER_PROF, &zero, nullptr);
    g.collector_stop.store(true, std::memory_order_release);
    if (g.collector.joinable()) {
      g.collector.join();
    }
  }
  g_running.store(false, std::memory_order_relaxed);
  lk.unlock();
  DrainNow();
}

bool IsRunning() { return g_running.load(std::memory_order_relaxed); }

void MaybeStartFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("AERIE_PROF");
    if (env == nullptr || *env == '\0') {
      return;
    }
    const std::string v(env);
    if (v == "0" || v == "off" || v == "false" || v == "no") {
      return;
    }
    Options opt;
    if (v != "1" && v != "on" && v != "true" && v != "yes") {
      char* end = nullptr;
      const unsigned long long hz = std::strtoull(v.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || hz == 0) {
        return;  // unparseable value: stay off rather than guess
      }
      opt.hz = hz;
    }
    if (const char* hz_env = std::getenv("AERIE_PROF_HZ")) {
      const unsigned long long hz = std::strtoull(hz_env, nullptr, 10);
      if (hz != 0) {
        opt.hz = hz;
      }
    }
    if (const char* ring_env = std::getenv("AERIE_PROF_RING")) {
      const unsigned long long slots = std::strtoull(ring_env, nullptr, 10);
      if (slots != 0) {
        opt.ring_slots = slots;
      }
    }
    if (Start(opt)) {
      std::atexit([] {
        Stop();
        WriteProfileFilesIfConfigured();
      });
    }
  });
}

void RegisterCurrentThread() {
  if (t_ring.load(std::memory_order_relaxed) != nullptr ||
      !g_running.load(std::memory_order_relaxed)) {
    return;
  }
  GlobalState& g = G();
  auto ring = std::make_shared<Ring>(
      g.ring_slots.load(std::memory_order_relaxed));
  {
    std::lock_guard lk(g.rings_mu);
    g.rings.push_back(ring);
  }
  t_ring.store(ring.get(), std::memory_order_release);
}

void DrainNow() { DrainPass(); }

ProfileStats GetStats() {
  GlobalState& g = G();
  ProfileStats stats;
  stats.samples = g.samples.load(std::memory_order_relaxed);
  stats.no_ring = g_no_ring.load(std::memory_order_relaxed);
  stats.hz = g.hz.load(std::memory_order_relaxed);
  stats.period_ns = g.period_ns.load(std::memory_order_relaxed);
  std::lock_guard lk(g.rings_mu);
  for (const auto& ring : g.rings) {
    stats.dropped += ring->dropped.load(std::memory_order_relaxed);
  }
  return stats;
}

std::string FoldedStacks() {
  std::string out;
  char buf[32];
  for (const FoldedEntry& e : SnapshotFolded()) {
    out += e.layer;
    out += ';';
    out += e.span;
    for (const std::string& frame : e.frames) {
      out += ';';
      out += frame;
    }
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(e.count));
    out += buf;
  }
  return out;
}

std::string ProfileJson() {
  const std::vector<FoldedEntry> entries = SnapshotFolded();
  const ProfileStats stats = GetStats();
  const double us_per_sample =
      static_cast<double>(stats.period_ns) / 1000.0;

  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"schema_version\":1,\"hz\":%llu,\"period_ns\":%llu,"
                "\"samples\":%llu,\"dropped\":%llu,\"no_ring\":%llu",
                static_cast<unsigned long long>(stats.hz),
                static_cast<unsigned long long>(stats.period_ns),
                static_cast<unsigned long long>(stats.samples),
                static_cast<unsigned long long>(stats.dropped),
                static_cast<unsigned long long>(stats.no_ring));
  out += buf;

  out += ",\"stacks\":[";
  bool first = true;
  for (const FoldedEntry& e : entries) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"layer\":\"" + JsonEscape(e.layer) + "\",\"span\":\"" +
           JsonEscape(e.span) + "\",\"count\":";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(e.count));
    out += buf;
    out += ",\"frames\":[";
    for (size_t i = 0; i < e.frames.size(); ++i) {
      if (i != 0) {
        out += ',';
      }
      out += "\"" + JsonEscape(e.frames[i]) + "\"";
    }
    out += "]}";
  }
  out += "]";

  // Self-CPU leaders: samples whose *leaf* frame is this symbol.
  std::map<std::string, uint64_t> leaf;
  for (const FoldedEntry& e : entries) {
    leaf[e.frames.empty() ? "(no_frames)" : e.frames.back()] += e.count;
  }
  std::vector<std::pair<std::string, uint64_t>> top(leaf.begin(), leaf.end());
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (top.size() > 32) {
    top.resize(32);
  }
  out += ",\"top\":[";
  first = true;
  for (const auto& [frame, count] : top) {
    if (!first) {
      out += ',';
    }
    first = false;
    std::snprintf(buf, sizeof(buf), "\"self_samples\":%llu,"
                  "\"self_cpu_us\":%.1f}",
                  static_cast<unsigned long long>(count),
                  static_cast<double>(count) * us_per_sample);
    out += "{\"frame\":\"" + JsonEscape(frame) + "\",";
    out += buf;
  }
  out += "]}";
  return out;
}

std::string TopText(size_t top_n) {
  const std::vector<FoldedEntry> entries = SnapshotFolded();
  const ProfileStats stats = GetStats();
  std::map<std::string, uint64_t> leaf;
  uint64_t total = 0;
  for (const FoldedEntry& e : entries) {
    leaf[e.frames.empty() ? "(no_frames)" : e.frames.back()] += e.count;
    total += e.count;
  }
  std::vector<std::pair<std::string, uint64_t>> top(leaf.begin(), leaf.end());
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (top.size() > top_n) {
    top.resize(top_n);
  }
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%-4s %10s %10s %6s  %s\n", "#",
                "samples", "cpu(ms)", "%", "frame");
  out += buf;
  size_t rank = 1;
  for (const auto& [frame, count] : top) {
    std::snprintf(
        buf, sizeof(buf), "%-4zu %10llu %10.2f %5.1f%%  ", rank++,
        static_cast<unsigned long long>(count),
        static_cast<double>(count * stats.period_ns) / 1e6,
        total > 0 ? 100.0 * static_cast<double>(count) /
                        static_cast<double>(total)
                  : 0.0);
    out += buf;
    out += frame;
    out += '\n';
  }
  return out;
}

bool WriteProfileFilesIfConfigured() {
  const char* folded_path = std::getenv("AERIE_PROF_FOLDED");
  const char* json_path = std::getenv("AERIE_PROF_JSON");
  const bool want_folded = folded_path != nullptr && *folded_path != '\0';
  const bool want_json = json_path != nullptr && *json_path != '\0';
  if (!want_folded && !want_json) {
    return false;
  }
  DrainNow();
  bool wrote = false;
  if (want_folded) {
    if (FILE* f = std::fopen(folded_path, "w")) {
      const std::string folded = FoldedStacks();
      std::fwrite(folded.data(), 1, folded.size(), f);
      std::fclose(f);
      wrote = true;
    }
  }
  if (want_json) {
    if (FILE* f = std::fopen(json_path, "w")) {
      const std::string json = ProfileJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      wrote = true;
    }
  }
  return wrote;
}

bool InjectSampleForTesting(SpanStat* span, const uintptr_t* frames,
                            int num_frames) {
  RegisterCurrentThread();
  Ring* ring = t_ring.load(std::memory_order_relaxed);
  if (ring == nullptr) {
    return false;  // profiler not running
  }
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  const uint64_t tail = ring->tail.load(std::memory_order_acquire);
  if (head - tail >= ring->size) {
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Slot& slot = ring->slots[head & ring->mask];
  slot.span.store(reinterpret_cast<uint64_t>(span),
                  std::memory_order_relaxed);
  uint32_t out = 0;
  for (int i = 0; i < num_frames && out < kMaxFrames; ++i, ++out) {
    slot.frames[out].store(frames[i], std::memory_order_relaxed);
  }
  slot.nframes.store(out, std::memory_order_relaxed);
  ring->head.store(head + 1, std::memory_order_release);
  return true;
}

void ResetForTesting() {
  GlobalState& g = G();
  std::lock_guard drain(g.drain_mu);
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard lk(g.rings_mu);
    rings = g.rings;
  }
  for (const auto& ring : rings) {
    // Discard pending samples without aggregating them.
    ring->tail.store(ring->head.load(std::memory_order_acquire),
                     std::memory_order_release);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
  std::lock_guard lk(g.agg_mu);
  g.agg.clear();
  g.samples.store(0, std::memory_order_relaxed);
  g_no_ring.store(0, std::memory_order_relaxed);
}

}  // namespace prof
}  // namespace obs
}  // namespace aerie
