// Per-operation tracing: trace contexts, a lock-free per-thread flight
// recorder, and a Chrome trace-event / Perfetto JSON exporter.
//
// The registry (obs.h) answers "where does time go in aggregate"; this
// module answers "why was *this* open() slow". Every root AERIE_SPAN (one
// with no enclosing span on its thread — in practice the PXFS/FlatFS API
// entry points) mints a fresh trace_id; nested spans extend the thread's
// TraceContext, and the RPC transports carry the context across the
// client/server boundary (see WireTraceContext in src/rpc/wire.h) so
// LockService and TFS spans are recorded as children of the client op.
//
// The flight recorder keeps the last N events per thread in a fixed ring
// (default 4096 events, AERIE_TRACE_RING overrides; ~64 bytes/event).
// Writers are lock-free: each thread owns its ring and stamps slots through
// a per-slot seqlock, so a concurrent dump never blocks the data path and
// never trips TSan. Dumps happen on demand (DumpTraceJson), on a failed
// AERIE_CHECK (post-mortem trail to stderr), or when a root span exceeds
// AERIE_TRACE_SLOW_US (that trace's event trail to stderr).
//
// Everything here is inert unless AERIE_OBS=spans: the record paths are
// behind the same single-branch SpansOn() gate as ScopedSpan.
#ifndef AERIE_SRC_OBS_TRACE_H_
#define AERIE_SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/obs.h"

namespace aerie {
namespace obs {

// The position of the current operation in its trace tree. Flows through
// thread-local state on each thread and through RPC frames across
// processes. trace_id == 0 means "no active trace".
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;    // innermost live span; parent for new children
  uint64_t parent_id = 0;  // that span's parent (0 at the root)

  bool valid() const { return trace_id != 0; }
};

// This thread's current context (zero outside any traced span).
TraceContext CurrentTraceContext();

// Installs `ctx` as this thread's context and restores the previous one on
// destruction. RPC servers wrap handler dispatch in one of these so handler
// spans become children of the remote client span; installing an empty
// context isolates the handler from any stale thread state.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

// Fresh process-unique nonzero ids (also used by tests).
uint64_t NewTraceId();
uint64_t NewSpanId();

// Annotated point event attributed to the current span, e.g.
// TraceInstant("clerk.revoke.handled", lock_id). `name` must be a string
// literal (the recorder stores the pointer). One branch when spans are off.
void TraceInstant(const char* name, uint64_t arg = 0);

// Names this thread's track in exported timelines ("client3",
// "tfs.conn1001", ...). Unnamed threads show as "thread<N>".
void SetThreadTraceName(std::string_view name);

// One decoded flight-recorder event.
enum class TraceEventKind : uint32_t {
  kSpanBegin = 1,  // span opened and not yet closed when collected
  kSpanEnd = 2,    // completed span: ts_ns..ts_ns+dur_ns
  kInstant = 3,    // point annotation (arg carries the value)
};

struct TraceEventView {
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint64_t arg = 0;
  const char* name = nullptr;
  uint32_t tid = 0;  // dense recorder thread id (stable per thread)
  TraceEventKind kind = TraceEventKind::kInstant;
};

// Snapshot of every thread's ring, sorted by timestamp. Safe to call while
// writers are live; slots overwritten mid-read are skipped (seqlock).
std::vector<TraceEventView> CollectTraceEvents();

// Chrome trace-event JSON ({"traceEvents":[...]}) of the recorder contents.
// Loadable in ui.perfetto.dev or chrome://tracing. Completed spans export as
// "X" events, still-open spans as "B", instants as "i"; every event carries
// trace_id/span_id/parent_id args for cross-track correlation.
std::string DumpTraceJson();

// DumpTraceJson() to a file. Returns false (and leaves a partial file) on
// I/O error.
bool WriteTraceJsonFile(const std::string& path);

// Writes the trace to $AERIE_TRACE_FILE if that is set (benches call this
// at exit). Returns the path written, or "" if unset or on error.
std::string WriteTraceFileIfConfigured();

// Human-readable event trail: events of one trace (trace_id != 0), or the
// most recent `limit` events overall. The CHECK-failure and slow-op dumps
// print this.
std::string FlightRecorderText(uint64_t trace_id = 0, size_t limit = 256);

// The failed-AERIE_CHECK dump, callable on demand: recent flight-recorder
// events to stderr plus the full trace JSON to $AERIE_TRACE_FILE if set.
// The SIGUSR1 sigdump (AERIE_OBS_SIGDUMP=1, telemetry.cc) reuses it.
void DumpPostMortem();

// Drops all recorded events; rings stay registered (bench epochs pair this
// with Registry::ResetAll, see obs::ResetAll).
void ResetFlightRecorder();

// Slow-op trigger: root spans whose duration exceeds this dump their trace
// trail to stderr. 0 disables. Initialized from AERIE_TRACE_SLOW_US;
// SetSlowTraceThresholdUs overrides at runtime (tests, benches).
uint64_t SlowTraceThresholdUs();
void SetSlowTraceThresholdUs(uint64_t us);

}  // namespace obs
}  // namespace aerie

#endif  // AERIE_SRC_OBS_TRACE_H_
