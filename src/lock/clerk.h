// The clerk: libFS's client-side agent of the lock service (paper §5.1).
//
// The clerk acquires *global* locks from the lock service and then issues
// *local* lightweight mutexes to threads within the process. It implements:
//
//   * lock caching — global locks are retained after the last local release
//     and reused without an RPC until the service revokes them or the client
//     syncs (paper: "releases the global lock when it has not been used
//     recently or when the lock service calls back");
//   * hierarchical locking — a held SH/XH lock lets the clerk grant locks on
//     descendant objects entirely locally (paper §5.3.4);
//   * de-escalation — when a hierarchical lock is revoked while descendants
//     are in use, the clerk acquires explicit global locks lower in the
//     hierarchy before giving up the high-level lock;
//   * revocation draining — when a callback arrives for a lock in use, new
//     local grants are blocked and the global lock is released once the last
//     local user drains;
//   * lease renewal — a background thread renews the client's lease; a
//     client that stops renewing implicitly releases everything.
//
// Before any global lock is released or downgraded, the clerk invokes the
// registered ReleaseHook. libFS uses it to ship batched metadata updates to
// the TFS (the batch must reach the service before another client can
// observe the lock), and PXFS hooks it to flush the path-name cache.
#ifndef AERIE_SRC_LOCK_CLERK_H_
#define AERIE_SRC_LOCK_CLERK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/lock/lock_proto.h"
#include "src/lock/lock_service.h"
#include "src/obs/obs.h"

namespace aerie {

class LockClerk final : public RevocationSink {
 public:
  struct Options {
    bool auto_renew = true;
    uint64_t renew_interval_ms = 500;
    // How long a local-grant wait may block before kLockConflict.
    uint64_t local_wait_timeout_ms = 2000;
  };

  // `service` must outlive the clerk.
  explicit LockClerk(LockServiceClient* service);
  LockClerk(LockServiceClient* service, Options options);
  ~LockClerk() override;

  LockClerk(const LockClerk&) = delete;
  LockClerk& operator=(const LockClerk&) = delete;

  // Invoked (outside the clerk mutex) before a global lock is released or
  // downgraded. Must not call back into this clerk.
  using ReleaseHook = std::function<void(LockId, LockMode)>;
  void set_release_hook(ReleaseHook hook);

  // Acquires `mode` (kShared/kExclusive/kSharedHier/kExclusiveHier) on `id`.
  // `ancestors` lists the lock ids from the root of the hierarchy down to the
  // immediate parent; the clerk takes intent locks on them as needed, or
  // grants locally when a held hierarchical ancestor covers the request.
  Status Acquire(LockId id, LockMode mode,
                 std::span<const LockId> ancestors = {});

  // Releases the caller's local grant; the global lock stays cached.
  void Release(LockId id);

  // Ships pending state (via the hook) and releases the global lock.
  Status ReleaseGlobal(LockId id);

  // Releases every cached global lock (sync / unmount).
  void ReleaseAllGlobals();

  // Releases cached globals with no local users that have been idle for at
  // least `idle_ns` (the "not used recently" policy).
  void ReleaseIdleGlobals(uint64_t idle_ns);

  // --- RevocationSink (called by service threads; queues work) ---
  void OnRevoke(LockId id, LockMode wanted) override;
  void OnLeaseExpired() override;

  // --- Direct data path (lease-validity fast path, DESIGN.md §10) ---
  //
  // A direct-access *epoch* lets data ops bypass the clerk mutex entirely.
  // The epoch is bumped whenever cached authority may shrink: a revocation
  // arrives, a drain begins, or the lease is lost. A client-side cache entry
  // (extent map, FlatFS value location) records the epoch at validation
  // time; a data op then only has to pin + compare one atomic to know the
  // authority it was validated under is still intact. Any bump — even for an
  // unrelated lock — forces the op back onto the locked path, where the
  // cache entry is revalidated and the epoch refreshed (coarse, but bumps
  // only happen on revocation/lease events, which are rare by design).

  // Validates under the clerk mutex that cached authority on `id` covers
  // `mode` right now (lease live, no drain in flight anywhere on the
  // covering chain). Returns the epoch the caller may cache.
  Result<uint64_t> DirectGrant(LockId id, LockMode mode);

  // Fast path: pins the direct path and re-checks `epoch`. On success the
  // caller may touch mapped SCM until ExitDirect(); drains wait for the pin
  // count to reach zero before a global lock can leave this client, so a
  // pinned memcpy can never race a new holder. On failure (epoch moved —
  // a revoke is in flight) nothing is pinned and the caller must fall back.
  bool TryEnterDirect(uint64_t epoch) {
    direct_pins_.fetch_add(1);  // seq_cst: orders against the drain's bump
    if (direct_epoch_.load() != epoch || lease_lost_.load()) {
      direct_pins_.fetch_sub(1);
      direct_fallbacks_.Add(1);
      return false;
    }
    return true;
  }
  void ExitDirect() { direct_pins_.fetch_sub(1); }

  uint64_t direct_epoch() const { return direct_epoch_.load(); }
  uint64_t direct_grants() const { return direct_grants_.value(); }
  uint64_t direct_fallbacks() const { return direct_fallbacks_.value(); }

  // --- Introspection / test hooks ---
  // Mode of the cached global lock (kFree if none / only locally covered).
  LockMode GlobalMode(LockId id) const;

  // The lock id the *service* knows grants this client authority over `id`:
  // `id` itself if held globally, else the hierarchical ancestor covering it.
  // Metadata ops cite this as their authority (the TFS verifies it).
  LockId GlobalAuthorityOf(LockId id) const;
  bool LocallyHeld(LockId id) const;
  bool lease_lost() const { return lease_lost_.load(); }
  uint64_t global_acquires() const { return global_acquires_.value(); }
  uint64_t local_grants() const { return local_grants_.value(); }
  uint64_t revokes_handled() const { return revokes_handled_.value(); }
  // Locks released while a local user still held them (drain timeout).
  uint64_t forced_releases() const { return forced_releases_.value(); }
  // Covered descendants escalated to explicit global locks during a drain
  // (paper §5.3.4 de-escalation).
  uint64_t deescalations() const { return deescalations_.value(); }

  // Processes queued revocations inline (tests that have no worker races).
  void DrainRevocationsForTesting();

  // Simulates a hung client: lease renewals stop, so the service will
  // eventually treat this client as failed.
  void StopRenewalForTesting() { renewal_stopped_.store(true); }

 private:
  struct Entry {
    LockMode global = LockMode::kFree;
    // Non-zero: this lock is granted locally under a hierarchical ancestor.
    LockId covered_by = 0;
    LockMode covered_mode = LockMode::kFree;
    int readers = 0;
    bool writer = false;
    int waiting = 0;
    bool draining = false;  // revocation or forced release in progress
    uint64_t last_used_ns = 0;
    std::vector<LockId> local_children;
    std::condition_variable cv;
  };

  static bool WantsWrite(LockMode m) {
    return m == LockMode::kExclusive || m == LockMode::kExclusiveHier;
  }

  // mu_ held. True if the caller can be granted `mode` locally right now.
  static bool LocalGrantable(const Entry& e, LockMode mode) {
    if (e.draining) {
      return false;
    }
    if (WantsWrite(mode)) {
      return e.readers == 0 && !e.writer;
    }
    return !e.writer;
  }

  // mu_ held. The strongest authority this entry currently has (its global
  // mode, or the mode it was granted under a covering ancestor).
  LockMode AuthorityLocked(const Entry& e) const {
    return e.global != LockMode::kFree ? e.global : e.covered_mode;
  }

  // Finds the nearest held ancestor whose hierarchical mode covers `mode`.
  // mu_ held. Returns 0 if none.
  LockId FindCoveringAncestorLocked(std::span<const LockId> ancestors,
                                    LockMode mode);

  // mu_ held. Records `child` as hierarchy-dependent on `parent`.
  void RegisterChildLocked(LockId parent, LockId child);

  // Drains local users of `id` and releases/downgrades its global lock,
  // escalating in-use locally-covered children to explicit global locks
  // first. Takes and releases mu_ internally.
  Status DrainAndReleaseGlobal(LockId id, bool downgrade_to_intent);

  void WorkerLoop();
  void HandleRevoke(LockId id, LockMode wanted);

  LockServiceClient* service_;
  Options options_;
  ReleaseHook release_hook_;

  mutable std::mutex mu_;
  std::unordered_map<LockId, Entry> entries_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  // Pending revocations with their enqueue timestamp, so dequeue can record
  // queue dwell (clerk.revoke.queue_us): time a revocation sat behind the
  // worker before the drain even started.
  struct QueuedRevoke {
    LockId id = 0;
    LockMode wanted = LockMode::kFree;
    uint64_t enqueue_ns = 0;
  };
  std::deque<QueuedRevoke> revoke_queue_;
  bool stopping_ = false;
  std::thread worker_;

  std::atomic<bool> lease_lost_{false};
  std::atomic<bool> renewal_stopped_{false};
  // Direct-path state (seq_cst Dekker pair: an op pins then loads the epoch;
  // a drain bumps the epoch then loads the pin count — at least one side
  // always observes the other).
  std::atomic<uint64_t> direct_epoch_{1};
  std::atomic<uint64_t> direct_pins_{0};
  // Clerk statistics live in the obs registry for the clerk's lifetime: a
  // local grant is a lock-cache hit, a global acquire a miss.
  obs::Counter global_acquires_{"clerk.acquire.global"};
  obs::Counter local_grants_{"clerk.grant.local"};
  obs::Counter revokes_handled_{"clerk.revoke.handled"};
  obs::Counter forced_releases_{"clerk.release.forced"};
  obs::Counter deescalations_{"clerk.deescalate.count"};
  obs::Counter direct_grants_{"clerk.direct.grant"};
  obs::Counter direct_fallbacks_{"clerk.direct.fallback"};
  obs::ScopedRegistration obs_registration_;
};

}  // namespace aerie

#endif  // AERIE_SRC_LOCK_CLERK_H_
