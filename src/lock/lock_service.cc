#include "src/lock/lock_service.h"

#include <algorithm>
#include <chrono>

#include "src/common/check.h"
#include "src/common/clock.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/rpc/wire.h"

namespace aerie {

std::string_view LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kFree:
      return "free";
    case LockMode::kIntentShared:
      return "IS";
    case LockMode::kIntentExclusive:
      return "IX";
    case LockMode::kShared:
      return "S";
    case LockMode::kSharedHier:
      return "SH";
    case LockMode::kExclusive:
      return "X";
    case LockMode::kExclusiveHier:
      return "XH";
  }
  return "?";
}

void LockService::RegisterClient(uint64_t client_id, RevocationSink* sink) {
  std::lock_guard lock(mu_);
  ClientState& cs = clients_[client_id];
  cs.sink = sink;
  cs.lease_deadline_ns = NowNanos() + options_.lease_ms * 1'000'000;
}

void LockService::UnregisterClient(uint64_t client_id) {
  std::lock_guard lock(mu_);
  DropAllLocked(client_id, /*notify_sink=*/false);
  clients_.erase(client_id);
}

bool LockService::LeaseValidLocked(uint64_t client_id) const {
  auto it = clients_.find(client_id);
  return it != clients_.end() && it->second.lease_deadline_ns >= NowNanos();
}

bool LockService::LeaseValid(uint64_t client_id) const {
  std::lock_guard lock(mu_);
  return LeaseValidLocked(client_id);
}

void LockService::RenewLocked(uint64_t client_id) {
  auto it = clients_.find(client_id);
  if (it != clients_.end()) {
    it->second.lease_deadline_ns = NowNanos() + options_.lease_ms * 1'000'000;
  }
}

void LockService::ExpireLeaseForTesting(uint64_t client_id) {
  std::lock_guard lock(mu_);
  auto it = clients_.find(client_id);
  if (it != clients_.end()) {
    it->second.lease_deadline_ns = 0;
  }
}

std::vector<uint64_t> LockService::ConflictingHolders(const LockState& lock,
                                                      uint64_t client_id,
                                                      LockMode mode) const {
  std::vector<uint64_t> out;
  for (const auto& [holder, held] : lock.holders) {
    if (holder != client_id && !LockCompatible(held, mode)) {
      out.push_back(holder);
    }
  }
  return out;
}

void LockService::DropAllLocked(uint64_t client_id, bool notify_sink) {
  auto it = clients_.find(client_id);
  if (it == clients_.end()) {
    return;
  }
  for (LockId id : it->second.held) {
    auto lit = locks_.find(id);
    if (lit == locks_.end()) {
      continue;
    }
    lit->second.holders.erase(client_id);
    lit->second.cv.notify_all();
    if (lit->second.holders.empty() && lit->second.waiters == 0) {
      locks_.erase(lit);
    }
  }
  it->second.held.clear();
  it->second.lease_deadline_ns = 0;
  (void)notify_sink;  // sink notification is handled by the caller, outside mu_
}

Status LockService::Acquire(uint64_t client_id, LockId id, LockMode mode,
                            bool wait) {
  AERIE_SPAN("lockservice", "acquire");
  AERIE_COUNT("lockservice.acquire.count");
  if (mode == LockMode::kFree) {
    return Status(ErrorCode::kInvalidArgument, "cannot acquire kFree");
  }
  std::unique_lock lk(mu_);
  auto cit = clients_.find(client_id);
  if (cit == clients_.end()) {
    return Status(ErrorCode::kUnavailable, "unknown lock client");
  }
  RenewLocked(client_id);

  LockState& lock = locks_[id];
  lock.waiters++;  // pins the entry across unlock/relock
  // Live waiter-queue depth across all locks; mirrors the per-lock
  // `waiters` field the service already keeps (aerie_top LOCK section).
  static obs::Gauge& waiters_gauge =
      obs::Registry::Instance().GetGauge("lock.waiters");
  waiters_gauge.Add(1);
  const uint64_t deadline_ns =
      NowNanos() + options_.wait_timeout_ms * 1'000'000;

  // When this acquisition has to revoke, measure first-revocation-to-grant
  // latency: the cost a contending client pays for the clerk lock cache.
  uint64_t first_revoke_ns = 0;
  // Total time this acquisition spent blocked in the waiter queue (the
  // cv waits below); feeds lock.wait.latency_us and, via ScopedWait, the
  // lockservice.acquire span's lock_wait_ns.
  uint64_t waited_ns = 0;
  Status result = OkStatus();
  for (;;) {
    // Compute the target mode (upgrades keep existing strength).
    LockMode target = mode;
    auto hit = lock.holders.find(client_id);
    if (hit != lock.holders.end()) {
      if (LockModeCovers(hit->second, mode)) {
        break;  // already strong enough
      }
      target = LockModeStrengthen(hit->second, mode);
    }

    std::vector<uint64_t> conflicts =
        ConflictingHolders(lock, client_id, target);

    // Force-drop conflicting holders whose lease lapsed (paper: a client
    // that does not renew implicitly releases; its unshipped metadata
    // updates are discarded).
    std::vector<RevocationSink*> expired_sinks;
    for (auto conflict_it = conflicts.begin();
         conflict_it != conflicts.end();) {
      if (!LeaseValidLocked(*conflict_it)) {
        auto ecs = clients_.find(*conflict_it);
        if (ecs != clients_.end() && ecs->second.sink != nullptr) {
          expired_sinks.push_back(ecs->second.sink);
        }
        DropAllLocked(*conflict_it, true);
        conflict_it = conflicts.erase(conflict_it);
      } else {
        ++conflict_it;
      }
    }

    if (conflicts.empty() && expired_sinks.empty()) {
      // Grant.
      lock.holders[client_id] = target;
      auto& held = clients_[client_id].held;
      if (std::find(held.begin(), held.end(), id) == held.end()) {
        held.push_back(id);
      }
      break;
    }

    if (conflicts.empty()) {
      // Only expired holders stood in the way; notify them and retry.
      lk.unlock();
      for (RevocationSink* sink : expired_sinks) {
        sink->OnLeaseExpired();
      }
      lk.lock();
      continue;
    }

    if (!wait) {
      result = Status(ErrorCode::kLockConflict, "lock held");
      break;
    }
    if (NowNanos() >= deadline_ns) {
      result = Status(ErrorCode::kLockConflict, "lock wait timed out");
      break;
    }

    // Ask the conflicting holders' clerks to give the lock up. Upcalls run
    // outside mu_ so a clerk may synchronously Release().
    std::vector<RevocationSink*> sinks;
    for (uint64_t holder : conflicts) {
      auto hcs = clients_.find(holder);
      if (hcs != clients_.end() && hcs->second.sink != nullptr) {
        sinks.push_back(hcs->second.sink);
      }
    }
    revocations_sent_ += sinks.size();
    if (!sinks.empty()) {
      AERIE_COUNT_N("lock.revoke.issued", sinks.size());
      obs::TraceInstant("lock.revoke.issued", id);
      if (first_revoke_ns == 0) {
        first_revoke_ns = NowNanos();
      }
    }
    lk.unlock();
    for (RevocationSink* sink : sinks) {
      sink->OnRevoke(id, target);
    }
    for (RevocationSink* sink : expired_sinks) {
      sink->OnLeaseExpired();
    }
    lk.lock();
    // Holders release asynchronously; poll with a short wait (robust against
    // missed notifications during the unlocked upcall window).
    {
      obs::ScopedWait blocked(obs::WaitKind::kLock, &waited_ns);
      lock.cv.wait_for(lk, std::chrono::microseconds(200));
    }
  }

  lock.waiters--;
  waiters_gauge.Sub(1);
  if (lock.holders.empty() && lock.waiters == 0) {
    locks_.erase(id);
  }
  if (waited_ns != 0 && obs::CountersOn()) {
    static obs::LatencyHistogram& wait_latency =
        obs::Registry::Instance().GetHistogram("lock.wait.latency_us");
    wait_latency.Record(waited_ns / 1000);
  }
  if (first_revoke_ns != 0 && result.ok() && obs::CountersOn()) {
    static obs::LatencyHistogram& revoke_latency =
        obs::Registry::Instance().GetHistogram("lock.revoke.latency_us");
    revoke_latency.Record((NowNanos() - first_revoke_ns) / 1000);
  }
  return result;
}

Status LockService::Release(uint64_t client_id, LockId id) {
  AERIE_SPAN("lockservice", "release");
  AERIE_COUNT("lockservice.release.count");
  std::lock_guard lk(mu_);
  auto lit = locks_.find(id);
  if (lit == locks_.end() ||
      lit->second.holders.erase(client_id) == 0) {
    return Status(ErrorCode::kNotFound, "lock not held");
  }
  auto cit = clients_.find(client_id);
  if (cit != clients_.end()) {
    std::erase(cit->second.held, id);
    cit->second.lease_deadline_ns = NowNanos() + options_.lease_ms * 1'000'000;
  }
  lit->second.cv.notify_all();
  if (lit->second.holders.empty() && lit->second.waiters == 0) {
    locks_.erase(lit);
  }
  return OkStatus();
}

Status LockService::Downgrade(uint64_t client_id, LockId id, LockMode to) {
  AERIE_SPAN("lockservice", "downgrade");
  AERIE_COUNT("lockservice.downgrade.count");
  std::lock_guard lk(mu_);
  auto lit = locks_.find(id);
  if (lit == locks_.end()) {
    return Status(ErrorCode::kNotFound, "lock not held");
  }
  auto hit = lit->second.holders.find(client_id);
  if (hit == lit->second.holders.end()) {
    return Status(ErrorCode::kNotFound, "lock not held");
  }
  if (!LockModeCovers(hit->second, to)) {
    return Status(ErrorCode::kInvalidArgument,
                  "downgrade target stronger than held mode");
  }
  hit->second = to;
  RenewLocked(client_id);
  lit->second.cv.notify_all();
  return OkStatus();
}

Status LockService::Renew(uint64_t client_id) {
  std::lock_guard lk(mu_);
  if (clients_.find(client_id) == clients_.end()) {
    return Status(ErrorCode::kUnavailable, "unknown lock client");
  }
  RenewLocked(client_id);
  return OkStatus();
}

LockMode LockService::HeldMode(uint64_t client_id, LockId id) const {
  std::lock_guard lk(mu_);
  auto lit = locks_.find(id);
  if (lit == locks_.end()) {
    return LockMode::kFree;
  }
  auto hit = lit->second.holders.find(client_id);
  return hit == lit->second.holders.end() ? LockMode::kFree : hit->second;
}

void LockService::RegisterRpc(RpcDispatcher* dispatcher) {
  obs::SetRpcMethodName(kLockRpcAcquire, "lock.acquire");
  obs::SetRpcMethodName(kLockRpcRelease, "lock.release");
  obs::SetRpcMethodName(kLockRpcDowngrade, "lock.downgrade");
  obs::SetRpcMethodName(kLockRpcRenew, "lock.renew");
  dispatcher->Register(
      kLockRpcAcquire,
      [this](uint64_t client, std::string_view req) -> Result<std::string> {
        WireReader r(req);
        auto id = r.ReadU64();
        auto mode = r.ReadU8();
        auto wait = r.ReadU8();
        if (!id.ok() || !mode.ok() || !wait.ok()) {
          return Status(ErrorCode::kInvalidArgument, "bad acquire request");
        }
        AERIE_RETURN_IF_ERROR(Acquire(client, *id,
                                      static_cast<LockMode>(*mode),
                                      *wait != 0));
        return std::string();
      });
  dispatcher->Register(
      kLockRpcRelease,
      [this](uint64_t client, std::string_view req) -> Result<std::string> {
        WireReader r(req);
        auto id = r.ReadU64();
        if (!id.ok()) {
          return Status(ErrorCode::kInvalidArgument, "bad release request");
        }
        AERIE_RETURN_IF_ERROR(Release(client, *id));
        return std::string();
      });
  dispatcher->Register(
      kLockRpcDowngrade,
      [this](uint64_t client, std::string_view req) -> Result<std::string> {
        WireReader r(req);
        auto id = r.ReadU64();
        auto to = r.ReadU8();
        if (!id.ok() || !to.ok()) {
          return Status(ErrorCode::kInvalidArgument, "bad downgrade request");
        }
        AERIE_RETURN_IF_ERROR(
            Downgrade(client, *id, static_cast<LockMode>(*to)));
        return std::string();
      });
  dispatcher->Register(
      kLockRpcRenew,
      [this](uint64_t client, std::string_view) -> Result<std::string> {
        AERIE_RETURN_IF_ERROR(Renew(client));
        return std::string();
      });
}

Status RemoteLockService::Acquire(LockId id, LockMode mode, bool wait) {
  WireBuffer b;
  b.AppendU64(id);
  b.AppendU8(static_cast<uint8_t>(mode));
  b.AppendU8(wait ? 1 : 0);
  auto result = transport_->Call(kLockRpcAcquire, b.data());
  return result.status();
}

Status RemoteLockService::Release(LockId id) {
  WireBuffer b;
  b.AppendU64(id);
  return transport_->Call(kLockRpcRelease, b.data()).status();
}

Status RemoteLockService::Downgrade(LockId id, LockMode to) {
  WireBuffer b;
  b.AppendU64(id);
  b.AppendU8(static_cast<uint8_t>(to));
  return transport_->Call(kLockRpcDowngrade, b.data()).status();
}

Status RemoteLockService::Renew() {
  return transport_->Call(kLockRpcRenew, {}).status();
}

}  // namespace aerie
