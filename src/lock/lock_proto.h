// Lock modes and compatibility (paper §5.1, §5.3.4).
//
// Aerie's lock service provides multiple-reader/single-writer locks named by
// 64-bit ids, extended with three *scopes* per lock:
//   explicit     — covers only the object itself,
//   hierarchical — covers the object and all descendants (the clerk may then
//                  grant descendant locks locally, without calling the
//                  service),
//   intent       — the object is not locked, but a descendant may be.
//
// This maps onto the classic granular-locking matrix (Gray et al.): IS, IX,
// S, X, with SH/XH being S/X plus the "covers descendants" property that only
// the clerk interprets. Compatibility is decided by the base mode.
#ifndef AERIE_SRC_LOCK_LOCK_PROTO_H_
#define AERIE_SRC_LOCK_LOCK_PROTO_H_

#include <cstdint>
#include <string_view>

namespace aerie {

using LockId = uint64_t;

enum class LockMode : uint8_t {
  kFree = 0,
  kIntentShared,      // IS: descendant may be read-locked
  kIntentExclusive,   // IX: descendant may be write-locked
  kShared,            // S : read lock on this object only
  kSharedHier,        // SH: read lock on this object and all descendants
  kExclusive,         // X : write lock on this object only
  kExclusiveHier,     // XH: write lock on this object and all descendants
};

std::string_view LockModeName(LockMode mode);

// True when two holders' modes can coexist on one lock.
//
// Unlike classic granular locking — where S/X on a node implicitly cover the
// whole subtree — Aerie's explicit S/X cover *only the object itself* (the
// paper's "explicit" scope), while SH/XH cover the subtree. So:
//   * explicit S/X coexist with intent modes: locking a descendant does not
//     touch this object's own data;
//   * SH conflicts with IX (a write-locked descendant would be inside the
//     read-covered subtree), XH conflicts with every other holder;
//   * S vs X and X vs X conflict as usual on the object's own data.
constexpr bool LockCompatible(LockMode a, LockMode b) {
  auto index = [](LockMode m) -> int {
    switch (m) {
      case LockMode::kFree:
        return 0;
      case LockMode::kIntentShared:
        return 1;
      case LockMode::kIntentExclusive:
        return 2;
      case LockMode::kShared:
        return 3;
      case LockMode::kSharedHier:
        return 4;
      case LockMode::kExclusive:
        return 5;
      case LockMode::kExclusiveHier:
        return 6;
    }
    return 6;
  };
  // Rows/cols: free, IS, IX, S, SH, X, XH.
  constexpr bool kCompat[7][7] = {
      {true, true, true, true, true, true, true},        // free
      {true, true, true, true, true, true, false},       // IS
      {true, true, true, true, false, true, false},      // IX
      {true, true, true, true, true, false, false},      // S
      {true, true, false, true, true, false, false},     // SH
      {true, true, true, false, false, false, false},    // X
      {true, false, false, false, false, false, false},  // XH
  };
  return kCompat[index(a)][index(b)];
}

// True when mode `held` is at least as strong as `want` (an upgrade is
// unnecessary). Hierarchical modes dominate their explicit base mode.
constexpr bool LockModeCovers(LockMode held, LockMode want) {
  auto rank = [](LockMode m) -> int {
    switch (m) {
      case LockMode::kFree:
        return 0;
      case LockMode::kIntentShared:
        return 1;
      case LockMode::kIntentExclusive:
        return 2;
      case LockMode::kShared:
        return 3;
      case LockMode::kSharedHier:
        return 4;
      case LockMode::kExclusive:
        return 5;
      case LockMode::kExclusiveHier:
        return 6;
    }
    return 0;
  };
  if (held == want) {
    return true;
  }
  switch (want) {
    case LockMode::kFree:
      return true;
    case LockMode::kIntentShared:
      return rank(held) >= 1;
    case LockMode::kIntentExclusive:
      return held == LockMode::kIntentExclusive ||
             held == LockMode::kExclusive || held == LockMode::kExclusiveHier;
    case LockMode::kShared:
      return rank(held) >= 3 && held != LockMode::kIntentExclusive;
    case LockMode::kSharedHier:
      return held == LockMode::kSharedHier ||
             held == LockMode::kExclusiveHier;
    case LockMode::kExclusive:
      return held == LockMode::kExclusive || held == LockMode::kExclusiveHier;
    case LockMode::kExclusiveHier:
      return held == LockMode::kExclusiveHier;
  }
  return false;
}

// True when holding `held` lets the clerk grant `want` on a *descendant*
// locally (hierarchical cover, paper §5.3.4).
constexpr bool HierCovers(LockMode held, LockMode want) {
  if (held == LockMode::kExclusiveHier) {
    return true;
  }
  if (held == LockMode::kSharedHier) {
    return want == LockMode::kShared || want == LockMode::kSharedHier ||
           want == LockMode::kIntentShared;
  }
  return false;
}

// Least mode that covers both `a` and `b` (upgrades keep prior strength).
// The residual incomparable pairs ({S,IX}, {SH,IX}, {SH,X}) escalate to
// exclusive because no SIX mode is provided.
constexpr LockMode LockModeStrengthen(LockMode a, LockMode b) {
  if (LockModeCovers(a, b)) {
    return a;
  }
  if (LockModeCovers(b, a)) {
    return b;
  }
  const bool hier = a == LockMode::kSharedHier ||
                    a == LockMode::kExclusiveHier ||
                    b == LockMode::kSharedHier ||
                    b == LockMode::kExclusiveHier;
  return hier ? LockMode::kExclusiveHier : LockMode::kExclusive;
}

// RPC method ids for the lock service (shared with the TFS dispatcher).
enum LockRpcMethod : uint32_t {
  kLockRpcAcquire = 0x4c00,
  kLockRpcRelease = 0x4c01,
  kLockRpcDowngrade = 0x4c02,
  kLockRpcRenew = 0x4c03,
};

}  // namespace aerie

#endif  // AERIE_SRC_LOCK_LOCK_PROTO_H_
