#include "src/lock/clerk.h"

#include <algorithm>
#include <chrono>

#include "src/common/check.h"
#include "src/common/clock.h"
#include "src/obs/trace.h"

namespace aerie {

namespace {

// Time a revocation sat in the clerk's queue before the worker picked it up
// (profiler plane: queue dwell is invisible to spans because no span is
// live on the enqueueing service thread).
void RecordRevokeQueueDwell(uint64_t enqueue_ns) {
  if (enqueue_ns == 0 || !obs::CountersOn()) {
    return;
  }
  static obs::LatencyHistogram& dwell =
      obs::Registry::Instance().GetHistogram("clerk.revoke.queue_us");
  dwell.Record((NowNanos() - enqueue_ns) / 1000);
}

}  // namespace

LockClerk::LockClerk(LockServiceClient* service)
    : LockClerk(service, Options{}) {}

LockClerk::LockClerk(LockServiceClient* service, Options options)
    : service_(service), options_(options) {
  obs_registration_.AddAll(global_acquires_, local_grants_, revokes_handled_,
                           forced_releases_, deescalations_, direct_grants_,
                           direct_fallbacks_);
  worker_ = std::thread([this] { WorkerLoop(); });
}

LockClerk::~LockClerk() {
  {
    std::lock_guard lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (worker_.joinable()) {
    worker_.join();
  }
}

void LockClerk::set_release_hook(ReleaseHook hook) {
  std::lock_guard lock(mu_);
  release_hook_ = std::move(hook);
}

void LockClerk::RegisterChildLocked(LockId parent, LockId child) {
  Entry& pe = entries_[parent];
  if (std::find(pe.local_children.begin(), pe.local_children.end(), child) ==
      pe.local_children.end()) {
    pe.local_children.push_back(child);
  }
}

LockId LockClerk::FindCoveringAncestorLocked(std::span<const LockId> ancestors,
                                             LockMode mode) {
  // Prefer the nearest (deepest) covering ancestor.
  for (auto it = ancestors.rbegin(); it != ancestors.rend(); ++it) {
    auto eit = entries_.find(*it);
    if (eit == entries_.end() || eit->second.draining) {
      continue;
    }
    if (HierCovers(AuthorityLocked(eit->second), mode)) {
      return *it;
    }
  }
  return 0;
}

Status LockClerk::Acquire(LockId id, LockMode mode,
                          std::span<const LockId> ancestors) {
  if (mode != LockMode::kShared && mode != LockMode::kExclusive &&
      mode != LockMode::kSharedHier && mode != LockMode::kExclusiveHier) {
    return Status(ErrorCode::kInvalidArgument,
                  "clerk acquires S/X/SH/XH modes only");
  }
  AERIE_SPAN("clerk", "acquire");
  const uint64_t deadline_ns =
      NowNanos() + options_.local_wait_timeout_ms * 1'000'000;

  std::unique_lock lk(mu_);
  Entry& e = entries_[id];
  e.waiting++;
  Status result = OkStatus();

  for (;;) {
    if (lease_lost_.load()) {
      result = Status(ErrorCode::kLockRevoked, "client lease expired");
      break;
    }
    if (!e.draining) {
      bool have_authority = LockModeCovers(AuthorityLocked(e), mode);

      if (!have_authority && e.global == LockMode::kFree) {
        // Try a hierarchical local grant under a held ancestor.
        const LockId cover = FindCoveringAncestorLocked(ancestors, mode);
        if (cover != 0) {
          if (e.covered_by == 0) {
            auto cit = entries_.find(cover);
            AERIE_CHECK(cit != entries_.end());
            cit->second.local_children.push_back(id);
          }
          e.covered_by = cover;
          e.covered_mode = LockModeStrengthen(e.covered_mode, mode);
          have_authority = true;
        }
      }

      if (have_authority) {
        if (LocalGrantable(e, mode)) {
          if (WantsWrite(mode)) {
            e.writer = true;
          } else {
            e.readers++;
          }
          e.last_used_ns = NowNanos();
          local_grants_.Add(1);
          break;
        }
        // Local contention: fall through to wait.
      } else {
        // Need a global acquire/upgrade. Take intent locks on the ancestors
        // first (IX for writes, IS for reads), then the lock itself. RPCs
        // run with mu_ released; e is pinned by e.waiting.
        const LockMode held = e.global;
        lk.unlock();
        const LockMode intent = WantsWrite(mode) ? LockMode::kIntentExclusive
                                                 : LockMode::kIntentShared;
        Status st = OkStatus();
        for (LockId a : ancestors) {
          bool need = false;
          {
            std::lock_guard g(mu_);
            auto ait = entries_.find(a);
            need = ait == entries_.end() ||
                   !LockModeCovers(AuthorityLocked(ait->second), intent);
          }
          if (need) {
            st = service_->Acquire(a, intent, /*wait=*/true);
            if (!st.ok()) {
              break;
            }
            std::lock_guard g(mu_);
            Entry& ae = entries_[a];
            ae.global = LockModeStrengthen(ae.global == LockMode::kFree
                                               ? intent
                                               : ae.global,
                                           intent);
            global_acquires_.Add(1);
          }
        }
        if (st.ok()) {
          st = service_->Acquire(id, mode, /*wait=*/true);
        }
        lk.lock();
        if (!st.ok()) {
          result = st;
          break;
        }
        global_acquires_.Add(1);
        e.global = LockModeStrengthen(
            held == LockMode::kFree ? mode : held, mode);
        // Record the hierarchy dependency chain: a lock acquired under an
        // ancestor intent lock must be drained before that ancestor can be
        // given up (otherwise another client's hierarchical lock on the
        // ancestor would silently cover our descendant).
        LockId prev = 0;
        for (LockId a : ancestors) {
          if (prev != 0) {
            RegisterChildLocked(prev, a);
          }
          prev = a;
        }
        if (prev != 0) {
          RegisterChildLocked(prev, id);
        }
        continue;  // retry the local grant with global authority
      }
    }

    if (NowNanos() >= deadline_ns) {
      result = Status(ErrorCode::kLockConflict, "local lock wait timed out");
      break;
    }
    {
      obs::ScopedWait blocked(obs::WaitKind::kLock);
      e.cv.wait_for(lk, std::chrono::microseconds(200));
    }
  }

  e.waiting--;
  return result;
}

void LockClerk::Release(LockId id) {
  std::lock_guard lk(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return;
  }
  Entry& e = it->second;
  if (e.writer) {
    e.writer = false;
  } else if (e.readers > 0) {
    e.readers--;
  }
  e.last_used_ns = NowNanos();
  e.cv.notify_all();
}

Result<uint64_t> LockClerk::DirectGrant(LockId id, LockMode mode) {
  std::lock_guard lk(mu_);
  if (lease_lost_.load()) {
    return Status(ErrorCode::kLockRevoked, "client lease expired");
  }
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status(ErrorCode::kNotFound, "no cached authority");
  }
  const Entry& e = it->second;
  if (!LockModeCovers(AuthorityLocked(e), mode)) {
    return Status(ErrorCode::kPermissionDenied,
                  "cached authority does not cover mode");
  }
  // The whole covering chain must be quiet: a drain that began *before* this
  // call already bumped the epoch, so the epoch we would return must not
  // outlive the authority that drain is about to take away.
  const Entry* cur = &e;
  for (int depth = 0; depth < 64; ++depth) {
    if (cur->draining) {
      return Status(ErrorCode::kUnavailable, "drain in flight");
    }
    if (cur->global != LockMode::kFree || cur->covered_by == 0) {
      break;
    }
    auto pit = entries_.find(cur->covered_by);
    if (pit == entries_.end()) {
      return Status(ErrorCode::kUnavailable, "covering ancestor vanished");
    }
    cur = &pit->second;
  }
  direct_grants_.Add(1);
  return direct_epoch_.load();
}

Status LockClerk::DrainAndReleaseGlobal(LockId id, bool downgrade_to_intent) {
  AERIE_SPAN("clerk", "drain_release");
  obs::TraceInstant("clerk.release.global", id);
  std::unique_lock lk(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return OkStatus();
  }
  Entry& e = it->second;
  if (e.global == LockMode::kFree) {
    // Nothing global to give up; clear any local cover state.
    return OkStatus();
  }
  while (e.draining) {
    obs::ScopedWait blocked(obs::WaitKind::kOther);
    e.cv.wait_for(lk, std::chrono::microseconds(100));
    if (entries_.find(id) == entries_.end()) {
      return OkStatus();
    }
  }
  if (e.global == LockMode::kFree) {
    return OkStatus();  // drained by the concurrent drainer
  }
  e.draining = true;
  // Invalidate the direct data path before anything else: from here on no
  // new epoch-validated memcpy may start against authority this drain is
  // about to give up (DirectGrant also refuses while draining is set).
  direct_epoch_.fetch_add(1);

  // Wait for local users of this lock to finish (paper: "prevents additional
  // threads from acquiring the local mutex and releases the global lock when
  // the local mutex is released"). The wait is bounded: a thread that never
  // releases would otherwise wedge revocation forever, and the service's
  // lease expiry would take the lock away regardless — so after the timeout
  // we proceed as if the lease had lapsed.
  const uint64_t drain_deadline =
      NowNanos() + options_.local_wait_timeout_ms * 1'000'000;
  while ((e.readers > 0 || e.writer) && NowNanos() < drain_deadline) {
    obs::ScopedWait blocked(obs::WaitKind::kOther);
    e.cv.wait_for(lk, std::chrono::microseconds(100));
  }
  if (e.readers > 0 || e.writer) {
    forced_releases_.Add(1);
  }

  // De-escalation (paper §5.3.4): locally-covered descendants still in use
  // get explicit global locks *before* we give up the covering lock. The
  // covered relation is transitive — a directory granted XH under the root
  // covers its own children — so the walk must reach every depth: an op
  // logged under an in-use grandchild cites this lock as its authority, and
  // the server's fallback check accepts only the object's *own* lock, so
  // the grandchild itself needs an explicit global lock. Intermediates
  // above an escalated descendant are escalated too, keeping the chain of
  // lock-service state that shields the subtree from other clients'
  // hierarchical grants.
  std::vector<std::pair<LockId, LockMode>> escalate;
  std::vector<LockId> keep_children;
  // Returns true if `cid` (covered via `parent`) or anything below it was
  // escalated; idle subtrees lose their cover so later acquires go global.
  std::function<bool(LockId, LockId)> walk = [&](LockId cid,
                                                 LockId parent) -> bool {
    auto cit = entries_.find(cid);
    if (cit == entries_.end() || cit->second.covered_by != parent) {
      return false;
    }
    Entry& ce = cit->second;
    bool need = ce.readers > 0 || ce.writer || ce.waiting > 0;
    for (LockId g : ce.local_children) {
      if (walk(g, cid)) {
        need = true;
      }
    }
    if (need) {
      escalate.emplace_back(cid, ce.covered_mode);
    } else {
      ce.covered_by = 0;
      ce.covered_mode = LockMode::kFree;
    }
    return need;
  };
  for (LockId c : e.local_children) {
    auto cit = entries_.find(c);
    if (cit == entries_.end() || cit->second.covered_by != id) {
      if (cit != entries_.end() && cit->second.global != LockMode::kFree) {
        keep_children.push_back(c);  // previously escalated child
      }
      continue;
    }
    if (walk(c, id)) {
      keep_children.push_back(c);
    }
  }
  const LockMode released_mode = e.global;
  const bool wants_write_cover = WantsWrite(released_mode);
  ReleaseHook hook = release_hook_;
  lk.unlock();

  // Direct-path quiescence: the epoch bump above stops new pins; wait for
  // in-flight userspace copies to retire before the lock can leave this
  // client. Pins are held only across a memcpy, so this is microseconds.
  while (direct_pins_.load() != 0) {
    std::this_thread::yield();
  }

  if (!escalate.empty()) {
    deescalations_.Add(escalate.size());
  }
  for (const auto& [child, child_mode] : escalate) {
    // Parent lock is still held, so these cannot conflict.
    Status st = service_->Acquire(child, child_mode, /*wait=*/true);
    if (st.ok()) {
      global_acquires_.Add(1);
    }
  }
  // Ship batched metadata before the lock becomes visible to others.
  if (hook) {
    hook(id, released_mode);
  }
  const bool downgrade = downgrade_to_intent || !escalate.empty() ||
                         [&] {
                           std::lock_guard g(mu_);
                           auto it2 = entries_.find(id);
                           return it2 != entries_.end() &&
                                  !keep_children.empty();
                         }();
  Status st;
  LockMode new_mode = LockMode::kFree;
  if (downgrade && !keep_children.empty()) {
    new_mode = wants_write_cover ? LockMode::kIntentExclusive
                                 : LockMode::kIntentShared;
    st = service_->Downgrade(id, new_mode);
  } else {
    st = service_->Release(id);
  }

  lk.lock();
  auto it3 = entries_.find(id);
  if (it3 != entries_.end()) {
    Entry& e2 = it3->second;
    for (const auto& [child, child_mode] : escalate) {
      auto cit = entries_.find(child);
      if (cit != entries_.end()) {
        cit->second.global =
            LockModeStrengthen(cit->second.global == LockMode::kFree
                                   ? child_mode
                                   : cit->second.global,
                               child_mode);
        cit->second.covered_by = 0;
        cit->second.covered_mode = LockMode::kFree;
      }
    }
    e2.local_children = std::move(keep_children);
    e2.global = new_mode;
    e2.draining = false;
    e2.cv.notify_all();
  }
  return st;
}

Status LockClerk::ReleaseGlobal(LockId id) {
  return DrainAndReleaseGlobal(id, /*downgrade_to_intent=*/false);
}

void LockClerk::ReleaseAllGlobals() {
  // Escalation during a drain can create new globals, so sweep to fixpoint.
  for (int round = 0; round < 8; ++round) {
    std::vector<LockId> ids;
    {
      std::lock_guard lk(mu_);
      for (const auto& [id, e] : entries_) {
        if (e.global != LockMode::kFree) {
          ids.push_back(id);
        }
      }
    }
    if (ids.empty()) {
      return;
    }
    for (LockId id : ids) {
      (void)DrainAndReleaseGlobal(id, /*downgrade_to_intent=*/false);
    }
  }
}

void LockClerk::ReleaseIdleGlobals(uint64_t idle_ns) {
  const uint64_t now = NowNanos();
  std::vector<LockId> ids;
  {
    std::lock_guard lk(mu_);
    for (const auto& [id, e] : entries_) {
      if (e.global != LockMode::kFree && e.readers == 0 && !e.writer &&
          e.waiting == 0 && e.local_children.empty() &&
          now - e.last_used_ns >= idle_ns) {
        ids.push_back(id);
      }
    }
  }
  for (LockId id : ids) {
    (void)DrainAndReleaseGlobal(id, /*downgrade_to_intent=*/false);
  }
}

void LockClerk::OnRevoke(LockId id, LockMode wanted) {
  // A revoke in flight forces direct ops onto the locked path immediately,
  // before the worker even dequeues it (the drain will bump again; the
  // counter only ever grows, so an early extra bump is harmless).
  direct_epoch_.fetch_add(1);
  {
    std::lock_guard lock(queue_mu_);
    for (const auto& q : revoke_queue_) {
      if (q.id == id) {
        return;  // already queued
      }
    }
    revoke_queue_.push_back(QueuedRevoke{id, wanted, NowNanos()});
  }
  queue_cv_.notify_all();
}

void LockClerk::OnLeaseExpired() {
  lease_lost_.store(true);
  direct_epoch_.fetch_add(1);
  {
    std::lock_guard lk(mu_);
    // The service already dropped our locks; all cached authority is void,
    // and unshipped metadata updates are implicitly discarded by the server.
    for (auto& [id, e] : entries_) {
      e.global = LockMode::kFree;
      e.covered_by = 0;
      e.covered_mode = LockMode::kFree;
      e.local_children.clear();
      e.cv.notify_all();
    }
  }
  // The service thread delivering the expiry is about to hand our locks to
  // another client: in-flight direct copies must retire first, exactly as in
  // a drain (this call is synchronous on the in-process transport, so the
  // conflicting grant cannot return before we quiesce).
  while (direct_pins_.load() != 0) {
    std::this_thread::yield();
  }
}

void LockClerk::HandleRevoke(LockId id, LockMode wanted) {
  (void)wanted;
  revokes_handled_.Add(1);
  obs::TraceInstant("clerk.revoke.handled", id);
  // If we hold only an intent-mode residue protecting escalated children,
  // those children must be drained first (hierarchy protocol: a child's
  // global lock requires the parent intent lock).
  std::vector<LockId> child_globals;
  {
    std::lock_guard lk(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end() || it->second.global == LockMode::kFree) {
      return;
    }
    if (it->second.global == LockMode::kIntentShared ||
        it->second.global == LockMode::kIntentExclusive) {
      for (LockId c : it->second.local_children) {
        auto cit = entries_.find(c);
        if (cit != entries_.end() && cit->second.global != LockMode::kFree) {
          child_globals.push_back(c);
        }
      }
    }
  }
  for (LockId c : child_globals) {
    (void)DrainAndReleaseGlobal(c, /*downgrade_to_intent=*/false);
  }
  (void)DrainAndReleaseGlobal(id, /*downgrade_to_intent=*/false);
}

void LockClerk::DrainRevocationsForTesting() {
  for (;;) {
    QueuedRevoke item;
    {
      std::lock_guard lock(queue_mu_);
      if (revoke_queue_.empty()) {
        return;
      }
      item = revoke_queue_.front();
      revoke_queue_.pop_front();
    }
    RecordRevokeQueueDwell(item.enqueue_ns);
    HandleRevoke(item.id, item.wanted);
  }
}

void LockClerk::WorkerLoop() {
  if (obs::SpansOn()) {
    obs::SetThreadTraceName("clerk.worker");
  }
  std::unique_lock lock(queue_mu_);
  uint64_t last_renew_ns = NowNanos();
  // queue_mu_ released around the RPC. Renewal must run even while the
  // revoke queue is busy: a long run of drains (each shipping a batch to the
  // TFS) previously starved renewal past the lease, and the service then
  // dropped every lock this clerk had cached (the ablation_name_cache
  // webproxy flake). Checked before each queued item, not only on idle.
  auto renew_if_due = [&] {
    if (!options_.auto_renew || lease_lost_.load() ||
        renewal_stopped_.load()) {
      return;
    }
    const uint64_t now = NowNanos();
    if (now - last_renew_ns >= options_.renew_interval_ms * 1'000'000) {
      last_renew_ns = now;
      lock.unlock();
      (void)service_->Renew();
      lock.lock();
    }
  };
  while (!stopping_) {
    if (!revoke_queue_.empty()) {
      renew_if_due();
      const QueuedRevoke item = revoke_queue_.front();
      revoke_queue_.pop_front();
      lock.unlock();
      RecordRevokeQueueDwell(item.enqueue_ns);
      HandleRevoke(item.id, item.wanted);
      lock.lock();
      continue;
    }
    queue_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.renew_interval_ms));
    renew_if_due();
  }
}

LockId LockClerk::GlobalAuthorityOf(LockId id) const {
  std::lock_guard lk(mu_);
  LockId cur = id;
  for (int depth = 0; depth < 64; ++depth) {
    auto it = entries_.find(cur);
    if (it == entries_.end()) {
      return cur;
    }
    if (it->second.global != LockMode::kFree || it->second.covered_by == 0) {
      return cur;
    }
    cur = it->second.covered_by;
  }
  return cur;
}

LockMode LockClerk::GlobalMode(LockId id) const {
  std::lock_guard lk(mu_);
  auto it = entries_.find(id);
  return it == entries_.end() ? LockMode::kFree : it->second.global;
}

bool LockClerk::LocallyHeld(LockId id) const {
  std::lock_guard lk(mu_);
  auto it = entries_.find(id);
  return it != entries_.end() &&
         (it->second.readers > 0 || it->second.writer);
}

}  // namespace aerie
