// Centralized lock service executing in the TFS (paper §5.1).
//
// Multiple-reader/single-writer locks named by 64-bit ids, with:
//   * leases — a client that stops renewing implicitly releases everything it
//     holds, bounding denial of service by unresponsive clients;
//   * revocation — when a request conflicts with current holders, the service
//     calls each holder's clerk back (RevocationSink upcall); holders drain
//     local users, ship batched metadata, and release;
//   * waiting with timeout — callers are responsible for deadlock avoidance
//     (lock ordering); a bounded wait converts residual deadlocks into
//     kLockConflict errors.
//
// Unlike the distributed services it derives from (Frangipani, Chubby-style
// leases) it is single-machine and unreplicated, exactly as in the paper.
#ifndef AERIE_SRC_LOCK_LOCK_SERVICE_H_
#define AERIE_SRC_LOCK_LOCK_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/lock/lock_proto.h"
#include "src/rpc/transport.h"

namespace aerie {

// Upcall interface the clerk registers; called by service threads when
// another client needs a lock this client holds. Must not block for long and
// must not call back into the service synchronously (the clerk queues the
// revoke and handles it on a client thread).
class RevocationSink {
 public:
  virtual ~RevocationSink() = default;
  virtual void OnRevoke(LockId id, LockMode wanted_mode) = 0;
  // The client's lease expired and the service dropped its locks; any
  // unshipped metadata updates are implicitly discarded (paper §4.3).
  virtual void OnLeaseExpired() {}
};

class LockService {
 public:
  struct Options {
    uint64_t lease_ms = 2000;
    // How long Acquire(wait=true) blocks before reporting kLockConflict.
    uint64_t wait_timeout_ms = 2000;
  };

  LockService() : options_(Options{}) {}
  explicit LockService(Options options) : options_(options) {}

  // --- Client session management (called by the TFS daemon wiring) ---
  void RegisterClient(uint64_t client_id, RevocationSink* sink);
  // Drops every lock the client holds (clean disconnect or failure).
  void UnregisterClient(uint64_t client_id);

  // --- Lock operations ---
  // Acquires or upgrades. `wait` false = try-lock.
  Status Acquire(uint64_t client_id, LockId id, LockMode mode, bool wait);
  Status Release(uint64_t client_id, LockId id);
  // Downgrade to a weaker mode (e.g. XH -> IX during de-escalation).
  Status Downgrade(uint64_t client_id, LockId id, LockMode to);
  // Renews the client's lease.
  Status Renew(uint64_t client_id);

  // Test hook: simulates a client whose lease clock has run out.
  void ExpireLeaseForTesting(uint64_t client_id);

  // Returns the mode `client_id` holds on `id` (kFree if none).
  LockMode HeldMode(uint64_t client_id, LockId id) const;

  // True if the client's lease is current (used by the TFS validator).
  bool LeaseValid(uint64_t client_id) const;

  uint64_t revocations_sent() const { return revocations_sent_; }

  // Wires Acquire/Release/Downgrade/Renew into an RPC dispatcher.
  void RegisterRpc(RpcDispatcher* dispatcher);

 private:
  struct LockState {
    std::map<uint64_t, LockMode> holders;  // client_id -> mode
    std::condition_variable cv;
    uint64_t waiters = 0;
  };
  struct ClientState {
    RevocationSink* sink = nullptr;
    uint64_t lease_deadline_ns = 0;
    std::vector<LockId> held;  // ids this client holds (for bulk drop)
  };

  // mu_ held. Returns conflicting holders of `id` vs `mode` for `client_id`.
  std::vector<uint64_t> ConflictingHolders(const LockState& lock,
                                           uint64_t client_id,
                                           LockMode mode) const;
  // mu_ held. Drops all locks held by `client_id`; notifies waiters.
  void DropAllLocked(uint64_t client_id, bool notify_sink);
  // mu_ held. Returns true if the client's lease is current.
  bool LeaseValidLocked(uint64_t client_id) const;
  void RenewLocked(uint64_t client_id);

  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<LockId, LockState> locks_;
  std::unordered_map<uint64_t, ClientState> clients_;
  uint64_t revocations_sent_ = 0;
};

// Client-side stub interface so the clerk can run against either the
// in-process service or a remote one over a Transport.
class LockServiceClient {
 public:
  virtual ~LockServiceClient() = default;
  virtual Status Acquire(LockId id, LockMode mode, bool wait) = 0;
  virtual Status Release(LockId id) = 0;
  virtual Status Downgrade(LockId id, LockMode to) = 0;
  virtual Status Renew() = 0;
};

// Stub that marshals lock calls over a Transport (RPC methods above).
class RemoteLockService final : public LockServiceClient {
 public:
  explicit RemoteLockService(Transport* transport) : transport_(transport) {}

  Status Acquire(LockId id, LockMode mode, bool wait) override;
  Status Release(LockId id) override;
  Status Downgrade(LockId id, LockMode to) override;
  Status Renew() override;

 private:
  Transport* transport_;
};

}  // namespace aerie

#endif  // AERIE_SRC_LOCK_LOCK_SERVICE_H_
