// Cross-client sharing tests: the "life of a shared file" from paper §4.3,
// lock revocation forcing batch shipment, cache coherence between clients,
// sequential sharing through both interfaces.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/flatfs/flatfs.h"
#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"

namespace aerie {
namespace {

class SharingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AerieSystem::Options options;
    options.region_bytes = 256ull << 20;
    auto sys = AerieSystem::Create(options);
    ASSERT_TRUE(sys.ok());
    sys_ = std::move(*sys);
    auto c1 = sys_->NewClient();
    auto c2 = sys_->NewClient();
    ASSERT_TRUE(c1.ok());
    ASSERT_TRUE(c2.ok());
    client1_ = std::move(*c1);
    client2_ = std::move(*c2);
    pxfs1_ = std::make_unique<Pxfs>(client1_->fs());
    pxfs2_ = std::make_unique<Pxfs>(client2_->fs());
  }

  void TearDown() override {
    pxfs1_.reset();
    pxfs2_.reset();
    client1_.reset();
    client2_.reset();
    sys_.reset();
  }

  static void WriteVia(Pxfs* fs, const std::string& path,
                       const std::string& data) {
    auto fd = fs->Open(path, kOpenCreate | kOpenWrite | kOpenTrunc);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    ASSERT_TRUE(
        fs->Write(*fd, std::span<const char>(data.data(), data.size())).ok());
    ASSERT_TRUE(fs->Close(*fd).ok());
  }

  static std::string ReadVia(Pxfs* fs, const std::string& path) {
    auto fd = fs->Open(path, kOpenRead);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    if (!fd.ok()) {
      return "";
    }
    std::string buf(1 << 20, '\0');
    auto n = fs->Read(*fd, std::span<char>(buf.data(), buf.size()));
    EXPECT_TRUE(n.ok());
    buf.resize(n.ok() ? *n : 0);
    EXPECT_TRUE(fs->Close(*fd).ok());
    return buf;
  }

  std::unique_ptr<AerieSystem> sys_;
  std::unique_ptr<AerieSystem::Client> client1_;
  std::unique_ptr<AerieSystem::Client> client2_;
  std::unique_ptr<Pxfs> pxfs1_;
  std::unique_ptr<Pxfs> pxfs2_;
};

TEST_F(SharingTest, LifeOfASharedFile) {
  // Paper §4.3: client 1 creates a file and writes data; client 2 opens,
  // reads, and finally deletes it. Lock revocation ships client 1's
  // batched metadata automatically — no explicit sync.
  WriteVia(pxfs1_.get(), "/shared.txt", "written by client one");

  // Client 2's open forces the lock service to revoke client 1's locks,
  // which ships the outstanding batch (create + attach + size).
  EXPECT_EQ(ReadVia(pxfs2_.get(), "/shared.txt"), "written by client one");

  ASSERT_TRUE(pxfs2_->Unlink("/shared.txt").ok());
  ASSERT_TRUE(pxfs2_->SyncAll().ok());
  EXPECT_EQ(pxfs2_->Stat("/shared.txt").code(), ErrorCode::kNotFound);
  EXPECT_EQ(pxfs1_->Open("/shared.txt", kOpenRead).code(),
            ErrorCode::kNotFound);
}

TEST_F(SharingTest, SequentialPingPong) {
  // Alternating writers: each handoff goes through revocation + batch ship.
  for (int round = 0; round < 5; ++round) {
    const std::string payload = "round " + std::to_string(round);
    Pxfs* writer = (round % 2 == 0) ? pxfs1_.get() : pxfs2_.get();
    Pxfs* reader = (round % 2 == 0) ? pxfs2_.get() : pxfs1_.get();
    WriteVia(writer, "/pingpong", payload);
    EXPECT_EQ(ReadVia(reader, "/pingpong"), payload) << round;
  }
}

TEST_F(SharingTest, NameCacheFlushedOnRevocation) {
  WriteVia(pxfs1_.get(), "/cached.txt", "v1");
  // Client 1 warms its name cache.
  ASSERT_TRUE(pxfs1_->Stat("/cached.txt").ok());
  const uint64_t hits = pxfs1_->name_cache_hits();
  ASSERT_TRUE(pxfs1_->Stat("/cached.txt").ok());
  EXPECT_GT(pxfs1_->name_cache_hits(), hits);

  // Client 2 renames the file; client 1's cache must not serve stale paths.
  ASSERT_TRUE(pxfs2_->Rename("/cached.txt", "/renamed.txt").ok());
  ASSERT_TRUE(pxfs2_->SyncAll().ok());
  pxfs2_->libfs()->clerk()->ReleaseAllGlobals();
  EXPECT_EQ(pxfs1_->Stat("/cached.txt").code(), ErrorCode::kNotFound);
  EXPECT_EQ(ReadVia(pxfs1_.get(), "/renamed.txt"), "v1");
}

TEST_F(SharingTest, DirectoriesSharedAcrossClients) {
  ASSERT_TRUE(pxfs1_->Mkdir("/proj").ok());
  WriteVia(pxfs1_.get(), "/proj/one", "1");
  WriteVia(pxfs2_.get(), "/proj/two", "2");
  auto entries = pxfs1_->ReadDir("/proj");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

TEST_F(SharingTest, UnlinkWhileOtherClientHasFileOpen) {
  WriteVia(pxfs1_.get(), "/contested", "keep me readable");
  ASSERT_TRUE(pxfs1_->SyncAll().ok());

  auto fd = pxfs1_->Open("/contested", kOpenRead);
  ASSERT_TRUE(fd.ok());

  // Client 2 unlinks; client 1's revoked-lock path notifies the TFS that
  // the file is open, so storage reclaim is deferred (paper §6.1).
  ASSERT_TRUE(pxfs2_->Unlink("/contested").ok());
  ASSERT_TRUE(pxfs2_->SyncAll().ok());
  EXPECT_EQ(pxfs2_->Stat("/contested").code(), ErrorCode::kNotFound);

  char buf[64] = {};
  auto n = pxfs1_->Read(*fd, std::span<char>(buf, sizeof(buf)));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string_view(buf, *n), "keep me readable");
  EXPECT_TRUE(pxfs1_->Close(*fd).ok());
}

TEST_F(SharingTest, FlatFsSharedBetweenClients) {
  FlatFs flat1(client1_->fs());
  FlatFs flat2(client2_->fs());
  const std::string v = "cross-client value";
  ASSERT_TRUE(flat1.Put("x", std::span<const char>(v.data(), v.size())).ok());
  // Client 2's bucket-lock acquisition revokes client 1's and ships.
  auto got = flat2.Get("x");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, v);
  ASSERT_TRUE(flat2.Erase("x").ok());
  ASSERT_TRUE(flat2.Sync().ok());
  EXPECT_EQ(flat1.Get("x").code(), ErrorCode::kNotFound);
}

TEST_F(SharingTest, CrossInterfaceSharing) {
  // FlatFS put, PXFS sees the object in the flat collection via raw access;
  // both share the TFS and volume (paper §6.2).
  FlatFs flat1(client1_->fs());
  const std::string v = "interface agnostic";
  ASSERT_TRUE(
      flat1.Put("both", std::span<const char>(v.data(), v.size())).ok());
  ASSERT_TRUE(flat1.Sync().ok());
  client1_->fs()->clerk()->ReleaseAllGlobals();

  auto coll = Collection::Open(client2_->fs()->read_context(),
                               client2_->fs()->flat_root());
  ASSERT_TRUE(coll.ok());
  auto oid = coll->Lookup("both");
  ASSERT_TRUE(oid.ok());
  auto file = MFile::Open(client2_->fs()->read_context(), Oid(*oid));
  ASSERT_TRUE(file.ok());
  std::string buf(file->size(), '\0');
  EXPECT_EQ(*file->Read(0, std::span<char>(buf.data(), buf.size())),
            v.size());
  EXPECT_EQ(buf, v);
}

TEST_F(SharingTest, FailedClientLocksExpireAndWorkContinues) {
  WriteVia(pxfs1_.get(), "/abandoned", "left behind");
  // Client 1 "hangs": stop renewing its lease, never release locks.
  client1_->fs()->clerk()->StopRenewalForTesting();
  sys_->lock_service()->ExpireLeaseForTesting(client1_->id());
  client1_->fs()->AbandonForCrashTest();

  // Client 2 can take over; client 1's unshipped updates are discarded.
  WriteVia(pxfs2_.get(), "/fresh", "new owner");
  EXPECT_EQ(ReadVia(pxfs2_.get(), "/fresh"), "new owner");
  EXPECT_EQ(pxfs2_->Stat("/abandoned").code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace aerie
