// Tests for the libFS client runtime: batching thresholds, pools, sync,
// release-hook shipping, RPC accounting.
#include <gtest/gtest.h>

#include <set>

#include "src/libfs/system.h"

namespace aerie {
namespace {

class LibFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AerieSystem::Options options;
    options.region_bytes = 128ull << 20;
    auto sys = AerieSystem::Create(options);
    ASSERT_TRUE(sys.ok());
    sys_ = std::move(*sys);
  }

  std::unique_ptr<AerieSystem> sys_;
};

MetaOp CreateFileOp(LibFs* fs, const std::string& name, Oid obj) {
  MetaOp op;
  op.type = MetaOpType::kCreateFile;
  op.authority = fs->pxfs_root().lock_id();
  op.dir = fs->pxfs_root();
  op.name = name;
  op.obj = obj;
  return op;
}

TEST_F(LibFsTest, MountLearnsRoots) {
  auto client = sys_->NewClient();
  ASSERT_TRUE(client.ok());
  EXPECT_EQ((*client)->fs()->pxfs_root(), sys_->tfs()->GetRoots().pxfs_root);
  EXPECT_EQ((*client)->fs()->flat_root(), sys_->tfs()->GetRoots().flat_root);
}

TEST_F(LibFsTest, OpsBufferUntilSync) {
  LibFs::Options no_flusher;
  no_flusher.flush_interval_ms = 0;  // deterministic buffering for asserts
  auto client = sys_->NewClient(no_flusher);
  ASSERT_TRUE(client.ok());
  LibFs* fs = (*client)->fs();
  ASSERT_TRUE(fs->clerk()
                  ->Acquire(fs->pxfs_root().lock_id(),
                            LockMode::kExclusiveHier)
                  .ok());
  fs->clerk()->Release(fs->pxfs_root().lock_id());
  auto pooled = fs->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(pooled.ok());
  ASSERT_TRUE(fs->LogOp(CreateFileOp(fs, "buffered", *pooled)).ok());
  EXPECT_EQ(fs->pending_ops(), 1u);
  EXPECT_EQ(fs->batches_shipped(), 0u);

  // Not yet visible in SCM.
  auto dir = Collection::Open(fs->read_context(), fs->pxfs_root());
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(dir->Lookup("buffered").code(), ErrorCode::kNotFound);

  ASSERT_TRUE(fs->Sync().ok());
  EXPECT_EQ(fs->pending_ops(), 0u);
  EXPECT_EQ(fs->batches_shipped(), 1u);
  EXPECT_TRUE(dir->Lookup("buffered").ok());
}

TEST_F(LibFsTest, EagerShipOptionShipsEveryOp) {
  LibFs::Options options;
  options.eager_ship = true;
  auto client = sys_->NewClient(options);
  ASSERT_TRUE(client.ok());
  LibFs* fs = (*client)->fs();
  ASSERT_TRUE(fs->clerk()
                  ->Acquire(fs->pxfs_root().lock_id(),
                            LockMode::kExclusiveHier)
                  .ok());
  fs->clerk()->Release(fs->pxfs_root().lock_id());
  for (int i = 0; i < 3; ++i) {
    auto pooled = fs->TakePooled(ObjType::kMFile);
    ASSERT_TRUE(pooled.ok());
    ASSERT_TRUE(
        fs->LogOp(CreateFileOp(fs, "eager" + std::to_string(i), *pooled))
            .ok());
  }
  EXPECT_EQ(fs->batches_shipped(), 3u);
  EXPECT_EQ(fs->pending_ops(), 0u);
}

TEST_F(LibFsTest, BatchShipsWhenThresholdCrossed) {
  LibFs::Options options;
  options.batch_max_bytes = 1024;  // tiny threshold
  options.flush_interval_ms = 0;   // synchronous threshold shipping
  auto client = sys_->NewClient(options);
  ASSERT_TRUE(client.ok());
  LibFs* fs = (*client)->fs();
  ASSERT_TRUE(fs->clerk()
                  ->Acquire(fs->pxfs_root().lock_id(),
                            LockMode::kExclusiveHier)
                  .ok());
  fs->clerk()->Release(fs->pxfs_root().lock_id());
  for (int i = 0; i < 20; ++i) {
    auto pooled = fs->TakePooled(ObjType::kMFile);
    ASSERT_TRUE(pooled.ok());
    ASSERT_TRUE(
        fs->LogOp(CreateFileOp(fs, "thresh" + std::to_string(i), *pooled))
            .ok());
  }
  EXPECT_GT(fs->batches_shipped(), 0u);
}

TEST_F(LibFsTest, ReleaseHookShipsBatchBeforeLockLeaves) {
  LibFs::Options no_flusher;
  no_flusher.flush_interval_ms = 0;
  auto c1 = sys_->NewClient(no_flusher);
  auto c2 = sys_->NewClient(no_flusher);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  LibFs* fs1 = (*c1)->fs();
  LibFs* fs2 = (*c2)->fs();

  ASSERT_TRUE(fs1->clerk()
                  ->Acquire(fs1->pxfs_root().lock_id(),
                            LockMode::kExclusiveHier)
                  .ok());
  fs1->clerk()->Release(fs1->pxfs_root().lock_id());
  auto pooled = fs1->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(pooled.ok());
  ASSERT_TRUE(fs1->LogOp(CreateFileOp(fs1, "handoff", *pooled)).ok());
  fs1->clerk()->Release(fs1->pxfs_root().lock_id());
  EXPECT_EQ(fs1->pending_ops(), 1u);  // still cached, nothing shipped

  // Client 2 takes the lock: revocation forces client 1 to ship first.
  ASSERT_TRUE(fs2->clerk()
                  ->Acquire(fs2->pxfs_root().lock_id(), LockMode::kShared)
                  .ok());
  EXPECT_EQ(fs1->pending_ops(), 0u);
  auto dir = Collection::Open(fs2->read_context(), fs2->pxfs_root());
  ASSERT_TRUE(dir.ok());
  EXPECT_TRUE(dir->Lookup("handoff").ok());
  fs2->clerk()->Release(fs2->pxfs_root().lock_id());
}

TEST_F(LibFsTest, PoolRefillKeepsRpcRare) {
  LibFs::Options options;
  options.pool_refill = 100;
  auto client = sys_->NewClient(options);
  ASSERT_TRUE(client.ok());
  LibFs* fs = (*client)->fs();
  const uint64_t calls_before = (*client)->transport()->calls_made();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(fs->TakePooled(ObjType::kExtent).ok());
  }
  // 100 takes should have cost exactly one RPC.
  EXPECT_EQ((*client)->transport()->calls_made(), calls_before + 1);
}

TEST_F(LibFsTest, PooledObjectsAreDistinct) {
  auto client = sys_->NewClient();
  ASSERT_TRUE(client.ok());
  LibFs* fs = (*client)->fs();
  std::set<uint64_t> seen;
  for (int i = 0; i < 50; ++i) {
    auto oid = fs->TakePooled(ObjType::kMFile);
    ASSERT_TRUE(oid.ok());
    EXPECT_TRUE(seen.insert(oid->raw()).second);
    EXPECT_EQ(oid->type(), ObjType::kMFile);
  }
}

TEST_F(LibFsTest, SingleExtentPoolRespectsCapacity) {
  auto client = sys_->NewClient();
  ASSERT_TRUE(client.ok());
  LibFs* fs = (*client)->fs();
  auto oid = fs->TakePooled(ObjType::kMFile, 32 << 10);
  ASSERT_TRUE(oid.ok());
  auto file = MFile::Open(fs->read_context(), *oid);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file->single_extent());
  EXPECT_GE(file->capacity(), 32u << 10);
}

TEST_F(LibFsTest, UdsTransportWorksEndToEnd) {
  AerieSystem::Options options;
  options.region_bytes = 128ull << 20;
  options.uds_path = ::testing::TempDir() + "/aerie_libfs_uds.sock";
  auto sys = AerieSystem::Create(options);
  ASSERT_TRUE(sys.ok());
  auto client = (*sys)->NewUdsClient(LibFs::Options{});
  ASSERT_TRUE(client.ok());
  LibFs* fs = (*client)->fs();
  ASSERT_TRUE(fs->clerk()
                  ->Acquire(fs->pxfs_root().lock_id(),
                            LockMode::kExclusiveHier)
                  .ok());
  fs->clerk()->Release(fs->pxfs_root().lock_id());
  auto pooled = fs->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(pooled.ok());
  ASSERT_TRUE(fs->LogOp(CreateFileOp(fs, "over-uds", *pooled)).ok());
  ASSERT_TRUE(fs->Sync().ok());
  auto dir = Collection::Open(fs->read_context(), fs->pxfs_root());
  ASSERT_TRUE(dir.ok());
  EXPECT_TRUE(dir->Lookup("over-uds").ok());
}

}  // namespace
}  // namespace aerie
