// PXFS functional tests: open/read/write/close, directories, resolution,
// fds, name cache behaviour.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"

namespace aerie {
namespace {

class PxfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AerieSystem::Options options;
    options.region_bytes = 256ull << 20;
    auto sys = AerieSystem::Create(options);
    ASSERT_TRUE(sys.ok());
    sys_ = std::move(*sys);
    auto client = sys_->NewClient();
    ASSERT_TRUE(client.ok());
    client_ = std::move(*client);
    pxfs_ = std::make_unique<Pxfs>(client_->fs());
  }

  void TearDown() override {
    pxfs_.reset();
    client_.reset();
    sys_.reset();
  }

  std::string ReadAll(const std::string& path) {
    auto fd = pxfs_->Open(path, kOpenRead);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    std::string buf(1 << 20, '\0');
    auto n = pxfs_->Read(*fd, std::span<char>(buf.data(), buf.size()));
    EXPECT_TRUE(n.ok());
    buf.resize(*n);
    EXPECT_TRUE(pxfs_->Close(*fd).ok());
    return buf;
  }

  void WriteFile(const std::string& path, const std::string& data) {
    auto fd = pxfs_->Open(path, kOpenCreate | kOpenWrite | kOpenTrunc);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    auto n =
        pxfs_->Write(*fd, std::span<const char>(data.data(), data.size()));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    EXPECT_EQ(*n, data.size());
    ASSERT_TRUE(pxfs_->Close(*fd).ok());
  }

  std::unique_ptr<AerieSystem> sys_;
  std::unique_ptr<AerieSystem::Client> client_;
  std::unique_ptr<Pxfs> pxfs_;
};

TEST_F(PxfsTest, CreateWriteReadRoundTrip) {
  WriteFile("/hello.txt", "hello aerie");
  EXPECT_EQ(ReadAll("/hello.txt"), "hello aerie");
}

TEST_F(PxfsTest, OpenMissingFileFails) {
  EXPECT_EQ(pxfs_->Open("/missing", kOpenRead).code(), ErrorCode::kNotFound);
}

TEST_F(PxfsTest, OpenFlagsValidated) {
  EXPECT_EQ(pxfs_->Open("/x", 0).code(), ErrorCode::kInvalidArgument);
  // Relative paths resolve from the cwd (the root by default).
  EXPECT_EQ(pxfs_->Open("missing/path", kOpenRead).code(),
            ErrorCode::kNotFound);
}

TEST_F(PxfsTest, RelativePathsResolveFromCwd) {
  ASSERT_TRUE(pxfs_->Mkdir("/rel").ok());
  ASSERT_TRUE(pxfs_->Mkdir("/rel/sub").ok());
  WriteFile("/rel/sub/file.txt", "relative data");
  ASSERT_TRUE(pxfs_->SetCwd("/rel").ok());
  EXPECT_EQ(pxfs_->cwd(), "/rel");
  EXPECT_EQ(ReadAll("sub/file.txt"), "relative data");
  // Relative resolution bypasses the name cache (paper §6.1).
  const uint64_t hits = pxfs_->name_cache_hits();
  const uint64_t misses = pxfs_->name_cache_misses();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pxfs_->Stat("sub/file.txt").ok());
  }
  EXPECT_EQ(pxfs_->name_cache_hits(), hits);
  EXPECT_EQ(pxfs_->name_cache_misses(), misses);
  // Creating through a relative path lands under the cwd.
  ASSERT_TRUE(pxfs_->Create("created_here").ok());
  EXPECT_TRUE(pxfs_->Stat("/rel/created_here").ok());
  // cwd must be a directory.
  EXPECT_EQ(pxfs_->SetCwd("/rel/sub/file.txt").code(),
            ErrorCode::kNotDirectory);
  EXPECT_EQ(pxfs_->SetCwd("/nope").code(), ErrorCode::kNotFound);
}

TEST_F(PxfsTest, WriteRequiresWriteFlag) {
  WriteFile("/ro.txt", "data");
  auto fd = pxfs_->Open("/ro.txt", kOpenRead);
  ASSERT_TRUE(fd.ok());
  const char more[] = "more";
  EXPECT_EQ(pxfs_->Write(*fd, std::span<const char>(more, 4)).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_TRUE(pxfs_->Close(*fd).ok());
}

TEST_F(PxfsTest, MkdirAndNestedCreate) {
  ASSERT_TRUE(pxfs_->Mkdir("/a").ok());
  ASSERT_TRUE(pxfs_->Mkdir("/a/b").ok());
  ASSERT_TRUE(pxfs_->Mkdir("/a/b/c").ok());
  WriteFile("/a/b/c/deep.txt", "nested");
  EXPECT_EQ(ReadAll("/a/b/c/deep.txt"), "nested");
  EXPECT_EQ(pxfs_->Mkdir("/a").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(pxfs_->Mkdir("/no/such/parent").code(), ErrorCode::kNotFound);
}

TEST_F(PxfsTest, StatReportsSizeAndType) {
  ASSERT_TRUE(pxfs_->Mkdir("/dir").ok());
  WriteFile("/dir/file", std::string(5000, 'z'));
  auto fst = pxfs_->Stat("/dir/file");
  ASSERT_TRUE(fst.ok());
  EXPECT_FALSE(fst->is_dir);
  EXPECT_EQ(fst->size, 5000u);
  EXPECT_EQ(fst->link_count, 1u);
  auto dst = pxfs_->Stat("/dir");
  ASSERT_TRUE(dst.ok());
  EXPECT_TRUE(dst->is_dir);
  auto rst = pxfs_->Stat("/");
  ASSERT_TRUE(rst.ok());
  EXPECT_TRUE(rst->is_dir);
}

TEST_F(PxfsTest, ReadDirMergesPendingAndApplied) {
  ASSERT_TRUE(pxfs_->Mkdir("/list").ok());
  WriteFile("/list/applied", "x");
  ASSERT_TRUE(pxfs_->SyncAll().ok());
  ASSERT_TRUE(pxfs_->Create("/list/pending").ok());  // batched, unshipped
  auto entries = pxfs_->ReadDir("/list");
  ASSERT_TRUE(entries.ok());
  std::set<std::string> names;
  for (const auto& e : *entries) {
    names.insert(e.name);
  }
  EXPECT_EQ(names, (std::set<std::string>{"applied", "pending"}));
}

TEST_F(PxfsTest, UnlinkRemovesFile) {
  WriteFile("/gone.txt", "bye");
  ASSERT_TRUE(pxfs_->Unlink("/gone.txt").ok());
  EXPECT_EQ(pxfs_->Stat("/gone.txt").code(), ErrorCode::kNotFound);
  EXPECT_EQ(pxfs_->Open("/gone.txt", kOpenRead).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(pxfs_->Unlink("/gone.txt").code(), ErrorCode::kNotFound);
  // Name is reusable immediately.
  WriteFile("/gone.txt", "back");
  EXPECT_EQ(ReadAll("/gone.txt"), "back");
}

TEST_F(PxfsTest, UnlinkedOpenFileStaysReadable) {
  WriteFile("/zombie.txt", "still here");
  auto fd = pxfs_->Open("/zombie.txt", kOpenRead);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(pxfs_->Unlink("/zombie.txt").ok());
  ASSERT_TRUE(pxfs_->SyncAll().ok());
  EXPECT_EQ(pxfs_->Stat("/zombie.txt").code(), ErrorCode::kNotFound);
  // POSIX: data remains accessible through the open descriptor (§6.1).
  char buf[32] = {};
  auto n = pxfs_->Read(*fd, std::span<char>(buf, sizeof(buf)));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string_view(buf, *n), "still here");
  EXPECT_TRUE(pxfs_->Close(*fd).ok());
}

TEST_F(PxfsTest, RmdirOnlyWhenEmpty) {
  ASSERT_TRUE(pxfs_->Mkdir("/d").ok());
  WriteFile("/d/f", "x");
  ASSERT_TRUE(pxfs_->SyncAll().ok());
  EXPECT_EQ(pxfs_->Rmdir("/d").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(pxfs_->Unlink("/d/f").ok());
  ASSERT_TRUE(pxfs_->SyncAll().ok());
  EXPECT_TRUE(pxfs_->Rmdir("/d").ok());
  EXPECT_EQ(pxfs_->Stat("/d").code(), ErrorCode::kNotFound);
}

TEST_F(PxfsTest, RenameFileSameDirectory) {
  WriteFile("/old", "content");
  ASSERT_TRUE(pxfs_->Rename("/old", "/new").ok());
  EXPECT_EQ(pxfs_->Stat("/old").code(), ErrorCode::kNotFound);
  EXPECT_EQ(ReadAll("/new"), "content");
}

TEST_F(PxfsTest, RenameAcrossDirectoriesWithOverwrite) {
  ASSERT_TRUE(pxfs_->Mkdir("/src").ok());
  ASSERT_TRUE(pxfs_->Mkdir("/dst").ok());
  WriteFile("/src/f", "moving");
  WriteFile("/dst/f", "victim");
  ASSERT_TRUE(pxfs_->Rename("/src/f", "/dst/f").ok());
  ASSERT_TRUE(pxfs_->SyncAll().ok());
  EXPECT_EQ(pxfs_->Stat("/src/f").code(), ErrorCode::kNotFound);
  EXPECT_EQ(ReadAll("/dst/f"), "moving");
}

TEST_F(PxfsTest, RenameDirectoryMovesSubtree) {
  ASSERT_TRUE(pxfs_->Mkdir("/top").ok());
  ASSERT_TRUE(pxfs_->Mkdir("/top/sub").ok());
  WriteFile("/top/sub/leaf", "subtree data");
  ASSERT_TRUE(pxfs_->Rename("/top", "/moved").ok());
  EXPECT_EQ(ReadAll("/moved/sub/leaf"), "subtree data");
  EXPECT_EQ(pxfs_->Stat("/top").code(), ErrorCode::kNotFound);
}

TEST_F(PxfsTest, SeekAndPartialReads) {
  WriteFile("/seek.txt", "0123456789");
  auto fd = pxfs_->Open("/seek.txt", kOpenRead);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(pxfs_->Seek(*fd, 4).ok());
  char buf[4] = {};
  EXPECT_EQ(*pxfs_->Read(*fd, std::span<char>(buf, 3)), 3u);
  EXPECT_EQ(std::string_view(buf, 3), "456");
  // Sequential position advanced.
  EXPECT_EQ(*pxfs_->Read(*fd, std::span<char>(buf, 3)), 3u);
  EXPECT_EQ(std::string_view(buf, 3), "789");
  // EOF.
  EXPECT_EQ(*pxfs_->Read(*fd, std::span<char>(buf, 3)), 0u);
  EXPECT_TRUE(pxfs_->Close(*fd).ok());
}

TEST_F(PxfsTest, PreadPwriteDoNotMoveOffset) {
  WriteFile("/pp.txt", "aaaaaaaaaa");
  auto fd = pxfs_->Open("/pp.txt", kOpenRead | kOpenWrite);
  ASSERT_TRUE(fd.ok());
  const char patch[] = "XY";
  EXPECT_EQ(*pxfs_->Pwrite(*fd, 3, std::span<const char>(patch, 2)), 2u);
  char buf[16] = {};
  EXPECT_EQ(*pxfs_->Pread(*fd, 0, std::span<char>(buf, 10)), 10u);
  EXPECT_EQ(std::string_view(buf, 10), "aaaXYaaaaa");
  // Sequential offset still at zero.
  EXPECT_EQ(*pxfs_->Read(*fd, std::span<char>(buf, 3)), 3u);
  EXPECT_EQ(std::string_view(buf, 3), "aaa");
  EXPECT_TRUE(pxfs_->Close(*fd).ok());
}

TEST_F(PxfsTest, AppendModeWritesAtEnd) {
  WriteFile("/log.txt", "line1\n");
  auto fd = pxfs_->Open("/log.txt", kOpenWrite | kOpenAppend);
  ASSERT_TRUE(fd.ok());
  const char line[] = "line2\n";
  EXPECT_TRUE(pxfs_->Write(*fd, std::span<const char>(line, 6)).ok());
  EXPECT_TRUE(pxfs_->Close(*fd).ok());
  EXPECT_EQ(ReadAll("/log.txt"), "line1\nline2\n");
}

TEST_F(PxfsTest, TruncateShrinksAndZeroExtends) {
  WriteFile("/t.txt", std::string(10000, 'q'));
  ASSERT_TRUE(pxfs_->Truncate("/t.txt", 100).ok());
  EXPECT_EQ(pxfs_->Stat("/t.txt")->size, 100u);
  EXPECT_EQ(ReadAll("/t.txt"), std::string(100, 'q'));
  ASSERT_TRUE(pxfs_->Truncate("/t.txt", 200).ok());
  const std::string grown = ReadAll("/t.txt");
  ASSERT_EQ(grown.size(), 200u);
  EXPECT_EQ(grown.substr(0, 100), std::string(100, 'q'));
}

TEST_F(PxfsTest, LargeMultiPageFile) {
  std::string big(300 << 10, '\0');  // 300KB: spans many extents
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 26));
  }
  WriteFile("/big.bin", big);
  EXPECT_EQ(ReadAll("/big.bin"), big);
  EXPECT_EQ(pxfs_->Stat("/big.bin")->size, big.size());
}

TEST_F(PxfsTest, SparseFileReadsZeros) {
  auto fd = pxfs_->Open("/sparse", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.ok());
  const char tail[] = "end";
  EXPECT_TRUE(pxfs_->Pwrite(*fd, 100000, std::span<const char>(tail, 3)).ok());
  EXPECT_TRUE(pxfs_->Close(*fd).ok());
  const std::string content = ReadAll("/sparse");
  ASSERT_EQ(content.size(), 100003u);
  EXPECT_EQ(content[0], '\0');
  EXPECT_EQ(content.substr(100000), "end");
}

TEST_F(PxfsTest, NameCacheHitsOnRepeatedResolution) {
  ASSERT_TRUE(pxfs_->Mkdir("/c1").ok());
  ASSERT_TRUE(pxfs_->Mkdir("/c1/c2").ok());
  WriteFile("/c1/c2/f", "x");
  (void)pxfs_->Stat("/c1/c2/f");
  const uint64_t hits_before = pxfs_->name_cache_hits();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pxfs_->Stat("/c1/c2/f").ok());
  }
  EXPECT_GE(pxfs_->name_cache_hits(), hits_before + 10);
}

TEST_F(PxfsTest, NameCacheDisabledNeverHits) {
  Pxfs::Options options;
  options.name_cache = false;
  Pxfs nnc(client_->fs(), options);
  ASSERT_TRUE(nnc.Mkdir("/nnc").ok());
  ASSERT_TRUE(nnc.Create("/nnc/f").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(nnc.Stat("/nnc/f").ok());
  }
  EXPECT_EQ(nnc.name_cache_hits(), 0u);
}

TEST_F(PxfsTest, BadFdRejected) {
  char buf[4];
  EXPECT_EQ(pxfs_->Read(99, std::span<char>(buf, 4)).code(),
            ErrorCode::kBadHandle);
  EXPECT_EQ(pxfs_->Close(99).code(), ErrorCode::kBadHandle);
  EXPECT_EQ(pxfs_->Close(-1).code(), ErrorCode::kBadHandle);
  auto fd = pxfs_->Open("/fdtest", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(pxfs_->Close(*fd).ok());
  EXPECT_EQ(pxfs_->Close(*fd).code(), ErrorCode::kBadHandle);  // double close
}

TEST_F(PxfsTest, FdsAreRecycled) {
  auto fd1 = pxfs_->Open("/r1", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd1.ok());
  ASSERT_TRUE(pxfs_->Close(*fd1).ok());
  auto fd2 = pxfs_->Open("/r2", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd2.ok());
  EXPECT_EQ(*fd2, *fd1);
  ASSERT_TRUE(pxfs_->Close(*fd2).ok());
}

TEST_F(PxfsTest, OpenDirectoryAsFileFails) {
  ASSERT_TRUE(pxfs_->Mkdir("/adir").ok());
  EXPECT_EQ(pxfs_->Open("/adir", kOpenRead).code(), ErrorCode::kIsDirectory);
  EXPECT_EQ(pxfs_->Unlink("/adir").code(), ErrorCode::kIsDirectory);
  WriteFile("/afile", "x");
  EXPECT_EQ(pxfs_->Rmdir("/afile").code(), ErrorCode::kNotDirectory);
  EXPECT_EQ(pxfs_->ReadDir("/afile").code(), ErrorCode::kNotDirectory);
}

TEST_F(PxfsTest, PathThroughFileFails) {
  WriteFile("/file", "x");
  EXPECT_EQ(pxfs_->Stat("/file/below").code(), ErrorCode::kNotDirectory);
}

TEST_F(PxfsTest, ChmodUpdatesAcl) {
  WriteFile("/perm", "x");
  ASSERT_TRUE(pxfs_->Chmod("/perm", MakeAcl(42, kAclRightRead)).ok());
  auto st = pxfs_->Stat("/perm");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->acl, MakeAcl(42, kAclRightRead));
}

}  // namespace
}  // namespace aerie
