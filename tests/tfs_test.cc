// Tests for the trusted service: op validation (locks, pools, invariants),
// apply semantics, open-file table, pool lifecycle, service data path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/libfs/system.h"

namespace aerie {
namespace {

class TfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AerieSystem::Options options;
    options.region_bytes = 128ull << 20;
    auto sys = AerieSystem::Create(options);
    ASSERT_TRUE(sys.ok());
    sys_ = std::move(*sys);
    auto client = sys_->NewClient();
    ASSERT_TRUE(client.ok());
    client_ = std::move(*client);
  }

  void TearDown() override {
    client_.reset();
    sys_.reset();
  }

  // Builds a one-op batch blob.
  static std::string OneOp(const MetaOp& op) { return EncodeBatch({op}); }

  LibFs* fs() { return client_->fs(); }
  TrustedFsService* tfs() { return sys_->tfs(); }
  uint64_t cid() { return client_->id(); }

  // Acquires XH on the PXFS root so any op under it validates.
  void LockRootXH() {
    ASSERT_TRUE(fs()->clerk()
                    ->Acquire(fs()->pxfs_root().lock_id(),
                              LockMode::kExclusiveHier)
                    .ok());
    // Local release: the global XH stays cached at the clerk, so the
    // service still sees this client as the holder (authority persists).
    fs()->clerk()->Release(fs()->pxfs_root().lock_id());
  }

  std::unique_ptr<AerieSystem> sys_;
  std::unique_ptr<AerieSystem::Client> client_;
};

TEST_F(TfsTest, BootstrapCreatedRoots) {
  auto roots = tfs()->GetRoots();
  EXPECT_EQ(roots.pxfs_root.type(), ObjType::kCollection);
  EXPECT_EQ(roots.flat_root.type(), ObjType::kCollection);
  EXPECT_EQ(roots.pxfs_root, fs()->pxfs_root());
}

TEST_F(TfsTest, CreateFileAppliesUnderLock) {
  LockRootXH();
  auto pooled = fs()->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(pooled.ok());
  MetaOp op;
  op.type = MetaOpType::kCreateFile;
  op.authority = fs()->pxfs_root().lock_id();
  op.dir = fs()->pxfs_root();
  op.name = "hello.txt";
  op.obj = *pooled;
  ASSERT_TRUE(tfs()->ApplyBatch(cid(), OneOp(op)).ok());

  auto dir = Collection::Open(fs()->read_context(), fs()->pxfs_root());
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(*dir->Lookup("hello.txt"), pooled->raw());
  auto file = MFile::Open(fs()->read_context(), *pooled);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->link_count(), 1u);
}

TEST_F(TfsTest, OpRejectedWithoutWriteLock) {
  auto pooled = fs()->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(pooled.ok());
  MetaOp op;
  op.type = MetaOpType::kCreateFile;
  op.authority = fs()->pxfs_root().lock_id();  // claimed but not held
  op.dir = fs()->pxfs_root();
  op.name = "nope";
  op.obj = *pooled;
  EXPECT_EQ(tfs()->ApplyBatch(cid(), OneOp(op)).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(tfs()->ops_rejected(), 1u);
}

TEST_F(TfsTest, OpRejectedWithReadLockOnly) {
  ASSERT_TRUE(fs()->clerk()
                  ->Acquire(fs()->pxfs_root().lock_id(), LockMode::kShared)
                  .ok());
  fs()->clerk()->Release(fs()->pxfs_root().lock_id());
  auto pooled = fs()->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(pooled.ok());
  MetaOp op;
  op.type = MetaOpType::kCreateFile;
  op.authority = fs()->pxfs_root().lock_id();
  op.dir = fs()->pxfs_root();
  op.name = "nope";
  op.obj = *pooled;
  EXPECT_EQ(tfs()->ApplyBatch(cid(), OneOp(op)).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(TfsTest, ObjectNotInPoolRejected) {
  LockRootXH();
  MetaOp op;
  op.type = MetaOpType::kCreateFile;
  op.authority = fs()->pxfs_root().lock_id();
  op.dir = fs()->pxfs_root();
  op.name = "forged";
  // A forged OID pointing into the region but never pooled.
  op.obj = Oid::Make(ObjType::kMFile, sys_->partition_offset() + (4 << 20));
  EXPECT_EQ(tfs()->ApplyBatch(cid(), OneOp(op)).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(TfsTest, AnotherClientsPoolObjectRejected) {
  auto other = sys_->NewClient();
  ASSERT_TRUE(other.ok());
  auto stolen = (*other)->fs()->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(stolen.ok());
  LockRootXH();
  MetaOp op;
  op.type = MetaOpType::kCreateFile;
  op.authority = fs()->pxfs_root().lock_id();
  op.dir = fs()->pxfs_root();
  op.name = "stolen";
  op.obj = *stolen;
  EXPECT_EQ(tfs()->ApplyBatch(cid(), OneOp(op)).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(TfsTest, DuplicateNameRejected) {
  LockRootXH();
  for (int i = 0; i < 2; ++i) {
    auto pooled = fs()->TakePooled(ObjType::kMFile);
    ASSERT_TRUE(pooled.ok());
    MetaOp op;
    op.type = MetaOpType::kCreateFile;
    op.authority = fs()->pxfs_root().lock_id();
    op.dir = fs()->pxfs_root();
    op.name = "dup";
    op.obj = *pooled;
    Status st = tfs()->ApplyBatch(cid(), OneOp(op));
    if (i == 0) {
      EXPECT_TRUE(st.ok());
    } else {
      EXPECT_EQ(st.code(), ErrorCode::kAlreadyExists);
    }
  }
}

TEST_F(TfsTest, MalformedBatchRejected) {
  EXPECT_EQ(tfs()->ApplyBatch(cid(), "garbage-bytes").code(),
            ErrorCode::kInvalidArgument);
  // A structurally valid batch with trailing junk is also rejected.
  MetaOp op;
  op.type = MetaOpType::kSetSize;
  std::string blob = EncodeBatch({op});
  blob += "junk";
  EXPECT_EQ(tfs()->ApplyBatch(cid(), blob).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(TfsTest, UnlinkFreesStorageWhenNotOpen) {
  LockRootXH();
  auto pooled = fs()->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(pooled.ok());
  MetaOp create;
  create.type = MetaOpType::kCreateFile;
  create.authority = fs()->pxfs_root().lock_id();
  create.dir = fs()->pxfs_root();
  create.name = "victim";
  create.obj = *pooled;
  ASSERT_TRUE(tfs()->ApplyBatch(cid(), OneOp(create)).ok());

  MetaOp unlink;
  unlink.type = MetaOpType::kUnlink;
  unlink.authority = fs()->pxfs_root().lock_id();
  unlink.dir = fs()->pxfs_root();
  unlink.name = "victim";
  ASSERT_TRUE(tfs()->ApplyBatch(cid(), OneOp(unlink)).ok());
  // Storage reclaimed: the mFile header is gone.
  EXPECT_EQ(MFile::Open(fs()->read_context(), *pooled).code(),
            ErrorCode::kCorrupted);
}

TEST_F(TfsTest, UnlinkWhileOpenDefersReclaim) {
  LockRootXH();
  auto pooled = fs()->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(pooled.ok());
  MetaOp create;
  create.type = MetaOpType::kCreateFile;
  create.authority = fs()->pxfs_root().lock_id();
  create.dir = fs()->pxfs_root();
  create.name = "held";
  create.obj = *pooled;
  ASSERT_TRUE(tfs()->ApplyBatch(cid(), OneOp(create)).ok());

  ASSERT_TRUE(tfs()->NotifyOpen(cid(), *pooled).ok());
  MetaOp unlink;
  unlink.type = MetaOpType::kUnlink;
  unlink.authority = fs()->pxfs_root().lock_id();
  unlink.dir = fs()->pxfs_root();
  unlink.name = "held";
  ASSERT_TRUE(tfs()->ApplyBatch(cid(), OneOp(unlink)).ok());

  // Still accessible while open (paper §6.1).
  auto file = MFile::Open(fs()->read_context(), *pooled);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->link_count(), 0u);
  // Last close reclaims it.
  ASSERT_TRUE(tfs()->NotifyClosed(cid(), *pooled).ok());
  EXPECT_EQ(MFile::Open(fs()->read_context(), *pooled).code(),
            ErrorCode::kCorrupted);
}

TEST_F(TfsTest, RenameCycleRejected) {
  LockRootXH();
  // Build /a/b, then try to move /a under /a/b.
  auto a = fs()->TakePooled(ObjType::kCollection);
  auto b = fs()->TakePooled(ObjType::kCollection);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  MetaOp mk_a;
  mk_a.type = MetaOpType::kCreateDir;
  mk_a.authority = fs()->pxfs_root().lock_id();
  mk_a.dir = fs()->pxfs_root();
  mk_a.name = "a";
  mk_a.obj = *a;
  MetaOp mk_b = mk_a;
  mk_b.dir = *a;
  mk_b.name = "b";
  mk_b.obj = *b;
  ASSERT_TRUE(tfs()->ApplyBatch(cid(), EncodeBatch({mk_a, mk_b})).ok());

  MetaOp rename;
  rename.type = MetaOpType::kRename;
  rename.authority = fs()->pxfs_root().lock_id();
  rename.dir = fs()->pxfs_root();
  rename.name = "a";
  rename.dir2 = *b;
  rename.name2 = "a_inside_b";
  EXPECT_EQ(tfs()->ApplyBatch(cid(), OneOp(rename)).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(TfsTest, RmdirOfNonEmptyDirectoryRejected) {
  LockRootXH();
  auto dir = fs()->TakePooled(ObjType::kCollection);
  auto file = fs()->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(file.ok());
  MetaOp mkdir;
  mkdir.type = MetaOpType::kCreateDir;
  mkdir.authority = fs()->pxfs_root().lock_id();
  mkdir.dir = fs()->pxfs_root();
  mkdir.name = "full";
  mkdir.obj = *dir;
  MetaOp touch;
  touch.type = MetaOpType::kCreateFile;
  touch.authority = fs()->pxfs_root().lock_id();
  touch.dir = *dir;
  touch.name = "occupant";
  touch.obj = *file;
  ASSERT_TRUE(tfs()->ApplyBatch(cid(), EncodeBatch({mkdir, touch})).ok());

  MetaOp rmdir;
  rmdir.type = MetaOpType::kUnlink;
  rmdir.authority = fs()->pxfs_root().lock_id();
  rmdir.dir = fs()->pxfs_root();
  rmdir.name = "full";
  EXPECT_EQ(tfs()->ApplyBatch(cid(), OneOp(rmdir)).code(),
            ErrorCode::kNotEmpty);
}

TEST_F(TfsTest, IntraBatchCreateThenRemoveValidatesSequentially) {
  LockRootXH();
  auto dir = fs()->TakePooled(ObjType::kCollection);
  auto file = fs()->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(file.ok());
  MetaOp mkdir;
  mkdir.type = MetaOpType::kCreateDir;
  mkdir.authority = fs()->pxfs_root().lock_id();
  mkdir.dir = fs()->pxfs_root();
  mkdir.name = "tmpdir";
  mkdir.obj = *dir;
  MetaOp touch;
  touch.type = MetaOpType::kCreateFile;
  touch.authority = fs()->pxfs_root().lock_id();
  touch.dir = *dir;
  touch.name = "f";
  touch.obj = *file;
  MetaOp rmdir;  // must be rejected: dir is non-empty *within the batch*
  rmdir.type = MetaOpType::kUnlink;
  rmdir.authority = fs()->pxfs_root().lock_id();
  rmdir.dir = fs()->pxfs_root();
  rmdir.name = "tmpdir";
  EXPECT_EQ(
      tfs()->ApplyBatch(cid(), EncodeBatch({mkdir, touch, rmdir})).code(),
      ErrorCode::kNotEmpty);
}

TEST_F(TfsTest, AttachExtentValidatesPoolAndAllocation) {
  LockRootXH();
  auto file = fs()->TakePooled(ObjType::kMFile);
  auto extent = fs()->TakePooled(ObjType::kExtent);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(extent.ok());
  MetaOp create;
  create.type = MetaOpType::kCreateFile;
  create.authority = fs()->pxfs_root().lock_id();
  create.dir = fs()->pxfs_root();
  create.name = "data";
  create.obj = *file;
  MetaOp attach;
  attach.type = MetaOpType::kAttachExtent;
  attach.authority = fs()->pxfs_root().lock_id();
  attach.obj = *file;
  attach.a = 0;
  attach.b = extent->offset();
  ASSERT_TRUE(tfs()->ApplyBatch(cid(), EncodeBatch({create, attach})).ok());

  // A second attach of a never-pooled extent is rejected.
  MetaOp forged = attach;
  forged.a = 1;
  forged.b = sys_->partition_offset() + (8 << 20);
  EXPECT_EQ(tfs()->ApplyBatch(cid(), OneOp(forged)).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(TfsTest, ServiceReadWritePath) {
  LockRootXH();
  auto file = fs()->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(file.ok());
  MetaOp create;
  create.type = MetaOpType::kCreateFile;
  create.authority = fs()->pxfs_root().lock_id();
  create.dir = fs()->pxfs_root();
  create.name = "writeonly";
  create.obj = *file;
  ASSERT_TRUE(tfs()->ApplyBatch(cid(), OneOp(create)).ok());

  const std::string data = "through the service";
  ASSERT_TRUE(fs()->ServiceWrite(*file, 100,
                                 std::span<const char>(data.data(),
                                                       data.size()))
                  .ok());
  std::string buf(data.size(), '\0');
  auto n = fs()->ServiceRead(*file, 100,
                             std::span<char>(buf.data(), buf.size()));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(buf, data);
}

TEST_F(TfsTest, LapsedLeaseRenewedByBatchRpc) {
  // A lapsed-but-unreclaimed lease: the locks are still registered to this
  // client (no conflicting acquire has force-dropped them, so no other
  // client ever observed them free), meaning the batch RPC itself is proof
  // of liveness — it renews the lease like every other client RPC and the
  // ops apply. This is the fix for the webproxy lost-creates flake: a
  // renewal stall must not silently discard acknowledged metadata.
  LockRootXH();
  auto pooled = fs()->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(pooled.ok());
  sys_->lock_service()->ExpireLeaseForTesting(cid());
  MetaOp op;
  op.type = MetaOpType::kCreateFile;
  op.authority = fs()->pxfs_root().lock_id();
  op.dir = fs()->pxfs_root();
  op.name = "just-in-time";
  op.obj = *pooled;
  ASSERT_TRUE(tfs()->ApplyBatch(cid(), OneOp(op)).ok());
  EXPECT_TRUE(sys_->lock_service()->LeaseValid(cid()));
  auto dir = Collection::Open(fs()->read_context(), fs()->pxfs_root());
  ASSERT_TRUE(dir.ok());
  EXPECT_TRUE(dir->Lookup("just-in-time").ok());
}

TEST_F(TfsTest, DroppedLocksRejectBatch) {
  // Once the lapsed client's locks have actually been force-dropped by a
  // conflicting acquire, a late batch must be rejected: another client may
  // already have observed state that contradicts it. The renew-on-RPC above
  // must NOT resurrect dropped authority.
  LockRootXH();
  auto pooled = fs()->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(pooled.ok());
  sys_->lock_service()->ExpireLeaseForTesting(cid());

  auto client2 = sys_->NewClient();
  ASSERT_TRUE(client2.ok());
  ASSERT_TRUE((*client2)
                  ->fs()
                  ->clerk()
                  ->Acquire(fs()->pxfs_root().lock_id(),
                            LockMode::kExclusiveHier)
                  .ok());
  (*client2)->fs()->clerk()->Release(fs()->pxfs_root().lock_id());

  MetaOp op;
  op.type = MetaOpType::kCreateFile;
  op.authority = fs()->pxfs_root().lock_id();
  op.dir = fs()->pxfs_root();
  op.name = "too-late";
  op.obj = *pooled;
  EXPECT_FALSE(tfs()->ApplyBatch(cid(), OneOp(op)).ok());
}

}  // namespace
}  // namespace aerie
