// POSIX-semantics tests for PXFS: hard links and membership counts,
// unlink-while-open variants, overwrite-rename victims, path edge cases,
// multi-threaded clients.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"

namespace aerie {
namespace {

class PxfsPosixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AerieSystem::Options options;
    options.region_bytes = 256ull << 20;
    auto sys = AerieSystem::Create(options);
    ASSERT_TRUE(sys.ok());
    sys_ = std::move(*sys);
    auto client = sys_->NewClient();
    ASSERT_TRUE(client.ok());
    client_ = std::move(*client);
    pxfs_ = std::make_unique<Pxfs>(client_->fs());
  }

  void TearDown() override {
    pxfs_.reset();
    client_.reset();
    sys_.reset();
  }

  void WriteFile(const std::string& path, const std::string& data) {
    auto fd = pxfs_->Open(path, kOpenCreate | kOpenWrite | kOpenTrunc);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    ASSERT_TRUE(
        pxfs_->Write(*fd, std::span<const char>(data.data(), data.size()))
            .ok());
    ASSERT_TRUE(pxfs_->Close(*fd).ok());
  }

  static std::string ReadAllVia(Pxfs* fs, const std::string& path) {
    auto fd = fs->Open(path, kOpenRead);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    if (!fd.ok()) {
      return "";
    }
    std::string buf(1 << 20, '\0');
    auto n = fs->Read(*fd, std::span<char>(buf.data(), buf.size()));
    EXPECT_TRUE(n.ok());
    buf.resize(n.ok() ? *n : 0);
    EXPECT_TRUE(fs->Close(*fd).ok());
    return buf;
  }

  std::string ReadAll(const std::string& path) {
    auto fd = pxfs_->Open(path, kOpenRead);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    std::string buf(1 << 20, '\0');
    auto n = pxfs_->Read(*fd, std::span<char>(buf.data(), buf.size()));
    EXPECT_TRUE(n.ok());
    buf.resize(*n);
    EXPECT_TRUE(pxfs_->Close(*fd).ok());
    return buf;
  }

  std::unique_ptr<AerieSystem> sys_;
  std::unique_ptr<AerieSystem::Client> client_;
  std::unique_ptr<Pxfs> pxfs_;
};

TEST_F(PxfsPosixTest, HardLinkSharesDataAndCountsMembers) {
  WriteFile("/orig", "shared bytes");
  ASSERT_TRUE(pxfs_->Link("/orig", "/alias").ok());
  ASSERT_TRUE(pxfs_->SyncAll().ok());
  EXPECT_EQ(ReadAll("/alias"), "shared bytes");
  auto st = pxfs_->Stat("/orig");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->link_count, 2u);
  EXPECT_EQ(pxfs_->Stat("/alias")->oid, st->oid);

  // Writes through one name are visible through the other.
  WriteFile("/alias", "updated");
  EXPECT_EQ(ReadAll("/orig"), "updated");
}

TEST_F(PxfsPosixTest, UnlinkOneLinkKeepsData) {
  WriteFile("/a_name", "two names");
  ASSERT_TRUE(pxfs_->Link("/a_name", "/b_name").ok());
  ASSERT_TRUE(pxfs_->SyncAll().ok());
  ASSERT_TRUE(pxfs_->Unlink("/a_name").ok());
  ASSERT_TRUE(pxfs_->SyncAll().ok());
  EXPECT_EQ(ReadAll("/b_name"), "two names");
  EXPECT_EQ(pxfs_->Stat("/b_name")->link_count, 1u);
  // Removing the last link frees it.
  ASSERT_TRUE(pxfs_->Unlink("/b_name").ok());
  ASSERT_TRUE(pxfs_->SyncAll().ok());
  EXPECT_EQ(pxfs_->Stat("/b_name").code(), ErrorCode::kNotFound);
}

TEST_F(PxfsPosixTest, LinkRejectsDirectoriesAndDuplicates) {
  ASSERT_TRUE(pxfs_->Mkdir("/d").ok());
  EXPECT_EQ(pxfs_->Link("/d", "/d2").code(), ErrorCode::kIsDirectory);
  WriteFile("/f", "x");
  WriteFile("/g", "y");
  EXPECT_EQ(pxfs_->Link("/f", "/g").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(pxfs_->Link("/missing", "/h").code(), ErrorCode::kNotFound);
}

TEST_F(PxfsPosixTest, WriteThroughOpenFdAfterUnlink) {
  WriteFile("/wz", "before");
  auto fd = pxfs_->Open("/wz", kOpenRead | kOpenWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(pxfs_->Unlink("/wz").ok());
  ASSERT_TRUE(pxfs_->SyncAll().ok());
  // Writing through the surviving descriptor still works.
  const char data[] = "after!";
  EXPECT_TRUE(pxfs_->Pwrite(*fd, 0, std::span<const char>(data, 6)).ok());
  char buf[8] = {};
  EXPECT_EQ(*pxfs_->Pread(*fd, 0, std::span<char>(buf, 6)), 6u);
  EXPECT_EQ(std::string_view(buf, 6), "after!");
  EXPECT_TRUE(pxfs_->Close(*fd).ok());
}

TEST_F(PxfsPosixTest, PathNormalization) {
  ASSERT_TRUE(pxfs_->Mkdir("/n").ok());
  WriteFile("/n/f", "norm");
  EXPECT_EQ(ReadAll("//n///f"), "norm");
  EXPECT_EQ(ReadAll("/n/./f"), "norm");
  EXPECT_TRUE(pxfs_->Stat("/n/").ok());
  EXPECT_EQ(pxfs_->Stat("/n/../f").code(), ErrorCode::kInvalidArgument);
}

TEST_F(PxfsPosixTest, RootIsStatableButNotRemovable) {
  auto st = pxfs_->Stat("/");
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->is_dir);
  EXPECT_EQ(pxfs_->Unlink("/").code(), ErrorCode::kIsDirectory);
}

TEST_F(PxfsPosixTest, TwoFdsOnSameFileShareData) {
  WriteFile("/shared", "0000000000");
  auto fd1 = pxfs_->Open("/shared", kOpenRead | kOpenWrite);
  auto fd2 = pxfs_->Open("/shared", kOpenRead);
  ASSERT_TRUE(fd1.ok());
  ASSERT_TRUE(fd2.ok());
  const char patch[] = "AB";
  ASSERT_TRUE(pxfs_->Pwrite(*fd1, 2, std::span<const char>(patch, 2)).ok());
  char buf[16] = {};
  EXPECT_EQ(*pxfs_->Pread(*fd2, 0, std::span<char>(buf, 10)), 10u);
  EXPECT_EQ(std::string_view(buf, 10), "00AB000000");
  EXPECT_TRUE(pxfs_->Close(*fd1).ok());
  EXPECT_TRUE(pxfs_->Close(*fd2).ok());
}

TEST_F(PxfsPosixTest, ConcurrentCreatesInOneDirectory) {
  ASSERT_TRUE(pxfs_->Mkdir("/conc").ok());
  constexpr int kThreads = 4;
  constexpr int kFilesEach = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kFilesEach; ++i) {
        const std::string path =
            "/conc/t" + std::to_string(t) + "_" + std::to_string(i);
        auto fd = pxfs_->Open(path, kOpenCreate | kOpenWrite);
        if (!fd.ok()) {
          failures++;
          continue;
        }
        const std::string data = path;
        if (!pxfs_->Write(*fd, std::span<const char>(data.data(),
                                                     data.size()))
                 .ok()) {
          failures++;
        }
        if (!pxfs_->Close(*fd).ok()) {
          failures++;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(pxfs_->SyncAll().ok());
  auto entries = pxfs_->ReadDir("/conc");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), static_cast<size_t>(kThreads * kFilesEach));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kFilesEach; ++i) {
      const std::string path =
          "/conc/t" + std::to_string(t) + "_" + std::to_string(i);
      EXPECT_EQ(ReadAll(path), path);
    }
  }
}

TEST_F(PxfsPosixTest, ConcurrentReadersOnOneFile) {
  const std::string data(64 << 10, 'r');
  WriteFile("/hot", data);
  ASSERT_TRUE(pxfs_->SyncAll().ok());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        if (ReadAll("/hot") != data) {
          failures++;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(PxfsPosixTest, DeepHierarchyResolution) {
  std::string path;
  for (int depth = 0; depth < 16; ++depth) {
    path += "/d" + std::to_string(depth);
    ASSERT_TRUE(pxfs_->Mkdir(path).ok()) << path;
  }
  WriteFile(path + "/leaf", "deep");
  EXPECT_EQ(ReadAll(path + "/leaf"), "deep");
  auto entries = pxfs_->ReadDir("/d0");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "d1");
}

TEST_F(PxfsPosixTest, RenameOntoItselfIsNoOp) {
  WriteFile("/self", "x");
  ASSERT_TRUE(pxfs_->SyncAll().ok());
  // POSIX: renaming a file onto itself succeeds and changes nothing.
  EXPECT_TRUE(pxfs_->Rename("/self", "/self").ok());
  EXPECT_TRUE(pxfs_->SyncAll().ok());
  EXPECT_EQ(ReadAll("/self"), "x");
}

TEST_F(PxfsPosixTest, TruncateDownThenUpZeroFills) {
  WriteFile("/zf", std::string(6000, 'q'));
  ASSERT_TRUE(pxfs_->Truncate("/zf", 1000).ok());
  ASSERT_TRUE(pxfs_->Truncate("/zf", 6000).ok());
  const std::string content = ReadAll("/zf");
  ASSERT_EQ(content.size(), 6000u);
  EXPECT_EQ(content.substr(0, 1000), std::string(1000, 'q'));
  // POSIX: the re-extended region reads as zeros, not stale bytes.
  EXPECT_EQ(content.substr(1000), std::string(5000, '\0'));
  // The same holds after the batch ships and applies server-side.
  ASSERT_TRUE(pxfs_->SyncAll().ok());
  EXPECT_EQ(ReadAll("/zf").substr(1000), std::string(5000, '\0'));
}

TEST_F(PxfsPosixTest, WriteOnlyFilesGoThroughTheService) {
  // Paper §5.3.3: memory protection cannot express write-only, so reads are
  // denied and writes are routed through the trusted service.
  Pxfs::Options options;
  options.enforce_memory_protection = true;
  Pxfs fs(client_->fs(), options);
  ASSERT_TRUE(fs.Create("/wonly").ok());
  ASSERT_TRUE(fs.Chmod("/wonly", MakeAcl(0, kAclRightWrite)).ok());

  auto fd = fs.Open("/wonly", kOpenRead | kOpenWrite);
  ASSERT_TRUE(fd.ok());
  const std::string data = "dropped into the mailbox";
  // Write succeeds (FS permission allows it) via the service path.
  EXPECT_TRUE(
      fs.Write(*fd, std::span<const char>(data.data(), data.size())).ok());
  // Read is denied: write-only at the FS level.
  char buf[64];
  EXPECT_EQ(fs.Pread(*fd, 0, std::span<char>(buf, sizeof(buf))).code(),
            ErrorCode::kPermissionDenied);
  ASSERT_TRUE(fs.Close(*fd).ok());

  // Restoring read/write lets the owner read what the service stored.
  ASSERT_TRUE(
      fs.Chmod("/wonly", MakeAcl(0, kAclRightRead | kAclRightWrite)).ok());
  EXPECT_EQ(ReadAllVia(&fs, "/wonly"), data);
}

TEST_F(PxfsPosixTest, ReadOnlyAclBlocksWrites) {
  Pxfs::Options options;
  options.enforce_memory_protection = true;
  Pxfs fs(client_->fs(), options);
  ASSERT_TRUE(fs.Create("/ronly").ok());
  {
    auto fd = fs.Open("/ronly", kOpenWrite);
    ASSERT_TRUE(fd.ok());
    const std::string data = "frozen";
    ASSERT_TRUE(
        fs.Write(*fd, std::span<const char>(data.data(), data.size())).ok());
    ASSERT_TRUE(fs.Close(*fd).ok());
  }
  ASSERT_TRUE(fs.Chmod("/ronly", MakeAcl(0, kAclRightRead)).ok());
  auto fd = fs.Open("/ronly", kOpenRead | kOpenWrite);
  ASSERT_TRUE(fd.ok());
  const char more[] = "thaw";
  EXPECT_EQ(fs.Pwrite(*fd, 0, std::span<const char>(more, 4)).code(),
            ErrorCode::kPermissionDenied);
  char buf[16] = {};
  EXPECT_EQ(*fs.Pread(*fd, 0, std::span<char>(buf, 6)), 6u);
  EXPECT_EQ(std::string_view(buf, 6), "frozen");
  ASSERT_TRUE(fs.Close(*fd).ok());
}

}  // namespace
}  // namespace aerie
