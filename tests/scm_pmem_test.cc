// Tests for the SCM emulation: region mapping, persistence primitives,
// latency model, file-backed reopen (simulated reboot).
#include <gtest/gtest.h>

#include <cstring>

#include "src/common/clock.h"
#include "src/scm/pmem.h"

namespace aerie {
namespace {

TEST(ScmRegionTest, AnonymousCreateAndAccess) {
  auto region = ScmRegion::CreateAnonymous(1 << 20);
  ASSERT_TRUE(region.ok());
  ScmRegion* r = region->get();
  EXPECT_EQ(r->size(), 1u << 20);
  std::memset(r->base(), 0xab, 4096);
  EXPECT_EQ(static_cast<unsigned char>(*r->PtrAt(100)), 0xab);
}

TEST(ScmRegionTest, OffsetPointerRoundTrip) {
  auto region = ScmRegion::CreateAnonymous(1 << 20);
  ASSERT_TRUE(region.ok());
  ScmRegion* r = region->get();
  char* p = r->PtrAt(12345);
  EXPECT_EQ(r->OffsetOf(p), 12345u);
  EXPECT_TRUE(r->Contains(p));
  EXPECT_FALSE(r->Contains(r->base() + r->size()));
}

TEST(ScmRegionTest, FlushCountsLines) {
  auto region = ScmRegion::CreateAnonymous(1 << 20);
  ASSERT_TRUE(region.ok());
  ScmRegion* r = region->get();
  r->WlFlush(r->PtrAt(0), 1);  // one line
  EXPECT_EQ(r->stats().lines_flushed.load(), 1u);
  r->WlFlush(r->PtrAt(64), 128);  // two lines
  EXPECT_EQ(r->stats().lines_flushed.load(), 3u);
  // Unaligned span crossing a line boundary.
  r->WlFlush(r->PtrAt(60), 8);  // covers lines 0 and 1
  EXPECT_EQ(r->stats().lines_flushed.load(), 5u);
}

TEST(ScmRegionTest, StreamWriteChargedAtBFlush) {
  auto region = ScmRegion::CreateAnonymous(1 << 20);
  ASSERT_TRUE(region.ok());
  ScmRegion* r = region->get();
  char buf[256];
  std::memset(buf, 7, sizeof(buf));
  r->StreamWrite(r->PtrAt(0), buf, sizeof(buf));
  EXPECT_EQ(r->stats().bytes_streamed.load(), 256u);
  EXPECT_EQ(std::memcmp(r->PtrAt(0), buf, sizeof(buf)), 0);
  const uint64_t lines_before = r->stats().lines_flushed.load();
  r->BFlush();
  EXPECT_EQ(r->stats().lines_flushed.load(), lines_before + 4);
  // Second BFlush has nothing pending.
  r->BFlush();
  EXPECT_EQ(r->stats().lines_flushed.load(), lines_before + 4);
}

TEST(ScmRegionTest, WriteLatencyModelInjectsDelay) {
  auto region = ScmRegion::CreateAnonymous(1 << 20);
  ASSERT_TRUE(region.ok());
  ScmRegion* r = region->get();
  r->latency_model().set_write_ns(50000);  // 50us per line
  Stopwatch sw;
  r->WlFlush(r->PtrAt(0), 4 * kCacheLineSize);
  const uint64_t elapsed = sw.ElapsedNanos();
  EXPECT_GE(elapsed, 4 * 50000u);
}

TEST(ScmRegionTest, PersistU64IsVisible) {
  auto region = ScmRegion::CreateAnonymous(1 << 20);
  ASSERT_TRUE(region.ok());
  ScmRegion* r = region->get();
  auto* p = reinterpret_cast<uint64_t*>(r->PtrAt(512));
  r->PersistU64(p, 0xdeadbeefcafeULL);
  EXPECT_EQ(*p, 0xdeadbeefcafeULL);
  EXPECT_GE(r->stats().fences.load(), 1u);
}

TEST(ScmRegionTest, FileBackedSurvivesReopen) {
  const std::string path = ::testing::TempDir() + "/aerie_scm_reopen.img";
  {
    auto region = ScmRegion::OpenFileBacked(path, 1 << 20);
    ASSERT_TRUE(region.ok());
    std::memcpy((*region)->PtrAt(4096), "persist me", 10);
    (*region)->WlFlush((*region)->PtrAt(4096), 10);
  }
  {
    auto region = ScmRegion::OpenFileBacked(path, 1 << 20);
    ASSERT_TRUE(region.ok());
    EXPECT_EQ(std::memcmp((*region)->PtrAt(4096), "persist me", 10), 0);
  }
  ::unlink(path.c_str());
}

TEST(ScmRegionTest, HardProtectValidatesArguments) {
  auto region = ScmRegion::CreateAnonymous(1 << 20);
  ASSERT_TRUE(region.ok());
  ScmRegion* r = region->get();
  EXPECT_EQ(r->HardProtect(100, 4096, 1).code(),
            ErrorCode::kInvalidArgument);  // unaligned
  EXPECT_EQ(r->HardProtect(0, r->size() + 4096, 1).code(),
            ErrorCode::kInvalidArgument);  // out of range
  EXPECT_TRUE(r->HardProtect(4096, 4096, 1).ok());   // read-only
  EXPECT_TRUE(r->HardProtect(4096, 4096, 3).ok());   // back to rw
}

}  // namespace
}  // namespace aerie
