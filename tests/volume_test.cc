// Tests for the volume layout: format/open, read-only vs writable views,
// root oid persistence, geometry sanity.
#include <gtest/gtest.h>

#include "src/osd/volume.h"

namespace aerie {
namespace {

TEST(VolumeTest, FormatAndReopen) {
  auto region = ScmRegion::CreateAnonymous(64 << 20);
  ASSERT_TRUE(region.ok());
  auto volume = Volume::Format(region->get(), 0, (*region)->size());
  ASSERT_TRUE(volume.ok());
  EXPECT_NE((*volume)->allocator(), nullptr);
  EXPECT_NE((*volume)->log(), nullptr);
  EXPECT_TRUE((*volume)->root_oid().IsNull());
  (*volume)->SetRootOid(Oid::Make(ObjType::kCollection, 1 << 20));

  auto reopened = Volume::Open(region->get(), 0, /*writable=*/true);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->root_oid(),
            Oid::Make(ObjType::kCollection, 1 << 20));
  EXPECT_NE((*reopened)->allocator(), nullptr);
}

TEST(VolumeTest, ReadOnlyViewHasNoAllocatorOrLog) {
  auto region = ScmRegion::CreateAnonymous(64 << 20);
  ASSERT_TRUE(region.ok());
  auto volume = Volume::Format(region->get(), 0, (*region)->size());
  ASSERT_TRUE(volume.ok());
  auto ro = Volume::Open(region->get(), 0, /*writable=*/false);
  ASSERT_TRUE(ro.ok());
  EXPECT_EQ((*ro)->allocator(), nullptr);
  EXPECT_EQ((*ro)->log(), nullptr);
  EXPECT_FALSE((*ro)->context().can_allocate());
}

TEST(VolumeTest, OpenRejectsUnformatted) {
  auto region = ScmRegion::CreateAnonymous(4 << 20);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(Volume::Open(region->get(), 0, true).code(),
            ErrorCode::kCorrupted);
}

TEST(VolumeTest, TooSmallPartitionRejected) {
  auto region = ScmRegion::CreateAnonymous(4 << 20);
  ASSERT_TRUE(region.ok());
  // Log alone would consume the partition.
  auto volume = Volume::Format(region->get(), 0, 1 << 20,
                               Volume::Options{.log_bytes = 8 << 20});
  EXPECT_FALSE(volume.ok());
}

TEST(VolumeTest, AllocationsComeFromDataArea) {
  auto region = ScmRegion::CreateAnonymous(64 << 20);
  ASSERT_TRUE(region.ok());
  auto volume = Volume::Format(region->get(), 1 << 20, 32 << 20);
  ASSERT_TRUE(volume.ok());
  auto offset = (*volume)->allocator()->Alloc(0);
  ASSERT_TRUE(offset.ok());
  EXPECT_GE(*offset, 1u << 20);
  EXPECT_LT(*offset, (1u << 20) + (32u << 20));
}

TEST(VolumeTest, AllocatorStateSurvivesReopen) {
  auto region = ScmRegion::CreateAnonymous(64 << 20);
  ASSERT_TRUE(region.ok());
  auto volume = Volume::Format(region->get(), 0, (*region)->size());
  ASSERT_TRUE(volume.ok());
  auto a = (*volume)->allocator()->Alloc(2);
  ASSERT_TRUE(a.ok());
  const uint64_t free_before = (*volume)->allocator()->pages_free();

  auto reopened = Volume::Open(region->get(), 0, /*writable=*/true);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->allocator()->pages_free(), free_before);
  EXPECT_TRUE((*reopened)->allocator()->IsAllocated(*a));
}

}  // namespace
}  // namespace aerie
