// Tests for the kernel-FS simulator: RAM disk, journal, ExtSimFs (both
// personalities), RamFS backend, and the instrumented VFS.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/kernelsim/extsim.h"
#include "src/kernelsim/ramfs.h"
#include "src/kernelsim/vfs.h"

namespace aerie {
namespace {

std::span<const char> Bytes(const std::string& s) {
  return std::span<const char>(s.data(), s.size());
}

TEST(RamDiskTest, WriteReadAndAccounting) {
  auto disk = RamDisk::Create(256);
  ASSERT_TRUE(disk.ok());
  const std::string data = "block payload";
  ASSERT_TRUE((*disk)->Write(3, 100, Bytes(data)).ok());
  EXPECT_EQ(std::memcmp((*disk)->BlockPtr(3) + 100, data.data(),
                        data.size()),
            0);
  EXPECT_EQ((*disk)->blocks_written(), 1u);
  EXPECT_EQ((*disk)->Write(256, 0, Bytes(data)).code(),
            ErrorCode::kIoError);
  EXPECT_EQ((*disk)->Write(0, 4090, Bytes(data)).code(),
            ErrorCode::kIoError);
}

TEST(RamDiskTest, WriteLatencyCharged) {
  auto disk = RamDisk::Create(16);
  ASSERT_TRUE(disk.ok());
  (*disk)->set_write_ns(20000);  // 20us per line
  std::string block(4096, 'x');
  Stopwatch sw;
  ASSERT_TRUE((*disk)->Write(0, 0, Bytes(block)).ok());
  EXPECT_GE(sw.ElapsedNanos(), 64 * 20000u);
}

TEST(JournalTest, CommitWritesDescriptorImagesCommitAndCheckpoints) {
  auto disk = RamDisk::Create(256);
  ASSERT_TRUE(disk.ok());
  Journal journal(disk->get(), 100, 50);
  Journal::Tx tx = journal.Begin();
  const std::string a = "metadata-a";
  const std::string b = "metadata-b";
  tx.Write(5, 0, Bytes(a));
  tx.Write(7, 64, Bytes(b));
  auto blocks = journal.Commit(&tx);
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(*blocks, 4u);  // descriptor + 2 images + commit
  // Checkpointed in place.
  EXPECT_EQ(std::memcmp((*disk)->BlockPtr(5), a.data(), a.size()), 0);
  EXPECT_EQ(std::memcmp((*disk)->BlockPtr(7) + 64, b.data(), b.size()), 0);
  EXPECT_EQ(journal.commits(), 1u);
}

TEST(JournalTest, EmptyTxIsFree) {
  auto disk = RamDisk::Create(64);
  ASSERT_TRUE(disk.ok());
  Journal journal(disk->get(), 32, 16);
  Journal::Tx tx = journal.Begin();
  auto blocks = journal.Commit(&tx);
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(*blocks, 0u);
  EXPECT_EQ(journal.commits(), 0u);
}

TEST(JournalTest, WrapsAroundWithoutFailing) {
  auto disk = RamDisk::Create(128);
  ASSERT_TRUE(disk.ok());
  Journal journal(disk->get(), 64, 8);
  for (int i = 0; i < 20; ++i) {
    Journal::Tx tx = journal.Begin();
    const std::string payload = "round" + std::to_string(i);
    tx.Write(5, 0, Bytes(payload));
    ASSERT_TRUE(journal.Commit(&tx).ok()) << i;
  }
  EXPECT_EQ(journal.commits(), 20u);
}

class ExtSimTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    auto disk = RamDisk::Create(32768);  // 128MB
    ASSERT_TRUE(disk.ok());
    disk_ = std::move(*disk);
    ExtSimFs::Options options;
    options.use_extents = GetParam();
    auto fs = ExtSimFs::Format(disk_.get(), options);
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(*fs);
  }

  std::unique_ptr<RamDisk> disk_;
  std::unique_ptr<ExtSimFs> fs_;
};

TEST_P(ExtSimTest, CreateLookupRoundTrip) {
  auto ino = fs_->Create(fs_->root_ino(), "hello", false);
  ASSERT_TRUE(ino.ok());
  EXPECT_EQ(*fs_->Lookup(fs_->root_ino(), "hello"), *ino);
  EXPECT_EQ(fs_->Lookup(fs_->root_ino(), "missing").code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(fs_->Create(fs_->root_ino(), "hello", false).code(),
            ErrorCode::kAlreadyExists);
}

TEST_P(ExtSimTest, WriteReadAcrossBlocks) {
  auto ino = fs_->Create(fs_->root_ino(), "data", false);
  ASSERT_TRUE(ino.ok());
  std::string data(100 << 10, '\0');  // 100KB: exercises indirect/extents
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>('a' + (i % 26));
  }
  EXPECT_EQ(*fs_->Write(*ino, 0, Bytes(data)), data.size());
  std::string buf(data.size(), '\0');
  EXPECT_EQ(*fs_->Read(*ino, 0, std::span<char>(buf.data(), buf.size())),
            data.size());
  EXPECT_EQ(buf, data);
  EXPECT_EQ(fs_->GetAttr(*ino)->size, data.size());
}

TEST_P(ExtSimTest, MetadataOpsCommitJournalTransactions) {
  const uint64_t commits_before = fs_->journal()->commits();
  ASSERT_TRUE(fs_->Create(fs_->root_ino(), "journaled", false).ok());
  EXPECT_GT(fs_->journal()->commits(), commits_before);
  ASSERT_TRUE(fs_->Unlink(fs_->root_ino(), "journaled").ok());
  EXPECT_GT(fs_->journal()->commits(), commits_before + 1);
}

TEST_P(ExtSimTest, OverwriteWithoutAllocationSkipsJournal) {
  auto ino = fs_->Create(fs_->root_ino(), "steady", false);
  ASSERT_TRUE(ino.ok());
  std::string data(4096, 'x');
  ASSERT_TRUE(fs_->Write(*ino, 0, Bytes(data)).ok());
  const uint64_t commits_before = fs_->journal()->commits();
  // Same-range overwrite: no block allocation, no size change -> no
  // metadata transaction (ordered mode journals metadata only).
  ASSERT_TRUE(fs_->Write(*ino, 0, Bytes(data)).ok());
  EXPECT_EQ(fs_->journal()->commits(), commits_before);
}

TEST_P(ExtSimTest, UnlinkFreesBlocks) {
  // Prime the root directory's dirent block so it doesn't skew accounting.
  ASSERT_TRUE(fs_->Create(fs_->root_ino(), "primer", false).ok());
  ASSERT_TRUE(fs_->Unlink(fs_->root_ino(), "primer").ok());
  const uint64_t free_before = fs_->blocks_free();
  auto ino = fs_->Create(fs_->root_ino(), "bulky", false);
  ASSERT_TRUE(ino.ok());
  std::string data(64 << 10, 'b');
  ASSERT_TRUE(fs_->Write(*ino, 0, Bytes(data)).ok());
  EXPECT_LT(fs_->blocks_free(), free_before);
  ASSERT_TRUE(fs_->Unlink(fs_->root_ino(), "bulky").ok());
  EXPECT_EQ(fs_->blocks_free(), free_before);
}

TEST_P(ExtSimTest, DirectoriesNestAndListAndRefuseNonEmptyRemoval) {
  auto dir = fs_->Create(fs_->root_ino(), "sub", true);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(fs_->Create(*dir, "inner1", false).ok());
  ASSERT_TRUE(fs_->Create(*dir, "inner2", false).ok());
  std::set<std::string> names;
  ASSERT_TRUE(fs_->ReadDirNames(*dir, [&](std::string_view name, InodeNum) {
                  names.insert(std::string(name));
                  return true;
                })
                  .ok());
  EXPECT_EQ(names, (std::set<std::string>{"inner1", "inner2"}));
  EXPECT_EQ(fs_->Unlink(fs_->root_ino(), "sub").code(),
            ErrorCode::kNotEmpty);
  ASSERT_TRUE(fs_->Unlink(*dir, "inner1").ok());
  ASSERT_TRUE(fs_->Unlink(*dir, "inner2").ok());
  EXPECT_TRUE(fs_->Unlink(fs_->root_ino(), "sub").ok());
}

TEST_P(ExtSimTest, RenameWithinAndAcrossDirs) {
  auto dir = fs_->Create(fs_->root_ino(), "d", true);
  auto file = fs_->Create(fs_->root_ino(), "f", false);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(file.ok());
  std::string data = "move me";
  ASSERT_TRUE(fs_->Write(*file, 0, Bytes(data)).ok());
  ASSERT_TRUE(fs_->Rename(fs_->root_ino(), "f", *dir, "g").ok());
  EXPECT_EQ(fs_->Lookup(fs_->root_ino(), "f").code(), ErrorCode::kNotFound);
  auto moved = fs_->Lookup(*dir, "g");
  ASSERT_TRUE(moved.ok());
  std::string buf(data.size(), '\0');
  EXPECT_EQ(*fs_->Read(*moved, 0, std::span<char>(buf.data(), buf.size())),
            data.size());
  EXPECT_EQ(buf, data);
}

TEST_P(ExtSimTest, ManyFilesInOneDirectory) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        fs_->Create(fs_->root_ino(), "file" + std::to_string(i), false)
            .ok())
        << i;
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(
        fs_->Lookup(fs_->root_ino(), "file" + std::to_string(i)).ok())
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Mapping, ExtSimTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "extents" : "indirect";
                         });

class VfsTest : public ::testing::Test {
 protected:
  VfsTest() {
    KernelVfs::Options options;
    options.syscall_entry_ns = 0;  // keep unit tests fast
    backend_ = std::make_unique<RamFsBackend>();
    vfs_ = std::make_unique<KernelVfs>(backend_.get(), options);
  }
  std::unique_ptr<RamFsBackend> backend_;
  std::unique_ptr<KernelVfs> vfs_;
};

TEST_F(VfsTest, CreateWriteReadThroughSyscalls) {
  ASSERT_TRUE(vfs_->Mkdir("/dir").ok());
  auto fd = vfs_->Open("/dir/file", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.ok());
  const std::string data = "vfs data";
  EXPECT_EQ(*vfs_->Write(*fd, Bytes(data)), data.size());
  ASSERT_TRUE(vfs_->Close(*fd).ok());

  auto rfd = vfs_->Open("/dir/file", kOpenRead);
  ASSERT_TRUE(rfd.ok());
  std::string buf(32, '\0');
  auto n = vfs_->Read(*rfd, std::span<char>(buf.data(), buf.size()));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string_view(buf.data(), *n), data);
  ASSERT_TRUE(vfs_->Close(*rfd).ok());
}

TEST_F(VfsTest, DcacheWarmsAndDropCachesEmpties) {
  ASSERT_TRUE(vfs_->Mkdir("/a").ok());
  ASSERT_TRUE(vfs_->Create("/a/f").ok());
  ASSERT_TRUE(vfs_->Stat("/a/f").ok());
  EXPECT_GT(vfs_->dcache_size(), 0u);
  EXPECT_GT(vfs_->icache_size(), 0u);
  vfs_->DropCaches();
  EXPECT_EQ(vfs_->dcache_size(), 0u);
  EXPECT_EQ(vfs_->icache_size(), 0u);
  // Still resolvable after the drop (cold path repopulates).
  EXPECT_TRUE(vfs_->Stat("/a/f").ok());
}

TEST_F(VfsTest, StatsAttributeTimeToCategories) {
  KernelVfs::Options options;
  options.syscall_entry_ns = 1000;
  KernelVfs vfs(backend_.get(), options);
  ASSERT_TRUE(vfs.Mkdir("/x").ok());
  ASSERT_TRUE(vfs.Create("/x/y").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(vfs.Stat("/x/y").ok());
  }
  EXPECT_GT(vfs.stats().Get(VfsCat::kEntry), 10 * 1000u);
  EXPECT_GT(vfs.stats().Get(VfsCat::kNaming), 0u);
  EXPECT_GT(vfs.stats().Get(VfsCat::kSync), 0u);
  EXPECT_GT(vfs.stats().Get(VfsCat::kMemObjects), 0u);
  EXPECT_GT(vfs.stats().ops.load(), 10u);
}

TEST_F(VfsTest, UnlinkedWhileOpenErrorsMatchPosixShape) {
  ASSERT_TRUE(vfs_->Create("/gone").ok());
  ASSERT_TRUE(vfs_->Unlink("/gone").ok());
  EXPECT_EQ(vfs_->Open("/gone", kOpenRead).code(), ErrorCode::kNotFound);
  EXPECT_EQ(vfs_->Unlink("/gone").code(), ErrorCode::kNotFound);
}

TEST_F(VfsTest, RenameUpdatesNamespaceAndCaches) {
  ASSERT_TRUE(vfs_->Create("/old").ok());
  ASSERT_TRUE(vfs_->Rename("/old", "/new").ok());
  EXPECT_EQ(vfs_->Stat("/old").code(), ErrorCode::kNotFound);
  EXPECT_TRUE(vfs_->Stat("/new").ok());
}

TEST_F(VfsTest, BadFdsRejected) {
  char buf[4];
  EXPECT_EQ(vfs_->Read(42, std::span<char>(buf, 4)).code(),
            ErrorCode::kBadHandle);
  EXPECT_EQ(vfs_->Close(42).code(), ErrorCode::kBadHandle);
}

TEST(VfsOnExtTest, FullStackSmoke) {
  auto disk = RamDisk::Create(16384);
  ASSERT_TRUE(disk.ok());
  auto backend = ExtSimFs::Format(disk->get(), ExtSimFs::Options{});
  ASSERT_TRUE(backend.ok());
  KernelVfs::Options options;
  options.syscall_entry_ns = 0;
  KernelVfs vfs(backend->get(), options);
  ASSERT_TRUE(vfs.Mkdir("/data").ok());
  for (int i = 0; i < 50; ++i) {
    const std::string path = "/data/f" + std::to_string(i);
    auto fd = vfs.Open(path, kOpenCreate | kOpenWrite);
    ASSERT_TRUE(fd.ok());
    const std::string payload = path;
    ASSERT_TRUE(vfs.Write(*fd, Bytes(payload)).ok());
    ASSERT_TRUE(vfs.Close(*fd).ok());
  }
  for (int i = 0; i < 50; ++i) {
    const std::string path = "/data/f" + std::to_string(i);
    auto fd = vfs.Open(path, kOpenRead);
    ASSERT_TRUE(fd.ok());
    std::string buf(64, '\0');
    auto n = vfs.Read(*fd, std::span<char>(buf.data(), buf.size()));
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(std::string_view(buf.data(), *n), path);
    ASSERT_TRUE(vfs.Close(*fd).ok());
  }
}

}  // namespace
}  // namespace aerie
