// Tests for the SCM manager: partitions, extents, ACL protection, soft
// page-table faults, persistence across remount.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "src/scm/manager.h"

namespace aerie {
namespace {

class ScmManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto region = ScmRegion::CreateAnonymous(64 << 20);
    ASSERT_TRUE(region.ok());
    region_ = std::move(*region);
    ScmManager::Options options;
    options.max_partitions = 8;
    options.max_extents = 1024;
    auto mgr = ScmManager::Format(region_.get(), options);
    ASSERT_TRUE(mgr.ok());
    mgr_ = std::move(*mgr);
  }

  std::unique_ptr<ScmRegion> region_;
  std::unique_ptr<ScmManager> mgr_;
};

TEST_F(ScmManagerTest, AclEncoding) {
  const uint32_t acl = MakeAcl(1234, kAclRightRead | kAclRightWrite);
  EXPECT_EQ(AclGid(acl), 1234u);
  EXPECT_EQ(AclRights(acl), 3u);
}

TEST_F(ScmManagerTest, AllocatePartitionFirstFit) {
  auto p1 = mgr_->AllocatePartition(1 << 20, MakeAcl(0, 3));
  ASSERT_TRUE(p1.ok());
  auto p2 = mgr_->AllocatePartition(1 << 20, MakeAcl(0, 3));
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->offset, p1->offset + p1->size);
  EXPECT_EQ(mgr_->ListPartitions().size(), 2u);
}

TEST_F(ScmManagerTest, PartitionExhaustion) {
  auto p = mgr_->AllocatePartition(region_->size() * 2, MakeAcl(0, 3));
  EXPECT_EQ(p.code(), ErrorCode::kOutOfSpace);
}

TEST_F(ScmManagerTest, PartitionsSurviveRemount) {
  auto p1 = mgr_->AllocatePartition(1 << 20, MakeAcl(7, 3));
  ASSERT_TRUE(p1.ok());
  auto remounted = ScmManager::Mount(region_.get());
  ASSERT_TRUE(remounted.ok());
  auto parts = (*remounted)->ListPartitions();
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].offset, p1->offset);
  EXPECT_EQ(AclGid(parts[0].acl), 7u);
}

TEST_F(ScmManagerTest, ExtentCreateAndOverlapRejected) {
  const uint64_t base = mgr_->data_start();
  ASSERT_TRUE(mgr_->CreateExtent(base, 4 * kScmPageSize, MakeAcl(1, 3)).ok());
  // Overlapping attempts fail.
  EXPECT_EQ(mgr_->CreateExtent(base, kScmPageSize, MakeAcl(1, 3)).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(mgr_->CreateExtent(base + kScmPageSize, kScmPageSize,
                               MakeAcl(1, 3))
                .code(),
            ErrorCode::kAlreadyExists);
  // Adjacent is fine.
  EXPECT_TRUE(mgr_->CreateExtent(base + 4 * kScmPageSize, kScmPageSize,
                                 MakeAcl(1, 3))
                  .ok());
  EXPECT_EQ(mgr_->extent_count(), 2u);
}

TEST_F(ScmManagerTest, ExtentBadArgsRejected) {
  EXPECT_EQ(mgr_->CreateExtent(123, kScmPageSize, 0).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(mgr_->CreateExtent(mgr_->data_start(), 100, 0).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(ScmManagerTest, AccessCheckEnforcesGidAndRights) {
  const uint64_t base = mgr_->data_start();
  ASSERT_TRUE(
      mgr_->CreateExtent(base, kScmPageSize, MakeAcl(5, kAclRightRead)).ok());

  ProcessContext in_group({5});
  ProcessContext out_group({6});
  EXPECT_TRUE(mgr_->CheckAccess(in_group, base, 100, kAclRightRead).ok());
  EXPECT_EQ(mgr_->CheckAccess(in_group, base, 100, kAclRightWrite).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(mgr_->CheckAccess(out_group, base, 100, kAclRightRead).code(),
            ErrorCode::kPermissionDenied);
  // Uncovered range.
  EXPECT_EQ(
      mgr_->CheckAccess(in_group, base + kScmPageSize, 8, kAclRightRead)
          .code(),
      ErrorCode::kPermissionDenied);
}

TEST_F(ScmManagerTest, SoftFaultsPopulateAndProtectionChangeInvalidates) {
  const uint64_t base = mgr_->data_start();
  ASSERT_TRUE(
      mgr_->CreateExtent(base, 4 * kScmPageSize, MakeAcl(0, 3)).ok());
  ProcessContext ctx({0});
  mgr_->RegisterContext(&ctx);

  // First touch faults each page once; second touch is free.
  ASSERT_TRUE(mgr_->TouchRange(&ctx, base, 4 * kScmPageSize, 1).ok());
  EXPECT_EQ(ctx.soft_faults(), 4u);
  ASSERT_TRUE(mgr_->TouchRange(&ctx, base, 4 * kScmPageSize, 1).ok());
  EXPECT_EQ(ctx.soft_faults(), 4u);
  EXPECT_TRUE(ctx.IsMapped(base / kScmPageSize));

  // Protection change invalidates soft PTEs; refaulting checks new rights.
  ASSERT_TRUE(mgr_->MprotectExtent(base, MakeAcl(0, kAclRightRead)).ok());
  EXPECT_FALSE(ctx.IsMapped(base / kScmPageSize));
  EXPECT_EQ(mgr_->pages_invalidated(), 4u);
  EXPECT_EQ(mgr_->TouchRange(&ctx, base, kScmPageSize, kAclRightWrite).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_TRUE(mgr_->TouchRange(&ctx, base, kScmPageSize, kAclRightRead).ok());

  mgr_->UnregisterContext(&ctx);
}

TEST_F(ScmManagerTest, ExtentsSurviveRemount) {
  const uint64_t base = mgr_->data_start();
  ASSERT_TRUE(mgr_->CreateExtent(base, kScmPageSize, MakeAcl(9, 1)).ok());
  auto remounted = ScmManager::Mount(region_.get());
  ASSERT_TRUE(remounted.ok());
  auto extent = (*remounted)->FindExtent(base + 100);
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(AclGid(extent->acl), 9u);
}

TEST_F(ScmManagerTest, DestroyExtentFreesSlot) {
  const uint64_t base = mgr_->data_start();
  ASSERT_TRUE(mgr_->CreateExtent(base, kScmPageSize, 0).ok());
  ASSERT_TRUE(mgr_->DestroyExtent(base).ok());
  EXPECT_EQ(mgr_->FindExtent(base).code(), ErrorCode::kNotFound);
  // Slot is reusable.
  EXPECT_TRUE(mgr_->CreateExtent(base, kScmPageSize, 0).ok());
}

TEST_F(ScmManagerTest, MountPartitionReturnsLinearMapping) {
  auto p = mgr_->AllocatePartition(1 << 20, MakeAcl(0, 3));
  ASSERT_TRUE(p.ok());
  ProcessContext ctx({0});
  auto base = mgr_->MountPartition(&ctx, p->offset);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(*base, region_->PtrAt(p->offset));
  EXPECT_EQ(mgr_->MountPartition(&ctx, 0xdead000).code(),
            ErrorCode::kNotFound);
}

TEST(ScmManagerFormatTest, MountRejectsUnformattedRegion) {
  auto region = ScmRegion::CreateAnonymous(1 << 20);
  ASSERT_TRUE(region.ok());
  std::memset((*region)->base(), 0, 4096);
  EXPECT_EQ(ScmManager::Mount(region->get()).code(), ErrorCode::kCorrupted);
}

}  // namespace
}  // namespace aerie
