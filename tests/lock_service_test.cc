// Tests for the lock service: mode compatibility, grants, upgrades,
// revocation upcalls, lease expiry, RPC wiring.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/lock/lock_service.h"
#include "src/rpc/inproc.h"

namespace aerie {
namespace {

class RecordingSink : public RevocationSink {
 public:
  void OnRevoke(LockId id, LockMode) override {
    revoked_ids.push_back(id);
    revokes++;
  }
  void OnLeaseExpired() override { lease_expired = true; }

  std::atomic<int> revokes{0};
  std::vector<LockId> revoked_ids;
  std::atomic<bool> lease_expired{false};
};

TEST(LockModeTest, CompatibilityMatrix) {
  using enum LockMode;
  // S/S compatible; X conflicts with everything but intents with intents.
  EXPECT_TRUE(LockCompatible(kShared, kShared));
  EXPECT_TRUE(LockCompatible(kShared, kIntentShared));
  // Explicit locks cover only the object: intents coexist with them.
  EXPECT_TRUE(LockCompatible(kShared, kIntentExclusive));
  EXPECT_FALSE(LockCompatible(kShared, kExclusive));
  EXPECT_TRUE(LockCompatible(kIntentShared, kIntentExclusive));
  EXPECT_TRUE(LockCompatible(kIntentExclusive, kIntentExclusive));
  EXPECT_TRUE(LockCompatible(kExclusive, kIntentShared));
  // Hierarchical modes cover the subtree: they do conflict with intents.
  EXPECT_FALSE(LockCompatible(kSharedHier, kIntentExclusive));
  EXPECT_FALSE(LockCompatible(kExclusiveHier, kIntentShared));
  // Hierarchical modes behave like their base for compatibility.
  EXPECT_TRUE(LockCompatible(kSharedHier, kShared));
  EXPECT_FALSE(LockCompatible(kExclusiveHier, kShared));
}

TEST(LockModeTest, CoversAndStrengthen) {
  using enum LockMode;
  EXPECT_TRUE(LockModeCovers(kExclusiveHier, kShared));
  EXPECT_TRUE(LockModeCovers(kExclusive, kShared));
  EXPECT_FALSE(LockModeCovers(kShared, kExclusive));
  EXPECT_TRUE(LockModeCovers(kSharedHier, kShared));
  EXPECT_FALSE(LockModeCovers(kShared, kSharedHier));
  EXPECT_EQ(LockModeStrengthen(kShared, kIntentExclusive), kExclusive);
  EXPECT_EQ(LockModeStrengthen(kSharedHier, kExclusive), kExclusiveHier);
  EXPECT_EQ(LockModeStrengthen(kShared, kExclusive), kExclusive);
  EXPECT_EQ(LockModeStrengthen(kIntentShared, kIntentExclusive),
            kIntentExclusive);
}

TEST(LockModeTest, HierCovers) {
  using enum LockMode;
  EXPECT_TRUE(HierCovers(kExclusiveHier, kExclusive));
  EXPECT_TRUE(HierCovers(kExclusiveHier, kShared));
  EXPECT_TRUE(HierCovers(kSharedHier, kShared));
  EXPECT_FALSE(HierCovers(kSharedHier, kExclusive));
  EXPECT_FALSE(HierCovers(kShared, kShared));
  EXPECT_FALSE(HierCovers(kExclusive, kShared));
}

class LockServiceTest : public ::testing::Test {
 protected:
  LockServiceTest() {
    LockService::Options options;
    options.lease_ms = 60000;  // effectively disabled unless forced
    options.wait_timeout_ms = 300;
    service_ = std::make_unique<LockService>(options);
    service_->RegisterClient(1, &sink1_);
    service_->RegisterClient(2, &sink2_);
  }

  std::unique_ptr<LockService> service_;
  RecordingSink sink1_, sink2_;
};

TEST_F(LockServiceTest, SharedGrantsCoexist) {
  EXPECT_TRUE(service_->Acquire(1, 100, LockMode::kShared, false).ok());
  EXPECT_TRUE(service_->Acquire(2, 100, LockMode::kShared, false).ok());
  EXPECT_EQ(service_->HeldMode(1, 100), LockMode::kShared);
  EXPECT_EQ(service_->HeldMode(2, 100), LockMode::kShared);
}

TEST_F(LockServiceTest, ExclusiveConflictsTryLock) {
  EXPECT_TRUE(service_->Acquire(1, 100, LockMode::kExclusive, false).ok());
  EXPECT_EQ(service_->Acquire(2, 100, LockMode::kShared, false).code(),
            ErrorCode::kLockConflict);
  EXPECT_EQ(service_->HeldMode(2, 100), LockMode::kFree);
}

TEST_F(LockServiceTest, ReacquireIsIdempotent) {
  EXPECT_TRUE(service_->Acquire(1, 100, LockMode::kExclusive, false).ok());
  EXPECT_TRUE(service_->Acquire(1, 100, LockMode::kShared, false).ok());
  EXPECT_EQ(service_->HeldMode(1, 100), LockMode::kExclusive);
}

TEST_F(LockServiceTest, UpgradeSharedToExclusive) {
  EXPECT_TRUE(service_->Acquire(1, 100, LockMode::kShared, false).ok());
  EXPECT_TRUE(service_->Acquire(1, 100, LockMode::kExclusive, false).ok());
  EXPECT_EQ(service_->HeldMode(1, 100), LockMode::kExclusive);
}

TEST_F(LockServiceTest, ReleaseUnblocksWaiter) {
  ASSERT_TRUE(service_->Acquire(1, 100, LockMode::kExclusive, false).ok());
  std::thread waiter([&] {
    EXPECT_TRUE(service_->Acquire(2, 100, LockMode::kExclusive, true).ok());
  });
  // Give the waiter time to block, then release.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(service_->Release(1, 100).ok());
  waiter.join();
  EXPECT_EQ(service_->HeldMode(2, 100), LockMode::kExclusive);
}

TEST_F(LockServiceTest, RevocationUpcallSentToConflictingHolder) {
  ASSERT_TRUE(service_->Acquire(1, 100, LockMode::kExclusive, false).ok());
  std::thread waiter([&] {
    // Will block until client 1 releases in response to the upcall.
    EXPECT_TRUE(service_->Acquire(2, 100, LockMode::kShared, true).ok());
  });
  while (sink1_.revokes.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(service_->Release(1, 100).ok());
  waiter.join();
  EXPECT_GE(sink1_.revokes.load(), 1);
  EXPECT_EQ(sink1_.revoked_ids[0], 100u);
}

TEST_F(LockServiceTest, WaitTimesOutAsConflict) {
  ASSERT_TRUE(service_->Acquire(1, 100, LockMode::kExclusive, false).ok());
  EXPECT_EQ(service_->Acquire(2, 100, LockMode::kExclusive, true).code(),
            ErrorCode::kLockConflict);
}

TEST_F(LockServiceTest, ExpiredLeaseImplicitlyReleases) {
  ASSERT_TRUE(service_->Acquire(1, 100, LockMode::kExclusive, false).ok());
  service_->ExpireLeaseForTesting(1);
  // Client 2 can take the lock; client 1's sink learns its lease died.
  EXPECT_TRUE(service_->Acquire(2, 100, LockMode::kExclusive, true).ok());
  EXPECT_TRUE(sink1_.lease_expired.load());
  EXPECT_EQ(service_->HeldMode(1, 100), LockMode::kFree);
  EXPECT_FALSE(service_->LeaseValid(1));
}

TEST_F(LockServiceTest, RenewKeepsLeaseValid) {
  EXPECT_TRUE(service_->Renew(1).ok());
  EXPECT_TRUE(service_->LeaseValid(1));
  EXPECT_EQ(service_->Renew(99).code(), ErrorCode::kUnavailable);
}

TEST_F(LockServiceTest, UnregisterDropsAllLocks) {
  ASSERT_TRUE(service_->Acquire(1, 100, LockMode::kExclusive, false).ok());
  ASSERT_TRUE(service_->Acquire(1, 101, LockMode::kShared, false).ok());
  service_->UnregisterClient(1);
  EXPECT_TRUE(service_->Acquire(2, 100, LockMode::kExclusive, false).ok());
  EXPECT_TRUE(service_->Acquire(2, 101, LockMode::kExclusive, false).ok());
}

TEST_F(LockServiceTest, DowngradeWeakensHeldMode) {
  ASSERT_TRUE(
      service_->Acquire(1, 100, LockMode::kExclusiveHier, false).ok());
  EXPECT_TRUE(
      service_->Downgrade(1, 100, LockMode::kIntentExclusive).ok());
  EXPECT_EQ(service_->HeldMode(1, 100), LockMode::kIntentExclusive);
  // IX coexists with another IX.
  EXPECT_TRUE(
      service_->Acquire(2, 100, LockMode::kIntentExclusive, false).ok());
  // Upgrading beyond held mode via Downgrade is rejected.
  EXPECT_EQ(service_->Downgrade(1, 100, LockMode::kExclusive).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(LockServiceTest, ReleaseOfUnheldLockFails) {
  EXPECT_EQ(service_->Release(1, 999).code(), ErrorCode::kNotFound);
}

TEST_F(LockServiceTest, RpcRoundTrip) {
  RpcDispatcher dispatcher;
  service_->RegisterRpc(&dispatcher);
  InprocTransport transport(&dispatcher, 1);
  RemoteLockService remote(&transport);
  EXPECT_TRUE(remote.Acquire(55, LockMode::kExclusive, true).ok());
  EXPECT_EQ(service_->HeldMode(1, 55), LockMode::kExclusive);
  EXPECT_TRUE(remote.Downgrade(55, LockMode::kShared).ok());
  EXPECT_EQ(service_->HeldMode(1, 55), LockMode::kShared);
  EXPECT_TRUE(remote.Renew().ok());
  EXPECT_TRUE(remote.Release(55).ok());
  EXPECT_EQ(service_->HeldMode(1, 55), LockMode::kFree);
}

}  // namespace
}  // namespace aerie
