// Stress tests for the distributed lock protocol: mutual exclusion must
// hold across clients and threads under heavy contention, revocation and
// caching; hierarchical grants must never leak exclusivity.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/rand.h"
#include "src/lock/clerk.h"
#include "src/lock/lock_service.h"

namespace aerie {
namespace {

class DirectLockClient : public LockServiceClient {
 public:
  DirectLockClient(LockService* service, uint64_t client_id)
      : service_(service), client_id_(client_id) {}
  Status Acquire(LockId id, LockMode mode, bool wait) override {
    return service_->Acquire(client_id_, id, mode, wait);
  }
  Status Release(LockId id) override {
    return service_->Release(client_id_, id);
  }
  Status Downgrade(LockId id, LockMode to) override {
    return service_->Downgrade(client_id_, id, to);
  }
  Status Renew() override { return service_->Renew(client_id_); }

 private:
  LockService* service_;
  uint64_t client_id_;
};

struct Client {
  std::unique_ptr<DirectLockClient> stub;
  std::unique_ptr<LockClerk> clerk;
};

struct Fixture {
  explicit Fixture(int nclients) {
    LockService::Options options;
    options.lease_ms = 60000;
    options.wait_timeout_ms = 10000;
    service = std::make_unique<LockService>(options);
    for (int c = 0; c < nclients; ++c) {
      auto client = std::make_unique<Client>();
      client->stub = std::make_unique<DirectLockClient>(
          service.get(), static_cast<uint64_t>(c + 1));
      LockClerk::Options copts;
      copts.local_wait_timeout_ms = 10000;
      client->clerk =
          std::make_unique<LockClerk>(client->stub.get(), copts);
      service->RegisterClient(static_cast<uint64_t>(c + 1),
                              client->clerk.get());
      clients.push_back(std::move(client));
    }
  }
  std::unique_ptr<LockService> service;
  std::vector<std::unique_ptr<Client>> clients;
};

// Mutual exclusion proof: protected counters see no torn increments.
TEST(LockStressTest, CrossClientMutualExclusion) {
  constexpr int kClients = 3;
  constexpr int kThreadsPerClient = 2;
  constexpr int kLocks = 4;
  constexpr int kItersPerThread = 300;
  Fixture fixture(kClients);

  // One unprotected shared cell per lock; increments are done unlocked
  // inside the critical section, so any exclusion bug shows as a lost
  // update.
  std::vector<uint64_t> cells(kLocks, 0);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    for (int t = 0; t < kThreadsPerClient; ++t) {
      threads.emplace_back([&, c, t] {
        Rng rng(static_cast<uint64_t>(c * 97 + t));
        LockClerk* clerk = fixture.clients[static_cast<size_t>(c)]->clerk.get();
        for (int i = 0; i < kItersPerThread; ++i) {
          const LockId lock = 100 + rng.Uniform(kLocks);
          Status st = clerk->Acquire(lock, LockMode::kExclusive);
          if (!st.ok()) {
            failures++;
            continue;
          }
          const uint64_t seen = cells[lock - 100];
          // A tiny window to let races manifest.
          for (volatile int spin = 0; spin < 50; ++spin) {
          }
          cells[lock - 100] = seen + 1;
          clerk->Release(lock);
        }
      });
    }
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  uint64_t total = 0;
  for (uint64_t cell : cells) {
    total += cell;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kClients * kThreadsPerClient *
                                         kItersPerThread));
}

// Readers under SH ancestors coexist; writers still exclude them.
TEST(LockStressTest, HierarchicalGrantsPreserveExclusion) {
  constexpr int kClients = 2;
  constexpr int kIters = 200;
  Fixture fixture(kClients);
  const LockId kParent = 10;
  const LockId kChild = 1000;

  uint64_t cell = 0;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(static_cast<uint64_t>(c) + 7);
      LockClerk* clerk = fixture.clients[static_cast<size_t>(c)]->clerk.get();
      const LockId ancestors[] = {kParent};
      for (int i = 0; i < kIters; ++i) {
        if (rng.Chance(1, 3)) {
          // Sometimes grab the whole subtree hierarchically.
          Status st = clerk->Acquire(kParent, LockMode::kExclusiveHier);
          if (!st.ok()) {
            failures++;
            continue;
          }
          const uint64_t seen = cell;
          for (volatile int spin = 0; spin < 30; ++spin) {
          }
          cell = seen + 1;
          clerk->Release(kParent);
        } else {
          Status st =
              clerk->Acquire(kChild, LockMode::kExclusive, ancestors);
          if (!st.ok()) {
            failures++;
            continue;
          }
          const uint64_t seen = cell;
          for (volatile int spin = 0; spin < 30; ++spin) {
          }
          cell = seen + 1;
          clerk->Release(kChild);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cell, static_cast<uint64_t>(kClients * kIters));
}

// Many readers, one writer: readers never observe a half-written value.
TEST(LockStressTest, ReadersSeeConsistentSnapshots) {
  Fixture fixture(3);
  const LockId kLock = 55;
  // Writer keeps two cells equal under X; readers verify equality under S.
  volatile uint64_t a = 0;
  volatile uint64_t b = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::thread writer([&] {
    LockClerk* clerk = fixture.clients[0]->clerk.get();
    for (int i = 0; i < 400; ++i) {
      if (!clerk->Acquire(kLock, LockMode::kExclusive).ok()) {
        continue;
      }
      a = a + 1;
      for (volatile int spin = 0; spin < 40; ++spin) {
      }
      b = b + 1;
      clerk->Release(kLock);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int c = 1; c < 3; ++c) {
    readers.emplace_back([&, c] {
      LockClerk* clerk = fixture.clients[static_cast<size_t>(c)]->clerk.get();
      while (!stop.load()) {
        if (!clerk->Acquire(kLock, LockMode::kShared).ok()) {
          continue;
        }
        if (a != b) {
          violations++;
        }
        clerk->Release(kLock);
      }
    });
  }
  writer.join();
  for (auto& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace aerie
