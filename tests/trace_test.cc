// Tests for the tracing subsystem: context minting/propagation, the
// lock-free flight recorder (wraparound, concurrent dump, off-mode), the
// Perfetto exporter, and the dump-on-CHECK / slow-op triggers.
#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/check.h"
#include "src/common/clock.h"
#include "src/obs/obs.h"

namespace aerie {
namespace obs {
namespace {

// Default ring capacity (no AERIE_TRACE_RING in the test environment).
constexpr uint64_t kRingEvents = 4096;

std::vector<TraceEventView> EventsNamed(const char* name) {
  std::vector<TraceEventView> out;
  for (const TraceEventView& e : CollectTraceEvents()) {
    if (std::string_view(e.name) == name) {
      out.push_back(e);
    }
  }
  return out;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_mode_ = CurrentMode();
    SetMode(Mode::kSpans);
    SetSlowTraceThresholdUs(0);
    ResetAll();  // zeroes metrics and floors the flight recorder
  }
  void TearDown() override {
    SetSlowTraceThresholdUs(0);
    SetMode(prev_mode_);
    ResetAll();
  }

 private:
  Mode prev_mode_ = Mode::kCounters;
};

TEST_F(TraceTest, RootSpanMintsTraceAndChildrenInherit) {
  EXPECT_FALSE(CurrentTraceContext().valid());
  TraceContext outer;
  TraceContext inner;
  {
    AERIE_SPAN("pxfs", "t_root");
    outer = CurrentTraceContext();
    EXPECT_TRUE(outer.valid());
    EXPECT_EQ(outer.parent_id, 0u);
    {
      AERIE_SPAN("clerk", "t_child");
      inner = CurrentTraceContext();
    }
  }
  EXPECT_EQ(inner.trace_id, outer.trace_id);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_NE(inner.span_id, outer.span_id);
  EXPECT_FALSE(CurrentTraceContext().valid());

  const auto roots = EventsNamed("pxfs.t_root");
  const auto children = EventsNamed("clerk.t_child");
  ASSERT_EQ(roots.size(), 2u);  // begin + end
  ASSERT_EQ(children.size(), 2u);
  for (const auto& e : children) {
    EXPECT_EQ(e.trace_id, outer.trace_id);
    EXPECT_EQ(e.parent_id, outer.span_id);
  }
  bool saw_end = false;
  for (const auto& e : roots) {
    if (e.kind == TraceEventKind::kSpanEnd) {
      saw_end = true;
      EXPECT_EQ(e.span_id, outer.span_id);
    }
  }
  EXPECT_TRUE(saw_end);
}

TEST_F(TraceTest, SeparateRootSpansGetSeparateTraces) {
  TraceContext first;
  TraceContext second;
  {
    AERIE_SPAN("pxfs", "t_sep");
    first = CurrentTraceContext();
  }
  {
    AERIE_SPAN("pxfs", "t_sep");
    second = CurrentTraceContext();
  }
  EXPECT_NE(first.trace_id, second.trace_id);
}

TEST_F(TraceTest, OffAndCountersModesRecordNothing) {
  for (Mode mode : {Mode::kOff, Mode::kCounters}) {
    SetMode(mode);
    {
      AERIE_SPAN("pxfs", "t_off");
      TraceInstant("test.t_off_instant", 1);
    }
    EXPECT_FALSE(CurrentTraceContext().valid());
  }
  SetMode(Mode::kSpans);
  EXPECT_TRUE(EventsNamed("pxfs.t_off").empty());
  EXPECT_TRUE(EventsNamed("test.t_off_instant").empty());
}

TEST_F(TraceTest, InstantAttributesToEnclosingSpan) {
  TraceContext ctx;
  {
    AERIE_SPAN("tfs", "t_host");
    ctx = CurrentTraceContext();
    TraceInstant("test.t_instant", 42);
  }
  const auto instants = EventsNamed("test.t_instant");
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_EQ(instants[0].kind, TraceEventKind::kInstant);
  EXPECT_EQ(instants[0].trace_id, ctx.trace_id);
  EXPECT_EQ(instants[0].span_id, ctx.span_id);
  EXPECT_EQ(instants[0].arg, 42u);
}

TEST_F(TraceTest, ScopedContextInstallsAndRestores) {
  TraceContext remote;
  remote.trace_id = NewTraceId();
  remote.span_id = NewSpanId();
  {
    ScopedTraceContext scope(remote);
    EXPECT_EQ(CurrentTraceContext().trace_id, remote.trace_id);
    // A span opened under the installed context joins the remote trace
    // instead of minting — this is the RPC server dispatch path.
    AERIE_SPAN("lockservice", "t_served");
    EXPECT_EQ(CurrentTraceContext().trace_id, remote.trace_id);
    EXPECT_EQ(CurrentTraceContext().parent_id, remote.span_id);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
  const auto served = EventsNamed("lockservice.t_served");
  ASSERT_FALSE(served.empty());
  EXPECT_EQ(served[0].trace_id, remote.trace_id);
  EXPECT_EQ(served[0].parent_id, remote.span_id);
}

TEST_F(TraceTest, WraparoundKeepsLastEventsBounded) {
  const uint64_t total = 3 * kRingEvents;
  for (uint64_t i = 0; i < total; ++i) {
    TraceInstant("test.t_wrap", i);
  }
  const auto events = EventsNamed("test.t_wrap");
  ASSERT_EQ(events.size(), kRingEvents);  // bounded, oldest overwritten
  // The surviving window is the contiguous tail ending at the last event.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, total - kRingEvents + i);
  }
}

TEST_F(TraceTest, ConcurrentWritersWithConcurrentDumper) {
  constexpr int kWriters = 4;
  const uint64_t per_writer = 2 * kRingEvents;
  std::atomic<bool> done{false};
  std::thread dumper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      // Exercise the seqlock read path against live wraparound; values are
      // checked after the writers stop.
      (void)CollectTraceEvents();
      (void)DumpTraceJson();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, per_writer] {
      for (uint64_t i = 0; i < per_writer; ++i) {
        TraceInstant("test.t_cwrap", static_cast<uint64_t>(w) * per_writer + i);
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  done.store(true);
  dumper.join();

  const auto events = EventsNamed("test.t_cwrap");
  EXPECT_LE(events.size(), static_cast<size_t>(kWriters) * kRingEvents);
  // Each writer thread's ring retains exactly its last kRingEvents events.
  std::map<uint32_t, uint64_t> per_tid;
  for (const auto& e : events) {
    per_tid[e.tid]++;
    const uint64_t w = e.arg / per_writer;
    EXPECT_GE(e.arg % per_writer, per_writer - kRingEvents)
        << "writer " << w << " kept an event that should be overwritten";
  }
  for (const auto& [tid, count] : per_tid) {
    EXPECT_EQ(count, kRingEvents) << "tid " << tid;
  }
}

TEST_F(TraceTest, ResetFlightRecorderDropsEverything) {
  {
    AERIE_SPAN("pxfs", "t_reset");
    TraceInstant("test.t_reset_i", 1);
  }
  ASSERT_FALSE(CollectTraceEvents().empty());
  ResetFlightRecorder();
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST_F(TraceTest, DumpTraceJsonIsWellFormedTraceEventJson) {
  SetThreadTraceName("trace_test_main");
  {
    AERIE_SPAN("pxfs", "t_json");
    TraceInstant("test.t_json_i", 9);
  }
  const std::string json = DumpTraceJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("pxfs.t_json"), std::string::npos);
  EXPECT_NE(json.find("trace_test_main"), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST_F(TraceTest, WriteTraceJsonFileWritesTheDump) {
  {
    AERIE_SPAN("pxfs", "t_file");
  }
  const std::string path = ::testing::TempDir() + "/aerie_trace_test.json";
  ASSERT_TRUE(WriteTraceJsonFile(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("pxfs.t_file"), std::string::npos);
  EXPECT_EQ(content.front(), '{');
}

TEST_F(TraceTest, SlowOpTriggerFiresOnlyAboveThreshold) {
  Counter& dumps = Registry::Instance().GetCounter("obs.trace.slow_dump");
  const uint64_t before = dumps.value();

  SetSlowTraceThresholdUs(1'000'000);  // 1s: nothing here is that slow
  {
    AERIE_SPAN("pxfs", "t_fast");
  }
  EXPECT_EQ(dumps.value(), before);

  SetSlowTraceThresholdUs(1);  // 1us: the spin below must exceed it
  {
    AERIE_SPAN("pxfs", "t_slow");
    SpinDelayNanos(200'000);
  }
  EXPECT_EQ(dumps.value(), before + 1);
  SetSlowTraceThresholdUs(0);
}

TEST_F(TraceTest, FlightRecorderTextFiltersByTrace) {
  TraceContext ctx;
  {
    AERIE_SPAN("pxfs", "t_trail");
    ctx = CurrentTraceContext();
    TraceInstant("test.t_trail_i", 5);
  }
  {
    AERIE_SPAN("pxfs", "t_other");
  }
  const std::string trail = FlightRecorderText(ctx.trace_id);
  EXPECT_NE(trail.find("pxfs.t_trail"), std::string::npos);
  EXPECT_NE(trail.find("test.t_trail_i"), std::string::npos);
  EXPECT_EQ(trail.find("pxfs.t_other"), std::string::npos);
}

// A failed AERIE_CHECK must dump the recorder before aborting: the matcher
// requires the crashing op's span to appear in the stderr trail.
TEST(TraceDeathTest, CheckFailureDumpsFlightRecorder) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetMode(Mode::kSpans);
        {
          AERIE_SPAN("pxfs", "t_crash");
        }
        AERIE_CHECK(1 == 2);
      },
      "pxfs\\.t_crash");
  EXPECT_DEATH(
      {
        SetMode(Mode::kSpans);
        {
          AERIE_SPAN("pxfs", "t_crash2");
        }
        AERIE_CHECK(2 == 3);
      },
      "aerie flight recorder");
}

}  // namespace
}  // namespace obs
}  // namespace aerie
