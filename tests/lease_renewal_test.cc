// Lease renewal vs. batched metadata shipping (the ablation_name_cache
// webproxy flake, CHANGES PR 6). A client working entirely out of its lock
// cache performs no lock RPCs, so nothing but the clerk's background renewal
// keeps its lease alive — and that renewal shares the clerk worker with
// revoke drains, so it can stall. The lease then lapses *silently*: expiry
// is lazy (the service only reclaims locks when another client's conflicting
// acquire finds the holder expired), so the client's cached authority was
// never actually handed elsewhere — yet the TFS used to reject the whole
// shipped batch via the LeaseValid check and the flusher discarded it,
// losing acknowledged creates.
//
// The fix is renew-on-RPC in TrustedFsService::ApplyBatch (linearizable for
// a lapsed-but-unreclaimed lease; dropped locks still fail the per-op
// HeldMode checks — see tfs_test's DroppedLocksRejectBatch). These tests pin
// the behavior deterministically and under webproxy-style churn.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/open_flags.h"
#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"

namespace aerie {
namespace {

std::span<const char> Bytes(const std::string& s) {
  return std::span<const char>(s.data(), s.size());
}

// Deterministic repro of the flake: buffer creates on cached locks, stop
// renewing, let the lease lapse with no competing client, then ship. The
// batch RPC itself must renew the lease and apply cleanly.
TEST(LeaseRenewalTest, BatchRpcRenewsLapsedLease) {
  AerieSystem::Options options;
  options.region_bytes = 64ull << 20;
  options.lock.lease_ms = 50;
  auto sys = AerieSystem::Create(options);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();

  LibFs::Options copts;
  copts.flush_interval_ms = 0;  // no background flusher: ops buffer to Sync
  auto client = (*sys)->NewClient(copts);
  ASSERT_TRUE(client.ok());
  Pxfs fs((*client)->fs());

  ASSERT_TRUE(fs.Mkdir("/d").ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fs.Create("/d/f" + std::to_string(i)).ok());
  }

  // Simulate the renewal stall: no more renew RPCs, lease lapses while the
  // ops sit in the batch and every lock sits in the clerk cache.
  (*client)->fs()->clerk()->StopRenewalForTesting();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_FALSE((*sys)->lock_service()->LeaseValid((*client)->id()));

  // Pre-fix: the ship was rejected kLockRevoked and silently discarded.
  EXPECT_TRUE(fs.SyncAll().ok());
  EXPECT_EQ((*client)->fs()->batches_ship_failed(), 0u);
  // The RPC restored the lease on its way in.
  EXPECT_TRUE((*sys)->lock_service()->LeaseValid((*client)->id()));

  // Every acknowledged create is visible to a fresh client.
  auto client2 = (*sys)->NewClient();
  ASSERT_TRUE(client2.ok());
  Pxfs fs2((*client2)->fs());
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(fs2.Stat("/d/f" + std::to_string(i)).ok())
        << "/d/f" << i << " lost: batch was discarded after lease lapse";
  }
}

// Webproxy-style churn: leases shorter than the renewal interval, and a
// workload that — after the first create warms the directory lock — runs
// entirely on cached locks, exactly like the name-cache webproxy bench. No
// other client contends, so the lapsed leases are never reclaimed (expiry is
// lazy), and only op RPCs — pool refills and the batch ships themselves —
// ever touch the service. Every batch therefore ships under a lapsed lease
// and must still apply. Two clients run the same loop in disjoint
// directories to add service-side interleaving without lock conflicts
// (conflicts would legitimately fence a lapsed client, a different
// scenario covered by tfs_test's DroppedLocksRejectBatch).
TEST(LeaseRenewalTest, ShortLeaseChurnLosesNoAcknowledgedCreates) {
  AerieSystem::Options options;
  options.region_bytes = 64ull << 20;
  options.lock.lease_ms = 40;
  auto sys = AerieSystem::Create(options);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();

  LibFs::Options copts;
  copts.flush_interval_ms = 0;
  copts.clerk.renew_interval_ms = 60'000;  // renewal never fires in-test
  auto a = (*sys)->NewClient(copts);
  auto b = (*sys)->NewClient(copts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Pxfs fa((*a)->fs());
  Pxfs fb((*b)->fs());
  // Establish disjoint cached authority while both leases are live: after
  // the warmup create each client holds its own directory's write lock
  // (plus a shared root intent lock), so no later operation conflicts — a
  // conflict against a lapsed holder would legitimately fence it.
  ASSERT_TRUE(fa.Mkdir("/pa").ok());
  ASSERT_TRUE(fa.Mkdir("/pb").ok());
  std::vector<std::string> paths;
  const std::string payload = "proxy-object";
  auto create = [&](Pxfs& fs, const std::string& path) {
    auto fd = fs.Open(path, kOpenCreate | kOpenWrite);
    ASSERT_TRUE(fd.ok()) << path << ": " << fd.status().ToString();
    ASSERT_TRUE(fs.Write(*fd, Bytes(payload)).ok()) << path;
    ASSERT_TRUE(fs.Close(*fd).ok()) << path;
    paths.push_back(path);
  };
  create(fa, "/pa/warm");
  create(fb, "/pb/warm");
  ASSERT_TRUE(fa.SyncAll().ok());
  ASSERT_TRUE(fb.SyncAll().ok());

  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 8; ++i) {
      const int seq = round * 8 + i;
      create(fa, "/pa/o" + std::to_string(seq));
      create(fb, "/pb/o" + std::to_string(seq));
    }
    // Let both leases lapse with the burst still buffered, then ship: the
    // batch RPC arrives under a lapsed (but unreclaimed) lease every round.
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_FALSE((*sys)->lock_service()->LeaseValid((*a)->id()));
    ASSERT_TRUE(fa.SyncAll().ok());
    ASSERT_TRUE(fb.SyncAll().ok());
  }
  EXPECT_EQ((*a)->fs()->batches_ship_failed(), 0u);
  EXPECT_EQ((*b)->fs()->batches_ship_failed(), 0u);

  auto reader = (*sys)->NewClient();
  ASSERT_TRUE(reader.ok());
  Pxfs fr((*reader)->fs());
  for (const auto& path : paths) {
    auto st = fr.Stat(path);
    EXPECT_TRUE(st.ok()) << path << " lost under short-lease churn";
    if (st.ok()) {
      EXPECT_EQ(st->size, payload.size()) << path;
    }
  }
}

}  // namespace
}  // namespace aerie
