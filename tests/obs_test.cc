// Tests for the observability layer: registry, counters, gauges,
// histograms, trace spans, mode gating and exporters.
#include "src/obs/obs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/obs/bench_report.h"

namespace aerie {
namespace obs {
namespace {

// Every test starts from counters mode with zeroed metrics; the registry is
// process-global, so tests share interned metrics but never their values.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMode(Mode::kCounters);
    ResetAll();
  }
  void TearDown() override {
    SetMode(Mode::kCounters);
    ResetAll();
  }
};

TEST_F(ObsTest, CounterBasics) {
  Counter& c = Registry::Instance().GetCounter("test.counter.basic");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(c.load(), 42u);  // atomic-compatible alias
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, InterningReturnsSameMetric) {
  Counter& a = Registry::Instance().GetCounter("test.counter.interned");
  Counter& b = Registry::Instance().GetCounter("test.counter.interned");
  EXPECT_EQ(&a, &b);
  SpanStat& s1 = Registry::Instance().GetSpan("test.span.interned");
  SpanStat& s2 = Registry::Instance().GetSpan("test.span.interned");
  EXPECT_EQ(&s1, &s2);
}

TEST_F(ObsTest, GaugeSetAddSub) {
  Gauge& g = Registry::Instance().GetGauge("test.gauge.basic");
  g.Set(10);
  g.Add(5);
  g.Sub(3);
  EXPECT_EQ(g.value(), 12);
}

TEST_F(ObsTest, ConcurrentCounterIncrements) {
  Counter& c = Registry::Instance().GetCounter("test.counter.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, ConcurrentHistogramRecords) {
  LatencyHistogram& h =
      Registry::Instance().GetHistogram("test.hist.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * 1000 + (i % 100)));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.Snapshot().count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, OffModeRecordsNothing) {
  Counter& c = Registry::Instance().GetCounter("test.counter.off");
  Gauge& g = Registry::Instance().GetGauge("test.gauge.off");
  LatencyHistogram& h = Registry::Instance().GetHistogram("test.hist.off");
  SpanStat& s = Registry::Instance().GetSpan("test.span.off");

  SetMode(Mode::kOff);
  c.Add(7);
  g.Set(7);
  h.Record(7);
  {
    ScopedSpan span(SpansOn() ? &s : nullptr);
    SpinDelayNanos(100);
  }
  { AERIE_SPAN("test", "off_macro"); }
  AERIE_COUNT("test.counter.off_macro");
  SetMode(Mode::kCounters);

  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.Snapshot().count(), 0u);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(Registry::Instance().GetSpan("test.off_macro").count(), 0u);
  EXPECT_EQ(Registry::Instance()
                .GetCounter("test.counter.off_macro")
                .value(),
            0u);
}

TEST_F(ObsTest, CountersModeDoesNotRecordSpans) {
  SpanStat& s = Registry::Instance().GetSpan("test.span.counters_mode");
  ASSERT_EQ(CurrentMode(), Mode::kCounters);
  { AERIE_SPAN("test", "span.counters_mode"); }
  EXPECT_EQ(s.count(), 0u);
}

TEST_F(ObsTest, SpanRecordsInSpanMode) {
  SetMode(Mode::kSpans);
  SpanStat& s = Registry::Instance().GetSpan("test.span.basic");
  {
    ScopedSpan span(&s);
    SpinDelayNanos(20'000);
  }
  EXPECT_EQ(s.count(), 1u);
  EXPECT_GE(s.total_ns(), 20'000u);
  EXPECT_EQ(s.total_ns(), s.self_ns());  // no children
  EXPECT_EQ(s.SelfSnapshot().count(), 1u);
}

TEST_F(ObsTest, SpanNestingAttributesSelfTime) {
  SetMode(Mode::kSpans);
  SpanStat& parent = Registry::Instance().GetSpan("test.span.parent");
  SpanStat& child = Registry::Instance().GetSpan("test.span.child");
  {
    ScopedSpan outer(&parent);
    SpinDelayNanos(30'000);
    {
      ScopedSpan inner(&child);
      SpinDelayNanos(30'000);
    }
    SpinDelayNanos(30'000);
  }
  EXPECT_EQ(parent.count(), 1u);
  EXPECT_EQ(child.count(), 1u);
  // The child's wall time is subtracted from the parent's self time, and
  // the arithmetic is exact: parent self + child total == parent total.
  EXPECT_EQ(parent.self_ns() + child.total_ns(), parent.total_ns());
  EXPECT_GE(child.total_ns(), 30'000u);
  EXPECT_GE(parent.self_ns(), 60'000u);
  EXPECT_LT(parent.self_ns(), parent.total_ns());
}

TEST_F(ObsTest, SpanChainSurvivesThreeLevels) {
  SetMode(Mode::kSpans);
  SpanStat& a = Registry::Instance().GetSpan("test.span3.a");
  SpanStat& b = Registry::Instance().GetSpan("test.span3.b");
  SpanStat& c = Registry::Instance().GetSpan("test.span3.c");
  {
    ScopedSpan sa(&a);
    SpinDelayNanos(5'000);
    {
      ScopedSpan sb(&b);
      SpinDelayNanos(5'000);
      {
        ScopedSpan sc(&c);
        SpinDelayNanos(5'000);
      }
    }
  }
  EXPECT_EQ(b.self_ns() + c.total_ns(), b.total_ns());
  EXPECT_EQ(a.self_ns() + b.total_ns(), a.total_ns());
}

TEST_F(ObsTest, SpansAreThreadLocal) {
  SetMode(Mode::kSpans);
  SpanStat& parent = Registry::Instance().GetSpan("test.span.tls_parent");
  SpanStat& other = Registry::Instance().GetSpan("test.span.tls_other");
  {
    ScopedSpan outer(&parent);
    // A span on another thread must NOT become our child.
    std::thread t([&other] {
      ScopedSpan inner(&other);
      SpinDelayNanos(50'000);
    });
    t.join();
  }
  EXPECT_EQ(parent.count(), 1u);
  EXPECT_EQ(other.count(), 1u);
  // other ran on its own thread: parent's self time equals its total.
  EXPECT_EQ(parent.self_ns(), parent.total_ns());
}

TEST_F(ObsTest, InstanceMetricsAggregateByName) {
  const uint64_t base =
      [] {
        for (const auto& snap : Registry::Instance().Collect()) {
          if (snap.name == "test.instance.shared") {
            return snap.counter;
          }
        }
        return uint64_t{0};
      }();
  Counter a("test.instance.shared");
  Counter b("test.instance.shared");
  ScopedRegistration reg;
  reg.AddAll(a, b);
  a.Add(3);
  b.Add(4);
  bool found = false;
  for (const auto& snap : Registry::Instance().Collect()) {
    if (snap.name == "test.instance.shared") {
      EXPECT_EQ(snap.counter, base + 7);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, UnregisteredInstanceDisappears) {
  const size_t before = Registry::Instance().MetricCountForTesting();
  {
    Counter c("test.instance.transient");
    ScopedRegistration reg;
    reg.Add(&c);
    EXPECT_EQ(Registry::Instance().MetricCountForTesting(), before + 1);
  }
  EXPECT_EQ(Registry::Instance().MetricCountForTesting(), before);
}

TEST_F(ObsTest, RegistryIterationStableUnderConcurrentMutation) {
  std::atomic<bool> stop{false};
  // Readers snapshot the registry while writers register/unregister
  // instance metrics and intern new names.
  std::thread reader([&stop] {
    while (!stop.load()) {
      auto snaps = Registry::Instance().Collect();
      // Snapshot must be sorted and free of duplicate names.
      for (size_t i = 1; i < snaps.size(); ++i) {
        ASSERT_LT(snaps[i - 1].name, snaps[i].name);
      }
      (void)DumpText();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([w, &stop] {
      int round = 0;
      while (!stop.load()) {
        Counter c("test.churn.instance" + std::to_string(w));
        ScopedRegistration reg;
        reg.Add(&c);
        c.Add(1);
        Registry::Instance()
            .GetCounter("test.churn.interned" + std::to_string(w) + "." +
                        std::to_string(round % 8))
            .Add(1);
        round++;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  reader.join();
  for (auto& t : writers) {
    t.join();
  }
}

TEST_F(ObsTest, KindClashYieldsFallbackMetric) {
  Registry::Instance().GetCounter("test.clash.name");
  // Asking for the same name as a different kind must not crash or corrupt
  // the counter; it returns a distinct fallback metric.
  Gauge& g = Registry::Instance().GetGauge("test.clash.name");
  g.Set(5);
  EXPECT_EQ(Registry::Instance().GetCounter("test.clash.name").value(), 0u);
}

TEST_F(ObsTest, ParseModeSpellings) {
  EXPECT_EQ(ParseMode("off"), Mode::kOff);
  EXPECT_EQ(ParseMode("0"), Mode::kOff);
  EXPECT_EQ(ParseMode("none"), Mode::kOff);
  EXPECT_EQ(ParseMode("counters"), Mode::kCounters);
  EXPECT_EQ(ParseMode("1"), Mode::kCounters);
  EXPECT_EQ(ParseMode("spans"), Mode::kSpans);
  EXPECT_EQ(ParseMode("2"), Mode::kSpans);
  EXPECT_EQ(ParseMode("all"), Mode::kSpans);
  EXPECT_EQ(ParseMode("garbage"), Mode::kCounters);
}

TEST_F(ObsTest, DumpJsonContainsMetricsAndLayers) {
  SetMode(Mode::kSpans);
  Registry::Instance().GetCounter("test.json.counter").Add(3);
  {
    AERIE_SPAN("testlayer", "op");
    SpinDelayNanos(1'000);
  }
  const std::string json = DumpJson();
  // Downstream parsers key on an explicit schema version, leading the dump.
  EXPECT_EQ(json.rfind("{\"schema_version\":1,", 0), 0u);
  EXPECT_NE(json.find("\"test.json.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"testlayer.op\""), std::string::npos);
  EXPECT_NE(json.find("\"layers\""), std::string::npos);
  EXPECT_NE(json.find("\"testlayer\""), std::string::npos);

  const std::string text = DumpText();
  EXPECT_NE(text.find("test.json.counter"), std::string::npos);

  const std::string table = LayerBreakdownText();
  EXPECT_NE(table.find("testlayer"), std::string::npos);
}

TEST_F(ObsTest, BenchReportJsonShape) {
  SetMode(Mode::kSpans);
  {
    AERIE_SPAN("benchlayer", "hot_op");
    SpinDelayNanos(5'000);
  }
  BenchReport report("unit_test_bench");
  report.SetConfig("scale", 0.5);
  report.SetConfig("mode", std::string("quick"));
  Histogram h;
  h.Record(1000);
  h.Record(3000);
  report.AddLatency("pxfs.op", h);
  report.AddThroughput("pxfs.iters", 1234.5);
  report.AddValue("vfs.stat.avg_us", 3.25, "us");
  report.CaptureAttribution();

  const std::string json = report.ToJson();
  EXPECT_EQ(json.rfind("{\"schema_version\":1,", 0), 0u);
  EXPECT_NE(json.find("\"bench\":\"unit_test_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\":"), std::string::npos);
  EXPECT_NE(json.find("\"scale\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"quick\""), std::string::npos);
  // Latency metrics derive ops_per_sec from the mean (2us -> 500k/s).
  EXPECT_NE(json.find("\"name\":\"pxfs.op\",\"ops_per_sec\":500000"),
            std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\":{\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pxfs.iters\",\"ops_per_sec\":1234.5"),
            std::string::npos);
  EXPECT_NE(json.find("\"value\":3.25,\"unit\":\"us\""), std::string::npos);
  // The span recorded above must surface both as a layer row and a ranked
  // hot-span row.
  EXPECT_NE(json.find("\"layer\":\"benchlayer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"benchlayer.hot_op\",\"count\":1"),
            std::string::npos);
}

TEST_F(ObsTest, RpcMethodStatsUseRegisteredNames) {
  SetRpcMethodName(0xbeef, "test.method");
  RpcMethodStats& stats = RpcMethodStatsFor(0xbeef);
  stats.calls.Add(1);
  stats.bytes_out.Add(100);
  EXPECT_EQ(
      Registry::Instance().GetCounter("rpc.test.method.calls").value(), 1u);
  // Same method id resolves to the same stats block.
  EXPECT_EQ(&RpcMethodStatsFor(0xbeef), &stats);
  // Unnamed methods render in hex.
  RpcMethodStats& anon = RpcMethodStatsFor(0x7a7a);
  anon.calls.Add(2);
  EXPECT_EQ(Registry::Instance().GetCounter("rpc.m7a7a.calls").value(), 2u);
}

TEST_F(ObsTest, ResetAllZeroesEverything) {
  SetMode(Mode::kSpans);
  Counter& c = Registry::Instance().GetCounter("test.reset.counter");
  SpanStat& s = Registry::Instance().GetSpan("test.reset.span");
  c.Add(9);
  {
    ScopedSpan span(&s);
    SpinDelayNanos(100);
  }
  ResetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.total_ns(), 0u);
  EXPECT_EQ(s.SelfSnapshot().count(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace aerie
