// Cache-line crash-state enumeration tests (ISSUE: persistence-ordering
// crash checker). Three layers:
//
//  * CrashSimTest.CleanSweep*: the full system runs a create/write workload
//    under the simulator; every enumerated crash image must reboot, recover,
//    pass fsck, and contain every acknowledged op (prefix semantics).
//  * CrashSimTest.RedoLog*: the redo log alone under the simulator, covering
//    the torn-truncate window, Rollback after a partial append, and the
//    kOutOfSpace apply+truncate boundary.
//  * CrashMutationTest.*: suppress one registered flush site in the txlog
//    commit path and require the checker to report corruption — mutation
//    testing of the checker itself (a checker that cannot see injected bugs
//    proves nothing by passing).
//
// The sweep honors AERIE_CRASH_SAMPLES / AERIE_CRASH_SEED (nightly CI knobs)
// via CrashSimOptions::FromEnv. A failure prints (seed, point, draw); replay
// it with CrashSimOptions::replay_point / replay_draw (see README).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"
#include "src/scm/crash_sim.h"
#include "src/tfs/fsck.h"
#include "src/txlog/redo_log.h"

namespace aerie {
namespace {

// --- Full-system harness --------------------------------------------------

constexpr uint64_t kRegionBytes = 8ull << 20;

AerieSystem::Options SmallSystemOptions() {
  AerieSystem::Options options;
  options.region_bytes = kRegionBytes;
  options.volume.log_bytes = 1ull << 20;
  return options;
}

LibFs::Options EagerClientOptions() {
  LibFs::Options options;
  options.eager_ship = true;      // every op round-trips before returning
  options.flush_interval_ms = 0;  // no background flusher thread
  options.pool_low_water = 4;
  options.pool_refill = 64;
  return options;
}

// Paths with varying name lengths so record sizes differ batch to batch —
// a stale commit pointer then lands mid-record instead of on a boundary.
std::vector<std::string> MakePaths(int n) {
  std::vector<std::string> paths;
  for (int i = 0; i < n; ++i) {
    std::string name(1 + (i * 7) % 23, static_cast<char>('a' + i % 26));
    paths.push_back("/w/" + std::to_string(i) + "_" + name);
  }
  return paths;
}

std::string PayloadFor(const std::string& path) { return "payload " + path; }

// Reboots an independent AerieSystem on the crash image, requires recovery +
// fsck to succeed and every acknowledged op to be present and intact.
// `durable` is captured by pointer: the workload appends each path after its
// ops are acknowledged, and the single eager-ship client is blocked inside
// the shipping RPC whenever the simulator (and thus this checker) runs.
CrashSimulator::Checker SystemChecker(const std::vector<std::string>* durable) {
  return [durable](const std::string& image_path) -> Status {
    AerieSystem::Options options = SmallSystemOptions();
    options.region_path = image_path;
    options.fresh = false;
    auto sys = AerieSystem::Create(options);
    if (!sys.ok()) {
      return Status(ErrorCode::kCorrupted,
                    "reboot/recovery failed: " + sys.status().ToString());
    }
    auto report = RunFsck((*sys)->volume());
    if (!report.ok()) {
      return report.status();
    }
    if (!report->ok()) {
      return Status(ErrorCode::kCorrupted, "fsck: " + report->Summary());
    }
    auto client = (*sys)->NewClient();
    if (!client.ok()) {
      return client.status();
    }
    Pxfs fs((*client)->fs());
    for (const auto& path : *durable) {
      auto st = fs.Stat(path);
      if (!st.ok()) {
        return Status(ErrorCode::kCorrupted,
                      "acknowledged path missing: " + path);
      }
      if (st->is_dir) {
        continue;
      }
      const std::string want = PayloadFor(path);
      auto fd = fs.Open(path, kOpenRead);
      if (!fd.ok()) {
        return fd.status();
      }
      char buf[128] = {};
      auto n = fs.Read(*fd, std::span<char>(buf, sizeof(buf)));
      Status close = fs.Close(*fd);
      if (!n.ok()) {
        return n.status();
      }
      if (!close.ok()) {
        return close;
      }
      if (std::string_view(buf, *n) != want) {
        return Status(ErrorCode::kCorrupted,
                      "acknowledged content damaged: " + path);
      }
    }
    return OkStatus();
  };
}

struct SystemUnderTest {
  std::unique_ptr<AerieSystem> sys;
  std::unique_ptr<AerieSystem::Client> client;
  std::unique_ptr<Pxfs> fs;
  std::vector<std::string> durable;
};

// Boots a fresh system and primes it (client pools granted, /w created)
// so a simulator attached afterwards spends its image budget on the
// create/write protocol rather than on connection bootstrap.
SystemUnderTest BootPrimedSystem() {
  SystemUnderTest t;
  auto sys = AerieSystem::Create(SmallSystemOptions());
  EXPECT_TRUE(sys.ok()) << sys.status().ToString();
  t.sys = std::move(*sys);
  auto client = t.sys->NewClient(EagerClientOptions());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  t.client = std::move(*client);
  t.fs = std::make_unique<Pxfs>(t.client->fs());
  EXPECT_TRUE(t.fs->Mkdir("/w").ok());
  t.durable.push_back("/w");
  // Trigger the initial pool refill before the simulator attaches.
  EXPECT_TRUE(t.fs->Create("/w/prime").ok());
  const std::string data = PayloadFor("/w/prime");
  auto fd = t.fs->Open("/w/prime", kOpenWrite);
  EXPECT_TRUE(fd.ok());
  EXPECT_TRUE(t.fs->Write(*fd, std::span<const char>(data.data(),
                                                     data.size()))
                  .ok());
  EXPECT_TRUE(t.fs->Close(*fd).ok());
  t.durable.push_back("/w/prime");
  return t;
}

// Create + write + close each path, recording it as durable once all its
// ops have been acknowledged by the TFS.
void RunWorkload(SystemUnderTest* t, const std::vector<std::string>& paths) {
  for (const auto& path : paths) {
    auto fd = t->fs->Open(path, kOpenCreate | kOpenWrite);
    ASSERT_TRUE(fd.ok()) << path << ": " << fd.status().ToString();
    const std::string data = PayloadFor(path);
    ASSERT_TRUE(
        t->fs->Write(*fd, std::span<const char>(data.data(), data.size()))
            .ok())
        << path;
    ASSERT_TRUE(t->fs->Close(*fd).ok()) << path;
    t->durable.push_back(path);
  }
}

std::string UniqueImagePath(const char* tag) {
  return ::testing::TempDir() + "/aerie_crash_" + tag + ".img";
}

// --- Registry -------------------------------------------------------------

TEST(CrashSimTest, PersistSiteRegistryAssignsStableIds) {
  auto& reg = PersistSiteRegistry::Instance();
  const int a = reg.Register("test.site.alpha");
  const int b = reg.Register("test.site.beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, reg.Register("test.site.alpha"));  // idempotent by name
  EXPECT_EQ(a, reg.Find("test.site.alpha"));
  EXPECT_EQ(reg.Name(a), "test.site.alpha");
  EXPECT_EQ(reg.Find("test.site.never.registered"), -1);
  EXPECT_EQ(reg.Name(-1), "");
}

// --- Clean sweep ----------------------------------------------------------

// The acceptance sweep: 500 crash images over the create/write protocol,
// every one of which must recover to a consistent, prefix-correct volume.
TEST(CrashSimTest, CleanSweepRecoversEveryEnumeratedState) {
  SystemUnderTest t = BootPrimedSystem();

  CrashSimOptions options;
  options.seed = 20260807;
  options.max_images = 500;
  options.random_draws_per_point = 2;
  options.stop_on_failure = false;  // report every inconsistent state
  options.image_path = UniqueImagePath("sweep");
  options = CrashSimOptions::FromEnv(options);

  {
    CrashSimulator sim(t.sys->scm_region(), options,
                       SystemChecker(&t.durable));
    RunWorkload(&t, MakePaths(10));
    EXPECT_TRUE(sim.ok()) << sim.Report();
    // The workload yields ~125 interest points; a reduced AERIE_CRASH_SAMPLES
    // budget caps the image count instead.
    EXPECT_GE(sim.images_checked(),
              std::min<uint64_t>(50, static_cast<uint64_t>(options.max_images)))
        << sim.Report();
    std::fprintf(stderr, "%s\n", sim.Report().c_str());
  }
  // The primary system never saw a crash; it must still be healthy.
  ASSERT_TRUE(t.fs->SyncAll().ok());
  auto report = RunFsck(t.sys->volume());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  ::unlink(options.image_path.c_str());
}

// --- Determinism / replay -------------------------------------------------

// Image hashes keyed by enumeration order; used to prove (seed, point, draw)
// replays the exact image bytes.
CrashSimulator::Checker HashingChecker(std::vector<uint64_t>* hashes) {
  return [hashes](const std::string& image_path) -> Status {
    FILE* f = std::fopen(image_path.c_str(), "rb");
    if (f == nullptr) {
      return Status(ErrorCode::kIoError, "image open failed");
    }
    std::string bytes;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.append(buf, n);
    }
    std::fclose(f);
    hashes->push_back(HashBytes(bytes.data(), bytes.size()));
    return OkStatus();
  };
}

// A small deterministic redo-log workload used by the determinism and
// edge-case tests: records with type-derived payloads on a tiny region.
std::string RecordPayload(uint32_t type) {
  return std::string(1 + type % 29, static_cast<char>('A' + type % 26));
}

TEST(CrashSimTest, SeedPointDrawReplaysTheExactImage) {
  const std::string image = UniqueImagePath("replay");
  CrashSimOptions base;
  base.seed = 77;
  base.random_draws_per_point = 3;
  base.max_images = 200;
  base.image_path = image;

  auto run = [&](const CrashSimOptions& options,
                 std::vector<uint64_t>* hashes) {
    auto region = ScmRegion::CreateAnonymous(64 << 10);
    ASSERT_TRUE(region.ok());
    auto log = RedoLog::Format(region->get(), 0, 4096);
    ASSERT_TRUE(log.ok());
    CrashSimulator sim(region->get(), options, HashingChecker(hashes));
    for (uint32_t type = 0; type < 6; ++type) {
      const std::string payload = RecordPayload(type);
      ASSERT_TRUE(log->Append(type, {payload.data(), payload.size()}).ok());
      ASSERT_TRUE(log->Commit().ok());
    }
    log->Truncate();
    EXPECT_TRUE(sim.ok()) << sim.Report();
  };

  std::vector<uint64_t> first, second;
  run(base, &first);
  run(base, &second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same seed, same workload, different images";

  // Replay one (point, draw) pair; with stride 1 and an ample budget the
  // enumeration order is point * draws_per_point + draw.
  const int draws_per_point = 2 + base.random_draws_per_point;
  const int64_t point = static_cast<int64_t>(first.size()) /
                        draws_per_point / 2;  // some mid-workload point
  const int draw = draws_per_point - 1;       // a seeded random draw
  CrashSimOptions replay = base;
  replay.replay_point = point;
  replay.replay_draw = draw;
  std::vector<uint64_t> replayed;
  run(replay, &replayed);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], first[static_cast<size_t>(point) * draws_per_point +
                               draw]);
  ::unlink(image.c_str());
}

// --- Redo-log edge cases under the simulator ------------------------------

// Shared oracle: reopen the image, replay, and require every record to be
// intact (payload matches its type) with strictly increasing types and none
// drawn from `forbidden` (rolled-back appends must never replay).
CrashSimulator::Checker RedoLogChecker(std::vector<uint32_t> forbidden) {
  return [forbidden](const std::string& image_path) -> Status {
    auto region = ScmRegion::OpenFileBacked(image_path, 64 << 10);
    if (!region.ok()) {
      return region.status();
    }
    auto log = RedoLog::Open(region->get(), 0);
    if (!log.ok()) {
      return log.status();
    }
    int64_t last_type = -1;
    return log->Replay([&](uint32_t type,
                           std::span<const char> payload) -> Status {
      for (uint32_t bad : forbidden) {
        if (type == bad) {
          return Status(ErrorCode::kCorrupted,
                        "rolled-back record replayed: type " +
                            std::to_string(type));
        }
      }
      if (static_cast<int64_t>(type) <= last_type) {
        return Status(ErrorCode::kCorrupted, "record order corrupted");
      }
      last_type = type;
      const std::string want = RecordPayload(type);
      if (std::string_view(payload.data(), payload.size()) != want) {
        return Status(ErrorCode::kCorrupted,
                      "record payload corrupted: type " +
                          std::to_string(type));
      }
      return OkStatus();
    });
  };
}

struct RawLogFixture {
  std::unique_ptr<ScmRegion> region;
  std::optional<RedoLog> log;
};

RawLogFixture MakeRawLog(uint64_t log_bytes = 4096) {
  RawLogFixture f;
  auto region = ScmRegion::CreateAnonymous(64 << 10);
  EXPECT_TRUE(region.ok());
  f.region = std::move(*region);
  auto log = RedoLog::Format(f.region.get(), 0, log_bytes);
  EXPECT_TRUE(log.ok());
  f.log.emplace(std::move(*log));
  return f;
}

// Truncate publishes head=0 while stale record bytes still follow; the next
// batch then streams fresh bytes over them. No enumerated state may replay
// a mix of the two generations.
TEST(CrashSimTest, RedoLogTornTruncateWindowIsSafe) {
  RawLogFixture f = MakeRawLog();
  CrashSimOptions options;
  options.seed = 31;
  options.random_draws_per_point = 3;
  options.max_images = 400;
  options.stop_on_failure = false;
  options.image_path = UniqueImagePath("torn_truncate");
  CrashSimulator sim(f.region.get(), options, RedoLogChecker({}));

  uint32_t type = 0;
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 2; ++i, ++type) {
      const std::string payload = RecordPayload(type);
      ASSERT_TRUE(
          f.log->Append(type, {payload.data(), payload.size()}).ok());
    }
    ASSERT_TRUE(f.log->Commit().ok());
    f.log->Truncate();
  }
  EXPECT_TRUE(sim.ok()) << sim.Report();
  EXPECT_GT(sim.images_checked(), 0u);
  ::unlink(options.image_path.c_str());
}

// A record appended but rolled back (failed batch) must never replay, even
// though its bytes may linger in the record area across any crash state.
TEST(CrashSimTest, RedoLogRollbackAfterPartialAppendNeverReplays) {
  RawLogFixture f = MakeRawLog();
  constexpr uint32_t kAbandoned = 7;
  CrashSimOptions options;
  options.seed = 32;
  options.random_draws_per_point = 3;
  options.max_images = 400;
  options.stop_on_failure = false;
  options.image_path = UniqueImagePath("rollback");
  CrashSimulator sim(f.region.get(), options, RedoLogChecker({kAbandoned}));

  std::string payload = RecordPayload(3);
  ASSERT_TRUE(f.log->Append(3, {payload.data(), payload.size()}).ok());
  ASSERT_TRUE(f.log->Commit().ok());
  // A batch that fails mid-append: its record is abandoned via Rollback.
  payload = RecordPayload(kAbandoned);
  ASSERT_TRUE(
      f.log->Append(kAbandoned, {payload.data(), payload.size()}).ok());
  f.log->Rollback();
  // The retry appends different (shorter) records over the abandoned bytes.
  payload = RecordPayload(8);
  ASSERT_TRUE(f.log->Append(8, {payload.data(), payload.size()}).ok());
  ASSERT_TRUE(f.log->Commit().ok());
  EXPECT_TRUE(sim.ok()) << sim.Report();
  ::unlink(options.image_path.c_str());
}

// The service's kOutOfSpace path: Rollback the failed append, checkpoint
// (Truncate), and retry. Every crash state across the boundary must replay
// cleanly.
TEST(CrashSimTest, RedoLogOutOfSpaceTruncateBoundaryIsSafe) {
  RawLogFixture f = MakeRawLog(/*log_bytes=*/512);
  CrashSimOptions options;
  options.seed = 33;
  options.random_draws_per_point = 3;
  options.max_images = 500;
  options.stop_on_failure = false;
  options.image_path = UniqueImagePath("oos");
  CrashSimulator sim(f.region.get(), options, RedoLogChecker({}));

  int truncations = 0;
  for (uint32_t type = 0; type < 72; ++type) {
    const std::string payload = RecordPayload(type);
    Status st = f.log->Append(type, {payload.data(), payload.size()});
    if (st.code() == ErrorCode::kOutOfSpace) {
      // Mirror TrustedFsService::ApplyBatch: drop the partial append,
      // checkpoint the applied records, retry once.
      f.log->Rollback();
      f.log->Truncate();
      truncations++;
      st = f.log->Append(type, {payload.data(), payload.size()});
    }
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_TRUE(f.log->Commit().ok());
  }
  ASSERT_GT(truncations, 2) << "log too large to exercise the boundary";
  EXPECT_TRUE(sim.ok()) << sim.Report();
  ::unlink(options.image_path.c_str());
}

// --- Mutation mode --------------------------------------------------------

// Suppresses one registered persistence site in the txlog commit path and
// requires the checker to catch the resulting ordering bug.
void RunMutation(const char* site_name, const char* tag, int files) {
  SystemUnderTest t = BootPrimedSystem();
  // Registering here is idempotent with the call-site registration (the
  // registry dedups by name), so the id is available even before the first
  // commit executes.
  const int site = RegisterPersistSite(site_name);
  ASSERT_GE(site, 0);

  CrashSimOptions options;
  options.seed = 4242;
  options.max_images = 600;
  options.random_draws_per_point = 3;
  options.stop_on_failure = true;  // first corrupt image proves detection
  options.image_path = UniqueImagePath(tag);

  CrashSimulator sim(t.sys->scm_region(), options, SystemChecker(&t.durable));
  sim.SuppressSite(site);
  RunWorkload(&t, MakePaths(files));
  EXPECT_FALSE(sim.ok())
      << "suppressing " << site_name
      << " was not detected by any of the enumerated crash states\n"
      << sim.Report();
  std::fprintf(stderr, "detected %s:\n%s\n", site_name,
               sim.Report().c_str());
  ::unlink(options.image_path.c_str());
}

// Without the pre-publish BFlush the commit pointer can cover record bytes
// that never left the WC buffers.
TEST(CrashMutationTest, DetectsSuppressedCommitBFlush) {
  RunMutation("txlog.commit.bflush", "mut_bflush", 4);
}

// Without the commit-pointer flush a crash mid-apply has no committed
// record to replay: the in-place apply is torn with no redo.
TEST(CrashMutationTest, DetectsSuppressedCommitPublishFlush) {
  RunMutation("txlog.commit.publish.flush", "mut_publish", 4);
}

// Without the truncate flush the stale (larger) head survives a checkpoint
// and covers a mix of fresh and stale record bytes on the next batch.
TEST(CrashMutationTest, DetectsSuppressedTruncatePublishFlush) {
  RunMutation("txlog.truncate.publish.flush", "mut_truncate", 8);
}

}  // namespace
}  // namespace aerie
