// Tests for the mFile object: radix tree growth, sparse reads, in-place
// writes, truncation, single-extent mode, destroy, property sweep.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>

#include "src/common/rand.h"
#include "src/osd/mfile.h"
#include "src/osd/volume.h"

namespace aerie {
namespace {

class MFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto region = ScmRegion::CreateAnonymous(128 << 20);
    ASSERT_TRUE(region.ok());
    region_ = std::move(*region);
    auto volume = Volume::Format(region_.get(), 0, region_->size(),
                                 Volume::Options{.log_bytes = 1 << 20});
    ASSERT_TRUE(volume.ok());
    volume_ = std::move(*volume);
    ctx_ = volume_->context();
  }

  uint64_t NewExtent() {
    auto offset = ctx_.alloc->Alloc(0);
    EXPECT_TRUE(offset.ok());
    std::memset(ctx_.region->PtrAt(*offset), 0, kScmPageSize);
    return *offset;
  }

  std::unique_ptr<ScmRegion> region_;
  std::unique_ptr<Volume> volume_;
  OsdContext ctx_;
};

TEST_F(MFileTest, CreateOpenEmpty) {
  auto file = MFile::Create(ctx_, 7);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->size(), 0u);
  EXPECT_EQ(file->acl(), 7u);
  EXPECT_FALSE(file->single_extent());
  EXPECT_EQ(file->ExtentForPage(0).code(), ErrorCode::kNotFound);
  auto reopened = MFile::Open(ctx_, file->oid());
  ASSERT_TRUE(reopened.ok());
}

TEST_F(MFileTest, AttachAndReadBack) {
  auto file = MFile::Create(ctx_, 0);
  ASSERT_TRUE(file.ok());
  const uint64_t extent = NewExtent();
  std::memcpy(ctx_.region->PtrAt(extent), "page zero data", 14);
  ASSERT_TRUE(file->AttachExtent(0, extent).ok());
  ASSERT_TRUE(file->SetSize(14).ok());

  char buf[32] = {};
  auto n = file->Read(0, std::span<char>(buf, sizeof(buf)));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 14u);
  EXPECT_EQ(std::string_view(buf, 14), "page zero data");
  EXPECT_EQ(*file->ExtentForPage(0), extent);
}

TEST_F(MFileTest, DoubleAttachRejected) {
  auto file = MFile::Create(ctx_, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->AttachExtent(0, NewExtent()).ok());
  EXPECT_EQ(file->AttachExtent(0, NewExtent()).code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(MFileTest, TreeGrowsAcrossLevels) {
  auto file = MFile::Create(ctx_, 0);
  ASSERT_TRUE(file.ok());
  // Page indexes forcing height 1, 2 and 3 (512 pointers per block).
  const uint64_t pages[] = {0, 511, 512, 262143, 262144, 1000000};
  std::map<uint64_t, uint64_t> attached;
  for (uint64_t p : pages) {
    const uint64_t extent = NewExtent();
    ASSERT_TRUE(file->AttachExtent(p, extent).ok()) << p;
    attached[p] = extent;
  }
  for (const auto& [page, extent] : attached) {
    auto found = file->ExtentForPage(page);
    ASSERT_TRUE(found.ok()) << page;
    EXPECT_EQ(*found, extent);
  }
  // Holes in between are still holes.
  EXPECT_EQ(file->ExtentForPage(100).code(), ErrorCode::kNotFound);
  EXPECT_TRUE(file->Validate().ok());
}

TEST_F(MFileTest, SparseReadsReturnZeros) {
  auto file = MFile::Create(ctx_, 0);
  ASSERT_TRUE(file.ok());
  const uint64_t extent = NewExtent();
  std::memset(ctx_.region->PtrAt(extent), 0xee, kScmPageSize);
  ASSERT_TRUE(file->AttachExtent(2, extent).ok());
  ASSERT_TRUE(file->SetSize(3 * kScmPageSize).ok());

  std::string buf(3 * kScmPageSize, 'x');
  auto n = file->Read(0, std::span<char>(buf.data(), buf.size()));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3 * kScmPageSize);
  EXPECT_EQ(buf[0], '\0');
  EXPECT_EQ(buf[2 * kScmPageSize - 1], '\0');
  EXPECT_EQ(static_cast<unsigned char>(buf[2 * kScmPageSize]), 0xee);
}

TEST_F(MFileTest, WriteInPlaceRequiresExtents) {
  auto file = MFile::Create(ctx_, 0);
  ASSERT_TRUE(file.ok());
  const char data[] = "hello";
  EXPECT_EQ(file->WriteInPlace(0, std::span<const char>(data, 5)).code(),
            ErrorCode::kNotFound);
  ASSERT_TRUE(file->AttachExtent(0, NewExtent()).ok());
  EXPECT_TRUE(file->WriteInPlace(0, std::span<const char>(data, 5)).ok());
  ctx_.region->BFlush();
  ASSERT_TRUE(file->SetSize(5).ok());
  char buf[8] = {};
  EXPECT_EQ(*file->Read(0, std::span<char>(buf, 8)), 5u);
  EXPECT_EQ(std::string_view(buf, 5), "hello");
}

TEST_F(MFileTest, CrossPageWrite) {
  auto file = MFile::Create(ctx_, 0);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->AttachExtent(0, NewExtent()).ok());
  ASSERT_TRUE(file->AttachExtent(1, NewExtent()).ok());
  std::string data(6000, 'q');
  ASSERT_TRUE(
      file->WriteInPlace(1000, std::span<const char>(data.data(), 6000))
          .ok());
  ASSERT_TRUE(file->SetSize(7000).ok());
  std::string buf(6000, '\0');
  EXPECT_EQ(*file->Read(1000, std::span<char>(buf.data(), 6000)), 6000u);
  EXPECT_EQ(buf, data);
}

TEST_F(MFileTest, TruncateFreesTail) {
  const uint64_t free_before_create = ctx_.alloc->pages_free();
  auto file = MFile::Create(ctx_, 0);
  ASSERT_TRUE(file.ok());
  const uint64_t free_start = ctx_.alloc->pages_free();
  EXPECT_EQ(free_start, free_before_create - 1);  // header page
  for (uint64_t p = 0; p < 20; ++p) {
    ASSERT_TRUE(file->AttachExtent(p, NewExtent()).ok());
  }
  ASSERT_TRUE(file->SetSize(20 * kScmPageSize).ok());
  ASSERT_TRUE(file->Truncate(5 * kScmPageSize).ok());
  EXPECT_EQ(file->size(), 5 * kScmPageSize);
  EXPECT_TRUE(file->ExtentForPage(4).ok());
  EXPECT_EQ(file->ExtentForPage(5).code(), ErrorCode::kNotFound);
  EXPECT_EQ(file->ExtentForPage(19).code(), ErrorCode::kNotFound);
  // 15 data extents came back (the root block stays).
  EXPECT_EQ(ctx_.alloc->pages_free(), free_start - 5 - 1);
  // Truncate to zero releases everything including the tree.
  ASSERT_TRUE(file->Truncate(0).ok());
  EXPECT_EQ(ctx_.alloc->pages_free(), free_start);
}

TEST_F(MFileTest, DestroyFreesEverything) {
  const uint64_t free_start = ctx_.alloc->pages_free();
  auto file = MFile::Create(ctx_, 0);
  ASSERT_TRUE(file.ok());
  for (uint64_t p = 0; p < 600; ++p) {  // forces height 2
    ASSERT_TRUE(file->AttachExtent(p, NewExtent()).ok());
  }
  ASSERT_TRUE(file->Destroy().ok());
  EXPECT_EQ(ctx_.alloc->pages_free(), free_start);
  EXPECT_EQ(MFile::Open(ctx_, file->oid()).code(), ErrorCode::kCorrupted);
}

TEST_F(MFileTest, LinkCountPersists) {
  auto file = MFile::Create(ctx_, 0);
  ASSERT_TRUE(file.ok());
  file->SetLinkCount(3);
  auto reopened = MFile::Open(ctx_, file->oid());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->link_count(), 3u);
}

TEST_F(MFileTest, ForEachExtentVisitsAll) {
  auto file = MFile::Create(ctx_, 0);
  ASSERT_TRUE(file.ok());
  std::map<uint64_t, uint64_t> attached;
  for (uint64_t p : {0ull, 7ull, 513ull, 4096ull}) {
    const uint64_t extent = NewExtent();
    ASSERT_TRUE(file->AttachExtent(p, extent).ok());
    attached[p] = extent;
  }
  std::map<uint64_t, uint64_t> seen;
  ASSERT_TRUE(file->ForEachExtent([&](uint64_t page, uint64_t extent) {
                  seen[page] = extent;
                  return true;
                })
                  .ok());
  EXPECT_EQ(seen, attached);
}

// --- Single-extent mode (FlatFS files) ---

TEST_F(MFileTest, SingleExtentCreateWriteRead) {
  auto file = MFile::CreateSingleExtent(ctx_, 0, 10000);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file->single_extent());
  EXPECT_GE(file->capacity(), 10000u);  // rounded to power-of-two pages
  std::string data(9000, 'm');
  ASSERT_TRUE(
      file->WriteInPlace(0, std::span<const char>(data.data(), data.size()))
          .ok());
  ASSERT_TRUE(file->SetSize(9000).ok());
  std::string buf(9000, '\0');
  EXPECT_EQ(*file->Read(0, std::span<char>(buf.data(), buf.size())), 9000u);
  EXPECT_EQ(buf, data);
}

TEST_F(MFileTest, SingleExtentCapacityEnforced) {
  auto file = MFile::CreateSingleExtent(ctx_, 0, 4096);
  ASSERT_TRUE(file.ok());
  std::string data(5000, 'x');
  EXPECT_EQ(
      file->WriteInPlace(0, std::span<const char>(data.data(), data.size()))
          .code(),
      ErrorCode::kOutOfSpace);
  EXPECT_EQ(file->SetSize(5000).code(), ErrorCode::kOutOfSpace);
  EXPECT_EQ(file->AttachExtent(0, NewExtent()).code(),
            ErrorCode::kNotSupported);
}

TEST_F(MFileTest, SingleExtentDestroyFreesStorage) {
  const uint64_t free_start = ctx_.alloc->pages_free();
  auto file = MFile::CreateSingleExtent(ctx_, 0, 64 << 10);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Destroy().ok());
  EXPECT_EQ(ctx_.alloc->pages_free(), free_start);
}

class MFileRandomIoTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MFileRandomIoTest, RandomWritesMatchReferenceBuffer) {
  auto region = ScmRegion::CreateAnonymous(128 << 20);
  ASSERT_TRUE(region.ok());
  auto volume = Volume::Format(region->get(), 0, (*region)->size(),
                               Volume::Options{.log_bytes = 1 << 20});
  ASSERT_TRUE(volume.ok());
  OsdContext ctx = (*volume)->context();

  auto file = MFile::Create(ctx, 0);
  ASSERT_TRUE(file.ok());
  constexpr uint64_t kFileBytes = 64 << 10;
  std::string model(kFileBytes, '\0');
  Rng rng(GetParam());

  for (int op = 0; op < 300; ++op) {
    const uint64_t offset = rng.Uniform(kFileBytes - 1);
    const uint64_t len =
        std::min<uint64_t>(1 + rng.Uniform(8000), kFileBytes - offset);
    std::string data(len, '\0');
    for (auto& ch : data) {
      ch = static_cast<char>('a' + rng.Uniform(26));
    }
    // Attach any missing pages first (client pre-allocation pattern).
    for (uint64_t p = offset / kScmPageSize;
         p <= (offset + len - 1) / kScmPageSize; ++p) {
      if (!file->ExtentForPage(p).ok()) {
        auto extent = ctx.alloc->Alloc(0);
        ASSERT_TRUE(extent.ok());
        std::memset(ctx.region->PtrAt(*extent), 0, kScmPageSize);
        ASSERT_TRUE(file->AttachExtent(p, *extent).ok());
      }
    }
    ASSERT_TRUE(
        file->WriteInPlace(offset,
                           std::span<const char>(data.data(), data.size()))
            .ok());
    std::memcpy(model.data() + offset, data.data(), len);
    if (offset + len > file->size()) {
      ASSERT_TRUE(file->SetSize(offset + len).ok());
    }
  }
  std::string buf(file->size(), '\0');
  ASSERT_EQ(*file->Read(0, std::span<char>(buf.data(), buf.size())),
            file->size());
  EXPECT_EQ(buf, model.substr(0, file->size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MFileRandomIoTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace aerie
