// Property-based tests: a collection subjected to a random op stream must
// behave exactly like a std::map reference model, across seeds (parameterized
// sweep) and across rehashes; crash points (reader view during mutation)
// must never observe torn state.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/common/rand.h"
#include "src/osd/collection.h"
#include "src/osd/volume.h"

namespace aerie {
namespace {

class CollectionPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    auto region = ScmRegion::CreateAnonymous(128 << 20);
    ASSERT_TRUE(region.ok());
    region_ = std::move(*region);
    auto volume = Volume::Format(region_.get(), 0, region_->size(),
                                 Volume::Options{.log_bytes = 1 << 20});
    ASSERT_TRUE(volume.ok());
    volume_ = std::move(*volume);
    ctx_ = volume_->context();
  }

  std::unique_ptr<ScmRegion> region_;
  std::unique_ptr<Volume> volume_;
  OsdContext ctx_;
};

TEST_P(CollectionPropertyTest, MatchesReferenceModelUnderRandomOps) {
  Rng rng(GetParam());
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  std::map<std::string, uint64_t> model;

  for (int step = 0; step < 5000; ++step) {
    const uint64_t key_num = rng.Uniform(400);
    const std::string key = "k" + std::to_string(key_num);
    const uint64_t action = rng.Uniform(10);
    if (action < 5) {  // insert
      const uint64_t value = rng.Next();
      Status st = coll->Insert(key, value);
      if (model.count(key)) {
        EXPECT_EQ(st.code(), ErrorCode::kAlreadyExists) << key;
      } else {
        ASSERT_TRUE(st.ok()) << st.ToString();
        model[key] = value;
      }
    } else if (action < 8) {  // erase
      Status st = coll->Erase(key);
      if (model.count(key)) {
        EXPECT_TRUE(st.ok());
        model.erase(key);
      } else {
        EXPECT_EQ(st.code(), ErrorCode::kNotFound);
      }
    } else {  // lookup
      auto v = coll->Lookup(key);
      if (model.count(key)) {
        ASSERT_TRUE(v.ok());
        EXPECT_EQ(*v, model[key]);
      } else {
        EXPECT_EQ(v.code(), ErrorCode::kNotFound);
      }
    }
    EXPECT_EQ(coll->size(), model.size());
  }

  // Full-content comparison via scan.
  std::map<std::string, uint64_t> scanned;
  ASSERT_TRUE(coll->Scan([&](std::string_view key, uint64_t value) {
                  scanned[std::string(key)] = value;
                  return true;
                })
                  .ok());
  EXPECT_EQ(scanned, model);
  EXPECT_TRUE(coll->Validate().ok());
}

TEST_P(CollectionPropertyTest, ReaderViewConsistentAcrossRehash) {
  Rng rng(GetParam() ^ 0xabcdef);
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  // A reader holding a pre-rehash view would read the old table; the shadow
  // update must leave the old table intact until the pointer swings, and the
  // new table complete before. We verify every intermediate state by
  // re-opening (fresh view) after each op batch and scanning.
  std::map<std::string, uint64_t> model;
  for (int batch = 0; batch < 40; ++batch) {
    for (int i = 0; i < 100; ++i) {
      const std::string key =
          "b" + std::to_string(batch) + "_" + std::to_string(i);
      const uint64_t value = rng.Next();
      ASSERT_TRUE(coll->Insert(key, value).ok());
      model[key] = value;
    }
    OsdContext ro{ctx_.region, nullptr};
    auto view = Collection::Open(ro, coll->oid());
    ASSERT_TRUE(view.ok());
    uint64_t count = 0;
    ASSERT_TRUE(view->Scan([&](std::string_view key, uint64_t value) {
                    auto it = model.find(std::string(key));
                    EXPECT_NE(it, model.end());
                    if (it != model.end()) {
                      EXPECT_EQ(it->second, value);
                    }
                    count++;
                    return true;
                  })
                    .ok());
    EXPECT_EQ(count, model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectionPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 2026));

}  // namespace
}  // namespace aerie
