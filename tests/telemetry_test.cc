// Tests for the live telemetry plane (src/obs/telemetry.h): seqlock
// publish/snapshot under concurrency, dead-pid segment GC, rolling-window
// histogram rotation, and cross-process metric merging.
//
// The storm test is the TSan target (tools/check_tsan.sh builds the whole
// tree with -fsanitize=thread): a writer thread hammers a counter and a
// histogram while a publisher thread republished the segment and a reader
// thread snapshots it, asserting every accepted snapshot is internally
// consistent and counter values never move backwards.
#include "src/obs/telemetry.h"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/obs.h"

namespace aerie {
namespace obs {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_mode_ = CurrentMode();
    SetMode(Mode::kCounters);
    dir_ = ::testing::TempDir() + "telemetry_test_" +
           std::to_string(::getpid());
    std::filesystem::create_directories(dir_);
    Registry::Instance().ResetAll();
  }

  void TearDown() override {
    std::filesystem::remove_all(dir_);
    SetMode(prev_mode_);
    SetWindowEpochNanosForTesting(0);
  }

  std::string dir_;
  Mode prev_mode_ = Mode::kCounters;
};

TEST_F(TelemetryTest, PublishAndReadRoundTrip) {
  Counter& c = Registry::Instance().GetCounter("telemetry.test.roundtrip");
  c.Add(41);
  LatencyHistogram& h =
      Registry::Instance().GetHistogram("telemetry.test.lat");
  h.Record(1000);
  h.Record(2000);

  TelemetryPublisher::Options opt;
  opt.dir = dir_;
  opt.process_name = "roundtrip_test";
  auto pub = TelemetryPublisher::Create(opt);
  ASSERT_NE(pub, nullptr);
  c.Add(1);
  pub->PublishNow();

  TelemetrySnapshot snap;
  ASSERT_TRUE(ReadTelemetrySegment(pub->path(), &snap));
  EXPECT_EQ(snap.pid, static_cast<uint64_t>(::getpid()));
  EXPECT_EQ(snap.process_name, "roundtrip_test");
  EXPECT_GE(snap.publish_count, 2u);

  bool saw_counter = false;
  bool saw_hist = false;
  for (const TelemetryMetric& m : snap.metrics) {
    if (m.name == "telemetry.test.roundtrip") {
      saw_counter = true;
      EXPECT_EQ(m.kind, Metric::Kind::kCounter);
      EXPECT_EQ(m.counter, 42u);
    }
    if (m.name == "telemetry.test.lat") {
      saw_hist = true;
      EXPECT_EQ(m.kind, Metric::Kind::kHistogram);
      EXPECT_TRUE(m.has_hist);
      EXPECT_EQ(m.cumulative.count(), 2u);
      EXPECT_EQ(m.cumulative.sum(), 3000u);
      EXPECT_EQ(m.cumulative.min(), 1000u);
      EXPECT_EQ(m.cumulative.max(), 2000u);
      // Both samples are fresh, so the rolling window still holds them.
      EXPECT_EQ(m.window.count(), 2u);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);
}

TEST_F(TelemetryTest, SegmentUnlinkedOnDestruction) {
  std::string path;
  {
    TelemetryPublisher::Options opt;
    opt.dir = dir_;
    auto pub = TelemetryPublisher::Create(opt);
    ASSERT_NE(pub, nullptr);
    path = pub->path();
    struct stat sb{};
    EXPECT_EQ(::stat(path.c_str(), &sb), 0);
    EXPECT_EQ(static_cast<uint64_t>(sb.st_size), TelemetrySegmentBytes());
  }
  struct stat sb{};
  EXPECT_NE(::stat(path.c_str(), &sb), 0);
}

TEST_F(TelemetryTest, DeadPidSegmentGarbageCollected) {
  // A fake segment for a pid that cannot exist (beyond pid_max) plus a live
  // one for this process. GC must reap exactly the dead one.
  TelemetryPublisher::Options dead;
  dead.dir = dir_;
  dead.pid = 999999999;  // > kernel.pid_max (max 2^22)
  auto dead_pub = TelemetryPublisher::Create(dead);
  ASSERT_NE(dead_pub, nullptr);
  const std::string dead_path = dead_pub->path();
  // Keep the file on disk but drop the publisher's ownership by re-linking:
  // simplest is to let the publisher live and GC while it exists.

  TelemetryPublisher::Options live;
  live.dir = dir_;
  auto live_pub = TelemetryPublisher::Create(live);
  ASSERT_NE(live_pub, nullptr);

  int gc_count = 0;
  auto snaps = ReadTelemetryDir(dir_, /*gc_dead=*/true, &gc_count);
  EXPECT_EQ(gc_count, 1);
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].pid, static_cast<uint64_t>(::getpid()));
  struct stat sb{};
  EXPECT_NE(::stat(dead_path.c_str(), &sb), 0);

  // Without gc_dead, a (re-created) dead segment is read, not reaped.
  dead_pub->PublishNow();  // recreate? segment was unlinked; mapping remains
  snaps = ReadTelemetryDir(dir_, /*gc_dead=*/false, &gc_count);
  EXPECT_EQ(gc_count, 0);
  EXPECT_EQ(snaps.size(), 1u);  // dead segment file is gone; only live left
}

TEST_F(TelemetryTest, MergeAcrossSnapshots) {
  TelemetrySnapshot a;
  TelemetrySnapshot b;
  TelemetryMetric ca;
  ca.name = "x.calls";
  ca.kind = Metric::Kind::kCounter;
  ca.counter = 10;
  TelemetryMetric cb = ca;
  cb.counter = 32;
  a.metrics.push_back(ca);
  b.metrics.push_back(cb);

  TelemetryMetric ha;
  ha.name = "x.lat";
  ha.kind = Metric::Kind::kHistogram;
  ha.cumulative.Record(100);
  ha.window.Record(100);
  TelemetryMetric hb = ha;
  hb.cumulative.Record(300);
  hb.window.Record(300);
  a.metrics.push_back(ha);
  b.metrics.push_back(hb);

  auto merged = MergeTelemetry({a, b});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].name, "x.calls");
  EXPECT_EQ(merged[0].counter, 42u);
  EXPECT_EQ(merged[1].name, "x.lat");
  EXPECT_EQ(merged[1].cumulative.count(), 3u);
  EXPECT_EQ(merged[1].window.count(), 3u);
  EXPECT_EQ(merged[1].cumulative.min(), 100u);
  EXPECT_EQ(merged[1].cumulative.max(), 300u);
}

// The TSan storm: counter increments and histogram records race publishes
// and reads. Accepted snapshots must be internally consistent (the counter
// never moves backwards across accepted reads).
TEST_F(TelemetryTest, ConcurrentPublishSnapshotStorm) {
  Counter& c = Registry::Instance().GetCounter("telemetry.storm.counter");
  LatencyHistogram& h =
      Registry::Instance().GetHistogram("telemetry.storm.lat");

  TelemetryPublisher::Options opt;
  opt.dir = dir_;
  auto pub = TelemetryPublisher::Create(opt);
  ASSERT_NE(pub, nullptr);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      c.Add(1);
      h.Record(100 + (i++ % 1000));
    }
  });
  std::thread publisher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      pub->PublishNow();
    }
  });

  uint64_t last_counter = 0;
  uint64_t accepted = 0;
  const std::string path = pub->path();
  for (int i = 0; i < 500; ++i) {
    TelemetrySnapshot snap;
    if (!ReadTelemetrySegment(path, &snap)) {
      continue;
    }
    ++accepted;
    for (const TelemetryMetric& m : snap.metrics) {
      if (m.name == "telemetry.storm.counter") {
        EXPECT_GE(m.counter, last_counter)
            << "counter moved backwards across accepted snapshots";
        last_counter = m.counter;
      }
      if (m.name == "telemetry.storm.lat" && m.has_hist) {
        if (m.cumulative.count() != 0) {
          EXPECT_GE(m.cumulative.max(), m.cumulative.min());
          EXPECT_GE(m.cumulative.sum(),
                    m.cumulative.count() * m.cumulative.min());
        }
      }
    }
  }
  stop.store(true);
  writer.join();
  publisher.join();
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(last_counter, 0u);
}

// --- Rolling-window rotation ------------------------------------------------

class WindowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_mode_ = CurrentMode();
    SetMode(Mode::kCounters);
    SetWindowEpochNanosForTesting(kEpochNs);
  }
  void TearDown() override {
    SetWindowEpochNanosForTesting(0);
    SetMode(prev_mode_);
  }

  static constexpr uint64_t kEpochNs = 1000;  // 1us epochs for the test
  Mode prev_mode_ = Mode::kCounters;
};

TEST_F(WindowTest, EmptyWindow) {
  LatencyHistogram h("win.empty");
  EXPECT_EQ(h.WindowSnapshotAt(0).count(), 0u);
  EXPECT_EQ(h.WindowSnapshotAt(123456789).count(), 0u);
  EXPECT_EQ(h.Snapshot().count(), 0u);
}

TEST_F(WindowTest, SingleEpochHoldsSamples) {
  LatencyHistogram h("win.single");
  h.RecordAtForTesting(10, 100);
  h.RecordAtForTesting(20, 900);
  // Same epoch (0..999): both visible from inside the window.
  Histogram w = h.WindowSnapshotAt(999);
  EXPECT_EQ(w.count(), 2u);
  EXPECT_EQ(w.sum(), 30u);
  // Cumulative view always keeps them.
  EXPECT_EQ(h.Snapshot().count(), 2u);
}

TEST_F(WindowTest, OldEpochsLeaveTheWindow) {
  LatencyHistogram h("win.expire");
  h.RecordAtForTesting(10, 500);  // epoch 0
  // From epoch kWindowEpochs-1 the sample is still in the window...
  EXPECT_EQ(
      h.WindowSnapshotAt(static_cast<uint64_t>(kWindowEpochs - 1) * kEpochNs)
          .count(),
      1u);
  // ...one epoch later it has rotated out, without any new record.
  EXPECT_EQ(
      h.WindowSnapshotAt(static_cast<uint64_t>(kWindowEpochs) * kEpochNs)
          .count(),
      0u);
  // The lifetime view is unaffected.
  EXPECT_EQ(h.Snapshot().count(), 1u);
}

TEST_F(WindowTest, RotationRetiresOldestSlotOnReuse) {
  LatencyHistogram h("win.rotate");
  h.RecordAtForTesting(10, 500);  // epoch 0, slot 0
  // kWindowEpochs epochs later the same slot is reused; the old samples
  // must be retired, not merged with the new ones.
  const uint64_t reuse_ns = static_cast<uint64_t>(kWindowEpochs) * kEpochNs;
  h.RecordAtForTesting(70, reuse_ns + 1);  // epoch kWindowEpochs, slot 0
  Histogram w = h.WindowSnapshotAt(reuse_ns + 1);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_EQ(w.sum(), 70u);
  EXPECT_EQ(h.Snapshot().count(), 2u);
}

TEST_F(WindowTest, DistantEpochJumpsDropStaleSlots) {
  LatencyHistogram h("win.jump");
  h.RecordAtForTesting(10, 500);
  // A very distant record (e.g. after an idle stretch) must see none of the
  // stale slots even though their epoch_id % kWindowEpochs would collide.
  const uint64_t far_ns = 1000 * kEpochNs + 500;
  h.RecordAtForTesting(20, far_ns);
  Histogram w = h.WindowSnapshotAt(far_ns);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_EQ(w.sum(), 20u);
}

TEST_F(WindowTest, WindowMergesAcrossEpochsAndShards) {
  LatencyHistogram h("win.merge");
  // Spread records across several in-window epochs.
  for (int e = 0; e < kWindowEpochs; ++e) {
    h.RecordAtForTesting(100, static_cast<uint64_t>(e) * kEpochNs + 1);
  }
  const uint64_t now = static_cast<uint64_t>(kWindowEpochs - 1) * kEpochNs + 2;
  EXPECT_EQ(h.WindowSnapshotAt(now).count(),
            static_cast<uint64_t>(kWindowEpochs));
  // Advancing one epoch drops exactly the oldest.
  EXPECT_EQ(h.WindowSnapshotAt(now + kEpochNs).count(),
            static_cast<uint64_t>(kWindowEpochs - 1));
}

TEST_F(WindowTest, ResetClearsWindow) {
  LatencyHistogram h("win.reset");
  h.RecordAtForTesting(10, 500);
  h.Reset();
  EXPECT_EQ(h.WindowSnapshotAt(600).count(), 0u);
  EXPECT_EQ(h.Snapshot().count(), 0u);
  h.RecordAtForTesting(30, 700);
  EXPECT_EQ(h.WindowSnapshotAt(700).count(), 1u);
}

// --- Write-amplification arithmetic ----------------------------------------

TEST(WriteAmpTest, ComputeFromCounters) {
  std::vector<std::pair<std::string, uint64_t>> counters = {
      {"pxfs.api.logical_write_bytes", 1000},
      {"flatfs.api.logical_write_bytes", 1000},
      {"scm.layer.txlog.lines_flushed", 10},     // 640 physical bytes
      {"scm.layer.txlog.bytes_streamed", 512},
      {"scm.layer.txlog.fences", 3},
      {"scm.layer.osd.lines_flushed", 50},       // 3200 physical bytes
      {"scm.flush.lines", 60},                   // unrelated: not per-layer
  };
  const WriteAmpReport amp = ComputeWriteAmp(counters);
  EXPECT_EQ(amp.logical_bytes, 2000u);
  EXPECT_EQ(amp.physical_bytes, 60u * kWriteAmpLineBytes);
  EXPECT_DOUBLE_EQ(amp.amplification, 3840.0 / 2000.0);
  ASSERT_EQ(amp.layers.size(), 2u);
  EXPECT_EQ(amp.layers[0].layer, "osd");
  EXPECT_EQ(amp.layers[0].physical_bytes, 3200u);
  EXPECT_EQ(amp.layers[1].layer, "txlog");
  EXPECT_EQ(amp.layers[1].physical_bytes, 640u);
  EXPECT_EQ(amp.layers[1].streamed_bytes, 512u);
  EXPECT_EQ(amp.layers[1].fences, 3u);
  EXPECT_DOUBLE_EQ(amp.layers[1].amplification, 640.0 / 2000.0);
}

TEST(WriteAmpTest, ZeroLogicalBytesYieldsZeroAmplification) {
  const WriteAmpReport amp =
      ComputeWriteAmp({{"scm.layer.osd.lines_flushed", 4}});
  EXPECT_EQ(amp.logical_bytes, 0u);
  EXPECT_EQ(amp.physical_bytes, 4u * kWriteAmpLineBytes);
  EXPECT_EQ(amp.amplification, 0.0);
  ASSERT_EQ(amp.layers.size(), 1u);
  EXPECT_EQ(amp.layers[0].amplification, 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace aerie
