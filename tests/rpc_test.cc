// Tests for the RPC layer: wire format, dispatcher, in-process and
// Unix-domain-socket transports.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/rpc/inproc.h"
#include "src/rpc/socket.h"
#include "src/rpc/wire.h"

namespace aerie {
namespace {

TEST(WireTest, RoundTripScalarsAndStrings) {
  WireBuffer buf;
  buf.AppendU8(7);
  buf.AppendU16(300);
  buf.AppendU32(70000);
  buf.AppendU64(1ull << 40);
  buf.AppendI64(-12345);
  buf.AppendString("hello world");
  buf.AppendString("");

  WireReader r(buf.data());
  EXPECT_EQ(*r.ReadU8(), 7);
  EXPECT_EQ(*r.ReadU16(), 300);
  EXPECT_EQ(*r.ReadU32(), 70000u);
  EXPECT_EQ(*r.ReadU64(), 1ull << 40);
  EXPECT_EQ(*r.ReadI64(), -12345);
  EXPECT_EQ(*r.ReadString(), "hello world");
  EXPECT_EQ(*r.ReadString(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, ShortBufferRejected) {
  WireBuffer buf;
  buf.AppendU32(5);
  WireReader r(buf.data());
  EXPECT_FALSE(r.ReadU64().ok());
}

TEST(WireTest, OversizedStringLengthRejected) {
  WireBuffer buf;
  buf.AppendU32(1000);  // claims 1000 bytes, provides none
  WireReader r(buf.data());
  EXPECT_EQ(r.ReadString().status().code(), ErrorCode::kInvalidArgument);
}

TEST(DispatcherTest, RoutesByMethodAndPassesClientId) {
  RpcDispatcher dispatcher;
  dispatcher.Register(
      1, [](uint64_t client, std::string_view req) -> Result<std::string> {
        return std::to_string(client) + ":" + std::string(req);
      });
  auto resp = dispatcher.Dispatch(42, 1, "ping");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*resp, "42:ping");
  EXPECT_EQ(dispatcher.Dispatch(42, 99, "x").code(),
            ErrorCode::kNotSupported);
}

TEST(InprocTest, CallsAndErrorsPropagate) {
  RpcDispatcher dispatcher;
  dispatcher.Register(
      5, [](uint64_t, std::string_view req) -> Result<std::string> {
        if (req == "fail") {
          return Status(ErrorCode::kBusy, "try later");
        }
        return std::string(req) + "!";
      });
  InprocTransport t(&dispatcher, 7);
  auto ok = t.Call(5, "hi");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "hi!");
  EXPECT_EQ(t.Call(5, "fail").code(), ErrorCode::kBusy);
  EXPECT_EQ(t.calls_made(), 2u);
  EXPECT_EQ(t.client_id(), 7u);
}

class UdsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/aerie_rpc_test.sock";
    dispatcher_.Register(
        1, [](uint64_t client, std::string_view req) -> Result<std::string> {
          return std::to_string(client) + "/" + std::string(req);
        });
    dispatcher_.Register(
        2, [](uint64_t, std::string_view) -> Result<std::string> {
          return Status(ErrorCode::kNotFound, "nothing here");
        });
    auto server = UdsServer::Start(path_, &dispatcher_);
    ASSERT_TRUE(server.ok());
    server_ = std::move(*server);
  }

  std::string path_;
  RpcDispatcher dispatcher_;
  std::unique_ptr<UdsServer> server_;
};

TEST_F(UdsTest, CallOverSocket) {
  auto transport = UdsTransport::Connect(path_);
  ASSERT_TRUE(transport.ok());
  auto resp = (*transport)->Call(1, "hello");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*resp, std::to_string((*transport)->client_id()) + "/hello");
}

TEST_F(UdsTest, ErrorStatusRoundTrips) {
  auto transport = UdsTransport::Connect(path_);
  ASSERT_TRUE(transport.ok());
  auto resp = (*transport)->Call(2, "");
  EXPECT_EQ(resp.code(), ErrorCode::kNotFound);
}

TEST_F(UdsTest, DistinctClientsGetDistinctSessionIds) {
  auto a = UdsTransport::Connect(path_);
  auto b = UdsTransport::Connect(path_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*a)->client_id(), (*b)->client_id());
}

TEST_F(UdsTest, ConcurrentClients) {
  constexpr int kClients = 4;
  constexpr int kCallsEach = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      auto transport = UdsTransport::Connect(path_);
      if (!transport.ok()) {
        failures++;
        return;
      }
      for (int i = 0; i < kCallsEach; ++i) {
        auto resp = (*transport)->Call(1, "m" + std::to_string(i));
        const std::string want = std::to_string((*transport)->client_id()) +
                                 "/m" + std::to_string(i);
        if (!resp.ok() || *resp != want) {
          failures++;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(UdsTest, LargePayloadRoundTrips) {
  dispatcher_.Register(
      3, [](uint64_t, std::string_view req) -> Result<std::string> {
        return std::string(req);
      });
  auto transport = UdsTransport::Connect(path_);
  ASSERT_TRUE(transport.ok());
  std::string big(1 << 20, 'z');
  auto resp = (*transport)->Call(3, big);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*resp, big);
}

}  // namespace
}  // namespace aerie
