// Tests for the RPC layer: wire format, dispatcher, in-process and
// Unix-domain-socket transports.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/obs/trace.h"
#include "src/rpc/inproc.h"
#include "src/rpc/socket.h"
#include "src/rpc/wire.h"

namespace aerie {
namespace {

TEST(WireTest, RoundTripScalarsAndStrings) {
  WireBuffer buf;
  buf.AppendU8(7);
  buf.AppendU16(300);
  buf.AppendU32(70000);
  buf.AppendU64(1ull << 40);
  buf.AppendI64(-12345);
  buf.AppendString("hello world");
  buf.AppendString("");

  WireReader r(buf.data());
  EXPECT_EQ(*r.ReadU8(), 7);
  EXPECT_EQ(*r.ReadU16(), 300);
  EXPECT_EQ(*r.ReadU32(), 70000u);
  EXPECT_EQ(*r.ReadU64(), 1ull << 40);
  EXPECT_EQ(*r.ReadI64(), -12345);
  EXPECT_EQ(*r.ReadString(), "hello world");
  EXPECT_EQ(*r.ReadString(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, ScalarsAreLittleEndianOnTheWire) {
  WireBuffer buf;
  buf.AppendU16(0x1234);
  buf.AppendU32(0xA1B2C3D4u);
  buf.AppendU64(0x1122334455667788ull);
  const uint8_t want[] = {0x34, 0x12,                    // u16
                          0xD4, 0xC3, 0xB2, 0xA1,        // u32
                          0x88, 0x77, 0x66, 0x55, 0x44,  // u64...
                          0x33, 0x22, 0x11};
  ASSERT_EQ(buf.size(), sizeof(want));
  for (size_t i = 0; i < sizeof(want); ++i) {
    EXPECT_EQ(static_cast<uint8_t>(buf.data()[i]), want[i]) << "byte " << i;
  }
  WireReader r(buf.data());
  EXPECT_EQ(*r.ReadU16(), 0x1234);
  EXPECT_EQ(*r.ReadU32(), 0xA1B2C3D4u);
  EXPECT_EQ(*r.ReadU64(), 0x1122334455667788ull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, TraceContextRoundTrips) {
  // Absent context: one zero flags byte.
  WireBuffer empty;
  AppendTraceContext(empty, WireTraceContext{});
  EXPECT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty.data()[0], '\0');
  WireReader er(empty.data());
  auto decoded_empty = ReadTraceContext(er);
  ASSERT_TRUE(decoded_empty.ok());
  EXPECT_FALSE(decoded_empty->present());

  // Present context: flags byte + two u64s.
  WireBuffer buf;
  AppendTraceContext(buf, WireTraceContext{0xDEADBEEFull, 77});
  EXPECT_EQ(buf.size(), 17u);
  WireReader r(buf.data());
  auto decoded = ReadTraceContext(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->present());
  EXPECT_EQ(decoded->trace_id, 0xDEADBEEFull);
  EXPECT_EQ(decoded->span_id, 77u);
  EXPECT_TRUE(r.AtEnd());

  // Truncated present context is rejected.
  WireReader bad(std::string_view(buf.data().data(), 5));
  EXPECT_FALSE(ReadTraceContext(bad).ok());
}

TEST(WireTest, ShortBufferRejected) {
  WireBuffer buf;
  buf.AppendU32(5);
  WireReader r(buf.data());
  EXPECT_FALSE(r.ReadU64().ok());
}

TEST(WireTest, OversizedStringLengthRejected) {
  WireBuffer buf;
  buf.AppendU32(1000);  // claims 1000 bytes, provides none
  WireReader r(buf.data());
  EXPECT_EQ(r.ReadString().status().code(), ErrorCode::kInvalidArgument);
}

TEST(DispatcherTest, RoutesByMethodAndPassesClientId) {
  RpcDispatcher dispatcher;
  dispatcher.Register(
      1, [](uint64_t client, std::string_view req) -> Result<std::string> {
        return std::to_string(client) + ":" + std::string(req);
      });
  auto resp = dispatcher.Dispatch(42, 1, "ping");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*resp, "42:ping");
  EXPECT_EQ(dispatcher.Dispatch(42, 99, "x").code(),
            ErrorCode::kNotSupported);
}

TEST(InprocTest, CallsAndErrorsPropagate) {
  RpcDispatcher dispatcher;
  dispatcher.Register(
      5, [](uint64_t, std::string_view req) -> Result<std::string> {
        if (req == "fail") {
          return Status(ErrorCode::kBusy, "try later");
        }
        return std::string(req) + "!";
      });
  InprocTransport t(&dispatcher, 7);
  auto ok = t.Call(5, "hi");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "hi!");
  EXPECT_EQ(t.Call(5, "fail").code(), ErrorCode::kBusy);
  EXPECT_EQ(t.calls_made(), 2u);
  EXPECT_EQ(t.client_id(), 7u);
}

class UdsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/aerie_rpc_test.sock";
    dispatcher_.Register(
        1, [](uint64_t client, std::string_view req) -> Result<std::string> {
          return std::to_string(client) + "/" + std::string(req);
        });
    dispatcher_.Register(
        2, [](uint64_t, std::string_view) -> Result<std::string> {
          return Status(ErrorCode::kNotFound, "nothing here");
        });
    auto server = UdsServer::Start(path_, &dispatcher_);
    ASSERT_TRUE(server.ok());
    server_ = std::move(*server);
  }

  std::string path_;
  RpcDispatcher dispatcher_;
  std::unique_ptr<UdsServer> server_;
};

TEST_F(UdsTest, CallOverSocket) {
  auto transport = UdsTransport::Connect(path_);
  ASSERT_TRUE(transport.ok());
  auto resp = (*transport)->Call(1, "hello");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*resp, std::to_string((*transport)->client_id()) + "/hello");
}

TEST_F(UdsTest, ErrorStatusRoundTrips) {
  auto transport = UdsTransport::Connect(path_);
  ASSERT_TRUE(transport.ok());
  auto resp = (*transport)->Call(2, "");
  EXPECT_EQ(resp.code(), ErrorCode::kNotFound);
}

TEST_F(UdsTest, DistinctClientsGetDistinctSessionIds) {
  auto a = UdsTransport::Connect(path_);
  auto b = UdsTransport::Connect(path_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*a)->client_id(), (*b)->client_id());
}

TEST_F(UdsTest, ConcurrentClients) {
  constexpr int kClients = 4;
  constexpr int kCallsEach = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      auto transport = UdsTransport::Connect(path_);
      if (!transport.ok()) {
        failures++;
        return;
      }
      for (int i = 0; i < kCallsEach; ++i) {
        auto resp = (*transport)->Call(1, "m" + std::to_string(i));
        const std::string want = std::to_string((*transport)->client_id()) +
                                 "/m" + std::to_string(i);
        if (!resp.ok() || *resp != want) {
          failures++;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

// The server span must carry the client's trace_id: the transport encodes
// the caller's context into the request frame and the server installs it
// around dispatch, so a handler-side AERIE_SPAN joins the client's trace.
TEST_F(UdsTest, TraceContextPropagatesToServerSpans) {
  const obs::Mode prev_mode = obs::CurrentMode();
  obs::SetMode(obs::Mode::kSpans);

  dispatcher_.Register(
      7, [](uint64_t, std::string_view) -> Result<std::string> {
        AERIE_SPAN("tfs", "t_probe");  // the server-side span under test
        const obs::TraceContext ctx = obs::CurrentTraceContext();
        WireBuffer out;
        out.AppendU64(ctx.trace_id);
        out.AppendU64(ctx.span_id);
        out.AppendU64(ctx.parent_id);
        return out.Release();
      });

  auto transport = UdsTransport::Connect(path_);
  ASSERT_TRUE(transport.ok());

  obs::TraceContext client_ctx;
  Result<std::string> resp = Status(ErrorCode::kUnavailable, "not called");
  {
    AERIE_SPAN("pxfs", "t_client_op");
    client_ctx = obs::CurrentTraceContext();
    resp = (*transport)->Call(7, "trace me");
  }
  ASSERT_TRUE(resp.ok());
  WireReader r(*resp);
  const uint64_t server_trace_id = *r.ReadU64();
  const uint64_t server_span_id = *r.ReadU64();
  const uint64_t server_parent_id = *r.ReadU64();

  ASSERT_TRUE(client_ctx.valid());
  EXPECT_EQ(server_trace_id, client_ctx.trace_id);
  EXPECT_NE(server_span_id, client_ctx.span_id);
  // The handler span's parent is the rpc.<method> span the transport opened
  // inside the client op — a descendant of the client span, not 0.
  EXPECT_NE(server_parent_id, 0u);
  EXPECT_NE(server_parent_id, server_span_id);

  obs::SetMode(prev_mode);
  obs::ResetAll();
}

// With tracing off the frame carries a single zero flags byte and the
// server must see an empty context.
TEST_F(UdsTest, NoTraceContextWhenSpansOff) {
  const obs::Mode prev_mode = obs::CurrentMode();
  obs::SetMode(obs::Mode::kCounters);

  dispatcher_.Register(
      8, [](uint64_t, std::string_view) -> Result<std::string> {
        WireBuffer out;
        out.AppendU64(obs::CurrentTraceContext().trace_id);
        return out.Release();
      });
  auto transport = UdsTransport::Connect(path_);
  ASSERT_TRUE(transport.ok());
  auto resp = (*transport)->Call(8, "");
  ASSERT_TRUE(resp.ok());
  WireReader r(*resp);
  EXPECT_EQ(*r.ReadU64(), 0u);

  obs::SetMode(prev_mode);
}

TEST_F(UdsTest, LargePayloadRoundTrips) {
  dispatcher_.Register(
      3, [](uint64_t, std::string_view req) -> Result<std::string> {
        return std::string(req);
      });
  auto transport = UdsTransport::Connect(path_);
  ASSERT_TRUE(transport.ok());
  std::string big(1 << 20, 'z');
  auto resp = (*transport)->Call(3, big);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*resp, big);
}

}  // namespace
}  // namespace aerie
