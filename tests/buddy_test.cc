// Tests for the buddy allocator: allocation, splitting, coalescing,
// persistence of the bitmap across remount, exhaustion, double free.
#include <gtest/gtest.h>

#include <set>

#include "src/osd/buddy.h"

namespace aerie {
namespace {

class BuddyTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kPages = 1024;
  static constexpr uint64_t kBitmapOffset = 4096;
  static constexpr uint64_t kDataStart = 1 << 20;

  void SetUp() override {
    auto region = ScmRegion::CreateAnonymous(16 << 20);
    ASSERT_TRUE(region.ok());
    region_ = std::move(*region);
    auto alloc = BuddyAllocator::Create(region_.get(), kBitmapOffset,
                                        kDataStart, kPages, /*fresh=*/true);
    ASSERT_TRUE(alloc.ok());
    alloc_ = std::move(*alloc);
  }

  std::unique_ptr<ScmRegion> region_;
  std::unique_ptr<BuddyAllocator> alloc_;
};

TEST_F(BuddyTest, OrderForBytes) {
  EXPECT_EQ(BuddyAllocator::OrderForBytes(1), 0);
  EXPECT_EQ(BuddyAllocator::OrderForBytes(4096), 0);
  EXPECT_EQ(BuddyAllocator::OrderForBytes(4097), 1);
  EXPECT_EQ(BuddyAllocator::OrderForBytes(8192), 1);
  EXPECT_EQ(BuddyAllocator::OrderForBytes(64 << 10), 4);
}

TEST_F(BuddyTest, AllocReturnsAlignedDisjointBlocks) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    auto offset = alloc_->Alloc(0);
    ASSERT_TRUE(offset.ok());
    EXPECT_EQ(*offset % kScmPageSize, 0u);
    EXPECT_GE(*offset, kDataStart);
    EXPECT_TRUE(seen.insert(*offset).second);
    EXPECT_TRUE(alloc_->IsAllocated(*offset));
  }
  EXPECT_EQ(alloc_->pages_free(), kPages - 100);
}

TEST_F(BuddyTest, LargeBlocksAreNaturallyAligned) {
  auto offset = alloc_->Alloc(4);  // 16 pages
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ((*offset - kDataStart) % (16 * kScmPageSize), 0u);
}

TEST_F(BuddyTest, FreeAndCoalesceRestoresFullCapacity) {
  std::vector<uint64_t> blocks;
  for (int i = 0; i < 64; ++i) {
    auto offset = alloc_->Alloc(2);  // 4 pages each
    ASSERT_TRUE(offset.ok());
    blocks.push_back(*offset);
  }
  EXPECT_EQ(alloc_->pages_free(), kPages - 64 * 4);
  for (uint64_t b : blocks) {
    EXPECT_TRUE(alloc_->Free(b, 2).ok());
  }
  EXPECT_EQ(alloc_->pages_free(), kPages);
  // After coalescing, a max-order block must be allocatable again.
  EXPECT_TRUE(alloc_->Alloc(BuddyAllocator::kMaxOrder).ok());
}

TEST_F(BuddyTest, ExhaustionReportsOutOfSpace) {
  uint64_t total = 0;
  while (true) {
    auto offset = alloc_->Alloc(0);
    if (!offset.ok()) {
      EXPECT_EQ(offset.code(), ErrorCode::kOutOfSpace);
      break;
    }
    total++;
  }
  EXPECT_EQ(total, kPages);
  EXPECT_EQ(alloc_->pages_free(), 0u);
}

TEST_F(BuddyTest, DoubleFreeRejected) {
  auto offset = alloc_->Alloc(0);
  ASSERT_TRUE(offset.ok());
  EXPECT_TRUE(alloc_->Free(*offset, 0).ok());
  EXPECT_EQ(alloc_->Free(*offset, 0).code(), ErrorCode::kInvalidArgument);
}

TEST_F(BuddyTest, BadFreeArgumentsRejected) {
  EXPECT_EQ(alloc_->Free(kDataStart - kScmPageSize, 0).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(alloc_->Free(kDataStart + 17, 0).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(alloc_->Free(kDataStart, 99).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(BuddyTest, StateSurvivesRemount) {
  auto a = alloc_->Alloc(3);  // 8 pages
  auto b = alloc_->Alloc(0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const uint64_t free_before = alloc_->pages_free();

  // Remount from the persistent bitmap (volatile free lists rebuilt).
  auto remounted = BuddyAllocator::Create(region_.get(), kBitmapOffset,
                                          kDataStart, kPages,
                                          /*fresh=*/false);
  ASSERT_TRUE(remounted.ok());
  EXPECT_EQ((*remounted)->pages_free(), free_before);
  EXPECT_TRUE((*remounted)->IsAllocated(*a));
  EXPECT_TRUE((*remounted)->IsAllocated(*b));
  // Freeing through the remounted allocator works.
  EXPECT_TRUE((*remounted)->Free(*a, 3).ok());
  EXPECT_EQ((*remounted)->pages_free(), free_before + 8);
  // New allocations never overlap surviving ones.
  for (int i = 0; i < 50; ++i) {
    auto offset = (*remounted)->Alloc(0);
    ASSERT_TRUE(offset.ok());
    EXPECT_NE(*offset, *b);
  }
}

TEST_F(BuddyTest, AllocBytesRoundsUp) {
  auto offset = alloc_->AllocBytes(5000);
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(alloc_->pages_free(), kPages - 2);
  EXPECT_TRUE(alloc_->FreeBytes(*offset, 5000).ok());
  EXPECT_EQ(alloc_->pages_free(), kPages);
}

}  // namespace
}  // namespace aerie
